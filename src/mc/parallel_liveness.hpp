// Parallel OWCTY-style liveness engine: goal-free cycle detection on the
// level-synchronous frontier machinery, so the liveness lemmas scale with
// cores like the invariant lemmas do (DESIGN.md §3.4).
//
// Our liveness property class (F(goal), AG AF(goal), no fairness) reduces to
// goal-free cycle detection: the property is violated iff the goal-free
// restriction of the relevant graph contains a cycle — or a goal-free
// deadlock. That reduction admits a breadth-first, embarrassingly parallel
// algorithm where the sequential engine's colored DFS does not:
//
//   phase A  materialize the goal-free subgraph with the parallel frontier
//            engine (same hash-once interning, per-thread recently-seen
//            caches, sharded store, expand/drain phases as
//            parallel_reachability.hpp), additionally capturing every
//            goal-free edge into per-thread buffers. For F(goal) the search
//            never leaves the goal-free region (goal successors are counted
//            but neither hashed nor interned); for AG AF(goal) the whole
//            reachable graph is materialized and the edges are restricted to
//            goal-free endpoints. Goal-free states without any successor are
//            detected here (deadlock verdict, minimal (level, id) witness).
//   phase B  compact the sharded ids into a dense [0, N) space (shard-base
//            prefix sums), build CSR successor/predecessor arrays by
//            counting sort, then iteratively trim: every state with zero
//            remaining goal-free out-degree is deleted, decrementing its
//            predecessors' atomic out-degree counters; states hitting zero
//            form the next round's work list (OWCTY's "catch them young").
//            At the fixpoint every surviving state has an alive successor,
//            so the residue is nonempty iff a goal-free cycle exists.
//   phase C  on a nonempty residue, extract a lasso: start from the
//            minimal-dense-id alive state, repeatedly walk to the
//            minimal-dense-id alive successor until a state repeats (the
//            cycle), and prepend the BFS-parent stem from an initial state.
//
// Determinism: phase A inherits the frontier engine's guarantee (ids, parent
// links and per-level content are identical at any thread count). The edge
// multiset is determined by the expansion order, which is deterministic;
// only the order in which threads buffered the edges varies, and every
// consumer is order-insensitive (counting-sorted CSR degrees, atomic
// decrement counts, min-id selections). Trimming deletes, per round, the
// set of all alive zero-out-degree states — a graph property — so the round
// count, the residue and the extracted lasso are bit-identical for every
// thread count and chunk geometry.
//
// Verdict agreement with the sequential engine: verdicts match on every
// input with a single violation class. When a graph contains both a
// goal-free deadlock and a goal-free cycle, this engine deterministically
// reports the deadlock (found in phase A); the sequential DFS reports
// whichever its traversal order meets first. Counterexample *shape* differs
// from the DFS lasso (both replay through the model — tests/mc/
// lasso_replay_test.cpp); limit enforcement is per-level like the parallel
// invariant engine.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "mc/engine.hpp"
#include "mc/explore.hpp"
#include "mc/liveness.hpp"
#include "mc/transition_system.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/lockfree_state_index_map.hpp"
#include "support/recent_cache.hpp"
#include "support/sharded_state_index_map.hpp"
#include "support/timer.hpp"

namespace tt::mc {

namespace detail {

/// Shared OWCTY core. `roots_all_reachable` selects the property:
/// false = F(goal) (goal-free region only), true = AG AF(goal) (full
/// reachable graph, edges restricted to goal-free endpoints).
///
/// `Map` is the 16-shard explicit store (ShardedStateIndexMap or
/// LockFreeStateIndexMap); both use the same shard routing and chunk-ordered
/// drain, so ids and verdicts are identical across stores. Store maintenance
/// (probe growth, sealing, spill) runs at phase A's level boundaries — the
/// same quiescent points the parallel invariant engine uses; the trim rounds
/// and lasso extraction only read `at()`, which decodes sealed/spilled pages
/// transparently.
template <class Map, TransitionSystem TS, class Pred>
[[nodiscard]] LivenessResult<TS> owcty_liveness_impl(const TS& ts, Pred&& goal,
                                                     const EngineOptions& opts,
                                                     bool roots_all_reachable) {
  using State = typename TS::State;
  constexpr std::uint32_t kNone = Map::kEmpty;
  constexpr unsigned kShards = 16;
  constexpr std::size_t kMinChunk = 64;
  // Below this many frontier states (or trim-work states) per worker a phase
  // runs serially on the coordinating thread.
  constexpr std::size_t kSerialWorkPerThread = 128;

  const int threads = resolve_threads(opts.threads);
  const SearchLimits& limits = opts.limits;

  Timer timer;
  obs::Span run_span("liveness.owcty");
  LivenessResult<TS> result;
  result.stats.threads = threads;

  Map seen(kShards);
  detail::apply_store_options(seen, opts.store);
  if (limits.states_bounded()) {
    seen.reserve(limits.max_states + limits.max_states / 8 + kShards);
  }

  std::array<std::vector<std::uint32_t>, kShards> parent;  // local id -> parent global id
  std::array<std::vector<std::uint32_t>, kShards> fresh;   // ids interned this level
  std::array<std::vector<std::uint8_t>, kShards> goal_mark;  // AG AF: goal states

  struct Cand {
    State s;
    std::uint32_t parent;
    std::uint64_t hash;  ///< hash_words(s), computed once in the expand phase
    bool is_goal;        ///< AG AF only; F-mode candidates are goal-free
    bool src_gf;         ///< expanding state is goal-free (edge eligibility)
  };
  struct ChunkOut {
    std::array<std::vector<Cand>, kShards> bucket;
  };
  struct ThreadCtx {
    std::size_t transitions = 0;
    std::size_t hash_ops = 0;
    std::size_t cache_hits = 0;
    std::size_t dups = 0;
    std::uint32_t dead_min = 0xffffffffu;  ///< min deadlocked id this level
    RecentSeenCache cache;
    std::vector<std::uint64_t> edges;      ///< goal-free edges, (from << 32) | to
    std::vector<std::uint32_t> trim_out;   ///< states newly caught this round
    std::vector<std::unique_ptr<ChunkOut>> pool;
    std::size_t pool_used = 0;
    ChunkOut* acquire() {
      if (pool_used == pool.size()) pool.push_back(std::make_unique<ChunkOut>());
      return pool[pool_used++].get();
    }
  };
  std::vector<ThreadCtx> ctx(static_cast<std::size_t>(threads));

  auto pack_edge = [](std::uint32_t from, std::uint32_t to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  };

  std::vector<std::uint32_t> frontier;
  std::vector<ChunkOut*> chunk_out;
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<unsigned> next_shard{0};
  std::size_t nchunks = 0;
  std::size_t chunk_size = kMinChunk;

  std::mutex err_mu;
  std::exception_ptr first_error;
  auto record_error = [&] {
    std::lock_guard<std::mutex> lock(err_mu);
    if (!first_error) first_error = std::current_exception();
  };

  bool limit_hit = false;
  std::uint32_t dead_id = kNone;
  int depth = 0;
  obs::ManualSpan level_span;  // coordinator-owned: one span per BFS level

  auto expand_work = [&](ThreadCtx& c) {
    try {
      obs::Span span("owcty.expand");
      std::size_t ci;
      while ((ci = next_chunk.fetch_add(1, std::memory_order_relaxed)) < nchunks) {
        ChunkOut* out = c.acquire();
        for (auto& b : out->bucket) b.clear();
        const std::size_t begin = ci * chunk_size;
        const std::size_t end = std::min(begin + chunk_size, frontier.size());
        for (std::size_t p = begin; p < end; ++p) {
          const std::uint32_t from = frontier[p];
          const State s = seen.at(from);
          const bool src_gf =
              !roots_all_reachable ||
              goal_mark[seen.shard_of_id(from)][seen.local_of_id(from)] == 0;
          std::size_t emitted = 0;
          ts.successors(s, [&](const State& t) {
            ++c.transitions;
            ++emitted;
            const bool tg = goal(t);
            // F(goal): the goal region is never entered — goal successors
            // are enumerated but neither hashed nor interned, exactly like
            // the sequential lasso search (hash-once parity).
            if (tg && !roots_all_reachable) return;
            ++c.hash_ops;
            const std::uint64_t h = hash_words(t);
            const bool edge = src_gf && !tg;
            const std::uint32_t hint = c.cache.lookup(h);
            if (hint != RecentSeenCache::kMiss && seen.at(hint) == t) {
              ++c.cache_hits;
              ++c.dups;
              if (edge) c.edges.push_back(pack_edge(from, hint));
              return;
            }
            const std::uint32_t id = seen.find(t, h);
            if (id != kNone) {
              c.cache.remember(h, id);
              ++c.dups;
              if (edge) c.edges.push_back(pack_edge(from, id));
              return;
            }
            out->bucket[seen.shard_of(h)].push_back(Cand{t, from, h, tg, src_gf});
          });
          // A goal-free state without any successor: the run halts before
          // the goal — a liveness violation regardless of cycles.
          if (emitted == 0 && src_gf && from < c.dead_min) c.dead_min = from;
        }
        chunk_out[ci] = out;
      }
    } catch (...) {
      record_error();
    }
  };

  auto drain_work = [&](ThreadCtx& c, bool locked) {
    try {
      obs::Span span("owcty.drain");
      unsigned sh;
      while ((sh = next_shard.fetch_add(1, std::memory_order_relaxed)) < kShards) {
        auto& fr = fresh[sh];
        fr.clear();
        for (std::size_t ci = 0; ci < nchunks; ++ci) {
          for (const Cand& cd : chunk_out[ci]->bucket[sh]) {
            const auto [id, is_new] =
                locked ? seen.insert(cd.s, cd.hash) : seen.insert_serial(cd.s, cd.hash);
            if (is_new) {
              c.cache.remember(cd.hash, id);
              parent[sh].push_back(cd.parent);
              if (roots_all_reachable) goal_mark[sh].push_back(cd.is_goal ? 1 : 0);
              fr.push_back(id);
            } else {
              ++c.dups;  // duplicate within this level
            }
            // One edge per emission, fresh or not — the multiset of edges
            // matches the sequential engine's children lists.
            if (cd.src_gf && !cd.is_goal) c.edges.push_back(pack_edge(cd.parent, id));
          }
        }
      }
    } catch (...) {
      record_error();
    }
  };

  // Trim-round state (phase B); set up by the coordinator per round.
  const std::vector<std::uint32_t>* trim_list = nullptr;
  std::size_t trim_chunk = kMinChunk;
  std::size_t trim_nchunks = 0;
  std::vector<std::uint32_t> in_off, in_from;
  std::unique_ptr<std::atomic<std::uint32_t>[]> out_remaining;

  auto trim_work = [&](ThreadCtx& c) {
    try {
      obs::Span span("owcty.trim_work");
      const auto& wl = *trim_list;
      std::size_t ci;
      while ((ci = next_chunk.fetch_add(1, std::memory_order_relaxed)) < trim_nchunks) {
        const std::size_t begin = ci * trim_chunk;
        const std::size_t end = std::min(begin + trim_chunk, wl.size());
        for (std::size_t i = begin; i < end; ++i) {
          const std::uint32_t u = wl[i];
          for (std::uint32_t k = in_off[u]; k < in_off[u + 1]; ++k) {
            const std::uint32_t p = in_from[k];
            // Exactly one decrement per edge (u dies once), so the counter
            // reaches zero exactly once: that thread owns p's deletion.
            if (out_remaining[p].fetch_sub(1, std::memory_order_relaxed) == 1) {
              c.trim_out.push_back(p);
            }
          }
        }
      }
    } catch (...) {
      record_error();
    }
  };

  auto setup_level = [&] {
    chunk_size = std::max<std::size_t>(
        kMinChunk, frontier.size() / (static_cast<std::size_t>(threads) * 4));
    nchunks = (frontier.size() + chunk_size - 1) / chunk_size;
    chunk_out.assign(nchunks, nullptr);
    next_chunk.store(0, std::memory_order_relaxed);
    next_shard.store(0, std::memory_order_relaxed);
    for (auto& c : ctx) c.pool_used = 0;
  };

  /// Sequential inter-level step; returns true when exploration must stop.
  auto finish_level = [&]() -> bool {
    level_span.end();
    for (auto& c : ctx) {
      result.stats.transitions += c.transitions;
      c.transitions = 0;
    }
    if (first_error) return true;
    for (auto& c : ctx) {
      if (c.dead_min != kNone && (dead_id == kNone || c.dead_min < dead_id)) {
        dead_id = c.dead_min;
      }
      c.dead_min = kNone;
    }
    if (dead_id != kNone) return true;  // deadlock: minimal (level, id) witness
    frontier.clear();
    for (unsigned sh = 0; sh < kShards; ++sh) {
      frontier.insert(frontier.end(), fresh[sh].begin(), fresh[sh].end());
    }
    if (frontier.empty()) return true;  // subgraph fully materialized
    result.stats.frontier_sizes.push_back(frontier.size());
    // Quiescent point: workers are parked at the barrier, so the store can
    // grow its probe tables (concurrent inserts never grow them mid-level),
    // seal the closed set and spill past the budget. A write-behind failure
    // (ENOSPC on the I/O thread) must take the star-burst error channel:
    // throwing here, with workers parked at the barrier, would terminate.
    try {
      detail::maintain_store(seen, frontier.size() * 16);
    } catch (...) {
      record_error();
      return true;
    }
    if (opts.progress) {
      opts.progress(LevelProgress{depth + 1, seen.size(), result.stats.transitions,
                                  frontier.size(), timer.seconds()});
    }
    obs::progress_tick({.phase = "owcty-bfs",
                        .states = seen.size(),
                        .transitions = result.stats.transitions,
                        .frontier = frontier.size(),
                        .depth = depth + 1,
                        .seconds = timer.seconds()});
    if (seen.size() > limits.max_states) {
      limit_hit = true;
      return true;
    }
    ++depth;
    if (depth > limits.max_depth) {
      limit_hit = true;
      return true;
    }
    setup_level();
    level_span.begin("owcty.level", depth, "depth");
    return false;
  };

  // Serial root seeding: ids and parent links must not depend on timing.
  // F(goal) skips goal initials before hashing (they are not lasso roots).
  ts.initial_states([&](const State& s) {
    const bool g = goal(s);
    if (g && !roots_all_reachable) return;
    ++ctx[0].hash_ops;
    const auto [id, is_new] = seen.insert_serial(s, hash_words(s));
    if (!is_new) {
      ++ctx[0].dups;
      return;
    }
    const unsigned sh = seen.shard_of_id(id);
    parent[sh].push_back(kNone);
    if (roots_all_reachable) goal_mark[sh].push_back(g ? 1 : 0);
    frontier.push_back(id);
  });
  result.stats.frontier_sizes.push_back(frontier.size());

  // The worker pool serves both BFS levels and trim rounds: the coordinator
  // publishes the phase kind, releases the pool through the top barrier, and
  // collects it at the bottom one. Small phases skip the pool entirely.
  enum class Task { kExpand, kDrain, kTrim, kStop };
  std::atomic<Task> task{Task::kStop};
  std::optional<std::barrier<>> sync;
  std::vector<std::thread> pool;
  if (threads > 1) {
    sync.emplace(threads);
    auto worker = [&](int tid) {
      ThreadCtx& c = ctx[static_cast<std::size_t>(tid)];
      while (true) {
        sync->arrive_and_wait();  // phase published / stop decided
        const Task t = task.load(std::memory_order_relaxed);
        if (t == Task::kStop) break;
        if (t == Task::kExpand) {
          expand_work(c);
        } else if (t == Task::kDrain) {
          drain_work(c, /*locked=*/true);
        } else {
          trim_work(c);
        }
        sync->arrive_and_wait();  // phase complete
      }
    };
    pool.reserve(static_cast<std::size_t>(threads - 1));
    for (int t = 1; t < threads; ++t) pool.emplace_back(worker, t);
  }
  auto run_phase = [&](Task t, auto&& own_work) {
    task.store(t, std::memory_order_relaxed);
    sync->arrive_and_wait();
    own_work();
    sync->arrive_and_wait();
  };
  const std::size_t serial_below =
      threads > 1 ? kSerialWorkPerThread * static_cast<std::size_t>(threads)
                  : std::numeric_limits<std::size_t>::max();

  auto body = [&] {
    // ---- phase A: materialize the subgraph ----
    if (!frontier.empty() && seen.size() <= limits.max_states) {
      detail::maintain_store(seen, frontier.size() * 16);  // headroom for level 1
      setup_level();
      level_span.begin("owcty.level", depth, "depth");
      bool done = false;
      while (!done) {
        if (frontier.size() < serial_below) {
          expand_work(ctx[0]);
          drain_work(ctx[0], /*locked=*/false);
        } else {
          run_phase(Task::kExpand, [&] { expand_work(ctx[0]); });
          run_phase(Task::kDrain, [&] { drain_work(ctx[0], /*locked=*/true); });
        }
        done = finish_level();
      }
    } else if (!frontier.empty()) {
      limit_hit = true;
    }
    if (first_error || limit_hit || dead_id != kNone) return;

    // ---- phase B: dense compaction, CSR, iterative trimming ----
    const std::size_t n = seen.size();
    if (n == 0) return;  // F(goal) with every initial already at the goal

    std::array<std::uint32_t, kShards + 1> shard_base{};
    for (unsigned sh = 0; sh < kShards; ++sh) {
      shard_base[sh + 1] =
          shard_base[sh] + static_cast<std::uint32_t>(seen.shard_size(sh));
    }
    auto dense_of = [&](std::uint32_t id) {
      return shard_base[seen.shard_of_id(id)] + seen.local_of_id(id);
    };

    // Convert the edge buffers to dense endpoints in place, then build the
    // forward and reverse CSR arrays by counting sort. The per-thread buffer
    // contents vary with scheduling; the edge *multiset* does not, and every
    // consumer below is insensitive to adjacency order.
    std::size_t n_edges = 0;
    for (auto& c : ctx) {
      for (auto& e : c.edges) {
        e = pack_edge(dense_of(static_cast<std::uint32_t>(e >> 32)),
                      dense_of(static_cast<std::uint32_t>(e)));
      }
      n_edges += c.edges.size();
    }
    std::vector<std::uint32_t> out_off(n + 1, 0);
    in_off.assign(n + 1, 0);
    for (const auto& c : ctx) {
      for (const auto e : c.edges) {
        ++out_off[(e >> 32) + 1];
        ++in_off[static_cast<std::uint32_t>(e) + 1];
      }
    }
    for (std::size_t u = 0; u < n; ++u) {
      out_off[u + 1] += out_off[u];
      in_off[u + 1] += in_off[u];
    }
    std::vector<std::uint32_t> out_to(n_edges);
    in_from.assign(n_edges, 0);
    {
      std::vector<std::uint32_t> ocur(out_off.begin(), out_off.end() - 1);
      std::vector<std::uint32_t> icur(in_off.begin(), in_off.end() - 1);
      for (const auto& c : ctx) {
        for (const auto e : c.edges) {
          const auto from = static_cast<std::uint32_t>(e >> 32);
          const auto to = static_cast<std::uint32_t>(e);
          out_to[ocur[from]++] = to;
          in_from[icur[to]++] = from;
        }
      }
    }

    std::vector<std::uint8_t> alive(n, 1);
    std::size_t eligible = n;
    if (roots_all_reachable) {
      eligible = 0;
      for (unsigned sh = 0; sh < kShards; ++sh) {
        for (std::uint32_t local = 0; local < goal_mark[sh].size(); ++local) {
          alive[shard_base[sh] + local] = goal_mark[sh][local] == 0 ? 1 : 0;
        }
      }
      for (std::size_t u = 0; u < n; ++u) eligible += alive[u];
    }

    out_remaining.reset(new std::atomic<std::uint32_t>[n]);
    std::vector<std::uint32_t> worklist;
    for (std::size_t u = 0; u < n; ++u) {
      const auto deg = static_cast<std::uint32_t>(out_off[u + 1] - out_off[u]);
      out_remaining[u].store(deg, std::memory_order_relaxed);
      // Goal states (AG AF) have no recorded edges and are dead from the
      // start: they never enter a work list and are never decremented.
      if (alive[u] != 0 && deg == 0) worklist.push_back(u);
    }

    std::size_t residue = eligible;
    std::vector<std::uint32_t> next_list;
    while (!worklist.empty() && !first_error) {
      ++result.stats.trim_rounds;
      // One span per OWCTY trim round; `caught` is the number of states
      // deleted this round, the quantity the "catch them young" loop drains.
      obs::Span round_span("owcty.trim_round");
      round_span.set_arg("caught", static_cast<std::int64_t>(worklist.size()));
      obs::progress_tick({.phase = "owcty-trim",
                          .states = seen.size(),
                          .transitions = result.stats.transitions,
                          .frontier = worklist.size(),
                          .round = static_cast<long long>(result.stats.trim_rounds),
                          .seconds = timer.seconds()});
      residue -= worklist.size();
      for (const std::uint32_t u : worklist) alive[u] = 0;
      trim_list = &worklist;
      trim_chunk = std::max<std::size_t>(
          kMinChunk, worklist.size() / (static_cast<std::size_t>(threads) * 4));
      trim_nchunks = (worklist.size() + trim_chunk - 1) / trim_chunk;
      next_chunk.store(0, std::memory_order_relaxed);
      for (auto& c : ctx) c.trim_out.clear();
      if (worklist.size() < serial_below) {
        trim_work(ctx[0]);
      } else {
        run_phase(Task::kTrim, [&] { trim_work(ctx[0]); });
      }
      next_list.clear();
      for (const auto& c : ctx) {
        next_list.insert(next_list.end(), c.trim_out.begin(), c.trim_out.end());
      }
      worklist.swap(next_list);
    }  // round_span closes here: the span covers delete + decrement + gather
    result.stats.residue_states = residue;
    if (residue == 0 || first_error) return;

    // ---- phase C: deterministic lasso extraction from the residue ----
    std::uint32_t entry = kNone;
    for (std::size_t u = 0; u < n; ++u) {
      if (alive[u] != 0) {
        entry = static_cast<std::uint32_t>(u);
        break;
      }
    }
    TT_ASSERT(entry != kNone);
    std::vector<std::uint32_t> dense_to_id(n);
    for (unsigned sh = 0; sh < kShards; ++sh) {
      const auto sz = static_cast<std::uint32_t>(seen.shard_size(sh));
      for (std::uint32_t local = 0; local < sz; ++local) {
        dense_to_id[shard_base[sh] + local] = seen.id_of(sh, local);
      }
    }
    std::vector<std::uint32_t> walk;
    std::vector<std::uint32_t> walk_pos(n, kNone);
    std::uint32_t cur = entry;
    std::size_t loop_at = 0;
    while (true) {
      walk_pos[cur] = static_cast<std::uint32_t>(walk.size());
      walk.push_back(cur);
      // Every residue state has an alive successor (the trim fixpoint);
      // taking the minimal one makes the walk order-insensitive.
      std::uint32_t next = kNone;
      for (std::uint32_t k = out_off[cur]; k < out_off[cur + 1]; ++k) {
        const std::uint32_t v = out_to[k];
        if (alive[v] != 0 && v < next) next = v;
      }
      TT_ASSERT(next != kNone);
      if (walk_pos[next] != kNone) {
        loop_at = walk_pos[next];
        break;
      }
      cur = next;
    }
    result.verdict = LivenessVerdict::kCycle;
    result.trace = reconstruct_trace<State>(
        dense_to_id[entry], kNone, [&](std::uint32_t id) { return seen.at(id); },
        [&](std::uint32_t id) { return parent[seen.shard_of_id(id)][seen.local_of_id(id)]; });
    const std::size_t stem_len = result.trace.size();  // initial .. entry
    for (std::size_t i = 1; i < walk.size(); ++i) {
      result.trace.push_back(seen.at(dense_to_id[walk[i]]));
    }
    result.loop_start = stem_len - 1 + loop_at;
  };

  if (threads > 1) {
    try {
      body();
    } catch (...) {
      task.store(Task::kStop, std::memory_order_relaxed);
      sync->arrive_and_wait();
      for (auto& th : pool) th.join();
      throw;
    }
    task.store(Task::kStop, std::memory_order_relaxed);
    sync->arrive_and_wait();
    for (auto& th : pool) th.join();
  } else {
    body();
  }
  if (first_error) std::rethrow_exception(first_error);
  run_span.set_arg("states", static_cast<std::int64_t>(seen.size()));

  if (dead_id != kNone) {
    result.verdict = LivenessVerdict::kDeadlock;
    result.trace = reconstruct_trace<State>(
        dead_id, kNone, [&](std::uint32_t id) { return seen.at(id); },
        [&](std::uint32_t id) { return parent[seen.shard_of_id(id)][seen.local_of_id(id)]; });
  } else if (limit_hit) {
    result.verdict = LivenessVerdict::kLimit;
  }
  // kCycle is set inside phase C; otherwise the default kHolds stands.

  result.stats.states = seen.size();
  result.stats.depth = depth;
  result.stats.memory_bytes =
      seen.memory_bytes() + frontier.capacity() * sizeof(std::uint32_t) +
      (in_off.capacity() + in_from.capacity()) * sizeof(std::uint32_t);
  for (const auto& p : parent) result.stats.memory_bytes += p.capacity() * sizeof(std::uint32_t);
  for (const auto& c : ctx) {
    result.stats.hash_ops += c.hash_ops;
    result.stats.cache_hits += c.cache_hits;
    result.stats.dup_transitions += c.dups;
    result.stats.memory_bytes +=
        c.cache.memory_bytes() + c.edges.capacity() * sizeof(std::uint64_t);
  }
  detail::copy_store_stats(seen, result.stats);
  result.stats.seconds = timer.seconds();
  result.stats.exhausted = result.verdict != LivenessVerdict::kLimit;
  return result;
}

/// Store dispatch for the OWCTY core. Both stores assign identical
/// (shard, local) ids, so verdicts, counts and traces do not depend on the
/// choice; only the storage internals (CAS inserts, compression, spill) do.
template <TransitionSystem TS, class Pred>
[[nodiscard]] LivenessResult<TS> owcty_liveness(const TS& ts, Pred&& goal,
                                                const EngineOptions& opts,
                                                bool roots_all_reachable) {
  if (opts.store.kind == StoreKind::kLockFree || opts.store.kind == StoreKind::kLockFreeFp) {
    // OWCTY trimming and lasso extraction random-access every stored body,
    // so fingerprint-only mode degrades to the plain lock-free store here
    // (StoreKind doc in mc/engine.hpp): normalize the kind before
    // apply_store_options would enable body dropping.
    EngineOptions normalized = opts;
    normalized.store.kind = StoreKind::kLockFree;
    return owcty_liveness_impl<LockFreeStateIndexMap<TS::kWords>>(
        ts, std::forward<Pred>(goal), normalized, roots_all_reachable);
  }
  return owcty_liveness_impl<ShardedStateIndexMap<TS::kWords>>(
      ts, std::forward<Pred>(goal), opts, roots_all_reachable);
}

}  // namespace detail

/// Parallel F(goal): the OWCTY counterpart of check_eventually. Verdicts
/// agree with the sequential engine (single-violation-class inputs; see the
/// header comment), and states/transitions/hash_ops match it exactly on
/// holds-runs — both engines sweep the same goal-free region once.
template <TransitionSystem TS, class Pred>
[[nodiscard]] LivenessResult<TS> check_eventually_parallel(const TS& ts, Pred&& goal,
                                                           const EngineOptions& opts = {}) {
  return detail::owcty_liveness(ts, std::forward<Pred>(goal), opts,
                                /*roots_all_reachable=*/false);
}

/// Parallel AG AF(goal): the OWCTY counterpart of check_always_eventually.
/// Materializes the reachable graph once (the sequential engine runs a BFS
/// plus a second DFS sweep) and trims its goal-free restriction.
template <TransitionSystem TS, class Pred>
[[nodiscard]] LivenessResult<TS> check_always_eventually_parallel(
    const TS& ts, Pred&& goal, const EngineOptions& opts = {}) {
  return detail::owcty_liveness(ts, std::forward<Pred>(goal), opts,
                                /*roots_all_reachable=*/true);
}

/// Engine-dispatching liveness check: kAuto resolves to the parallel OWCTY
/// engine; kSequential forces the single-threaded colored-DFS lasso search.
/// kSymbolic is dispatched by callers that include mc/symbolic_liveness.hpp
/// (core::verify does); here it is rejected so a missing dispatch shows up
/// as an assertion, not a silent engine swap.
template <TransitionSystem TS, class Pred>
[[nodiscard]] LivenessResult<TS> check_eventually_with(EngineKind kind, const TS& ts,
                                                       Pred&& goal,
                                                       const EngineOptions& opts = {}) {
  TT_ASSERT(kind != EngineKind::kSymbolic);
  auto r = kind == EngineKind::kSequential
               ? check_eventually_store(ts, std::forward<Pred>(goal), opts.limits, opts.store)
               : check_eventually_parallel(ts, std::forward<Pred>(goal), opts);
  if (opts.finalize_stats) opts.finalize_stats(r.stats);
  return r;
}

template <TransitionSystem TS, class Pred>
[[nodiscard]] LivenessResult<TS> check_always_eventually_with(EngineKind kind, const TS& ts,
                                                              Pred&& goal,
                                                              const EngineOptions& opts = {}) {
  TT_ASSERT(kind != EngineKind::kSymbolic);
  auto r = kind == EngineKind::kSequential
               ? check_always_eventually_store(ts, std::forward<Pred>(goal), opts.limits,
                                               opts.store)
               : check_always_eventually_parallel(ts, std::forward<Pred>(goal), opts);
  if (opts.finalize_stats) opts.finalize_stats(r.stats);
  return r;
}

}  // namespace tt::mc
