// Invariant checking by breadth-first reachability (sequential engine).
//
// This is the explicit-state analogue of SAL's symbolic `sal-smc` invariant
// runs (paper Fig. 4 and Fig. 6(a,c,d)). BFS gives shortest counterexamples,
// which also makes the same routine the *bounded* model checker of the paper
// (§5.2): pass SearchLimits::max_depth to explore only to a given depth, the
// explicit-state counterpart of SAT-based BMC depth bounds.
//
// Parent links are kept per interned state so a violating trace can be
// reconstructed; memory cost is 4 bytes/state on top of the packed state.
// The visit/trace scaffolding lives in explore.hpp, shared with the liveness
// engine and the parallel frontier engine (parallel_reachability.hpp).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "mc/engine.hpp"
#include "mc/explore.hpp"
#include "mc/run_stats.hpp"
#include "mc/transition_system.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "support/lockfree_state_index_map.hpp"
#include "support/state_index_map.hpp"
#include "support/timer.hpp"

namespace tt::mc {

enum class Verdict {
  kHolds,     ///< property holds on every explored behaviour (exhaustive if no limit hit)
  kViolated,  ///< counterexample found (trace attached)
  kLimit,     ///< a search limit stopped exploration before completion
};

[[nodiscard]] constexpr const char* to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::kHolds: return "holds";
    case Verdict::kViolated: return "VIOLATED";
    case Verdict::kLimit: return "limit-reached";
  }
  return "?";
}

template <class TS>
struct InvariantResult {
  Verdict verdict = Verdict::kHolds;
  RunStats stats;
  /// Initial state .. violating state; empty unless verdict == kViolated.
  std::vector<typename TS::State> trace;
};

namespace detail {

/// check_invariant over an explicit store type; see the public wrappers
/// below. `Map` must assign dense ids (StateIndexMap or a single-shard
/// LockFreeStateIndexMap) because BfsCore's bookkeeping is id-indexed.
template <class Map, TransitionSystem TS, class Pred>
[[nodiscard]] InvariantResult<TS> check_invariant_impl(const TS& ts, Pred&& holds,
                                                       const SearchLimits& limits,
                                                       const StoreOptions& store) {
  using State = typename TS::State;
  Timer timer;
  obs::Span run_span("bfs.sequential");
  InvariantResult<TS> result;
  detail::BfsCore<TS::kWords, Map> bfs(/*track_parents=*/true, limits);
  detail::apply_store_options(bfs.seen, store);
  if constexpr (requires { bfs.seen.fingerprint_only(); }) {
    // Fingerprint-only mode needs the exact-reconstruction hook before any
    // page body drops; parent links are the BFS core's own vector (safe:
    // this engine is single-threaded, so no push_back races the resolver).
    if (bfs.seen.fingerprint_only()) {
      detail::install_reexpander<TS::kWords>(
          ts, bfs.seen, [&bfs](std::uint32_t x) { return bfs.parent[x]; },
          detail::BfsCore<TS::kWords, Map>::kNoParent);
    }
  }

  bool violated = false;
  std::uint32_t bad_idx = 0;
  auto visit = [&](const State& s, std::uint32_t from) {
    if (violated) return;
    // Hash-once contract: this is the only hash_words call a candidate sees;
    // cache probe, table find and insert all reuse it.
    ++result.stats.hash_ops;
    auto [idx, fresh] = bfs.visit(s, from, hash_words(s));
    if (fresh && !holds(s)) {
      violated = true;
      bad_idx = idx;
    }
  };

  ts.initial_states(
      [&](const State& s) { visit(s, detail::BfsCore<TS::kWords, Map>::kNoParent); });
  result.stats.frontier_sizes.push_back(bfs.queue.size());

  std::size_t head = 0;
  std::size_t level_end = bfs.queue.size();  // end of current BFS level
  int depth = 0;
  obs::ManualSpan level_span;
  level_span.begin("bfs.level", depth, "depth");
  while (head < bfs.queue.size() && !violated) {
    if (head == level_end) {
      ++depth;
      const std::size_t frontier_states = bfs.queue.size() - level_end;
      result.stats.frontier_sizes.push_back(frontier_states);
      level_end = bfs.queue.size();
      level_span.end();
      // Quiescent point: seal the closed set behind the new frontier, spill
      // past the memory budget, grow the probe table with headroom.
      detail::maintain_store(bfs.seen, frontier_states * 16);
      level_span.begin("bfs.level", depth, "depth");
      obs::progress_tick({.phase = "bfs",
                          .states = bfs.seen.size(),
                          .transitions = result.stats.transitions,
                          .frontier = bfs.queue.size() - head,
                          .depth = depth,
                          .seconds = timer.seconds()});
      if (depth > limits.max_depth) break;
    }
    if (bfs.seen.size() > limits.max_states) break;
    const State s = bfs.seen.at(bfs.queue[head]);
    const auto from = bfs.queue[head];
    ++head;
    ts.successors(s, [&](const State& t) {
      ++result.stats.transitions;
      visit(t, from);
    });
  }

  level_span.end();
  run_span.set_arg("states", static_cast<std::int64_t>(bfs.seen.size()));
  result.stats.states = bfs.seen.size();
  result.stats.depth = depth;
  result.stats.memory_bytes = bfs.memory_bytes();
  result.stats.cache_hits = bfs.cache_hits;
  result.stats.dup_transitions = bfs.dup_visits;
  detail::copy_store_stats(bfs.seen, result.stats);
  result.stats.seconds = timer.seconds();
  if (violated) {
    result.verdict = Verdict::kViolated;
    result.trace = bfs.trace_to(bad_idx);
  } else if (head < bfs.queue.size()) {
    result.verdict = Verdict::kLimit;
  } else {
    result.verdict = Verdict::kHolds;
  }
  result.stats.exhausted = result.verdict != Verdict::kLimit;
  return result;
}

}  // namespace detail

/// Checks G(holds) over the reachable states of `ts`.
///
/// `holds` is a predicate on packed states. Returns on first violation with a
/// minimal-length trace, or after the frontier empties (kHolds), or when a
/// limit triggers (kLimit).
template <TransitionSystem TS, class Pred>
[[nodiscard]] InvariantResult<TS> check_invariant(const TS& ts, Pred&& holds,
                                                  const SearchLimits& limits = {}) {
  return detail::check_invariant_impl<StateIndexMap<TS::kWords>>(ts, std::forward<Pred>(holds),
                                                                 limits, StoreOptions{});
}

/// Store-dispatching sequential invariant check. Both stores intern states
/// in the identical (BFS) order and the violation is picked by that order,
/// so verdicts, counts and traces are bit-identical across stores; the
/// lock-free store additionally seals/compresses the closed set between
/// levels and spills past StoreOptions::mem_budget_bytes.
template <TransitionSystem TS, class Pred>
[[nodiscard]] InvariantResult<TS> check_invariant_store(const TS& ts, Pred&& holds,
                                                        const SearchLimits& limits,
                                                        const StoreOptions& store) {
  if (store.kind == StoreKind::kLockFree || store.kind == StoreKind::kLockFreeFp) {
    // One shard: BfsCore needs dense ids for its parent/queue bookkeeping.
    return detail::check_invariant_impl<LockFreeStateIndexMap<TS::kWords>>(
        ts, std::forward<Pred>(holds), limits, store);
  }
  return detail::check_invariant_impl<StateIndexMap<TS::kWords>>(ts, std::forward<Pred>(holds),
                                                                 limits, store);
}

/// Exhaustively counts reachable states (the paper's `sal-smc --count`
/// analogue used for Fig. 5's reachable-state column). Check
/// RunStats::exhausted before reporting the count: a limit-stopped run
/// undercounts (the verdict-level signal Fig. 5 consumers must not drop).
template <TransitionSystem TS>
[[nodiscard]] RunStats count_reachable(const TS& ts, const SearchLimits& limits = {}) {
  auto r = check_invariant(ts, [](const typename TS::State&) { return true; }, limits);
  return r.stats;
}

}  // namespace tt::mc
