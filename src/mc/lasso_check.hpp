// Counterexample replay: re-executes a lasso (or deadlock path) returned by
// any liveness engine through the model's own successor relation, so a trace
// is never trusted on the engine's word alone. Used by the replay tests
// (tests/mc/lasso_replay_test.cpp) and available to tools that print
// counterexamples.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "mc/transition_system.hpp"

namespace tt::mc {

/// Checks that `trace` + `loop_start` is a genuine goal-free lasso of `ts`:
///   * the trace is nonempty and `loop_start` indexes into it;
///   * every consecutive pair is an edge of the successor relation;
///   * the closing edge trace.back() -> trace[loop_start] exists;
///   * every cycle state (indices >= loop_start) violates `goal`.
/// With `require_initial_root` the first state must be an initial state —
/// true for F(goal) lassos; AG AF stems may instead start at any reachable
/// state (sequential engine) and may pass through goal states, so stem
/// states are deliberately not goal-checked.
/// On failure returns false and, when `why` is non-null, describes the first
/// violated condition.
template <TransitionSystem TS, class Pred>
[[nodiscard]] bool validate_lasso(const TS& ts, Pred&& goal,
                                  const std::vector<typename TS::State>& trace,
                                  std::size_t loop_start, bool require_initial_root = false,
                                  std::string* why = nullptr) {
  using State = typename TS::State;
  auto fail = [&](std::string msg) {
    if (why) *why = std::move(msg);
    return false;
  };
  auto at_index = [](const char* what, std::size_t i) {
    return std::string(what) + " at trace index " + std::to_string(i);
  };
  if (trace.empty()) return fail("empty trace");
  if (loop_start >= trace.size()) return fail("loop_start out of range");
  if (require_initial_root) {
    bool is_init = false;
    ts.initial_states([&](const State& s) {
      if (s == trace.front()) is_init = true;
    });
    if (!is_init) return fail("trace does not start at an initial state");
  }
  auto has_edge = [&](const State& from, const State& to) {
    bool found = false;
    ts.successors(from, [&](const State& t) {
      if (t == to) found = true;
    });
    return found;
  };
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    if (!has_edge(trace[i], trace[i + 1])) return fail(at_index("missing edge", i));
  }
  if (!has_edge(trace.back(), trace[loop_start])) return fail("cycle does not close");
  for (std::size_t i = loop_start; i < trace.size(); ++i) {
    if (goal(trace[i])) return fail(at_index("goal state inside the cycle", i));
  }
  return true;
}

/// Deadlock-path replay: every consecutive pair is an edge, the final state
/// has no successors at all, and no path state satisfies `goal` up to and
/// including the deadlocked state (F(goal) paths; AG AF deadlock paths may
/// pass goal states in the stem, so only the final state is goal-checked
/// when `goal_free_path` is false).
template <TransitionSystem TS, class Pred>
[[nodiscard]] bool validate_deadlock_path(const TS& ts, Pred&& goal,
                                          const std::vector<typename TS::State>& trace,
                                          bool goal_free_path = true,
                                          std::string* why = nullptr) {
  using State = typename TS::State;
  auto fail = [&](std::string msg) {
    if (why) *why = std::move(msg);
    return false;
  };
  if (trace.empty()) return fail("empty trace");
  auto has_edge = [&](const State& from, const State& to) {
    bool found = false;
    ts.successors(from, [&](const State& t) {
      if (t == to) found = true;
    });
    return found;
  };
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    if (!has_edge(trace[i], trace[i + 1])) {
      return fail("missing edge at trace index " + std::to_string(i));
    }
  }
  std::size_t out = 0;
  ts.successors(trace.back(), [&](const State&) { ++out; });
  if (out != 0) return fail("final state is not deadlocked");
  if (goal_free_path) {
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (goal(trace[i])) return fail("goal state on the deadlock path");
    }
  } else if (goal(trace.back())) {
    return fail("deadlocked state satisfies the goal");
  }
  return true;
}

}  // namespace tt::mc
