// Level-synchronous parallel BFS over a TransitionSystem — the parallel
// frontier engine behind the invariant lemmas.
//
// Each BFS level runs in two phases over a fixed partition of the frontier:
//
//   expand: worker threads claim chunks of the frontier (atomic counter),
//           enumerate successors, hash each candidate exactly once, kill
//           duplicates against a per-thread recently-seen cache and then the
//           sharded store (lock-free find — the store is frozen during this
//           phase) and route surviving (state, parent, hash) candidates into
//           per-chunk, per-shard buffers.
//   drain:  worker threads claim whole shards; the owner of shard s walks the
//           chunk buffers *in chunk order* and interns every candidate
//           reusing its expand-phase hash (lock-striped insert), assigns
//           parent links and collects fresh ids.
//
// Determinism guarantee: walking chunk buffers in chunk order replays, for
// every shard, exactly the frontier-order candidate sequence — chunk
// boundaries only decide which thread buffered a candidate, never its
// position in that sequence. Shard ownership is exclusive, so per-shard
// insertion order — and with it every dense id, parent link and the next
// frontier (per-shard fresh lists concatenated in shard order) — is
// independent of both thread scheduling and chunk geometry. A run with 1, 2
// or 4 threads (or any other count) therefore interns the same states under
// the same ids, picks the same minimal-(depth, id) violation and
// reconstructs the *identical* counterexample trace, even though the chunk
// size adapts to frontier.size()/threads. The per-thread caches cannot
// perturb this: they only ever suppress candidates already interned in a
// previous level, which the frozen-store find would have suppressed anyway.
// Traces are BFS-minimal, like the sequential engine's.
//
// Small frontiers fall back to a serial level run by the coordinating thread
// alone (no barrier crossings, unlocked inserts) — the two-phase order is
// preserved, so the fallback is invisible to the determinism guarantee; it
// only removes the synchronization overhead that made the parallel engine
// lose to the sequential one on shallow or narrow state spaces.
//
// Requirements on the model: TS::successors and the property predicate must
// be safe to call concurrently on a const system (all bundled models are
// immutable after construction).
#pragma once

#include <array>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "mc/engine.hpp"
#include "mc/explore.hpp"
#include "mc/reachability.hpp"
#include "mc/run_stats.hpp"
#include "mc/transition_system.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/lockfree_state_index_map.hpp"
#include "support/recent_cache.hpp"
#include "support/sharded_state_index_map.hpp"
#include "support/stable_vector.hpp"
#include "support/timer.hpp"

namespace tt::mc {

namespace detail {

/// check_invariant_parallel over a sharded store type (ShardedStateIndexMap
/// or LockFreeStateIndexMap — identical id encoding, identical shard
/// routing, so identical results); see the public dispatcher below.
template <class Map, TransitionSystem TS, class Pred>
[[nodiscard]] InvariantResult<TS> check_invariant_parallel_impl(const TS& ts, Pred&& holds,
                                                                const EngineOptions& opts) {
  using State = typename TS::State;
  constexpr std::uint32_t kNone = Map::kEmpty;
  // The shard count is a fixed constant; chunk geometry may vary freely (see
  // the determinism argument in the header comment).
  constexpr unsigned kShards = 16;
  constexpr std::size_t kMinChunk = 64;
  // Below this many frontier states per worker a level runs serially on the
  // coordinating thread: barrier crossings would cost more than the work.
  constexpr std::size_t kSerialFrontierPerThread = 128;

  const int threads = resolve_threads(opts.threads);
  const SearchLimits& limits = opts.limits;

  Timer timer;
  obs::Span run_span("bfs.parallel");
  InvariantResult<TS> result;
  result.stats.threads = threads;

  Map seen(kShards);
  detail::apply_store_options(seen, opts.store);
  if (limits.states_bounded()) {
    seen.reserve(limits.max_states + limits.max_states / 8 + kShards);
  }

  // Parent links live in StableVector, not std::vector: the fingerprint-only
  // store's resolver walks parent chains from any worker mid-level, and a
  // push_back reallocation under a concurrent reader is a use-after-free.
  std::array<StableVector<std::uint32_t>, kShards> parent;  // local id -> parent global id
  std::array<std::vector<std::uint32_t>, kShards> fresh;    // ids interned this level
  std::array<std::uint32_t, kShards> shard_bad;             // min violating id per shard

  if constexpr (requires { seen.fingerprint_only(); }) {
    if (seen.fingerprint_only()) {
      detail::install_reexpander<TS::kWords>(
          ts, seen,
          [&parent, &seen](std::uint32_t id) {
            return parent[seen.shard_of_id(id)][seen.local_of_id(id)];
          },
          kNone);
    }
  }

  struct Cand {
    State s;
    std::uint32_t parent;
    std::uint64_t hash;  ///< hash_words(s), computed once in the expand phase
  };
  struct ChunkOut {
    std::array<std::vector<Cand>, kShards> bucket;
  };
  struct ThreadCtx {
    std::size_t transitions = 0;
    std::size_t hash_ops = 0;
    std::size_t cache_hits = 0;
    std::size_t dups = 0;
    RecentSeenCache cache;
    std::vector<std::unique_ptr<ChunkOut>> pool;
    std::size_t pool_used = 0;
    ChunkOut* acquire() {
      if (pool_used == pool.size()) pool.push_back(std::make_unique<ChunkOut>());
      return pool[pool_used++].get();
    }
  };
  std::vector<ThreadCtx> ctx(static_cast<std::size_t>(threads));

  std::vector<std::uint32_t> frontier;
  std::vector<ChunkOut*> chunk_out;
  std::atomic<std::size_t> next_chunk{0};
  std::atomic<unsigned> next_shard{0};
  std::size_t nchunks = 0;
  std::size_t chunk_size = kMinChunk;

  std::mutex err_mu;
  std::exception_ptr first_error;
  auto record_error = [&] {
    std::lock_guard<std::mutex> lock(err_mu);
    if (!first_error) first_error = std::current_exception();
  };

  bool violated = false;
  bool limit_hit = false;
  std::uint32_t bad_id = kNone;
  int depth = 0;
  obs::ManualSpan level_span;  // coordinator-owned: one span per BFS level

  auto expand_work = [&](ThreadCtx& c) {
    try {
      // One span per worker per level; workers emit into their own
      // thread-local buffers, so this is contention-free.
      obs::Span span("bfs.expand");
      std::size_t ci;
      while ((ci = next_chunk.fetch_add(1, std::memory_order_relaxed)) < nchunks) {
        ChunkOut* out = c.acquire();
        for (auto& b : out->bucket) b.clear();
        const std::size_t begin = ci * chunk_size;
        const std::size_t end = std::min(begin + chunk_size, frontier.size());
        for (std::size_t p = begin; p < end; ++p) {
          const std::uint32_t from = frontier[p];
          const State s = seen.at(from);
          ts.successors(s, [&](const State& t) {
            ++c.transitions;
            // Hash-once contract: the single hash_words call this candidate
            // ever sees. Cache probe, frozen-store find, and the drain-phase
            // insert (via Cand::hash) all reuse it.
            ++c.hash_ops;
            const std::uint64_t h = hash_words(t);
            const std::uint32_t hint = c.cache.lookup(h);
            if (hint != RecentSeenCache::kMiss && seen.at(hint) == t) {
              ++c.cache_hits;
              ++c.dups;
              return;  // interned in a previous level
            }
            const std::uint32_t id = seen.find(t, h);
            if (id != kNone) {
              c.cache.remember(h, id);
              ++c.dups;
              return;  // interned in a previous level
            }
            out->bucket[seen.shard_of(h)].push_back(Cand{t, from, h});
          });
        }
        chunk_out[ci] = out;
      }
    } catch (...) {
      record_error();
    }
  };

  auto drain_work = [&](ThreadCtx& c, bool locked) {
    try {
      obs::Span span("bfs.drain");
      unsigned sh;
      while ((sh = next_shard.fetch_add(1, std::memory_order_relaxed)) < kShards) {
        auto& fr = fresh[sh];
        fr.clear();
        std::uint32_t bad = kNone;
        for (std::size_t ci = 0; ci < nchunks; ++ci) {
          for (const Cand& cd : chunk_out[ci]->bucket[sh]) {
            const auto [id, is_new] =
                locked ? seen.insert(cd.s, cd.hash) : seen.insert_serial(cd.s, cd.hash);
            if (!is_new) {
              ++c.dups;  // duplicate within this level
              continue;
            }
            c.cache.remember(cd.hash, id);
            parent[sh].push_back(cd.parent);
            fr.push_back(id);
            if (bad == kNone && !holds(cd.s)) bad = id;  // ids grow within a shard
          }
        }
        shard_bad[sh] = bad;
      }
    } catch (...) {
      record_error();
    }
  };

  auto setup_level = [&] {
    // Chunks sized from the frontier and thread count: a handful of chunks
    // per worker balances load without the fixed-size-256 bookkeeping that
    // dominated small levels. Determinism is chunk-geometry independent.
    chunk_size = std::max<std::size_t>(
        kMinChunk, frontier.size() / (static_cast<std::size_t>(threads) * 4));
    nchunks = (frontier.size() + chunk_size - 1) / chunk_size;
    chunk_out.assign(nchunks, nullptr);
    next_chunk.store(0, std::memory_order_relaxed);
    next_shard.store(0, std::memory_order_relaxed);
    for (auto& c : ctx) c.pool_used = 0;
  };

  /// Sequential inter-level step; returns true when exploration must stop.
  auto finish_level = [&]() -> bool {
    level_span.end();
    for (auto& c : ctx) {
      result.stats.transitions += c.transitions;
      c.transitions = 0;
    }
    if (first_error) return true;
    for (unsigned sh = 0; sh < kShards; ++sh) {
      if (shard_bad[sh] != kNone && (bad_id == kNone || shard_bad[sh] < bad_id)) {
        bad_id = shard_bad[sh];
      }
    }
    if (bad_id != kNone) {
      violated = true;
      return true;
    }
    frontier.clear();
    for (unsigned sh = 0; sh < kShards; ++sh) {
      frontier.insert(frontier.end(), fresh[sh].begin(), fresh[sh].end());
    }
    if (frontier.empty()) return true;  // reachable set exhausted
    result.stats.frontier_sizes.push_back(frontier.size());
    // The store is quiescent between drain and the next expand: seal closed
    // pages, spill past the budget, grow the probe tables with headroom for
    // the coming level (so the lock-free insert path never grows mid-phase).
    // A write-behind failure (ENOSPC on the I/O thread) surfaces here as
    // StateCapacityError; it must flow through the star-burst error channel —
    // throwing with workers parked at the barrier would terminate.
    try {
      detail::maintain_store(seen, frontier.size() * 16);
    } catch (...) {
      record_error();
      return true;
    }
    if (opts.progress) {
      opts.progress(LevelProgress{depth + 1, seen.size(), result.stats.transitions,
                                  frontier.size(), timer.seconds()});
    }
    obs::progress_tick({.phase = "par-bfs",
                        .states = seen.size(),
                        .transitions = result.stats.transitions,
                        .frontier = frontier.size(),
                        .depth = depth + 1,
                        .seconds = timer.seconds()});
    if (seen.size() > limits.max_states) {
      limit_hit = true;
      return true;
    }
    ++depth;
    if (depth > limits.max_depth) {
      limit_hit = true;
      return true;
    }
    setup_level();
    level_span.begin("bfs.level", depth, "depth");
    return false;
  };

  // Interning the initial states is serial: their ids and parent links must
  // not depend on enumeration timing.
  ts.initial_states([&](const State& s) {
    ++ctx[0].hash_ops;
    const auto [id, is_new] = seen.insert_serial(s, hash_words(s));
    if (!is_new) return;
    parent[seen.shard_of_id(id)].push_back(kNone);
    frontier.push_back(id);
    if ((bad_id == kNone || id < bad_id) && !holds(s)) bad_id = id;
  });
  result.stats.frontier_sizes.push_back(frontier.size());
  violated = bad_id != kNone;

  if (!violated && !frontier.empty() && seen.size() <= limits.max_states) {
    detail::maintain_store(seen, frontier.size() * 16);  // headroom for level 1
    setup_level();
    level_span.begin("bfs.level", depth, "depth");
    const std::size_t serial_below =
        threads > 1 ? kSerialFrontierPerThread * static_cast<std::size_t>(threads) : 0;
    if (threads == 1) {
      do {
        expand_work(ctx[0]);
        drain_work(ctx[0], /*locked=*/false);
      } while (!finish_level());
    } else {
      std::barrier sync(threads);
      std::atomic<bool> stop{false};
      auto worker = [&](int tid) {
        ThreadCtx& c = ctx[static_cast<std::size_t>(tid)];
        while (true) {
          sync.arrive_and_wait();  // parallel level ready / stop decided
          if (stop.load(std::memory_order_relaxed)) break;
          expand_work(c);
          sync.arrive_and_wait();  // expansion complete, store quiescent
          drain_work(c, /*locked=*/true);
          sync.arrive_and_wait();  // drain complete
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(threads - 1));
      for (int t = 1; t < threads; ++t) pool.emplace_back(worker, t);
      // Coordinator (this thread): small levels run serially without waking
      // the workers, which stay parked at the top barrier.
      bool done = false;
      while (!done) {
        if (frontier.size() < serial_below) {
          expand_work(ctx[0]);
          drain_work(ctx[0], /*locked=*/false);
          done = finish_level();
        } else {
          sync.arrive_and_wait();  // release workers into this level
          expand_work(ctx[0]);
          sync.arrive_and_wait();
          drain_work(ctx[0], /*locked=*/true);
          sync.arrive_and_wait();
          done = finish_level();
        }
      }
      stop.store(true, std::memory_order_relaxed);
      sync.arrive_and_wait();  // release workers to observe stop
      for (auto& th : pool) th.join();
    }
  } else if (!violated && seen.size() > limits.max_states && !frontier.empty()) {
    limit_hit = true;
  }
  if (first_error) std::rethrow_exception(first_error);

  run_span.set_arg("states", static_cast<std::int64_t>(seen.size()));
  result.stats.states = seen.size();
  result.stats.depth = depth;
  result.stats.memory_bytes = seen.memory_bytes() + frontier.capacity() * sizeof(std::uint32_t);
  for (const auto& p : parent) result.stats.memory_bytes += p.memory_bytes();
  for (const auto& c : ctx) {
    result.stats.hash_ops += c.hash_ops;
    result.stats.cache_hits += c.cache_hits;
    result.stats.dup_transitions += c.dups;
    result.stats.memory_bytes += c.cache.memory_bytes();
  }
  detail::copy_store_stats(seen, result.stats);
  result.stats.seconds = timer.seconds();
  if (violated) {
    result.verdict = Verdict::kViolated;
    result.trace = detail::reconstruct_trace<State>(
        bad_id, kNone, [&](std::uint32_t id) { return seen.at(id); },
        [&](std::uint32_t id) { return parent[seen.shard_of_id(id)][seen.local_of_id(id)]; });
  } else {
    result.verdict = limit_hit ? Verdict::kLimit : Verdict::kHolds;
  }
  result.stats.exhausted = result.verdict != Verdict::kLimit;
  return result;
}

}  // namespace detail

/// Parallel G(holds) check; the frontier-parallel counterpart of
/// check_invariant. Verdicts agree with the sequential engine; on violation
/// the trace is shortest (BFS) and identical for every thread count — and
/// for either store (EngineOptions::store picks the lock-striped or the
/// lock-free table; both assign the same ids in the same order). Search
/// limits are enforced at level granularity (the sequential engine checks
/// mid-level), so limit-stopped runs may intern slightly more states.
template <TransitionSystem TS, class Pred>
[[nodiscard]] InvariantResult<TS> check_invariant_parallel(const TS& ts, Pred&& holds,
                                                           const EngineOptions& opts = {}) {
  if (opts.store.kind == StoreKind::kLockFree || opts.store.kind == StoreKind::kLockFreeFp) {
    return detail::check_invariant_parallel_impl<LockFreeStateIndexMap<TS::kWords>>(
        ts, std::forward<Pred>(holds), opts);
  }
  return detail::check_invariant_parallel_impl<ShardedStateIndexMap<TS::kWords>>(
      ts, std::forward<Pred>(holds), opts);
}

/// Parallel reachable-state count; see count_reachable. Check
/// RunStats::exhausted before trusting the count.
template <TransitionSystem TS>
[[nodiscard]] RunStats count_reachable_parallel(const TS& ts, const EngineOptions& opts = {}) {
  auto r = check_invariant_parallel(ts, [](const typename TS::State&) { return true; }, opts);
  return r.stats;
}

/// Engine-dispatching invariant check: kAuto resolves to the parallel
/// frontier engine (invariants are its home turf); kSequential forces the
/// single-threaded BFS. kSymbolic is dispatched by callers that include
/// mc/symbolic_reachability.hpp (core::verify does); here it is rejected so
/// a missing dispatch shows up as an assertion, not a silent engine swap.
template <TransitionSystem TS, class Pred>
[[nodiscard]] InvariantResult<TS> check_invariant_with(EngineKind kind, const TS& ts,
                                                       Pred&& holds,
                                                       const EngineOptions& opts = {}) {
  TT_ASSERT(kind != EngineKind::kSymbolic);
  auto r = kind == EngineKind::kSequential
               ? check_invariant_store(ts, std::forward<Pred>(holds), opts.limits, opts.store)
               : check_invariant_parallel(ts, std::forward<Pred>(holds), opts);
  if (opts.finalize_stats) opts.finalize_stats(r.stats);
  return r;
}

}  // namespace tt::mc
