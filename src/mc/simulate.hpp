// Random-walk simulation over a TransitionSystem.
//
// The paper's design loop alternated model checking with eyeballing concrete
// scenarios; this engine provides that: a seeded random scheduler resolves
// all nondeterminism (fault injection included) and records the trajectory.
// Examples use it to print startup timelines.
#pragma once

#include <vector>

#include "mc/transition_system.hpp"
#include "support/rng.hpp"

namespace tt::mc {

template <class TS>
struct SimulationResult {
  std::vector<typename TS::State> trace;  ///< visited states, in order
  bool deadlocked = false;                ///< walk ended early: no successor
};

/// Walks `steps` transitions from a uniformly chosen initial state.
template <TransitionSystem TS>
[[nodiscard]] SimulationResult<TS> simulate(const TS& ts, int steps, Rng& rng) {
  using State = typename TS::State;
  SimulationResult<TS> result;

  std::vector<State> options;
  ts.initial_states([&](const State& s) { options.push_back(s); });
  if (options.empty()) {
    result.deadlocked = true;
    return result;
  }
  State current = options[rng.below(static_cast<std::uint32_t>(options.size()))];
  result.trace.push_back(current);

  for (int i = 0; i < steps; ++i) {
    options.clear();
    ts.successors(current, [&](const State& t) { options.push_back(t); });
    if (options.empty()) {
      result.deadlocked = true;
      break;
    }
    current = options[rng.below(static_cast<std::uint32_t>(options.size()))];
    result.trace.push_back(current);
  }
  return result;
}

/// Walks until `stop(state)` holds or `max_steps` transitions elapsed.
template <TransitionSystem TS, class Pred>
[[nodiscard]] SimulationResult<TS> simulate_until(const TS& ts, Pred&& stop, int max_steps,
                                                  Rng& rng) {
  using State = typename TS::State;
  SimulationResult<TS> result;

  std::vector<State> options;
  ts.initial_states([&](const State& s) { options.push_back(s); });
  if (options.empty()) {
    result.deadlocked = true;
    return result;
  }
  State current = options[rng.below(static_cast<std::uint32_t>(options.size()))];
  result.trace.push_back(current);

  for (int i = 0; i < max_steps && !stop(current); ++i) {
    options.clear();
    ts.successors(current, [&](const State& t) { options.push_back(t); });
    if (options.empty()) {
      result.deadlocked = true;
      break;
    }
    current = options[rng.below(static_cast<std::uint32_t>(options.size()))];
    result.trace.push_back(current);
  }
  return result;
}

}  // namespace tt::mc
