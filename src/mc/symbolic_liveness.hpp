// Symbolic liveness (the `sym` engine's EG leg): F(goal) / AG AF(goal) as a
// backward EG(¬goal) greatest fixpoint over a partitioned transition
// relation, so liveness no longer falls back to the sequential engine.
//
// Variable order is interleaved: state bit i of the packed words maps to
// BDD variable 2i (current) with variable 2i+1 as its next-state partner —
// the standard pairing that keeps a transition relation's current/next
// structure local in the order. The engine runs in two phases:
//
//   phase 1  explicit enumeration, symbolic sets. The relevant subgraph
//            (goal-free region for F(goal), full reachable graph for
//            AG AF(goal)) is walked breadth-first exactly like
//            symbolic_reachability.hpp — a queue doubling as the parent
//            forest, a `reached` BDD over the even variables as the
//            membership authority (eval_bits on Morton-spread words, zero
//            hash_ops) — while every goal-free edge is disjoined into
//            partitioned relation chunks T_k (minterm_pair_bits, a few
//            thousand edges per chunk). Goal-free deadlocks are flagged
//            here, first-in-BFS-order.
//   phase 2  the greatest fixpoint  Z := νZ. S_gf ∧ pre(Z)  computed as
//            Z_0 = S_gf;  Z_{j+1} = Z_j ∧ ∨_k ∃next. T_k ∧ Z_j[cur→next]
//            with and_exists doing the relational product per chunk. At the
//            fixpoint Z is exactly the set of states with an infinite
//            goal-free path inside the subgraph; the property is violated
//            iff Z ≠ ∅ (every state in the subgraph is reachable, so
//            nonempty Z is witnessed). `bdd_iterations` records the number
//            of fixpoint steps.
//
// Lasso extraction is deterministic: the entry state is the first queue
// (BFS-order) state inside Z, the stem is its parent-forest path, and the
// cycle walk repeatedly takes the first enumerated successor that is
// goal-free and in Z until a walk state repeats. Shape can differ from the
// seq/par lassos (all three replay through the model); verdicts agree.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "bdd/bdd.hpp"
#include "mc/liveness.hpp"
#include "mc/run_stats.hpp"
#include "mc/transition_system.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace tt::mc {

namespace detail {

/// Spreads the low 32 bits of `v` to the even bit positions of the result
/// (bit i -> bit 2i), the classic Morton interleave expansion.
[[nodiscard]] constexpr std::uint64_t spread32(std::uint64_t v) noexcept {
  v &= 0xffffffffull;
  v = (v | (v << 16)) & 0x0000ffff0000ffffull;
  v = (v | (v << 8)) & 0x00ff00ff00ff00ffull;
  v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

/// Shared symbolic goal-free-cycle check; `roots_all_reachable` selects
/// F(goal) (false) vs AG AF(goal) (true), mirroring owcty_liveness.
template <TransitionSystem TS, class Pred>
[[nodiscard]] LivenessResult<TS> symbolic_liveness(const TS& ts, Pred&& goal,
                                                   const SearchLimits& limits,
                                                   bool roots_all_reachable) {
  using State = typename TS::State;
  constexpr std::size_t kEdgesPerChunk = 4096;
  constexpr std::uint32_t kNoParent = 0xffffffffu;

  Timer timer;
  obs::Span run_span("liveness.symbolic");
  LivenessResult<TS> result;

  const int bits = ts.state_bits();
  TT_ASSERT(bits >= 1 && static_cast<std::size_t>(bits) <= 64 * TS::kWords);
  bdd::Manager mgr(2 * bits);

  // Packed state bits -> interleaved even-variable assignment, for eval_bits
  // membership tests against sets that live on the even (current) variables.
  auto spread_state = [&](const State& s, std::uint64_t* out) {
    for (std::size_t w = 0; w < TS::kWords; ++w) {
      out[2 * w] = spread32(s[w]);
      out[2 * w + 1] = spread32(s[w] >> 32);
    }
  };
  std::uint64_t spread_buf[2 * TS::kWords];

  bdd::NodeId reached = bdd::kFalse;  // membership: all enumerated states
  mgr.ref(reached);
  bdd::NodeId s_gf = bdd::kFalse;  // goal-free states of the subgraph
  mgr.ref(s_gf);
  std::vector<bdd::NodeId> chunks;  // partitioned goal-free relation, ref'd
  bdd::NodeId open_chunk = bdd::kFalse;
  mgr.ref(open_chunk);
  std::size_t open_edges = 0;

  std::vector<State> queue;      // BFS order; doubles as the parent forest
  std::vector<std::uint32_t> parent;
  std::vector<std::uint8_t> is_goal;  // parallel to queue (AG AF only)

  auto insert = [&](bdd::NodeId& set, bdd::NodeId minterm) {
    const bdd::NodeId next = mgr.lor(set, minterm);
    mgr.ref(next);
    mgr.deref(set);
    set = next;
  };

  // Enqueue a not-yet-reached state. F(goal) never sees goal states here.
  auto visit = [&](const State& s, std::uint32_t from, bool g) {
    insert(reached, mgr.minterm_even_bits(s.data(), bits));
    if (!g) insert(s_gf, mgr.minterm_even_bits(s.data(), bits));
    queue.push_back(s);
    parent.push_back(from);
    if (roots_all_reachable) is_goal.push_back(g ? 1 : 0);
  };

  auto member = [&](bdd::NodeId set, const State& s) {
    spread_state(s, spread_buf);
    return mgr.eval_bits(set, spread_buf);
  };

  ts.initial_states([&](const State& s) {
    const bool g = goal(s);
    if (g && !roots_all_reachable) return;
    if (member(reached, s)) {
      ++result.stats.dup_transitions;
      return;
    }
    visit(s, kNoParent, g);
  });
  result.stats.frontier_sizes.push_back(queue.size());

  bool limit_hit = false;
  std::uint32_t dead_idx = kNoParent;
  std::size_t head = 0;
  std::size_t level_end = queue.size();
  int depth = 0;
  obs::ManualSpan level_span;
  level_span.begin("symlive.level", depth, "depth");
  while (head < queue.size()) {
    if (head == level_end) {
      ++depth;
      result.stats.frontier_sizes.push_back(queue.size() - level_end);
      level_end = queue.size();
      level_span.end();
      level_span.begin("symlive.level", depth, "depth");
      obs::progress_tick({.phase = "symlive-bfs",
                          .states = queue.size(),
                          .transitions = result.stats.transitions,
                          .frontier = queue.size() - head,
                          .depth = depth,
                          .seconds = timer.seconds(),
                          .live_bdd_nodes = mgr.node_count()});
      if (depth > limits.max_depth) {
        limit_hit = true;
        break;
      }
    }
    if (queue.size() > limits.max_states) {
      limit_hit = true;
      break;
    }
    const State s = queue[head];
    const auto from = static_cast<std::uint32_t>(head);
    const bool src_gf = !roots_all_reachable || is_goal[head] == 0;
    ++head;
    std::size_t emitted = 0;
    ts.successors(s, [&](const State& t) {
      ++result.stats.transitions;
      ++emitted;
      const bool tg = goal(t);
      if (tg && !roots_all_reachable) return;  // F(goal): goal region never entered
      if (member(reached, t)) {
        ++result.stats.dup_transitions;
      } else {
        visit(t, from, tg);
      }
      if (src_gf && !tg) {
        insert(open_chunk, mgr.minterm_pair_bits(s.data(), t.data(), bits));
        if (++open_edges >= kEdgesPerChunk) {
          chunks.push_back(open_chunk);  // stays ref'd; ownership moves
          open_chunk = bdd::kFalse;
          mgr.ref(open_chunk);
          open_edges = 0;
        }
      }
    });
    if (emitted == 0 && src_gf) {
      dead_idx = from;  // first in BFS order: deterministic witness
      break;
    }
  }
  level_span.end();
  if (open_edges > 0) {
    chunks.push_back(open_chunk);
  } else {
    mgr.deref(open_chunk);
  }

  // Phase 2: Z := νZ. S_gf ∧ pre(Z), skipped when phase 1 already decided.
  bdd::NodeId z = bdd::kFalse;
  mgr.ref(z);
  if (dead_idx == kNoParent && !limit_hit && s_gf != bdd::kFalse) {
    std::vector<int> cur_to_next(static_cast<std::size_t>(2 * bits));
    std::vector<int> odd_vars;
    odd_vars.reserve(static_cast<std::size_t>(bits));
    for (int b = 0; b < bits; ++b) {
      cur_to_next[static_cast<std::size_t>(2 * b)] = 2 * b + 1;
      cur_to_next[static_cast<std::size_t>(2 * b + 1)] = 2 * b + 1;
      odd_vars.push_back(2 * b + 1);
    }
    const int map_id = mgr.register_rename(cur_to_next);
    bdd::NodeId odd_cube = mgr.cube(odd_vars);
    mgr.ref(odd_cube);

    mgr.deref(z);
    z = s_gf;
    mgr.ref(z);
    while (true) {
      ++result.stats.bdd_iterations;
      obs::Span iter_span("symlive.eg_iteration");
      iter_span.set_arg("iteration", static_cast<std::int64_t>(result.stats.bdd_iterations));
      obs::progress_tick({.phase = "symlive-eg",
                          .states = queue.size(),
                          .transitions = result.stats.transitions,
                          .round = static_cast<long long>(result.stats.bdd_iterations),
                          .seconds = timer.seconds(),
                          .live_bdd_nodes = mgr.node_count()});
      const bdd::NodeId zn = mgr.rename(z, map_id);
      mgr.ref(zn);
      bdd::NodeId pre = bdd::kFalse;
      mgr.ref(pre);
      for (const bdd::NodeId t : chunks) {
        const bdd::NodeId img = mgr.and_exists(t, zn, odd_cube);
        const bdd::NodeId merged = mgr.lor(pre, img);
        mgr.ref(merged);
        mgr.deref(pre);
        pre = merged;
      }
      mgr.deref(zn);
      const bdd::NodeId znew = mgr.land(z, pre);
      mgr.ref(znew);
      mgr.deref(pre);
      if (znew == z) {
        mgr.deref(znew);
        break;
      }
      mgr.deref(z);
      z = znew;
    }
    mgr.deref(odd_cube);
  }

  // Verdict + counterexample.
  if (dead_idx != kNoParent) {
    result.verdict = LivenessVerdict::kDeadlock;
    for (std::uint32_t i = dead_idx; i != kNoParent; i = parent[i]) {
      result.trace.push_back(queue[i]);
    }
    std::reverse(result.trace.begin(), result.trace.end());
  } else if (limit_hit) {
    result.verdict = LivenessVerdict::kLimit;
  } else if (z != bdd::kFalse) {
    result.verdict = LivenessVerdict::kCycle;
    // Entry: first BFS-order state inside Z (deterministic).
    std::uint32_t entry = kNoParent;
    for (std::uint32_t i = 0; i < queue.size(); ++i) {
      if (member(z, queue[i])) {
        entry = i;
        break;
      }
    }
    TT_ASSERT(entry != kNoParent);
    for (std::uint32_t i = entry; i != kNoParent; i = parent[i]) {
      result.trace.push_back(queue[i]);
    }
    std::reverse(result.trace.begin(), result.trace.end());
    const std::size_t stem_len = result.trace.size();
    // Cycle walk: first goal-free successor inside Z; every Z state has one
    // (the fixpoint guarantees pre(Z) membership). Revisit check is a linear
    // scan over the walk so hash_ops stays 0.
    std::vector<State> walk{queue[entry]};
    std::size_t loop_at = 0;
    while (true) {
      State next{};
      bool found = false;
      ts.successors(walk.back(), [&](const State& t) {
        if (found || goal(t) || !member(z, t)) return;
        next = t;
        found = true;
      });
      TT_ASSERT(found);
      bool closed = false;
      for (std::size_t i = 0; i < walk.size(); ++i) {
        if (walk[i] == next) {
          loop_at = i;
          closed = true;
          break;
        }
      }
      if (closed) break;
      walk.push_back(next);
    }
    for (std::size_t i = 1; i < walk.size(); ++i) result.trace.push_back(walk[i]);
    result.loop_start = stem_len - 1 + loop_at;
  }
  mgr.deref(z);

  // The reached BDD is the membership authority; it must agree with the
  // queue exactly (each state enumerated once) unless we stopped early.
  // The count is over all 2*bits variables and `reached` leaves the odd
  // (next-state) variables free, so each state contributes 2^bits models.
  if (!limit_hit && dead_idx == kNoParent) {
    BigUint expected(queue.size());
    expected *= BigUint::pow2(static_cast<unsigned>(bits));
    TT_ASSERT(mgr.sat_count_exact(reached) == expected);
  }
  run_span.set_arg("states", static_cast<std::int64_t>(queue.size()));
  result.stats.states = queue.size();
  result.stats.depth = depth;
  const bdd::ManagerStats ms = mgr.stats();
  result.stats.memory_bytes = ms.memory_bytes + queue.size() * sizeof(State) +
                              parent.size() * sizeof(std::uint32_t);
  result.stats.bdd_peak_live_nodes = ms.peak_live_nodes;
  result.stats.bdd_gc_collections = ms.gc_runs;
  result.stats.bdd_unique_hit_rate = ms.unique_hit_rate();
  result.stats.bdd_op_cache_hit_rate = ms.cache_hit_rate();
  result.stats.seconds = timer.seconds();
  result.stats.exhausted = result.verdict != LivenessVerdict::kLimit;

  for (const bdd::NodeId t : chunks) mgr.deref(t);
  mgr.deref(s_gf);
  mgr.deref(reached);
  return result;
}

}  // namespace detail

/// Symbolic F(goal): EG(¬goal) over the reachable goal-free subgraph.
/// Verdicts agree with the explicit engines; on holds-runs states and
/// transitions match them exactly and hash_ops is 0 (BDD membership).
template <TransitionSystem TS, class Pred>
[[nodiscard]] LivenessResult<TS> check_eventually_symbolic(const TS& ts, Pred&& goal,
                                                           const SearchLimits& limits = {}) {
  return detail::symbolic_liveness(ts, std::forward<Pred>(goal), limits,
                                   /*roots_all_reachable=*/false);
}

/// Symbolic AG AF(goal): EG(¬goal) over the goal-free restriction of the
/// full reachable graph (recovery obligations included).
template <TransitionSystem TS, class Pred>
[[nodiscard]] LivenessResult<TS> check_always_eventually_symbolic(
    const TS& ts, Pred&& goal, const SearchLimits& limits = {}) {
  return detail::symbolic_liveness(ts, std::forward<Pred>(goal), limits,
                                   /*roots_all_reachable=*/true);
}

}  // namespace tt::mc
