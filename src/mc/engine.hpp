// The engine layer: which exploration engine runs a property, with how many
// threads, under which limits. Shared by the sequential BFS/DFS engines
// (reachability.hpp, liveness.hpp) and the parallel frontier engine
// (parallel_reachability.hpp); core/verifier plumbs these options through the
// lemma facade.
#pragma once

#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "mc/run_stats.hpp"

namespace tt::mc {

/// Which exploration engine to use. kAuto resolves to the parallel engine
/// for every property class: frontier BFS for invariant lemmas
/// (parallel_reachability.hpp) and OWCTY goal-free-cycle trimming for the
/// liveness lemmas (parallel_liveness.hpp). kSequential forces the
/// single-threaded BFS / colored-DFS lasso search. kSymbolic keeps the
/// reached set as a BDD — reachability for invariants
/// (mc/symbolic_reachability.hpp) and a backward EG(¬goal) greatest
/// fixpoint for liveness (mc/symbolic_liveness.hpp).
///
/// kKInduction and kIc3 are the SAT-based *proof* engines (bmc/, DESIGN.md
/// §3.10): they run on the star-cluster guarded-command IR (tta/star_ir.hpp)
/// instead of enumerating states, and — unlike every bounded or exploratory
/// engine — can return a PROVED verdict that holds at every depth. Invariant
/// lemmas only.
enum class EngineKind {
  kAuto,
  kSequential,
  kParallel,
  kSymbolic,
  kKInduction,
  kIc3,
};

/// Canonical engine name ("auto"/"seq"/"par"/"sym"/"kind"/"ic3"). The
/// pointer has static storage duration, so it is safe to keep (CLI output,
/// bench records, obs::Span names all rely on this).
[[nodiscard]] constexpr const char* to_string(EngineKind k) noexcept {
  switch (k) {
    case EngineKind::kAuto: return "auto";
    case EngineKind::kSequential: return "seq";
    case EngineKind::kParallel: return "par";
    case EngineKind::kSymbolic: return "sym";
    case EngineKind::kKInduction: return "kind";
    case EngineKind::kIc3: return "ic3";
  }
  return "?";
}

/// Parses an engine name ("auto", "seq", "par", "sym", "kind", "ic3");
/// returns false and leaves `out` untouched on unknown names.
[[nodiscard]] inline bool parse_engine(std::string_view name, EngineKind& out) noexcept {
  for (const EngineKind k : {EngineKind::kAuto, EngineKind::kSequential,
                             EngineKind::kParallel, EngineKind::kSymbolic,
                             EngineKind::kKInduction, EngineKind::kIc3}) {
    if (name == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

/// True for the SAT-based proof engines (k-induction, IC3/PDR), which can
/// prove invariants outright instead of exploring states.
[[nodiscard]] constexpr bool is_proof_engine(EngineKind k) noexcept {
  return k == EngineKind::kKInduction || k == EngineKind::kIc3;
}

/// Which state-space reduction the model applies below the engines (the
/// engines themselves are generic over the TransitionSystem and never see
/// it: with kSymmetry every emitted successor is already an orbit
/// representative, so the hash-once pipeline explores the quotient).
enum class ReductionKind {
  kNone,
  kSymmetry,
  kPartialOrder,
  kSymPor,
};

/// Canonical reduction name ("none"/"sym"/"por"/"sym+por"); static storage
/// duration.
[[nodiscard]] constexpr const char* to_string(ReductionKind k) noexcept {
  switch (k) {
    case ReductionKind::kNone: return "none";
    case ReductionKind::kSymmetry: return "sym";
    case ReductionKind::kPartialOrder: return "por";
    case ReductionKind::kSymPor: return "sym+por";
  }
  return "?";
}

/// Parses a reduction name ("none", "sym", "por", "sym+por"); returns false
/// and leaves `out` untouched on unknown names.
[[nodiscard]] inline bool parse_reduction(std::string_view name, ReductionKind& out) noexcept {
  for (const ReductionKind k : {ReductionKind::kNone, ReductionKind::kSymmetry,
                                ReductionKind::kPartialOrder, ReductionKind::kSymPor}) {
    if (name == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

/// Which state-store implementation backs the explicit-state engines.
/// kShardedLocked is the lock-striped ShardedStateIndexMap (one mutex per
/// shard on the insert path); kLockFree is the CAS-claim LockFreeStateIndexMap
/// with delta compression of the closed set and the write-behind out-of-core
/// spill tier; kLockFreeFp is the same store in fingerprint-only mode
/// (sealed page bodies dropped, 64-bit fingerprints kept, collisions
/// resolved exactly by predecessor-path re-expansion — DESIGN.md §3.9).
/// All encode ids identically, so verdicts, counts and traces are
/// bit-identical between them at any thread count. The liveness engines
/// need random access to every stored body (trimming, lasso extraction), so
/// they run kLockFreeFp as plain kLockFree.
enum class StoreKind {
  kShardedLocked,
  kLockFree,
  kLockFreeFp,
};

/// Canonical store name ("locked"/"lockfree"/"lockfree-fp"); static storage
/// duration.
[[nodiscard]] constexpr const char* to_string(StoreKind k) noexcept {
  switch (k) {
    case StoreKind::kShardedLocked: return "locked";
    case StoreKind::kLockFree: return "lockfree";
    case StoreKind::kLockFreeFp: return "lockfree-fp";
  }
  return "?";
}

/// Parses a store name ("locked", "lockfree", "lockfree-fp"); returns false
/// and leaves `out` untouched on unknown names.
[[nodiscard]] inline bool parse_store(std::string_view name, StoreKind& out) noexcept {
  for (const StoreKind k : {StoreKind::kShardedLocked, StoreKind::kLockFree,
                            StoreKind::kLockFreeFp}) {
    if (name == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

/// State-store dials, plumbed from VerifyOptions/the CLI down to the engines.
struct StoreOptions {
  StoreKind kind = StoreKind::kShardedLocked;
  /// Resident-memory budget for the state store in bytes; 0 = unlimited.
  /// Only the lock-free store honors it (sealed pages spill to disk at
  /// quiescent points while the store exceeds the budget).
  std::size_t mem_budget_bytes = 0;
  /// Spill directory override (--spill-dir); empty = TTSTART_SPILL_DIR,
  /// then TMPDIR, then /tmp. An unwritable requested directory is a hard
  /// error, never a silent /tmp fallback.
  std::string spill_dir;
};

/// Per-level progress snapshot handed to EngineOptions::progress. Invoked
/// on the coordinating thread only, between levels — never concurrently.
struct LevelProgress {
  int depth = 0;             ///< level just completed (0-based BFS depth)
  std::size_t states = 0;    ///< states interned so far
  std::size_t transitions = 0;  ///< transitions explored so far
  std::size_t frontier = 0;  ///< size of the next frontier (states)
  double seconds = 0.0;      ///< elapsed wall-clock seconds since run start
};

/// Options common to every exploration engine.
struct EngineOptions {
  EngineOptions() = default;
  EngineOptions(const SearchLimits& l) : limits(l) {}  // NOLINT: deliberate implicit lift

  /// Worker threads. 0 = resolve from the TTSTART_THREADS environment
  /// variable, falling back to std::thread::hardware_concurrency().
  int threads = 0;
  SearchLimits limits;
  StoreOptions store;
  /// Called once per completed BFS level (from the coordinating thread).
  /// Leave empty for no progress reporting.
  std::function<void(const LevelProgress&)> progress;
  /// Called once with the run's final RunStats, after exploration joined but
  /// before the result is returned — the hook through which reduction-layer
  /// counters (canon_ops, ample_sets, ...) reach the stats without the
  /// engines knowing the transition system carries a reduction. Leave empty
  /// for no annotation.
  std::function<void(RunStats&)> finalize_stats;
};

/// Resolves a requested thread count: explicit > TTSTART_THREADS > hardware.
/// Always returns >= 1. Reads the environment, so call it once per run, not
/// per state.
[[nodiscard]] inline int resolve_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("TTSTART_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

}  // namespace tt::mc
