// Invariant checking with a BDD-compressed reached set (the `sym` engine).
//
// The explicit engines intern every packed state into a hash table; here the
// reached set is a single BDD over the model's state bits (bit i of the
// packed words is BDD variable i, the support::BitWriter layout). Membership
// is a complement-edge walk (Manager::eval_bits), insertion disjoins the
// state's minterm, and the exact reachable count falls out of BDD model
// counting rather than a table size — which is how the golden-count tests
// cross-check the symbolic engine against the explicit ones bit-for-bit.
//
// Successors are still enumerated explicitly through the TransitionSystem
// callbacks (the tta::Cluster two-phase semantics has no small relational
// encoding; see DESIGN.md §3.3), so this engine trades the interning table
// for shared BDD structure while keeping trace reconstruction: the BFS
// queue doubles as the parent forest. The fully relational image pipeline
// (partitioned and_exists) lives in bdd::SymbolicEngine for kernel::System
// models.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "bdd/bdd.hpp"
#include "mc/reachability.hpp"
#include "mc/run_stats.hpp"
#include "mc/transition_system.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace tt::mc {

/// Checks G(holds) over the reachable states of `ts`, keeping the reached
/// set as a BDD. Requires `ts.state_bits()` (every packed model has it).
/// Single-threaded; SearchLimits work as in the sequential engine.
template <TransitionSystem TS, class Pred>
[[nodiscard]] InvariantResult<TS> check_invariant_symbolic(
    const TS& ts, Pred&& holds, const SearchLimits& limits = {}) {
  using State = typename TS::State;
  Timer timer;
  obs::Span run_span("bfs.symbolic");
  InvariantResult<TS> result;

  const int bits = ts.state_bits();
  bdd::Manager mgr(bits);
  bdd::NodeId reached = bdd::kFalse;
  mgr.ref(reached);

  constexpr std::uint32_t kNoParent = 0xffffffffu;
  std::vector<State> queue;
  std::vector<std::uint32_t> parent;

  bool violated = false;
  std::uint32_t bad_idx = 0;
  auto visit = [&](const State& s, std::uint32_t from) {
    if (violated) return;
    if (mgr.eval_bits(reached, s.data())) {
      ++result.stats.dup_transitions;
      return;
    }
    const bdd::NodeId with_s = mgr.lor(reached, mgr.minterm_bits(s.data(), bits));
    mgr.ref(with_s);
    mgr.deref(reached);
    reached = with_s;
    queue.push_back(s);
    parent.push_back(from);
    if (!holds(s)) {
      violated = true;
      bad_idx = static_cast<std::uint32_t>(queue.size() - 1);
    }
  };

  ts.initial_states([&](const State& s) { visit(s, kNoParent); });
  result.stats.frontier_sizes.push_back(queue.size());

  std::size_t head = 0;
  std::size_t level_end = queue.size();
  int depth = 0;
  obs::ManualSpan level_span;
  level_span.begin("sym.level", depth, "depth");
  while (head < queue.size() && !violated) {
    if (head == level_end) {
      ++depth;
      result.stats.frontier_sizes.push_back(queue.size() - level_end);
      level_end = queue.size();
      level_span.end();
      level_span.begin("sym.level", depth, "depth");
      obs::progress_tick({.phase = "sym",
                          .states = queue.size(),
                          .transitions = result.stats.transitions,
                          .frontier = queue.size() - head,
                          .depth = depth,
                          .seconds = timer.seconds(),
                          .live_bdd_nodes = mgr.node_count()});
      if (depth > limits.max_depth) break;
    }
    if (queue.size() > limits.max_states) break;
    const State s = queue[head];
    const auto from = static_cast<std::uint32_t>(head);
    ++head;
    ts.successors(s, [&](const State& t) {
      ++result.stats.transitions;
      visit(t, from);
    });
  }

  level_span.end();
  run_span.set_arg("states", static_cast<std::int64_t>(queue.size()));
  // The BDD is the membership authority: report its exact model count as
  // the state count (it must agree with the queue, which saw each state
  // exactly once).
  const BigUint exact = mgr.sat_count_exact(reached);
  TT_ASSERT(exact.fits_u64() && exact.to_u64() == queue.size());
  result.stats.states = exact.to_u64();
  result.stats.depth = depth;
  const bdd::ManagerStats ms = mgr.stats();
  result.stats.memory_bytes = ms.memory_bytes + queue.size() * sizeof(State) +
                              parent.size() * sizeof(std::uint32_t);
  result.stats.bdd_peak_live_nodes = ms.peak_live_nodes;
  result.stats.bdd_gc_collections = ms.gc_runs;
  result.stats.bdd_unique_hit_rate = ms.unique_hit_rate();
  result.stats.bdd_op_cache_hit_rate = ms.cache_hit_rate();
  result.stats.bdd_iterations = depth;
  result.stats.seconds = timer.seconds();

  if (violated) {
    result.verdict = Verdict::kViolated;
    for (std::uint32_t i = bad_idx; i != kNoParent; i = parent[i]) {
      result.trace.push_back(queue[i]);
    }
    std::reverse(result.trace.begin(), result.trace.end());
  } else if (head < queue.size()) {
    result.verdict = Verdict::kLimit;
  } else {
    result.verdict = Verdict::kHolds;
  }
  result.stats.exhausted = result.verdict != Verdict::kLimit;
  mgr.deref(reached);
  return result;
}

/// Exhaustive reachable-state count via the BDD-set engine (the symbolic
/// leg of the Fig. 5 reachable-state columns).
template <TransitionSystem TS>
[[nodiscard]] RunStats count_reachable_symbolic(const TS& ts,
                                               const SearchLimits& limits = {}) {
  auto r = check_invariant_symbolic(
      ts, [](const typename TS::State&) { return true; }, limits);
  return r.stats;
}

}  // namespace tt::mc
