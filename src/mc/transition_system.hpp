// The TransitionSystem concept: the contract between a model (tta::Cluster,
// kernel::PackedSystem, ...) and the explicit-state engines.
//
// A model exposes packed states as std::array<u64, kWords> and enumerates
// initial states and successors through callbacks, so the engines never
// allocate per-transition and the model never materializes successor sets.
#pragma once

#include <array>
#include <concepts>
#include <cstdint>

namespace tt::mc {

template <class TS>
concept TransitionSystem = requires(const TS ts, const typename TS::State& s) {
  { TS::kWords } -> std::convertible_to<std::size_t>;
  requires std::same_as<typename TS::State, std::array<std::uint64_t, TS::kWords>>;
  ts.initial_states([](const typename TS::State&) {});
  ts.successors(s, [](const typename TS::State&) {});
};

}  // namespace tt::mc
