// Shared explicit-state exploration scaffolding: the visit bookkeeping
// (intern, parent link, queue position) and counterexample reconstruction
// used by the sequential invariant engine, the liveness engine's
// reachable-set materialization, and the parallel frontier engine. One
// implementation instead of three keeps trace semantics (initial state ..
// violating state, parent-minimal) identical across engines.
#pragma once

#include <cstdint>
#include <vector>

#include "mc/engine.hpp"
#include "mc/run_stats.hpp"
#include "obs/trace.hpp"
#include "support/recent_cache.hpp"
#include "support/state_index_map.hpp"

namespace tt::mc::detail {

/// Applies the StoreOptions dials a store supports; a no-op for stores
/// without the corresponding hooks (StateIndexMap, ShardedStateIndexMap).
template <class Map>
void apply_store_options(Map& seen, const StoreOptions& store) {
  if constexpr (requires { seen.set_mem_budget(std::size_t{}); }) {
    seen.set_mem_budget(store.mem_budget_bytes);
  }
}

/// Runs the store's between-levels maintenance (probe-table growth, closed-
/// set sealing, out-of-core spill) inside an obs span when the store has one.
/// Must be called from the coordinating thread at a quiescent point;
/// `expected_new` is a headroom hint for the next level's fresh states.
template <class Map>
void maintain_store(Map& seen, std::size_t expected_new) {
  if constexpr (requires { seen.quiescent_maintain(std::size_t{}); }) {
    obs::Span span("store.maintain");
    const auto ms = seen.quiescent_maintain(expected_new);
    if (ms.pages_sealed != 0) {
      span.set_arg("pages_sealed", static_cast<std::int64_t>(ms.pages_sealed));
    }
    if (ms.pages_spilled != 0) {
      span.set_arg("pages_spilled", static_cast<std::int64_t>(ms.pages_spilled));
      span.set_arg("bytes_spilled", static_cast<std::int64_t>(ms.bytes_spilled));
    }
  }
}

/// Copies the store's cumulative counters into RunStats when it keeps any
/// (the lock-free store's cas_retries / compression / spill / Bloom columns).
template <class Map>
void copy_store_stats(const Map& seen, RunStats& stats) {
  if constexpr (requires { seen.store_stats(); }) {
    const auto st = seen.store_stats();
    stats.cas_retries = st.cas_retries;
    stats.pages_compressed = st.pages_compressed;
    stats.spill_bytes = st.spill_bytes;
    stats.bloom_negatives = st.bloom_negatives;
  }
}

/// Sequential BFS working set: interned states, optional parent links and
/// the dense-id queue. `visit` is the single entry point engines feed states
/// through (initial and successor alike).
///
/// `Map` is any store with the StateIndexMap interface that assigns *dense*
/// ids in insertion order — StateIndexMap itself, or a single-shard
/// LockFreeStateIndexMap (whose serial-insert path is picked automatically).
/// Parent links and the queue are indexed by those dense ids.
template <std::size_t W, class Map = StateIndexMap<W>>
struct BfsCore {
  using State = std::array<std::uint64_t, W>;
  static constexpr std::uint32_t kNoParent = Map::kEmpty;

  explicit BfsCore(bool track_parents = true, const SearchLimits& limits = {})
      : parents(track_parents) {
    // A bounded run pre-sizes the store so the cap is hit before the
    // allocator is (and no rehash happens mid-search).
    if (limits.states_bounded()) {
      seen.reserve(limits.max_states + limits.max_states / 8 + 1);
    }
  }

  /// Interns `s` with BFS parent `from`; enqueues when fresh.
  /// Returns {dense id, fresh}.
  std::pair<std::uint32_t, bool> visit(const State& s, std::uint32_t from) {
    return visit(s, from, hash_words(s));
  }

  /// Hash-once visit: `h` must equal `hash_words(s)`. Probes the
  /// recently-seen cache first — a verified hit short-circuits the interning
  /// table entirely (the dominant case at high fault degrees, where ~115
  /// transitions per state are duplicates).
  std::pair<std::uint32_t, bool> visit(const State& s, std::uint32_t from, std::uint64_t h) {
    const std::uint32_t hint = cache.lookup(h);
    if (hint != RecentSeenCache::kMiss && seen.at(hint) == s) {
      ++cache_hits;
      ++dup_visits;
      return {hint, false};
    }
    auto [idx, fresh] = [&] {
      // BfsCore is strictly single-threaded: take the serial insert path
      // (inline growth, relaxed atomics) when the store distinguishes one.
      if constexpr (requires { seen.insert_serial(s, h); }) {
        return seen.insert_serial(s, h);
      } else {
        return seen.insert(s, h);
      }
    }();
    cache.remember(h, idx);
    if (fresh) {
      if (parents) parent.push_back(from);
      queue.push_back(idx);
    } else {
      ++dup_visits;
    }
    return {idx, fresh};
  }

  /// Reconstructs initial..`bad` by walking parent links.
  [[nodiscard]] std::vector<State> trace_to(std::uint32_t bad) const {
    std::vector<State> rev;
    for (std::uint32_t at = bad; at != kNoParent; at = parent[at]) rev.push_back(seen.at(at));
    return {rev.rbegin(), rev.rend()};
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return seen.memory_bytes() + parent.capacity() * sizeof(std::uint32_t) +
           queue.capacity() * sizeof(std::uint32_t) + cache.memory_bytes();
  }

  Map seen;
  RecentSeenCache cache;
  std::vector<std::uint32_t> parent;  // dense id -> predecessor id (if `parents`)
  std::vector<std::uint32_t> queue;   // dense ids in BFS order
  std::size_t cache_hits = 0;  ///< duplicates killed by the recently-seen cache
  std::size_t dup_visits = 0;  ///< visits of already-interned states
  bool parents = true;
};

/// Parent-walking trace reconstruction over engine-specific id spaces (the
/// parallel engine's ids are (shard, local) pairs, so it supplies its own
/// accessors). `state_of(id)` yields the packed state, `parent_of(id)` the
/// predecessor id or `none`.
template <class State, class StateOf, class ParentOf>
[[nodiscard]] std::vector<State> reconstruct_trace(std::uint32_t bad, std::uint32_t none,
                                                   StateOf&& state_of, ParentOf&& parent_of) {
  std::vector<State> rev;
  for (std::uint32_t at = bad; at != none; at = parent_of(at)) rev.push_back(state_of(at));
  return {rev.rbegin(), rev.rend()};
}

}  // namespace tt::mc::detail
