// Shared explicit-state exploration scaffolding: the visit bookkeeping
// (intern, parent link, queue position) and counterexample reconstruction
// used by the sequential invariant engine, the liveness engine's
// reachable-set materialization, and the parallel frontier engine. One
// implementation instead of three keeps trace semantics (initial state ..
// violating state, parent-minimal) identical across engines.
#pragma once

#include <cstdint>
#include <vector>

#include "mc/run_stats.hpp"
#include "support/recent_cache.hpp"
#include "support/state_index_map.hpp"

namespace tt::mc::detail {

/// Sequential BFS working set: interned states, optional parent links and
/// the dense-id queue. `visit` is the single entry point engines feed states
/// through (initial and successor alike).
template <std::size_t W>
struct BfsCore {
  using State = std::array<std::uint64_t, W>;
  static constexpr std::uint32_t kNoParent = StateIndexMap<W>::kEmpty;

  explicit BfsCore(bool track_parents = true, const SearchLimits& limits = {})
      : parents(track_parents) {
    // A bounded run pre-sizes the store so the cap is hit before the
    // allocator is (and no rehash happens mid-search).
    if (limits.states_bounded()) {
      seen.reserve(limits.max_states + limits.max_states / 8 + 1);
    }
  }

  /// Interns `s` with BFS parent `from`; enqueues when fresh.
  /// Returns {dense id, fresh}.
  std::pair<std::uint32_t, bool> visit(const State& s, std::uint32_t from) {
    return visit(s, from, hash_words(s));
  }

  /// Hash-once visit: `h` must equal `hash_words(s)`. Probes the
  /// recently-seen cache first — a verified hit short-circuits the interning
  /// table entirely (the dominant case at high fault degrees, where ~115
  /// transitions per state are duplicates).
  std::pair<std::uint32_t, bool> visit(const State& s, std::uint32_t from, std::uint64_t h) {
    const std::uint32_t hint = cache.lookup(h);
    if (hint != RecentSeenCache::kMiss && seen.at(hint) == s) {
      ++cache_hits;
      ++dup_visits;
      return {hint, false};
    }
    auto [idx, fresh] = seen.insert(s, h);
    cache.remember(h, idx);
    if (fresh) {
      if (parents) parent.push_back(from);
      queue.push_back(idx);
    } else {
      ++dup_visits;
    }
    return {idx, fresh};
  }

  /// Reconstructs initial..`bad` by walking parent links.
  [[nodiscard]] std::vector<State> trace_to(std::uint32_t bad) const {
    std::vector<State> rev;
    for (std::uint32_t at = bad; at != kNoParent; at = parent[at]) rev.push_back(seen.at(at));
    return {rev.rbegin(), rev.rend()};
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return seen.memory_bytes() + parent.capacity() * sizeof(std::uint32_t) +
           queue.capacity() * sizeof(std::uint32_t) + cache.memory_bytes();
  }

  StateIndexMap<W> seen;
  RecentSeenCache cache;
  std::vector<std::uint32_t> parent;  // dense id -> predecessor id (if `parents`)
  std::vector<std::uint32_t> queue;   // dense ids in BFS order
  std::size_t cache_hits = 0;  ///< duplicates killed by the recently-seen cache
  std::size_t dup_visits = 0;  ///< visits of already-interned states
  bool parents = true;
};

/// Parent-walking trace reconstruction over engine-specific id spaces (the
/// parallel engine's ids are (shard, local) pairs, so it supplies its own
/// accessors). `state_of(id)` yields the packed state, `parent_of(id)` the
/// predecessor id or `none`.
template <class State, class StateOf, class ParentOf>
[[nodiscard]] std::vector<State> reconstruct_trace(std::uint32_t bad, std::uint32_t none,
                                                   StateOf&& state_of, ParentOf&& parent_of) {
  std::vector<State> rev;
  for (std::uint32_t at = bad; at != none; at = parent_of(at)) rev.push_back(state_of(at));
  return {rev.rbegin(), rev.rend()};
}

}  // namespace tt::mc::detail
