// Shared explicit-state exploration scaffolding: the visit bookkeeping
// (intern, parent link, queue position) and counterexample reconstruction
// used by the sequential invariant engine, the liveness engine's
// reachable-set materialization, and the parallel frontier engine. One
// implementation instead of three keeps trace semantics (initial state ..
// violating state, parent-minimal) identical across engines.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "mc/engine.hpp"
#include "mc/run_stats.hpp"
#include "obs/trace.hpp"
#include "support/hash.hpp"
#include "support/recent_cache.hpp"
#include "support/state_index_map.hpp"

namespace tt::mc::detail {

/// Applies the StoreOptions dials a store supports; a no-op for stores
/// without the corresponding hooks (StateIndexMap, ShardedStateIndexMap).
/// Must run before the first insert: fingerprint-only mode and the spill
/// directory are pre-insert dials.
template <class Map>
void apply_store_options(Map& seen, const StoreOptions& store) {
  if constexpr (requires { seen.set_mem_budget(std::size_t{}); }) {
    seen.set_mem_budget(store.mem_budget_bytes);
  }
  if constexpr (requires { seen.set_spill_dir(std::string{}); }) {
    if (!store.spill_dir.empty()) seen.set_spill_dir(store.spill_dir);
  }
  if constexpr (requires { seen.set_fingerprint_only(true); }) {
    if (store.kind == StoreKind::kLockFreeFp) seen.set_fingerprint_only(true);
  }
}

/// Runs the store's between-levels maintenance (probe-table growth, closed-
/// set sealing, write-behind spill) inside an obs span when the store has
/// one. Must be called from the coordinating thread at a quiescent point;
/// `expected_new` is a headroom hint for the next level's fresh states.
/// Emits the `store.spill_async` / `store.sync_wait` counter tracks so a
/// trace shows when the pipeline went asynchronous vs. when it stalled.
template <class Map>
void maintain_store(Map& seen, std::size_t expected_new) {
  if constexpr (requires { seen.quiescent_maintain(std::size_t{}); }) {
    obs::Span span("store.maintain");
    const auto ms = seen.quiescent_maintain(expected_new);
    if (ms.pages_sealed != 0) {
      span.set_arg("pages_sealed", static_cast<std::int64_t>(ms.pages_sealed));
    }
    if (ms.pages_spilled != 0) {
      span.set_arg("pages_spilled", static_cast<std::int64_t>(ms.pages_spilled));
      span.set_arg("bytes_spilled", static_cast<std::int64_t>(ms.bytes_spilled));
    }
    if constexpr (requires { ms.pages_enqueued; }) {
      if (ms.pages_enqueued != 0) {
        span.set_arg("spill_async_pages", static_cast<std::int64_t>(ms.pages_enqueued));
        obs::emit_counter("store.spill_async", static_cast<double>(ms.pages_enqueued));
      }
      if (ms.sync_waits != 0) {
        span.set_arg("spill_sync_waits", static_cast<std::int64_t>(ms.sync_waits));
        obs::emit_counter("store.sync_wait", static_cast<double>(ms.sync_waits));
      }
    }
  }
}

/// Copies the store's cumulative counters into RunStats when it keeps any
/// (the lock-free store's cas_retries / compression / spill / Bloom columns
/// and the out-of-core pipeline's async/sync-wait/fp counters).
template <class Map>
void copy_store_stats(const Map& seen, RunStats& stats) {
  if constexpr (requires { seen.store_stats(); }) {
    const auto st = seen.store_stats();
    stats.cas_retries = st.cas_retries;
    stats.pages_compressed = st.pages_compressed;
    stats.spill_bytes = st.spill_bytes;
    stats.bloom_negatives = st.bloom_negatives;
    if constexpr (requires { st.spill_async_pages; }) {
      stats.spill_sync_waits = st.spill_sync_waits;
      stats.spill_async_pages = st.spill_async_pages;
      stats.fp_collisions = st.fp_collisions;
      stats.reexpansions = st.reexpansions;
    }
  }
}

/// Installs the fingerprint-only store's exact-reconstruction hook
/// (DESIGN.md §3.9): climb parent links to the nearest ancestor whose body
/// is still readable (resident tier, pinned collision state, or memoized
/// from an earlier replay), then replay the transition relation downwards,
/// matching each step by (masked fingerprint, shard of the full hash).
/// The match is unambiguous because the store pins — exactly — every stored
/// state that shares a masked fingerprint with a distinct stored state, and
/// chain members are by construction unpinned. Thread-safe: the memo is
/// mutex-guarded and parent links of resolvable ids were published before
/// the level barrier the resolving thread already passed.
template <std::size_t W, class Map, class TS, class ParentOf>
void install_reexpander(const TS& ts, Map& seen, ParentOf parent_of, std::uint32_t none) {
  using State = std::array<std::uint64_t, W>;
  struct Memo {
    std::mutex mu;
    std::unordered_map<std::uint32_t, State> states;
  };
  auto memo = std::make_shared<Memo>();
  static constexpr std::size_t kMemoCap = std::size_t{1} << 20;
  seen.set_resolver([&ts, &seen, parent_of, none, memo](std::uint32_t id,
                                                        State& out) -> bool {
    auto lookup = [&](std::uint32_t at, State& s) -> bool {
      {
        std::lock_guard<std::mutex> lk(memo->mu);
        const auto it = memo->states.find(at);
        if (it != memo->states.end()) {
          s = it->second;
          return true;
        }
      }
      return seen.resident_state(at, s);
    };
    auto memoize = [&](std::uint32_t at, const State& s) {
      std::lock_guard<std::mutex> lk(memo->mu);
      if (memo->states.size() < kMemoCap) memo->states.emplace(at, s);
    };
    auto step_matches = [&](std::uint32_t child, const State& t) {
      const std::uint64_t h = hash_words(t);
      return (h & seen.fp_mask()) == seen.fingerprint_of(child) &&
             seen.shard_of(h) == seen.shard_of_id(child);
    };
    std::vector<std::uint32_t> chain;
    std::uint32_t at = id;
    State cur{};
    bool have = false;
    while (true) {
      if (lookup(at, cur)) {
        have = true;
        break;
      }
      chain.push_back(at);
      const std::uint32_t p = parent_of(at);
      if (p == none) break;
      at = p;
    }
    if (!have) {
      // The chain bottoms out at an initial state whose body was dropped:
      // recover it by re-enumerating the (few) initial states.
      const std::uint32_t init = chain.back();
      chain.pop_back();
      ts.initial_states([&](const State& s0) {
        if (!have && step_matches(init, s0)) {
          cur = s0;
          have = true;
        }
      });
      if (!have) return false;
      memoize(init, cur);
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      const std::uint32_t child = *it;
      bool found = false;
      State nxt{};
      ts.successors(cur, [&](const State& t) {
        if (!found && step_matches(child, t)) {
          nxt = t;
          found = true;
        }
      });
      if (!found) return false;
      cur = nxt;
      memoize(child, cur);
    }
    out = cur;
    return true;
  });
}

/// Sequential BFS working set: interned states, optional parent links and
/// the dense-id queue. `visit` is the single entry point engines feed states
/// through (initial and successor alike).
///
/// `Map` is any store with the StateIndexMap interface that assigns *dense*
/// ids in insertion order — StateIndexMap itself, or a single-shard
/// LockFreeStateIndexMap (whose serial-insert path is picked automatically).
/// Parent links and the queue are indexed by those dense ids.
template <std::size_t W, class Map = StateIndexMap<W>>
struct BfsCore {
  using State = std::array<std::uint64_t, W>;
  static constexpr std::uint32_t kNoParent = Map::kEmpty;

  explicit BfsCore(bool track_parents = true, const SearchLimits& limits = {})
      : parents(track_parents) {
    // A bounded run pre-sizes the store so the cap is hit before the
    // allocator is (and no rehash happens mid-search).
    if (limits.states_bounded()) {
      seen.reserve(limits.max_states + limits.max_states / 8 + 1);
    }
  }

  /// Interns `s` with BFS parent `from`; enqueues when fresh.
  /// Returns {dense id, fresh}.
  std::pair<std::uint32_t, bool> visit(const State& s, std::uint32_t from) {
    return visit(s, from, hash_words(s));
  }

  /// Hash-once visit: `h` must equal `hash_words(s)`. Probes the
  /// recently-seen cache first — a verified hit short-circuits the interning
  /// table entirely (the dominant case at high fault degrees, where ~115
  /// transitions per state are duplicates).
  std::pair<std::uint32_t, bool> visit(const State& s, std::uint32_t from, std::uint64_t h) {
    const std::uint32_t hint = cache.lookup(h);
    if (hint != RecentSeenCache::kMiss && seen.at(hint) == s) {
      ++cache_hits;
      ++dup_visits;
      return {hint, false};
    }
    auto [idx, fresh] = [&] {
      // BfsCore is strictly single-threaded: take the serial insert path
      // (inline growth, relaxed atomics) when the store distinguishes one.
      if constexpr (requires { seen.insert_serial(s, h); }) {
        return seen.insert_serial(s, h);
      } else {
        return seen.insert(s, h);
      }
    }();
    cache.remember(h, idx);
    if (fresh) {
      if (parents) parent.push_back(from);
      queue.push_back(idx);
    } else {
      ++dup_visits;
    }
    return {idx, fresh};
  }

  /// Reconstructs initial..`bad` by walking parent links.
  [[nodiscard]] std::vector<State> trace_to(std::uint32_t bad) const {
    std::vector<State> rev;
    for (std::uint32_t at = bad; at != kNoParent; at = parent[at]) rev.push_back(seen.at(at));
    return {rev.rbegin(), rev.rend()};
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return seen.memory_bytes() + parent.capacity() * sizeof(std::uint32_t) +
           queue.capacity() * sizeof(std::uint32_t) + cache.memory_bytes();
  }

  Map seen;
  RecentSeenCache cache;
  std::vector<std::uint32_t> parent;  // dense id -> predecessor id (if `parents`)
  std::vector<std::uint32_t> queue;   // dense ids in BFS order
  std::size_t cache_hits = 0;  ///< duplicates killed by the recently-seen cache
  std::size_t dup_visits = 0;  ///< visits of already-interned states
  bool parents = true;
};

/// Parent-walking trace reconstruction over engine-specific id spaces (the
/// parallel engine's ids are (shard, local) pairs, so it supplies its own
/// accessors). `state_of(id)` yields the packed state, `parent_of(id)` the
/// predecessor id or `none`.
template <class State, class StateOf, class ParentOf>
[[nodiscard]] std::vector<State> reconstruct_trace(std::uint32_t bad, std::uint32_t none,
                                                   StateOf&& state_of, ParentOf&& parent_of) {
  std::vector<State> rev;
  for (std::uint32_t at = bad; at != none; at = parent_of(at)) rev.push_back(state_of(at));
  return {rev.rbegin(), rev.rend()};
}

}  // namespace tt::mc::detail
