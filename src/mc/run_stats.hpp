// Statistics every engine run reports; benches render these into the
// paper-vs-measured tables (cpu time and state counts mirror Fig. 4/6).
#pragma once

#include <cstddef>
#include <limits>

namespace tt::mc {

struct RunStats {
  std::size_t states = 0;        ///< distinct states interned
  std::size_t transitions = 0;   ///< transitions enumerated
  int depth = 0;                 ///< max BFS depth / DFS stack depth reached
  double seconds = 0.0;          ///< wall-clock time of the run
  std::size_t memory_bytes = 0;  ///< state store footprint
};

/// Resource bounds for a search; engines stop with Verdict::kLimit when hit.
struct SearchLimits {
  std::size_t max_states = std::numeric_limits<std::size_t>::max();
  int max_depth = std::numeric_limits<int>::max();  ///< BFS level / path length
};

}  // namespace tt::mc
