// Statistics every engine run reports; benches render these into the
// paper-vs-measured tables (cpu time and state counts mirror Fig. 4/6) and
// into the machine-readable BENCH_results.json.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace tt::mc {

struct RunStats {
  std::size_t states = 0;        ///< distinct states interned
  std::size_t transitions = 0;   ///< transitions enumerated
  int depth = 0;                 ///< max BFS depth / DFS stack depth reached
  double seconds = 0.0;          ///< wall-clock time of the run
  std::size_t memory_bytes = 0;  ///< state store footprint
  /// False when a search limit stopped exploration before the frontier
  /// emptied — a state/transition count from such a run undercounts and must
  /// never be reported as exhaustive (Fig. 5 reachable-state columns).
  bool exhausted = true;
  int threads = 1;  ///< worker threads the engine ran with
  /// Hot-path instrumentation (the hash-once contract, DESIGN.md §3.2):
  /// `hash_ops` counts hash_words invocations on the candidate path — exactly
  /// one per enumerated transition plus one per emitted initial state, which
  /// a regression test asserts. `dup_transitions` counts candidates that were
  /// already interned; `cache_hits` counts those killed by the direct-mapped
  /// recently-seen cache before touching the interning table.
  std::size_t hash_ops = 0;
  std::size_t dup_transitions = 0;
  std::size_t cache_hits = 0;
  /// Per-BFS-level frontier sizes (index = depth). Filled by the frontier
  /// engines (including the parallel OWCTY liveness engine's materialization
  /// phase); empty for the sequential DFS-based liveness runs.
  std::vector<std::size_t> frontier_sizes;
  /// OWCTY liveness instrumentation (parallel engine only; zero elsewhere):
  /// trimming rounds until the zero-out-degree deletion reached its fixpoint,
  /// and the residue size at that fixpoint — nonzero residue is exactly a
  /// goal-free-cycle violation (DESIGN.md §3.4).
  std::size_t trim_rounds = 0;
  std::size_t residue_states = 0;
  /// Symmetry-reduction instrumentation (zero for unreduced runs):
  /// `canon_ops` counts states canonicalized on the emission path (one per
  /// enumerated transition plus one per emitted initial state), `canon_swaps`
  /// counts emissions whose channel-swapped image won the orbit minimum
  /// (DESIGN.md §3.6).
  std::size_t canon_ops = 0;
  std::size_t canon_swaps = 0;
  /// Partial-order reduction instrumentation (zero unless the reduction has
  /// a por component, DESIGN.md §3.8): `ample_sets` counts emissions whose
  /// independence gate was open, `pruned_combos` those redirected to the
  /// clamped horizon representative, and `proviso_fallbacks` those the gate
  /// declined into full expansion.
  std::size_t ample_sets = 0;
  std::size_t pruned_combos = 0;
  std::size_t proviso_fallbacks = 0;
  /// Lock-free store instrumentation (zero under the locked store):
  /// `cas_retries` counts failed slot claims plus claimed-slot spins on the
  /// insert path, `pages_compressed` the arena pages sealed to delta form,
  /// `spill_bytes` the compressed bytes evicted to the backing file, and
  /// `bloom_negatives` the membership probes the Bloom front short-circuited
  /// (DESIGN.md §3.7).
  std::size_t cas_retries = 0;
  std::size_t pages_compressed = 0;
  std::size_t spill_bytes = 0;
  std::size_t bloom_negatives = 0;
  /// Out-of-core pipeline instrumentation (DESIGN.md §3.9; zero under the
  /// locked store): `spill_async_pages` counts sealed pages handed to the
  /// write-behind I/O thread without blocking, `spill_sync_waits` the
  /// synchronous barriers taken when the budget was critically exceeded with
  /// writes still in flight. Under `--store lockfree-fp`, `fp_collisions`
  /// counts genuine fingerprint collisions (distinct states, equal masked
  /// fingerprint — both get pinned exactly) and `reexpansions` the
  /// predecessor-path replays that disambiguated a dropped-body match.
  std::size_t spill_sync_waits = 0;
  std::size_t spill_async_pages = 0;
  std::size_t fp_collisions = 0;
  std::size_t reexpansions = 0;
  /// Proof-engine instrumentation (bench schema v8; zero for every
  /// exploratory engine): `solver_calls` counts SAT solve() invocations on
  /// the run's single incremental solver (for bounded BMC exactly one per
  /// depth probed), `clauses_reused` the learned clauses carried across
  /// those calls, `frames` the IC3 frame count / k-induction unrolling
  /// depth, and `proof_obligations` the IC3 obligation-queue pops (zero for
  /// k-induction).
  std::size_t solver_calls = 0;
  std::size_t clauses_reused = 0;
  std::size_t frames = 0;
  std::size_t proof_obligations = 0;
  /// Symbolic-engine instrumentation (all zero for explicit-state runs):
  /// peak live BDD nodes, mark-and-sweep collections, unique-table and
  /// persistent op-cache hit fractions, and image/BFS iterations to the
  /// fixpoint.
  std::size_t bdd_peak_live_nodes = 0;
  std::size_t bdd_gc_collections = 0;
  double bdd_unique_hit_rate = 0.0;
  double bdd_op_cache_hit_rate = 0.0;
  int bdd_iterations = 0;

  [[nodiscard]] double states_per_sec() const noexcept {
    return seconds > 0.0 ? static_cast<double>(states) / seconds : 0.0;
  }
};

/// Resource bounds for a search; engines stop with Verdict::kLimit when hit.
struct SearchLimits {
  std::size_t max_states = std::numeric_limits<std::size_t>::max();
  int max_depth = std::numeric_limits<int>::max();  ///< BFS level / path length

  [[nodiscard]] bool states_bounded() const noexcept {
    return max_states != std::numeric_limits<std::size_t>::max();
  }
};

}  // namespace tt::mc
