// Checking F(goal): "every behaviour eventually reaches a goal state".
//
// Paper analogue: Lemma 2 (liveness), checked by SAL's LTL engine. For a
// finite-state system, F(goal) fails iff some behaviour avoids goal forever,
// i.e. iff the goal-free restriction of the reachable graph contains a cycle
// — or a deadlock, since a maximal finite goal-free path also never reaches
// the goal. We search the goal-free subgraph with an iterative colored DFS
// (white/grey/black); the first grey-hit back edge yields a lasso
// counterexample (stem + cycle), the classic nested-DFS specialisation for
// this restricted property class.
//
// No fairness constraints are imposed, matching the SAL model: the algorithm
// must converge under *every* scheduling of the modeled nondeterminism
// (including adversarial fault injection).
#pragma once

#include <cstdint>
#include <vector>

#include "mc/engine.hpp"
#include "mc/explore.hpp"
#include "mc/run_stats.hpp"
#include "mc/transition_system.hpp"
#include "obs/trace.hpp"
#include "support/lockfree_state_index_map.hpp"
#include "support/recent_cache.hpp"
#include "support/state_index_map.hpp"
#include "support/timer.hpp"

namespace tt::mc {

enum class LivenessVerdict {
  kHolds,     ///< all behaviours reach the goal
  kCycle,     ///< goal-free cycle: lasso counterexample attached
  kDeadlock,  ///< goal-free state without successors
  kLimit,     ///< search limit hit before completion
};

[[nodiscard]] constexpr const char* to_string(LivenessVerdict v) noexcept {
  switch (v) {
    case LivenessVerdict::kHolds: return "holds";
    case LivenessVerdict::kCycle: return "VIOLATED(cycle)";
    case LivenessVerdict::kDeadlock: return "VIOLATED(deadlock)";
    case LivenessVerdict::kLimit: return "limit-reached";
  }
  return "?";
}

template <class TS>
struct LivenessResult {
  LivenessVerdict verdict = LivenessVerdict::kHolds;
  RunStats stats;
  /// For kCycle: stem then cycle; `loop_start` indexes the state the final
  /// state loops back to. For kDeadlock: path to the deadlocked state.
  std::vector<typename TS::State> trace;
  std::size_t loop_start = 0;
};

namespace detail {

/// Shared goal-free-lasso search. Roots are supplied by the caller: the
/// goal-free initial states for F(goal), every reachable goal-free state for
/// AG AF(goal). `expected_states` pre-sizes the interning table (callers
/// that already materialized the reachable set pass its size, so the DFS
/// never rehashes from default capacity).
///
/// `Map` must assign dense ids (`color` is indexed by them): StateIndexMap
/// or a single-shard LockFreeStateIndexMap. The DFS has no quiescent points,
/// so the lock-free store runs in its raw (uncompressed, unspilled) tier —
/// the sealing/spill machinery only engages in the level-synchronous BFS
/// engines.
template <class Map, class TS, class Pred, class RootFn>
[[nodiscard]] LivenessResult<TS> lasso_search(const TS& ts, Pred&& goal, RootFn&& for_each_root,
                                              const SearchLimits& limits,
                                              std::size_t expected_states = 0) {
  using State = typename TS::State;
  enum : std::uint8_t { kWhite = 0, kGrey = 1, kBlack = 2 };

  Timer timer;
  obs::Span run_span("liveness.lasso");
  LivenessResult<TS> result;
  Map seen;                // interns goal-free states only
  RecentSeenCache cache;   // duplicate suppression in front of `seen`
  std::vector<std::uint8_t> color;  // parallel to `seen`
  if (expected_states == 0 && limits.states_bounded()) {
    expected_states = limits.max_states + limits.max_states / 8 + 1;
  }
  if (expected_states > 0) {
    seen.reserve(expected_states);
    color.reserve(expected_states);
  }

  // Hash-once intern shared by root seeding and DFS expansion: one
  // hash_words per candidate, duplicates short-circuited by the cache.
  auto intern = [&](const State& s) -> std::pair<std::uint32_t, bool> {
    ++result.stats.hash_ops;
    const std::uint64_t h = hash_words(s);
    const std::uint32_t hint = cache.lookup(h);
    if (hint != RecentSeenCache::kMiss && seen.at(hint) == s) {
      ++result.stats.cache_hits;
      ++result.stats.dup_transitions;
      return {hint, false};
    }
    auto [idx, fresh] = [&] {
      // The lasso search is single-threaded: take the serial insert path
      // (inline growth) when the store distinguishes one.
      if constexpr (requires { seen.insert_serial(s, h); }) {
        return seen.insert_serial(s, h);
      } else {
        return seen.insert(s, h);
      }
    }();
    cache.remember(h, idx);
    if (!fresh) ++result.stats.dup_transitions;
    return {idx, fresh};
  };

  struct Frame {
    std::uint32_t idx;
    std::vector<std::uint32_t> children;  // goal-free successors (interned)
    std::size_t next_child = 0;
    bool has_any_successor = false;
  };
  std::vector<Frame> stack;

  std::vector<std::uint32_t> roots;
  bool roots_overflow = false;
  for_each_root([&](const State& s) {
    if (goal(s)) return;  // goal states are never roots of a goal-free lasso
    auto [idx, fresh] = intern(s);
    if (fresh) {
      color.push_back(kWhite);
      roots.push_back(idx);
    }
  });

  auto expand = [&](std::uint32_t idx) {
    Frame f;
    f.idx = idx;
    const State s = seen.at(idx);
    ts.successors(s, [&](const State& t) {
      ++result.stats.transitions;
      f.has_any_successor = true;
      if (goal(t)) return;  // edge leaves the goal-free region: irrelevant
      auto [tidx, fresh] = intern(t);
      if (fresh) color.push_back(kWhite);
      f.children.push_back(tidx);
    });
    return f;
  };

  auto build_path = [&](std::size_t upto) {
    result.trace.clear();
    for (std::size_t i = 0; i <= upto && i < stack.size(); ++i) {
      result.trace.push_back(seen.at(stack[i].idx));
    }
  };

  for (std::uint32_t root : roots) {
    if (color[root] != kWhite) continue;
    color[root] = kGrey;
    stack.clear();
    stack.push_back(expand(root));
    while (!stack.empty()) {
      if (seen.size() > limits.max_states ||
          static_cast<int>(stack.size()) > limits.max_depth) {
        result.verdict = LivenessVerdict::kLimit;
        roots_overflow = true;
        break;
      }
      Frame& f = stack.back();
      result.stats.depth = std::max<int>(result.stats.depth, static_cast<int>(stack.size()));
      if (!f.has_any_successor) {
        // Deadlock inside the goal-free region: the run halts without goal.
        result.verdict = LivenessVerdict::kDeadlock;
        build_path(stack.size() - 1);
        roots_overflow = true;
        break;
      }
      if (f.next_child >= f.children.size()) {
        color[f.idx] = kBlack;
        stack.pop_back();
        continue;
      }
      const std::uint32_t child = f.children[f.next_child++];
      if (color[child] == kGrey) {
        // Back edge: goal-free lasso found.
        result.verdict = LivenessVerdict::kCycle;
        build_path(stack.size() - 1);
        for (std::size_t i = 0; i < stack.size(); ++i) {
          if (stack[i].idx == child) {
            result.loop_start = i;
            break;
          }
        }
        roots_overflow = true;
        break;
      }
      if (color[child] == kWhite) {
        color[child] = kGrey;
        stack.push_back(expand(child));
      }
    }
    if (roots_overflow) break;
  }

  result.stats.states = seen.size();
  result.stats.memory_bytes = seen.memory_bytes() + color.capacity() + cache.memory_bytes();
  detail::copy_store_stats(seen, result.stats);
  result.stats.seconds = timer.seconds();
  result.stats.exhausted = result.verdict != LivenessVerdict::kLimit;
  return result;
}

}  // namespace detail

/// F(goal): every behaviour from an initial state eventually reaches a goal
/// state (Lemma 2).
template <TransitionSystem TS, class Pred>
[[nodiscard]] LivenessResult<TS> check_eventually(const TS& ts, Pred&& goal,
                                                  const SearchLimits& limits = {}) {
  return detail::lasso_search<StateIndexMap<TS::kWords>>(
      ts, goal, [&](auto&& visit) { ts.initial_states(visit); }, limits);
}

/// Store-dispatching F(goal): the DFS explores in the identical order under
/// either store (dense ids, serial inserts), so results are bit-identical.
/// Lasso extraction random-accesses every stored body, so lockfree-fp
/// degrades to the plain lock-free store here (StoreKind doc in engine.hpp).
template <TransitionSystem TS, class Pred>
[[nodiscard]] LivenessResult<TS> check_eventually_store(const TS& ts, Pred&& goal,
                                                        const SearchLimits& limits,
                                                        const StoreOptions& store) {
  if (store.kind == StoreKind::kLockFree || store.kind == StoreKind::kLockFreeFp) {
    return detail::lasso_search<LockFreeStateIndexMap<TS::kWords>>(
        ts, goal, [&](auto&& visit) { ts.initial_states(visit); }, limits);
  }
  return check_eventually(ts, std::forward<Pred>(goal), limits);
}

namespace detail {

template <class Map, TransitionSystem TS, class Pred>
[[nodiscard]] LivenessResult<TS> check_always_eventually_impl(const TS& ts, Pred&& goal,
                                                              const SearchLimits& limits) {
  using State = typename TS::State;
  // Materialize the reachable set first; its states are the lasso roots.
  // Reuses the shared BFS scaffolding (explore.hpp) without parent links.
  std::vector<State> reachable;
  bool truncated = false;
  std::size_t bfs_hash_ops = 0;
  std::size_t bfs_cache_hits = 0;
  std::size_t bfs_dups = 0;
  {
    detail::BfsCore<TS::kWords, Map> bfs(/*track_parents=*/false, limits);
    auto visit = [&](const State& s) {
      ++bfs_hash_ops;
      bfs.visit(s, detail::BfsCore<TS::kWords, Map>::kNoParent, hash_words(s));
    };
    ts.initial_states(visit);
    for (std::size_t head = 0; head < bfs.queue.size(); ++head) {
      if (bfs.seen.size() > limits.max_states) {
        truncated = true;
        break;
      }
      const State s = bfs.seen.at(bfs.queue[head]);
      ts.successors(s, visit);
    }
    reachable.reserve(bfs.seen.size());
    for (std::uint32_t i = 0; i < bfs.seen.size(); ++i) reachable.push_back(bfs.seen.at(i));
    bfs_cache_hits = bfs.cache_hits;
    bfs_dups = bfs.dup_visits;
  }
  if (truncated) {
    LivenessResult<TS> limited;
    limited.verdict = LivenessVerdict::kLimit;
    limited.stats.states = reachable.size();
    limited.stats.exhausted = false;
    return limited;
  }
  auto result = detail::lasso_search<Map>(
      ts, goal,
      [&](auto&& visit) {
        for (const State& s : reachable) visit(s);
      },
      limits, /*expected_states=*/reachable.size());
  result.stats.states = std::max(result.stats.states, reachable.size());
  result.stats.hash_ops += bfs_hash_ops;
  result.stats.cache_hits += bfs_cache_hits;
  result.stats.dup_transitions += bfs_dups;
  return result;
}

}  // namespace detail

/// AG AF(goal): from *every reachable state*, every behaviour eventually
/// reaches a goal state again. Strictly stronger than F(goal): it also
/// covers recovery after the goal was already reached once — the property
/// the restart/reintegration experiments need (a transient fault knocks a
/// node out of the synchronous set; the set must always pull it back).
template <TransitionSystem TS, class Pred>
[[nodiscard]] LivenessResult<TS> check_always_eventually(const TS& ts, Pred&& goal,
                                                         const SearchLimits& limits = {}) {
  return detail::check_always_eventually_impl<StateIndexMap<TS::kWords>>(
      ts, std::forward<Pred>(goal), limits);
}

/// Store-dispatching AG AF(goal); bit-identical results across stores.
/// lockfree-fp degrades to plain lockfree (bodies needed for lasso roots).
template <TransitionSystem TS, class Pred>
[[nodiscard]] LivenessResult<TS> check_always_eventually_store(const TS& ts, Pred&& goal,
                                                               const SearchLimits& limits,
                                                               const StoreOptions& store) {
  if (store.kind == StoreKind::kLockFree || store.kind == StoreKind::kLockFreeFp) {
    return detail::check_always_eventually_impl<LockFreeStateIndexMap<TS::kWords>>(
        ts, std::forward<Pred>(goal), limits);
  }
  return check_always_eventually(ts, std::forward<Pred>(goal), limits);
}

}  // namespace tt::mc
