// Plain-text table rendering for bench output and EXPERIMENTS.md.
//
// Benches print "paper vs measured" tables; this keeps them aligned and
// consistent. Cells are strings; the first row is the header.
#pragma once

#include <string>
#include <vector>

namespace tt {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Renders with column alignment, `| a | b |` style (markdown-compatible).
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string.
[[nodiscard]] std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace tt
