// Machine-readable bench output: every bench binary appends its measurements
// to BENCH_results.json (one JSON object with a flat "results" array, one
// record per line) next to the human-readable tables. Re-running a bench
// replaces that bench's records and keeps everyone else's, so the file
// accumulates the full experiment sweep and seeds the perf trajectory.
//
// Override the path with the TTSTART_BENCH_JSON environment variable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tt {

struct BenchRecord {
  std::string experiment;  ///< e.g. "fig6/safety/n4"
  std::string engine;      ///< "seq", "par", "sym", "sat", ...
  int threads = 1;
  std::size_t states = 0;
  std::size_t transitions = 0;
  double seconds = 0.0;
  bool exhausted = true;
  std::string verdict;  ///< "holds", "VIOLATED", ... (optional)
  /// Symbolic-engine columns (schema v2): fixpoint/BFS iterations and peak
  /// live BDD nodes. Negative = not applicable, omitted from the JSON.
  long long iterations = -1;
  long long peak_live_nodes = -1;
  /// Parallel-liveness (OWCTY) columns (schema v3): trimming rounds to the
  /// fixpoint and goal-free states left alive afterwards. Negative = not
  /// applicable, omitted from the JSON.
  long long trim_rounds = -1;
  long long residue_states = -1;
};

class BenchReport {
 public:
  /// `bench_name` identifies this binary's records in the merged file.
  explicit BenchReport(std::string bench_name);
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;
  /// Writes on destruction (best effort — errors are reported to stderr).
  ~BenchReport();

  void add(BenchRecord record);

  /// Merges this bench's records into the report file and returns the path
  /// written (empty on failure). Called automatically by the destructor.
  std::string write();

 private:
  std::string bench_name_;
  std::vector<BenchRecord> records_;
  bool written_ = false;
};

}  // namespace tt
