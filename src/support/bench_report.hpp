// Machine-readable bench output: every bench binary appends its measurements
// to BENCH_results.json (one JSON object with a flat "results" array, one
// record per line) next to the human-readable tables. Re-running a bench
// replaces that bench's records and keeps everyone else's, so the file
// accumulates the full experiment sweep and seeds the perf trajectory.
//
// Override the path with the TTSTART_BENCH_JSON environment variable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tt {

/// One measurement row of the ttstart-bench-v8 schema (the `experiment`
/// keys are the ones EXPERIMENTS.md's claim→command table points at).
struct BenchRecord {
  std::string experiment;  ///< e.g. "fig6/safety/n4"
  std::string engine;      ///< "seq", "par", "sym", "sat", ...
  int threads = 1;         ///< worker threads the run used (1 = sequential)
  std::size_t states = 0;      ///< distinct states interned/counted
  std::size_t transitions = 0; ///< transitions explored
  double seconds = 0.0;        ///< wall-clock seconds of the measured run
  bool exhausted = true;       ///< false when a search limit stopped the run
  std::string verdict;  ///< "holds", "VIOLATED", ... (optional)
  /// Symbolic-engine columns (schema v2): fixpoint/BFS iterations and peak
  /// live BDD nodes. Negative = not applicable, omitted from the JSON.
  long long iterations = -1;
  long long peak_live_nodes = -1;
  /// Parallel-liveness (OWCTY) columns (schema v3): trimming rounds to the
  /// fixpoint and goal-free states left alive afterwards. Negative = not
  /// applicable, omitted from the JSON.
  long long trim_rounds = -1;
  long long residue_states = -1;
  /// Reduction columns (schema v4, names extended to "por"/"sym+por" in
  /// v6): "none"/"sym"/"por"/"sym+por"; canonicalization
  /// operations on the emission path; orbit states stored (== states of the
  /// reduced run, recorded explicitly so reduced rows are self-describing);
  /// and states(unreduced)/states(reduced) when the paired baseline ran.
  /// Negative (or empty `reduction`) = not applicable, omitted.
  std::string reduction;
  long long canon_ops = -1;
  long long orbit_states = -1;
  double reduction_ratio = -1.0;
  /// Schema v4 caveat flag: 1 when a multi-threaded row may have run on a
  /// single hardware core (CI runners), so its speedup column is not
  /// meaningful. Negative = unknown/not recorded, omitted from the JSON.
  int possibly_one_core = -1;
  /// Explicit-store columns (schema v5): "locked"/"lockfree"; failed-claim
  /// retries on the CAS insert path; and compressed bytes spilled out of
  /// core. Empty `store` / negative counters = not applicable, omitted.
  std::string store;
  long long cas_retries = -1;
  long long spill_bytes = -1;
  /// Partial-order reduction columns (schema v6; DESIGN.md §3.8): emissions
  /// whose independence gate was open, emissions redirected to the clamped
  /// horizon representative, and emissions declined into full expansion.
  /// Negative = not applicable, omitted from the JSON.
  long long ample_sets = -1;
  long long pruned_combos = -1;
  long long proviso_fallbacks = -1;
  /// Out-of-core pipeline columns (schema v7; DESIGN.md §3.9): synchronous
  /// barriers the write-behind pipeline had to take, sealed pages handed to
  /// the I/O thread without blocking, genuine fingerprint collisions, and
  /// predecessor-path re-expansions under `--store lockfree-fp`; plus the
  /// store-resident byte footprint at run end. Negative = not applicable,
  /// omitted from the JSON.
  long long spill_sync_waits = -1;
  long long spill_async_pages = -1;
  long long fp_collisions = -1;
  long long reexpansions = -1;
  long long resident_bytes = -1;
  /// Proof-engine columns (schema v8; DESIGN.md §3.10): SAT solve() calls on
  /// the run's single incremental solver (for bounded BMC exactly one per
  /// depth probed), learned clauses carried across those calls, IC3 frame
  /// count / k-induction unrolling depth, and IC3 obligation-queue pops.
  /// Negative = not applicable, omitted from the JSON.
  long long solver_calls = -1;
  long long clauses_reused = -1;
  long long frames = -1;
  long long proof_obligations = -1;
};

/// Reads the minimum "seconds" value among the report-file records matching
/// (bench, experiment, engine), e.g. the `baseline_pre_pr` rows that anchor
/// overhead budgets. Returns a negative value when no record matches or the
/// file is unreadable. Units: wall-clock seconds. Not thread-safe with a
/// concurrent write() to the same file.
[[nodiscard]] double read_report_seconds(const std::string& bench,
                                         const std::string& experiment,
                                         const std::string& engine);

/// Collects one bench binary's records and merges them into the report
/// file. Not thread-safe: create and use on one thread (the bench main).
class BenchReport {
 public:
  /// `bench_name` identifies this binary's records in the merged file.
  explicit BenchReport(std::string bench_name);
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;
  /// Writes on destruction (best effort — errors are reported to stderr).
  ~BenchReport();

  /// Queues a record for write(); records are kept in add() order.
  void add(BenchRecord record);

  /// Merges this bench's records into the report file and returns the path
  /// written (empty on failure). Called automatically by the destructor.
  std::string write();

 private:
  std::string bench_name_;
  std::vector<BenchRecord> records_;
  bool written_ = false;
};

}  // namespace tt
