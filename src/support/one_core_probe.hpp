// Runtime probe for the schema-v4 `possibly_one_core` caveat flag: decides
// once, from the environment the process actually runs in, whether a
// multi-threaded measurement on this machine can show a real parallel
// speedup. Every bench binary reads this single source instead of keeping
// its own per-stage heuristic, so the flag means the same thing in every
// record of BENCH_results.json.
#pragma once

namespace tt {

/// Returns 1 when this process may effectively be confined to a single CPU
/// (so multi-thread rows must not be read as speedups), 0 otherwise.
///
/// The probe checks, in order:
///   * std::thread::hardware_concurrency() <= 1 (or unknown);
///   * the scheduler affinity mask of the calling process has <= 1 CPU
///     (containers often pin benches this way while the host reports many
///     cores);
///   * a cgroup-v2 CPU bandwidth quota of <= 1 full CPU in
///     /sys/fs/cgroup/cpu.max (CI runners throttle this way).
///
/// The answer is probed once and cached for the process lifetime; the
/// function is safe to call from multiple threads after that first call
/// completes (benches call it from main before spawning workers).
[[nodiscard]] int probe_possibly_one_core();

}  // namespace tt
