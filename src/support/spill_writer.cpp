#include "support/spill_writer.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "support/assert.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define TT_SPILL_WRITER_POSIX 1
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#else
#define TT_SPILL_WRITER_POSIX 0
#endif

namespace tt {

bool SpillWriter::platform_supported() noexcept { return TT_SPILL_WRITER_POSIX != 0; }

SpillWriter::SpillWriter(unsigned files, std::string explicit_dir)
    : ring_(kRingCapacity), files_(files), explicit_dir_(std::move(explicit_dir)) {
  if (const char* cap = std::getenv("TTSTART_SPILL_FAIL_AFTER")) {
    fail_after_ = static_cast<std::uint64_t>(std::strtoull(cap, nullptr, 10));
  }
  if (platform_supported()) {
    io_ = std::thread([this] { io_loop(); });
  } else {
    failed_ = true;
    error_ = "spill unsupported on this platform";
  }
}

SpillWriter::~SpillWriter() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (io_.joinable()) io_.join();
#if TT_SPILL_WRITER_POSIX
  for (FileState& fs : files_) {
    if (fs.base != nullptr) ::munmap(fs.base, fs.mapped);
    if (fs.fd >= 0) ::close(fs.fd);
  }
#endif
}

void SpillWriter::fail(std::string msg) {
  if (failed_) return;
  failed_ = true;
  error_ = std::move(msg);
}

bool SpillWriter::open_file(FileState& fs) {
#if TT_SPILL_WRITER_POSIX
  if (fs.fd >= 0) return true;
  if (dir_.empty()) {
    const char* dir = explicit_dir_.empty() ? nullptr : explicit_dir_.c_str();
    const bool requested = dir != nullptr;
    const char* env = std::getenv("TTSTART_SPILL_DIR");
    const bool env_requested = !requested && env != nullptr && *env != '\0';
    if (dir == nullptr && env_requested) dir = env;
    if (dir == nullptr) dir = std::getenv("TMPDIR");
    if (dir == nullptr || *dir == '\0') dir = "/tmp";
    // An explicitly requested directory (flag or env) that is unwritable is
    // a hard error — never silently fall through to /tmp.
    std::string probe = std::string(dir) + "/ttstart-spill-XXXXXX";
    std::vector<char> buf(probe.begin(), probe.end());
    buf.push_back('\0');
    const int fd = ::mkstemp(buf.data());
    if (fd < 0) {
      const int err = errno;
      if (requested || env_requested) {
        fail("spill directory '" + std::string(dir) + "' is unwritable: " +
             std::strerror(err));
      } else {
        fail("cannot create spill file under '" + std::string(dir) + "': " +
             std::strerror(err));
      }
      return false;
    }
    ::unlink(buf.data());  // anonymous: reclaimed on close, even on crash
    dir_ = dir;
    fs.fd = fd;
    return true;
  }
  std::string path = dir_ + "/ttstart-spill-XXXXXX";
  std::vector<char> buf(path.begin(), path.end());
  buf.push_back('\0');
  fs.fd = ::mkstemp(buf.data());
  if (fs.fd < 0) {
    fail("spill directory '" + dir_ + "' is unwritable: " + std::strerror(errno));
    return false;
  }
  ::unlink(buf.data());
  return true;
#else
  (void)fs;
  return false;
#endif
}

std::uint64_t SpillWriter::enqueue(unsigned file, const std::uint8_t* data,
                                   std::uint32_t len, std::uint64_t cookie) {
  std::unique_lock<std::mutex> lk(mu_);
  TT_REQUIRE(file < files_.size(), "SpillWriter: file index out of range");
  if (failed_) return 0;
  if (!open_file(files_[file])) return 0;
  if (ring_tail_ - ring_head_ == kRingCapacity) {
    ++stats_.sync_waits;  // backpressure: the budget outran the device
    done_cv_.wait(lk, [this] { return ring_tail_ - ring_head_ < kRingCapacity || failed_; });
    if (failed_) return 0;
  }
  FileState& fs = files_[file];
  const std::uint64_t off = fs.reserved;
  fs.reserved += len;
  Job& j = ring_[ring_tail_ % kRingCapacity];
  j = Job{file, data, len, cookie, off};
  ++ring_tail_;
  ++stats_.async_pages;
  lk.unlock();
  work_cv_.notify_one();
  return off;
}

void SpillWriter::io_loop() {
#if TT_SPILL_WRITER_POSIX
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    work_cv_.wait(lk, [this] { return stop_ || ring_head_ != ring_tail_; });
    if (ring_head_ == ring_tail_) {
      if (stop_) return;
      continue;
    }
    const Job j = ring_[ring_head_ % kRingCapacity];
    const int fd = files_[j.file].fd;
    const std::uint64_t injected_cap = fail_after_;
    const std::uint64_t injected_before = injected_written_;
    lk.unlock();
    bool ok = true;
    std::string msg;
    if (injected_before + j.len > injected_cap) {
      ok = false;
      msg = "spill write failed: No space left on device (injected by "
            "TTSTART_SPILL_FAIL_AFTER)";
    } else {
      std::uint32_t done = 0;
      while (done < j.len) {
        const ::ssize_t w = ::pwrite(fd, j.data + done, j.len - done,
                                     static_cast<::off_t>(j.offset + done));
        if (w <= 0) {
          ok = false;
          msg = std::string("spill write failed: ") + std::strerror(errno);
          break;
        }
        done += static_cast<std::uint32_t>(w);
      }
    }
    lk.lock();
    if (ok) {
      injected_written_ += j.len;
      files_[j.file].written = j.offset + j.len;
      stats_.bytes_written += j.len;
      done_.push_back(Completion{j.cookie, j.file, j.offset, j.len});
    } else {
      fail(std::move(msg));
    }
    ++ring_head_;
    done_cv_.notify_all();
  }
#endif
}

std::size_t SpillWriter::harvest(std::vector<Completion>& out) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::size_t n = done_.size();
  out.insert(out.end(), done_.begin(), done_.end());
  done_.clear();
  return n;
}

void SpillWriter::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  if (ring_head_ == ring_tail_ || failed_) return;
  ++stats_.sync_waits;
  done_cv_.wait(lk, [this] { return ring_head_ == ring_tail_ || failed_; });
}

bool SpillWriter::remap_all() {
#if TT_SPILL_WRITER_POSIX
  std::unique_lock<std::mutex> lk(mu_);
  for (FileState& fs : files_) {
    if (fs.fd < 0 || fs.written == fs.mapped) continue;
    const std::uint64_t len = fs.written;
    lk.unlock();  // mmap outside the lock; `written` only grows
    void* m = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fs.fd, 0);
    lk.lock();
    if (m == MAP_FAILED) {
      fail(std::string("spill remap failed: ") + std::strerror(errno));
      return false;
    }
    if (fs.base != nullptr) ::munmap(fs.base, fs.mapped);
    fs.base = static_cast<std::uint8_t*>(m);
    fs.mapped = len;
  }
  return true;
#else
  return false;
#endif
}

const std::uint8_t* SpillWriter::data(unsigned file, std::uint64_t off,
                                      std::uint32_t len) const {
  // No lock: base/mapped change only at quiescent remap_all(), and readers
  // only ask for offsets that were durable and mapped before the barrier
  // that released them.
  const FileState& fs = files_[file];
  TT_ASSERT(fs.base != nullptr && off + len <= fs.mapped);
  (void)len;
  return fs.base + off;
}

bool SpillWriter::failed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return failed_;
}

std::string SpillWriter::error() const {
  std::lock_guard<std::mutex> lk(mu_);
  return error_;
}

std::size_t SpillWriter::memory_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return sizeof(SpillWriter) + ring_.capacity() * sizeof(Job) +
         files_.capacity() * sizeof(FileState) + done_.capacity() * sizeof(Completion);
}

SpillWriter::Stats SpillWriter::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace tt
