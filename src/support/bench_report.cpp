#include "support/bench_report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

namespace tt {

namespace {

std::string report_path() {
  if (const char* env = std::getenv("TTSTART_BENCH_JSON"); env != nullptr && *env != '\0') {
    return env;
  }
  return "BENCH_results.json";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string render_record(const std::string& bench, const BenchRecord& r) {
  const double sps = r.seconds > 0.0 ? static_cast<double>(r.states) / r.seconds : 0.0;
  std::ostringstream line;
  line << "    {\"bench\": \"" << json_escape(bench) << "\", \"experiment\": \""
       << json_escape(r.experiment) << "\", \"engine\": \"" << json_escape(r.engine)
       << "\", \"threads\": " << r.threads << ", \"states\": " << r.states
       << ", \"transitions\": " << r.transitions << ", \"seconds\": " << r.seconds
       << ", \"states_per_sec\": " << sps << ", \"exhausted\": "
       << (r.exhausted ? "true" : "false") << ", \"verdict\": \"" << json_escape(r.verdict)
       << "\"";
  // v2/v3/v4 optional columns, emitted only where meaningful (symbolic runs,
  // parallel OWCTY liveness runs, symmetry-reduced runs).
  if (r.iterations >= 0) line << ", \"iterations\": " << r.iterations;
  if (r.peak_live_nodes >= 0) line << ", \"peak_live_nodes\": " << r.peak_live_nodes;
  if (r.trim_rounds >= 0) line << ", \"trim_rounds\": " << r.trim_rounds;
  if (r.residue_states >= 0) line << ", \"residue_states\": " << r.residue_states;
  if (!r.reduction.empty()) line << ", \"reduction\": \"" << json_escape(r.reduction) << "\"";
  if (r.canon_ops >= 0) line << ", \"canon_ops\": " << r.canon_ops;
  if (r.orbit_states >= 0) line << ", \"orbit_states\": " << r.orbit_states;
  if (r.reduction_ratio >= 0.0) line << ", \"reduction_ratio\": " << r.reduction_ratio;
  if (r.possibly_one_core >= 0) {
    line << ", \"possibly_one_core\": " << (r.possibly_one_core != 0 ? "true" : "false");
  }
  // v5 optional columns (explicit-store runs).
  if (!r.store.empty()) line << ", \"store\": \"" << json_escape(r.store) << "\"";
  if (r.cas_retries >= 0) line << ", \"cas_retries\": " << r.cas_retries;
  if (r.spill_bytes >= 0) line << ", \"spill_bytes\": " << r.spill_bytes;
  // v6 optional columns (partial-order-reduced runs).
  if (r.ample_sets >= 0) line << ", \"ample_sets\": " << r.ample_sets;
  if (r.pruned_combos >= 0) line << ", \"pruned_combos\": " << r.pruned_combos;
  if (r.proviso_fallbacks >= 0) line << ", \"proviso_fallbacks\": " << r.proviso_fallbacks;
  // v7 optional columns (out-of-core pipeline runs, DESIGN.md §3.9).
  if (r.spill_sync_waits >= 0) line << ", \"spill_sync_waits\": " << r.spill_sync_waits;
  if (r.spill_async_pages >= 0) line << ", \"spill_async_pages\": " << r.spill_async_pages;
  if (r.fp_collisions >= 0) line << ", \"fp_collisions\": " << r.fp_collisions;
  if (r.reexpansions >= 0) line << ", \"reexpansions\": " << r.reexpansions;
  if (r.resident_bytes >= 0) line << ", \"resident_bytes\": " << r.resident_bytes;
  // v8 optional columns (SAT proof-engine runs, DESIGN.md §3.10).
  if (r.solver_calls >= 0) line << ", \"solver_calls\": " << r.solver_calls;
  if (r.clauses_reused >= 0) line << ", \"clauses_reused\": " << r.clauses_reused;
  if (r.frames >= 0) line << ", \"frames\": " << r.frames;
  if (r.proof_obligations >= 0) line << ", \"proof_obligations\": " << r.proof_obligations;
  line << "}";
  return line.str();
}

}  // namespace

double read_report_seconds(const std::string& bench, const std::string& experiment,
                           const std::string& engine) {
  std::ifstream in(report_path());
  const std::string bench_key = "\"bench\": \"" + json_escape(bench) + "\"";
  const std::string exp_key = "\"experiment\": \"" + json_escape(experiment) + "\"";
  const std::string eng_key = "\"engine\": \"" + json_escape(engine) + "\"";
  const std::string sec_key = "\"seconds\": ";
  double best = -1.0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find(bench_key) == std::string::npos ||
        line.find(exp_key) == std::string::npos ||
        line.find(eng_key) == std::string::npos) {
      continue;
    }
    const auto pos = line.find(sec_key);
    if (pos == std::string::npos) continue;
    const double s = std::strtod(line.c_str() + pos + sec_key.size(), nullptr);
    if (s > 0 && (best < 0 || s < best)) best = s;
  }
  return best;
}

BenchReport::BenchReport(std::string bench_name) : bench_name_(std::move(bench_name)) {}

BenchReport::~BenchReport() {
  if (!written_) write();
}

void BenchReport::add(BenchRecord record) { records_.push_back(std::move(record)); }

std::string BenchReport::write() {
  written_ = true;
  const std::string path = report_path();

  // Keep record lines written by *other* benches (one record per line, the
  // format this writer emits), so repeated bench runs accumulate.
  std::vector<std::string> kept;
  {
    std::ifstream in(path);
    const std::string own_key = "{\"bench\": \"" + json_escape(bench_name_) + "\"";
    std::string line;
    while (std::getline(in, line)) {
      const auto brace = line.find('{');
      if (brace == std::string::npos || line.compare(brace, 10, "{\"bench\": ") != 0) continue;
      if (line.compare(brace, own_key.size(), own_key) == 0) continue;
      std::string rec = line.substr(brace);
      if (!rec.empty() && rec.back() == ',') rec.pop_back();
      kept.push_back(std::move(rec));
    }
  }

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "ttstart: cannot write %s\n", path.c_str());
    return {};
  }
  out << "{\n  \"schema\": \"ttstart-bench-v8\",\n  \"results\": [\n";
  bool first = true;
  for (const std::string& rec : kept) {
    out << (first ? "    " : ",\n    ") << rec;
    first = false;
  }
  for (const BenchRecord& r : records_) {
    out << (first ? "" : ",\n") << render_record(bench_name_, r);
    first = false;
  }
  out << "\n  ]\n}\n";
  std::printf("[bench report: %zu record(s) -> %s]\n", records_.size(), path.c_str());
  return path;
}

}  // namespace tt
