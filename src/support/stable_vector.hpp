// StableVector: an append-only vector with stable element addresses and
// race-free concurrent reads of previously published entries.
//
// The parallel engines' per-shard parent-link arrays used to be plain
// std::vector<uint32_t>: safe while only the owning drain worker touched
// them, but the fingerprint-only store's re-expansion resolver (DESIGN.md
// §3.9) walks parent chains from *other* workers mid-level, and a
// std::vector reallocation under a concurrent reader is a use-after-free.
// This container never relocates: storage is fixed-size chunks published
// through an atomic directory, so a reader holding an index below the
// writer's frontier always dereferences stable memory.
//
// Contract (exactly what the level-synchronous engines need):
//   * push_back() — single writer at a time (the shard's drain owner).
//   * operator[]  — safe from any thread for indices whose push_back
//     happened before a synchronization point the reader passed (the level
//     barrier), or from the writer itself at any time.
//   * size()/memory_bytes() — writer thread or quiescent phases only.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "support/assert.hpp"

namespace tt {

template <class T>
class StableVector {
 public:
  static constexpr std::size_t kChunkBits = 13;  ///< 8192 elements per chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kChunkMask = kChunkSize - 1;
  // Directory depth: covers 2^(13+16) = 2^29 elements, past the per-shard
  // dense-id ceiling of the state stores.
  static constexpr std::size_t kMaxChunks = std::size_t{1} << 16;

  StableVector() : dir_(std::make_unique<std::atomic<T*>[]>(kMaxChunks)) {}

  ~StableVector() {
    for (std::size_t c = 0; c < chunks_; ++c) {
      delete[] dir_[c].load(std::memory_order_relaxed);
    }
  }

  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;

  void push_back(const T& v) {
    const std::size_t chunk = size_ >> kChunkBits;
    T* p = dir_[chunk].load(std::memory_order_acquire);
    if (p == nullptr) {
      TT_REQUIRE(chunk < kMaxChunks, "StableVector: directory exhausted");
      p = new T[kChunkSize]();
      dir_[chunk].store(p, std::memory_order_release);
      chunks_ = chunk + 1;
    }
    p[size_ & kChunkMask] = v;
    ++size_;
  }

  [[nodiscard]] const T& operator[](std::size_t i) const {
    T* p = dir_[i >> kChunkBits].load(std::memory_order_acquire);
    TT_ASSERT(p != nullptr);
    return p[i & kChunkMask];
  }

  [[nodiscard]] T& operator[](std::size_t i) {
    T* p = dir_[i >> kChunkBits].load(std::memory_order_acquire);
    TT_ASSERT(p != nullptr);
    return p[i & kChunkMask];
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return kMaxChunks * sizeof(std::atomic<T*>) + chunks_ * kChunkSize * sizeof(T);
  }

 private:
  std::unique_ptr<std::atomic<T*>[]> dir_;
  std::size_t size_ = 0;
  std::size_t chunks_ = 0;
};

}  // namespace tt
