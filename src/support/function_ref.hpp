// FunctionRef: non-owning callable reference (the Core Guidelines' answer to
// "callback parameter that never outlives the call"). Used on the hot
// model-checker path where std::function's ownership and potential allocation
// are unnecessary: successor callbacks run ~1e9 times per verification run.
#pragma once

#include <type_traits>
#include <utility>

namespace tt {

template <class Sig>
class FunctionRef;

template <class R, class... Args>
class FunctionRef<R(Args...)> {
 public:
  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
             std::is_invocable_r_v<R, F&, Args...>)
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor): by design
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return call_(obj_, std::forward<Args>(args)...); }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace tt
