// ShardedStateIndexMap: the concurrent sibling of StateIndexMap.
//
// The state store is hash-partitioned into S lock-striped shards (S a power
// of two, fixed at construction). Each shard is an independent open-addressed
// probe table plus state arena, guarded by its own mutex, so inserts to
// different shards never contend and inserts to the same shard serialize on
// one cheap lock. A global dense id encodes the (shard, local) pair as
//
//     id = (local << log2(S)) | shard
//
// which keeps ids 32-bit, makes at()/parent-link addressing O(1), and gives a
// deterministic total order on ids that the parallel BFS uses to pick the
// minimal (depth, id) violation.
//
// Thread-safety contract:
//   * insert()        — safe from any number of threads concurrently.
//   * insert_serial() — single-threaded fast path (no lock); a map with one
//                       shard and serial inserts costs the same as the plain
//                       StateIndexMap.
//   * find()/at()     — lock-free reads; safe concurrently with each other
//                       and, for find(), with inserts to *other* shards. A
//                       find concurrent with an insert to the same shard is a
//                       data race — the level-synchronous engines guarantee
//                       quiescence (reads only between write phases).
//   * size()/memory_bytes() — like find(): quiescent phases only.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/hash.hpp"
#include "support/state_index_map.hpp"

namespace tt {

template <std::size_t W>
class ShardedStateIndexMap {
 public:
  using State = std::array<std::uint64_t, W>;
  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  static constexpr unsigned kMaxShards = 256;

  /// `max_states_per_shard` lowers the per-shard dense-id cap below the
  /// encoding limit; insert() throws StateCapacityError beyond it. With one
  /// shard this is an exact total cap — the testable overflow path.
  explicit ShardedStateIndexMap(unsigned shard_count = 1,
                                std::size_t initial_capacity = 1 << 12,
                                std::uint64_t max_states_per_shard = ~0ull) {
    TT_REQUIRE(shard_count >= 1 && shard_count <= kMaxShards, "bad shard count");
    unsigned shards = 1;
    shard_bits_ = 0;
    while (shards < shard_count) {
      shards <<= 1;
      ++shard_bits_;
    }
    shard_mask_ = shards - 1;
    // Ids never reach 0xffffffff: cap each shard one short of its local space.
    local_limit_ = (shard_bits_ == 32) ? 0 : ((1ull << (32 - shard_bits_)) - 1);
    if (max_states_per_shard < local_limit_) local_limit_ = max_states_per_shard;
    shards_ = std::make_unique<Shard[]>(shards);
    const std::size_t per_shard = initial_capacity / shards + 64;
    for (unsigned s = 0; s <= shard_mask_; ++s) shards_[s].init(per_shard);
  }

  [[nodiscard]] unsigned shard_count() const noexcept { return shard_mask_ + 1; }

  /// Which shard `s` hashes to. Uses high hash bits, disjoint from the
  /// low bits that pick the probe slot inside the shard.
  [[nodiscard]] unsigned shard_of(const State& s) const noexcept {
    return shard_of(hash_words(s));
  }

  /// Hash-once shard routing; `h` must equal `hash_words(s)`. The window is
  /// derived from kMaxShards and sits at the very top of the hash so it can
  /// never overlap the probe-slot bits, however large a shard table grows.
  [[nodiscard]] unsigned shard_of(std::uint64_t h) const noexcept {
    static_assert((1u << kShardWindowBits) == kMaxShards,
                  "shard window must cover kMaxShards exactly");
    static_assert(kShardHashShift + kShardWindowBits == 64,
                  "shard window must occupy the top hash bits");
    return static_cast<unsigned>(h >> kShardHashShift) & shard_mask_;
  }

  [[nodiscard]] unsigned shard_of_id(std::uint32_t id) const noexcept {
    return id & shard_mask_;
  }
  [[nodiscard]] std::uint32_t local_of_id(std::uint32_t id) const noexcept {
    return id >> shard_bits_;
  }
  /// Inverse of (shard_of_id, local_of_id): reassembles a global id. Used by
  /// engines that build dense side arrays (shard-base prefix sums) over a
  /// frozen map and need to map dense positions back to global ids.
  [[nodiscard]] std::uint32_t id_of(unsigned shard, std::uint32_t local) const noexcept {
    return (local << shard_bits_) | shard;
  }

  /// Interns `s`; thread-safe (locks the target shard). Returns {id, fresh}.
  std::pair<std::uint32_t, bool> insert(const State& s) { return insert(s, hash_words(s)); }

  /// Hash-once thread-safe intern; `h` must equal `hash_words(s)`.
  std::pair<std::uint32_t, bool> insert(const State& s, std::uint64_t h) {
    const unsigned idx = shard_of(h);
    Shard& sh = shards_[idx];
    std::lock_guard<std::mutex> lock(sh.mu);
    return insert_into(sh, idx, h, s);
  }

  /// Interns `s` without locking — the single-threaded fast path.
  std::pair<std::uint32_t, bool> insert_serial(const State& s) {
    return insert_serial(s, hash_words(s));
  }

  /// Hash-once lock-free intern; `h` must equal `hash_words(s)`.
  std::pair<std::uint32_t, bool> insert_serial(const State& s, std::uint64_t h) {
    const unsigned idx = shard_of(h);
    return insert_into(shards_[idx], idx, h, s);
  }

  /// Lock-free lookup; requires no concurrent insert to this shard.
  [[nodiscard]] std::uint32_t find(const State& s) const { return find(s, hash_words(s)); }

  /// Hash-once lock-free lookup; `h` must equal `hash_words(s)`.
  [[nodiscard]] std::uint32_t find(const State& s, std::uint64_t h) const {
    const unsigned idx = shard_of(h);
    const Shard& sh = shards_[idx];
    std::size_t slot = h & sh.mask;
    while (true) {
      const std::uint32_t local = sh.table[slot];
      if (local == kEmpty) return kEmpty;
      if (sh.arena[local] == s) return (local << shard_bits_) | idx;
      slot = (slot + 1) & sh.mask;
    }
  }

  [[nodiscard]] const State& at(std::uint32_t id) const {
    return shards_[id & shard_mask_].arena[id >> shard_bits_];
  }

  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t total = 0;
    for (unsigned s = 0; s <= shard_mask_; ++s) total += shards_[s].arena.size();
    return total;
  }

  [[nodiscard]] std::size_t shard_size(unsigned shard) const noexcept {
    return shards_[shard].arena.size();
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    std::size_t total = 0;
    for (unsigned s = 0; s <= shard_mask_; ++s) {
      total += shards_[s].arena.capacity() * sizeof(State) +
               shards_[s].table.capacity() * sizeof(std::uint32_t);
    }
    return total;
  }

  /// Pre-sizes every shard for `total_states` states overall (assumes the
  /// hash spreads evenly; a 25% per-shard margin absorbs skew). Not
  /// thread-safe; call before exploration starts.
  void reserve(std::size_t total_states) {
    const std::size_t per_shard = total_states / shard_count() + total_states / (4 * shard_count()) + 64;
    for (unsigned s = 0; s <= shard_mask_; ++s) {
      Shard& sh = shards_[s];
      sh.arena.reserve(per_shard < local_limit_ ? per_shard : local_limit_);
      std::size_t cap = sh.table.size();
      while ((per_shard + 1) * 10 >= cap * 7) cap <<= 1;
      if (cap != sh.table.size()) rehash(sh, cap);
    }
  }

 private:
  struct Shard {
    std::mutex mu;
    std::vector<State> arena;
    std::vector<std::uint32_t> table;  // local ids, open addressing
    std::size_t mask = 0;

    void init(std::size_t initial_capacity) {
      std::size_t cap = 64;
      while (cap < initial_capacity) cap <<= 1;
      table.assign(cap, kEmpty);
      mask = cap - 1;
    }
  };

  std::pair<std::uint32_t, bool> insert_into(Shard& sh, unsigned shard_idx,
                                             std::uint64_t h, const State& s) {
    if ((sh.arena.size() + 1) * 10 >= sh.table.size() * 7) rehash(sh, sh.table.size() * 2);
    std::size_t slot = h & sh.mask;
    while (true) {
      const std::uint32_t local = sh.table[slot];
      if (local == kEmpty) {
        if (sh.arena.size() >= local_limit_) {
          throw StateCapacityError("ShardedStateIndexMap: shard dense-id space exhausted");
        }
        const auto fresh_local = static_cast<std::uint32_t>(sh.arena.size());
        sh.arena.push_back(s);
        sh.table[slot] = fresh_local;
        return {(fresh_local << shard_bits_) | shard_idx, true};
      }
      if (sh.arena[local] == s) return {(local << shard_bits_) | shard_idx, false};
      slot = (slot + 1) & sh.mask;
    }
  }

  static void rehash(Shard& sh, std::size_t new_cap) {
    std::vector<std::uint32_t> bigger(new_cap, kEmpty);
    const std::size_t mask = bigger.size() - 1;
    for (std::uint32_t local = 0; local < sh.arena.size(); ++local) {
      std::size_t slot = hash_words(sh.arena[local]) & mask;
      while (bigger[slot] != kEmpty) slot = (slot + 1) & mask;
      bigger[slot] = local;
    }
    sh.table = std::move(bigger);
    sh.mask = mask;
  }

  std::unique_ptr<Shard[]> shards_;
  unsigned shard_bits_ = 0;
  unsigned shard_mask_ = 0;
  std::uint64_t local_limit_ = 0;
};

}  // namespace tt
