// RecentSeenCache: a direct-mapped duplicate-suppression cache in front of a
// state-interning table.
//
// Exhaustive fault simulation explores ~115 transitions per distinct state
// (paper Fig. 4/6 at fault degree 6), so almost every candidate successor is
// a duplicate of a state interned moments ago. A fixed-size array of
// (hash, id) pairs — indexed by low hash bits, one probe, no chaining —
// short-circuits those duplicates before they reach the interning table,
// whose probe walk touches memory far outside L2 on big runs.
//
// The cache is advisory and never authoritative: `lookup` returns a *hint*
// id whose state the caller must compare against the candidate (two states
// may collide on both the slot index and the full 64-bit hash). A stale or
// colliding entry therefore costs one wasted comparison, never a wrong
// answer, and a hit is trustworthy only because the caller verified it.
// Entries must only ever map a hash to an id already interned in the backing
// table — suppressing a cached duplicate is then observationally identical
// to a full table hit, which is what keeps the parallel engine's
// deterministic id assignment intact (see mc/parallel_reachability.hpp).
#pragma once

#include <cstdint>
#include <vector>

namespace tt {

class RecentSeenCache {
 public:
  static constexpr std::uint32_t kMiss = 0xffffffffu;
  /// 8192 entries x 16 bytes = 128 KiB per instance: sized to sit in L2
  /// alongside the working set of one exploration thread.
  static constexpr std::size_t kDefaultEntries = std::size_t{1} << 13;

  explicit RecentSeenCache(std::size_t entries = kDefaultEntries) {
    std::size_t cap = 1;
    while (cap < entries) cap <<= 1;
    slots_.assign(cap, Entry{0, kMiss});
    mask_ = cap - 1;
  }

  /// Returns the id remembered for `h`, or kMiss. A non-miss result is a
  /// hint: the caller must verify state equality before treating it as a hit.
  [[nodiscard]] std::uint32_t lookup(std::uint64_t h) const noexcept {
    const Entry& e = slots_[h & mask_];
    return (e.id != kMiss && e.hash == h) ? e.id : kMiss;
  }

  /// Remembers `h -> id`, evicting whatever occupied the slot. `id` must
  /// already be interned in the backing table.
  void remember(std::uint64_t h, std::uint32_t id) noexcept {
    slots_[h & mask_] = Entry{h, id};
  }

  void clear() noexcept {
    for (Entry& e : slots_) e = Entry{0, kMiss};
  }

  [[nodiscard]] std::size_t entries() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return slots_.capacity() * sizeof(Entry);
  }

 private:
  struct Entry {
    std::uint64_t hash;
    std::uint32_t id;
  };

  std::vector<Entry> slots_;
  std::size_t mask_ = 0;
};

}  // namespace tt
