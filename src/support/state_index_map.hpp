// StateIndexMap: the central data structure of the explicit-state engines.
//
// It interns fixed-width packed states (arrays of W u64 words) and assigns
// each distinct state a dense 32-bit index in insertion order. The dense
// index doubles as a BFS queue position and as a handle for parent links
// (counterexample reconstruction).
//
// Implementation: open addressing with linear probing over a power-of-two
// table of u32 slots; states live contiguously in an arena vector. This keeps
// the per-state overhead at sizeof(state) + 4-8 bytes and makes the probe
// sequence cache-friendly.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"
#include "support/hash.hpp"

namespace tt {

template <std::size_t W>
class StateIndexMap {
 public:
  using State = std::array<std::uint64_t, W>;
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  explicit StateIndexMap(std::size_t initial_capacity = 1 << 16) {
    std::size_t cap = 64;
    while (cap < initial_capacity) cap <<= 1;
    table_.assign(cap, kEmpty);
    mask_ = cap - 1;
  }

  /// Interns `s`. Returns {dense index, true-if-new}.
  std::pair<std::uint32_t, bool> insert(const State& s) {
    if ((arena_.size() + 1) * 10 >= table_.size() * 7) grow();
    std::size_t slot = hash_words(s) & mask_;
    while (true) {
      const std::uint32_t idx = table_[slot];
      if (idx == kEmpty) {
        const auto dense = static_cast<std::uint32_t>(arena_.size());
        TT_ASSERT(dense != kEmpty);
        arena_.push_back(s);
        table_[slot] = dense;
        return {dense, true};
      }
      if (arena_[idx] == s) return {idx, false};
      slot = (slot + 1) & mask_;
    }
  }

  /// Looks up `s`; returns kEmpty when absent.
  [[nodiscard]] std::uint32_t find(const State& s) const {
    std::size_t slot = hash_words(s) & mask_;
    while (true) {
      const std::uint32_t idx = table_[slot];
      if (idx == kEmpty) return kEmpty;
      if (arena_[idx] == s) return idx;
      slot = (slot + 1) & mask_;
    }
  }

  [[nodiscard]] const State& at(std::uint32_t idx) const { return arena_[idx]; }
  [[nodiscard]] std::size_t size() const noexcept { return arena_.size(); }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return arena_.capacity() * sizeof(State) + table_.capacity() * sizeof(std::uint32_t);
  }

 private:
  void grow() {
    std::vector<std::uint32_t> bigger(table_.size() * 2, kEmpty);
    const std::size_t mask = bigger.size() - 1;
    for (std::uint32_t idx = 0; idx < arena_.size(); ++idx) {
      std::size_t slot = hash_words(arena_[idx]) & mask;
      while (bigger[slot] != kEmpty) slot = (slot + 1) & mask;
      bigger[slot] = idx;
    }
    table_ = std::move(bigger);
    mask_ = mask;
  }

  std::vector<State> arena_;
  std::vector<std::uint32_t> table_;
  std::size_t mask_ = 0;
};

}  // namespace tt
