// StateIndexMap: the central data structure of the explicit-state engines.
//
// It interns fixed-width packed states (arrays of W u64 words) and assigns
// each distinct state a dense 32-bit index in insertion order. The dense
// index doubles as a BFS queue position and as a handle for parent links
// (counterexample reconstruction).
//
// Implementation: open addressing with linear probing over a power-of-two
// table of u32 slots; states live contiguously in an arena vector. This keeps
// the per-state overhead at sizeof(state) + 4-8 bytes and makes the probe
// sequence cache-friendly.
//
// Capacity: dense indices are 32-bit with 0xffffffff reserved as the empty
// marker, so a map holds at most 2^32 - 1 states. Exceeding that (or the
// `max_states` cap passed at construction) throws StateCapacityError rather
// than corrupting the table; engines with a finite SearchLimits::max_states
// call reserve() up front so the cap is hit before memory is exhausted.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "support/hash.hpp"

namespace tt {

/// Thrown when a state store would exceed its dense-id space (2^32 - 1
/// states) or an explicitly configured cap.
class StateCapacityError : public std::length_error {
 public:
  using std::length_error::length_error;
};

template <std::size_t W>
class StateIndexMap {
 public:
  using State = std::array<std::uint64_t, W>;
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  /// `max_states` caps the number of interned states; insert() throws
  /// StateCapacityError beyond it. The default is the dense-id space limit.
  /// Lower caps serve memory-bounded runs and make the overflow path testable.
  explicit StateIndexMap(std::size_t initial_capacity = 1 << 16,
                         std::uint32_t max_states = kEmpty)
      : max_states_(max_states) {
    std::size_t cap = 64;
    while (cap < initial_capacity) cap <<= 1;
    table_.assign(cap, kEmpty);
    mask_ = cap - 1;
  }

  /// Interns `s`. Returns {dense index, true-if-new}.
  std::pair<std::uint32_t, bool> insert(const State& s) { return insert(s, hash_words(s)); }

  /// Interns `s` given its precomputed `hash_words(s)` value — the hash-once
  /// hot path: engines compute the hash exactly once per candidate successor
  /// and hand it to every store operation.
  std::pair<std::uint32_t, bool> insert(const State& s, std::uint64_t h) {
    if ((arena_.size() + 1) * 10 >= table_.size() * 7) grow();
    std::size_t slot = h & mask_;
    while (true) {
      const std::uint32_t idx = table_[slot];
      if (idx == kEmpty) {
        if (arena_.size() >= max_states_) {
          throw StateCapacityError("StateIndexMap: dense state-id space exhausted");
        }
        const auto dense = static_cast<std::uint32_t>(arena_.size());
        arena_.push_back(s);
        table_[slot] = dense;
        return {dense, true};
      }
      if (arena_[idx] == s) return {idx, false};
      slot = (slot + 1) & mask_;
    }
  }

  /// Looks up `s`; returns kEmpty when absent.
  [[nodiscard]] std::uint32_t find(const State& s) const { return find(s, hash_words(s)); }

  /// Hash-once lookup; `h` must equal `hash_words(s)`.
  [[nodiscard]] std::uint32_t find(const State& s, std::uint64_t h) const {
    std::size_t slot = h & mask_;
    while (true) {
      const std::uint32_t idx = table_[slot];
      if (idx == kEmpty) return kEmpty;
      if (arena_[idx] == s) return idx;
      slot = (slot + 1) & mask_;
    }
  }

  /// Pre-sizes arena and probe table for `n` states so a bounded run never
  /// rehashes mid-search. Engines call this when SearchLimits::max_states is
  /// finite.
  void reserve(std::size_t n) {
    if (n > max_states_) n = max_states_;
    arena_.reserve(n);
    // Same load-factor headroom as the insert-time growth trigger (0.7).
    std::size_t cap = table_.size();
    while ((n + 1) * 10 >= cap * 7) cap <<= 1;
    if (cap != table_.size()) rehash(cap);
  }

  [[nodiscard]] const State& at(std::uint32_t idx) const { return arena_[idx]; }
  [[nodiscard]] std::size_t size() const noexcept { return arena_.size(); }
  [[nodiscard]] std::uint32_t max_states() const noexcept { return max_states_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return arena_.capacity() * sizeof(State) + table_.capacity() * sizeof(std::uint32_t);
  }

 private:
  void grow() { rehash(table_.size() * 2); }

  void rehash(std::size_t new_cap) {
    std::vector<std::uint32_t> bigger(new_cap, kEmpty);
    const std::size_t mask = bigger.size() - 1;
    for (std::uint32_t idx = 0; idx < arena_.size(); ++idx) {
      std::size_t slot = hash_words(arena_[idx]) & mask;
      while (bigger[slot] != kEmpty) slot = (slot + 1) & mask;
      bigger[slot] = idx;
    }
    table_ = std::move(bigger);
    mask_ = mask;
  }

  std::vector<State> arena_;
  std::vector<std::uint32_t> table_;
  std::size_t mask_ = 0;
  std::uint32_t max_states_ = kEmpty;
};

}  // namespace tt
