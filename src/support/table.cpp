#include "support/table.hpp"

#include <cstdarg>
#include <cstdio>

#include "support/assert.hpp"

namespace tt {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  TT_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  TT_REQUIRE(cells.size() == header_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    out += "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    out += "\n";
  };
  std::string out;
  emit_row(header_, out);
  out += "|";
  for (std::size_t c = 0; c < header_.size(); ++c) out += std::string(width[c] + 2, '-') + "|";
  out += "\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  TT_ASSERT(n >= 0);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace tt
