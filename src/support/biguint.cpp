#include "support/biguint.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace tt {

BigUint::BigUint(std::uint64_t v) {
  while (v != 0) {
    limbs_.push_back(static_cast<std::uint32_t>(v));
    v >>= 32;
  }
}

BigUint BigUint::from_decimal(const std::string& digits) {
  TT_REQUIRE(!digits.empty(), "empty decimal string");
  BigUint r;
  for (char c : digits) {
    TT_REQUIRE(c >= '0' && c <= '9', "invalid decimal digit");
    r *= BigUint(10);
    r += BigUint(static_cast<std::uint64_t>(c - '0'));
  }
  return r;
}

void BigUint::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint& BigUint::operator+=(const BigUint& rhs) {
  const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  limbs_.resize(n, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry + limbs_[i];
    if (i < rhs.limbs_.size()) sum += rhs.limbs_[i];
    limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<std::uint32_t>(carry));
  return *this;
}

BigUint& BigUint::operator*=(const BigUint& rhs) {
  if (is_zero() || rhs.is_zero()) {
    limbs_.clear();
    return *this;
  }
  std::vector<std::uint32_t> out(limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      std::uint64_t cur = out[i + j] + carry +
                          static_cast<std::uint64_t>(limbs_[i]) * rhs.limbs_[j];
      out[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + rhs.limbs_.size();
    while (carry != 0) {
      std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  limbs_ = std::move(out);
  trim();
  return *this;
}

BigUint& BigUint::operator-=(const BigUint& rhs) {
  TT_REQUIRE(*this >= rhs, "BigUint subtraction would underflow");
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t sub =
        borrow + (i < rhs.limbs_.size() ? rhs.limbs_[i] : 0u);
    const std::uint64_t cur = static_cast<std::uint64_t>(limbs_[i]);
    limbs_[i] = static_cast<std::uint32_t>(cur - sub);
    borrow = cur < sub ? 1 : 0;
  }
  TT_ASSERT(borrow == 0);
  trim();
  return *this;
}

BigUint& BigUint::operator>>=(unsigned bits) {
  const std::size_t limb_shift = bits / 32;
  const unsigned bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    return *this;
  }
  limbs_.erase(limbs_.begin(),
               limbs_.begin() + static_cast<std::ptrdiff_t>(limb_shift));
  if (bit_shift != 0) {
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
      limbs_[i] >>= bit_shift;
      if (i + 1 < limbs_.size()) {
        limbs_[i] |= limbs_[i + 1] << (32 - bit_shift);
      }
    }
  }
  trim();
  return *this;
}

std::uint64_t BigUint::to_u64() const {
  TT_REQUIRE(fits_u64(), "BigUint exceeds 64 bits");
  std::uint64_t v = 0;
  if (limbs_.size() > 1) v = static_cast<std::uint64_t>(limbs_[1]) << 32;
  if (!limbs_.empty()) v |= limbs_[0];
  return v;
}

BigUint BigUint::pow2(unsigned exponent) {
  BigUint r;
  r.limbs_.assign(exponent / 32 + 1, 0);
  r.limbs_.back() = 1u << (exponent % 32);
  return r;
}

BigUint BigUint::pow(const BigUint& base, unsigned exponent) {
  BigUint result(1);
  BigUint b = base;
  while (exponent != 0) {
    if (exponent & 1u) result *= b;
    exponent >>= 1;
    if (exponent != 0) b *= b;
  }
  return result;
}

std::strong_ordering BigUint::operator<=>(const BigUint& rhs) const {
  if (limbs_.size() != rhs.limbs_.size()) return limbs_.size() <=> rhs.limbs_.size();
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != rhs.limbs_[i]) return limbs_[i] <=> rhs.limbs_[i];
  }
  return std::strong_ordering::equal;
}

double BigUint::to_double() const noexcept {
  double r = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) r = r * 4294967296.0 + limbs_[i];
  return r;
}

std::string BigUint::to_decimal() const {
  if (is_zero()) return "0";
  std::vector<std::uint32_t> work = limbs_;
  std::string out;
  while (!work.empty()) {
    // Divide work by 1e9; collect remainder digits.
    std::uint64_t rem = 0;
    for (std::size_t i = work.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | work[i];
      work[i] = static_cast<std::uint32_t>(cur / 1000000000u);
      rem = cur % 1000000000u;
    }
    while (!work.empty() && work.back() == 0) work.pop_back();
    for (int d = 0; d < 9; ++d) {
      out.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
      if (work.empty() && rem == 0) break;
    }
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string BigUint::to_scientific(int sig) const {
  TT_REQUIRE(sig >= 1, "need at least one significant digit");
  const std::string dec = to_decimal();
  int exp10 = static_cast<int>(dec.size()) - 1;
  if (exp10 < sig + 2) return dec;  // small numbers read better exactly

  // Round to `sig` significant digits (half-up), handling the 9.99 -> 10
  // carry by shifting the exponent.
  std::string digits = dec.substr(0, static_cast<std::size_t>(sig));
  const bool round_up = dec.size() > static_cast<std::size_t>(sig) && dec[sig] >= '5';
  if (round_up) {
    int i = sig - 1;
    while (i >= 0 && digits[i] == '9') digits[i--] = '0';
    if (i < 0) {
      digits.insert(digits.begin(), '1');
      digits.pop_back();
      ++exp10;
    } else {
      ++digits[i];
    }
  }
  std::string mant;
  mant.push_back(digits[0]);
  if (sig > 1) {
    mant.push_back('.');
    mant += digits.substr(1);
    while (mant.size() > 2 && mant.back() == '0') mant.pop_back();
    if (mant.back() == '.') mant.pop_back();
  }
  return mant + "e" + std::to_string(exp10);
}

int BigUint::decimal_digits() const {
  return static_cast<int>(to_decimal().size());
}

}  // namespace tt
