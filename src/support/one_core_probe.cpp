#include "support/one_core_probe.hpp"

#include <thread>

#if defined(__linux__)
#include <sched.h>

#include <cstdio>
#include <cstring>
#endif

namespace tt {

namespace {

#if defined(__linux__)
/// CPUs the scheduler will actually run this process on — the honest core
/// count inside taskset/cpuset containers, where hardware_concurrency()
/// may still report the host's cores. 0 when the probe itself fails.
int affinity_cpu_count() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof set, &set) != 0) return 0;
  return CPU_COUNT(&set);
}

/// Effective whole CPUs granted by a cgroup-v2 bandwidth quota
/// ("$quota $period" in cpu.max), rounded down. Returns -1 when no quota
/// applies (file absent, unreadable, or "max").
int cgroup_quota_cpus() {
  std::FILE* f = std::fopen("/sys/fs/cgroup/cpu.max", "re");
  if (f == nullptr) return -1;
  char quota[32] = {0};
  long period = 0;
  const int fields = std::fscanf(f, "%31s %ld", quota, &period);
  std::fclose(f);
  if (fields != 2 || period <= 0 || std::strcmp(quota, "max") == 0) return -1;
  const long q = std::strtol(quota, nullptr, 10);
  if (q <= 0) return -1;
  return static_cast<int>(q / period);
}
#endif

int probe() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) return 1;
#if defined(__linux__)
  const int affinity = affinity_cpu_count();
  if (affinity == 1) return 1;
  const int quota = cgroup_quota_cpus();
  if (quota == 0 || quota == 1) return 1;
#endif
  return 0;
}

}  // namespace

int probe_possibly_one_core() {
  static const int flag = probe();
  return flag;
}

}  // namespace tt
