// Bit-level packing of model-checker states into fixed arrays of u64 words.
//
// A `BitCursor` writes/reads unsigned fields of declared width sequentially.
// State layouts are computed once per model configuration; pack/unpack must
// agree on the field order, which the model code guarantees by using a single
// (templated) visit function for both directions.
#pragma once

#include <array>
#include <cstdint>

#include "support/assert.hpp"

namespace tt {

/// Number of bits needed to represent values in [0, n-1] (n >= 1).
[[nodiscard]] constexpr int bits_for(std::uint64_t n) noexcept {
  int b = 0;
  std::uint64_t v = (n == 0) ? 0 : n - 1;
  while (v != 0) {
    ++b;
    v >>= 1;
  }
  return b == 0 ? 1 : b;
}

/// Sequential bit writer over a caller-owned word array.
class BitWriter {
 public:
  BitWriter(std::uint64_t* words, int nwords) noexcept : words_(words), nwords_(nwords) {
    for (int i = 0; i < nwords; ++i) words_[i] = 0;
  }

  /// Resumes writing at bit `start_bit` over words that already hold a
  /// packed prefix. The caller guarantees every bit >= start_bit is zero
  /// (put() ORs into the words). This is the hot-path constructor for
  /// prefix-sharing packers that serialize an invariant prefix once and
  /// append varying suffixes per emission.
  BitWriter(std::uint64_t* words, int nwords, int start_bit) noexcept
      : words_(words), nwords_(nwords), pos_(start_bit) {
    TT_ASSERT(start_bit >= 0 && start_bit <= nwords * 64);
  }

  void put(std::uint64_t value, int width) {
    TT_ASSERT(width > 0 && width <= 64);
    TT_ASSERT(width == 64 || value < (std::uint64_t{1} << width));
    TT_ASSERT((pos_ >> 6) < nwords_ && (pos_ + width + 63) >> 6 <= nwords_);
    put_fast(value, width);
  }

  /// put() without per-call assertions, for packers on the successor hot
  /// path that serialize millions of fields per second. Callers must check
  /// bits_written() against the expected layout width after the last field —
  /// that single assert catches any width/bounds slip the per-call checks
  /// would have.
  void put_fast(std::uint64_t value, int width) noexcept {
    const int word = pos_ >> 6;
    const int off = pos_ & 63;
    words_[word] |= value << off;
    if (off + width > 64) words_[word + 1] |= value >> (64 - off);
    pos_ += width;
  }

  [[nodiscard]] int bits_written() const noexcept { return pos_; }

 private:
  std::uint64_t* words_;
  int nwords_;
  int pos_ = 0;
};

/// Sequential bit reader mirroring BitWriter.
class BitReader {
 public:
  BitReader(const std::uint64_t* words, int nwords) noexcept : words_(words), nwords_(nwords) {}

  [[nodiscard]] std::uint64_t get(int width) {
    TT_ASSERT(width > 0 && width <= 64);
    const int word = pos_ >> 6;
    const int off = pos_ & 63;
    TT_ASSERT(word < nwords_);
    std::uint64_t v = words_[word] >> off;
    if (off + width > 64) {
      TT_ASSERT(word + 1 < nwords_);
      v |= words_[word + 1] << (64 - off);
    }
    pos_ += width;
    if (width < 64) v &= (std::uint64_t{1} << width) - 1;
    return v;
  }

  [[nodiscard]] int bits_read() const noexcept { return pos_; }

 private:
  const std::uint64_t* words_;
  int nwords_;
  int pos_ = 0;
};

}  // namespace tt
