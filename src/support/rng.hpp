// Deterministic pseudo-random number generation for simulation and tests.
//
// xoshiro256** seeded via splitmix64 — small, fast, reproducible across
// platforms (unlike std::default_random_engine).
#pragma once

#include <cstdint>

#include "support/assert.hpp"

namespace tt {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept {
    // splitmix64 stream to fill the xoshiro state.
    auto next_seed = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& w : s_) w = next_seed();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound) via Lemire's multiply-shift (bound > 0).
  std::uint32_t below(std::uint32_t bound) noexcept {
    TT_ASSERT(bound > 0);
    return static_cast<std::uint32_t>((static_cast<unsigned __int128>(next() >> 32) * bound) >> 32);
  }

  /// Uniform double in [0, 1).
  double unit() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace tt
