// SpillWriter: the asynchronous write-behind back end of the out-of-core
// state store (DESIGN.md §3.9).
//
// One dedicated I/O thread owns a set of unlinked temp files — one append
// stream per store shard, each with its own offset, so sealed pages from
// different shards never serialize against a shared file position and the
// quiescent maintain step never copies page bytes around. Producers enqueue
// (file, bytes, cookie) jobs into a bounded FIFO ring and return immediately;
// the I/O thread drains the ring with pwrite. Completions are collected with
// harvest() and the only synchronous barrier is wait_idle(), which the store
// takes when a page must become durable *now* (budget critically exceeded)
// — counted upstream as RunStats::spill_sync_waits.
//
// Concurrency contract:
//   * enqueue()/harvest()/wait_idle()/remap_all() — one producer thread at a
//     time (the store's quiescent maintain step). enqueue() blocks only when
//     the ring is full (backpressure, counted as a sync wait).
//   * data() — safe from any number of reader threads concurrently with the
//     I/O thread, for offsets below the last remap_all(); the mapping is
//     only replaced at quiescent points.
//   * The offset of each job is assigned at enqueue time (per-file bump), so
//     page offsets are deterministic regardless of I/O timing.
//
// Directory resolution: an explicit dir (from --spill-dir) wins, then
// TTSTART_SPILL_DIR, then TMPDIR, then /tmp. When an explicitly requested
// directory is unwritable the writer fails loudly (failed()/error()) instead
// of silently falling through to /tmp.
//
// Failure injection for tests: TTSTART_SPILL_FAIL_AFTER=<bytes> makes every
// write past that many total bytes fail as if the device were full, which is
// how the ENOSPC propagation tests drive the error path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tt {

class SpillWriter {
 public:
  /// Bounded job ring; enqueue blocks (a sync wait) when it is full.
  static constexpr std::size_t kRingCapacity = 256;

  struct Completion {
    std::uint64_t cookie = 0;
    unsigned file = 0;
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
  };

  struct Stats {
    std::size_t sync_waits = 0;      ///< blocking waits (ring full / wait_idle)
    std::size_t async_pages = 0;     ///< jobs accepted without blocking
    std::uint64_t bytes_written = 0; ///< durable bytes across all files
  };

  /// True when this platform has the POSIX pieces (mkstemp/pwrite/mmap).
  [[nodiscard]] static bool platform_supported() noexcept;

  /// `files` independent append streams; `explicit_dir` overrides the
  /// TTSTART_SPILL_DIR / TMPDIR / /tmp fallback chain when non-empty.
  explicit SpillWriter(unsigned files, std::string explicit_dir = {});
  ~SpillWriter();

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  /// Queues an append of [data, data+len) to `file` and returns the offset
  /// the bytes will land at. The buffer must stay valid and unmodified until
  /// the job's completion has been harvested. Returns immediately unless the
  /// ring is full. No-op (returns 0) after a failure.
  std::uint64_t enqueue(unsigned file, const std::uint8_t* data, std::uint32_t len,
                        std::uint64_t cookie);

  /// Appends every newly durable job's completion to `out`; non-blocking.
  std::size_t harvest(std::vector<Completion>& out);

  /// Synchronous barrier: returns once every enqueued job is durable (or the
  /// writer has failed). Counts toward Stats::sync_waits when it had to wait.
  void wait_idle();

  /// Refreshes the read-only mappings of every file that grew since the last
  /// call. Producer thread only, at quiescent points. False on mmap failure.
  bool remap_all();

  /// Pointer to durable bytes below the last remap_all(). Reader-safe.
  [[nodiscard]] const std::uint8_t* data(unsigned file, std::uint64_t off,
                                         std::uint32_t len) const;

  [[nodiscard]] bool failed() const;
  [[nodiscard]] std::string error() const;

  /// Resident bytes of the writer itself: ring, per-file metadata, pending
  /// completion buffer. Counted into the store's memory_bytes() so the
  /// memory budget stays honest about its own machinery.
  [[nodiscard]] std::size_t memory_bytes() const;

  [[nodiscard]] Stats stats() const;

 private:
  struct Job {
    unsigned file = 0;
    const std::uint8_t* data = nullptr;
    std::uint32_t len = 0;
    std::uint64_t cookie = 0;
    std::uint64_t offset = 0;
  };

  struct FileState {
    int fd = -1;
    std::uint64_t reserved = 0;  ///< producer-side append offset
    std::uint64_t written = 0;   ///< durable bytes (I/O thread side)
    std::uint8_t* base = nullptr;
    std::size_t mapped = 0;
  };

  void io_loop();
  bool open_file(FileState& fs);  // producer, under mu_
  void fail(std::string msg);     // under mu_

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // producer -> I/O thread
  std::condition_variable done_cv_;   // I/O thread -> producer
  std::vector<Job> ring_;             // fixed kRingCapacity slots
  std::size_t ring_head_ = 0;         // next job the I/O thread takes
  std::size_t ring_tail_ = 0;         // next free slot
  std::vector<Completion> done_;      // completions awaiting harvest
  std::vector<FileState> files_;
  std::string dir_;                   // resolved at first open
  std::string explicit_dir_;
  bool stop_ = false;
  bool failed_ = false;
  std::string error_;
  Stats stats_;
  std::uint64_t fail_after_ = ~std::uint64_t{0};  ///< injected device-full cap
  std::uint64_t injected_written_ = 0;
  std::thread io_;
};

}  // namespace tt
