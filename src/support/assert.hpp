// Assertion and narrowing helpers shared by every ttstart module.
//
// TT_ASSERT   - internal invariant; aborts with a message. Compiled in all
//               build types: model-checker correctness depends on these and
//               the cost is negligible next to state exploration.
// TT_REQUIRE  - precondition on public API input; throws std::invalid_argument.
// tt::narrow  - checked narrowing conversion (Core Guidelines ES.46).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace tt {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "ttstart: assertion failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

template <class To, class From>
[[nodiscard]] constexpr To narrow(From v) {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>);
  const To r = static_cast<To>(v);
  if (static_cast<From>(r) != v || ((r < To{}) != (v < From{}))) {
    throw std::range_error("ttstart: narrowing conversion lost information");
  }
  return r;
}

}  // namespace tt

#define TT_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::tt::assert_fail(#expr, __FILE__, __LINE__))

#define TT_REQUIRE(expr, msg)                                            \
  ((expr) ? static_cast<void>(0)                                         \
          : throw std::invalid_argument(std::string("ttstart: ") + (msg)))
