// LockFreeStateIndexMap: the lock-free, compressing, out-of-core sibling of
// ShardedStateIndexMap — the storage layer behind `--store lockfree` and
// `--store lockfree-fp`.
//
// Four tiers, one interface:
//
//   1. A lock-free open-addressed probe table. Each shard owns a power-of-two
//      array of 64-bit atomic slots packing (fingerprint << 32) | id-field,
//      where the fingerprint is the low 32 bits of the (masked) state hash
//      and the id-field is local+1 (0 = empty, 0xffffffff = claimed).
//      Insertion is a claim protocol: CAS the empty slot to (fp, CLAIMED),
//      allocate the next dense local id from the shard counter, write the
//      packed state into the arena page, then release-store the final
//      (fp, local+1) word. There is no mutex anywhere on the insert path;
//      same-fingerprint racers spin on the claimed slot until publication
//      and then compare states.
//
//   2. Delta compression of the closed set. The arena is paged (1024 states
//      per page, stable addresses). Once a BFS level is sealed — the engines
//      call quiescent_maintain() between levels — every full page whose
//      states predate the previous quiescent point is recompressed against a
//      per-page reference state: per state, a byte-mask plus the bytes that
//      differ from the reference. States within a level share long prefixes
//      (odometer successor order), so this routinely shrinks the closed set
//      severalfold while the probe fingerprints stay hot in the slot table.
//
//   3. Out-of-core write-behind spill (DESIGN.md §3.9). When memory_bytes()
//      exceeds the configured budget, sealed pages are *enqueued* to a
//      dedicated I/O thread (support/spill_writer.hpp) — one unlinked temp
//      file per shard, each with its own append offset — and maintain
//      returns without waiting for the writes. Page bodies stay resident
//      until a later maintain step harvests their completions, so readers
//      never race a tier change; the only synchronous barrier (counted in
//      StoreStats::spill_sync_waits) is taken when the budget is still
//      exceeded with writes in flight. A Bloom filter built over the
//      fingerprints absorbs definitely-absent membership probes. Runs whose
//      closed set exceeds RAM finish with exact counts.
//
//   4. Opt-in fingerprint-only mode (`--store lockfree-fp`). Sealed page
//      bodies are discarded entirely; only a 64-bit masked fingerprint per
//      state survives (plus the Bloom front). A membership probe that
//      matches a dropped-body fingerprint is *ambiguous*, so the store calls
//      a caller-installed resolver that re-expands the stored state from its
//      predecessor path and compares exactly. When the comparison reveals a
//      genuine collision — two distinct states with equal masked
//      fingerprints — BOTH states are pinned exactly in a side map, which
//      keeps the replay disambiguation (match by masked fingerprint + shard
//      of the full hash, pinned states excluded) unambiguous forever after.
//      Verdicts and counts therefore stay exact, unlike classical hash
//      compaction; the cost shows up as StoreStats::{fp_collisions,
//      reexpansions}.
//
// Id encoding matches ShardedStateIndexMap exactly — id = (local <<
// log2(shards)) | shard, shard routing from the top hash-bit window
// (support/hash.hpp) — so verdicts, counts and extracted traces are
// bit-identical between the stores at any thread count.
//
// Thread-safety contract (mirrors the level-synchronous engines):
//   * insert()        — safe from any number of threads concurrently, to any
//                       shards. Never grows the table; a shard whose probe
//                       table genuinely fills mid-phase throws
//                       StateCapacityError (quiescent_maintain() grows with
//                       headroom between levels, so this is a safety valve).
//   * insert_serial() — single-threaded fast path; grows the shard table and
//                       the Bloom filter inline.
//   * find()/at()     — safe concurrently with each other and with insert().
//                       A find that races an in-flight insert of the same
//                       state may miss it (the engines only find against a
//                       frozen store, so they never observe this).
//   * quiescent_maintain()/reserve()/size()/memory_bytes()/store_stats() —
//                       quiescent phases only (single thread, no concurrent
//                       access), exactly like the sharded map's contract.
//
// Memory-order argument for the publication protocol: the claiming thread's
// arena-page writes (plain stores, including the fingerprint side array) are
// sequenced before its release-store of (fp, local+1); any reader that
// observes the published word via an acquire load therefore sees the fully
// written state, and — transitively through the page-directory CAS chain —
// the page pointer that holds it. Claims are acquire-release CAS so a failed
// claimer rereads a coherent slot value. Tier transitions (seal, drop, and
// the sealed→spilled flip after a write becomes durable) happen only at
// quiescent points, so the concurrent phases never observe one.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/hash.hpp"
#include "support/spill_writer.hpp"
#include "support/state_index_map.hpp"

// Out-of-core support needs the POSIX pieces (SpillWriter::platform_supported
// reports the same condition at runtime); kept as a macro so tests can
// compile-guard the spill-tier expectations.
#if defined(__unix__) || defined(__APPLE__)
#define TT_LFSIM_HAS_SPILL 1
#else
#define TT_LFSIM_HAS_SPILL 0
#endif

namespace tt {

template <std::size_t W>
class LockFreeStateIndexMap {
 public:
  using State = std::array<std::uint64_t, W>;
  static constexpr std::uint32_t kEmpty = 0xffffffffu;
  static constexpr unsigned kMaxShards = 256;
  static_assert((1u << kShardWindowBits) == kMaxShards,
                "shard window must cover kMaxShards exactly");

  /// Exact reconstruction hook for fingerprint-only mode: given the global
  /// id of a state whose body was dropped, rebuild the state (typically by
  /// replaying its predecessor path) into `out`. Must be thread-safe.
  using Resolver = std::function<bool(std::uint32_t, State&)>;

  /// Cumulative counters, readable at quiescent points (store_stats()).
  struct StoreStats {
    std::size_t cas_retries = 0;       ///< failed claims + claimed-slot spins
    std::size_t pages_compressed = 0;  ///< arena pages sealed to delta form
    std::size_t pages_spilled = 0;     ///< page bodies evicted out of RAM
    std::size_t spill_bytes = 0;       ///< compressed bytes handed to the writer
    std::size_t bloom_negatives = 0;   ///< finds short-circuited by the Bloom
    std::size_t spill_sync_waits = 0;  ///< synchronous write-behind barriers
    std::size_t spill_async_pages = 0; ///< pages enqueued without blocking
    std::size_t pages_dropped = 0;     ///< fp-only: page bodies discarded
    std::size_t fp_collisions = 0;     ///< fp-only: distinct states, equal fp
    std::size_t reexpansions = 0;      ///< fp-only: resolver replays taken
  };

  /// What one quiescent_maintain() call did; engines wrap it in an obs span.
  struct MaintainStats {
    std::size_t pages_sealed = 0;
    std::size_t pages_spilled = 0;
    std::size_t bytes_spilled = 0;
    std::size_t pages_enqueued = 0;  ///< handed to the write-behind thread
    std::size_t sync_waits = 0;      ///< blocking barriers this call took
    std::size_t shards_grown = 0;
    bool bloom_rebuilt = false;
  };

  /// Resident-byte accounting, component by component; memory_bytes() is
  /// exactly the sum. A regression test pins this formula so the budget
  /// enforcement can't silently stop counting a component.
  struct MemoryBreakdown {
    std::size_t slots = 0;         ///< probe tables across all shards
    std::size_t raw_pages = 0;     ///< uncompressed arena pages
    std::size_t sealed_pages = 0;  ///< delta streams + anchor tables
    std::size_t fingerprints = 0;  ///< fp-only per-state fingerprint arrays
    std::size_t pinned = 0;        ///< fp-only exact-pinned collision states
    std::size_t bloom = 0;
    std::size_t spill_writer = 0;  ///< ring + per-shard file metadata

    [[nodiscard]] std::size_t total() const noexcept {
      return slots + raw_pages + sealed_pages + fingerprints + pinned + bloom +
             spill_writer;
    }
  };

  explicit LockFreeStateIndexMap(unsigned shard_count = 1,
                                 std::size_t initial_capacity = 1 << 12) {
    TT_REQUIRE(shard_count >= 1 && shard_count <= kMaxShards, "bad shard count");
    unsigned shards = 1;
    shard_bits_ = 0;
    while (shards < shard_count) {
      shards <<= 1;
      ++shard_bits_;
    }
    shard_mask_ = shards - 1;
    // Ids never reach 0xffffffff, and the id-field value 0xffffffff is the
    // claim sentinel: cap local ids below both.
    local_limit_ = (shard_bits_ == 32) ? 0 : ((1ull << (32 - shard_bits_)) - 1);
    if (local_limit_ > 0xfffffffeull) local_limit_ = 0xfffffffeull;
    shards_ = std::make_unique<Shard[]>(shards);
    const std::size_t per_shard = initial_capacity / shards + 64;
    for (unsigned s = 0; s <= shard_mask_; ++s) shards_[s].init(per_shard);
  }

  [[nodiscard]] unsigned shard_count() const noexcept { return shard_mask_ + 1; }

  [[nodiscard]] unsigned shard_of(const State& s) const noexcept {
    return shard_of(hash_words(s));
  }
  /// Hash-once shard routing; `h` must equal `hash_words(s)`. Same top-bit
  /// window as ShardedStateIndexMap, so both stores assign identical ids.
  /// Routing always uses the full hash — the fingerprint mask narrows only
  /// what is *stored*, never where, so ids stay identical across modes.
  [[nodiscard]] unsigned shard_of(std::uint64_t h) const noexcept {
    return static_cast<unsigned>(h >> kShardHashShift) & shard_mask_;
  }
  [[nodiscard]] unsigned shard_of_id(std::uint32_t id) const noexcept {
    return id & shard_mask_;
  }
  [[nodiscard]] std::uint32_t local_of_id(std::uint32_t id) const noexcept {
    return id >> shard_bits_;
  }
  [[nodiscard]] std::uint32_t id_of(unsigned shard, std::uint32_t local) const noexcept {
    return (local << shard_bits_) | shard;
  }

  std::pair<std::uint32_t, bool> insert(const State& s) { return insert(s, hash_words(s)); }

  /// Lock-free hash-once intern, safe under arbitrary concurrency.
  std::pair<std::uint32_t, bool> insert(const State& s, std::uint64_t h) {
    const unsigned shard_idx = shard_of(h);
    Shard& sh = shards_[shard_idx];
    const std::uint32_t fp = static_cast<std::uint32_t>(h & fp_mask_);
    std::size_t slot = fp & sh.mask;
    std::size_t probes = 0;
    bool collided = false;
    std::uint64_t v = sh.slots[slot].load(std::memory_order_acquire);
    while (true) {
      if (v == 0) {
        const std::uint64_t claim = (static_cast<std::uint64_t>(fp) << 32) | kClaimedField;
        if (!sh.slots[slot].compare_exchange_strong(v, claim, std::memory_order_acq_rel,
                                                    std::memory_order_acquire)) {
          cas_retries_.fetch_add(1, std::memory_order_relaxed);
          continue;  // v holds the interloper's value; re-examine this slot
        }
        std::uint32_t local;
        try {
          local = allocate_local(sh);
        } catch (...) {
          // Roll the claim back so the table stays consistent for whoever
          // observes the exception and inspects the store afterwards.
          sh.slots[slot].store(0, std::memory_order_release);
          throw;
        }
        Page* pg = page_for_write(sh, shard_idx, local >> kPageBits);
        pg->raw[local & kPageOffMask] = s;
        if (fp_mode_) pg->fps[local & kPageOffMask] = h & fp_mask_;
        sh.slots[slot].store((static_cast<std::uint64_t>(fp) << 32) | (local + 1),
                             std::memory_order_release);
        bloom_add(fp);
        const std::uint32_t gid = id_of(shard_idx, local);
        // A collision seen during the probe walk means this fresh state
        // shares a masked fingerprint with a distinct stored state: pin it
        // exactly so the replay disambiguation stays unambiguous after its
        // own body is eventually dropped.
        if (collided) pin_state(gid, s);
        return {gid, true};
      }
      if (static_cast<std::uint32_t>(v >> 32) == fp) {
        const std::uint32_t idf = static_cast<std::uint32_t>(v);
        if (idf == kClaimedField) {
          // Same-fingerprint insert in flight: wait for publication, then
          // compare against the published state.
          cas_retries_.fetch_add(1, std::memory_order_relaxed);
          v = sh.slots[slot].load(std::memory_order_acquire);
          continue;
        }
        const std::uint32_t local = idf - 1;
        const int m = matches(shard_idx, sh, local, s, h);
        if (m > 0) return {id_of(shard_idx, local), false};
        if (m < 0) collided = true;
      }
      if (++probes > sh.mask) {
        throw StateCapacityError(
            "LockFreeStateIndexMap: probe table full mid-phase "
            "(quiescent_maintain grows with headroom between levels)");
      }
      slot = (slot + 1) & sh.mask;
      v = sh.slots[slot].load(std::memory_order_acquire);
    }
  }

  std::pair<std::uint32_t, bool> insert_serial(const State& s) {
    return insert_serial(s, hash_words(s));
  }

  /// Single-threaded intern: same table, relaxed atomics, inline growth.
  std::pair<std::uint32_t, bool> insert_serial(const State& s, std::uint64_t h) {
    const unsigned shard_idx = shard_of(h);
    Shard& sh = shards_[shard_idx];
    if ((sh.count.load(std::memory_order_relaxed) + 1) * 10 >= (sh.mask + 1) * 7) {
      grow_shard(sh, (sh.mask + 1) * 2);
      maybe_grow_bloom();
    }
    const std::uint32_t fp = static_cast<std::uint32_t>(h & fp_mask_);
    std::size_t slot = fp & sh.mask;
    bool collided = false;
    while (true) {
      const std::uint64_t v = sh.slots[slot].load(std::memory_order_relaxed);
      if (v == 0) {
        const std::uint32_t local = allocate_local(sh);
        Page* pg = page_for_write(sh, shard_idx, local >> kPageBits);
        pg->raw[local & kPageOffMask] = s;
        if (fp_mode_) pg->fps[local & kPageOffMask] = h & fp_mask_;
        sh.slots[slot].store((static_cast<std::uint64_t>(fp) << 32) | (local + 1),
                             std::memory_order_relaxed);
        bloom_add(fp);
        const std::uint32_t gid = id_of(shard_idx, local);
        if (collided) pin_state(gid, s);
        return {gid, true};
      }
      if (static_cast<std::uint32_t>(v >> 32) == fp) {
        const std::uint32_t local = static_cast<std::uint32_t>(v) - 1;
        const int m = matches(shard_idx, sh, local, s, h);
        if (m > 0) return {id_of(shard_idx, local), false};
        if (m < 0) collided = true;
      }
      slot = (slot + 1) & sh.mask;
    }
  }

  [[nodiscard]] std::uint32_t find(const State& s) const { return find(s, hash_words(s)); }

  /// Hash-once lookup; Bloom-fronted, then the lock-free probe walk.
  [[nodiscard]] std::uint32_t find(const State& s, std::uint64_t h) const {
    const std::uint32_t fp = static_cast<std::uint32_t>(h & fp_mask_);
    if (bloom_mask_ != 0 && !bloom_maybe(fp)) {
      bloom_negatives_.fetch_add(1, std::memory_order_relaxed);
      return kEmpty;
    }
    const unsigned shard_idx = shard_of(h);
    const Shard& sh = shards_[shard_idx];
    std::size_t slot = fp & sh.mask;
    while (true) {
      const std::uint64_t v = sh.slots[slot].load(std::memory_order_acquire);
      if (v == 0) return kEmpty;
      if (static_cast<std::uint32_t>(v >> 32) == fp) {
        const std::uint32_t idf = static_cast<std::uint32_t>(v);
        if (idf == kClaimedField) {
          cas_retries_.fetch_add(1, std::memory_order_relaxed);
          continue;  // in-flight insert of this fingerprint: wait it out
        }
        const std::uint32_t local = idf - 1;
        if (matches(shard_idx, sh, local, s, h) > 0) return id_of(shard_idx, local);
      }
      slot = (slot + 1) & sh.mask;
    }
  }

  /// Decoding read: raw pages are a direct load; sealed and spilled pages
  /// reconstruct the state from the reference + delta stream; dropped pages
  /// (fp-only mode) come back from the pinned map or the resolver. Returns
  /// by value — callers bind a const reference or copy, both are fine.
  [[nodiscard]] State at(std::uint32_t id) const {
    const Shard& sh = shards_[id & shard_mask_];
    const std::uint32_t local = id >> shard_bits_;
    const Page* pg = page_for_read(sh, local >> kPageBits);
    const std::uint32_t off = local & kPageOffMask;
    if (pg->tier == kTierRaw) return pg->raw[off];
    State out;
    if (pg->tier == kTierDropped) {
      if (lookup_pinned(id, out)) return out;
      TT_REQUIRE(resolver_ != nullptr,
                 "LockFreeStateIndexMap: fingerprint-only read of a dropped "
                 "state needs a re-expansion resolver");
      reexpansions_.fetch_add(1, std::memory_order_relaxed);
      const bool ok = resolver_(id, out);
      TT_REQUIRE(ok, "LockFreeStateIndexMap: re-expansion failed to rebuild a state");
      return out;
    }
    decode_into(*pg, off, out);
    return out;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    std::size_t total = 0;
    for (unsigned s = 0; s <= shard_mask_; ++s) {
      total += shards_[s].count.load(std::memory_order_relaxed);
    }
    return total;
  }

  [[nodiscard]] std::size_t shard_size(unsigned shard) const noexcept {
    return shards_[shard].count.load(std::memory_order_relaxed);
  }

  /// Resident bytes, component by component. Quiescent phases only.
  [[nodiscard]] MemoryBreakdown memory_breakdown() const noexcept {
    MemoryBreakdown b;
    b.raw_pages = raw_bytes_.load(std::memory_order_relaxed);
    b.sealed_pages = sealed_bytes_;
    b.fingerprints = fp_bytes_.load(std::memory_order_relaxed);
    for (unsigned s = 0; s <= shard_mask_; ++s) {
      b.slots += (shards_[s].mask + 1) * sizeof(std::uint64_t);
    }
    if (bloom_mask_ != 0) b.bloom = (bloom_mask_ + 1) / 8;
    if (writer_) b.spill_writer = writer_->memory_bytes();
    {
      std::lock_guard<std::mutex> lk(pinned_mu_);
      b.pinned = pinned_.size() * (sizeof(State) + kPinnedNodeOverhead);
    }
    return b;
  }

  /// Resident bytes: the sum of every memory_breakdown() component. Spilled
  /// bytes live on disk and are excluded. Quiescent phases only.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return memory_breakdown().total();
  }

  /// Pre-sizes every shard for `total_states` overall (25% skew margin) and
  /// builds the Bloom front. Not thread-safe; call before exploration.
  void reserve(std::size_t total_states) {
    const std::size_t per_shard =
        total_states / shard_count() + total_states / (4 * shard_count()) + 64;
    for (unsigned s = 0; s <= shard_mask_; ++s) {
      Shard& sh = shards_[s];
      std::size_t cap = sh.mask + 1;
      while ((per_shard + 1) * 10 >= cap * 7) cap <<= 1;
      if (cap != sh.mask + 1) grow_shard(sh, cap);
    }
    grow_bloom_for(total_states);
  }

  /// Caps the total interned states; insert throws StateCapacityError beyond
  /// it. Quiescent only. Mirrors StateIndexMap's max_states constructor dial.
  void set_max_states(std::uint64_t n) { max_states_ = n; }

  /// Sets the resident-memory budget in bytes (0 = unlimited). Sealed pages
  /// are spilled to disk at quiescent points while memory_bytes() exceeds it.
  void set_mem_budget(std::size_t bytes) { mem_budget_bytes_ = bytes; }

  /// Overrides the spill directory (--spill-dir); wins over TTSTART_SPILL_DIR.
  /// Must be set before the first spill. An unwritable directory surfaces as
  /// StateCapacityError from the maintain step, never a silent /tmp fallback.
  void set_spill_dir(std::string dir) {
    TT_REQUIRE(!writer_, "set_spill_dir must precede the first spill");
    spill_dir_ = std::move(dir);
  }

  /// Forces every maintain step to wait for its spill writes (the pre-
  /// write-behind behavior). Bench baseline dial; off by default.
  void set_spill_synchronous(bool on) { spill_sync_ = on; }

  /// Switches the store into fingerprint-only mode (`--store lockfree-fp`);
  /// must be called before any insert. Honors TTSTART_FP_BITS (8..64) to
  /// narrow the stored fingerprint — the collision-oracle tests use this to
  /// force aliasing that a 64-bit fingerprint would essentially never hit.
  void set_fingerprint_only(bool on) {
    TT_REQUIRE(size() == 0, "fingerprint-only mode must precede all inserts");
    fp_mode_ = on;
    if (on) {
      if (const char* bits = std::getenv("TTSTART_FP_BITS")) {
        const long b = std::strtol(bits, nullptr, 10);
        if (b >= 8 && b <= 64) set_fingerprint_bits(static_cast<unsigned>(b));
      }
    }
  }

  [[nodiscard]] bool fingerprint_only() const noexcept { return fp_mode_; }

  /// Narrows the stored fingerprint to the low `bits` bits (test dial; the
  /// default is the full 64-bit hash). Fingerprint-only mode only.
  void set_fingerprint_bits(unsigned bits) {
    TT_REQUIRE(fp_mode_ && size() == 0, "fingerprint width is an fp-mode pre-insert dial");
    TT_REQUIRE(bits >= 8 && bits <= 64, "fingerprint width out of range");
    fp_mask_ = bits >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << bits) - 1);
  }

  [[nodiscard]] std::uint64_t fp_mask() const noexcept { return fp_mask_; }

  /// Installs the exact-reconstruction hook fingerprint-only mode needs once
  /// pages start dropping. The engines install a predecessor-path replayer.
  void set_resolver(Resolver r) { resolver_ = std::move(r); }

  /// The stored masked fingerprint of `id`. Fingerprint-only mode only.
  [[nodiscard]] std::uint64_t fingerprint_of(std::uint32_t id) const {
    TT_ASSERT(fp_mode_);
    const Shard& sh = shards_[id & shard_mask_];
    const std::uint32_t local = id >> shard_bits_;
    return page_for_read(sh, local >> kPageBits)->fps[local & kPageOffMask];
  }

  /// True when `id` can be read back without the resolver (raw/sealed/
  /// spilled body, or pinned exactly after a collision).
  [[nodiscard]] bool body_resident(std::uint32_t id) const {
    const Shard& sh = shards_[id & shard_mask_];
    const std::uint32_t local = id >> shard_bits_;
    if (page_for_read(sh, local >> kPageBits)->tier != kTierDropped) return true;
    State tmp;
    return lookup_pinned(id, tmp);
  }

  /// Reads `id` back without consulting the resolver; false when the body
  /// was dropped and the state is not pinned. The engines' replayers use
  /// this as the recursion-free base of the predecessor walk.
  [[nodiscard]] bool resident_state(std::uint32_t id, State& out) const {
    const Shard& sh = shards_[id & shard_mask_];
    const std::uint32_t local = id >> shard_bits_;
    const Page* pg = page_for_read(sh, local >> kPageBits);
    const std::uint32_t off = local & kPageOffMask;
    if (pg->tier == kTierRaw) {
      out = pg->raw[off];
      return true;
    }
    if (pg->tier == kTierDropped) return lookup_pinned(id, out);
    decode_into(*pg, off, out);
    return true;
  }

  [[nodiscard]] StoreStats store_stats() const noexcept {
    StoreStats st = stats_;
    st.cas_retries = cas_retries_.load(std::memory_order_relaxed);
    st.bloom_negatives = bloom_negatives_.load(std::memory_order_relaxed);
    st.fp_collisions = fp_collisions_.load(std::memory_order_relaxed);
    st.reexpansions = reexpansions_.load(std::memory_order_relaxed);
    return st;
  }

  /// The between-levels maintenance step; must be called with no concurrent
  /// access (the engines call it from the coordinator between barriers).
  ///
  ///   1. Harvests write-behind completions from the I/O thread and flips
  ///      the newly durable pages' tier (readers only ever see the flip
  ///      after this quiescent point).
  ///   2. Grows any shard whose table would exceed ~50% load after
  ///      `expected_new_states` more inserts (rehash from fingerprints alone
  ///      — sealed states never need decoding to rehash).
  ///   3. Grows/rebuilds the Bloom filter toward 16 bits per state.
  ///   4. Seals every full arena page whose states predate the *previous*
  ///      quiescent point (the current frontier stays raw for fast expand
  ///      reads) — delta-compressed under lockfree, body dropped outright
  ///      under fingerprint-only mode.
  ///   5. Under a memory budget, enqueues sealed pages to the write-behind
  ///      thread and frees the oldest *durable* bodies while over budget;
  ///      takes the synchronous barrier only when still over budget with
  ///      writes in flight (StoreStats::spill_sync_waits).
  MaintainStats quiescent_maintain(std::size_t expected_new_states = 0) {
    MaintainStats out;
    harvest_spill();
    const std::size_t expected_share =
        expected_new_states / shard_count() + expected_new_states / (4 * shard_count()) + 16;
    for (unsigned s = 0; s <= shard_mask_; ++s) {
      Shard& sh = shards_[s];
      const std::size_t need = sh.count.load(std::memory_order_relaxed) + expected_share;
      std::size_t cap = sh.mask + 1;
      while ((need + 1) * 2 >= cap) cap <<= 1;  // target load <= ~0.5 post-growth
      if (cap != sh.mask + 1) {
        grow_shard(sh, cap);
        ++out.shards_grown;
      }
    }
    out.bloom_rebuilt = maybe_grow_bloom();
    for (unsigned s = 0; s <= shard_mask_; ++s) {
      Shard& sh = shards_[s];
      const std::uint32_t sealable_limit = sh.prev_quiescent;
      sh.prev_quiescent = sh.count.load(std::memory_order_relaxed);
      while ((sh.sealed_pages + 1) * kPageStates <= sealable_limit) {
        Page* pg = page_for_read(sh, sh.sealed_pages);
        if (fp_mode_) {
          drop_page(*pg);
        } else {
          seal_page(*pg);
          spill_queue_.push_back(pg);
        }
        ++sh.sealed_pages;
        ++out.pages_sealed;
      }
    }
    if (!fp_mode_ && mem_budget_bytes_ != 0 && SpillWriter::platform_supported()) {
      // Write-behind: hand every newly sealed page to the I/O thread and
      // return; bodies stay resident (and readable) until their writes are
      // durable *and* a later maintain step frees them.
      if (!writer_ && enqueue_head_ < spill_queue_.size()) {
        writer_ = std::make_unique<SpillWriter>(shard_count(), spill_dir_);
      }
      while (enqueue_head_ < spill_queue_.size()) {
        Page* pg = spill_queue_[enqueue_head_];
        const std::uint32_t len = static_cast<std::uint32_t>(pg->packed.size());
        pg->spill_off = writer_->enqueue(pg->owner, pg->packed.data(), len,
                                         reinterpret_cast<std::uint64_t>(pg));
        pg->spill_len = len;
        stats_.spill_bytes += len;
        ++stats_.spill_async_pages;
        out.bytes_spilled += len;
        ++out.pages_enqueued;
        ++enqueue_head_;
      }
      if (spill_sync_ && writer_ && out.pages_enqueued > 0) {
        writer_->wait_idle();
        ++stats_.spill_sync_waits;
        ++out.sync_waits;
      }
      harvest_spill();
      while (memory_bytes() > mem_budget_bytes_ && free_head_ < spill_queue_.size()) {
        Page* pg = spill_queue_[free_head_];
        if (!pg->durable) {
          // Budget critically exceeded with writes still in flight: the one
          // place the write-behind pipeline takes a synchronous barrier.
          writer_->wait_idle();
          ++stats_.spill_sync_waits;
          ++out.sync_waits;
          harvest_spill();
          if (!pg->durable) break;  // writer failed; surfaced below
        }
        evict_page(*pg, out);
        ++free_head_;
      }
      if (writer_) {
        if (writer_->failed()) {
          throw StateCapacityError("LockFreeStateIndexMap: " + writer_->error());
        }
        if (!writer_->remap_all()) {
          throw StateCapacityError("LockFreeStateIndexMap: " + writer_->error());
        }
      }
    }
    return out;
  }

  ~LockFreeStateIndexMap() {
    writer_.reset();  // join the I/O thread before its page buffers go away
    for (unsigned s = 0; s <= shard_mask_; ++s) {
      Shard& sh = shards_[s];
      for (std::size_t d = 0; d < kDirTop; ++d) {
        Leaf* leaf = sh.dir[d].load(std::memory_order_relaxed);
        if (!leaf) continue;
        for (auto& pe : leaf->pages) delete pe.load(std::memory_order_relaxed);
        delete leaf;
      }
    }
  }

  LockFreeStateIndexMap(const LockFreeStateIndexMap&) = delete;
  LockFreeStateIndexMap& operator=(const LockFreeStateIndexMap&) = delete;

 private:
  static constexpr std::uint32_t kClaimedField = 0xffffffffu;
  static constexpr std::uint32_t kPageBits = 10;  ///< 1024 states per page
  static constexpr std::uint32_t kPageStates = 1u << kPageBits;
  static constexpr std::uint32_t kPageOffMask = kPageStates - 1;
  static constexpr std::uint32_t kLeafBits = 9;  ///< pages per directory leaf
  static constexpr std::size_t kLeafPages = std::size_t{1} << kLeafBits;
  static constexpr std::size_t kLeafMask = kLeafPages - 1;
  // Top directory entries per shard; covers 2^(10+9+10) = 2^29 states/shard,
  // beyond the 32-bit id space at any shard count >= 8.
  static constexpr std::size_t kDirTop = std::size_t{1} << 10;
  static constexpr std::uint32_t kAnchorShift = 3;  ///< random-access stride 8
  static constexpr std::uint32_t kAnchorEvery = 1u << kAnchorShift;
  static constexpr std::size_t kStateBytes = W * sizeof(std::uint64_t);
  /// Per-entry bookkeeping charged for a pinned state (key + node overhead);
  /// part of the memory_bytes() formula the accounting test pins.
  static constexpr std::size_t kPinnedNodeOverhead =
      sizeof(std::uint32_t) + 4 * sizeof(void*);

  enum Tier : std::uint8_t {
    kTierRaw = 0,
    kTierSealed = 1,
    kTierSpilled = 2,
    kTierDropped = 3,  ///< fp-only: body gone, fingerprints remain
  };

  struct Page {
    std::unique_ptr<State[]> raw;        ///< kPageStates entries while kTierRaw
    State ref{};                         ///< delta reference once sealed
    std::vector<std::uint8_t> packed;    ///< mask+delta stream while kTierSealed
    std::vector<std::uint32_t> anchors;  ///< stream offset of every 8th state
    std::unique_ptr<std::uint64_t[]> fps;  ///< fp-only: masked fp per state
    std::uint64_t spill_off = 0;
    std::uint32_t spill_len = 0;
    unsigned owner = 0;     ///< owning shard = this page's spill file index
    bool durable = false;   ///< write-behind completion harvested
    std::uint8_t tier = kTierRaw;
  };

  struct Leaf {
    std::array<std::atomic<Page*>, kLeafPages> pages{};
  };

  struct Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
    std::size_t mask = 0;
    std::atomic<std::uint32_t> count{0};
    std::unique_ptr<std::atomic<Leaf*>[]> dir;
    std::uint32_t prev_quiescent = 0;  ///< count at the previous maintain()
    std::uint32_t sealed_pages = 0;    ///< pages [0, sealed_pages) are sealed

    void init(std::size_t initial_capacity) {
      std::size_t cap = 64;
      while (cap < initial_capacity) cap <<= 1;
      slots = std::make_unique<std::atomic<std::uint64_t>[]>(cap);  // value-init: all empty
      mask = cap - 1;
      dir = std::make_unique<std::atomic<Leaf*>[]>(kDirTop);
    }
  };

  std::uint32_t allocate_local(Shard& sh) {
    if (max_states_ != ~0ull) {
      std::uint64_t t = cap_used_.load(std::memory_order_relaxed);
      do {
        if (t >= max_states_) {
          throw StateCapacityError("LockFreeStateIndexMap: dense state-id space exhausted");
        }
      } while (!cap_used_.compare_exchange_weak(t, t + 1, std::memory_order_relaxed));
    }
    std::uint32_t c = sh.count.load(std::memory_order_relaxed);
    do {
      if (c >= local_limit_) {
        // cap_used_ stays bumped; the exception aborts the run anyway.
        throw StateCapacityError("LockFreeStateIndexMap: shard dense-id space exhausted");
      }
    } while (!sh.count.compare_exchange_weak(c, c + 1, std::memory_order_relaxed));
    return c;
  }

  /// Writer-side page lookup: allocates directory leaves and pages on first
  /// touch via CAS publication (losers free their allocation and adopt).
  Page* page_for_write(Shard& sh, unsigned shard_idx, std::uint32_t page_idx) {
    std::atomic<Leaf*>& le = sh.dir[page_idx >> kLeafBits];
    Leaf* leaf = le.load(std::memory_order_acquire);
    if (!leaf) {
      Leaf* fresh = new Leaf();
      if (le.compare_exchange_strong(leaf, fresh, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        leaf = fresh;
      } else {
        delete fresh;  // leaf holds the winner
      }
    }
    std::atomic<Page*>& pe = leaf->pages[page_idx & kLeafMask];
    Page* pg = pe.load(std::memory_order_acquire);
    if (!pg) {
      Page* fresh = new Page();
      fresh->raw = std::make_unique<State[]>(kPageStates);
      fresh->owner = shard_idx;
      if (fp_mode_) fresh->fps = std::make_unique<std::uint64_t[]>(kPageStates);
      if (pe.compare_exchange_strong(pg, fresh, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        pg = fresh;
        raw_bytes_.fetch_add(kPageStates * sizeof(State), std::memory_order_relaxed);
        if (fp_mode_) {
          fp_bytes_.fetch_add(kPageStates * sizeof(std::uint64_t),
                              std::memory_order_relaxed);
        }
      } else {
        delete fresh;
      }
    }
    return pg;
  }

  /// Reader-side page lookup: the page was published before the id that led
  /// the reader here, so both levels must be non-null.
  Page* page_for_read(const Shard& sh, std::uint32_t page_idx) const {
    Leaf* leaf = sh.dir[page_idx >> kLeafBits].load(std::memory_order_acquire);
    TT_ASSERT(leaf != nullptr);
    Page* pg = leaf->pages[page_idx & kLeafMask].load(std::memory_order_acquire);
    TT_ASSERT(pg != nullptr);
    return pg;
  }

  bool state_equals(const Shard& sh, std::uint32_t local, const State& s) const {
    const Page* pg = page_for_read(sh, local >> kPageBits);
    const std::uint32_t off = local & kPageOffMask;
    if (pg->tier == kTierRaw) return pg->raw[off] == s;
    State tmp;
    decode_into(*pg, off, tmp);
    return tmp == s;
  }

  /// Exact membership verdict against stored `local`, all tiers and modes:
  /// 1 = same state, 0 = different state, -1 = different state *sharing the
  /// candidate's masked fingerprint* (fp-only mode; the stored state has
  /// been pinned exactly and the caller must pin the candidate too once it
  /// is interned). In fp-only mode a dropped body with a matching
  /// fingerprint is ambiguous and goes through the resolver.
  int matches(unsigned shard_idx, const Shard& sh, std::uint32_t local, const State& s,
              std::uint64_t h) const {
    if (!fp_mode_) return state_equals(sh, local, s) ? 1 : 0;
    const Page* pg = page_for_read(sh, local >> kPageBits);
    const std::uint32_t off = local & kPageOffMask;
    if (pg->fps[off] != (h & fp_mask_)) return 0;
    const std::uint32_t gid = id_of(shard_idx, local);
    State stored;
    if (pg->tier == kTierRaw) {
      stored = pg->raw[off];
    } else if (!lookup_pinned(gid, stored)) {
      TT_REQUIRE(resolver_ != nullptr,
                 "LockFreeStateIndexMap: fingerprint-only probe hit a dropped "
                 "body with no re-expansion resolver installed");
      reexpansions_.fetch_add(1, std::memory_order_relaxed);
      const bool ok = resolver_(gid, stored);
      TT_REQUIRE(ok, "LockFreeStateIndexMap: re-expansion failed to rebuild a state");
    }
    if (stored == s) return 1;
    // Genuine collision. Pin the stored state *now* — even while its body is
    // still resident — so the set of distinct states sharing a masked
    // fingerprint within a shard is always fully pinned, which is what makes
    // the replay disambiguation sound after later body drops.
    fp_collisions_.fetch_add(1, std::memory_order_relaxed);
    pin_state(gid, stored);
    return -1;
  }

  void pin_state(std::uint32_t gid, const State& s) const {
    std::lock_guard<std::mutex> lk(pinned_mu_);
    pinned_.emplace(gid, s);
  }

  [[nodiscard]] bool lookup_pinned(std::uint32_t gid, State& out) const {
    std::lock_guard<std::mutex> lk(pinned_mu_);
    const auto it = pinned_.find(gid);
    if (it == pinned_.end()) return false;
    out = it->second;
    return true;
  }

  // ---- delta codec -------------------------------------------------------
  // Entry i encodes state i against the page reference: W mask bytes (bit j
  // of mask byte b set iff state byte b*8+j differs from the reference),
  // followed by the differing bytes in order. Entries are independent, so
  // decoding seeks to the nearest anchor and skips at most 7 entries.

  static void encode_entry(const State& ref, const State& s, std::vector<std::uint8_t>& out) {
    const auto* a = reinterpret_cast<const std::uint8_t*>(ref.data());
    const auto* b = reinterpret_cast<const std::uint8_t*>(s.data());
    const std::size_t mask_pos = out.size();
    out.insert(out.end(), W, 0);
    for (std::size_t i = 0; i < kStateBytes; ++i) {
      if (a[i] != b[i]) {
        out[mask_pos + (i >> 3)] |= static_cast<std::uint8_t>(1u << (i & 7));
        out.push_back(b[i]);
      }
    }
  }

  static const std::uint8_t* apply_entry(const std::uint8_t* q, State& s) {
    auto* b = reinterpret_cast<std::uint8_t*>(s.data());
    const std::uint8_t* mask = q;
    q += W;
    for (std::size_t i = 0; i < W; ++i) {
      std::uint8_t m = mask[i];
      while (m != 0) {
        const unsigned bit = static_cast<unsigned>(std::countr_zero(m));
        m &= static_cast<std::uint8_t>(m - 1);
        b[i * 8 + bit] = *q++;
      }
    }
    return q;
  }

  static const std::uint8_t* skip_entry(const std::uint8_t* q) {
    std::size_t n = W;
    for (std::size_t i = 0; i < W; ++i) n += static_cast<std::size_t>(std::popcount(q[i]));
    return q + n;
  }

  void decode_into(const Page& pg, std::uint32_t off, State& out) const {
    const std::uint8_t* base;
    if (pg.tier == kTierSpilled) {
      base = writer_->data(pg.owner, pg.spill_off, pg.spill_len);
    } else {
      base = pg.packed.data();
    }
    const std::uint8_t* q = base + pg.anchors[off >> kAnchorShift];
    for (std::uint32_t i = off & (kAnchorEvery - 1); i > 0; --i) q = skip_entry(q);
    out = pg.ref;
    apply_entry(q, out);
  }

  void seal_page(Page& pg) {
    pg.ref = pg.raw[0];
    pg.packed.clear();
    pg.anchors.clear();
    for (std::uint32_t i = 0; i < kPageStates; ++i) {
      if ((i & (kAnchorEvery - 1)) == 0) {
        pg.anchors.push_back(static_cast<std::uint32_t>(pg.packed.size()));
      }
      encode_entry(pg.ref, pg.raw[i], pg.packed);
    }
    pg.packed.shrink_to_fit();
    pg.raw.reset();
    pg.tier = kTierSealed;
    raw_bytes_.fetch_sub(kPageStates * sizeof(State), std::memory_order_relaxed);
    sealed_bytes_ += pg.packed.capacity() + pg.anchors.capacity() * sizeof(std::uint32_t);
    ++stats_.pages_compressed;
  }

  /// Fingerprint-only seal: the body is simply discarded. The per-state
  /// fingerprints (pg.fps) and any pinned collision states carry the exact
  /// membership semantics from here on.
  void drop_page(Page& pg) {
    pg.raw.reset();
    pg.tier = kTierDropped;
    raw_bytes_.fetch_sub(kPageStates * sizeof(State), std::memory_order_relaxed);
    ++stats_.pages_dropped;
  }

  /// Frees the resident body of a page whose write-behind job is durable.
  void evict_page(Page& pg, MaintainStats& out) {
    sealed_bytes_ -= pg.packed.capacity();
    pg.packed.clear();
    pg.packed.shrink_to_fit();
    pg.tier = kTierSpilled;  // anchors stay resident for random access
    ++stats_.pages_spilled;
    ++out.pages_spilled;
  }

  /// Collects write-behind completions and marks their pages durable. The
  /// tier flip to kTierSpilled happens later, in evict_page, and only at
  /// quiescent points — concurrent readers never observe a transition.
  void harvest_spill() {
    if (!writer_) return;
    harvest_buf_.clear();
    writer_->harvest(harvest_buf_);
    for (const SpillWriter::Completion& c : harvest_buf_) {
      Page* pg = reinterpret_cast<Page*>(static_cast<std::uintptr_t>(c.cookie));
      TT_ASSERT(pg->spill_off == c.offset && pg->spill_len == c.length);
      pg->durable = true;
    }
  }

  // ---- probe-table growth (quiescent/serial only) ------------------------
  // Rehashing needs only the stored fingerprints: probe homes are fp & mask,
  // and every mask this store can reach is below 2^32, so the low-32 window
  // determines the home slot without decoding (or re-reading spilled) states.

  void grow_shard(Shard& sh, std::size_t new_cap) {
    auto bigger = std::make_unique<std::atomic<std::uint64_t>[]>(new_cap);  // value-init
    const std::size_t mask = new_cap - 1;
    for (std::size_t i = 0; i <= sh.mask; ++i) {
      const std::uint64_t v = sh.slots[i].load(std::memory_order_relaxed);
      if (v == 0) continue;
      TT_ASSERT(static_cast<std::uint32_t>(v) != kClaimedField);  // quiescent: no claims
      std::size_t slot = static_cast<std::uint32_t>(v >> 32) & mask;
      while (bigger[slot].load(std::memory_order_relaxed) != 0) slot = (slot + 1) & mask;
      bigger[slot].store(v, std::memory_order_relaxed);
    }
    sh.slots = std::move(bigger);
    sh.mask = mask;
  }

  // ---- Bloom front -------------------------------------------------------
  // Two bits per state derived from mix64(fp) — rebuildable from the slot
  // words alone. Sized toward 16 bits/state (~1.4% false-maybe rate).

  void bloom_add(std::uint32_t fp) {
    if (bloom_mask_ == 0) return;
    const std::uint64_t g = mix64(fp);
    const std::size_t p1 = g & bloom_mask_;
    const std::size_t p2 = (g >> 32) & bloom_mask_;
    bloom_[p1 >> 6].fetch_or(1ull << (p1 & 63), std::memory_order_relaxed);
    bloom_[p2 >> 6].fetch_or(1ull << (p2 & 63), std::memory_order_relaxed);
  }

  [[nodiscard]] bool bloom_maybe(std::uint32_t fp) const {
    const std::uint64_t g = mix64(fp);
    const std::size_t p1 = g & bloom_mask_;
    const std::size_t p2 = (g >> 32) & bloom_mask_;
    return ((bloom_[p1 >> 6].load(std::memory_order_relaxed) >> (p1 & 63)) & 1) != 0 &&
           ((bloom_[p2 >> 6].load(std::memory_order_relaxed) >> (p2 & 63)) & 1) != 0;
  }

  bool maybe_grow_bloom() {
    const std::size_t total = size();
    if (bloom_mask_ != 0 && total * 16 <= bloom_mask_ + 1) return false;
    grow_bloom_for(total + total / 2 + 1024);
    return true;
  }

  void grow_bloom_for(std::size_t states) {
    std::size_t bits = 1 << 14;
    while (bits < states * 16) bits <<= 1;
    if (bloom_mask_ != 0 && bits <= bloom_mask_ + 1) return;
    bloom_ = std::make_unique<std::atomic<std::uint64_t>[]>(bits / 64);  // value-init
    bloom_mask_ = bits - 1;
    for (unsigned s = 0; s <= shard_mask_; ++s) {
      const Shard& sh = shards_[s];
      for (std::size_t i = 0; i <= sh.mask; ++i) {
        const std::uint64_t v = sh.slots[i].load(std::memory_order_relaxed);
        if (v != 0) bloom_add(static_cast<std::uint32_t>(v >> 32));
      }
    }
  }

  std::unique_ptr<Shard[]> shards_;
  unsigned shard_bits_ = 0;
  unsigned shard_mask_ = 0;
  std::uint64_t local_limit_ = 0;
  std::uint64_t max_states_ = ~0ull;
  std::atomic<std::uint64_t> cap_used_{0};

  std::unique_ptr<std::atomic<std::uint64_t>[]> bloom_;
  std::size_t bloom_mask_ = 0;

  std::size_t mem_budget_bytes_ = 0;  ///< 0 = unlimited (never spill)
  std::vector<Page*> spill_queue_;    ///< sealed pages in seal order
  std::size_t enqueue_head_ = 0;      ///< next page to hand to the writer
  std::size_t free_head_ = 0;         ///< next durable page body to free
  std::string spill_dir_;             ///< --spill-dir override (may be empty)
  bool spill_sync_ = false;           ///< bench dial: wait for every spill
  std::vector<SpillWriter::Completion> harvest_buf_;

  bool fp_mode_ = false;
  std::uint64_t fp_mask_ = ~std::uint64_t{0};
  Resolver resolver_;
  mutable std::mutex pinned_mu_;
  mutable std::unordered_map<std::uint32_t, State> pinned_;

  std::atomic<std::size_t> raw_bytes_{0};
  std::atomic<std::size_t> fp_bytes_{0};
  std::size_t sealed_bytes_ = 0;
  StoreStats stats_;
  mutable std::atomic<std::size_t> cas_retries_{0};
  mutable std::atomic<std::size_t> bloom_negatives_{0};
  mutable std::atomic<std::size_t> fp_collisions_{0};
  mutable std::atomic<std::size_t> reexpansions_{0};

  // Joined in the destructor before the arena pages are freed — keep last so
  // any member-destruction order change cannot outlive the pages it reads.
  std::unique_ptr<SpillWriter> writer_;
};

}  // namespace tt
