// Hashing primitives for packed model-checker states.
//
// We hash fixed-width arrays of 64-bit words. The mixer is the splitmix64
// finalizer, which has full avalanche and is the standard choice for hash
// tables keyed by machine words.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace tt {

// Shard-routing window shared by the sharded state stores. Shard selection
// reads the TOP kShardWindowBits of the 64-bit hash, which keeps it disjoint
// from (a) the low bits that pick the open-addressing probe slot and (b) the
// 32-bit fingerprint the lock-free store keeps hot — a shard table can grow
// to 2^56 slots before the windows could overlap. (The old `h >> 40` window
// started colliding with probe bits once a shard passed 2^24 slots, silently
// correlating shard choice with probe position and clustering the table.)
inline constexpr unsigned kShardWindowBits = 8;
inline constexpr unsigned kShardHashShift = 64 - kShardWindowBits;

[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] constexpr std::uint64_t hash_words(std::span<const std::uint64_t> words) noexcept {
  std::uint64_t h = 0x243f6a8885a308d3ULL;  // pi digits, arbitrary nonzero seed
  for (std::uint64_t w : words) h = mix64(h ^ w);
  return h;
}

template <std::size_t W>
[[nodiscard]] constexpr std::uint64_t hash_words(const std::array<std::uint64_t, W>& words) noexcept {
  std::uint64_t h = 0x243f6a8885a308d3ULL;
  for (std::uint64_t w : words) h = mix64(h ^ w);
  return h;
}

}  // namespace tt
