// Arbitrary-precision unsigned integers.
//
// Used by core/scenario_math to evaluate the paper's scenario-count formulas
// (Figure 5) *exactly* — |S_f.n.| for n=5 is ~4.9e46, far beyond u64 — and by
// bdd::Manager::sat_count_exact, whose complement-edge counting rule
// (2^k - c) and current-frame projection (>> bits) add subtraction and
// right-shift to the original +, *, pow, comparison and rendering set.
// Representation: little-endian base-2^32 limbs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tt {

class BigUint {
 public:
  BigUint() = default;
  BigUint(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal ergonomics

  [[nodiscard]] static BigUint from_decimal(const std::string& digits);

  BigUint& operator+=(const BigUint& rhs);
  BigUint& operator*=(const BigUint& rhs);
  /// Subtraction; requires lhs >= rhs (asserted).
  BigUint& operator-=(const BigUint& rhs);
  /// Right shift by any bit count (drops the shifted-out low bits).
  BigUint& operator>>=(unsigned bits);
  [[nodiscard]] friend BigUint operator+(BigUint lhs, const BigUint& rhs) { return lhs += rhs; }
  [[nodiscard]] friend BigUint operator*(BigUint lhs, const BigUint& rhs) { return lhs *= rhs; }
  [[nodiscard]] friend BigUint operator-(BigUint lhs, const BigUint& rhs) { return lhs -= rhs; }
  [[nodiscard]] friend BigUint operator>>(BigUint lhs, unsigned bits) { return lhs >>= bits; }

  [[nodiscard]] static BigUint pow(const BigUint& base, unsigned exponent);
  /// 2^exponent (the counting weight of `exponent` free variables).
  [[nodiscard]] static BigUint pow2(unsigned exponent);

  [[nodiscard]] bool operator==(const BigUint& rhs) const = default;
  [[nodiscard]] std::strong_ordering operator<=>(const BigUint& rhs) const;

  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
  /// True when the value fits in an unsigned 64-bit integer.
  [[nodiscard]] bool fits_u64() const noexcept { return limbs_.size() <= 2; }
  /// Exact u64 value; requires fits_u64() (asserted).
  [[nodiscard]] std::uint64_t to_u64() const;
  /// Approximate double value (inf if > DBL_MAX).
  [[nodiscard]] double to_double() const noexcept;
  /// Exact decimal string.
  [[nodiscard]] std::string to_decimal() const;
  /// "4.9e46"-style rendering with `sig` significant digits.
  [[nodiscard]] std::string to_scientific(int sig = 2) const;
  /// Number of decimal digits (1 for zero).
  [[nodiscard]] int decimal_digits() const;

 private:
  void trim();
  std::vector<std::uint32_t> limbs_;  // little-endian; empty == 0
};

}  // namespace tt
