// Arbitrary-precision unsigned integers.
//
// Used by core/scenario_math to evaluate the paper's scenario-count formulas
// (Figure 5) *exactly* — |S_f.n.| for n=5 is ~4.9e46, far beyond u64. Only the
// operations the formulas need are provided: +, *, pow, comparison, decimal
// and scientific rendering. Representation: little-endian base-2^32 limbs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tt {

class BigUint {
 public:
  BigUint() = default;
  BigUint(std::uint64_t v);  // NOLINT(google-explicit-constructor): numeric literal ergonomics

  [[nodiscard]] static BigUint from_decimal(const std::string& digits);

  BigUint& operator+=(const BigUint& rhs);
  BigUint& operator*=(const BigUint& rhs);
  [[nodiscard]] friend BigUint operator+(BigUint lhs, const BigUint& rhs) { return lhs += rhs; }
  [[nodiscard]] friend BigUint operator*(BigUint lhs, const BigUint& rhs) { return lhs *= rhs; }

  [[nodiscard]] static BigUint pow(const BigUint& base, unsigned exponent);

  [[nodiscard]] bool operator==(const BigUint& rhs) const = default;
  [[nodiscard]] std::strong_ordering operator<=>(const BigUint& rhs) const;

  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
  /// Approximate double value (inf if > DBL_MAX).
  [[nodiscard]] double to_double() const noexcept;
  /// Exact decimal string.
  [[nodiscard]] std::string to_decimal() const;
  /// "4.9e46"-style rendering with `sig` significant digits.
  [[nodiscard]] std::string to_scientific(int sig = 2) const;
  /// Number of decimal digits (1 for zero).
  [[nodiscard]] int decimal_digits() const;

 private:
  void trim();
  std::vector<std::uint32_t> limbs_;  // little-endian; empty == 0
};

}  // namespace tt
