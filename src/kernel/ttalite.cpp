#include "kernel/ttalite.hpp"

#include "support/assert.hpp"

namespace tt::kernel {

TtaLite::TtaLite(const TtaLiteConfig& cfg) : cfg_(cfg) {
  TT_REQUIRE(cfg_.n >= 2 && cfg_.n <= 6, "TTA-lite supports 2..6 nodes");
  TT_REQUIRE(cfg_.fault_degree >= 1 && cfg_.fault_degree <= 3, "lite fault degree is 1..3");
  build();
}

void TtaLite::build() {
  const int n = cfg_.n;
  const int counter_domain = 3 * n + 2;  // covers LT_TO max = 3n - 1 and the window
  auto& e = system_.exprs();

  for (int i = 0; i < n; ++i) {
    state_.push_back(system_.add_var("state" + std::to_string(i), 4, kInit));
    counter_.push_back(system_.add_var("counter" + std::to_string(i), counter_domain, 1));
    pos_.push_back(system_.add_var("pos" + std::to_string(i), n, 0));
    out_.push_back(system_.add_var("out" + std::to_string(i), 3, kOutQuiet));
  }

  // Reception helpers (combinational bus, pre-state `out` variables): node i
  // sees a usable frame from sender j iff j transmitted alone in the
  // previous slot; simultaneous transmitters garble the medium.
  auto transmitting = [&](int j) { return e.lnot(e.eq_const(e.var(out_[j]), kOutQuiet)); };
  auto alone = [&](int j) {
    std::vector<ExprId> terms;
    for (int k = 0; k < n; ++k) {
      terms.push_back(k == j ? transmitting(k)
                             : e.eq_const(e.var(out_[k]), kOutQuiet));
    }
    return e.all(terms);
  };

  for (int i = 0; i < n; ++i) {
    const int g = system_.add_group("node" + std::to_string(i), /*else_stutter=*/false);
    const ExprId st = e.var(state_[i]);
    const ExprId ct = e.var(counter_[i]);
    const ExprId ct_plus1 = e.add_mod(ct, 1, counter_domain);
    const ExprId one = e.constant(1);
    const ExprId zero = e.constant(0);

    const bool faulty = (i == cfg_.faulty_node);
    if (faulty) {
      // The preliminary experiment's reduced fault dial: a faulty node may
      // stay silent, and with higher degrees also emit cs-/i-frames at will.
      // All its private variables are pinned to 0 (the feedback idea applied
      // at build time: a faulty node's bookkeeping is pure state clutter).
      const ExprId always = e.ge_const(ct, 0);
      auto faulty_cmd = [&](int out_value) {
        system_.add_command(g, always,
                            {{out_[i], e.constant(out_value)},
                             {state_[i], zero},
                             {counter_[i], zero},
                             {pos_[i], zero}});
      };
      faulty_cmd(kOutQuiet);
      if (cfg_.fault_degree >= 2) faulty_cmd(kOutCs);
      if (cfg_.fault_degree >= 3) faulty_cmd(kOutI);
      continue;
    }

    const ExprId in_init = e.eq_const(st, kInit);
    const ExprId in_listen = e.eq_const(st, kListen);
    const ExprId in_coldstart = e.eq_const(st, kColdstart);
    const ExprId in_active = e.eq_const(st, kActive);

    // Any usable frame / any usable foreign frame on the bus last slot.
    std::vector<ExprId> frame_terms;
    std::vector<ExprId> foreign_terms;
    for (int j = 0; j < n; ++j) {
      frame_terms.push_back(alone(j));
      if (j != i) foreign_terms.push_back(alone(j));
    }
    const ExprId any_frame = e.any(frame_terms);
    const ExprId any_foreign = e.any(foreign_terms);

    // Synchronized position implied by the received frame: the sender
    // transmitted in its own slot during the previous step, so the current
    // slot is (sender + 1) mod n. Encoded as a cascade of ites over senders.
    auto sync_pos_from = [&](bool exclude_self) {
      ExprId acc = zero;  // unreachable default
      for (int j = n - 1; j >= 0; --j) {
        if (exclude_self && j == i) continue;
        acc = e.ite(alone(j), e.constant((j + 1) % n), acc);
      }
      return acc;
    };
    const ExprId sync_pos_any = sync_pos_from(false);
    const ExprId sync_pos_foreign = sync_pos_from(true);

    auto i_frame_out = [&](ExprId new_pos) {
      return e.ite(e.eq_const(new_pos, i), e.constant(kOutI), e.constant(kOutQuiet));
    };

    // INIT: wake up now, or let time advance while inside the window.
    system_.add_command(g, in_init,
                        {{state_[i], e.constant(kListen)}, {counter_[i], one},
                         {out_[i], zero}});
    system_.add_command(g, e.land(in_init, e.lt_const(ct, cfg_.init_window)),
                        {{counter_[i], ct_plus1}, {out_[i], zero}});

    // LISTEN: the original algorithm has no big-bang — the first usable
    // frame (cs or i, it always names the sender's slot) synchronizes
    // directly. Garbled overlaps are not usable.
    system_.add_command(g, e.land(in_listen, any_frame),
                        {{state_[i], e.constant(kActive)},
                         {pos_[i], sync_pos_any},
                         {counter_[i], zero},
                         {out_[i], i_frame_out(sync_pos_any)}});
    system_.add_command(
        g, e.land(in_listen, e.land(e.lnot(any_frame), e.ge_const(ct, 2 * n + i))),
        {{state_[i], e.constant(kColdstart)}, {counter_[i], one},
         {out_[i], e.constant(kOutCs)}});
    system_.add_command(
        g, e.land(in_listen, e.land(e.lnot(any_frame), e.lt_const(ct, 2 * n + i))),
        {{counter_[i], ct_plus1}, {out_[i], zero}});

    // COLDSTART: synchronize on a foreign frame, retransmit on timeout.
    system_.add_command(g, e.land(in_coldstart, any_foreign),
                        {{state_[i], e.constant(kActive)},
                         {pos_[i], sync_pos_foreign},
                         {counter_[i], zero},
                         {out_[i], i_frame_out(sync_pos_foreign)}});
    system_.add_command(
        g, e.land(in_coldstart, e.land(e.lnot(any_foreign), e.ge_const(ct, n + i))),
        {{counter_[i], one}, {out_[i], e.constant(kOutCs)}});
    system_.add_command(
        g, e.land(in_coldstart, e.land(e.lnot(any_foreign), e.lt_const(ct, n + i))),
        {{counter_[i], ct_plus1}, {out_[i], zero}});

    // ACTIVE: run the TDMA schedule.
    const ExprId pos_next = e.add_mod(e.var(pos_[i]), 1, n);
    system_.add_command(
        g, in_active,
        {{pos_[i], pos_next}, {out_[i], i_frame_out(pos_next)}});
  }
}

bool TtaLite::safety(const std::vector<int>& v) const {
  int agreed = -1;
  for (int i = 0; i < cfg_.n; ++i) {
    if (i == cfg_.faulty_node) continue;
    if (v[static_cast<std::size_t>(state_[i])] != kActive) continue;
    const int p = v[static_cast<std::size_t>(pos_[i])];
    if (agreed < 0) {
      agreed = p;
    } else if (p != agreed) {
      return false;
    }
  }
  return true;
}

bool TtaLite::all_correct_active(const std::vector<int>& v) const {
  for (int i = 0; i < cfg_.n; ++i) {
    if (i == cfg_.faulty_node) continue;
    if (v[static_cast<std::size_t>(state_[i])] != kActive) return false;
  }
  return true;
}

ExprId TtaLite::safety_expr() {
  auto& e = system_.exprs();
  std::vector<ExprId> terms;
  for (int i = 0; i < cfg_.n; ++i) {
    for (int j = i + 1; j < cfg_.n; ++j) {
      if (i == cfg_.faulty_node || j == cfg_.faulty_node) continue;
      const ExprId both_active = e.land(e.eq_const(e.var(state_[i]), kActive),
                                        e.eq_const(e.var(state_[j]), kActive));
      const ExprId agree = e.eq(e.var(pos_[i]), e.var(pos_[j]));
      terms.push_back(e.lor(e.lnot(both_active), agree));
    }
  }
  return e.all(terms);
}

}  // namespace tt::kernel
