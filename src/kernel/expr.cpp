#include "kernel/expr.hpp"

namespace tt::kernel {

ExprId ExprPool::push(ExprNode n) {
  nodes_.push_back(n);
  return static_cast<ExprId>(nodes_.size() - 1);
}

ExprId ExprPool::constant(int value) {
  ExprNode n;
  n.op = Op::kConst;
  n.k = value;
  return push(n);
}

ExprId ExprPool::var(VarId v) {
  TT_REQUIRE(v >= 0, "invalid variable id");
  ExprNode n;
  n.op = Op::kVar;
  n.var = v;
  return push(n);
}

ExprId ExprPool::add_mod(ExprId a, int k, int m) {
  TT_REQUIRE(m >= 1, "modulus must be positive");
  ExprNode n;
  n.op = Op::kAddMod;
  n.a = a;
  n.k = k;
  n.m = m;
  return push(n);
}

ExprId ExprPool::eq_const(ExprId a, int k) {
  ExprNode n;
  n.op = Op::kEqC;
  n.a = a;
  n.k = k;
  return push(n);
}

ExprId ExprPool::lt_const(ExprId a, int k) {
  ExprNode n;
  n.op = Op::kLtC;
  n.a = a;
  n.k = k;
  return push(n);
}

ExprId ExprPool::ge_const(ExprId a, int k) {
  ExprNode n;
  n.op = Op::kGeC;
  n.a = a;
  n.k = k;
  return push(n);
}

ExprId ExprPool::eq(ExprId a, ExprId b) {
  ExprNode n;
  n.op = Op::kEqV;
  n.a = a;
  n.b = b;
  return push(n);
}

ExprId ExprPool::land(ExprId a, ExprId b) {
  ExprNode n;
  n.op = Op::kAnd;
  n.a = a;
  n.b = b;
  return push(n);
}

ExprId ExprPool::lor(ExprId a, ExprId b) {
  ExprNode n;
  n.op = Op::kOr;
  n.a = a;
  n.b = b;
  return push(n);
}

ExprId ExprPool::lnot(ExprId a) {
  ExprNode n;
  n.op = Op::kNot;
  n.a = a;
  return push(n);
}

ExprId ExprPool::ite(ExprId cond, ExprId then_e, ExprId else_e) {
  ExprNode n;
  n.op = Op::kIte;
  n.c = cond;
  n.a = then_e;
  n.b = else_e;
  return push(n);
}

ExprId ExprPool::all(const std::vector<ExprId>& xs) {
  if (xs.empty()) return eq_const(constant(0), 0);  // true
  ExprId acc = xs[0];
  for (std::size_t i = 1; i < xs.size(); ++i) acc = land(acc, xs[i]);
  return acc;
}

ExprId ExprPool::any(const std::vector<ExprId>& xs) {
  if (xs.empty()) return eq_const(constant(0), 1);  // false
  ExprId acc = xs[0];
  for (std::size_t i = 1; i < xs.size(); ++i) acc = lor(acc, xs[i]);
  return acc;
}

int ExprPool::eval(ExprId id, const std::vector<int>& valuation) const {
  const ExprNode& n = nodes_[id];
  switch (n.op) {
    case Op::kConst: return n.k;
    case Op::kVar: return valuation[static_cast<std::size_t>(n.var)];
    case Op::kAddMod: {
      const int v = eval(n.a, valuation) + n.k;
      return ((v % n.m) + n.m) % n.m;
    }
    case Op::kEqC: return eval(n.a, valuation) == n.k ? 1 : 0;
    case Op::kLtC: return eval(n.a, valuation) < n.k ? 1 : 0;
    case Op::kGeC: return eval(n.a, valuation) >= n.k ? 1 : 0;
    case Op::kEqV: return eval(n.a, valuation) == eval(n.b, valuation) ? 1 : 0;
    case Op::kAnd: return (eval(n.a, valuation) != 0 && eval(n.b, valuation) != 0) ? 1 : 0;
    case Op::kOr: return (eval(n.a, valuation) != 0 || eval(n.b, valuation) != 0) ? 1 : 0;
    case Op::kNot: return eval(n.a, valuation) == 0 ? 1 : 0;
    case Op::kIte: return eval(n.c, valuation) != 0 ? eval(n.a, valuation) : eval(n.b, valuation);
  }
  TT_ASSERT(false && "unreachable");
  return 0;
}

}  // namespace tt::kernel
