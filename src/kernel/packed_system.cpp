#include "kernel/packed_system.hpp"

#include "support/assert.hpp"
#include "support/bitpack.hpp"

namespace tt::kernel {

PackedSystem::PackedSystem(const System& system) : system_(system) {
  for (const VarDecl& d : system_.vars()) {
    const int w = bits_for(static_cast<std::uint64_t>(d.domain));
    width_.push_back(w);
    bits_total_ += w;
  }
  TT_REQUIRE(bits_total_ <= static_cast<int>(kWords * 64),
             "system state exceeds packed capacity");
}

PackedSystem::State PackedSystem::pack(const std::vector<int>& valuation) const {
  State s{};
  BitWriter w(s.data(), kWords);
  for (std::size_t i = 0; i < valuation.size(); ++i) {
    w.put(static_cast<std::uint64_t>(valuation[i]), width_[i]);
  }
  return s;
}

std::vector<int> PackedSystem::unpack(const State& s) const {
  std::vector<int> v(width_.size());
  BitReader r(s.data(), kWords);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<int>(r.get(width_[i]));
  }
  return v;
}

void PackedSystem::initial_states(Emit emit) const {
  system_.initial_valuations([&](const std::vector<int>& v) { emit(pack(v)); });
}

void PackedSystem::successors(const State& s, Emit emit) const {
  const std::vector<int> current = unpack(s);
  system_.successor_valuations(current, [&](const std::vector<int>& v) { emit(pack(v)); });
}

}  // namespace tt::kernel
