// TTA-lite: the *original* node-only startup algorithm for the bus topology
// ([12] in the paper), expressed in the mini-SAL IR.
//
// This reproduces the paper's §3 preliminary experiment: a single broadcast
// bus (no guardians, no interlinks, no big-bang — receivers synchronize on
// the first cs-frame directly), with only a few kinds of node faults. The
// paper reports 41,322 reachable states for the largest preliminary model
// and uses it to compare explicit-state against symbolic model checking
// (30 s vs 0.38 s for 4 nodes); bench_prelim_engines re-runs that comparison
// across our three engines (explicit / BDD / SAT-BMC) on this very model.
//
// Model shape: per node, variables {state, counter, pos, out}. The bus is
// *combinational*: a node's reception at step t is an expression over every
// node's `out` variable from step t-1 — exactly one transmitter means a
// frame (whose time equals the transmitter's identity), two or more
// overlap into a garbled signal (physical collision on a bus, §2.3). This
// gives the same one-slot transmit-to-react latency as the tta:: star model.
#pragma once

#include <vector>

#include "kernel/system.hpp"

namespace tt::kernel {

struct TtaLiteConfig {
  int n = 4;
  int init_window = 3;  ///< wake-up window in slots
  int faulty_node = -1;
  /// 1 = fail-silent, 2 = may also send cs-frames, 3 = may also send
  /// i-frames (the preliminary experiment's "few kinds of faults").
  int fault_degree = 1;
};

class TtaLite {
 public:
  explicit TtaLite(const TtaLiteConfig& cfg);

  [[nodiscard]] const System& system() const noexcept { return system_; }
  [[nodiscard]] System& system() noexcept { return system_; }
  [[nodiscard]] const TtaLiteConfig& config() const noexcept { return cfg_; }

  // Variable accessors (indices into a valuation).
  [[nodiscard]] VarId state_var(int i) const { return state_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] VarId counter_var(int i) const { return counter_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] VarId pos_var(int i) const { return pos_[static_cast<std::size_t>(i)]; }
  [[nodiscard]] VarId out_var(int i) const { return out_[static_cast<std::size_t>(i)]; }

  // Node automaton states.
  static constexpr int kInit = 0;
  static constexpr int kListen = 1;
  static constexpr int kColdstart = 2;
  static constexpr int kActive = 3;
  // Transmission kinds (the `out` variables).
  static constexpr int kOutQuiet = 0;
  static constexpr int kOutCs = 1;
  static constexpr int kOutI = 2;

  /// Lemma 1 on valuations: correct active nodes agree on the position.
  [[nodiscard]] bool safety(const std::vector<int>& valuation) const;
  /// Lemma 2 goal: all correct nodes active.
  [[nodiscard]] bool all_correct_active(const std::vector<int>& valuation) const;
  /// Lemma 1 as an IR expression (for the symbolic and SAT engines).
  [[nodiscard]] ExprId safety_expr();

 private:
  void build();

  TtaLiteConfig cfg_;
  System system_;
  std::vector<VarId> state_, counter_, pos_, out_;
};

}  // namespace tt::kernel
