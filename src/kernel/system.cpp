#include "kernel/system.hpp"

#include <functional>

#include "support/assert.hpp"
#include "support/bitpack.hpp"

namespace tt::kernel {

VarId System::add_var(std::string name, int domain, int init) {
  TT_REQUIRE(domain >= 1 && domain <= 4096, "variable domain out of range");
  TT_REQUIRE(init >= 0 && init < domain, "initial value outside domain");
  VarDecl d;
  d.name = std::move(name);
  d.domain = domain;
  d.init = init;
  vars_.push_back(std::move(d));
  return static_cast<VarId>(vars_.size() - 1);
}

VarId System::add_var_nondet(std::string name, int domain) {
  TT_REQUIRE(domain >= 1 && domain <= 4096, "variable domain out of range");
  VarDecl d;
  d.name = std::move(name);
  d.domain = domain;
  d.init_any = true;
  vars_.push_back(std::move(d));
  return static_cast<VarId>(vars_.size() - 1);
}

int System::add_group(std::string name, bool else_stutter) {
  ChoiceGroup g;
  g.name = std::move(name);
  g.else_stutter = else_stutter;
  groups_.push_back(std::move(g));
  return static_cast<int>(groups_.size() - 1);
}

void System::add_command(int group, ExprId guard, std::vector<Assignment> assigns) {
  TT_REQUIRE(group >= 0 && group < static_cast<int>(groups_.size()), "unknown group");
  for (const Assignment& a : assigns) {
    TT_REQUIRE(a.var >= 0 && a.var < static_cast<VarId>(vars_.size()), "unknown variable");
    VarDecl& d = vars_[static_cast<std::size_t>(a.var)];
    if (d.group == -1) {
      d.group = group;
    } else {
      TT_REQUIRE(d.group == group, "variable assigned from two choice groups: " + d.name);
    }
  }
  Command c;
  c.guard = guard;
  c.assigns = std::move(assigns);
  groups_[static_cast<std::size_t>(group)].commands.push_back(std::move(c));
}

void System::initial_valuations(
    const std::function<void(const std::vector<int>&)>& emit) const {
  std::vector<int> v(vars_.size(), 0);
  for (std::size_t i = 0; i < vars_.size(); ++i) v[i] = vars_[i].init_any ? 0 : vars_[i].init;

  // Odometer over the nondeterministically initialized variables.
  std::vector<std::size_t> free_vars;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].init_any) free_vars.push_back(i);
  }
  while (true) {
    emit(v);
    std::size_t k = 0;
    while (k < free_vars.size()) {
      if (++v[free_vars[k]] < vars_[free_vars[k]].domain) break;
      v[free_vars[k]] = 0;
      ++k;
    }
    if (k == free_vars.size()) break;
  }
}

void System::successor_valuations(
    const std::vector<int>& current,
    const std::function<void(const std::vector<int>&)>& emit) const {
  TT_ASSERT(current.size() == vars_.size());

  // Per group: the indices of enabled commands (or kStutter).
  constexpr int kStutter = -1;
  std::vector<std::vector<int>> enabled(groups_.size());
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    const ChoiceGroup& grp = groups_[g];
    for (std::size_t c = 0; c < grp.commands.size(); ++c) {
      if (exprs_.eval(grp.commands[c].guard, current) != 0) {
        enabled[g].push_back(static_cast<int>(c));
      }
    }
    if (enabled[g].empty()) {
      if (!grp.else_stutter) return;  // deadlock: no successors
      enabled[g].push_back(kStutter);
    }
  }

  std::vector<std::size_t> choice(groups_.size(), 0);
  std::vector<int> next;
  while (true) {
    next = current;
    for (std::size_t g = 0; g < groups_.size(); ++g) {
      const int cmd = enabled[g][choice[g]];
      if (cmd == kStutter) continue;
      for (const Assignment& a : groups_[g].commands[static_cast<std::size_t>(cmd)].assigns) {
        const int value = exprs_.eval(a.value, current);
        const VarDecl& d = vars_[static_cast<std::size_t>(a.var)];
        TT_ASSERT(value >= 0 && value < d.domain);
        next[static_cast<std::size_t>(a.var)] = value;
      }
    }
    emit(next);
    std::size_t k = 0;
    while (k < groups_.size()) {
      if (++choice[k] < enabled[k].size()) break;
      choice[k] = 0;
      ++k;
    }
    if (k == groups_.size()) break;
  }
}

int System::state_bits() const {
  int bits = 0;
  for (const VarDecl& d : vars_) bits += bits_for(static_cast<std::uint64_t>(d.domain));
  return bits;
}

}  // namespace tt::kernel
