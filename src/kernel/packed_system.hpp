// Adapter exposing a kernel::System as an mc::TransitionSystem over packed
// 256-bit states — the explicit-state engine of the mini-SAL tool bus.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "kernel/system.hpp"
#include "support/function_ref.hpp"

namespace tt::kernel {

class PackedSystem {
 public:
  static constexpr std::size_t kWords = 4;
  using State = std::array<std::uint64_t, kWords>;
  using Emit = FunctionRef<void(const State&)>;

  explicit PackedSystem(const System& system);

  void initial_states(Emit emit) const;
  void successors(const State& s, Emit emit) const;

  [[nodiscard]] State pack(const std::vector<int>& valuation) const;
  [[nodiscard]] std::vector<int> unpack(const State& s) const;

  [[nodiscard]] const System& system() const noexcept { return system_; }
  [[nodiscard]] int state_bits() const noexcept { return bits_total_; }

 private:
  const System& system_;
  std::vector<int> width_;  ///< bits per variable
  int bits_total_ = 0;
};

}  // namespace tt::kernel
