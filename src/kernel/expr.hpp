// Expression DAG of the guarded-command IR ("mini-SAL", DESIGN.md §1).
//
// Expressions are interned in a pool and referenced by dense ids. The
// operator set is deliberately small — comparisons, boolean connectives,
// if-then-else, and modular increment — because every engine (explicit
// interpreter, SAT-based BMC, BDD-based symbolic reachability) must give it
// semantics. Integer-valued expressions are evaluated against a valuation of
// the system's finite-domain variables; symbolic engines expand them through
// the "expr == value" recursion (see bmc/encoder and bdd/symbolic).
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace tt::kernel {

using VarId = int;
using ExprId = int;

enum class Op : std::uint8_t {
  kConst,   ///< integer literal
  kVar,     ///< current-state variable value
  kAddMod,  ///< (a + k) mod m   — modular increment by a constant
  kEqC,     ///< a == k          (boolean)
  kLtC,     ///< a <  k          (boolean)
  kGeC,     ///< a >= k          (boolean)
  kEqV,     ///< a == b          (boolean, both integer expressions)
  kAnd,     ///< a && b
  kOr,      ///< a || b
  kNot,     ///< !a
  kIte,     ///< c ? a : b       (integer or boolean alternatives)
};

struct ExprNode {
  Op op = Op::kConst;
  ExprId a = -1;
  ExprId b = -1;
  ExprId c = -1;  ///< condition of kIte
  int k = 0;      ///< constant operand / modulus partner (kAddMod stores k and m)
  int m = 0;
  VarId var = -1;
};

/// Interning pool for expression nodes; owned by a kernel::System.
class ExprPool {
 public:
  [[nodiscard]] ExprId constant(int value);
  [[nodiscard]] ExprId var(VarId v);
  [[nodiscard]] ExprId add_mod(ExprId a, int k, int m);
  [[nodiscard]] ExprId eq_const(ExprId a, int k);
  [[nodiscard]] ExprId lt_const(ExprId a, int k);
  [[nodiscard]] ExprId ge_const(ExprId a, int k);
  [[nodiscard]] ExprId eq(ExprId a, ExprId b);
  [[nodiscard]] ExprId land(ExprId a, ExprId b);
  [[nodiscard]] ExprId lor(ExprId a, ExprId b);
  [[nodiscard]] ExprId lnot(ExprId a);
  [[nodiscard]] ExprId ite(ExprId cond, ExprId then_e, ExprId else_e);

  /// Variadic conjunction/disjunction helpers (empty list = true / false).
  [[nodiscard]] ExprId all(const std::vector<ExprId>& xs);
  [[nodiscard]] ExprId any(const std::vector<ExprId>& xs);

  [[nodiscard]] const ExprNode& node(ExprId id) const { return nodes_[id]; }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

  /// Evaluates `id` under `valuation` (one int per variable).
  [[nodiscard]] int eval(ExprId id, const std::vector<int>& valuation) const;

 private:
  ExprId push(ExprNode n);
  std::vector<ExprNode> nodes_;
};

}  // namespace tt::kernel
