// The guarded-command transition system of the mini-SAL IR.
//
// A System is a set of finite-domain variables plus *choice groups* (the
// analogue of SAL modules in a synchronous composition). Each group owns a
// disjoint set of variables and contributes a set of guarded commands. One
// global step executes every group simultaneously: each group
// nondeterministically selects one of its enabled commands (all guards read
// the pre-state), and the selected commands' assignments are applied
// together. Variables not assigned by the selected command keep their value.
// A group with no enabled command either stutters (if built with
// `else_stutter`) or deadlocks the system — matching SAL semantics.
//
// This IR is consumed by three engines, mirroring the SAL tool bus:
//   * kernel::PackedSystem      — explicit-state (mc/ engines)
//   * bmc::Encoder + sat::Solver — SAT-based bounded model checking
//   * bdd::SymbolicReachability — BDD-based symbolic model checking
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "kernel/expr.hpp"

namespace tt::kernel {

struct VarDecl {
  std::string name;
  int domain = 2;      ///< values 0 .. domain-1
  int init = 0;        ///< initial value (ignored if init_any)
  bool init_any = false;  ///< nondeterministic initial value
  int group = -1;      ///< owning choice group (set when first assigned)
};

struct Assignment {
  VarId var = -1;
  ExprId value = -1;
};

struct Command {
  ExprId guard = -1;
  std::vector<Assignment> assigns;
};

struct ChoiceGroup {
  std::string name;
  bool else_stutter = true;
  std::vector<Command> commands;
};

class System {
 public:
  [[nodiscard]] VarId add_var(std::string name, int domain, int init);
  [[nodiscard]] VarId add_var_nondet(std::string name, int domain);

  [[nodiscard]] int add_group(std::string name, bool else_stutter = true);

  /// Adds a guarded command to `group`. Every assigned variable becomes
  /// owned by that group; assigning it from another group is an error.
  void add_command(int group, ExprId guard, std::vector<Assignment> assigns);

  [[nodiscard]] ExprPool& exprs() noexcept { return exprs_; }
  [[nodiscard]] const ExprPool& exprs() const noexcept { return exprs_; }

  [[nodiscard]] const std::vector<VarDecl>& vars() const noexcept { return vars_; }
  [[nodiscard]] const std::vector<ChoiceGroup>& groups() const noexcept { return groups_; }

  /// Enumerates initial valuations (cartesian product over init_any vars).
  void initial_valuations(const std::function<void(const std::vector<int>&)>& emit) const;

  /// Enumerates successor valuations of `current`.
  void successor_valuations(const std::vector<int>& current,
                            const std::function<void(const std::vector<int>&)>& emit) const;

  /// Total state bits of a packed valuation.
  [[nodiscard]] int state_bits() const;

 private:
  ExprPool exprs_;
  std::vector<VarDecl> vars_;
  std::vector<ChoiceGroup> groups_;
};

}  // namespace tt::kernel
