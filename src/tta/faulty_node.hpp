// Exhaustive fault simulation of a faulty node (paper §3.2.1, Fig. 3).
//
// At every slot a faulty node may emit, independently per channel, any output
// admitted by the fault degree δ:
//
//   rank 1  quiet            rank 4  noise
//   rank 2  cs-frame (good)  rank 5  cs-frame (bad: masquerade as any other id)
//   rank 3  i-frame  (good)  rank 6  i-frame  (bad: ill-formed)
//
// A channel pair (a, b) is admitted iff max(rank a, rank b) <= δ — exactly
// the 6x6 matrix of Fig. 3. "Good" i-frames may claim any TDMA position
// (the node is free to lie plausibly); "bad" cs-frames may claim any other
// node's identity. Degree 6 therefore yields (2n+3)^2 choices per slot:
// this is what the paper calls *exhaustive fault simulation*.
//
// The *feedback* optimization (§3.2.1): once guardian h has locked the node's
// port, the node's output on channel h can no longer influence anything, so
// the model collapses it to quiet and records the lock in the state
// (kFaultyLock0/1/01). This prunes clutter states without removing behaviour.
#pragma once

#include <utility>
#include <vector>

#include "tta/config.hpp"
#include "tta/node.hpp"
#include "tta/types.hpp"

namespace tt::tta {

/// Precomputed per-step output alternatives of the faulty node, one list per
/// lock status (bit 0: locked by hub 0, bit 1: locked by hub 1).
class FaultyNodeOutputs {
 public:
  FaultyNodeOutputs() = default;
  /// With `collapse_classes` (symmetry reduction, both guardians correct),
  /// per-channel options are deduplicated to one representative per
  /// correct-guardian observable class (hub_observable_class): every
  /// provably-faulty emission is locked by scan_locks and relayed as noise
  /// identically in every hub state, so class members produce bit-identical
  /// successors — the (2n+3)^2 Fig. 3 matrix shrinks to at most 4x4 without
  /// removing behaviour. Unsound under a faulty hub (it forwards selected
  /// frames verbatim), so the Cluster never enables it there.
  FaultyNodeOutputs(const ClusterConfig& cfg,  // NOLINT: built from config only
                    bool collapse_classes = false);

  /// All admitted (channel0, channel1) output pairs for the given lock bits.
  /// Without feedback, lock bits are ignored (the full list is returned),
  /// reproducing the paper's feedback-off state blow-up.
  [[nodiscard]] const std::vector<std::pair<Frame, Frame>>& pairs(std::uint8_t locks) const {
    return pairs_[feedback_ ? (locks & 3u) : 0u];
  }

  /// Per-channel frames admitted at degree δ for a node `id` (test hook;
  /// also documents the Fig. 3 ranking).
  [[nodiscard]] static std::vector<Frame> channel_options(int n, int id, int degree);

  /// Fig. 3 rank of a single frame as emitted by node `id`.
  [[nodiscard]] static FaultRank rank_of(const Frame& f, int id);

  /// How a *correct* guardian can possibly distinguish a frame transmitted
  /// by node `id` (the collapse classes):
  ///   0 = quiet, 1 = well-formed cs carrying the own id, 2 = well-formed
  ///   i-frame claiming the own slot, 3 = provably faulty (noise, ill-formed
  ///   frames, masquerading cs, foreign-slot i) — locked by scan_locks and
  ///   relayed as noise wherever a port is open.
  [[nodiscard]] static int hub_observable_class(const Frame& f, int id) noexcept {
    if (f.is_quiet()) return 0;
    if (f.is_cs() && f.time == id) return 1;
    if (f.is_i() && f.time == id) return 2;
    return 3;
  }

 private:
  std::vector<std::pair<Frame, Frame>> pairs_[4];
  bool feedback_ = true;
};

/// Successor variables of the faulty node: with feedback the state records
/// the current lock status; without feedback it stays kFaulty forever.
[[nodiscard]] NodeVars faulty_node_vars(const ClusterConfig& cfg, std::uint8_t locks);

}  // namespace tt::tta
