#include "tta/hub.hpp"

#include "support/assert.hpp"

namespace tt::tta {

namespace {

/// Ports observed for fault detection: everything provably faulty locks
/// ("if a central guardian detects a faulty node it will block all further
/// attempts of this node to access the communication channel", §2.3.2).
/// Provable means:
///  * noise or an ill-formed frame (correct senders always produce valid
///    CRCs),
///  * a well-formed cs-frame carrying a foreign identity (masquerade),
///  * an i-frame claiming a foreign slot: a node transmits i-frames only in
///    its own slot, so the time field must equal the sender's identity just
///    like in a cs-frame. Without this rule a faulty node could pair a
///    well-formed i-frame with every correct cs-frame forever and starve the
///    startup (the guardian would relay noise each time but never exclude
///    the attacker).
std::uint8_t scan_locks(const ClusterConfig& cfg, const HubVars& v,
                        const Frame node_out[kMaxNodes]) {
  std::uint8_t locks = 0;
  for (int i = 0; i < cfg.n; ++i) {
    if ((v.locks >> i) & 1u) continue;
    const Frame& f = node_out[i];
    if (f.is_quiet()) continue;
    const bool provably_faulty = f.kind == MsgKind::kNoise || !f.ok || f.time != i;
    if (provably_faulty) locks = static_cast<std::uint8_t>(locks | (1u << i));
  }
  return locks;
}

/// Ports whose transmissions the hub arbitrates this step (startup /
/// protected states). In PROTECTED, port i is only enabled in the slot
/// matching node i's cold-start timeout pattern: "every node is forced to
/// stay to its timeout pattern" (§2.3.2).
///
/// Alignment: the SILENCE and tentative rounds last the *remaining* round
/// (n-1 slots) after the cs/collision slot, so PROTECTED's offsets 0..n-1
/// line up with the cold-start clocks that were reset by that event (the
/// senders at counter 1, big-bang receivers at counter 2 one slot later).
/// Node i's retransmission then arrives exactly at offset CS_TO[i] - n = i,
/// so port i is open iff counter - 1 == i. A faulty node is confined to its
/// own slot, where a cleanly relayed cs cannot collide — this is what
/// terminates adversarial collision loops (Lemma 2 depends on it; see
/// DESIGN.md §4).
int eligible_ports(const ClusterConfig& cfg, const HubVars& v, const Frame node_out[kMaxNodes],
                   int out[kMaxNodes]) {
  int count = 0;
  for (int i = 0; i < cfg.n; ++i) {
    if ((v.locks >> i) & 1u) continue;
    if (node_out[i].is_quiet()) continue;
    if (v.state == HubState::kProtected && v.counter - 1 != i) continue;
    out[count++] = i;
  }
  return count;
}

bool ports_open(HubState s) noexcept {
  return s == HubState::kStartup || s == HubState::kProtected || s == HubState::kTentative ||
         s == HubState::kActive;
}

void canonicalize(const ClusterConfig& cfg, HubVars& v) {
  v.out = v.out.canonical();
  for (auto& f : v.out_per_port) f = f.canonical();
  switch (v.state) {
    case HubState::kStartup:
    case HubState::kActive:
      v.counter = 0;
      break;
    default:
      break;
  }
  if (v.state != HubState::kTentative && v.state != HubState::kActive) v.slot_pos = 0;
  (void)cfg;
}

}  // namespace

int hub_relay_option_count(const ClusterConfig& cfg, int h, const HubVars& v,
                           const Frame node_out[kMaxNodes]) {
  if (cfg.hub_is_faulty(h)) {
    // Options: no source (0), interlink source (1), one per active port.
    int active = 0;
    for (int i = 0; i < cfg.n; ++i) {
      if (!node_out[i].is_quiet()) ++active;
    }
    return active + 2;
  }
  switch (v.state) {
    case HubState::kStartup:
    case HubState::kProtected: {
      int ports[kMaxNodes];
      const int count = eligible_ports(cfg, v, node_out, ports);
      return count > 0 ? count : 1;
    }
    default:
      return 1;
  }
}

RelayDecision hub_relay(const ClusterConfig& cfg, int h, const HubVars& v,
                        const Frame node_out[kMaxNodes], int option) {
  TT_ASSERT(!cfg.hub_is_faulty(h));
  RelayDecision d;
  switch (v.state) {
    case HubState::kInit:
    case HubState::kListen:
    case HubState::kSilence:
    case HubState::kFaulty:
      return d;  // channel blocked: deliver quiet, mirror quiet

    case HubState::kStartup:
    case HubState::kProtected: {
      d.new_locks = scan_locks(cfg, v, node_out);
      int ports[kMaxNodes];
      const int count = eligible_ports(cfg, v, node_out, ports);
      if (count == 0) return d;
      TT_ASSERT(option >= 0 && option < count);
      const int sel = ports[option];
      d.selected_port = sel;
      const Frame& f = node_out[sel];
      // Semantic analysis (paper: the guardian "waits until it receives a
      // valid frame"): a well-formed cs- or i-frame carrying the sender's
      // own identity is relayed; everything else from an open port reaches
      // the nodes as noise. A valid i-frame announces an already-running
      // schedule this guardian missed; it starts a tentative round that only
      // the successive slots can confirm (a single faulty node cannot
      // sustain a full fake schedule). i-frames are acceptable in STARTUP
      // only: the PROTECTED pattern slots arbitrate cold-start
      // retransmissions, and admitting i-frames there would let a faulty
      // node phase-shift every protected round from its own slot by pairing
      // a cs on one channel with an i-frame on the other.
      const bool valid =
          f.time == sel && (f.is_cs() || (f.is_i() && v.state == HubState::kStartup));
      d.to_ports = valid ? f : Frame::noise();
      d.interlink = d.to_ports;
      return d;
    }

    case HubState::kTentative:
    case HubState::kActive: {
      d.new_locks = scan_locks(cfg, v, node_out);
      const std::uint8_t s = hub_expected_slot(cfg, v);
      const Frame& f = node_out[s];
      const bool locked = ((v.locks >> s) & 1u) != 0;
      if (!locked && f.is_i() && f.time == s) {
        d.to_ports = f;
        d.selected_port = s;
        d.interlink = f;
      }
      return d;
    }
  }
  return d;
}

RelayDecision faulty_hub_relay(const ClusterConfig& cfg, const HubVars& v,
                               const Frame node_out[kMaxNodes], const Frame& interlink_in,
                               int option) {
  RelayDecision d;
  int ports[kMaxNodes];
  int active = 0;
  for (int i = 0; i < cfg.n; ++i) {
    if (!node_out[i].is_quiet()) ports[active++] = i;
  }
  TT_ASSERT(option >= 0 && option < active + 2);

  Frame src = Frame::quiet();
  if (option == 1) {
    src = interlink_in;  // replay the other channel's traffic
  } else if (option >= 2) {
    src = node_out[ports[option - 2]];
    d.selected_port = ports[option - 2];
  }
  // The fault hypothesis (§2.2) holds by construction: `src` is always a
  // same-step reception, so no well-formed frame is fabricated or delayed.
  for (int j = 0; j < cfg.n; ++j) {
    switch (v.port_mode(j)) {
      case HubPortMode::kRelay: d.per_port[j] = src; break;
      case HubPortMode::kNoise: d.per_port[j] = src.is_quiet() ? Frame::quiet() : Frame::noise(); break;
      case HubPortMode::kQuiet: d.per_port[j] = Frame::quiet(); break;
    }
  }
  d.interlink = src;  // the SAL faulty hub always mirrors its selection
  return d;
}

int hub_init_window_for(const ClusterConfig& cfg, int h) noexcept {
  const int delayed_hub = cfg.faulty_hub == 0 ? 1 : 0;
  return (h == delayed_hub) ? cfg.hub_init_window : 1;
}

int hub_state_option_count(const ClusterConfig& cfg, int h, const HubVars& v) {
  if (v.state != HubState::kInit) return 1;
  return v.counter < hub_init_window_for(cfg, h) ? 2 : 1;
}

HubVars hub_state_step(const ClusterConfig& cfg, int h, const HubVars& v,
                       const RelayDecision& d, const Frame& interlink_in, int option) {
  TT_ASSERT(!cfg.hub_is_faulty(h));
  HubVars nv = v;
  nv.out = d.to_ports;
  if (ports_open(v.state)) nv.locks = static_cast<std::uint8_t>(v.locks | d.new_locks);

  const int n = cfg.n;
  switch (v.state) {
    case HubState::kInit: {
      // Exactly one guardian is powered late (paper §5.4); the other leaves
      // INIT at its first step. The delayed one is always a correct hub.
      const bool must_wake = v.counter >= hub_init_window_for(cfg, h);
      if (!must_wake && option == 1) {
        nv.counter = static_cast<std::uint8_t>(v.counter + 1);
      } else {
        nv.state = HubState::kListen;
        nv.counter = 1;
      }
      break;
    }

    case HubState::kListen: {
      // Integration is only possible through the interlink here: data relayed
      // by the other guardian is known to originate from a correct sender.
      if (interlink_in.is_i()) {
        nv.state = HubState::kActive;
        nv.slot_pos = interlink_in.time;  // transition 2.3
      } else if (interlink_in.is_cs()) {
        nv.state = HubState::kTentative;  // transition 2.2
        nv.slot_pos = interlink_in.time;
        nv.counter = 1;
      } else if (v.counter >= 2 * n) {
        nv.state = HubState::kStartup;  // transition 2.1
        nv.counter = 0;
      } else {
        nv.counter = static_cast<std::uint8_t>(v.counter + 1);
      }
      break;
    }

    case HubState::kStartup:
    case HubState::kProtected: {
      const bool own_cs = d.to_ports.is_cs();
      const bool il_cs = interlink_in.is_cs();
      if (own_cs && il_cs && interlink_in.time != d.to_ports.time) {
        nv.state = HubState::kSilence;  // logical collision: transitions 3.2 / 6.2
        nv.counter = 1;
      } else if (own_cs) {
        nv.state = HubState::kTentative;  // transitions 3.1 / 6.1
        nv.slot_pos = d.to_ports.time;
        nv.counter = 1;
      } else if (il_cs) {
        // The other channel arbitrated a cold start we did not see ourselves.
        nv.state = HubState::kTentative;
        nv.slot_pos = interlink_in.time;
        nv.counter = 1;
      } else if (d.to_ports.is_i()) {
        // A valid i-frame on an open port: a schedule is already running.
        // Follow it tentatively; only the successive slots confirm it.
        nv.state = HubState::kTentative;
        nv.slot_pos = d.to_ports.time;
        nv.counter = 1;
      } else if (v.state == HubState::kProtected) {
        if (v.counter >= n) {
          nv.state = HubState::kStartup;  // transition 6.3
          nv.counter = 0;
        } else {
          nv.counter = static_cast<std::uint8_t>(v.counter + 1);
        }
      }
      break;
    }

    case HubState::kTentative: {
      // The cs slot was the first frame of the round, so the tentative round
      // covers the *remaining* n-1 slots; then PROTECTED starts, phase-locked
      // to the cold-start clocks (see eligible_ports).
      nv.slot_pos = hub_expected_slot(cfg, v);
      // Confirmation through the interlink must name the expected slot: the
      // other channel may be relaying a *different* (older/newer) schedule,
      // and adopting a confirmation for the wrong slot would leave this
      // guardian permanently offset from the running TDMA round.
      const bool confirmed =
          d.to_ports.is_i() ||
          (interlink_in.is_i() && interlink_in.time == nv.slot_pos);
      if (confirmed) {
        nv.state = HubState::kActive;  // transition 5.2
        nv.counter = 0;
      } else if (v.counter >= n - 1) {
        nv.state = HubState::kProtected;  // transition 5.1
        nv.counter = 1;
      } else {
        nv.counter = static_cast<std::uint8_t>(v.counter + 1);
      }
      break;
    }

    case HubState::kSilence: {
      // The own channel stays blocked for the remaining round, but the
      // guardian keeps watching the interlink: a cold start arbitrated by
      // the other channel during this round must not leave it behind
      // (otherwise a faulty hub could rush the nodes into synchronous
      // operation inside this blind window — Lemma 4 depends on this).
      if (interlink_in.is_cs()) {
        nv.state = HubState::kTentative;
        nv.slot_pos = interlink_in.time;
        nv.counter = 1;
      } else if (v.counter >= n - 1) {
        nv.state = HubState::kProtected;  // transition 4.1
        nv.counter = 1;
      } else {
        nv.counter = static_cast<std::uint8_t>(v.counter + 1);
      }
      break;
    }

    case HubState::kActive: {
      nv.slot_pos = hub_expected_slot(cfg, v);
      break;
    }

    case HubState::kFaulty:
      TT_ASSERT(false && "correct hub cannot be in kFaulty");
      break;
  }
  canonicalize(cfg, nv);
  return nv;
}

HubVars faulty_hub_state_step(const ClusterConfig& cfg, const HubVars& v,
                              const RelayDecision& d) {
  HubVars nv = v;  // pattern is frozen; counters stay canonical
  nv.state = HubState::kFaulty;
  nv.counter = 0;
  nv.slot_pos = 0;
  nv.locks = 0;
  nv.out = Frame::quiet();
  for (int j = 0; j < cfg.n; ++j) nv.out_per_port[j] = d.per_port[j].canonical();
  return nv;
}

}  // namespace tt::tta
