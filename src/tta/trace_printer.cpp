#include "tta/trace_printer.hpp"

#include "support/table.hpp"

namespace tt::tta {

std::string describe(const Frame& f) {
  switch (f.kind) {
    case MsgKind::kQuiet: return "-";
    case MsgKind::kNoise: return "noise";
    case MsgKind::kCs: return strfmt("cs(%d)%s", f.time, f.ok ? "" : "!");
    case MsgKind::kI: return strfmt("i(%d)%s", f.time, f.ok ? "" : "!");
  }
  return "?";
}

std::string describe(const ClusterConfig& cfg, const ClusterState& c) {
  std::string out;
  for (int i = 0; i < cfg.n; ++i) {
    const NodeVars& v = c.node[i];
    out += strfmt("n%d:%s", i, to_string(v.state));
    if (v.state == NodeState::kListen || v.state == NodeState::kColdstart ||
        v.state == NodeState::kInit) {
      out += strfmt("/%d", v.counter);
    }
    if (v.state == NodeState::kActive) out += strfmt("@%d", v.pos);
    out += "  ";
  }
  for (int h = 0; h < kNumChannels; ++h) {
    const HubVars& v = c.hub[h];
    const bool faulty = cfg.hub_is_faulty(h);
    out += strfmt("| G%d:%s", h, to_string(v.state));
    if (!faulty) {
      if (v.state == HubState::kInit || v.state == HubState::kListen ||
          v.state == HubState::kTentative || v.state == HubState::kSilence ||
          v.state == HubState::kProtected) {
        out += strfmt("/%d", v.counter);
      }
      if (v.state == HubState::kTentative || v.state == HubState::kActive) {
        out += strfmt("@%d", v.slot_pos);
      }
      if (v.locks != 0) {
        out += " lock{";
        for (int i = 0; i < cfg.n; ++i) {
          if ((v.locks >> i) & 1u) out += strfmt("%d", i);
        }
        out += "}";
      }
      out += strfmt(" out=%s", describe(v.out).c_str());
    } else {
      out += " out=[";
      for (int i = 0; i < cfg.n; ++i) {
        if (i > 0) out += " ";
        out += describe(v.out_per_port[i]);
      }
      out += "]";
    }
    out += " ";
  }
  if (cfg.timeliness_bound > 0) out += strfmt("| st=%d", c.startup_time);
  return out;
}

std::string describe_trace(const Cluster& cluster, std::span<const Cluster::State> trace) {
  std::string out;
  for (std::size_t t = 0; t < trace.size(); ++t) {
    out += strfmt("t=%3zu  ", t);
    out += describe(cluster.config(), cluster.unpack(trace[t]));
    out += "\n";
  }
  return out;
}

}  // namespace tt::tta
