#include "tta/properties.hpp"

namespace tt::tta {

bool holds_safety(const ClusterConfig& cfg, const ClusterState& c) {
  int pos = -1;
  for (int i = 0; i < cfg.n; ++i) {
    if (cfg.node_is_faulty(i) || c.node[i].state != NodeState::kActive) continue;
    if (pos < 0) {
      pos = c.node[i].pos;
    } else if (c.node[i].pos != pos) {
      return false;
    }
  }
  return true;
}

bool all_correct_active(const ClusterConfig& cfg, const ClusterState& c) {
  for (int i = 0; i < cfg.n; ++i) {
    if (cfg.node_is_faulty(i)) continue;
    if (c.node[i].state != NodeState::kActive) return false;
  }
  return true;
}

bool holds_timeliness(const ClusterConfig& cfg, const ClusterState& c) {
  if (cfg.timeliness_bound == 0) return true;
  return c.startup_time != static_cast<std::uint8_t>(cfg.timeliness_bound + 1);
}

bool holds_hub_agreement(const ClusterConfig& cfg, const ClusterState& c) {
  for (int h = 0; h < kNumChannels; ++h) {
    if (cfg.hub_is_faulty(h) || c.hub[h].state != HubState::kActive) continue;
    for (int i = 0; i < cfg.n; ++i) {
      if (cfg.node_is_faulty(i) || c.node[i].state != NodeState::kActive) continue;
      if (c.node[i].pos != c.hub[h].slot_pos) return false;
    }
  }
  return true;
}

int count_correct_active(const ClusterConfig& cfg, const ClusterState& c) {
  int count = 0;
  for (int i = 0; i < cfg.n; ++i) {
    if (!cfg.node_is_faulty(i) && c.node[i].state == NodeState::kActive) ++count;
  }
  return count;
}

}  // namespace tt::tta
