// The star-cluster model in the mini-SAL guarded-command IR (DESIGN.md
// §3.10): the same TTA startup semantics as tta::Cluster, re-expressed as a
// kernel::System so the SAT-based proof engines (bmc::check_invariant_kind,
// bmc::check_invariant_ic3, incremental BMC) can run on the very grid cells
// the explicit/symbolic engines verify.
//
// Encoding: one tta::Cluster step is TWO IR steps, sequenced by a `phase`
// bit.
//
//   phase A (phase==0 -> 1)  every node group fires: nodes read the frames
//            the hubs delivered last step (hub `out` state variables) and
//            latch their own transmission into per-node `out` variables.
//   phase B (phase==1 -> 0)  one combined hub group fires: both hubs
//            arbitrate the latched node outputs, exchange same-step
//            interlink data (expressions, not state — exactly the
//            cut-through relay of hub.hpp), advance their automata and the
//            startup_time counter; node groups clear their `out` latches.
//
// The combined hub group is what makes the synchronous interlink coupling
// expressible: hub 0's state update reads hub 1's same-step relay decision
// as a subexpression of the same command (and, with a faulty hub, the
// faulty relay replays the correct hub's interlink expression).
//
// States with phase==0 are in 1:1 correspondence with ClusterStates —
// decode() maps them back, and the star_ir bisimulation test checks that
// the phase-0 reachable set equals tta::Cluster's reachable set exactly.
// Properties must therefore be phase-gated: every property expression this
// class builds is of the form (phase == 1) || P, so intermediate states are
// exempt and a violation is always witnessed on a cluster frame. A
// counterexample trace of length 2d hence decodes (even frames only) to a
// cluster trace of length d.
//
// Supported configurations: everything tta::Cluster supports except the
// transient-restart dimension (transient_restarts must be 0) — restarts
// would need a per-step restart chooser that the proof engines' two-frame
// queries cannot amortize, and no §5 experiment needs them.
#pragma once

#include <vector>

#include "kernel/system.hpp"
#include "tta/cluster.hpp"
#include "tta/config.hpp"

namespace tt::tta {

class StarIr {
 public:
  explicit StarIr(const ClusterConfig& cfg);

  [[nodiscard]] const kernel::System& system() const noexcept { return system_; }
  [[nodiscard]] kernel::System& system() noexcept { return system_; }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return cfg_; }

  // Phase-gated property expressions ((phase == 1) || P), matching
  // tta::properties on decoded cluster frames.
  [[nodiscard]] kernel::ExprId safety_expr() const noexcept { return safety_expr_; }
  /// Requires cfg.timeliness_bound > 0 (shared by Lemma 3 and Lemma 4; the
  /// configured TimelinessTarget selects which counter is tracked).
  [[nodiscard]] kernel::ExprId timeliness_expr() const noexcept { return timeliness_expr_; }
  [[nodiscard]] kernel::ExprId hub_agreement_expr() const noexcept {
    return hub_agreement_expr_;
  }

  /// True when `valuation` is a cluster frame (phase == 0).
  [[nodiscard]] bool is_cluster_frame(const std::vector<int>& valuation) const;

  /// Decodes a phase-0 IR valuation into the ClusterState it represents.
  [[nodiscard]] ClusterState decode(const std::vector<int>& valuation) const;

  // Frame codes: the IR stores one enumerated variable per frame with
  // domain 2n+3 — quiet, noise, cs(0..n-1), i(0..n-1), i_bad.
  [[nodiscard]] int frame_index(const Frame& f) const;
  [[nodiscard]] Frame frame_of(int index) const;
  [[nodiscard]] int frame_domain() const noexcept { return 2 * cfg_.n + 3; }

  [[nodiscard]] kernel::VarId phase_var() const noexcept { return phase_; }

 private:
  void build();
  void build_correct_node(int i);
  void build_faulty_node();
  void build_hub_group();

  // Expression helpers over frame-code expressions.
  [[nodiscard]] kernel::ExprId is_cs(kernel::ExprId f);
  [[nodiscard]] kernel::ExprId is_i(kernel::ExprId f);
  [[nodiscard]] kernel::ExprId usable(kernel::ExprId f);
  /// Value expression for the `time` field of a usable frame code (0 for
  /// quiet/noise/i_bad — callers guard on usability).
  [[nodiscard]] kernel::ExprId time_of(kernel::ExprId f);
  /// Frame node `j` transmits on channel `h` this phase-B step.
  [[nodiscard]] kernel::ExprId node_out_expr(int j, int h);

  ClusterConfig cfg_;
  kernel::System system_;

  kernel::VarId phase_ = -1;
  // Correct-node variables (index = node id; unused entries stay -1).
  std::vector<kernel::VarId> nstate_, ncounter_, npos_, nbb_, nout_;
  // Faulty-node variables (valid when cfg.faulty_node != kNone).
  kernel::VarId fstate_ = -1;
  kernel::VarId fout_[kNumChannels] = {-1, -1};
  // Correct-hub variables (index = hub).
  kernel::VarId hstate_[2] = {-1, -1};
  kernel::VarId hcounter_[2] = {-1, -1};
  kernel::VarId hslot_[2] = {-1, -1};
  std::vector<kernel::VarId> hlock_[2];
  kernel::VarId hout_[2] = {-1, -1};
  // Faulty-hub variables (valid when cfg.faulty_hub != kNone): the frozen
  // per-port delivery pattern (init_any, never assigned — the IR analogue of
  // the SAL model's uninitialized LOCAL arrays) and the per-port deliveries.
  std::vector<kernel::VarId> fh_pattern_;
  std::vector<kernel::VarId> fh_out_;
  kernel::VarId st_ = -1;  ///< startup_time (timeliness_bound > 0 only)

  int node_counter_dom_ = 0;
  int hub_counter_dom_ = 0;
  int g_hub_ = -1;

  kernel::ExprId safety_expr_ = -1;
  kernel::ExprId timeliness_expr_ = -1;
  kernel::ExprId hub_agreement_expr_ = -1;
};

}  // namespace tt::tta
