// Core vocabulary of the TTA startup model: message kinds, frames, node and
// guardian automaton states (paper Fig. 2), and the fault-degree ranking of
// faulty-node outputs (paper Fig. 3).
#pragma once

#include <cstdint>

namespace tt::tta {

/// Signal kinds observable on a channel during one slot (paper `msgs` type).
enum class MsgKind : std::uint8_t {
  kQuiet = 0,  ///< no transmission
  kNoise = 1,  ///< syntactically invalid signal (fails CRC at every receiver)
  kCs = 2,     ///< cold-start frame; `time` names the proposed TDMA position
  kI = 3,      ///< integration frame; `time` names the current TDMA position
};

[[nodiscard]] constexpr const char* to_string(MsgKind k) noexcept {
  switch (k) {
    case MsgKind::kQuiet: return "quiet";
    case MsgKind::kNoise: return "noise";
    case MsgKind::kCs: return "cs";
    case MsgKind::kI: return "i";
  }
  return "?";
}

/// One slot's worth of signal on one channel.
///
/// `ok` models frame well-formedness (CRC etc.): a guardian cannot *create*
/// an ok frame (fault hypothesis, paper §2.2), and every receiver discards
/// !ok frames like noise. Quiet/noise are canonicalized to time=0, ok=true so
/// that equal packed states compare equal.
struct Frame {
  MsgKind kind = MsgKind::kQuiet;
  std::uint8_t time = 0;
  bool ok = true;

  [[nodiscard]] constexpr bool operator==(const Frame&) const = default;

  [[nodiscard]] constexpr bool is_quiet() const noexcept { return kind == MsgKind::kQuiet; }
  /// Well-formed cs-frame (may still carry a masquerading id).
  [[nodiscard]] constexpr bool is_cs() const noexcept { return kind == MsgKind::kCs && ok; }
  /// Well-formed i-frame.
  [[nodiscard]] constexpr bool is_i() const noexcept { return kind == MsgKind::kI && ok; }
  /// Anything a receiver treats as unusable activity.
  [[nodiscard]] constexpr bool is_noise_like() const noexcept {
    return kind == MsgKind::kNoise || ((kind == MsgKind::kCs || kind == MsgKind::kI) && !ok);
  }

  [[nodiscard]] static constexpr Frame quiet() noexcept { return {}; }
  [[nodiscard]] static constexpr Frame noise() noexcept { return {MsgKind::kNoise, 0, true}; }
  [[nodiscard]] static constexpr Frame cs(std::uint8_t time) noexcept {
    return {MsgKind::kCs, time, true};
  }
  [[nodiscard]] static constexpr Frame i(std::uint8_t time) noexcept {
    return {MsgKind::kI, time, true};
  }
  /// Ill-formed i-frame (fault degree 6); time canonicalized to 0.
  [[nodiscard]] static constexpr Frame i_bad() noexcept { return {MsgKind::kI, 0, false}; }

  /// Canonical representation for packing (enforces the quiet/noise rule).
  [[nodiscard]] constexpr Frame canonical() const noexcept {
    if (kind == MsgKind::kQuiet || kind == MsgKind::kNoise) return {kind, 0, true};
    return *this;
  }
};

/// Node automaton states, paper Fig. 2(a) plus the faulty family used by the
/// feedback optimization (§3.2.1).
enum class NodeState : std::uint8_t {
  kInit = 0,
  kListen = 1,
  kColdstart = 2,  ///< paper "(COLD)START"
  kActive = 3,
  kFaulty = 4,
  kFaultyLock0 = 5,   ///< locked out by guardian of channel 0
  kFaultyLock1 = 6,   ///< locked out by guardian of channel 1
  kFaultyLock01 = 7,  ///< locked out by both guardians
};

[[nodiscard]] constexpr const char* to_string(NodeState s) noexcept {
  switch (s) {
    case NodeState::kInit: return "INIT";
    case NodeState::kListen: return "LISTEN";
    case NodeState::kColdstart: return "COLDSTART";
    case NodeState::kActive: return "ACTIVE";
    case NodeState::kFaulty: return "FAULTY";
    case NodeState::kFaultyLock0: return "FAULTY/lock0";
    case NodeState::kFaultyLock1: return "FAULTY/lock1";
    case NodeState::kFaultyLock01: return "FAULTY/lock01";
  }
  return "?";
}

[[nodiscard]] constexpr bool is_faulty_state(NodeState s) noexcept {
  return s >= NodeState::kFaulty;
}

/// Guardian automaton states, paper Fig. 2(b), plus the faulty-hub mode.
enum class HubState : std::uint8_t {
  kInit = 0,
  kListen = 1,
  kStartup = 2,
  kTentative = 3,  ///< "Tentative ROUND"
  kSilence = 4,    ///< "Silence ROUND"
  kProtected = 5,  ///< "Protected STARTUP"
  kActive = 6,
  kFaulty = 7,
};

[[nodiscard]] constexpr const char* to_string(HubState s) noexcept {
  switch (s) {
    case HubState::kInit: return "hub_init";
    case HubState::kListen: return "hub_listen";
    case HubState::kStartup: return "hub_startup";
    case HubState::kTentative: return "hub_tentative";
    case HubState::kSilence: return "hub_silence";
    case HubState::kProtected: return "hub_protected";
    case HubState::kActive: return "hub_active";
    case HubState::kFaulty: return "hub_FAULTY";
  }
  return "?";
}

/// Which state-space reduction a Cluster applies on its successor path
/// (see tta/symmetry.hpp for the orbit construction / DESIGN.md §3.6, and
/// tta/independence.hpp for the partial-order clamp / DESIGN.md §3.8).
enum class Reduction : std::uint8_t {
  kNone = 0,          ///< explore the raw state space (bit-exact PR-2 pipeline)
  kSymmetry = 1,      ///< canonicalize every emitted state to its orbit representative
  kPartialOrder = 2,  ///< clamp commuting pre-delivery clock slack (ample horizon)
  kSymPor = 3,        ///< both: clamp over the symmetry quotient (the big win)
};

[[nodiscard]] constexpr const char* to_string(Reduction r) noexcept {
  switch (r) {
    case Reduction::kNone: return "none";
    case Reduction::kSymmetry: return "sym";
    case Reduction::kPartialOrder: return "por";
    case Reduction::kSymPor: return "sym+por";
  }
  return "?";
}

/// The symmetry component is active (orbit canonicalization on emission).
[[nodiscard]] constexpr bool reduction_has_symmetry(Reduction r) noexcept {
  return r == Reduction::kSymmetry || r == Reduction::kSymPor;
}

/// The partial-order component is active (clock-slack clamp on emission).
[[nodiscard]] constexpr bool reduction_has_por(Reduction r) noexcept {
  return r == Reduction::kPartialOrder || r == Reduction::kSymPor;
}

/// Fault-degree ranks of faulty-node per-channel outputs (paper Fig. 3).
/// A pair (a, b) of per-channel outputs is admitted at degree d iff
/// max(rank(a), rank(b)) <= d.
enum class FaultRank : std::uint8_t {
  kQuiet = 1,
  kCsGood = 2,  ///< well-formed cs carrying the faulty node's true id
  kIGood = 3,   ///< well-formed i-frame, arbitrary claimed position
  kNoise = 4,
  kCsBad = 5,   ///< well-formed cs masquerading as another node
  kIBad = 6,    ///< ill-formed i-frame
};

constexpr int kNumChannels = 2;

}  // namespace tt::tta
