// The synchronous cluster model: n nodes x 2 guardians x interlinks,
// exposed as an mc::TransitionSystem over bit-packed 192-bit states.
//
// This is the C++ counterpart of the paper's SAL `system` module (§3.1): at
// every step all nodes move, both hubs arbitrate and relay, and the hubs
// exchange interlink data — with all fault-injection nondeterminism
// enumerated explicitly (exhaustive fault simulation).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "support/function_ref.hpp"
#include "tta/config.hpp"
#include "tta/faulty_node.hpp"
#include "tta/hub.hpp"
#include "tta/node.hpp"

namespace tt::tta {

class Canonicalizer;
struct PorStats;

/// Fully unpacked cluster state (for model code, properties, and printing).
struct ClusterState {
  NodeVars node[kMaxNodes];
  HubVars hub[2];
  /// Timeliness counter (only tracked when cfg.timeliness_bound > 0):
  /// 0 = not started, 1..bound+1 = slots elapsed since ">= 2 correct nodes
  /// in LISTEN/COLDSTART" (bound+1 saturates: the violation value),
  /// bound+2 = timeliness target reached (frozen success).
  std::uint8_t startup_time = 0;
  /// Transient restarts injected so far (cfg.transient_restarts budget).
  std::uint8_t restarts_used = 0;
};

class Cluster {
 public:
  static constexpr std::size_t kWords = 3;
  using State = std::array<std::uint64_t, kWords>;
  using Emit = FunctionRef<void(const State&)>;
  using EmitUnpacked = FunctionRef<void(const ClusterState&)>;

  explicit Cluster(ClusterConfig cfg, Reduction reduction = Reduction::kNone);

  [[nodiscard]] const ClusterConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] Reduction reduction() const noexcept { return reduction_; }

  /// Emits every initial state: all components in INIT (faulty ones in their
  /// fault mode); one initial state per frozen faulty-hub pattern (3^n,
  /// reproducing the SAL model's uninitialized LOCAL arrays, §3.2.2).
  void initial_states(Emit emit) const;

  /// Enumerates all successors of `s` (DESIGN.md §4 defines the two-phase
  /// step semantics and every nondeterminism source).
  void successors(const State& s, Emit emit) const;

  /// Same enumeration over unpacked states (used by the trace printer and
  /// the interactive examples).
  void step_unpacked(const ClusterState& c, EmitUnpacked emit) const;

  [[nodiscard]] State pack(const ClusterState& c) const;
  [[nodiscard]] ClusterState unpack(const State& s) const;

  /// Number of state bits the packed representation uses (the explicit-state
  /// analogue of the paper's "BDD variables" column in Fig. 6).
  [[nodiscard]] int state_bits() const noexcept { return state_bits_; }

  /// The common (pattern-free) part of every initial state.
  [[nodiscard]] ClusterState base_initial_state() const;

  /// Timeliness bookkeeping (exposed for tests).
  [[nodiscard]] std::uint8_t next_startup_time(const ClusterState& next,
                                               std::uint8_t prev) const;

  /// Orbit representative of `s` under the model's exact symmetries
  /// (tta/symmetry.hpp, DESIGN.md §3.6). Independent of the reduction mode
  /// this cluster explores with, so an unreduced cluster can map raw states
  /// into the quotient (trace re-concretization, equivalence tests). With
  /// Reduction::kSymmetry every state the cluster emits is a fixed point.
  [[nodiscard]] State canonicalize(const State& s) const;

  /// This cluster's full reduction map: the image an arbitrary raw state
  /// would be emitted as (orbit representative and/or partial-order clamp,
  /// per the reduction mode; identity for kNone). Every state a reduced
  /// cluster emits is a fixed point of `reduce` — concretization and the
  /// equivalence tests rely on this.
  [[nodiscard]] State reduce(const State& s) const;

  /// Canonicalization instrumentation: states canonicalized on the emission
  /// path, and how many of them picked the channel-swapped image. Relaxed
  /// counters — totals are exact once a run has joined its workers.
  [[nodiscard]] std::uint64_t canon_ops() const noexcept {
    return canon_ops_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t canon_swaps() const noexcept {
    return canon_swaps_.load(std::memory_order_relaxed);
  }

  /// Partial-order reduction instrumentation (DESIGN.md §3.8; zero unless
  /// the reduction has a por component): emissions whose independence gate
  /// was open (`ample_sets`), emissions redirected to the clamped horizon
  /// representative (`pruned_combos`), and emissions the gate declined into
  /// full expansion (`proviso_fallbacks`). Relaxed counters, exact at join.
  [[nodiscard]] std::uint64_t ample_sets() const noexcept {
    return por_ample_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t pruned_combos() const noexcept {
    return por_pruned_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t proviso_fallbacks() const noexcept {
    return por_declined_.load(std::memory_order_relaxed);
  }

 private:
  /// Node-dependent part of the startup-time update, computed once per node
  /// choice combination (the hub-dependent part varies per emission).
  struct StartupPre {
    bool node_target = false;  ///< a correct node is ACTIVE (kFirstCorrectActive)
    bool awake2 = false;       ///< >= 2 correct nodes in LISTEN/COLDSTART
  };
  [[nodiscard]] StartupPre startup_pre(const NodeVars* nodes) const;
  [[nodiscard]] std::uint8_t startup_from(const StartupPre& pre, const HubVars& h0,
                                          const HubVars& h1, std::uint8_t prev) const;

  /// The step kernel, generic over how successors leave it. `Sink` sees
  /// `combo(next_nodes)` whenever the node-choice combination changes, then
  /// `emit(h0, h1, startup_time, restarts_used)` once per successor of that
  /// combination — so a packing sink can serialize the node prefix once per
  /// combination instead of once per successor (the hot-path win: at fault
  /// degree 6 one combination is shared by all hub-phase variants).
  template <class Sink>
  void step_core(const ClusterState& c, int restart_node, Sink& sink) const;

  /// Runs step_core for the fault-free step plus every transient-restart
  /// variant (paper §2.1 restart dimension).
  template <class Sink>
  void step_all(const ClusterState& c, Sink& sink) const;

  /// Word-wise minimum of a canonical state and its channel-swapped image
  /// (the C3 orbit representative); shared by canonicalize and reduce.
  [[nodiscard]] State min_swap_pack(const ClusterState& c, const Canonicalizer& canon) const;

  /// Adds one exploration call's clamp decisions to the relaxed counters.
  void flush_por_stats(const PorStats& stats) const;

  /// Serializes the per-node prefix of the packed layout (first node_bits_
  /// bits of `s`; the rest must be zero).
  void pack_node_prefix(State& s, const NodeVars* nodes) const;
  /// Serializes everything after the node prefix: both hubs (positional
  /// layout), startup_time, restarts_used.
  void pack_hub_suffix(State& s, const HubVars& h0, const HubVars& h1,
                       std::uint8_t startup_time, std::uint8_t restarts_used) const;

  static int pow3(int n) noexcept {
    int r = 1;
    for (int i = 0; i < n; ++i) r *= 3;
    return r;
  }

  ClusterConfig cfg_;
  Reduction reduction_ = Reduction::kNone;
  FaultyNodeOutputs faulty_outputs_;
  mutable std::atomic<std::uint64_t> canon_ops_{0};
  mutable std::atomic<std::uint64_t> canon_swaps_{0};
  mutable std::atomic<std::uint64_t> por_ample_{0};
  mutable std::atomic<std::uint64_t> por_pruned_{0};
  mutable std::atomic<std::uint64_t> por_declined_{0};
  int counter_bits_ = 0;
  int pos_bits_ = 0;
  int frame_bits_ = 0;
  int st_bits_ = 0;
  int restart_bits_ = 0;
  int node_bits_ = 0;  ///< width of the packed per-node prefix (all n nodes)
  int state_bits_ = 0;
};

}  // namespace tt::tta
