// Cluster configuration: the experiment "dials" of the paper.
//
//  * n              — cluster size (paper explores 3..6)
//  * faulty_node    — index of the Byzantine node, or kNone
//  * fault_degree   — Fig. 3 dial (1..6); 6 == exhaustive fault simulation
//  * faulty_hub     — index of the faulty guardian, or kNone
//  * feedback       — §3.2.1 state-collapse optimization for locked nodes
//  * big_bang       — §2.3.1 big-bang mechanism (off to reproduce §5.2)
//  * init_window    — δ_init: nodes may wake at any slot in [0, init_window)
//  * hub_init_window— δ_init for the delayed guardian (the other powers at 0)
//  * timeliness_bound — w_sup bound in slots; 0 disables the startup_time
//    counter (smaller state vector for safety/liveness runs)
#pragma once

#include <cstdint>
#include <string>

#include "tta/types.hpp"

namespace tt::tta {

/// What event freezes the startup_time counter (see DESIGN.md §4).
///  * kFirstCorrectActive — Lemma 3 / §5.3: w_sup measures the time from
///    ">= 2 correct nodes in LISTEN/COLDSTART" until ">= 1 correct node
///    ACTIVE".
///  * kCorrectHubSynced — Lemma 4 / §5.2: the correct guardian must reach
///    Tentative-ROUND or ACTIVE within the bound (clique avoidance under a
///    faulty hub).
enum class TimelinessTarget : std::uint8_t {
  kFirstCorrectActive = 0,
  kCorrectHubSynced = 1,
};

struct ClusterConfig {
  static constexpr int kNone = -1;

  int n = 4;
  int faulty_node = kNone;
  int fault_degree = 6;
  int faulty_hub = kNone;
  bool feedback = true;
  bool big_bang = true;
  int init_window = 8;       ///< δ_init for nodes, in slots
  int hub_init_window = 8;   ///< δ_init for the delayed guardian (hub 0)
  int timeliness_bound = 0;  ///< 0 = no startup_time tracking
  TimelinessTarget timeliness_target = TimelinessTarget::kFirstCorrectActive;
  /// Restart budget (paper §2.1, the *restart problem*): up to this many
  /// times, any one correct node may be hit by a transient fault that resets
  /// it to INIT at an arbitrary instant; the lemmas then also cover
  /// reintegration into the running system. 0 = pure startup model.
  int transient_restarts = 0;

  /// Slots per TDMA round (every slot has unit duration in the abstraction).
  [[nodiscard]] int round() const noexcept { return n; }

  /// Listen timeout of node i (slots): tau_listen = 2*round + startup_delay(i),
  /// which in unit slots is LT_TO[i] = 2n + i (paper SAL source).
  [[nodiscard]] int listen_timeout(int i) const noexcept { return 2 * n + i; }

  /// Cold-start timeout of node i (slots): CS_TO[i] = n + i.
  [[nodiscard]] int coldstart_timeout(int i) const noexcept { return n + i; }

  /// Upper bound for every counter in the model (paper maxcount = 20n).
  [[nodiscard]] int max_count() const noexcept;

  [[nodiscard]] bool node_is_faulty(int i) const noexcept { return i == faulty_node; }
  [[nodiscard]] bool hub_is_faulty(int h) const noexcept { return h == faulty_hub; }
  [[nodiscard]] int correct_node_count() const noexcept {
    return n - (faulty_node == kNone ? 0 : 1);
  }

  /// Throws std::invalid_argument when parameters are out of range.
  void validate() const;

  /// One-line human-readable summary for bench tables and logs.
  [[nodiscard]] std::string summary() const;
};

}  // namespace tt::tta
