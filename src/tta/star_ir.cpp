#include "tta/star_ir.hpp"

#include <algorithm>
#include <array>
#include <string>
#include <utility>

#include "support/assert.hpp"
#include "tta/faulty_node.hpp"
#include "tta/hub.hpp"
#include "tta/node.hpp"

namespace tt::tta {

using kernel::Assignment;
using kernel::ExprId;

StarIr::StarIr(const ClusterConfig& cfg) : cfg_(cfg) {
  cfg_.validate();
  TT_REQUIRE(cfg_.transient_restarts == 0,
             "the star IR does not model transient restarts");
  build();
}

int StarIr::frame_index(const Frame& f) const {
  const Frame c = f.canonical();
  if (c.is_quiet()) return 0;
  if (c.kind == MsgKind::kNoise) return 1;
  if (c.is_cs()) return 2 + c.time;
  if (c.is_i()) return 2 + cfg_.n + c.time;
  TT_ASSERT(c.kind == MsgKind::kI && !c.ok);
  return 2 + 2 * cfg_.n;
}

Frame StarIr::frame_of(int index) const {
  const int n = cfg_.n;
  TT_ASSERT(index >= 0 && index < frame_domain());
  if (index == 0) return Frame::quiet();
  if (index == 1) return Frame::noise();
  if (index < 2 + n) return Frame::cs(static_cast<std::uint8_t>(index - 2));
  if (index < 2 + 2 * n) return Frame::i(static_cast<std::uint8_t>(index - 2 - n));
  return Frame::i_bad();
}

ExprId StarIr::is_cs(ExprId f) {
  auto& e = system_.exprs();
  return e.land(e.ge_const(f, 2), e.lt_const(f, 2 + cfg_.n));
}

ExprId StarIr::is_i(ExprId f) {
  auto& e = system_.exprs();
  return e.land(e.ge_const(f, 2 + cfg_.n), e.lt_const(f, 2 + 2 * cfg_.n));
}

ExprId StarIr::usable(ExprId f) {
  auto& e = system_.exprs();
  return e.land(e.ge_const(f, 2), e.lt_const(f, 2 + 2 * cfg_.n));
}

ExprId StarIr::time_of(ExprId f) {
  auto& e = system_.exprs();
  ExprId out = e.constant(0);
  for (int t = 1; t < cfg_.n; ++t) {  // t == 0 is the default arm
    out = e.ite(e.eq_const(f, 2 + t), e.constant(t), out);
    out = e.ite(e.eq_const(f, 2 + cfg_.n + t), e.constant(t), out);
  }
  return out;
}

ExprId StarIr::node_out_expr(int j, int h) {
  auto& e = system_.exprs();
  if (cfg_.node_is_faulty(j)) return e.var(fout_[h]);
  return e.var(nout_[j]);
}

bool StarIr::is_cluster_frame(const std::vector<int>& valuation) const {
  return valuation[static_cast<std::size_t>(phase_)] == 0;
}

void StarIr::build() {
  auto& e = system_.exprs();
  const int n = cfg_.n;
  const int fd = frame_domain();
  // LISTEN clocks top out at 2n + (n-1); INIT clocks at the wake window.
  node_counter_dom_ = std::max(cfg_.init_window, 3 * n - 1) + 1;
  hub_counter_dom_ = std::max(2 * n, cfg_.hub_init_window) + 1;

  phase_ = system_.add_var("phase", 2, 0);

  nstate_.assign(static_cast<std::size_t>(n), -1);
  ncounter_.assign(static_cast<std::size_t>(n), -1);
  npos_.assign(static_cast<std::size_t>(n), -1);
  nbb_.assign(static_cast<std::size_t>(n), -1);
  nout_.assign(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    const std::string p = "n" + std::to_string(i) + ".";
    if (cfg_.node_is_faulty(i)) {
      fstate_ = system_.add_var(p + "state", 8, static_cast<int>(NodeState::kFaulty));
      fout_[0] = system_.add_var(p + "out0", fd, 0);
      fout_[1] = system_.add_var(p + "out1", fd, 0);
    } else {
      nstate_[static_cast<std::size_t>(i)] = system_.add_var(p + "state", 4, 0);
      ncounter_[static_cast<std::size_t>(i)] =
          system_.add_var(p + "counter", node_counter_dom_, 1);
      npos_[static_cast<std::size_t>(i)] = system_.add_var(p + "pos", n, 0);
      nbb_[static_cast<std::size_t>(i)] = system_.add_var(p + "bb", 2, 1);
      nout_[static_cast<std::size_t>(i)] = system_.add_var(p + "out", fd, 0);
    }
  }
  for (int h = 0; h < 2; ++h) {
    const std::string p = "h" + std::to_string(h) + ".";
    if (cfg_.hub_is_faulty(h)) {
      for (int j = 0; j < n; ++j) {
        fh_pattern_.push_back(system_.add_var_nondet(p + "pat" + std::to_string(j), 3));
      }
      for (int j = 0; j < n; ++j) {
        fh_out_.push_back(system_.add_var(p + "out" + std::to_string(j), fd, 0));
      }
    } else {
      hstate_[h] = system_.add_var(p + "state", 7, 0);
      hcounter_[h] = system_.add_var(p + "counter", hub_counter_dom_, 1);
      hslot_[h] = system_.add_var(p + "slot", n, 0);
      for (int j = 0; j < n; ++j) {
        hlock_[h].push_back(system_.add_var(p + "lock" + std::to_string(j), 2, 0));
      }
      hout_[h] = system_.add_var(p + "out", fd, 0);
    }
  }
  if (cfg_.timeliness_bound > 0) {
    st_ = system_.add_var("startup_time", cfg_.timeliness_bound + 3, 0);
  }

  const int g_phase = system_.add_group("phase", /*else_stutter=*/false);
  system_.add_command(g_phase, e.eq_const(e.var(phase_), 0), {{phase_, e.constant(1)}});
  system_.add_command(g_phase, e.eq_const(e.var(phase_), 1), {{phase_, e.constant(0)}});

  for (int i = 0; i < n; ++i) {
    if (cfg_.node_is_faulty(i)) {
      build_faulty_node();
    } else {
      build_correct_node(i);
    }
  }
  build_hub_group();

  // Properties, phase-gated so only cluster frames are constrained.
  const ExprId gate = e.eq_const(e.var(phase_), 1);
  std::vector<ExprId> safe;
  for (int i = 0; i < n; ++i) {
    if (cfg_.node_is_faulty(i)) continue;
    for (int j = i + 1; j < n; ++j) {
      if (cfg_.node_is_faulty(j)) continue;
      const ExprId both =
          e.land(e.eq_const(e.var(nstate_[static_cast<std::size_t>(i)]), 3),
                 e.eq_const(e.var(nstate_[static_cast<std::size_t>(j)]), 3));
      safe.push_back(e.lor(e.lnot(both), e.eq(e.var(npos_[static_cast<std::size_t>(i)]),
                                              e.var(npos_[static_cast<std::size_t>(j)]))));
    }
  }
  safety_expr_ = e.lor(gate, e.all(safe));

  if (cfg_.timeliness_bound > 0) {
    timeliness_expr_ =
        e.lor(gate, e.lnot(e.eq_const(e.var(st_), cfg_.timeliness_bound + 1)));
  }

  std::vector<ExprId> agree;
  for (int h = 0; h < 2; ++h) {
    if (cfg_.hub_is_faulty(h)) continue;
    const ExprId hub_act = e.eq_const(e.var(hstate_[h]), 6);
    for (int i = 0; i < n; ++i) {
      if (cfg_.node_is_faulty(i)) continue;
      const ExprId both =
          e.land(hub_act, e.eq_const(e.var(nstate_[static_cast<std::size_t>(i)]), 3));
      agree.push_back(e.lor(e.lnot(both), e.eq(e.var(npos_[static_cast<std::size_t>(i)]),
                                               e.var(hslot_[h]))));
    }
  }
  hub_agreement_expr_ = e.lor(gate, e.all(agree));
}

void StarIr::build_correct_node(int i) {
  auto& e = system_.exprs();
  const int n = cfg_.n;
  const int g = system_.add_group("node" + std::to_string(i), /*else_stutter=*/false);

  const ExprId in_a = e.eq_const(e.var(phase_), 0);
  const ExprId in_b = e.eq_const(e.var(phase_), 1);
  const auto iu = static_cast<std::size_t>(i);
  const ExprId ns = e.var(nstate_[iu]);
  const ExprId ct = e.var(ncounter_[iu]);
  const ExprId pos = e.var(npos_[iu]);
  const ExprId bb = e.var(nbb_[iu]);
  const ExprId tick = e.add_mod(ct, 1, node_counter_dom_);
  const ExprId zero = e.constant(0);

  // Reception classification (node.cpp classify_reception) over the frames
  // the hubs delivered last phase B. For usable frames (cs/i, well-formed)
  // frame-code equality coincides with (kind, time) equality.
  ExprId f[2];
  for (int h = 0; h < 2; ++h) {
    f[h] = cfg_.hub_is_faulty(h) ? e.var(fh_out_[iu]) : e.var(hout_[h]);
  }
  const ExprId u0 = usable(f[0]);
  const ExprId u1 = usable(f[1]);
  const ExprId i0 = is_i(f[0]);
  const ExprId i1 = is_i(f[1]);
  const ExprId mismatch = e.all({u0, u1, e.lnot(e.eq(f[0], f[1]))});
  const ExprId ixor = e.lor(e.land(i0, e.lnot(i1)), e.land(e.lnot(i0), i1));
  const ExprId iwin = e.land(mismatch, ixor);       // i-frame beats cs-frame
  const ExprId rcoll = e.land(mismatch, e.lnot(ixor));
  const ExprId single = e.land(e.lnot(mismatch), e.lor(u0, u1));
  const ExprId sf = e.ite(u0, f[0], f[1]);
  const ExprId src = e.ite(iwin, e.ite(i0, f[0], f[1]), sf);
  const ExprId r_i = e.lor(iwin, e.land(single, is_i(sf)));
  const ExprId r_cs = e.land(single, is_cs(sf));

  // (time + 1) mod n of the frame a reception synchronizes on.
  ExprId next_pos = zero;
  for (int t = 0; t < n; ++t) {
    const ExprId np = e.constant((t + 1) % n);
    next_pos = e.ite(e.eq_const(src, 2 + t), np, next_pos);
    next_pos = e.ite(e.eq_const(src, 2 + n + t), np, next_pos);
  }
  const ExprId enter_out =
      e.ite(e.eq_const(next_pos, i), e.constant(2 + n + i), zero);
  const ExprId cs_frame_i = e.constant(2 + i);

  // INIT: wake now, or let time advance while the window allows it.
  system_.add_command(g, e.land(in_a, e.eq_const(ns, 0)),
                      {{nstate_[iu], e.constant(1)},
                       {ncounter_[iu], e.constant(1)},
                       {nbb_[iu], e.constant(1)}});
  system_.add_command(
      g, e.all({in_a, e.eq_const(ns, 0), e.lt_const(ct, cfg_.init_window)}),
      {{ncounter_[iu], tick}});

  // LISTEN. With the big bang armed, cs and collision receptions produce the
  // same update whether the bang is consumed or not, so no bb test is needed
  // in the go_cs branch.
  {
    ExprId enter;
    ExprId go_cs;
    if (cfg_.big_bang) {
      enter = r_i;
      go_cs = e.lor(r_cs, rcoll);
    } else {
      enter = e.lor(r_i, r_cs);  // §5.2 variant: first cs synchronizes
      go_cs = rcoll;
    }
    const ExprId lto = e.ge_const(ct, cfg_.listen_timeout(i));
    system_.add_command(
        g, e.land(in_a, e.eq_const(ns, 1)),
        {{nstate_[iu], e.ite(enter, e.constant(3),
                             e.ite(go_cs, e.constant(2),
                                   e.ite(lto, e.constant(2), e.constant(1))))},
         {ncounter_[iu], e.ite(enter, zero,
                               e.ite(go_cs, e.constant(2),
                                     e.ite(lto, e.constant(1), tick)))},
         {npos_[iu], e.ite(enter, next_pos, e.ite(e.lor(go_cs, lto), zero, pos))},
         {nbb_[iu], e.ite(e.lor(enter, go_cs), zero, bb)},
         {nout_[iu], e.ite(enter, enter_out,
                           e.ite(go_cs, zero, e.ite(lto, cs_frame_i, zero)))}});
  }

  // COLDSTART.
  {
    const ExprId foreign = e.land(r_cs, e.lnot(e.eq_const(src, 2 + i)));
    const ExprId csto = e.ge_const(ct, cfg_.coldstart_timeout(i));
    ExprId bbc = -1;  // big-bang consumption in COLDSTART
    ExprId enter;
    if (cfg_.big_bang) {
      bbc = e.land(e.eq_const(bb, 1), e.lor(foreign, rcoll));
      enter = e.lor(r_i, e.land(e.lnot(bbc), foreign));
    } else {
      enter = e.lor(r_i, foreign);
    }
    ExprId ctv = e.ite(csto, e.constant(1), tick);
    if (bbc != -1) ctv = e.ite(bbc, e.constant(2), ctv);
    ctv = e.ite(enter, zero, ctv);
    const ExprId bbv = bbc != -1 ? e.ite(e.lor(enter, bbc), zero, bb)
                                 : e.ite(enter, zero, bb);
    ExprId outv = e.ite(csto, cs_frame_i, zero);
    if (bbc != -1) outv = e.ite(bbc, zero, outv);
    outv = e.ite(enter, enter_out, outv);
    system_.add_command(g, e.land(in_a, e.eq_const(ns, 2)),
                        {{nstate_[iu], e.ite(enter, e.constant(3), e.constant(2))},
                         {ncounter_[iu], ctv},
                         {npos_[iu], e.ite(enter, next_pos, pos)},
                         {nbb_[iu], bbv},
                         {nout_[iu], outv}});
  }

  // ACTIVE: advance the TDMA position, transmit in the own slot.
  {
    const ExprId newpos = e.add_mod(pos, 1, n);
    system_.add_command(
        g, e.land(in_a, e.eq_const(ns, 3)),
        {{ncounter_[iu], zero},
         {npos_[iu], newpos},
         {nout_[iu], e.ite(e.eq_const(newpos, i), e.constant(2 + n + i), zero)}});
  }

  // Phase B: the transmission was consumed by the hubs; clear the latch.
  system_.add_command(g, in_b, {{nout_[iu], zero}});
}

void StarIr::build_faulty_node() {
  auto& e = system_.exprs();
  const int fnode = cfg_.faulty_node;
  const int g = system_.add_group("faulty_node", /*else_stutter=*/false);
  const ExprId in_a = e.eq_const(e.var(phase_), 0);
  const ExprId in_b = e.eq_const(e.var(phase_), 1);
  const ExprId zero = e.constant(0);

  // Per-channel lock feedback: only a correct guardian can lock the port.
  ExprId locked[2] = {-1, -1};
  for (int h = 0; h < 2; ++h) {
    if (!cfg_.hub_is_faulty(h)) {
      locked[h] = e.eq_const(e.var(hlock_[h][fnode]), 1);
    }
  }

  ExprId next_state = -1;
  if (cfg_.feedback) {
    // faulty_node_vars: the state records the pre-state lock bits.
    const ExprId c4 = e.constant(4);
    const ExprId c5 = e.constant(5);
    const ExprId c6 = e.constant(6);
    const ExprId c7 = e.constant(7);
    if (locked[0] != -1 && locked[1] != -1) {
      next_state = e.ite(locked[0], e.ite(locked[1], c7, c5), e.ite(locked[1], c6, c4));
    } else if (locked[0] != -1) {
      next_state = e.ite(locked[0], c5, c4);
    } else if (locked[1] != -1) {
      next_state = e.ite(locked[1], c6, c4);
    } else {
      next_state = c4;
    }
  }

  const auto opts =
      FaultyNodeOutputs::channel_options(cfg_.n, fnode, cfg_.fault_degree);
  for (const Frame& a : opts) {
    for (const Frame& b : opts) {
      std::vector<ExprId> guard{in_a};
      if (cfg_.feedback) {
        // A locked channel only admits quiet (the feedback collapse).
        if (!a.is_quiet() && locked[0] != -1) guard.push_back(e.lnot(locked[0]));
        if (!b.is_quiet() && locked[1] != -1) guard.push_back(e.lnot(locked[1]));
      }
      std::vector<Assignment> assigns{{fout_[0], e.constant(frame_index(a))},
                                      {fout_[1], e.constant(frame_index(b))}};
      if (cfg_.feedback) assigns.push_back({fstate_, next_state});
      system_.add_command(g, e.all(guard), std::move(assigns));
    }
  }
  system_.add_command(g, in_b, {{fout_[0], zero}, {fout_[1], zero}});
}

void StarIr::build_hub_group() {
  auto& e = system_.exprs();
  const int n = cfg_.n;
  const int fh = cfg_.faulty_hub;
  g_hub_ = system_.add_group("hubs", /*else_stutter=*/true);
  const ExprId in_b = e.eq_const(e.var(phase_), 1);
  const ExprId zero = e.constant(0);

  // Relay choices of each correct hub. A choice's `d` expression is both the
  // broadcast to the ports and the interlink mirror (hub.cpp keeps them
  // identical in every state of a correct hub).
  struct Choice {
    ExprId guard;
    ExprId d;
  };
  std::vector<Choice> choices[2];
  std::vector<Assignment> lock_assigns[2];
  for (int h = 0; h < 2; ++h) {
    if (cfg_.hub_is_faulty(h)) continue;
    const ExprId hs = e.var(hstate_[h]);
    const ExprId hc = e.var(hcounter_[h]);
    const ExprId in_sp = e.lor(e.eq_const(hs, 2), e.eq_const(hs, 5));
    const ExprId in_ta = e.lor(e.eq_const(hs, 3), e.eq_const(hs, 6));
    const ExprId open = e.lor(in_sp, in_ta);

    // scan_locks: anything non-quiet that is not the port's own cs- or
    // i-frame is provably faulty; locks latch while ports are open.
    for (int j = 0; j < n; ++j) {
      const ExprId fj = node_out_expr(j, h);
      const ExprId lj = e.eq_const(e.var(hlock_[h][j]), 1);
      const ExprId pf = e.all({e.lnot(e.eq_const(fj, 0)),
                               e.lnot(e.eq_const(fj, 2 + j)),
                               e.lnot(e.eq_const(fj, 2 + n + j))});
      lock_assigns[h].push_back({hlock_[h][j], e.lor(lj, e.land(open, pf))});
    }

    std::vector<ExprId> elig(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      // In PROTECTED, port p only in its timeout-pattern slot (counter-1 == p).
      elig[static_cast<std::size_t>(p)] =
          e.all({e.eq_const(e.var(hlock_[h][p]), 0),
                 e.lnot(e.eq_const(node_out_expr(p, h), 0)),
                 e.lor(e.lnot(e.eq_const(hs, 5)), e.eq_const(hc, p + 1))});
    }
    const ExprId any_elig = e.any(elig);

    // TENTATIVE/ACTIVE slot relay: the expected slot's valid i-frame or quiet.
    const ExprId s_exp = e.add_mod(e.var(hslot_[h]), 1, n);
    ExprId slot_relay = zero;
    for (int t = 0; t < n; ++t) {
      const ExprId hit = e.all({e.eq_const(s_exp, t), e.eq_const(e.var(hlock_[h][t]), 0),
                                e.eq_const(node_out_expr(t, h), 2 + n + t)});
      slot_relay = e.ite(hit, e.constant(2 + n + t), slot_relay);
    }

    for (int p = 0; p < n; ++p) {
      const ExprId fp = node_out_expr(p, h);
      // Semantic filter: own cs-frame always; own i-frame in STARTUP only.
      const ExprId valid = e.lor(
          e.eq_const(fp, 2 + p),
          e.land(e.eq_const(fp, 2 + n + p), e.eq_const(hs, 2)));
      choices[h].push_back({e.land(in_sp, elig[static_cast<std::size_t>(p)]),
                            e.ite(valid, fp, e.constant(1))});
    }
    choices[h].push_back({e.lnot(e.land(in_sp, any_elig)),
                          e.ite(in_ta, slot_relay, zero)});
  }

  // State step of a correct hub (hub.cpp hub_state_step + canonicalize),
  // given its own relay decision `d` and the other channel's interlink `il`.
  auto hub_next = [&](int h, ExprId d, ExprId il) -> std::array<ExprId, 3> {
    const ExprId hs = e.var(hstate_[h]);
    const ExprId hc = e.var(hcounter_[h]);
    const ExprId tick = e.add_mod(hc, 1, hub_counter_dom_);
    const ExprId s_exp = e.add_mod(e.var(hslot_[h]), 1, n);
    const ExprId c0 = zero;
    const ExprId c1 = e.constant(1);
    const ExprId c2 = e.constant(2);
    const ExprId c3 = e.constant(3);
    const ExprId c4 = e.constant(4);
    const ExprId c5 = e.constant(5);
    const ExprId c6 = e.constant(6);
    const ExprId il_i = is_i(il);
    const ExprId il_cs = is_cs(il);
    const ExprId own_i = is_i(d);
    const ExprId own_cs = is_cs(d);
    const ExprId t_il = time_of(il);
    const ExprId t_d = time_of(d);

    // LISTEN: integration through the interlink only.
    const ExprId lto = e.ge_const(hc, 2 * n);
    const ExprId l_st = e.ite(il_i, c6, e.ite(il_cs, c3, e.ite(lto, c2, c1)));
    const ExprId l_ct = e.ite(il_i, c0, e.ite(il_cs, c1, e.ite(lto, c0, tick)));
    const ExprId l_sl = e.ite(il_i, t_il, e.ite(il_cs, t_il, c0));

    // STARTUP / PROTECTED.
    const ExprId prot = e.eq_const(hs, 5);
    const ExprId coll = e.all({own_cs, il_cs, e.lnot(e.eq(d, il))});
    const ExprId sync = e.any({own_cs, il_cs, own_i});
    const ExprId pto = e.ge_const(hc, n);
    const ExprId sp_st =
        e.ite(coll, c4, e.ite(sync, c3, e.ite(e.land(prot, pto), c2, hs)));
    const ExprId sp_ct =
        e.ite(coll, c1, e.ite(sync, c1, e.ite(prot, e.ite(pto, c0, tick), c0)));
    const ExprId sp_sl = e.ite(
        coll, c0,
        e.ite(own_cs, t_d, e.ite(il_cs, t_il, e.ite(own_i, t_d, c0))));

    // TENTATIVE: confirmation must name the expected slot.
    std::vector<ExprId> il_conf;
    for (int t = 0; t < n; ++t) {
      il_conf.push_back(e.land(e.eq_const(s_exp, t), e.eq_const(il, 2 + n + t)));
    }
    const ExprId conf = e.lor(own_i, e.any(il_conf));
    const ExprId tto = e.ge_const(hc, n - 1);
    const ExprId te_st = e.ite(conf, c6, e.ite(tto, c5, c3));
    const ExprId te_ct = e.ite(conf, c0, e.ite(tto, c1, tick));
    const ExprId te_sl = e.ite(conf, s_exp, e.ite(tto, c0, s_exp));

    // SILENCE: own channel blocked, interlink still watched.
    const ExprId si_st = e.ite(il_cs, c3, e.ite(tto, c5, c4));
    const ExprId si_ct = e.ite(il_cs, c1, e.ite(tto, c1, tick));
    const ExprId si_sl = e.ite(il_cs, t_il, c0);

    const ExprId in_init = e.eq_const(hs, 0);
    const ExprId in_listen = e.eq_const(hs, 1);
    const ExprId in_sp = e.lor(e.eq_const(hs, 2), prot);
    const ExprId in_tent = e.eq_const(hs, 3);
    const ExprId in_sil = e.eq_const(hs, 4);
    auto sel = [&](ExprId ini, ExprId li, ExprId sp, ExprId te, ExprId si,
                   ExprId act) {
      return e.ite(in_init, ini,
                   e.ite(in_listen, li,
                         e.ite(in_sp, sp, e.ite(in_tent, te, e.ite(in_sil, si, act)))));
    };
    return {sel(c1, l_st, sp_st, te_st, si_st, c6),
            sel(c1, l_ct, sp_ct, te_ct, si_ct, c0),
            sel(c0, l_sl, sp_sl, te_sl, si_sl, s_exp)};
  };

  auto stay_guard = [&](int h) {
    return e.land(e.eq_const(e.var(hstate_[h]), 0),
                  e.lt_const(e.var(hcounter_[h]), hub_init_window_for(cfg_, h)));
  };
  auto stay_next = [&](int h) -> std::array<ExprId, 3> {
    return {zero, e.add_mod(e.var(hcounter_[h]), 1, hub_counter_dom_), zero};
  };

  // Faulty-hub per-port deliveries of the selected source through the frozen
  // pattern (relay / noise-for-activity / quiet).
  auto faulty_assigns = [&](ExprId src) {
    std::vector<Assignment> assigns;
    for (int j = 0; j < n; ++j) {
      const ExprId pat = e.var(fh_pattern_[static_cast<std::size_t>(j)]);
      const ExprId val =
          e.ite(e.eq_const(pat, 0), src,
                e.ite(e.eq_const(pat, 1),
                      e.ite(e.eq_const(src, 0), zero, e.constant(1)), zero));
      assigns.push_back({fh_out_[static_cast<std::size_t>(j)], val});
    }
    return assigns;
  };

  // startup_time update (cluster.cpp startup_from). The node-dependent parts
  // read the phase-A results, which are exactly this phase's pre-state vars.
  const int bound = cfg_.timeliness_bound;
  ExprId node_target = -1;
  ExprId st_tail = -1;
  if (bound > 0) {
    std::vector<ExprId> actives;
    std::vector<ExprId> awake;
    for (int i = 0; i < n; ++i) {
      if (cfg_.node_is_faulty(i)) continue;
      const ExprId ns = e.var(nstate_[static_cast<std::size_t>(i)]);
      actives.push_back(e.eq_const(ns, 3));
      awake.push_back(e.lor(e.eq_const(ns, 1), e.eq_const(ns, 2)));
    }
    node_target = e.any(actives);
    std::vector<ExprId> pairs;
    for (std::size_t a = 0; a < awake.size(); ++a) {
      for (std::size_t b = a + 1; b < awake.size(); ++b) {
        pairs.push_back(e.land(awake[a], awake[b]));
      }
    }
    const ExprId awake2 = e.any(pairs);
    const ExprId stv = e.var(st_);
    st_tail = e.ite(e.eq_const(stv, 0), e.ite(awake2, e.constant(1), zero),
                    e.ite(e.ge_const(stv, bound + 1), e.constant(bound + 1),
                          e.add_mod(stv, 1, bound + 3)));
  }
  auto st_assign = [&](const std::array<ExprId, 3>& first_correct_next) {
    const ExprId stv = e.var(st_);
    ExprId target;
    if (cfg_.timeliness_target == TimelinessTarget::kFirstCorrectActive) {
      target = node_target;
    } else {
      const ExprId stx = first_correct_next[0];
      target = e.lor(e.eq_const(stx, 3), e.eq_const(stx, 6));
    }
    const ExprId done = e.constant(bound + 2);
    return Assignment{st_, e.ite(e.eq_const(stv, bound + 2), done,
                                 e.ite(target, done, st_tail))};
  };

  auto correct_hub_assigns = [&](int h, const std::array<ExprId, 3>& nx, ExprId d,
                                 std::vector<Assignment>& assigns) {
    assigns.push_back({hstate_[h], nx[0]});
    assigns.push_back({hcounter_[h], nx[1]});
    assigns.push_back({hslot_[h], nx[2]});
    assigns.push_back({hout_[h], d});
    for (const Assignment& a : lock_assigns[h]) assigns.push_back(a);
  };

  if (fh == ClusterConfig::kNone) {
    const int windows[2] = {hub_init_window_for(cfg_, 0), hub_init_window_for(cfg_, 1)};
    const int noarb[2] = {static_cast<int>(choices[0].size()) - 1,
                          static_cast<int>(choices[1].size()) - 1};
    for (int s0 = 0; s0 < (windows[0] > 1 ? 2 : 1); ++s0) {
      for (int s1 = 0; s1 < (windows[1] > 1 ? 2 : 1); ++s1) {
        for (std::size_t c0 = 0; c0 < choices[0].size(); ++c0) {
          if (s0 == 1 && static_cast<int>(c0) != noarb[0]) continue;
          for (std::size_t c1 = 0; c1 < choices[1].size(); ++c1) {
            if (s1 == 1 && static_cast<int>(c1) != noarb[1]) continue;
            const ExprId d0 = choices[0][c0].d;
            const ExprId d1 = choices[1][c1].d;
            const auto n0 = s0 != 0 ? stay_next(0) : hub_next(0, d0, d1);
            const auto n1 = s1 != 0 ? stay_next(1) : hub_next(1, d1, d0);
            std::vector<ExprId> guard{in_b, choices[0][c0].guard, choices[1][c1].guard};
            if (s0 != 0) guard.push_back(stay_guard(0));
            if (s1 != 0) guard.push_back(stay_guard(1));
            std::vector<Assignment> assigns;
            correct_hub_assigns(0, n0, d0, assigns);
            correct_hub_assigns(1, n1, d1, assigns);
            if (bound > 0) assigns.push_back(st_assign(n0));
            system_.add_command(g_hub_, e.all(guard), std::move(assigns));
          }
        }
      }
    }
    return;
  }

  // One faulty hub: its relay replays quiet, the correct hub's same-step
  // interlink, or one active port — and the correct hub's interlink input is
  // whatever the faulty hub selected.
  const int ch = 1 - fh;
  const int window = hub_init_window_for(cfg_, ch);
  const int noarb_c = static_cast<int>(choices[ch].size()) - 1;
  for (int s = 0; s < (window > 1 ? 2 : 1); ++s) {
    for (std::size_t cc = 0; cc < choices[ch].size(); ++cc) {
      if (s == 1 && static_cast<int>(cc) != noarb_c) continue;
      const ExprId d_corr = choices[ch][cc].d;
      for (int fc = 0; fc < n + 2; ++fc) {
        ExprId src = zero;
        ExprId fguard = -1;
        if (fc == 1) {
          src = d_corr;  // replay the other channel's traffic
        } else if (fc >= 2) {
          src = node_out_expr(fc - 2, fh);
          fguard = e.lnot(e.eq_const(src, 0));  // an *active* port
        }
        const auto nc = s != 0 ? stay_next(ch) : hub_next(ch, d_corr, src);
        std::vector<ExprId> guard{in_b, choices[ch][cc].guard};
        if (fguard != -1) guard.push_back(fguard);
        if (s != 0) guard.push_back(stay_guard(ch));
        std::vector<Assignment> assigns;
        correct_hub_assigns(ch, nc, d_corr, assigns);
        for (const Assignment& a : faulty_assigns(src)) assigns.push_back(a);
        if (bound > 0) assigns.push_back(st_assign(nc));
        system_.add_command(g_hub_, e.all(guard), std::move(assigns));
      }
    }
  }
}

ClusterState StarIr::decode(const std::vector<int>& valuation) const {
  TT_ASSERT(is_cluster_frame(valuation));
  ClusterState c;
  for (int i = 0; i < cfg_.n; ++i) {
    NodeVars& v = c.node[i];
    const auto iu = static_cast<std::size_t>(i);
    if (cfg_.node_is_faulty(i)) {
      v.state = static_cast<NodeState>(valuation[static_cast<std::size_t>(fstate_)]);
      v.counter = 0;
      v.pos = 0;
      v.big_bang = false;
    } else {
      v.state = static_cast<NodeState>(valuation[static_cast<std::size_t>(nstate_[iu])]);
      v.counter = static_cast<std::uint8_t>(valuation[static_cast<std::size_t>(ncounter_[iu])]);
      v.pos = static_cast<std::uint8_t>(valuation[static_cast<std::size_t>(npos_[iu])]);
      v.big_bang = valuation[static_cast<std::size_t>(nbb_[iu])] != 0;
    }
  }
  for (int h = 0; h < 2; ++h) {
    HubVars& v = c.hub[h];
    v = HubVars{};
    if (cfg_.hub_is_faulty(h)) {
      v.state = HubState::kFaulty;
      v.counter = 0;
      for (int j = 0; j < cfg_.n; ++j) {
        const auto ju = static_cast<std::size_t>(j);
        v.set_port_mode(j, static_cast<HubPortMode>(
                               valuation[static_cast<std::size_t>(fh_pattern_[ju])]));
        v.out_per_port[j] = frame_of(valuation[static_cast<std::size_t>(fh_out_[ju])]);
      }
    } else {
      v.state = static_cast<HubState>(valuation[static_cast<std::size_t>(hstate_[h])]);
      v.counter = static_cast<std::uint8_t>(valuation[static_cast<std::size_t>(hcounter_[h])]);
      v.slot_pos = static_cast<std::uint8_t>(valuation[static_cast<std::size_t>(hslot_[h])]);
      for (int j = 0; j < cfg_.n; ++j) {
        if (valuation[static_cast<std::size_t>(hlock_[h][static_cast<std::size_t>(j)])] != 0) {
          v.locks = static_cast<std::uint8_t>(v.locks | (1u << j));
        }
      }
      v.out = frame_of(valuation[static_cast<std::size_t>(hout_[h])]);
    }
  }
  c.startup_time =
      st_ != -1 ? static_cast<std::uint8_t>(valuation[static_cast<std::size_t>(st_)]) : 0;
  c.restarts_used = 0;
  return c;
}

}  // namespace tt::tta
