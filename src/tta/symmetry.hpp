// Symmetry/orbit reduction for the cluster model (DESIGN.md §3.6).
//
// The reduction maps every candidate state to a canonical orbit
// representative *before* the packed state reaches `hash_words`, so the
// hash-once pipeline — recent-seen cache, sharded interning, every explicit
// engine, and the BDD-set symbolic engines (which enumerate successors
// through the same `Cluster::successors`) — explores the quotient for free.
//
// An honest note on the group (the paper's cluster is *less* symmetric than
// it looks): full node-permutation symmetry is UNSOUND for this model. The
// startup algorithm deliberately staggers nodes by identity — per-node
// timeouts LT_TO[i] = 2n+i and CS_TO[i] = n+i, cs-frames carrying the
// sender's id, TDMA slot ownership (`pos == id` transmit rule), and per-port
// guardian locks all break it; even pure rotations shift the timeout ladder.
// tests/tta/symmetry_test.cpp demonstrates the non-commutation. What *is*
// exact — each component below is a strong bisimulation on the reachable
// graph, so verdicts, quotient counts and (re-concretized) counterexamples
// are preserved for every lemma:
//
//  C0  dead big-bang bit: with cfg.big_bang == false the per-node big_bang
//      flag is never read; canonicalize it to false.
//  C1  dead delivered frames: a stored hub output frame is consumed only by
//      `classify_reception`, which treats noise and ill-formed frames
//      exactly like quiet — so (a) any stored frame that is not a
//      well-formed cs/i-frame collapses to quiet, and (b) frames delivered
//      toward nodes that are not correct nodes in LISTEN/COLDSTART are
//      never read at all and collapse to quiet.
//  C2  faulty-hub pattern: with (a) above, a kNoise port mode is
//      behaviourally identical to kQuiet (both deliver nothing usable), and
//      every mode on the faulty *node's* port is dead (a faulty node never
//      reads its inputs) — 3^n frozen patterns shrink toward 2^n.
//  C3  channel swap: with no faulty hub the two channels are interchangeable
//      once both guardians have left INIT (the δ_init wake-up window is the
//      only hub asymmetry, and guardians never return to INIT, so
//      eligibility is absorbing). The orbit representative is the
//      lexicographically smaller of the packed state and its channel-swapped
//      image (hub variables exchanged, faulty-node lock state mirrored).
//  C4  dead faulty-node record: the Byzantine node's stored NodeVars are
//      never read — its next outputs and successor variables are recomputed
//      from the *hub* lock bits every step (step_core's fn_locks), and every
//      property skips the faulty node by configuration index — so the whole
//      per-node record collapses to the constant kFaulty.
//  C5  reception-class frame pairs: what a listener extracts from the two
//      delivered frames is classify_reception's outcome, which is symmetric
//      in the pair and forgets collision details — so the stored pair
//      collapses to its outcome's representative: (quiet, quiet), a single
//      usable frame always placed on channel 0, or one fixed collision pair
//      (any same-kind time-mismatch, of either kind, is THE collision; a
//      cs-frame losing against an i-frame vanishes). Under a faulty hub the
//      same collapse runs per port, holding the correct hub's shared
//      broadcast fixed.
//
// A separate, transition-only collapse rides along in FaultyNodeOutputs:
// through *correct* guardians all provably-faulty emissions of the Byzantine
// node (noise, masquerading cs-frames, foreign/ill-formed i-frames) are
// locked and relayed as noise identically, so one class representative per
// channel replaces the whole (2n+3)-element alphabet tail (~10x fewer
// enumerated transitions at fault degree 6).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tta/cluster.hpp"
#include "tta/config.hpp"
#include "tta/hub.hpp"
#include "tta/node.hpp"
#include "tta/types.hpp"

namespace tt::tta {

/// The canonicalization components C0-C3, precomputed per configuration.
/// Pure functions of (config, state); safe to share across threads.
class Canonicalizer {
 public:
  Canonicalizer() = default;
  explicit Canonicalizer(const ClusterConfig& cfg);

  /// C0 and C4 on the node array, plus the listener analysis C1/C5 depend
  /// on: `listener[i]` = node i is a correct node in LISTEN/COLDSTART (the
  /// only states in which a node reads its delivered frames next step).
  void canonicalize_nodes(NodeVars* nodes, bool listener[], bool& any_listener) const;

  /// C1/C5 (+ C2 for a faulty hub) on the delivered-frame pair, given the
  /// listener analysis of the *same* state's nodes. Joint over both hubs
  /// because the reception-class collapse is a property of the pair.
  void canonicalize_hubs(HubVars& h0, HubVars& h1, const bool listener[],
                         bool any_listener) const;

  /// All of C0-C2, C4, C5 on an unpacked state, in place (test/oracle entry
  /// point; the hot path uses the split functions above).
  void canonicalize_vars(ClusterState& c) const;

  /// C3 is admissible for this configuration at all (no faulty hub, and no
  /// hub-identity-dependent timeliness target).
  [[nodiscard]] bool swap_allowed() const noexcept { return swap_allowed_; }

  /// C3 is applicable to this particular state: both guardians past INIT
  /// (the wake-up window is the only hub asymmetry; absorbing).
  [[nodiscard]] static bool swap_eligible(const HubVars& h0, const HubVars& h1) noexcept {
    return h0.state != HubState::kInit && h1.state != HubState::kInit;
  }

  /// Applies the channel-swap group element: exchanges the hub variables and
  /// mirrors the faulty node's per-channel lock state. Note that on a
  /// *canonicalized* state, C5's pair representative is an unordered-pair
  /// invariant, so the canonical form of the swapped image keeps the frame
  /// fields in place while state/counter/slot/locks exchange channels.
  void swap_channels(ClusterState& c) const;

  /// Lock-state mirror under channel swap (kFaultyLock0 <-> kFaultyLock1).
  [[nodiscard]] static NodeState swap_node_state(NodeState s) noexcept {
    if (s == NodeState::kFaultyLock0) return NodeState::kFaultyLock1;
    if (s == NodeState::kFaultyLock1) return NodeState::kFaultyLock0;
    return s;
  }

 private:
  ClusterConfig cfg_;
  bool swap_allowed_ = false;
};

/// A concretized counterexample over the *raw* (unreduced) transition
/// relation; `loop_start` is remapped when lasso unrolling extends the trace.
struct ConcreteTrace {
  std::vector<Cluster::State> trace;
  std::size_t loop_start = 0;
};

/// Re-concretizes a quotient counterexample produced under `mode`: a trace
/// of the raw cluster whose i-th state reduces to quotient[i] (edge-by-edge,
/// so mc::validate_lasso / validate_deadlock_path replay passes against the
/// raw model). Because every reduction component is a bisimulation, a
/// concrete witness exists from *any* representative; the deterministic
/// replay picks the first matching successor. Under a partial-order mode the
/// raw walk and the quotient may disagree pointwise for a bounded window —
/// the clamp raises LISTEN counters the raw path has not caught up with
/// until the guaranteed broadcast resets both — so the walk keeps a small
/// frontier of counter-dominated candidates and re-synchronizes on the first
/// exact match; endpoints (the violation state, every lasso lap entry) are
/// always exact. With `initial_root` the stem is anchored at a raw initial
/// state whose image is quotient[0]; otherwise (sequential AG AF stems) the
/// representative itself — a legitimate state of the raw model — roots the
/// trace. With `has_loop` the quotient cycle is unrolled until a concrete
/// lap-entry state repeats (image classes are finite, so this terminates),
/// and `loop_start` is remapped accordingly.
[[nodiscard]] ConcreteTrace concretize_trace(const Cluster& raw, Reduction mode,
                                             const std::vector<Cluster::State>& quotient,
                                             std::size_t loop_start, bool has_loop,
                                             bool initial_root);

}  // namespace tt::tta
