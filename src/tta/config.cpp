#include "tta/config.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/table.hpp"

namespace tt::tta {

int ClusterConfig::max_count() const noexcept {
  // Large enough for every timed wait in the model: listen timeouts (< 3n),
  // init windows, and the timeliness counter cap.
  const int biggest_wait = std::max({3 * n, init_window + 1, hub_init_window + 1,
                                     timeliness_bound + 2, 2 * n + 1});
  return biggest_wait;
}

void ClusterConfig::validate() const {
  TT_REQUIRE(n >= 2 && n <= 8, "cluster size n must be in [2, 8]");
  TT_REQUIRE(faulty_node == kNone || (faulty_node >= 0 && faulty_node < n),
             "faulty_node out of range");
  TT_REQUIRE(fault_degree >= 1 && fault_degree <= 6, "fault_degree must be in [1, 6]");
  TT_REQUIRE(faulty_hub == kNone || faulty_hub == 0 || faulty_hub == 1,
             "faulty_hub must be 0, 1, or kNone");
  TT_REQUIRE(!(faulty_node != kNone && faulty_hub != kNone),
             "single-failure hypothesis: at most one faulty component");
  TT_REQUIRE(init_window >= 1 && init_window <= 64, "init_window must be in [1, 64]");
  TT_REQUIRE(hub_init_window >= 1 && hub_init_window <= 64,
             "hub_init_window must be in [1, 64]");
  TT_REQUIRE(timeliness_bound >= 0 && timeliness_bound <= 255,
             "timeliness_bound must be in [0, 255]");
  TT_REQUIRE(transient_restarts >= 0 && transient_restarts <= 3,
             "transient_restarts must be in [0, 3]");
}

std::string ClusterConfig::summary() const {
  std::string s = strfmt("n=%d degree=%d init=%d hub_init=%d", n, fault_degree, init_window,
                         hub_init_window);
  if (faulty_node != kNone) s += strfmt(" faulty_node=%d", faulty_node);
  if (faulty_hub != kNone) s += strfmt(" faulty_hub=%d", faulty_hub);
  s += feedback ? " feedback=on" : " feedback=off";
  s += big_bang ? " bigbang=on" : " bigbang=off";
  if (timeliness_bound > 0) s += strfmt(" bound=%d", timeliness_bound);
  return s;
}

}  // namespace tt::tta
