#include "tta/symmetry.hpp"

#include <utility>

#include "support/assert.hpp"
#include "tta/faulty_node.hpp"

namespace tt::tta {

namespace {

/// The full reception outcome C5 must preserve.
bool same_reception(const NodeReception& a, const NodeReception& b) {
  return a.i_frame == b.i_frame && a.cs_frame == b.cs_frame && a.collision == b.collision &&
         a.time == b.time;
}

}  // namespace

Canonicalizer::Canonicalizer(const ClusterConfig& cfg) : cfg_(cfg) {
  // C3 admissibility. A faulty hub pins channel identity (the fault lives on
  // one channel), and the kCorrectHubSynced timeliness target names "the
  // first correct hub" by index — both break the swap globally. The δ_init
  // wake-up asymmetry (hub 0 is the delayed guardian) is handled per state
  // by swap_eligible: it only exists while a hub is still in INIT.
  swap_allowed_ = cfg_.faulty_hub == ClusterConfig::kNone &&
                  !(cfg_.timeliness_bound > 0 &&
                    cfg_.timeliness_target == TimelinessTarget::kCorrectHubSynced);
}

void Canonicalizer::canonicalize_nodes(NodeVars* nodes, bool listener[],
                                       bool& any_listener) const {
  any_listener = false;
  for (int i = 0; i < cfg_.n; ++i) {
    if (!cfg_.big_bang) nodes[i].big_bang = false;  // C0: bit never read
    const bool l = !cfg_.node_is_faulty(i) && (nodes[i].state == NodeState::kListen ||
                                               nodes[i].state == NodeState::kColdstart);
    listener[i] = l;
    any_listener = any_listener || l;
  }
  // C4: the Byzantine node's stored record is write-only — step_core
  // recomputes its successor variables and admitted output pairs from the
  // *hub* lock bits every step, and every property skips it by
  // configuration index — so the record collapses to the lock-free constant.
  if (cfg_.faulty_node != ClusterConfig::kNone) {
    nodes[cfg_.faulty_node] = faulty_node_vars(cfg_, 0);
  }
}

void Canonicalizer::canonicalize_hubs(HubVars& h0, HubVars& h1, const bool listener[],
                                      bool any_listener) const {
  if (cfg_.faulty_hub == ClusterConfig::kNone) {
    // C1/C5 on the broadcast pair: stored frames are consumed only by
    // classify_reception — symmetric in the pair, blind to collision
    // details, and only run by correct nodes in LISTEN/COLDSTART — so the
    // pair collapses to its reception outcome's fixed representative.
    if (any_listener) {
      const NodeReception r = classify_reception(h0.out, h1.out);
      if (r.collision) {  // any same-kind time-mismatch, of either kind
        h0.out = Frame::cs(0);
        h1.out = Frame::cs(1);
        return;
      }
      if (r.i_frame) {  // a cs-frame losing against an i-frame vanishes
        h0.out = Frame::i(r.time);
        h1.out = Frame::quiet();
        return;
      }
      if (r.cs_frame) {
        h0.out = Frame::cs(r.time);
        h1.out = Frame::quiet();
        return;
      }
    }
    h0.out = Frame::quiet();
    h1.out = Frame::quiet();
    return;
  }

  HubVars& cv = cfg_.faulty_hub == 0 ? h1 : h0;  // the correct hub
  HubVars& fv = cfg_.faulty_hub == 0 ? h0 : h1;  // the faulty hub
  // C1 on the correct hub's shared broadcast; it cannot be rewritten per
  // receiver, so only the unusable/unread collapse applies.
  if (!any_listener || !(cv.out.is_cs() || cv.out.is_i())) cv.out = Frame::quiet();
  for (int j = 0; j < cfg_.n; ++j) {
    Frame& f = fv.out_per_port[j];
    if (!listener[j]) {
      f = Frame::quiet();  // C1: never read
    } else {
      // C5 per port, holding the shared broadcast fixed: replace the
      // delivered frame by the canonical one yielding the same reception
      // outcome at node j (subsumes C1's noise/ill-formed collapse).
      const NodeReception r = classify_reception(f, cv.out);
      if (same_reception(r, classify_reception(Frame::quiet(), cv.out))) {
        f = Frame::quiet();
      } else if (r.collision) {
        // Collisions are same-kind time-mismatches against the broadcast
        // (cross-kind pairs resolve in the i-frame's favour); any
        // mismatching slot collides, so shift the broadcast's by one.
        const auto t = static_cast<std::uint8_t>((cv.out.time + 1) % cfg_.n);
        f = cv.out.is_cs() ? Frame::cs(t) : Frame::i(t);
      } else if (r.i_frame) {
        f = Frame::i(r.time);
      } else {
        f = Frame::cs(r.time);
      }
    }
    // C2 on the frozen pattern: a kNoise port delivers noise, which every
    // receiver treats exactly like kQuiet's silence (and C1/C5 store both
    // as quiet); the faulty node's own port is never read at all.
    if (fv.port_mode(j) == HubPortMode::kNoise || cfg_.node_is_faulty(j)) {
      fv.set_port_mode(j, HubPortMode::kQuiet);
    }
  }
}

void Canonicalizer::canonicalize_vars(ClusterState& c) const {
  bool listener[kMaxNodes];
  bool any_listener = false;
  canonicalize_nodes(c.node, listener, any_listener);
  canonicalize_hubs(c.hub[0], c.hub[1], listener, any_listener);
}

void Canonicalizer::swap_channels(ClusterState& c) const {
  std::swap(c.hub[0], c.hub[1]);
  if (cfg_.faulty_node != ClusterConfig::kNone) {
    NodeVars& v = c.node[cfg_.faulty_node];
    v.state = swap_node_state(v.state);
  }
}

ConcreteTrace concretize_trace(const Cluster& raw, const std::vector<Cluster::State>& quotient,
                               std::size_t loop_start, bool has_loop, bool initial_root) {
  ConcreteTrace out;
  out.loop_start = loop_start;
  if (quotient.empty()) return out;
  TT_REQUIRE(raw.reduction() == Reduction::kNone, "concretization needs the raw cluster");

  Cluster::State cur{};
  if (initial_root) {
    bool found = false;
    raw.initial_states([&](const Cluster::State& s) {
      if (!found && raw.canonicalize(s) == quotient.front()) {
        cur = s;
        found = true;
      }
    });
    TT_REQUIRE(found, "no raw initial state in the quotient root's orbit");
  } else {
    // Canonical representatives are themselves legitimate states of the raw
    // model, so a stem that need not start at an initial state (sequential
    // AG AF roots anywhere in the reachable set) can start at the
    // representative directly.
    cur = quotient.front();
  }
  out.trace.push_back(cur);

  // Each canonicalization component is a bisimulation, so from any concrete
  // state in quotient[i]'s orbit some raw successor lands in quotient[i+1]'s
  // orbit; deterministic first-match keeps replays reproducible.
  auto step_into = [&](const Cluster::State& from, const Cluster::State& target,
                       Cluster::State& next) {
    bool found = false;
    raw.successors(from, [&](const Cluster::State& t) {
      if (!found && raw.canonicalize(t) == target) {
        next = t;
        found = true;
      }
    });
    return found;
  };

  for (std::size_t i = 1; i < quotient.size(); ++i) {
    Cluster::State next{};
    TT_REQUIRE(step_into(cur, quotient[i], next), "quotient edge has no concrete witness");
    out.trace.push_back(next);
    cur = next;
  }
  if (!has_loop) return out;

  // Lasso: the quotient cycle closes back to quotient[loop_start], but the
  // concrete walk may land on a different member of that orbit each lap.
  // Unroll whole laps, recording the concrete lap-entry state; the walk is
  // deterministic, so as soon as an entry repeats, the concrete cycle closes
  // at that earlier lap. Orbits are finite, so this terminates.
  TT_REQUIRE(loop_start < quotient.size(), "loop start outside the trace");
  const std::size_t cycle_len = quotient.size() - loop_start;
  std::vector<Cluster::State> entries = {out.trace[loop_start]};
  while (true) {
    Cluster::State next{};
    TT_REQUIRE(step_into(out.trace.back(), quotient[loop_start], next),
               "quotient cycle does not close concretely");
    for (std::size_t e = 0; e < entries.size(); ++e) {
      if (entries[e] == next) {
        out.loop_start = loop_start + e * cycle_len;
        return out;
      }
    }
    entries.push_back(next);
    out.trace.push_back(next);
    cur = next;
    for (std::size_t j = 1; j < cycle_len; ++j) {
      Cluster::State nx{};
      TT_REQUIRE(step_into(cur, quotient[loop_start + j], nx),
                 "quotient edge has no concrete witness in the unrolled lap");
      out.trace.push_back(nx);
      cur = nx;
    }
  }
}

}  // namespace tt::tta
