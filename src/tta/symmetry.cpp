#include "tta/symmetry.hpp"

#include <utility>

#include "support/assert.hpp"
#include "tta/faulty_node.hpp"

namespace tt::tta {

namespace {

/// The full reception outcome C5 must preserve.
bool same_reception(const NodeReception& a, const NodeReception& b) {
  return a.i_frame == b.i_frame && a.cs_frame == b.cs_frame && a.collision == b.collision &&
         a.time == b.time;
}

}  // namespace

Canonicalizer::Canonicalizer(const ClusterConfig& cfg) : cfg_(cfg) {
  // C3 admissibility. A faulty hub pins channel identity (the fault lives on
  // one channel), and the kCorrectHubSynced timeliness target names "the
  // first correct hub" by index — both break the swap globally. The δ_init
  // wake-up asymmetry (hub 0 is the delayed guardian) is handled per state
  // by swap_eligible: it only exists while a hub is still in INIT.
  swap_allowed_ = cfg_.faulty_hub == ClusterConfig::kNone &&
                  !(cfg_.timeliness_bound > 0 &&
                    cfg_.timeliness_target == TimelinessTarget::kCorrectHubSynced);
}

void Canonicalizer::canonicalize_nodes(NodeVars* nodes, bool listener[],
                                       bool& any_listener) const {
  any_listener = false;
  for (int i = 0; i < cfg_.n; ++i) {
    if (!cfg_.big_bang) nodes[i].big_bang = false;  // C0: bit never read
    const bool l = !cfg_.node_is_faulty(i) && (nodes[i].state == NodeState::kListen ||
                                               nodes[i].state == NodeState::kColdstart);
    listener[i] = l;
    any_listener = any_listener || l;
  }
  // C4: the Byzantine node's stored record is write-only — step_core
  // recomputes its successor variables and admitted output pairs from the
  // *hub* lock bits every step, and every property skips it by
  // configuration index — so the record collapses to the lock-free constant.
  if (cfg_.faulty_node != ClusterConfig::kNone) {
    nodes[cfg_.faulty_node] = faulty_node_vars(cfg_, 0);
  }
}

void Canonicalizer::canonicalize_hubs(HubVars& h0, HubVars& h1, const bool listener[],
                                      bool any_listener) const {
  if (cfg_.faulty_hub == ClusterConfig::kNone) {
    // C1/C5 on the broadcast pair: stored frames are consumed only by
    // classify_reception — symmetric in the pair, blind to collision
    // details, and only run by correct nodes in LISTEN/COLDSTART — so the
    // pair collapses to its reception outcome's fixed representative.
    if (any_listener) {
      const NodeReception r = classify_reception(h0.out, h1.out);
      if (r.collision) {  // any same-kind time-mismatch, of either kind
        h0.out = Frame::cs(0);
        h1.out = Frame::cs(1);
        return;
      }
      if (r.i_frame) {  // a cs-frame losing against an i-frame vanishes
        h0.out = Frame::i(r.time);
        h1.out = Frame::quiet();
        return;
      }
      if (r.cs_frame) {
        h0.out = Frame::cs(r.time);
        h1.out = Frame::quiet();
        return;
      }
    }
    h0.out = Frame::quiet();
    h1.out = Frame::quiet();
    return;
  }

  HubVars& cv = cfg_.faulty_hub == 0 ? h1 : h0;  // the correct hub
  HubVars& fv = cfg_.faulty_hub == 0 ? h0 : h1;  // the faulty hub
  // C1 on the correct hub's shared broadcast; it cannot be rewritten per
  // receiver, so only the unusable/unread collapse applies.
  if (!any_listener || !(cv.out.is_cs() || cv.out.is_i())) cv.out = Frame::quiet();
  for (int j = 0; j < cfg_.n; ++j) {
    Frame& f = fv.out_per_port[j];
    if (!listener[j]) {
      f = Frame::quiet();  // C1: never read
    } else {
      // C5 per port, holding the shared broadcast fixed: replace the
      // delivered frame by the canonical one yielding the same reception
      // outcome at node j (subsumes C1's noise/ill-formed collapse).
      const NodeReception r = classify_reception(f, cv.out);
      if (same_reception(r, classify_reception(Frame::quiet(), cv.out))) {
        f = Frame::quiet();
      } else if (r.collision) {
        // Collisions are same-kind time-mismatches against the broadcast
        // (cross-kind pairs resolve in the i-frame's favour); any
        // mismatching slot collides, so shift the broadcast's by one.
        const auto t = static_cast<std::uint8_t>((cv.out.time + 1) % cfg_.n);
        f = cv.out.is_cs() ? Frame::cs(t) : Frame::i(t);
      } else if (r.i_frame) {
        f = Frame::i(r.time);
      } else {
        f = Frame::cs(r.time);
      }
    }
    // C2 on the frozen pattern: a kNoise port delivers noise, which every
    // receiver treats exactly like kQuiet's silence (and C1/C5 store both
    // as quiet); the faulty node's own port is never read at all.
    if (fv.port_mode(j) == HubPortMode::kNoise || cfg_.node_is_faulty(j)) {
      fv.set_port_mode(j, HubPortMode::kQuiet);
    }
  }
}

void Canonicalizer::canonicalize_vars(ClusterState& c) const {
  bool listener[kMaxNodes];
  bool any_listener = false;
  canonicalize_nodes(c.node, listener, any_listener);
  canonicalize_hubs(c.hub[0], c.hub[1], listener, any_listener);
}

void Canonicalizer::swap_channels(ClusterState& c) const {
  std::swap(c.hub[0], c.hub[1]);
  if (cfg_.faulty_node != ClusterConfig::kNone) {
    NodeVars& v = c.node[cfg_.faulty_node];
    v.state = swap_node_state(v.state);
  }
}

namespace {

/// Concrete walker through the quotient trace. For the symmetry-only
/// quotient every step has an exact witness (strong bisimulation, matched
/// pointwise). Under a partial-order mode the clamp can outrun the raw walk
/// for a bounded window: the quotient representative carries LISTEN counters
/// raised to the horizon while the raw path still holds the original slack —
/// until the guaranteed broadcast resets both sides to identical counters.
/// The walker therefore keeps a small frontier of *counter-dominated*
/// candidates (equal everywhere except correct LISTEN counters, raw <=
/// quotient) and collapses it to the first exact match; every consumer-
/// visible anchor (trace end, lasso lap entries) is required to be exact.
class ConcreteWalker {
 public:
  ConcreteWalker(const Cluster& raw, Reduction mode)
      : raw_(raw), red_(raw.config(), mode), canon_(raw.config()) {}

  const Cluster& reduced() const { return red_; }

  /// Starts a walk at a single concrete state.
  void reset(const Cluster::State& s) {
    arena_.clear();
    arena_.push_back({s, -1, 0});
    frontier_ = {0};
  }

  /// Advances one quotient edge. Returns false when no candidate has any
  /// (exact or dominated) witness.
  bool advance(const Cluster::State& target) {
    // Exact pass first: the common case, and the resynchronization point —
    // deterministic first-match keeps replays reproducible.
    for (const int fi : frontier_) {
      int found = -1;
      raw_.successors(arena_[static_cast<std::size_t>(fi)].s, [&](const Cluster::State& t) {
        if (found < 0 && red_.reduce(t) == target) {
          arena_.push_back({t, fi, 0});
          found = static_cast<int>(arena_.size()) - 1;
        }
      });
      if (found >= 0) {
        frontier_ = {found};
        return true;
      }
    }
    // Divergence window: keep dominated candidates, bounded in width and
    // run length (the clamp certificate guarantees reconvergence within a
    // delivery round; the bounds only guard against pathological blowup).
    std::vector<int> next;
    for (const int fi : frontier_) {
      const int run = arena_[static_cast<std::size_t>(fi)].diverged;
      if (run >= kMaxDivergence) continue;
      raw_.successors(arena_[static_cast<std::size_t>(fi)].s, [&](const Cluster::State& t) {
        if (next.size() < kMaxCandidates && dominated(t, target)) {
          arena_.push_back({t, fi, run + 1});
          next.push_back(static_cast<int>(arena_.size()) - 1);
        }
      });
    }
    if (next.empty()) return false;
    frontier_ = std::move(next);
    return true;
  }

  /// The walk is currently at a single exact state.
  [[nodiscard]] bool exact() const {
    return frontier_.size() == 1 && arena_[static_cast<std::size_t>(frontier_[0])].diverged == 0;
  }

  [[nodiscard]] const Cluster::State& head() const {
    return arena_[static_cast<std::size_t>(frontier_[0])].s;
  }

  /// Reconstructs the concrete states of the last `steps` edges (oldest
  /// first) from the current (single) head.
  void path_tail(std::size_t steps, std::vector<Cluster::State>& out) const {
    TT_ASSERT(frontier_.size() == 1);
    std::vector<Cluster::State> rev;
    int at = frontier_[0];
    for (std::size_t k = 0; k < steps; ++k) {
      const PathNode& nd = arena_[static_cast<std::size_t>(at)];
      rev.push_back(nd.s);
      at = nd.parent;
      TT_ASSERT(at >= 0 || k + 1 == steps);
    }
    out.insert(out.end(), rev.rbegin(), rev.rend());
  }

 private:
  static constexpr int kMaxDivergence = 4;
  static constexpr std::size_t kMaxCandidates = 64;

  struct PathNode {
    Cluster::State s;
    int parent;
    int diverged;  ///< consecutive non-exact steps up to this node
  };

  /// `t`'s image equals `target` everywhere except correct LISTEN counters,
  /// which it may undercut (the raw slack the clamp skipped ahead of).
  bool dominated(const Cluster::State& t, const Cluster::State& target) const {
    const ClusterState img = raw_.unpack(red_.reduce(t));
    const ClusterState tgt = raw_.unpack(target);
    if (dominated_vars(img, tgt)) return true;
    if (!canon_.swap_allowed()) return false;
    // The differing counters can flip the swap minimum between the image
    // and the target; try the mirrored orientation too.
    ClusterState mir = img;
    canon_.swap_channels(mir);
    std::swap(mir.hub[0].out, mir.hub[1].out);
    return dominated_vars(mir, tgt);
  }

  bool dominated_vars(const ClusterState& a, const ClusterState& b) const {
    const ClusterConfig& cfg = raw_.config();
    for (int i = 0; i < cfg.n; ++i) {
      const NodeVars& x = a.node[i];
      const NodeVars& y = b.node[i];
      if (x.state != y.state || x.pos != y.pos || x.big_bang != y.big_bang) return false;
      const bool slack_ok = !cfg.node_is_faulty(i) && x.state == NodeState::kListen &&
                            x.counter <= y.counter;
      if (x.counter != y.counter && !slack_ok) return false;
    }
    for (int h = 0; h < 2; ++h) {
      const HubVars& x = a.hub[h];
      const HubVars& y = b.hub[h];
      if (x.state != y.state || x.counter != y.counter || x.slot_pos != y.slot_pos ||
          x.locks != y.locks || x.pattern != y.pattern || !(x.out == y.out)) {
        return false;
      }
      for (int j = 0; j < cfg.n; ++j) {
        if (!(x.out_per_port[j] == y.out_per_port[j])) return false;
      }
    }
    return a.startup_time == b.startup_time && a.restarts_used == b.restarts_used;
  }

  const Cluster& raw_;
  Cluster red_;
  Canonicalizer canon_;
  std::vector<PathNode> arena_;
  std::vector<int> frontier_;
};

}  // namespace

ConcreteTrace concretize_trace(const Cluster& raw, Reduction mode,
                               const std::vector<Cluster::State>& quotient,
                               std::size_t loop_start, bool has_loop, bool initial_root) {
  ConcreteTrace out;
  out.loop_start = loop_start;
  if (quotient.empty()) return out;
  TT_REQUIRE(raw.reduction() == Reduction::kNone, "concretization needs the raw cluster");

  ConcreteWalker walker(raw, mode);
  Cluster::State root{};
  if (initial_root) {
    bool found = false;
    raw.initial_states([&](const Cluster::State& s) {
      if (!found && walker.reduced().reduce(s) == quotient.front()) {
        root = s;
        found = true;
      }
    });
    TT_REQUIRE(found, "no raw initial state in the quotient root's orbit");
  } else {
    // Representatives are themselves legitimate states of the raw model, so
    // a stem that need not start at an initial state (sequential AG AF roots
    // anywhere in the reachable set) can start at the representative.
    root = quotient.front();
  }
  walker.reset(root);
  out.trace.push_back(root);

  for (std::size_t i = 1; i < quotient.size(); ++i) {
    TT_REQUIRE(walker.advance(quotient[i]), "quotient edge has no concrete witness");
    if (walker.exact()) {
      // Flush everything since the last exact anchor (no-op in the common
      // pointwise-exact walk).
      walker.path_tail(i - (out.trace.size() - 1), out.trace);
    }
  }
  TT_REQUIRE(out.trace.size() == quotient.size(),
             "concrete walk did not resynchronize by the end of the stem");
  if (!has_loop) return out;

  // Lasso: the quotient cycle closes back to quotient[loop_start], but the
  // concrete walk may land on a different member of that image class each
  // lap. Unroll whole laps, recording the concrete lap-entry state; the walk
  // is deterministic, so as soon as an entry repeats, the concrete cycle
  // closes at that earlier lap. Image classes are finite, so this
  // terminates.
  TT_REQUIRE(loop_start < quotient.size(), "loop start outside the trace");
  const std::size_t cycle_len = quotient.size() - loop_start;
  std::vector<Cluster::State> entries = {out.trace[loop_start]};
  while (true) {
    walker.reset(out.trace.back());
    TT_REQUIRE(walker.advance(quotient[loop_start]) && walker.exact(),
               "quotient cycle does not close concretely");
    const Cluster::State next = walker.head();
    for (std::size_t e = 0; e < entries.size(); ++e) {
      if (entries[e] == next) {
        out.loop_start = loop_start + e * cycle_len;
        return out;
      }
    }
    entries.push_back(next);
    out.trace.push_back(next);
    std::size_t flushed = 1;
    for (std::size_t j = 1; j < cycle_len; ++j) {
      TT_REQUIRE(walker.advance(quotient[loop_start + j]),
                 "quotient edge has no concrete witness in the unrolled lap");
      if (walker.exact()) {
        walker.path_tail(j + 1 - flushed, out.trace);
        flushed = j + 1;
      }
    }
    TT_REQUIRE(flushed == cycle_len, "lap walk did not resynchronize before the next entry");
  }
}

}  // namespace tt::tta
