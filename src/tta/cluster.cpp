#include "tta/cluster.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/bitpack.hpp"
#include "tta/independence.hpp"
#include "tta/symmetry.hpp"

namespace tt::tta {

Cluster::Cluster(ClusterConfig cfg, Reduction reduction) : cfg_(cfg), reduction_(reduction) {
  cfg_.validate();
  // Under symmetry reduction the faulty node's provably-faulty emissions are
  // collapsed to one class representative per channel — exact only when both
  // guardians are correct (a faulty hub forwards raw frames verbatim, so
  // receivers could distinguish class members). See FaultyNodeOutputs.
  const bool collapse = reduction_has_symmetry(reduction_) &&
                        cfg_.faulty_hub == ClusterConfig::kNone;
  faulty_outputs_ = FaultyNodeOutputs(cfg_, collapse);

  counter_bits_ = bits_for(static_cast<std::uint64_t>(cfg_.max_count()) + 1);
  pos_bits_ = bits_for(static_cast<std::uint64_t>(cfg_.n));
  frame_bits_ = 2 + pos_bits_ + 1;
  st_bits_ = cfg_.timeliness_bound > 0
                 ? bits_for(static_cast<std::uint64_t>(cfg_.timeliness_bound) + 3)
                 : 0;
  restart_bits_ = cfg_.transient_restarts > 0
                      ? bits_for(static_cast<std::uint64_t>(cfg_.transient_restarts) + 1)
                      : 0;

  int bits = 0;
  bits += cfg_.n * (3 + counter_bits_ + pos_bits_ + 1);
  node_bits_ = bits;
  for (int h = 0; h < 2; ++h) {
    if (cfg_.hub_is_faulty(h)) {
      bits += 3 + 2 * cfg_.n + cfg_.n * frame_bits_;
    } else {
      bits += 3 + counter_bits_ + pos_bits_ + cfg_.n + frame_bits_;
    }
  }
  bits += st_bits_;
  bits += restart_bits_;
  TT_REQUIRE(bits <= static_cast<int>(kWords * 64), "state exceeds packed capacity");
  state_bits_ = bits;
}

void Cluster::pack_node_prefix(State& s, const NodeVars* nodes) const {
  BitWriter w(s.data(), kWords);
  for (int i = 0; i < cfg_.n; ++i) {
    const NodeVars& v = nodes[i];
    w.put(static_cast<std::uint64_t>(v.state), 3);
    w.put(v.counter, counter_bits_);
    w.put(v.pos, pos_bits_);
    w.put(v.big_bang ? 1 : 0, 1);
  }
  TT_ASSERT(w.bits_written() == node_bits_);
}

void Cluster::pack_hub_suffix(State& s, const HubVars& h0, const HubVars& h1,
                              std::uint8_t startup_time, std::uint8_t restarts_used) const {
  BitWriter w(s.data(), kWords, node_bits_);
  auto put_frame = [&](const Frame& f) {
    w.put_fast(static_cast<std::uint64_t>(f.kind), 2);
    w.put_fast(f.time, pos_bits_);
    w.put_fast(f.ok ? 1 : 0, 1);
  };
  const HubVars* hubs[2] = {&h0, &h1};
  for (int h = 0; h < 2; ++h) {
    const HubVars& v = *hubs[h];
    w.put_fast(static_cast<std::uint64_t>(v.state), 3);
    if (cfg_.hub_is_faulty(h)) {
      w.put_fast(v.pattern, 2 * cfg_.n);
      for (int j = 0; j < cfg_.n; ++j) put_frame(v.out_per_port[j]);
    } else {
      w.put_fast(v.counter, counter_bits_);
      w.put_fast(v.slot_pos, pos_bits_);
      w.put_fast(v.locks, cfg_.n);
      put_frame(v.out);
    }
  }
  if (st_bits_ > 0) w.put_fast(startup_time, st_bits_);
  if (restart_bits_ > 0) w.put_fast(restarts_used, restart_bits_);
  TT_ASSERT(w.bits_written() == state_bits_);
}

Cluster::State Cluster::pack(const ClusterState& c) const {
  State s{};
  pack_node_prefix(s, c.node);
  pack_hub_suffix(s, c.hub[0], c.hub[1], c.startup_time, c.restarts_used);
  return s;
}

ClusterState Cluster::unpack(const State& s) const {
  ClusterState c;
  BitReader r(s.data(), kWords);
  auto get_frame = [&]() {
    Frame f;
    f.kind = static_cast<MsgKind>(r.get(2));
    f.time = static_cast<std::uint8_t>(r.get(pos_bits_));
    f.ok = r.get(1) != 0;
    return f;
  };
  for (int i = 0; i < cfg_.n; ++i) {
    NodeVars& v = c.node[i];
    v.state = static_cast<NodeState>(r.get(3));
    v.counter = static_cast<std::uint8_t>(r.get(counter_bits_));
    v.pos = static_cast<std::uint8_t>(r.get(pos_bits_));
    v.big_bang = r.get(1) != 0;
  }
  for (int h = 0; h < 2; ++h) {
    HubVars& v = c.hub[h];
    v = HubVars{};
    v.state = static_cast<HubState>(r.get(3));
    if (cfg_.hub_is_faulty(h)) {
      v.counter = 0;
      v.pattern = static_cast<std::uint16_t>(r.get(2 * cfg_.n));
      for (int j = 0; j < cfg_.n; ++j) v.out_per_port[j] = get_frame();
    } else {
      v.counter = static_cast<std::uint8_t>(r.get(counter_bits_));
      v.slot_pos = static_cast<std::uint8_t>(r.get(pos_bits_));
      v.locks = static_cast<std::uint8_t>(r.get(cfg_.n));
      v.out = get_frame();
    }
  }
  c.startup_time = st_bits_ > 0 ? static_cast<std::uint8_t>(r.get(st_bits_)) : 0;
  c.restarts_used = restart_bits_ > 0 ? static_cast<std::uint8_t>(r.get(restart_bits_)) : 0;
  TT_ASSERT(r.bits_read() == state_bits_);
  return c;
}

ClusterState Cluster::base_initial_state() const {
  ClusterState c;
  for (int i = 0; i < cfg_.n; ++i) {
    if (cfg_.node_is_faulty(i)) {
      c.node[i] = faulty_node_vars(cfg_, 0);
    } else {
      c.node[i] = NodeVars{};  // INIT, counter 1, big-bang armed
    }
  }
  for (int h = 0; h < 2; ++h) {
    c.hub[h] = HubVars{};
    if (cfg_.hub_is_faulty(h)) {
      c.hub[h].state = HubState::kFaulty;
      c.hub[h].counter = 0;
    }
  }
  c.startup_time = 0;
  return c;
}

void Cluster::initial_states(Emit emit) const {
  // The partial-order clamp is the identity on every initial state (no
  // correct node is in LISTEN yet, so there is no slack to clamp), so only
  // the symmetry component matters here and each emission stays a fixed
  // point of `reduce` in every mode.
  ClusterState c = base_initial_state();
  if (reduction_has_symmetry(reduction_)) {
    // Emit canonical representatives directly, so the emissions stay
    // pairwise distinct and the hash-once invariant (hash_ops ==
    // transitions + initial emissions) is preserved. The base state is
    // already canonical except for C0 (big-bang bits) and the faulty-hub
    // pattern dimension: C2 restricts each port to {kRelay, kQuiet}, with
    // the faulty node's own port pinned to kQuiet.
    const Canonicalizer canon(cfg_);
    canon.canonicalize_vars(c);
    std::uint64_t emitted = 0;
    if (cfg_.faulty_hub == ClusterConfig::kNone) {
      emit(pack(c));
      emitted = 1;
    } else {
      int free_ports[kMaxNodes];
      int free_count = 0;
      HubVars& fh = c.hub[cfg_.faulty_hub];
      for (int j = 0; j < cfg_.n; ++j) {
        fh.set_port_mode(j, HubPortMode::kQuiet);
        if (!cfg_.node_is_faulty(j)) free_ports[free_count++] = j;
      }
      for (std::uint32_t bits = 0; bits < (1u << free_count); ++bits) {
        for (int k = 0; k < free_count; ++k) {
          fh.set_port_mode(free_ports[k], ((bits >> k) & 1u) != 0 ? HubPortMode::kRelay
                                                                  : HubPortMode::kQuiet);
        }
        emit(pack(c));
        ++emitted;
      }
    }
    canon_ops_.fetch_add(emitted, std::memory_order_relaxed);
    return;
  }
  if (cfg_.faulty_hub == ClusterConfig::kNone) {
    emit(pack(c));
    return;
  }
  const int total = pow3(cfg_.n);
  for (int p = 0; p < total; ++p) {
    HubVars& fh = c.hub[cfg_.faulty_hub];
    fh.pattern = 0;
    int rest = p;
    for (int j = 0; j < cfg_.n; ++j) {
      fh.set_port_mode(j, static_cast<HubPortMode>(rest % 3));
      rest /= 3;
    }
    emit(pack(c));
  }
}

namespace {

/// Sink for the generic (unpacked) consumers: materializes a full
/// ClusterState per emission — the pre-optimization behaviour, kept for the
/// trace printer and interactive examples.
struct UnpackSink {
  const ClusterConfig& cfg;
  Cluster::EmitUnpacked emit;
  const NodeVars* nodes = nullptr;

  void combo(const NodeVars* next_nodes) { nodes = next_nodes; }

  void successor(const HubVars& h0, const HubVars& h1, std::uint8_t startup_time,
                 std::uint8_t restarts_used) {
    ClusterState t;
    for (int i = 0; i < cfg.n; ++i) t.node[i] = nodes[i];
    t.hub[0] = h0;
    t.hub[1] = h1;
    t.startup_time = startup_time;
    t.restarts_used = restarts_used;
    emit(t);
  }
};

}  // namespace

void Cluster::successors(const State& s, Emit emit) const {
  // Prefix-sharing packer: the node fields occupy a fixed prefix of the bit
  // layout, and one node-choice combination is shared by every hub-phase
  // variant (at fault degree 6 the faulty node alone contributes ~(2n+3)^2
  // combinations, each usually with a single hub variant — but the prefix
  // serialization still amortizes the 4n per-node puts down to one memcpy of
  // kWords words per emission).
  struct PackSink {
    const Cluster& cl;
    Emit& emit;
    const PartialOrderReducer* por = nullptr;  ///< null = no por component
    State prefix{};
    NodeVars nodes[kMaxNodes] = {};
    PartialOrderReducer::ComboPlan plan = {};
    PorStats stats = {};

    void combo(const NodeVars* next_nodes) {
      prefix = State{};
      cl.pack_node_prefix(prefix, next_nodes);
      if (por != nullptr) {
        for (int i = 0; i < cl.cfg_.n; ++i) nodes[i] = next_nodes[i];
        por->prepare(nodes, plan);
      }
    }

    void successor(const HubVars& h0, const HubVars& h1, std::uint8_t startup_time,
                   std::uint8_t restarts_used) {
      if (por != nullptr) {
        int cap = 0;
        const auto o = por->decide(plan, h0, h1, restarts_used, cap);
        if (o == PartialOrderReducer::Outcome::kDeclined) {
          ++stats.proviso_fallbacks;
        } else {
          ++stats.ample_sets;
          if (o == PartialOrderReducer::Outcome::kClamped) {
            ++stats.pruned_combos;
            NodeVars clamped[kMaxNodes];
            for (int i = 0; i < cl.cfg_.n; ++i) clamped[i] = nodes[i];
            por->clamp(plan, cap, clamped);
            State t{};
            cl.pack_node_prefix(t, clamped);
            cl.pack_hub_suffix(t, h0, h1, startup_time, restarts_used);
            emit(t);
            return;
          }
        }
      }
      State s = prefix;
      cl.pack_hub_suffix(s, h0, h1, startup_time, restarts_used);
      emit(s);
    }
  };

  // Orbit-canonicalizing packer (DESIGN.md §3.6): same prefix-sharing shape,
  // but the node prefix is serialized *after* C0/C4 (which pin the faulty
  // node's record, making the prefix swap-invariant) and every successor's
  // delivered-frame pair passes through C1/C2/C5 before packing — so the
  // word-wise lexicographic minimum of the state and its swapped image is
  // what reaches hash_words, and the whole downstream pipeline (cache,
  // interning, engines) sees only orbit representatives.
  struct CanonPackSink {
    const Cluster& cl;
    const Canonicalizer& canon;
    Emit& emit;
    const PartialOrderReducer* por = nullptr;  ///< null = no por component
    State prefix{};
    NodeVars canon_nodes[kMaxNodes] = {};
    bool listener[kMaxNodes] = {};
    bool any_listener = false;
    bool swap_combo = false;
    std::uint64_t ops = 0;
    std::uint64_t swaps = 0;
    PartialOrderReducer::ComboPlan plan = {};
    PorStats stats = {};

    void combo(const NodeVars* nodes) {
      for (int i = 0; i < cl.cfg_.n; ++i) canon_nodes[i] = nodes[i];
      canon.canonicalize_nodes(canon_nodes, listener, any_listener);
      prefix = State{};
      cl.pack_node_prefix(prefix, canon_nodes);
      swap_combo = canon.swap_allowed();
      // The clamp plan reads the canonical node array, so the horizon
      // certificate and the emitted representative agree with what
      // Cluster::reduce computes for the same orbit.
      if (por != nullptr) por->prepare(canon_nodes, plan);
    }

    void successor(const HubVars& h0, const HubVars& h1, std::uint8_t startup_time,
                   std::uint8_t restarts_used) {
      ++ops;
      HubVars a = h0;
      HubVars b = h1;
      canon.canonicalize_hubs(a, b, listener, any_listener);
      const State* base = &prefix;
      State clamped_prefix;
      if (por != nullptr) {
        // Both swap images share the node prefix (C4 pins the faulty
        // record), and the horizon is channel-symmetric, so one decision
        // covers the pair and the swap minimum is taken over clamped images.
        int cap = 0;
        const auto o = por->decide(plan, a, b, restarts_used, cap);
        if (o == PartialOrderReducer::Outcome::kDeclined) {
          ++stats.proviso_fallbacks;
        } else {
          ++stats.ample_sets;
          if (o == PartialOrderReducer::Outcome::kClamped) {
            ++stats.pruned_combos;
            NodeVars clamped[kMaxNodes];
            for (int i = 0; i < cl.cfg_.n; ++i) clamped[i] = canon_nodes[i];
            por->clamp(plan, cap, clamped);
            clamped_prefix = State{};
            cl.pack_node_prefix(clamped_prefix, clamped);
            base = &clamped_prefix;
          }
        }
      }
      State norm = *base;
      cl.pack_hub_suffix(norm, a, b, startup_time, restarts_used);
      if (swap_combo && Canonicalizer::swap_eligible(a, b)) {
        // The canonical form of the swapped orbit image: C5's pair
        // representative is an unordered-pair invariant, so the frame
        // fields stay put while state/counter/slot/locks exchange channels.
        HubVars sa = b;
        HubVars sb = a;
        sa.out = a.out;
        sb.out = b.out;
        State sw = *base;
        cl.pack_hub_suffix(sw, sa, sb, startup_time, restarts_used);
        if (sw < norm) {
          ++swaps;
          emit(sw);
          return;
        }
      }
      emit(norm);
    }
  };

  const ClusterState c = unpack(s);
  const PartialOrderReducer reducer(cfg_);
  const PartialOrderReducer* por = reduction_has_por(reduction_) ? &reducer : nullptr;
  if (!reduction_has_symmetry(reduction_)) {
    PackSink sink{*this, emit, por};
    step_all(c, sink);
    if (por != nullptr) flush_por_stats(sink.stats);
    return;
  }
  const Canonicalizer canon(cfg_);
  CanonPackSink sink{*this, canon, emit, por};
  step_all(c, sink);
  canon_ops_.fetch_add(sink.ops, std::memory_order_relaxed);
  canon_swaps_.fetch_add(sink.swaps, std::memory_order_relaxed);
  if (por != nullptr) flush_por_stats(sink.stats);
}

void Cluster::flush_por_stats(const PorStats& stats) const {
  por_ample_.fetch_add(stats.ample_sets, std::memory_order_relaxed);
  por_pruned_.fetch_add(stats.pruned_combos, std::memory_order_relaxed);
  por_declined_.fetch_add(stats.proviso_fallbacks, std::memory_order_relaxed);
}

Cluster::State Cluster::min_swap_pack(const ClusterState& c, const Canonicalizer& canon) const {
  State a = pack(c);
  if (canon.swap_allowed() && Canonicalizer::swap_eligible(c.hub[0], c.hub[1])) {
    ClusterState swapped = c;
    canon.swap_channels(swapped);
    // Restore C5's frame placement (an unordered-pair invariant), which is
    // what re-canonicalizing the swapped image would produce; all other
    // fields are already canonical.
    std::swap(swapped.hub[0].out, swapped.hub[1].out);
    const State b = pack(swapped);
    if (b < a) return b;
  }
  return a;
}

Cluster::State Cluster::canonicalize(const State& s) const {
  ClusterState c = unpack(s);
  const Canonicalizer canon(cfg_);
  bool listener[kMaxNodes] = {};
  bool any_listener = false;
  canon.canonicalize_nodes(c.node, listener, any_listener);
  canon.canonicalize_hubs(c.hub[0], c.hub[1], listener, any_listener);
  return min_swap_pack(c, canon);
}

Cluster::State Cluster::reduce(const State& s) const {
  switch (reduction_) {
    case Reduction::kNone:
      return s;
    case Reduction::kSymmetry:
      return canonicalize(s);
    case Reduction::kPartialOrder: {
      ClusterState c = unpack(s);
      PartialOrderReducer(cfg_).saturate(c);
      return pack(c);
    }
    case Reduction::kSymPor: {
      ClusterState c = unpack(s);
      const Canonicalizer canon(cfg_);
      bool listener[kMaxNodes] = {};
      bool any_listener = false;
      canon.canonicalize_nodes(c.node, listener, any_listener);
      canon.canonicalize_hubs(c.hub[0], c.hub[1], listener, any_listener);
      // The clamp touches only canonical LISTEN counters, which both swap
      // images share, so deciding before the swap minimum matches the
      // emission path exactly.
      PartialOrderReducer(cfg_).saturate(c);
      return min_swap_pack(c, canon);
    }
  }
  return s;
}

void Cluster::step_unpacked(const ClusterState& c, EmitUnpacked emit) const {
  UnpackSink sink{cfg_, emit};
  step_all(c, sink);
}

Cluster::StartupPre Cluster::startup_pre(const NodeVars* nodes) const {
  StartupPre pre;
  if (cfg_.timeliness_bound == 0) return pre;
  int awake = 0;
  for (int i = 0; i < cfg_.n; ++i) {
    if (cfg_.node_is_faulty(i)) continue;
    if (nodes[i].state == NodeState::kActive) pre.node_target = true;
    if (nodes[i].state == NodeState::kListen || nodes[i].state == NodeState::kColdstart) {
      ++awake;
    }
  }
  pre.awake2 = awake >= 2;
  return pre;
}

std::uint8_t Cluster::startup_from(const StartupPre& pre, const HubVars& h0, const HubVars& h1,
                                   std::uint8_t prev) const {
  const int bound = cfg_.timeliness_bound;
  if (bound == 0) return 0;
  const auto done = static_cast<std::uint8_t>(bound + 2);
  if (prev == done) return done;

  bool target;
  if (cfg_.timeliness_target == TimelinessTarget::kFirstCorrectActive) {
    target = pre.node_target;
  } else {
    const HubVars& hc = cfg_.faulty_hub == 0 ? h1 : h0;  // first correct hub
    target = hc.state == HubState::kTentative || hc.state == HubState::kActive;
  }
  if (target) return done;

  if (prev == 0) return pre.awake2 ? 1 : 0;
  return static_cast<std::uint8_t>(std::min<int>(prev + 1, bound + 1));
}

std::uint8_t Cluster::next_startup_time(const ClusterState& next, std::uint8_t prev) const {
  // Delegates to the split hot-path pieces so the two can never diverge.
  return startup_from(startup_pre(next.node), next.hub[0], next.hub[1], prev);
}

template <class Sink>
void Cluster::step_all(const ClusterState& c, Sink& sink) const {
  step_core(c, -1, sink);
  // The restart dimension (paper §2.1): while budget remains, any one
  // correct node may be reset to INIT by a transient fault this step.
  if (cfg_.transient_restarts > 0 && c.restarts_used < cfg_.transient_restarts) {
    for (int r = 0; r < cfg_.n; ++r) {
      if (!cfg_.node_is_faulty(r)) step_core(c, r, sink);
    }
  }
}

template <class Sink>
void Cluster::step_core(const ClusterState& c, int restart_node, Sink& sink) const {
  const int n = cfg_.n;

  // Frames delivered to each node in the previous slot.
  Frame node_in[kMaxNodes][kNumChannels];
  for (int i = 0; i < n; ++i) {
    for (int h = 0; h < kNumChannels; ++h) {
      node_in[i][h] = c.hub[h].delivered(i, cfg_.hub_is_faulty(h));
    }
  }

  // Lock status fed back to the faulty node (guardian -> node "feedback").
  std::uint8_t fn_locks = 0;
  if (cfg_.faulty_node != ClusterConfig::kNone) {
    for (int h = 0; h < kNumChannels; ++h) {
      if (!cfg_.hub_is_faulty(h) && ((c.hub[h].locks >> cfg_.faulty_node) & 1u)) {
        fn_locks = static_cast<std::uint8_t>(fn_locks | (1u << h));
      }
    }
  }
  const auto& fpairs = faulty_outputs_.pairs(fn_locks);

  // --- Node phase: precompute each node's options. Correct nodes have at
  // most two (INIT wake-up nondeterminism); the faulty node has one per
  // admitted output pair.
  int nopt[kMaxNodes];
  NodeVars copt_vars[kMaxNodes][2];
  Frame copt_out[kMaxNodes][2];
  const NodeVars faulty_next =
      cfg_.faulty_node != ClusterConfig::kNone ? faulty_node_vars(cfg_, fn_locks) : NodeVars{};
  for (int i = 0; i < n; ++i) {
    if (i == restart_node) {
      // Transient fault: the node powers up afresh and transmits nothing.
      nopt[i] = 1;
      copt_vars[i][0] = NodeVars{};
      copt_out[i][0] = Frame::quiet();
    } else if (cfg_.node_is_faulty(i)) {
      nopt[i] = static_cast<int>(fpairs.size());
    } else {
      nopt[i] = node_option_count(cfg_, c.node[i]);
      TT_ASSERT(nopt[i] <= 2);
      for (int o = 0; o < nopt[i]; ++o) {
        const NodeStep st = node_step(cfg_, i, c.node[i], node_in[i], o);
        copt_vars[i][o] = st.next;
        copt_out[i][o] = st.out;
      }
    }
  }

  // State-phase option counts for the hubs (INIT wake-up nondeterminism).
  const int sopt0 = hub_state_option_count(cfg_, 0, c.hub[0]);
  const int sopt1 = hub_state_option_count(cfg_, 1, c.hub[1]);

  const auto restarts_used =
      static_cast<std::uint8_t>(c.restarts_used + (restart_node >= 0 ? 1 : 0));

  int choice[kMaxNodes] = {};
  NodeVars next_node[kMaxNodes];
  Frame outs[kNumChannels][kMaxNodes];  // per-channel view of node outputs
  // Odometer-incremental refresh: only nodes whose choice digit changed are
  // recomputed — the fastest digit (the faulty node when it is node 0, with
  // its ~(2n+3)^2 output pairs) is usually the only one that moves.
  auto refresh = [&](int i) {
    if (cfg_.node_is_faulty(i)) {
      const auto& pr = fpairs[static_cast<std::size_t>(choice[i])];
      outs[0][i] = pr.first;
      outs[1][i] = pr.second;
      next_node[i] = faulty_next;
    } else {
      next_node[i] = copt_vars[i][choice[i]];
      outs[0][i] = outs[1][i] = copt_out[i][choice[i]];
    }
  };
  for (int i = 0; i < n; ++i) refresh(i);

  while (true) {
    sink.combo(next_node);
    const StartupPre pre = startup_pre(next_node);

    // --- Hub phase. Relay decisions of correct hubs are pure functions of
    // node outputs; a faulty hub may additionally replay the correct hub's
    // same-step interlink output, so correct hubs are computed first.
    const int ropt0 = hub_relay_option_count(cfg_, 0, c.hub[0], outs[0]);
    const int ropt1 = hub_relay_option_count(cfg_, 1, c.hub[1], outs[1]);
    for (int r0 = 0; r0 < ropt0; ++r0) {
      for (int r1 = 0; r1 < ropt1; ++r1) {
        RelayDecision d0;
        RelayDecision d1;
        if (cfg_.hub_is_faulty(0)) {
          d1 = hub_relay(cfg_, 1, c.hub[1], outs[1], r1);
          d0 = faulty_hub_relay(cfg_, c.hub[0], outs[0], d1.interlink, r0);
        } else if (cfg_.hub_is_faulty(1)) {
          d0 = hub_relay(cfg_, 0, c.hub[0], outs[0], r0);
          d1 = faulty_hub_relay(cfg_, c.hub[1], outs[1], d0.interlink, r1);
        } else {
          d0 = hub_relay(cfg_, 0, c.hub[0], outs[0], r0);
          d1 = hub_relay(cfg_, 1, c.hub[1], outs[1], r1);
        }
        // Hub 0's state step depends on s0 only and hub 1's on s1 only, so
        // each variant is computed once, not once per (s0, s1) pair.
        HubVars h0v[2];
        HubVars h1v[2];
        for (int s0 = 0; s0 < sopt0; ++s0) {
          h0v[s0] = cfg_.hub_is_faulty(0)
                        ? faulty_hub_state_step(cfg_, c.hub[0], d0)
                        : hub_state_step(cfg_, 0, c.hub[0], d0, d1.interlink, s0);
        }
        for (int s1 = 0; s1 < sopt1; ++s1) {
          h1v[s1] = cfg_.hub_is_faulty(1)
                        ? faulty_hub_state_step(cfg_, c.hub[1], d1)
                        : hub_state_step(cfg_, 1, c.hub[1], d1, d0.interlink, s1);
        }
        for (int s0 = 0; s0 < sopt0; ++s0) {
          for (int s1 = 0; s1 < sopt1; ++s1) {
            const std::uint8_t st = startup_from(pre, h0v[s0], h1v[s1], c.startup_time);
            sink.successor(h0v[s0], h1v[s1], st, restarts_used);
          }
        }
      }
    }

    int k = 0;
    while (k < n) {
      if (++choice[k] < nopt[k]) break;
      choice[k] = 0;
      ++k;
    }
    if (k == n) break;
    for (int i = k; i >= 0; --i) refresh(i);
  }
}

}  // namespace tt::tta
