// The correctness properties of paper §4, as predicates on cluster states.
//
//  Lemma 1 (safety)      G  any two correct ACTIVE nodes agree on slot time
//  Lemma 2 (liveness)    F  all correct nodes ACTIVE        (goal predicate)
//  Lemma 3 (timeliness)  G  startup_time <= bound           (target: node)
//  Lemma 4 (safety_2)    G  startup_time <= bound           (target: hub)
//
// Lemmas 3 and 4 share the invariant; they differ in the configured
// TimelinessTarget that drives the startup_time counter (config.hpp).
#pragma once

#include "tta/cluster.hpp"
#include "tta/config.hpp"

namespace tt::tta {

/// Lemma 1: agreement on the TDMA position among correct active nodes.
[[nodiscard]] bool holds_safety(const ClusterConfig& cfg, const ClusterState& c);

/// Goal of Lemma 2: every correct node has reached ACTIVE.
[[nodiscard]] bool all_correct_active(const ClusterConfig& cfg, const ClusterState& c);

/// Invariant of Lemmas 3/4: the startup_time counter never exceeds the bound
/// (value bound+1 is the saturated violation value).
[[nodiscard]] bool holds_timeliness(const ClusterConfig& cfg, const ClusterState& c);

/// Extension invariant: active correct nodes also agree with an ACTIVE
/// correct guardian's schedule position (node/guardian consistency).
[[nodiscard]] bool holds_hub_agreement(const ClusterConfig& cfg, const ClusterState& c);

/// Diagnostic: number of correct nodes currently ACTIVE.
[[nodiscard]] int count_correct_active(const ClusterConfig& cfg, const ClusterState& c);

}  // namespace tt::tta
