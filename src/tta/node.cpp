#include "tta/node.hpp"

#include "support/assert.hpp"

namespace tt::tta {

namespace {

/// Enters ACTIVE at TDMA position `pos` (the position of the *current* slot).
/// If the node's own slot starts right now it transmits its i-frame at once.
NodeStep enter_active(const ClusterConfig& cfg, int id, std::uint8_t pos) {
  NodeStep step;
  step.next.state = NodeState::kActive;
  step.next.counter = 0;
  step.next.pos = pos;
  step.next.big_bang = false;
  step.out = (pos == id) ? Frame::i(static_cast<std::uint8_t>(id)) : Frame::quiet();
  (void)cfg;
  return step;
}

}  // namespace

NodeReception classify_reception(const Frame& ch0, const Frame& ch1) {
  NodeReception r;
  const bool usable0 = ch0.is_cs() || ch0.is_i();
  const bool usable1 = ch1.is_cs() || ch1.is_i();
  if (usable0 && usable1 && (ch0.kind != ch1.kind || ch0.time != ch1.time)) {
    // An i-frame on one channel against a cs-frame on the other is NOT an
    // ambiguous collision: the i-frame provably originates from a node in
    // synchronous operation (guardians cannot fabricate well-formed frames),
    // so integration wins. Without this rule a faulty guardian could pair
    // every relayed i-frame with a replayed cs-frame and keep a cold-starting
    // node "colliding" forever. Same-kind mismatches stay ambiguous.
    if (ch0.is_i() != ch1.is_i()) {
      const Frame& winner = ch0.is_i() ? ch0 : ch1;
      r.i_frame = true;
      r.time = winner.time;
      return r;
    }
    r.collision = true;
    return r;
  }
  const Frame& f = usable0 ? ch0 : ch1;
  if (!usable0 && !usable1) return r;
  r.time = f.time;
  if (f.is_i()) {
    r.i_frame = true;
  } else {
    r.cs_frame = true;
  }
  return r;
}

int node_option_count(const ClusterConfig& cfg, const NodeVars& v) {
  if (v.state == NodeState::kInit && v.counter < cfg.init_window) return 2;  // stay or wake
  return 1;
}

NodeStep node_step(const ClusterConfig& cfg, int id, const NodeVars& v,
                   const Frame in[kNumChannels], int option) {
  TT_ASSERT(id >= 0 && id < cfg.n);
  const int n = cfg.n;
  NodeStep step;
  step.next = v;
  step.out = Frame::quiet();

  switch (v.state) {
    case NodeState::kInit: {
      // Option 0: wake up (transition 1.1). Option 1: let time advance.
      const bool must_wake = v.counter >= cfg.init_window;
      const bool wake = must_wake || option == 0;
      TT_ASSERT(option == 0 || !must_wake);
      if (wake) {
        step.next.state = NodeState::kListen;
        step.next.counter = 1;
        step.next.big_bang = true;
      } else {
        step.next.counter = static_cast<std::uint8_t>(v.counter + 1);
      }
      return step;
    }

    case NodeState::kListen: {
      const NodeReception r = classify_reception(in[0], in[1]);
      if (r.i_frame) {
        // Transition 2.2: integrate into the running set. The i-frame named
        // the position of the previous slot, so the current slot is time+1.
        return enter_active(cfg, id, static_cast<std::uint8_t>((r.time + 1) % n));
      }
      if (r.cs_frame || r.collision) {
        if (cfg.big_bang && v.big_bang) {
          // Transition 2.1 (big-bang consumption): enter COLDSTART with the
          // clock at 2 (one slot — the cs transmission — has elapsed) but do
          // NOT adopt the frame contents: it may be half of a collision.
          step.next.state = NodeState::kColdstart;
          step.next.counter = 2;
          step.next.big_bang = false;
          step.next.pos = 0;
          return step;
        }
        if (!cfg.big_bang && r.cs_frame) {
          // Design-exploration variant (§5.2): without the big-bang
          // mechanism a node synchronizes on the first cs-frame directly.
          return enter_active(cfg, id, static_cast<std::uint8_t>((r.time + 1) % n));
        }
        // Collision without a usable single frame: fall through to COLDSTART
        // like a big-bang (nothing to synchronize on).
        step.next.state = NodeState::kColdstart;
        step.next.counter = 2;
        step.next.big_bang = false;
        step.next.pos = 0;
        return step;
      }
      if (v.counter >= cfg.listen_timeout(id)) {
        // Transition 2.1 (timeout): start the cold-start phase and transmit
        // our own cs-frame during this slot. The big-bang stays armed: this
        // node has not received any cs-frame yet, and the first one it does
        // receive (now in COLDSTART) may still be half of a collision.
        step.next.state = NodeState::kColdstart;
        step.next.counter = 1;
        step.next.pos = 0;
        step.out = Frame::cs(static_cast<std::uint8_t>(id));
        return step;
      }
      step.next.counter = static_cast<std::uint8_t>(v.counter + 1);
      return step;
    }

    case NodeState::kColdstart: {
      const NodeReception r = classify_reception(in[0], in[1]);
      // "waits for reception of another cs-frame or i-frame": our own echo
      // (a cs-frame carrying our id) does not count, nor does a collision.
      if (r.i_frame) {
        return enter_active(cfg, id, static_cast<std::uint8_t>((r.time + 1) % n));
      }
      if (cfg.big_bang && v.big_bang && ((r.cs_frame && r.time != id) || r.collision)) {
        // The big-bang discards the FIRST cs-frame a node receives wherever
        // it is received: a node that timed out of LISTEN silently still
        // cannot tell whether this frame is half of a collision (or, with a
        // faulty hub, a selectively delivered fragment of one). Reset the
        // local clock to the frame's cold-start phase without adopting its
        // contents — exactly the LISTEN-state big-bang treatment.
        step.next.counter = 2;
        step.next.big_bang = false;
        return step;
      }
      if (r.cs_frame && r.time != id) {
        // Transition 3.2: synchronize on the sender's suggested state.
        return enter_active(cfg, id, static_cast<std::uint8_t>((r.time + 1) % n));
      }
      if (v.counter >= cfg.coldstart_timeout(id)) {
        // Transition 3.1: retransmit our cs-frame.
        step.next.counter = 1;
        step.out = Frame::cs(static_cast<std::uint8_t>(id));
        return step;
      }
      step.next.counter = static_cast<std::uint8_t>(v.counter + 1);
      return step;
    }

    case NodeState::kActive: {
      // Steady-state TDMA: advance the position; transmit in the own slot.
      const auto pos = static_cast<std::uint8_t>((v.pos + 1) % n);
      step.next.pos = pos;
      step.next.counter = 0;
      if (pos == id) step.out = Frame::i(pos);
      return step;
    }

    case NodeState::kFaulty:
    case NodeState::kFaultyLock0:
    case NodeState::kFaultyLock1:
    case NodeState::kFaultyLock01:
      TT_ASSERT(false && "faulty nodes are stepped by faulty_node_step");
      return step;
  }
  TT_ASSERT(false && "unreachable");
  return step;
}

}  // namespace tt::tta
