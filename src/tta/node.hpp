// The node startup automaton (paper Fig. 2(a), §2.3.1).
//
// A node's observable behaviour per slot is a function of its private
// variables and the two frames its guardians delivered in the previous slot.
// The only nondeterminism in a *correct* node is the wake-up time: while in
// INIT it may stay or proceed, and must proceed when the counter reaches the
// configured δ_init window (this encodes the SAL model's frozen
// `startupdelay` variable without storing it — see DESIGN.md §2).
#pragma once

#include <cstdint>

#include "tta/config.hpp"
#include "tta/types.hpp"

namespace tt::tta {

/// Private state of one node. Fields are canonicalized per state so packed
/// states never differ in dead variables:
///  * `pos` is 0 unless ACTIVE (it is the TDMA position of the current slot),
///  * `counter` is 0 in ACTIVE and in the faulty family,
///  * `big_bang` ("big bang not yet consumed") is false outside INIT/LISTEN.
struct NodeVars {
  NodeState state = NodeState::kInit;
  std::uint8_t counter = 1;
  std::uint8_t pos = 0;
  bool big_bang = true;

  [[nodiscard]] constexpr bool operator==(const NodeVars&) const = default;
};

/// Result of one node step: the successor variables plus the frame the node
/// transmits during the current slot (identical on both channels — only
/// faulty nodes can send asymmetrically).
struct NodeStep {
  NodeVars next;
  Frame out;
};

/// What a node extracted from the two delivered frames after the
/// logical-collision rules of §2.3.1 (the SAL transition-2.1 precondition).
struct NodeReception {
  bool i_frame = false;     ///< unambiguous well-formed i-frame
  bool cs_frame = false;    ///< unambiguous well-formed cs-frame
  bool collision = false;   ///< conflicting frames on the two channels
  std::uint8_t time = 0;    ///< frame contents when i_frame or cs_frame
};

/// Classifies delivered frames. A frame is usable when well-formed (`ok`);
/// frames on the two channels conflict when both are usable but differ in
/// kind or time — the "logical collision" the startup algorithm must resolve.
[[nodiscard]] NodeReception classify_reception(const Frame& ch0, const Frame& ch1);

/// Number of nondeterministic options for a correct node this step (>= 1).
[[nodiscard]] int node_option_count(const ClusterConfig& cfg, const NodeVars& v);

/// Executes option `option` (0-based) of a correct node `id`.
/// `in` holds the frames delivered by hub 0 and hub 1 in the previous slot.
[[nodiscard]] NodeStep node_step(const ClusterConfig& cfg, int id, const NodeVars& v,
                                 const Frame in[kNumChannels], int option);

}  // namespace tt::tta
