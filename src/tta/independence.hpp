// Partial-order reduction for the cluster model (DESIGN.md §3.8).
//
// The synchronous product in Cluster::successors interleaves three choice
// groups — node wake-up nondeterminism, the faulty node's output alphabet,
// and hub arbitration — whose only interaction during the pre-coldstart
// phase is the *delivery* of a frame through an open guardian. Until the
// first guaranteed delivery, the per-node LISTEN countdowns are pairwise
// independent (they read and write disjoint counters and no shared state),
// so the choice combinations that differ only in how much *unobservable*
// slack those countdowns still carry are commutation-equivalent: any
// interleaving of the remaining quiet steps reaches the same successor set.
//
// The reducer exploits this as an ample-set style state clamp rather than a
// transition filter: every emitted successor whose clock slack provably
// exceeds the *delivery horizon* is redirected to the representative with
// slack exactly at the horizon. The ample conditions map as follows:
//
//  C0 (emptiness)     — the clamp never drops a transition; each emission is
//                       redirected, not suppressed, so ample ≠ ∅ trivially.
//  C1 (dependency)    — the certificate: along EVERY adversary path from a
//                       gated state, some reception event reaches all
//                       clamped nodes strictly before any clamped countdown
//                       could have fired. Deliveries are broadcasts (any
//                       usable frame or frame collision resets every LISTEN
//                       counter), so the skipped slack is unobservable.
//  C2 (invisibility)  — clamped counters are invisible to every property:
//                       lemma labels read node/hub control states, not LISTEN
//                       counters, and the oracle test refines bisimulation
//                       with all lemma labels (safety, activity, timeliness).
//  C3 (cycle proviso) — discharged by construction: the clamp is an
//                       idempotent map applied to every emission — no
//                       transition is deferred to a later state, so no cycle
//                       can starve a deferred action. Emissions where the
//                       gate declines are counted as `proviso_fallbacks`
//                       (full, unreduced expansion).
//
// The horizon certificate (validated against a bisimulation oracle over the
// union graph at n = 4 for the plain, transient-restart, and timeliness
// configurations, and at n = 5 plain — see tests/tta/independence_test.cpp):
//
//   gate    all correct nodes in INIT/LISTEN, all hubs correct and in
//           INIT/LISTEN/STARTUP, no usable broadcast in flight.
//   o*      a slot by which some guardian is certainly arbitrating —
//           max-stay INIT wake plus the LISTEN count, minimized over hubs.
//   merged  the distinct slots (>= o*) at which correct nodes transmit under
//           worst-case (latest) schedules; distinct slots, because one hub
//           arbitration pick masks every simultaneous correct transmission.
//   masks   the faulty node can suppress at most ONE certain-delivery slot
//           (junk on both channels) — and none once a hub that is certainly
//           open by then has already locked its port.
//   cap     merged[masks + remaining transient restarts]: a delivery that
//           survives every masking budget. Reception is classified before
//           the timeout check in node_step, so a LISTEN slack of exactly
//           `cap` is already dead — counters are clamped to slack `cap`.
#pragma once

#include <cstdint>

#include "tta/cluster.hpp"
#include "tta/config.hpp"
#include "tta/hub.hpp"
#include "tta/node.hpp"

namespace tt::tta {

/// Reduction dials. The defaults are the validated certificate; the two
/// knobs exist so the oracle test can demonstrate that deliberately broken
/// relations (per-transmission masking, an off-by-one horizon) are caught.
struct PorTuning {
  /// Added to the horizon. 0 is exact (validated); -1 clamps a slack whose
  /// timeout fires before the guaranteed reception — unsound.
  int margin = 0;
  /// Collapse simultaneous transmissions into one delivery slot. Disabling
  /// this counts each transmission as maskable individually — unsound (a
  /// single hub arbitration pick masks the whole slot).
  bool dedupe_slots = true;
};

/// Statistics of one exploration's clamp decisions (relaxed totals).
struct PorStats {
  std::uint64_t ample_sets = 0;         ///< emissions with the gate open
  std::uint64_t pruned_combos = 0;      ///< emissions redirected to the clamped rep
  std::uint64_t proviso_fallbacks = 0;  ///< emissions expanded in full (gate closed)
};

class PartialOrderReducer {
 public:
  PartialOrderReducer() = default;
  explicit PartialOrderReducer(const ClusterConfig& cfg, PorTuning tuning = {});

  /// Configuration-level admissibility: the certificate covers correct-hub
  /// clusters only (a faulty hub invalidates the guaranteed-delivery bound:
  /// it may refuse to relay forever).
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Per-node schedule depth the combo plan carries (first k worst-case
  /// transmission instants; sized to the masking + restart budget).
  [[nodiscard]] int instants() const noexcept { return instants_; }

  /// Combo-level precomputation: shared by every hub-phase successor of one
  /// node-choice combination (the prefix-sharing analog of pack_node_prefix).
  struct ComboPlan {
    bool gate = false;  ///< all correct nodes in INIT/LISTEN
    int ntx = 0;        ///< sorted distinct worst-case TX slots
    int tx[4 * kMaxNodes] = {};
    int nlisten = 0;  ///< correct LISTEN nodes, with their current slack
    std::uint8_t listen_node[kMaxNodes] = {};
    int listen_slack[kMaxNodes] = {};  ///< LT_TO[j] - counter
  };
  void prepare(const NodeVars* nodes, ComboPlan& plan) const;

  enum class Outcome : std::uint8_t {
    kDeclined,   ///< gate closed (node or hub side): emit unchanged, full expansion
    kUnchanged,  ///< gate open, no slack beyond the horizon
    kClamped,    ///< gate open, some LISTEN slack exceeds the horizon `cap`
  };

  /// Successor-level decision: hub-side gate + delivery horizon. Pure — the
  /// shared combo node array is never touched; on kClamped the caller clamps
  /// a scratch copy via `clamp` and re-packs the node prefix (hub variables
  /// and the scalar suffix are never affected).
  Outcome decide(const ComboPlan& plan, const HubVars& h0, const HubVars& h1,
                 std::uint8_t restarts_used, int& cap) const;

  /// Rewrites every over-slack LISTEN counter to the horizon representative
  /// (slack exactly `cap`, from a kClamped decision).
  void clamp(const ComboPlan& plan, int cap, NodeVars* nodes) const;

  /// Whole-state entry point (Cluster::reduce, concretization, tests).
  Outcome saturate(ClusterState& c) const;

  /// First `k` worst-case transmission instants of a correct node by direct
  /// simulation of its quiet-input automaton — the oracle the closed-form
  /// schedule in `prepare` is unit-tested against.
  void worst_tx_reference(int id, NodeVars v, int k, int* out) const;

  /// Latest slot by which a correct hub is certainly arbitrating (exposed
  /// for the schedule unit tests).
  [[nodiscard]] int hub_latest_open_bound(int h, const HubVars& v) const;

 private:
  [[nodiscard]] int first_tx_closed_form(int id, const NodeVars& v) const;

  ClusterConfig cfg_;
  PorTuning tuning_;
  bool enabled_ = false;
  int instants_ = 4;
};

}  // namespace tt::tta
