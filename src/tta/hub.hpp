// The central-guardian startup automaton (paper Fig. 2(b), §2.3.2) and the
// faulty-hub failure model (§3.2.2).
//
// Each global step splits into a *relay phase* and a *state phase*
// (DESIGN.md §4):
//
//  relay phase  — the hub sees the frames its nodes transmit *this* slot and
//                 decides, as a pure function of (previous hub state, node
//                 outputs, a nondeterministic port selection), what it
//                 delivers to its ports and mirrors onto the interlink. This
//                 models cut-through relaying within one slot.
//  state phase  — the hub advances its automaton using its own relay
//                 decision plus the *other* hub's same-step interlink output
//                 (collision detection across channels).
//
// Delivered frames become hub state (`out` / `out_per_port`) and reach the
// nodes at the next step.
//
// Semantic filtering: during startup a relayed frame must be a well-formed
// cs-frame carrying the sender's own identity; anything else from an open
// port is relayed as noise. Provably faulty transmissions (noise, ill-formed
// frames, masquerading cs-frames) lock the port (paper: "If a central
// guardian detects a faulty node it will block all further attempts").
//
// A faulty hub forwards the frame of a nondeterministically selected active
// port to an arbitrary (but frozen, as in the SAL model) partition of its
// ports — each port receives the frame, noise, or quiet — while always
// mirroring the selected frame onto the interlink; it can neither create
// well-formed frames nor delay them (fault hypothesis §2.2).
#pragma once

#include <cstdint>

#include "tta/config.hpp"
#include "tta/types.hpp"

namespace tt::tta {

constexpr int kMaxNodes = 8;

/// Faulty-hub per-port delivery pattern entries (the SAL model's frozen
/// `partitioning` / `send_noise` boolean arrays combined).
enum class HubPortMode : std::uint8_t {
  kRelay = 0,  ///< forward the selected frame
  kNoise = 1,  ///< replace by noise
  kQuiet = 2,  ///< drop
};

/// Private state of one hub.
///
/// Canonicalization: `slot_pos` is 0 outside TENTATIVE/ACTIVE; `counter` is 0
/// in STARTUP/ACTIVE/FAULTY; a faulty hub keeps counter/slot_pos/locks at 0;
/// a correct hub keeps `pattern`=0 and `out_per_port` all-quiet (it
/// broadcasts `out`).
struct HubVars {
  HubState state = HubState::kInit;
  std::uint8_t counter = 1;
  std::uint8_t slot_pos = 0;
  std::uint8_t locks = 0;  ///< bitmask: port i blocked
  Frame out;               ///< broadcast delivered to every port (correct hub)
  Frame out_per_port[kMaxNodes];  ///< per-port deliveries (faulty hub)
  std::uint16_t pattern = 0;      ///< 2 bits per port: HubPortMode (faulty hub)

  [[nodiscard]] bool operator==(const HubVars&) const = default;

  [[nodiscard]] HubPortMode port_mode(int port) const noexcept {
    return static_cast<HubPortMode>((pattern >> (2 * port)) & 3u);
  }
  void set_port_mode(int port, HubPortMode m) noexcept {
    pattern = static_cast<std::uint16_t>((pattern & ~(3u << (2 * port))) |
                                         (static_cast<unsigned>(m) << (2 * port)));
  }
  /// Frame delivered to `port` this step (handles both hub kinds).
  [[nodiscard]] const Frame& delivered(int port, bool faulty) const noexcept {
    return faulty ? out_per_port[port] : out;
  }
};

/// Relay-phase outcome.
struct RelayDecision {
  Frame to_ports;                  ///< broadcast (correct hub)
  Frame per_port[kMaxNodes];       ///< per-port deliveries (faulty hub)
  Frame interlink;                 ///< frame mirrored to the other channel
  int selected_port = -1;          ///< port whose frame was (semantically) relayed
  std::uint8_t new_locks = 0;      ///< ports detected faulty this step
};

/// Number of nondeterministic relay options for hub `h` this step.
/// `node_out[i]` is the frame node i transmits on this hub's channel.
[[nodiscard]] int hub_relay_option_count(const ClusterConfig& cfg, int h, const HubVars& v,
                                         const Frame node_out[kMaxNodes]);

/// Executes relay option `option` for a *correct* hub.
[[nodiscard]] RelayDecision hub_relay(const ClusterConfig& cfg, int h, const HubVars& v,
                                      const Frame node_out[kMaxNodes], int option);

/// Executes relay option `option` for the *faulty* hub. `interlink_in` is the
/// correct hub's same-step interlink output (the only same-step input a
/// faulty hub can replay; computed first by the cluster step).
[[nodiscard]] RelayDecision faulty_hub_relay(const ClusterConfig& cfg, const HubVars& v,
                                             const Frame node_out[kMaxNodes],
                                             const Frame& interlink_in, int option);

/// δ_init window of hub `h`: only the delayed guardian (always a correct
/// one) gets the configured window; the other powers on at its first step.
[[nodiscard]] int hub_init_window_for(const ClusterConfig& cfg, int h) noexcept;

/// Number of state-phase options for hub `h` (INIT wake-up nondeterminism;
/// 1 elsewhere).
[[nodiscard]] int hub_state_option_count(const ClusterConfig& cfg, int h, const HubVars& v);

/// State-phase update for a correct hub. `d` is its own relay decision,
/// `interlink_in` the other hub's same-step interlink output.
[[nodiscard]] HubVars hub_state_step(const ClusterConfig& cfg, int h, const HubVars& v,
                                     const RelayDecision& d, const Frame& interlink_in,
                                     int option);

/// State-phase update for the faulty hub (stores deliveries; nothing else).
[[nodiscard]] HubVars faulty_hub_state_step(const ClusterConfig& cfg, const HubVars& v,
                                            const RelayDecision& d);

/// TDMA position the hub expects for the slot being processed (tentative /
/// active schedule enforcement).
[[nodiscard]] inline std::uint8_t hub_expected_slot(const ClusterConfig& cfg,
                                                    const HubVars& v) noexcept {
  return static_cast<std::uint8_t>((v.slot_pos + 1) % cfg.n);
}

}  // namespace tt::tta
