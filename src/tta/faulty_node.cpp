#include "tta/faulty_node.hpp"

#include <utility>

#include "support/assert.hpp"

namespace tt::tta {

std::vector<Frame> FaultyNodeOutputs::channel_options(int n, int id, int degree) {
  TT_REQUIRE(degree >= 1 && degree <= 6, "fault degree must be in [1, 6]");
  std::vector<Frame> out;
  out.push_back(Frame::quiet());                                              // rank 1
  if (degree >= 2) out.push_back(Frame::cs(static_cast<std::uint8_t>(id)));   // rank 2
  if (degree >= 3) {                                                          // rank 3
    for (int t = 0; t < n; ++t) out.push_back(Frame::i(static_cast<std::uint8_t>(t)));
  }
  if (degree >= 4) out.push_back(Frame::noise());                             // rank 4
  if (degree >= 5) {                                                          // rank 5
    for (int t = 0; t < n; ++t) {
      if (t != id) out.push_back(Frame::cs(static_cast<std::uint8_t>(t)));
    }
  }
  if (degree >= 6) out.push_back(Frame::i_bad());                             // rank 6
  return out;
}

FaultRank FaultyNodeOutputs::rank_of(const Frame& f, int id) {
  switch (f.kind) {
    case MsgKind::kQuiet: return FaultRank::kQuiet;
    case MsgKind::kNoise: return FaultRank::kNoise;
    case MsgKind::kCs:
      if (!f.ok || f.time != id) return FaultRank::kCsBad;
      return FaultRank::kCsGood;
    case MsgKind::kI: return f.ok ? FaultRank::kIGood : FaultRank::kIBad;
  }
  return FaultRank::kIBad;
}

FaultyNodeOutputs::FaultyNodeOutputs(const ClusterConfig& cfg, bool collapse_classes)
    : feedback_(cfg.feedback) {
  if (cfg.faulty_node == ClusterConfig::kNone) return;
  std::vector<Frame> opts = channel_options(cfg.n, cfg.faulty_node, cfg.fault_degree);
  if (collapse_classes) {
    // Keep the first frame of each observable class in Fig. 3 rank order
    // (quiet, cs(own), i(own), then the cheapest provably-faulty emission).
    std::vector<Frame> reps;
    bool seen[4] = {};
    for (const Frame& f : opts) {
      const int c = hub_observable_class(f, cfg.faulty_node);
      if (!seen[c]) {
        seen[c] = true;
        reps.push_back(f);
      }
    }
    opts = std::move(reps);
  }
  for (std::uint8_t locks = 0; locks < 4; ++locks) {
    const bool l0 = (locks & 1u) != 0;
    const bool l1 = (locks & 2u) != 0;
    auto& dst = pairs_[locks];
    for (const Frame& a : opts) {
      if (l0 && !a.is_quiet()) continue;  // feedback: locked channel emits quiet only
      for (const Frame& b : opts) {
        if (l1 && !b.is_quiet()) continue;
        dst.emplace_back(a, b);
      }
    }
    TT_ASSERT(!dst.empty());
  }
}

NodeVars faulty_node_vars(const ClusterConfig& cfg, std::uint8_t locks) {
  NodeVars v;
  v.counter = 0;
  v.pos = 0;
  v.big_bang = false;
  if (!cfg.feedback) {
    v.state = NodeState::kFaulty;
    return v;
  }
  switch (locks & 3u) {
    case 0: v.state = NodeState::kFaulty; break;
    case 1: v.state = NodeState::kFaultyLock0; break;
    case 2: v.state = NodeState::kFaultyLock1; break;
    default: v.state = NodeState::kFaultyLock01; break;
  }
  return v;
}

}  // namespace tt::tta
