#include "tta/independence.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace tt::tta {

PartialOrderReducer::PartialOrderReducer(const ClusterConfig& cfg, PorTuning tuning)
    : cfg_(cfg), tuning_(tuning) {
  enabled_ = cfg_.faulty_hub == ClusterConfig::kNone;
  // The horizon index reaches masks (<= 1) + remaining restart budget; four
  // distinct slots per node cover budgets up to one restart (the validated
  // range), and each extra restart needs at most one more certain delivery.
  instants_ = 4 + std::max(0, cfg_.transient_restarts - 1);
  TT_REQUIRE(instants_ <= 4 + kMaxNodes / 2, "restart budget beyond the schedule depth");
}

int PartialOrderReducer::hub_latest_open_bound(int h, const HubVars& v) const {
  const int n = cfg_.n;
  switch (v.state) {
    case HubState::kInit: {
      // Max-stay wake: remaining window slots, the wake step itself, the full
      // LISTEN count to 2n, then the step that enters STARTUP.
      const int stays = std::max(0, hub_init_window_for(cfg_, h) - v.counter);
      return stays + 1 + (2 * n - 1) + 1;
    }
    case HubState::kListen:
      return (2 * n - v.counter) + 1;
    default:
      return 0;  // STARTUP (and beyond): arbitrating now
  }
}

void PartialOrderReducer::worst_tx_reference(int id, NodeVars v, int k, int* out) const {
  int filled = 0;
  int t = 0;
  const int horizon = 16 * cfg_.n + 64;
  while (filled < k && t < horizon) {
    ++t;
    if (v.state == NodeState::kInit) {
      // Latest option: stay asleep while the window allows it.
      if (v.counter < cfg_.init_window) {
        v.counter++;
        continue;
      }
      v.state = NodeState::kListen;
      v.counter = 1;
      continue;
    }
    if (v.state == NodeState::kListen) {
      if (v.counter >= cfg_.listen_timeout(id)) {
        out[filled++] = t;
        v.state = NodeState::kColdstart;
        v.counter = 1;
        continue;
      }
      v.counter++;
      continue;
    }
    if (v.state == NodeState::kColdstart) {
      if (v.counter >= cfg_.coldstart_timeout(id)) {
        out[filled++] = t;
        v.counter = 1;
        continue;
      }
      v.counter++;
      continue;
    }
    break;  // ACTIVE/faulty: not part of the pre-coldstart certificate
  }
  while (filled < k) out[filled++] = horizon + 1;
}

int PartialOrderReducer::first_tx_closed_form(int id, const NodeVars& v) const {
  // Gate states only: INIT stays to the window edge then walks the LISTEN
  // ladder; LISTEN fires when counter >= LT_TO[id] before the increment.
  if (v.state == NodeState::kListen) {
    return std::max(1, cfg_.listen_timeout(id) - v.counter + 1);
  }
  TT_ASSERT(v.state == NodeState::kInit);
  return std::max(0, cfg_.init_window - v.counter) + 1 + cfg_.listen_timeout(id);
}

void PartialOrderReducer::prepare(const NodeVars* nodes, ComboPlan& plan) const {
  plan.gate = false;
  plan.ntx = 0;
  plan.nlisten = 0;
  if (!enabled_) return;
  for (int j = 0; j < cfg_.n; ++j) {
    if (cfg_.node_is_faulty(j)) continue;
    const NodeVars& v = nodes[j];
    if (v.state != NodeState::kInit && v.state != NodeState::kListen) return;
  }
  plan.gate = true;
  for (int j = 0; j < cfg_.n; ++j) {
    if (cfg_.node_is_faulty(j)) continue;
    const NodeVars& v = nodes[j];
    const int period = cfg_.coldstart_timeout(j);
    int t = first_tx_closed_form(j, v);
    for (int k = 0; k < instants_; ++k, t += period) plan.tx[plan.ntx++] = t;
    if (v.state == NodeState::kListen) {
      plan.listen_node[plan.nlisten] = static_cast<std::uint8_t>(j);
      plan.listen_slack[plan.nlisten] = cfg_.listen_timeout(j) - v.counter;
      ++plan.nlisten;
    }
  }
  std::sort(plan.tx, plan.tx + plan.ntx);
  if (tuning_.dedupe_slots) {
    // One hub arbitration pick masks every simultaneous correct transmission,
    // so the maskable units are distinct SLOTS, not transmissions.
    plan.ntx = static_cast<int>(std::unique(plan.tx, plan.tx + plan.ntx) - plan.tx);
  }
}

PartialOrderReducer::Outcome PartialOrderReducer::decide(const ComboPlan& plan,
                                                         const HubVars& h0, const HubVars& h1,
                                                         std::uint8_t restarts_used,
                                                         int& cap) const {
  if (!plan.gate) return Outcome::kDeclined;
  if (plan.nlisten == 0) return Outcome::kUnchanged;  // nothing clampable
  const HubVars* hubs[2] = {&h0, &h1};
  int ostar = 1 << 20;
  for (int h = 0; h < 2; ++h) {
    const HubVars& v = *hubs[h];
    if (v.state != HubState::kInit && v.state != HubState::kListen &&
        v.state != HubState::kStartup) {
      return Outcome::kDeclined;
    }
    // A usable broadcast in flight means a reception resolves next step; the
    // certificate only reasons about quiet evolution.
    if (v.out.is_cs() || v.out.is_i()) return Outcome::kDeclined;
    ostar = std::min(ostar, hub_latest_open_bound(h, v));
  }
  // First certain-delivery slot: the earliest worst-case transmission that a
  // guardian is certainly arbitrating for.
  int lo = 0;
  while (lo < plan.ntx && plan.tx[lo] < ostar) ++lo;
  if (lo >= plan.ntx) return Outcome::kUnchanged;
  // The faulty node masks at most one certain slot — none once a hub that is
  // certainly open by then has locked its port (it relays the correct frame
  // no matter what the faulty node emits).
  int masks = 1;
  const int fbit = cfg_.faulty_node;
  if (fbit != ClusterConfig::kNone) {
    for (int h = 0; h < 2; ++h) {
      const bool locked = ((hubs[h]->locks >> fbit) & 1u) != 0;
      if (locked && plan.tx[lo] >= hub_latest_open_bound(h, *hubs[h])) masks = 0;
    }
  }
  const int idx = masks + std::max(0, cfg_.transient_restarts - restarts_used);
  if (lo + idx >= plan.ntx) return Outcome::kUnchanged;
  cap = plan.tx[lo + idx] + tuning_.margin;
  for (int k = 0; k < plan.nlisten; ++k) {
    if (plan.listen_slack[k] > cap) return Outcome::kClamped;
  }
  return Outcome::kUnchanged;
}

void PartialOrderReducer::clamp(const ComboPlan& plan, int cap, NodeVars* nodes) const {
  for (int k = 0; k < plan.nlisten; ++k) {
    if (plan.listen_slack[k] > cap) {
      const int j = plan.listen_node[k];
      nodes[j].counter = static_cast<std::uint8_t>(cfg_.listen_timeout(j) - cap);
    }
  }
}

PartialOrderReducer::Outcome PartialOrderReducer::saturate(ClusterState& c) const {
  ComboPlan plan;
  prepare(c.node, plan);
  int cap = 0;
  const Outcome o = decide(plan, c.hub[0], c.hub[1], c.restarts_used, cap);
  if (o == Outcome::kClamped) clamp(plan, cap, c.node);
  return o;
}

}  // namespace tt::tta
