// Human-readable rendering of cluster states and counterexample traces.
//
// The paper's §5.2 counterexample is a six-step narrative; the examples and
// the big-bang bench print our model's traces in the same spirit.
#pragma once

#include <span>
#include <string>

#include "tta/cluster.hpp"

namespace tt::tta {

/// One-line rendering of a frame, e.g. "cs(2)", "i(0)", "noise", "-".
[[nodiscard]] std::string describe(const Frame& f);

/// One-line rendering of a full cluster state.
[[nodiscard]] std::string describe(const ClusterConfig& cfg, const ClusterState& c);

/// Multi-line rendering of a packed-state trace, one step per line.
[[nodiscard]] std::string describe_trace(const Cluster& cluster,
                                         std::span<const Cluster::State> trace);

}  // namespace tt::tta
