// IC3/PDR over kernel::System (DESIGN.md §3.10): unbounded invariant proofs
// without unrolling. The engine maintains a sequence of frames F_0 = Init,
// F_1, F_2, ... — each a set of blocked cubes (clauses over the one-hot
// state literals) over-approximating the states reachable in at most i
// steps — and drives a priority queue of proof obligations: concrete bad
// (or bad-reaching) states to be excluded frame by frame. A blocked cube is
// *generalized* by relative induction: the solver's assumption core names
// which literals the refutation actually used, the rest are dropped (with a
// syntactic repair that keeps the cube disjoint from the initial states,
// which form a product set thanks to init_any). When a whole frame's cubes
// propagate forward, two consecutive frames coincide: the clauses of that
// frame are an inductive strengthening of the property — PROVED.
//
// Everything runs on ONE incremental sat::Solver holding a single two-frame
// transition encoding; frame membership is switched per query through
// activation-literal assumptions.
#pragma once

#include "bmc/proof.hpp"
#include "kernel/system.hpp"

namespace tt::bmc {

struct Ic3Options {
  int max_frames = 4096;                      ///< frame cap before kUnknown
  std::uint64_t max_obligations = 50'000'000; ///< obligation cap before kUnknown
};

/// Proves or refutes G(property) over `system`. `property` is a boolean
/// expression in the system's pool.
[[nodiscard]] ProofResult check_invariant_ic3(const kernel::System& system,
                                              kernel::ExprId property,
                                              const Ic3Options& options = {});

}  // namespace tt::bmc
