// k-induction over kernel::System (DESIGN.md §3.10): the cheap unbounded
// upgrade of BMC. Two incremental unrollings share the run — the *base*
// instance (with initial-state constraints) refutes violations at each
// depth exactly like BMC, while the *step* instance (initial states free)
// asks whether a path of k P-satisfying frames can end in ¬P. When the step
// query is UNSAT the invariant is inductive at depth k: PROVED for every
// reachable state, at any depth.
//
// Simple-path constraints (all frames pairwise distinct) keep the method
// complete in the limit; because the recurrence diameter is astronomically
// larger than the reachability diameter for these models, the engine also
// carries a *completeness threshold*: when pure induction has not closed by
// `diameter_after_k`, it runs one explicit BFS sweep of the (exact, finite)
// reachable state graph, evaluating P on every state. A clean sweep of
// diameter D certifies the invariant on every reachable state — PROVED at
// D, the classical bounded-diameter argument collapsed to its explicit
// witness. A sweep that meets a violating state instead pins the minimal
// violating depth, and the base instance probes up to exactly that depth so
// the counterexample stays SAT-derived and minimal-length.
#pragma once

#include "bmc/proof.hpp"
#include "kernel/system.hpp"

namespace tt::bmc {

struct KindOptions {
  int max_k = 4096;              ///< cap on the induction depth
  bool simple_path = true;       ///< add pairwise-distinct-frame constraints
  /// State budget for the lazily computed explicit reachability diameter
  /// (the completeness threshold). 0 disables the fallback entirely.
  std::size_t diameter_state_budget = 4'000'000;
  /// Depth at which the diameter computation kicks in (pure induction gets
  /// a head start; shallow proofs never pay for the BFS).
  int diameter_after_k = 6;
};

/// Proves or refutes G(property) over `system`. `property` is a boolean
/// expression in the system's pool.
[[nodiscard]] ProofResult check_invariant_kind(const kernel::System& system,
                                               kernel::ExprId property,
                                               const KindOptions& options = {});

}  // namespace tt::bmc
