#include "bmc/ic3.hpp"

#include <queue>
#include <tuple>
#include <unordered_set>

#include "bmc/encoder.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace tt::bmc {

namespace {

using kernel::VarId;
using sat::Lit;

/// A cube over state variables: a set of (variable, value) literals, read as
/// their conjunction. Blocking a cube adds the clause of its negation.
using Cube = std::vector<std::pair<VarId, int>>;

class Ic3 {
 public:
  Ic3(const kernel::System& system, kernel::ExprId property, const Ic3Options& options)
      : system_(system),
        options_(options),
        unroller_(system, {.constrain_initial = false}) {
    unroller_.ensure_frames(2);
    p0_ = unroller_.bool_expr(property, 0);
    p1_ = unroller_.bool_expr(property, 1);
    // Level 0: the initial states, behind their own activation literal.
    new_level();
    for (std::size_t v = 0; v < system_.vars().size(); ++v) {
      const auto& d = system_.vars()[v];
      if (!d.init_any) {
        solver().add_clause({unroller_.var_bit(0, static_cast<VarId>(v), d.init),
                             Lit::make(act_[0], true)});
      }
    }
    new_level();  // level 1 (frame F_1), initially unconstrained
  }

  ProofResult run() {
    Timer timer;
    obs::Span run_span("ic3.run");
    // Base cases: counterexamples of length 0 and 1 (every later obligation
    // chain passes through these two queries' frame discipline).
    if (solver().solve(with_acts(0, {~p0_})) == sat::Result::kSat) {
      result_.trace = {unroller_.decode_frame(0)};
      return finish(ProofVerdict::kViolated, 0, timer);
    }
    if (solver().solve(with_acts(0, {~p1_})) == sat::Result::kSat) {
      result_.trace = {unroller_.decode_frame(0), unroller_.decode_frame(1)};
      return finish(ProofVerdict::kViolated, 1, timer);
    }

    while (top_level() < options_.max_frames) {
      // Strengthen F_N until it satisfies the property.
      while (solver().solve(with_acts(top_level(), {~p0_})) == sat::Result::kSat) {
        const Outcome o = block_bad_state(unroller_.decode_frame(0));
        if (o == Outcome::kCex) {
          return finish(ProofVerdict::kViolated,
                        static_cast<int>(result_.trace.size()) - 1, timer);
        }
        if (o == Outcome::kCapped) return finish(ProofVerdict::kUnknown, -1, timer);
      }
      obs::progress_tick({.phase = "ic3",
                          .depth = top_level(),
                          .seconds = timer.seconds()});

      // Extend the frame sequence and propagate clauses forward.
      new_level();
      for (int i = 1; i + 1 < static_cast<int>(frame_cubes_.size()); ++i) {
        auto& cubes = frame_cubes_[static_cast<std::size_t>(i)];
        for (std::size_t c = 0; c < cubes.size();) {
          if (solver().solve(with_acts(i, next_state_assumptions(cubes[c]))) ==
              sat::Result::kUnsat) {
            // The cube is unreachable from F_i entirely: push it to F_{i+1}.
            Cube moved = std::move(cubes[c]);
            cubes[c] = std::move(cubes.back());
            cubes.pop_back();
            block_cube_at(moved, i + 1);
          } else {
            ++c;
          }
        }
        if (cubes.empty()) {
          // F_i == F_{i+1}: an inductive strengthening of P. Proof closed.
          return finish(ProofVerdict::kProved, i, timer);
        }
      }
    }
    return finish(ProofVerdict::kUnknown, -1, timer);
  }

 private:
  enum class Outcome { kBlocked, kCex, kCapped };

  struct Obligation {
    std::vector<int> state;  ///< full valuation (concrete, for exact traces)
    int level = 0;
    int parent = -1;  ///< obligation whose state this one steps into
  };

  [[nodiscard]] sat::Solver& solver() noexcept { return unroller_.solver(); }
  [[nodiscard]] int top_level() const noexcept {
    return static_cast<int>(act_.size()) - 1;
  }

  void new_level() {
    act_.push_back(solver().new_var());
    frame_cubes_.emplace_back();
  }

  /// Assumption set activating frame F_i, plus `extra`.
  [[nodiscard]] std::vector<Lit> with_acts(int i, std::vector<Lit> extra) const {
    std::vector<Lit> out;
    for (int j = i; j < static_cast<int>(act_.size()); ++j) {
      out.push_back(Lit::make(act_[static_cast<std::size_t>(j)], false));
    }
    for (const Lit l : extra) out.push_back(l);
    return out;
  }

  [[nodiscard]] std::vector<Lit> next_state_assumptions(const Cube& cube) const {
    std::vector<Lit> out;
    out.reserve(cube.size());
    for (const auto& [v, val] : cube) out.push_back(unroller_.var_bit(1, v, val));
    return out;
  }

  [[nodiscard]] bool is_initial(const std::vector<int>& state) const {
    for (std::size_t v = 0; v < system_.vars().size(); ++v) {
      const auto& d = system_.vars()[v];
      if (!d.init_any && state[v] != d.init) return false;
    }
    return true;
  }

  [[nodiscard]] bool cube_intersects_init(const Cube& cube) const {
    // Initial states form a product set (init_any vars are free), so the
    // cube misses it iff some literal pins a non-init value.
    for (const auto& [v, val] : cube) {
      const auto& d = system_.vars()[static_cast<std::size_t>(v)];
      if (!d.init_any && val != d.init) return false;
    }
    return true;
  }

  void block_cube_at(const Cube& cube, int level) {
    std::vector<Lit> clause;
    clause.reserve(cube.size() + 1);
    for (const auto& [v, val] : cube) clause.push_back(~unroller_.var_bit(0, v, val));
    clause.push_back(Lit::make(act_[static_cast<std::size_t>(level)], true));
    solver().add_clause(std::move(clause));
    frame_cubes_[static_cast<std::size_t>(level)].push_back(cube);
  }

  /// The relative-induction query SAT?[ F_{i-1} ∧ ¬c ∧ T ∧ target' ] where
  /// c is the obligation's full-state cube. The ¬c conjunct lives behind a
  /// one-shot activation literal that is retired right after the call.
  [[nodiscard]] sat::Result relative_query(int i, const Cube& c) {
    const int tmp = solver().new_var();
    std::vector<Lit> not_c;
    not_c.reserve(c.size() + 1);
    for (const auto& [v, val] : c) not_c.push_back(~unroller_.var_bit(0, v, val));
    not_c.push_back(Lit::make(tmp, true));
    solver().add_clause(std::move(not_c));
    std::vector<Lit> extra{Lit::make(tmp, false)};
    for (const Lit l : next_state_assumptions(c)) extra.push_back(l);
    const sat::Result r = solver().solve(with_acts(i - 1, std::move(extra)));
    solver().add_clause({Lit::make(tmp, true)});  // retire ¬c
    return r;
  }

  /// Drops every literal the refutation did not use (assumption core), then
  /// repairs init-disjointness syntactically.
  [[nodiscard]] Cube core_shrink(const Cube& full) {
    std::unordered_set<int> core_codes;
    for (const Lit l : solver().conflict_core()) core_codes.insert(l.code());
    Cube g;
    for (const auto& [v, val] : full) {
      if (core_codes.count(unroller_.var_bit(1, v, val).code()) != 0) {
        g.emplace_back(v, val);
      }
    }
    if (cube_intersects_init(g)) {
      for (const auto& [v, val] : full) {
        const auto& d = system_.vars()[static_cast<std::size_t>(v)];
        if (!d.init_any && val != d.init) {
          g.emplace_back(v, val);
          break;
        }
      }
      TT_ASSERT(!cube_intersects_init(g));
    }
    return g;
  }

  /// MIC-style strengthening on top of the core shrink: greedily retry the
  /// relative-induction query with each literal dropped, keeping every drop
  /// the solver still refutes. One extra solve per literal buys cubes that
  /// exclude whole families of unreachable states instead of single points —
  /// without it, frame convergence on the star IR is hopeless (the
  /// predecessor space of an over-approximated frame is the full valuation
  /// space, not the reachable set).
  [[nodiscard]] Cube generalize(int level, const Cube& full) {
    Cube g = core_shrink(full);
    // Single greedy pass: each literal is offered for removal once; a
    // successful removal re-shrinks to the new refutation's core (which may
    // discard several more literals for free) and continues from the same
    // position. Quadratic restart policies buy slightly smaller cubes for
    // 2-3x the solver calls — a bad trade here.
    for (std::size_t i = 0; i < g.size() && g.size() > 1;) {
      Cube cand;
      cand.reserve(g.size() - 1);
      for (std::size_t j = 0; j < g.size(); ++j) {
        if (j != i) cand.push_back(g[j]);
      }
      if (cube_intersects_init(cand) ||
          relative_query(level, cand) != sat::Result::kUnsat) {
        ++i;
        continue;
      }
      Cube shrunk = core_shrink(cand);
      g = shrunk.size() < cand.size() ? std::move(shrunk) : std::move(cand);
    }
    return g;
  }

  [[nodiscard]] static Cube state_cube(const std::vector<int>& state) {
    Cube c;
    c.reserve(state.size());
    for (std::size_t v = 0; v < state.size(); ++v) {
      c.emplace_back(static_cast<VarId>(v), state[v]);
    }
    return c;
  }

  /// Blocks the bad state `m` found in F_N, recursing through predecessors
  /// via the proof-obligation queue.
  Outcome block_bad_state(std::vector<int> m) {
    std::vector<Obligation> pool;
    // Min-priority queue on (level, insertion order): lowest frames first,
    // so counterexamples are confirmed before effort is spent above them.
    using Entry = std::tuple<int, std::uint64_t, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
    std::uint64_t seq = 0;
    pool.push_back({std::move(m), top_level(), -1});
    queue.emplace(top_level(), seq++, 0);

    while (!queue.empty()) {
      const auto [level, order, idx] = queue.top();
      queue.pop();
      ++result_.proof_obligations;
      if (result_.proof_obligations > options_.max_obligations) return Outcome::kCapped;
      if ((result_.proof_obligations & 0xFF) == 0) {
        obs::progress_tick({.phase = "ic3",
                            .depth = top_level(),
                            .round = static_cast<long long>(result_.proof_obligations)});
      }

      if (is_initial(pool[static_cast<std::size_t>(idx)].state)) {
        // The obligation chain is a concrete initial path to a bad state.
        result_.trace.clear();
        for (int cur = idx; cur != -1; cur = pool[static_cast<std::size_t>(cur)].parent) {
          result_.trace.push_back(pool[static_cast<std::size_t>(cur)].state);
        }
        return Outcome::kCex;
      }
      TT_ASSERT(level > 0);  // level-0 obligations are always initial states

      const Cube c = state_cube(pool[static_cast<std::size_t>(idx)].state);
      if (relative_query(level, c) == sat::Result::kSat) {
        // A predecessor in F_{level-1} reaches the obligation: chase it
        // first, then retry this obligation.
        pool.push_back({unroller_.decode_frame(0), level - 1, idx});
        queue.emplace(level - 1, seq++, static_cast<int>(pool.size()) - 1);
        queue.emplace(level, seq++, idx);
      } else {
        block_cube_at(generalize(level, c), level);
        if (level < top_level()) {
          // Obligation forwarding: chase the same state at the next frame,
          // deepening the strengthening (and finding deep counterexamples).
          pool[static_cast<std::size_t>(idx)].level = level + 1;
          queue.emplace(level + 1, seq++, idx);
        }
      }
    }
    return Outcome::kBlocked;
  }

  ProofResult finish(ProofVerdict verdict, int depth, const Timer& timer) {
    result_.verdict = verdict;
    result_.depth = depth;
    result_.frames = static_cast<std::uint64_t>(top_level()) + 1;
    result_.solver_calls = solver().stats().solve_calls;
    result_.clauses_reused = solver().stats().clauses_reused;
    result_.total_conflicts = solver().stats().conflicts;
    result_.seconds = timer.seconds();
    return result_;
  }

  const kernel::System& system_;
  Ic3Options options_;
  Unroller unroller_;
  Lit p0_;
  Lit p1_;
  std::vector<int> act_;                  ///< activation var per frame level
  std::vector<std::vector<Cube>> frame_cubes_;  ///< cubes blocked at each level
  ProofResult result_;
};

}  // namespace

ProofResult check_invariant_ic3(const kernel::System& system, kernel::ExprId property,
                                const Ic3Options& options) {
  Ic3 engine(system, property, options);
  return engine.run();
}

}  // namespace tt::bmc
