#include "bmc/kinduction.hpp"

#include <unordered_set>

#include "bmc/encoder.hpp"
#include "kernel/packed_system.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace tt::bmc {

namespace {

struct StateHash {
  std::size_t operator()(const kernel::PackedSystem::State& s) const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const std::uint64_t w : s) {
      h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

/// Result of the lazy explicit reachability sweep (the completeness
/// threshold). Exactly one of the two fields is >= 0 unless the state
/// budget ran out (then both are -1): `violation_depth` is the minimal BFS
/// depth of a reachable property-violating state, `diameter` the BFS depth
/// of the reachable graph when no such state exists.
struct ReachSweep {
  int diameter = -1;
  int violation_depth = -1;
};

ReachSweep reachability_sweep(const kernel::System& system, kernel::ExprId property,
                              std::size_t state_budget) {
  obs::Span span("kind.diameter");
  const kernel::PackedSystem ps(system);
  ReachSweep out;
  const auto violates = [&](const kernel::PackedSystem::State& s) {
    return system.exprs().eval(property, ps.unpack(s)) == 0;
  };
  std::unordered_set<kernel::PackedSystem::State, StateHash> seen;
  std::vector<kernel::PackedSystem::State> frontier;
  ps.initial_states([&](const kernel::PackedSystem::State& s) {
    if (seen.insert(s).second) frontier.push_back(s);
  });
  int depth = 0;
  std::vector<kernel::PackedSystem::State> next;
  while (!frontier.empty()) {
    // BFS order makes the first violating level the minimal violating
    // depth; stopping there keeps violated runs cheap.
    for (const auto& s : frontier) {
      if (violates(s)) {
        out.violation_depth = depth;
        return out;
      }
    }
    if (seen.size() > state_budget) return {};
    next.clear();
    for (const auto& s : frontier) {
      ps.successors(s, [&](const kernel::PackedSystem::State& t) {
        if (seen.insert(t).second) next.push_back(t);
      });
    }
    if (next.empty()) break;
    std::swap(frontier, next);
    ++depth;
  }
  out.diameter = depth;
  span.set_arg("depth", depth);
  span.set_arg("states", static_cast<int>(seen.size()));
  return out;
}

}  // namespace

ProofResult check_invariant_kind(const kernel::System& system, kernel::ExprId property,
                                 const KindOptions& options) {
  Timer timer;
  obs::Span run_span("kind.run");
  ProofResult result;

  Unroller base(system);
  Unroller step(system, {.constrain_initial = false});

  bool diameter_tried = false;

  auto finish = [&](ProofVerdict verdict, int depth) {
    result.verdict = verdict;
    result.depth = depth;
    result.solver_calls =
        base.solver().stats().solve_calls + step.solver().stats().solve_calls;
    result.clauses_reused =
        base.solver().stats().clauses_reused + step.solver().stats().clauses_reused;
    result.total_conflicts =
        base.solver().stats().conflicts + step.solver().stats().conflicts;
    result.seconds = timer.seconds();
    return result;
  };

  for (int k = 0; k <= options.max_k; ++k) {
    obs::Span depth_span("kind.depth");
    depth_span.set_arg("k", k);
    result.frames = static_cast<std::uint64_t>(k) + 1;

    // Base case: is P violated at depth exactly k? (Shallower depths were
    // already refuted, so the first SAT is a minimal counterexample.)
    base.ensure_frames(k + 1);
    if (base.solver().solve({~base.bool_expr(property, k)}) == sat::Result::kSat) {
      result.trace.reserve(static_cast<std::size_t>(k) + 1);
      for (int t = 0; t <= k; ++t) result.trace.push_back(base.decode_frame(t));
      return finish(ProofVerdict::kViolated, k);
    }

    // Inductive step: can k frames of P end in ¬P, starting anywhere?
    // (Only reached while the completeness threshold is unattempted or out
    // of budget — a successful sweep finishes the run by itself.)
    step.ensure_frames(k + 1);
    if (k >= 1) {
      // P holds permanently at the previous frame (asserted once, kept).
      step.solver().add_clause({step.bool_expr(property, k - 1)});
      if (options.simple_path) {
        for (int j = 0; j < k; ++j) {
          step.solver().add_clause({step.frames_differ(j, k)});
        }
      }
    }
    if (step.solver().solve({~step.bool_expr(property, k)}) == sat::Result::kUnsat) {
      return finish(ProofVerdict::kProved, k);
    }

    obs::progress_tick({.phase = "kind", .depth = k, .seconds = timer.seconds()});

    // Pure induction did not close quickly: run the explicit reachability
    // sweep once (the completeness threshold). It either certifies P on
    // every reachable state — closing the proof with no further SAT work —
    // or pins the exact minimal violating depth, which the base instance
    // then reaches with per-depth probes (keeping the counterexample
    // SAT-derived and minimal-length).
    if (!diameter_tried && k >= options.diameter_after_k &&
        options.diameter_state_budget > 0) {
      diameter_tried = true;
      const ReachSweep sweep =
          reachability_sweep(system, property, options.diameter_state_budget);
      run_span.set_arg("diameter", sweep.diameter);
      if (sweep.violation_depth >= 0) {
        TT_ASSERT(sweep.violation_depth > k);  // depths <= k are refuted
        for (int t = k + 1; t <= sweep.violation_depth; ++t) {
          base.ensure_frames(t + 1);
          result.frames = static_cast<std::uint64_t>(t) + 1;
          if (base.solver().solve({~base.bool_expr(property, t)}) == sat::Result::kSat) {
            result.trace.reserve(static_cast<std::size_t>(t) + 1);
            for (int f = 0; f <= t; ++f) result.trace.push_back(base.decode_frame(f));
            return finish(ProofVerdict::kViolated, t);
          }
          obs::progress_tick({.phase = "kind", .depth = t, .seconds = timer.seconds()});
        }
        TT_ASSERT(false && "explicit violation depth not reached by the base instance");
      }
      if (sweep.diameter >= 0) {
        result.via_diameter = true;
        return finish(ProofVerdict::kProved, sweep.diameter);
      }
      // Budget ran out: pure induction is the only remaining route.
    }
  }
  return finish(ProofVerdict::kUnknown, -1);
}

}  // namespace tt::bmc
