// Shared result vocabulary of the unbounded SAT-based proof engines
// (k-induction and IC3/PDR, DESIGN.md §3.10). Unlike plain BMC, these
// engines can return PROVED — an unbounded guarantee — rather than merely
// failing to refute within a depth bound.
#pragma once

#include <cstdint>
#include <vector>

namespace tt::bmc {

enum class ProofVerdict {
  kProved,    ///< the invariant holds on every reachable state
  kViolated,  ///< a concrete counterexample trace was found
  kUnknown,   ///< resource cap hit before either answer
};

[[nodiscard]] constexpr const char* to_string(ProofVerdict v) noexcept {
  switch (v) {
    case ProofVerdict::kProved: return "PROVED";
    case ProofVerdict::kViolated: return "VIOLATED";
    case ProofVerdict::kUnknown: return "UNKNOWN";
  }
  return "?";
}

struct ProofResult {
  ProofVerdict verdict = ProofVerdict::kUnknown;
  /// kProved: the k (induction depth / converged frame) closing the proof.
  /// kViolated: depth of the counterexample (trace length - 1).
  int depth = -1;
  std::vector<std::vector<int>> trace;  ///< valuations, only for kViolated
  std::uint64_t solver_calls = 0;       ///< SAT queries issued
  std::uint64_t clauses_reused = 0;     ///< learned clauses carried across queries
  std::uint64_t total_conflicts = 0;
  std::uint64_t frames = 0;             ///< IC3 frame count / k-induction frames unrolled
  std::uint64_t proof_obligations = 0;  ///< IC3 obligations processed (0 for k-induction)
  /// k-induction only: the proof was closed by the explicit reachability
  /// diameter (completeness threshold) rather than a pure inductive step.
  bool via_diameter = false;
  double seconds = 0.0;
};

}  // namespace tt::bmc
