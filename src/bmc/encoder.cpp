#include "bmc/encoder.hpp"

#include <algorithm>

#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace tt::bmc {

using kernel::ExprId;
using kernel::ExprNode;
using kernel::Op;
using kernel::VarId;
using sat::Lit;

Unroller::Unroller(const kernel::System& system, Options opts)
    : system_(system), opts_(opts) {
  true_lit_ = Lit::make(solver_.new_var(), false);
  solver_.add_clause({true_lit_});
  ensure_frames(1);
  if (opts_.constrain_initial) encode_initial();
}

void Unroller::ensure_frames(int frames) {
  while (frames_ < frames) {
    add_frame();
    if (frames_ >= 2) encode_transition(frames_ - 2);
  }
}

void Unroller::add_frame() {
  // Allocate one-hot bits for the new frame and add the one-hot axioms.
  bits_.emplace_back();
  auto& frame = bits_.back();
  frame.resize(system_.vars().size());
  for (std::size_t v = 0; v < system_.vars().size(); ++v) {
    const int domain = system_.vars()[v].domain;
    for (int val = 0; val < domain; ++val) {
      frame[v].push_back(solver_.new_var());
    }
    // At least one value...
    std::vector<Lit> alo;
    for (int bit : frame[v]) alo.push_back(Lit::make(bit, false));
    solver_.add_clause(alo);
    // ... and at most one.
    for (int a = 0; a < domain; ++a) {
      for (int b = a + 1; b < domain; ++b) {
        solver_.add_clause({Lit::make(frame[v][static_cast<std::size_t>(a)], true),
                            Lit::make(frame[v][static_cast<std::size_t>(b)], true)});
      }
    }
  }
  ++frames_;
}

Lit Unroller::var_bit(int t, VarId v, int val) const {
  return Lit::make(
      bits_[static_cast<std::size_t>(t)][static_cast<std::size_t>(v)][static_cast<std::size_t>(val)],
      false);
}

Lit Unroller::bool_expr(ExprId e, int t) {
  TT_ASSERT(t < frames_);
  const auto key = std::pair(e, t);
  if (const auto it = bool_cache_.find(key); it != bool_cache_.end()) return it->second;
  const ExprNode& n = system_.exprs().node(e);
  Lit out = true_lit_;
  switch (n.op) {
    case Op::kEqC: out = int_eq(n.a, n.k, t); break;
    case Op::kLtC:
    case Op::kGeC: {
      std::vector<Lit> alts;
      const int dom = expr_domain(n.a);
      for (int val = 0; val < dom; ++val) {
        const bool in = n.op == Op::kLtC ? (val < n.k) : (val >= n.k);
        if (in) alts.push_back(int_eq(n.a, val, t));
      }
      out = define_or(alts);
      break;
    }
    case Op::kEqV: {
      std::vector<Lit> alts;
      const int dom = std::min(expr_domain(n.a), expr_domain(n.b));
      for (int val = 0; val < dom; ++val) {
        alts.push_back(define_and({int_eq(n.a, val, t), int_eq(n.b, val, t)}));
      }
      out = define_or(alts);
      break;
    }
    case Op::kAnd: out = define_and({bool_expr(n.a, t), bool_expr(n.b, t)}); break;
    case Op::kOr: out = define_or({bool_expr(n.a, t), bool_expr(n.b, t)}); break;
    case Op::kNot: out = ~bool_expr(n.a, t); break;
    case Op::kIte: {
      const Lit c = bool_expr(n.c, t);
      out = define_or({define_and({c, bool_expr(n.a, t)}),
                       define_and({~c, bool_expr(n.b, t)})});
      break;
    }
    default:
      TT_REQUIRE(false, "integer expression used as boolean in BMC encoding");
  }
  bool_cache_.emplace(key, out);
  return out;
}

Lit Unroller::int_eq(ExprId e, int val, int t) {
  const ExprNode& n = system_.exprs().node(e);
  switch (n.op) {
    case Op::kConst: return n.k == val ? true_lit_ : ~true_lit_;
    case Op::kVar: {
      const int dom = system_.vars()[static_cast<std::size_t>(n.var)].domain;
      if (val < 0 || val >= dom) return ~true_lit_;
      return var_bit(t, n.var, val);
    }
    case Op::kAddMod: {
      if (val < 0 || val >= n.m) return ~true_lit_;
      const int dom = expr_domain(n.a);
      // e.a may take any value w with (w + k) mod m == val.
      std::vector<Lit> alts;
      for (int w = 0; w < dom; ++w) {
        if (((w + n.k) % n.m + n.m) % n.m == val) alts.push_back(int_eq(n.a, w, t));
      }
      return define_or(alts);
    }
    case Op::kIte: {
      const Lit c = bool_expr(n.c, t);
      return define_or({define_and({c, int_eq(n.a, val, t)}),
                        define_and({~c, int_eq(n.b, val, t)})});
    }
    default: {
      // Boolean expression used as 0/1 integer.
      const Lit b = bool_expr(e, t);
      if (val == 1) return b;
      if (val == 0) return ~b;
      return ~true_lit_;
    }
  }
}

int Unroller::expr_domain(ExprId e) const {
  const ExprNode& n = system_.exprs().node(e);
  switch (n.op) {
    case Op::kConst: return n.k + 1;
    case Op::kVar: return system_.vars()[static_cast<std::size_t>(n.var)].domain;
    case Op::kAddMod: return n.m;
    case Op::kIte: return std::max(expr_domain(n.a), expr_domain(n.b));
    default: return 2;  // boolean
  }
}

Lit Unroller::frames_differ(int i, int j) {
  TT_ASSERT(i < frames_ && j < frames_);
  std::vector<Lit> any_diff;
  for (std::size_t v = 0; v < system_.vars().size(); ++v) {
    const int dom = system_.vars()[v].domain;
    std::vector<Lit> diff_v;
    for (int val = 0; val < dom; ++val) {
      diff_v.push_back(
          define_and({var_bit(i, static_cast<VarId>(v), val),
                      ~var_bit(j, static_cast<VarId>(v), val)}));
    }
    any_diff.push_back(define_or(diff_v));
  }
  return define_or(any_diff);
}

std::vector<int> Unroller::decode_frame(int t) const {
  std::vector<int> v(system_.vars().size(), -1);
  for (std::size_t var = 0; var < v.size(); ++var) {
    const int dom = system_.vars()[var].domain;
    for (int val = 0; val < dom; ++val) {
      if (solver_.value(bits_[static_cast<std::size_t>(t)][var][static_cast<std::size_t>(val)])) {
        v[var] = val;
        break;
      }
    }
    TT_ASSERT(v[var] >= 0);
  }
  return v;
}

Lit Unroller::define_and(const std::vector<Lit>& xs) {
  if (xs.empty()) return true_lit_;
  if (xs.size() == 1) return xs[0];
  const Lit d = Lit::make(solver_.new_var(), false);
  std::vector<Lit> big{d};
  for (const Lit x : xs) {
    solver_.add_clause({~d, x});
    big.push_back(~x);
  }
  solver_.add_clause(big);
  return d;
}

Lit Unroller::define_or(const std::vector<Lit>& xs) {
  if (xs.empty()) return ~true_lit_;
  if (xs.size() == 1) return xs[0];
  const Lit d = Lit::make(solver_.new_var(), false);
  std::vector<Lit> big{~d};
  for (const Lit x : xs) {
    solver_.add_clause({d, ~x});
    big.push_back(x);
  }
  solver_.add_clause(big);
  return d;
}

void Unroller::encode_initial() {
  for (std::size_t v = 0; v < system_.vars().size(); ++v) {
    const auto& d = system_.vars()[v];
    if (!d.init_any) {
      solver_.add_clause({var_bit(0, static_cast<VarId>(v), d.init)});
    }
  }
}

void Unroller::encode_transition(int t) {
  std::vector<std::uint8_t> owned(system_.vars().size(), 0);
  for (std::size_t g = 0; g < system_.groups().size(); ++g) {
    const auto& grp = system_.groups()[g];
    // Selector per command (+ optional stutter selector).
    std::vector<Lit> selectors;
    for (const auto& cmd : grp.commands) {
      const Lit s = Lit::make(solver_.new_var(), false);
      selectors.push_back(s);
      // Selector implies the guard at frame t.
      solver_.add_clause({~s, bool_expr(cmd.guard, t)});
      // Selector implies the assignments at frame t+1.
      for (const auto& a : cmd.assigns) {
        owned[static_cast<std::size_t>(a.var)] = 1;
        const int dom = system_.vars()[static_cast<std::size_t>(a.var)].domain;
        for (int val = 0; val < dom; ++val) {
          // s & (expr == val) -> var'[val]
          solver_.add_clause({~s, ~int_eq(a.value, val, t), var_bit(t + 1, a.var, val)});
        }
      }
      // Selector implies frame axioms for owned-but-unassigned variables;
      // handled below per variable by collecting which commands assign it.
    }
    Lit stutter = ~true_lit_;
    if (grp.else_stutter) {
      stutter = Lit::make(solver_.new_var(), false);
      selectors.push_back(stutter);
      // Stuttering is only allowed when no command is enabled.
      for (const auto& cmd : grp.commands) {
        solver_.add_clause({~stutter, ~bool_expr(cmd.guard, t)});
      }
    }
    // Exactly one selector fires.
    solver_.add_clause(selectors);
    for (std::size_t a = 0; a < selectors.size(); ++a) {
      for (std::size_t b = a + 1; b < selectors.size(); ++b) {
        solver_.add_clause({~selectors[a], ~selectors[b]});
      }
    }
    // Frame axioms: for each variable owned by this group, any selected
    // command that does not assign it (and the stutter option) keeps it.
    for (std::size_t v = 0; v < system_.vars().size(); ++v) {
      if (system_.vars()[v].group != static_cast<int>(g)) continue;
      owned[v] = 1;
      for (std::size_t c = 0; c < grp.commands.size(); ++c) {
        bool assigns = false;
        for (const auto& a : grp.commands[c].assigns) {
          if (a.var == static_cast<VarId>(v)) {
            assigns = true;
            break;
          }
        }
        if (assigns) continue;
        frame_equal(selectors[c], static_cast<VarId>(v), t);
      }
      if (grp.else_stutter) frame_equal(stutter, static_cast<VarId>(v), t);
    }
  }
  // Globally unowned variables never change.
  for (std::size_t v = 0; v < system_.vars().size(); ++v) {
    if (system_.vars()[v].group == -1) frame_equal(true_lit_, static_cast<VarId>(v), t);
  }
}

void Unroller::frame_equal(Lit cond, VarId v, int t) {
  const int dom = system_.vars()[static_cast<std::size_t>(v)].domain;
  for (int val = 0; val < dom; ++val) {
    solver_.add_clause({~cond, ~var_bit(t, v, val), var_bit(t + 1, v, val)});
  }
}

BmcResult check_invariant_bounded(const kernel::System& system, kernel::ExprId property,
                                  int max_depth) {
  Timer timer;
  obs::Span run_span("bmc.run");
  run_span.set_arg("max_depth", max_depth);
  BmcResult result;
  Unroller u(system);
  for (int k = 0; k <= max_depth; ++k) {
    obs::Span depth_span("bmc.depth");
    depth_span.set_arg("k", k);
    u.ensure_frames(k + 1);
    // Depth goal as an assumption: the k-unrolling stays intact (and the
    // learned clauses stay sound) when depth k+1 extends it.
    const sat::Result r = u.solver().solve({~u.bool_expr(property, k)});
    if (obs::enabled()) {
      obs::emit_counter("bmc.conflicts",
                        static_cast<double>(u.solver().stats().conflicts));
      obs::emit_counter("bmc.clauses", static_cast<double>(u.solver().num_clauses()));
    }
    obs::progress_tick({.phase = "bmc",
                        .depth = k,
                        .seconds = timer.seconds(),
                        .total_hint = static_cast<std::size_t>(max_depth)});
    if (r == sat::Result::kSat) {
      result.violation_found = true;
      result.depth = k;
      for (int t = 0; t <= k; ++t) result.trace.push_back(u.decode_frame(t));
      break;
    }
  }
  result.total_conflicts = u.solver().stats().conflicts;
  result.total_clauses = u.solver().num_clauses();
  result.solver_calls = u.solver().stats().solve_calls;
  result.clauses_reused = u.solver().stats().clauses_reused;
  result.seconds = timer.seconds();
  return result;
}

}  // namespace tt::bmc
