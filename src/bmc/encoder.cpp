#include "bmc/encoder.hpp"

#include <map>

#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace tt::bmc {

namespace {

using kernel::ExprId;
using kernel::ExprNode;
using kernel::Op;
using kernel::System;
using kernel::VarId;
using sat::Lit;

/// One unrolling instance: owns the solver and the frame variable tables.
class Unrolling {
 public:
  Unrolling(const System& system, int frames) : system_(system) {
    // Allocate one-hot bits for every frame and add the one-hot axioms.
    bits_.resize(static_cast<std::size_t>(frames));
    for (int t = 0; t < frames; ++t) {
      auto& frame = bits_[static_cast<std::size_t>(t)];
      frame.resize(system_.vars().size());
      for (std::size_t v = 0; v < system_.vars().size(); ++v) {
        const int domain = system_.vars()[v].domain;
        for (int val = 0; val < domain; ++val) {
          frame[v].push_back(solver_.new_var());
        }
        // At least one value...
        std::vector<Lit> alo;
        for (int bit : frame[v]) alo.push_back(Lit::make(bit, false));
        solver_.add_clause(alo);
        // ... and at most one.
        for (int a = 0; a < domain; ++a) {
          for (int b = a + 1; b < domain; ++b) {
            solver_.add_clause({Lit::make(frame[v][static_cast<std::size_t>(a)], true),
                                Lit::make(frame[v][static_cast<std::size_t>(b)], true)});
          }
        }
      }
    }
    // Constant true literal.
    true_lit_ = Lit::make(solver_.new_var(), false);
    solver_.add_clause({true_lit_});

    encode_initial();
    for (int t = 0; t + 1 < frames; ++t) encode_transition(t);
  }

  [[nodiscard]] sat::Solver& solver() noexcept { return solver_; }

  /// Literal of "variable v has value val in frame t".
  [[nodiscard]] Lit var_bit(int t, VarId v, int val) const {
    return Lit::make(
        bits_[static_cast<std::size_t>(t)][static_cast<std::size_t>(v)][static_cast<std::size_t>(val)],
        false);
  }

  /// Literal equivalent to the boolean expression `e` at frame `t`.
  [[nodiscard]] Lit bool_expr(ExprId e, int t) {
    const auto key = std::pair(e, t);
    if (const auto it = bool_cache_.find(key); it != bool_cache_.end()) return it->second;
    const ExprNode& n = system_.exprs().node(e);
    Lit out = true_lit_;
    switch (n.op) {
      case Op::kEqC: out = int_eq(n.a, n.k, t); break;
      case Op::kLtC:
      case Op::kGeC: {
        std::vector<Lit> alts;
        const int dom = expr_domain(n.a);
        for (int val = 0; val < dom; ++val) {
          const bool in = n.op == Op::kLtC ? (val < n.k) : (val >= n.k);
          if (in) alts.push_back(int_eq(n.a, val, t));
        }
        out = define_or(alts);
        break;
      }
      case Op::kEqV: {
        std::vector<Lit> alts;
        const int dom = std::min(expr_domain(n.a), expr_domain(n.b));
        for (int val = 0; val < dom; ++val) {
          alts.push_back(define_and({int_eq(n.a, val, t), int_eq(n.b, val, t)}));
        }
        out = define_or(alts);
        break;
      }
      case Op::kAnd: out = define_and({bool_expr(n.a, t), bool_expr(n.b, t)}); break;
      case Op::kOr: out = define_or({bool_expr(n.a, t), bool_expr(n.b, t)}); break;
      case Op::kNot: out = ~bool_expr(n.a, t); break;
      case Op::kIte: {
        const Lit c = bool_expr(n.c, t);
        out = define_or({define_and({c, bool_expr(n.a, t)}),
                         define_and({~c, bool_expr(n.b, t)})});
        break;
      }
      default:
        TT_REQUIRE(false, "integer expression used as boolean in BMC encoding");
    }
    bool_cache_.emplace(key, out);
    return out;
  }

  /// Literal equivalent to "integer expression e equals val" at frame t.
  [[nodiscard]] Lit int_eq(ExprId e, int val, int t) {
    const ExprNode& n = system_.exprs().node(e);
    switch (n.op) {
      case Op::kConst: return n.k == val ? true_lit_ : ~true_lit_;
      case Op::kVar: {
        const int dom = system_.vars()[static_cast<std::size_t>(n.var)].domain;
        if (val < 0 || val >= dom) return ~true_lit_;
        return var_bit(t, n.var, val);
      }
      case Op::kAddMod: {
        if (val < 0 || val >= n.m) return ~true_lit_;
        const int dom = expr_domain(n.a);
        // e.a may take any value w with (w + k) mod m == val.
        std::vector<Lit> alts;
        for (int w = 0; w < dom; ++w) {
          if (((w + n.k) % n.m + n.m) % n.m == val) alts.push_back(int_eq(n.a, w, t));
        }
        return define_or(alts);
      }
      case Op::kIte: {
        const Lit c = bool_expr(n.c, t);
        return define_or({define_and({c, int_eq(n.a, val, t)}),
                          define_and({~c, int_eq(n.b, val, t)})});
      }
      default: {
        // Boolean expression used as 0/1 integer.
        const Lit b = bool_expr(e, t);
        if (val == 1) return b;
        if (val == 0) return ~b;
        return ~true_lit_;
      }
    }
  }

  /// Upper bound (exclusive) of the values an integer expression can take.
  [[nodiscard]] int expr_domain(ExprId e) const {
    const ExprNode& n = system_.exprs().node(e);
    switch (n.op) {
      case Op::kConst: return n.k + 1;
      case Op::kVar: return system_.vars()[static_cast<std::size_t>(n.var)].domain;
      case Op::kAddMod: return n.m;
      case Op::kIte: return std::max(expr_domain(n.a), expr_domain(n.b));
      default: return 2;  // boolean
    }
  }

  [[nodiscard]] std::vector<int> decode_frame(int t) const {
    std::vector<int> v(system_.vars().size(), -1);
    for (std::size_t var = 0; var < v.size(); ++var) {
      const int dom = system_.vars()[var].domain;
      for (int val = 0; val < dom; ++val) {
        if (solver_.value(bits_[static_cast<std::size_t>(t)][var][static_cast<std::size_t>(val)])) {
          v[var] = val;
          break;
        }
      }
      TT_ASSERT(v[var] >= 0);
    }
    return v;
  }

 private:
  /// Tseitin AND definition: returns a literal d with d <-> AND(xs).
  Lit define_and(const std::vector<Lit>& xs) {
    if (xs.empty()) return true_lit_;
    if (xs.size() == 1) return xs[0];
    const Lit d = Lit::make(solver_.new_var(), false);
    std::vector<Lit> big{d};
    for (const Lit x : xs) {
      solver_.add_clause({~d, x});
      big.push_back(~x);
    }
    solver_.add_clause(big);
    return d;
  }

  /// Tseitin OR definition.
  Lit define_or(const std::vector<Lit>& xs) {
    if (xs.empty()) return ~true_lit_;
    if (xs.size() == 1) return xs[0];
    const Lit d = Lit::make(solver_.new_var(), false);
    std::vector<Lit> big{~d};
    for (const Lit x : xs) {
      solver_.add_clause({d, ~x});
      big.push_back(x);
    }
    solver_.add_clause(big);
    return d;
  }

  void encode_initial() {
    for (std::size_t v = 0; v < system_.vars().size(); ++v) {
      const auto& d = system_.vars()[v];
      if (!d.init_any) {
        solver_.add_clause({var_bit(0, static_cast<VarId>(v), d.init)});
      }
    }
  }

  void encode_transition(int t) {
    std::vector<std::uint8_t> owned(system_.vars().size(), 0);
    for (std::size_t g = 0; g < system_.groups().size(); ++g) {
      const auto& grp = system_.groups()[g];
      // Selector per command (+ optional stutter selector).
      std::vector<Lit> selectors;
      for (const auto& cmd : grp.commands) {
        const Lit s = Lit::make(solver_.new_var(), false);
        selectors.push_back(s);
        // Selector implies the guard at frame t.
        solver_.add_clause({~s, bool_expr(cmd.guard, t)});
        // Selector implies the assignments at frame t+1.
        for (const auto& a : cmd.assigns) {
          owned[static_cast<std::size_t>(a.var)] = 1;
          const int dom = system_.vars()[static_cast<std::size_t>(a.var)].domain;
          for (int val = 0; val < dom; ++val) {
            // s & (expr == val) -> var'[val]
            solver_.add_clause({~s, ~int_eq(a.value, val, t), var_bit(t + 1, a.var, val)});
          }
        }
        // Selector implies frame axioms for owned-but-unassigned variables;
        // handled below per variable by collecting which commands assign it.
      }
      Lit stutter = ~true_lit_;
      if (grp.else_stutter) {
        stutter = Lit::make(solver_.new_var(), false);
        selectors.push_back(stutter);
        // Stuttering is only allowed when no command is enabled.
        for (const auto& cmd : grp.commands) {
          solver_.add_clause({~stutter, ~bool_expr(cmd.guard, t)});
        }
      }
      // Exactly one selector fires.
      solver_.add_clause(selectors);
      for (std::size_t a = 0; a < selectors.size(); ++a) {
        for (std::size_t b = a + 1; b < selectors.size(); ++b) {
          solver_.add_clause({~selectors[a], ~selectors[b]});
        }
      }
      // Frame axioms: for each variable owned by this group, any selected
      // command that does not assign it (and the stutter option) keeps it.
      for (std::size_t v = 0; v < system_.vars().size(); ++v) {
        if (system_.vars()[v].group != static_cast<int>(g)) continue;
        owned[v] = 1;
        for (std::size_t c = 0; c < grp.commands.size(); ++c) {
          bool assigns = false;
          for (const auto& a : grp.commands[c].assigns) {
            if (a.var == static_cast<VarId>(v)) {
              assigns = true;
              break;
            }
          }
          if (assigns) continue;
          frame_equal(selectors[c], static_cast<VarId>(v), t);
        }
        if (grp.else_stutter) frame_equal(stutter, static_cast<VarId>(v), t);
      }
    }
    // Globally unowned variables never change.
    for (std::size_t v = 0; v < system_.vars().size(); ++v) {
      if (system_.vars()[v].group == -1) frame_equal(true_lit_, static_cast<VarId>(v), t);
    }
  }

  /// Under `cond`, variable v keeps its value across frames t -> t+1.
  void frame_equal(Lit cond, VarId v, int t) {
    const int dom = system_.vars()[static_cast<std::size_t>(v)].domain;
    for (int val = 0; val < dom; ++val) {
      solver_.add_clause({~cond, ~var_bit(t, v, val), var_bit(t + 1, v, val)});
    }
  }

  const System& system_;
  sat::Solver solver_;
  std::vector<std::vector<std::vector<int>>> bits_;  // [frame][var][value]
  Lit true_lit_ = Lit::make(0, false);
  std::map<std::pair<ExprId, int>, Lit> bool_cache_;
};

}  // namespace

BmcResult check_invariant_bounded(const kernel::System& system, kernel::ExprId property,
                                  int max_depth) {
  Timer timer;
  obs::Span run_span("bmc.run");
  run_span.set_arg("max_depth", max_depth);
  BmcResult result;
  for (int k = 0; k <= max_depth; ++k) {
    obs::Span depth_span("bmc.depth");
    depth_span.set_arg("k", k);
    Unrolling u(system, k + 1);
    u.solver().add_clause({~u.bool_expr(property, k)});
    const sat::Result r = u.solver().solve();
    result.total_conflicts += u.solver().stats().conflicts;
    result.total_clauses += u.solver().num_clauses();
    if (obs::enabled()) {
      obs::emit_counter("bmc.conflicts",
                        static_cast<double>(u.solver().stats().conflicts));
      obs::emit_counter("bmc.clauses", static_cast<double>(u.solver().num_clauses()));
    }
    obs::progress_tick({.phase = "bmc",
                        .depth = k,
                        .seconds = timer.seconds(),
                        .total_hint = static_cast<std::size_t>(max_depth)});
    if (r == sat::Result::kSat) {
      result.violation_found = true;
      result.depth = k;
      for (int t = 0; t <= k; ++t) result.trace.push_back(u.decode_frame(t));
      break;
    }
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace tt::bmc
