// SAT-based bounded model checking over kernel::System — the rebuild of the
// paper's "bounded (using a SAT solver)" SAL engine (§3, §5.2).
//
// Encoding: one-hot per finite-domain variable and time frame (domains are
// small, so one-hot beats bit-blasting: comparisons become single literals
// and modular increments become per-value implications). Each choice group
// gets exactly-one selector variables per frame; a selector implies its
// command's guard at frame t and its assignments at frame t+1; unassigned
// variables are framed. Integer expressions are encoded through the
// "expr == value" recursion, boolean ones through Tseitin definitions.
//
// The unrolling is *incremental* (DESIGN.md §3.10): one `Unroller` owns one
// `sat::Solver` for the whole run, depth k+1 extends the k-frame formula
// instead of re-encoding it, the per-depth goal `¬P@k` is passed as an
// assumption (never asserted), and learned clauses carry across depths. The
// check iterates depths 0, 1, 2, ...: at depth k the property must be
// violated in frame k. Because shallower depths were already refuted, the
// first SAT answer yields a minimal-length counterexample — mirroring how
// the paper "explores to increasing depths with a bounded model checker".
#pragma once

#include <map>
#include <vector>

#include "kernel/system.hpp"
#include "sat/solver.hpp"

namespace tt::bmc {

struct BmcResult {
  bool violation_found = false;
  int depth = -1;  ///< frame of the violation (trace length - 1)
  std::vector<std::vector<int>> trace;  ///< valuations, frame 0 .. depth
  std::uint64_t total_conflicts = 0;
  std::uint64_t total_clauses = 0;
  std::uint64_t solver_calls = 0;    ///< solve() invocations (== depths probed)
  std::uint64_t clauses_reused = 0;  ///< learned clauses carried across depths
  double seconds = 0.0;
};

/// An incremental unrolling of a kernel::System into one persistent SAT
/// instance. `ensure_frames(k)` extends the encoding to at least k frames
/// (allocating one-hot state bits and the transition k-2 -> k-1 on demand);
/// everything already encoded — including the solver's learned clauses — is
/// reused. Shared by plain BMC, the k-induction engine (which disables the
/// initial-state constraint for its step instance) and IC3's two-frame
/// transition queries.
class Unroller {
 public:
  struct Options {
    bool constrain_initial = true;  ///< assert init values at frame 0
  };

  explicit Unroller(const kernel::System& system) : Unroller(system, Options{}) {}
  Unroller(const kernel::System& system, Options opts);

  Unroller(const Unroller&) = delete;
  Unroller& operator=(const Unroller&) = delete;

  /// Extends the encoding to at least `frames` frames (frame indices
  /// 0 .. frames-1, with transitions between all consecutive pairs).
  void ensure_frames(int frames);

  [[nodiscard]] int frames() const noexcept { return frames_; }
  [[nodiscard]] sat::Solver& solver() noexcept { return solver_; }
  [[nodiscard]] const kernel::System& system() const noexcept { return system_; }

  /// Literal of "variable v has value val in frame t".
  [[nodiscard]] sat::Lit var_bit(int t, kernel::VarId v, int val) const;

  /// Literal equivalent to the boolean expression `e` at frame `t`
  /// (Tseitin definitions are full equivalences, so the literal may be
  /// assumed in either polarity).
  [[nodiscard]] sat::Lit bool_expr(kernel::ExprId e, int t);

  /// Literal that is true iff frames i and j assign some variable
  /// differently — the building block of k-induction's simple-path
  /// ("all frames pairwise distinct") constraint.
  [[nodiscard]] sat::Lit frames_differ(int i, int j);

  /// The constant-true literal of this instance.
  [[nodiscard]] sat::Lit true_lit() const noexcept { return true_lit_; }

  /// Reads frame `t` of the last satisfying assignment as a valuation.
  [[nodiscard]] std::vector<int> decode_frame(int t) const;

 private:
  void add_frame();
  void encode_initial();
  void encode_transition(int t);
  void frame_equal(sat::Lit cond, kernel::VarId v, int t);
  [[nodiscard]] sat::Lit int_eq(kernel::ExprId e, int val, int t);
  [[nodiscard]] int expr_domain(kernel::ExprId e) const;
  sat::Lit define_and(const std::vector<sat::Lit>& xs);
  sat::Lit define_or(const std::vector<sat::Lit>& xs);

  const kernel::System& system_;
  Options opts_;
  sat::Solver solver_;
  std::vector<std::vector<std::vector<int>>> bits_;  // [frame][var][value]
  int frames_ = 0;
  sat::Lit true_lit_;
  std::map<std::pair<kernel::ExprId, int>, sat::Lit> bool_cache_;
};

/// Checks the invariant G(property) of `system` up to `max_depth` frames.
/// `property` is a boolean expression in the system's pool. Incremental:
/// one solver instance across all depths (result.solver_calls counts the
/// depths probed, result.clauses_reused the learned-clause carry-over).
[[nodiscard]] BmcResult check_invariant_bounded(const kernel::System& system,
                                                kernel::ExprId property, int max_depth);

}  // namespace tt::bmc
