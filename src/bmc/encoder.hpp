// SAT-based bounded model checking over kernel::System — the rebuild of the
// paper's "bounded (using a SAT solver)" SAL engine (§3, §5.2).
//
// Encoding: one-hot per finite-domain variable and time frame (domains are
// small, so one-hot beats bit-blasting: comparisons become single literals
// and modular increments become per-value implications). Each choice group
// gets exactly-one selector variables per frame; a selector implies its
// command's guard at frame t and its assignments at frame t+1; unassigned
// variables are framed. Integer expressions are encoded through the
// "expr == value" recursion, boolean ones through Tseitin definitions.
//
// The check iterates depths 0, 1, 2, ...: at depth k the property must be
// violated in frame k. Because shallower depths were already refuted, the
// first SAT answer yields a minimal-length counterexample — mirroring how
// the paper "explores to increasing depths with a bounded model checker".
#pragma once

#include <vector>

#include "kernel/system.hpp"
#include "sat/solver.hpp"

namespace tt::bmc {

struct BmcResult {
  bool violation_found = false;
  int depth = -1;  ///< frame of the violation (trace length - 1)
  std::vector<std::vector<int>> trace;  ///< valuations, frame 0 .. depth
  std::uint64_t total_conflicts = 0;
  std::uint64_t total_clauses = 0;
  double seconds = 0.0;
};

/// Checks the invariant G(property) of `system` up to `max_depth` frames.
/// `property` is a boolean expression in the system's pool.
[[nodiscard]] BmcResult check_invariant_bounded(const kernel::System& system,
                                                kernel::ExprId property, int max_depth);

}  // namespace tt::bmc
