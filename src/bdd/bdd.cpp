#include "bdd/bdd.hpp"

#include <cmath>

namespace tt::bdd {

namespace {

constexpr std::uint64_t pack_triple(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  // 21 bits per component is plenty below the package's practical node limit.
  TT_ASSERT(a < (1u << 21) && b < (1u << 21) && c < (1u << 21));
  return (static_cast<std::uint64_t>(a) << 42) | (static_cast<std::uint64_t>(b) << 21) | c;
}

}  // namespace

Manager::Manager(int num_vars) : num_vars_(num_vars) {
  TT_REQUIRE(num_vars >= 1 && num_vars < (1 << 20), "variable count out of range");
  // Terminals: index 0 = false, 1 = true. Their `var` is a sentinel beyond
  // every real variable so top_var comparisons are uniform.
  nodes_.push_back({num_vars_, kFalse, kFalse});
  nodes_.push_back({num_vars_, kTrue, kTrue});
}

NodeId Manager::make(int var, NodeId lo, NodeId hi) {
  if (lo == hi) return lo;  // reduction rule
  const std::uint64_t key = pack_triple(static_cast<std::uint32_t>(var), lo, hi);
  if (const auto it = unique_.find(key); it != unique_.end()) return it->second;
  nodes_.push_back({var, lo, hi});
  const auto id = static_cast<NodeId>(nodes_.size() - 1);
  TT_REQUIRE(id < (1u << 21), "BDD node limit exceeded");
  unique_.emplace(key, id);
  return id;
}

NodeId Manager::var(int v) {
  TT_ASSERT(v >= 0 && v < num_vars_);
  return make(v, kFalse, kTrue);
}

NodeId Manager::nvar(int v) {
  TT_ASSERT(v >= 0 && v < num_vars_);
  return make(v, kTrue, kFalse);
}

int Manager::top_var(NodeId f, NodeId g, NodeId h) const {
  int v = nodes_[f].var;
  v = std::min(v, nodes_[g].var);
  v = std::min(v, nodes_[h].var);
  return v;
}

NodeId Manager::cofactor(NodeId f, int var, bool positive) const {
  const Node& n = nodes_[f];
  if (n.var != var) return f;  // f does not depend on var at this level
  return positive ? n.hi : n.lo;
}

NodeId Manager::ite(NodeId f, NodeId g, NodeId h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const std::uint64_t key = pack_triple(f, g, h);
  if (const auto it = ite_cache_.find(key); it != ite_cache_.end()) return it->second;

  const int v = top_var(f, g, h);
  const NodeId lo = ite(cofactor(f, v, false), cofactor(g, v, false), cofactor(h, v, false));
  const NodeId hi = ite(cofactor(f, v, true), cofactor(g, v, true), cofactor(h, v, true));
  const NodeId out = make(v, lo, hi);
  ite_cache_.emplace(key, out);
  return out;
}

NodeId Manager::exists(NodeId f, const std::vector<std::uint8_t>& quantify) {
  TT_ASSERT(quantify.size() == static_cast<std::size_t>(num_vars_));
  op_cache_.clear();
  // Recursive existential quantification with an operation-local cache.
  struct Rec {
    Manager& m;
    const std::vector<std::uint8_t>& q;
    NodeId operator()(NodeId f) {
      if (f == kFalse || f == kTrue) return f;
      const std::uint64_t key = pack_triple(f, 0, 0);
      if (const auto it = m.op_cache_.find(key); it != m.op_cache_.end()) return it->second;
      const Node n = m.nodes_[f];
      const NodeId lo = (*this)(n.lo);
      const NodeId hi = (*this)(n.hi);
      const NodeId out = q[static_cast<std::size_t>(n.var)] != 0
                             ? m.lor(lo, hi)
                             : m.make(n.var, lo, hi);
      m.op_cache_.emplace(key, out);
      return out;
    }
  };
  return Rec{*this, quantify}(f);
}

NodeId Manager::rename(NodeId f, const std::vector<int>& map) {
  TT_ASSERT(map.size() == static_cast<std::size_t>(num_vars_));
  op_cache_.clear();
  struct Rec {
    Manager& m;
    const std::vector<int>& map;
    NodeId operator()(NodeId f) {
      if (f == kFalse || f == kTrue) return f;
      const std::uint64_t key = pack_triple(f, 1, 0);
      if (const auto it = m.op_cache_.find(key); it != m.op_cache_.end()) return it->second;
      const Node n = m.nodes_[f];
      const NodeId out = m.make(map[static_cast<std::size_t>(n.var)], (*this)(n.lo),
                                (*this)(n.hi));
      m.op_cache_.emplace(key, out);
      return out;
    }
  };
  return Rec{*this, map}(f);
}

double Manager::sat_count(NodeId f) {
  count_cache_.clear();
  struct Rec {
    Manager& m;
    double operator()(NodeId f) {
      if (f == kFalse) return 0.0;
      if (f == kTrue) return 1.0;
      if (const auto it = m.count_cache_.find(f); it != m.count_cache_.end()) {
        return it->second;
      }
      const Node& n = m.nodes_[f];
      // Scale each branch by the variables skipped between the levels.
      const double lo = (*this)(n.lo) *
                        std::pow(2.0, m.nodes_[n.lo].var - n.var - 1);
      const double hi = (*this)(n.hi) *
                        std::pow(2.0, m.nodes_[n.hi].var - n.var - 1);
      const double out = lo + hi;
      m.count_cache_.emplace(f, out);
      return out;
    }
  };
  // Top-level scaling for variables above the root.
  return Rec{*this}(f) * std::pow(2.0, nodes_[f].var);
}

bool Manager::eval(NodeId f, const std::vector<bool>& assignment) const {
  TT_ASSERT(assignment.size() == static_cast<std::size_t>(num_vars_));
  while (f != kFalse && f != kTrue) {
    const Node& n = nodes_[f];
    f = assignment[static_cast<std::size_t>(n.var)] ? n.hi : n.lo;
  }
  return f == kTrue;
}

std::vector<bool> Manager::any_sat(NodeId f) const {
  TT_REQUIRE(f != kFalse, "any_sat of the false BDD");
  std::vector<bool> out(static_cast<std::size_t>(num_vars_), false);
  while (f != kTrue) {
    const Node& n = nodes_[f];
    if (n.hi != kFalse) {
      out[static_cast<std::size_t>(n.var)] = true;
      f = n.hi;
    } else {
      f = n.lo;
    }
  }
  return out;
}

}  // namespace tt::bdd
