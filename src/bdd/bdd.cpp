#include "bdd/bdd.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "obs/trace.hpp"

namespace tt::bdd {

namespace {

// Operation codes for the persistent cache. 0 marks an invalid entry; rename
// maps get their own code each so differently-mapped renames never collide.
constexpr std::uint32_t kOpIte = 1;
constexpr std::uint32_t kOpAndExists = 2;
constexpr std::uint32_t kOpExists = 3;
constexpr std::uint32_t kOpRenameBase = 16;

constexpr std::size_t kMinGcThreshold = std::size_t{1} << 16;

inline std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline std::uint64_t triple_hash(std::int32_t var, NodeId lo, NodeId hi) noexcept {
  return mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(var)) *
                0x9e3779b97f4a7c15ULL) ^
               ((static_cast<std::uint64_t>(lo) << 32) | hi));
}

inline std::uint64_t cache_hash(std::uint32_t op, NodeId f, NodeId g, NodeId h) noexcept {
  return mix64(static_cast<std::uint64_t>(op) * 0x2545f4914f6cdd1dULL ^
               (static_cast<std::uint64_t>(f) << 31) ^
               (static_cast<std::uint64_t>(g) << 15) ^ h);
}

}  // namespace

Manager::Manager(int num_vars, int op_cache_log2) : num_vars_(num_vars) {
  TT_REQUIRE(num_vars >= 1 && num_vars < (1 << 20), "variable count out of range");
  TT_REQUIRE(op_cache_log2 >= 4 && op_cache_log2 <= 28, "op cache size out of range");

  // Terminal ONE at arena index 0; its `var` is a sentinel beyond every real
  // variable so top-variable comparisons are uniform. Pinned forever.
  node_var_.push_back(num_vars_);
  node_lo_.push_back(kTrue);
  node_hi_.push_back(kTrue);
  extref_.push_back(1);
  live_nodes_ = 1;
  peak_live_ = 1;

  table_.assign(std::size_t{1} << 10, kEmptySlot);
  table_mask_ = table_.size() - 1;
  cache_.assign(std::size_t{1} << op_cache_log2, CacheEntry{});
  cache_mask_ = static_cast<std::uint32_t>(cache_.size() - 1);
  proj_.assign(static_cast<std::size_t>(num_vars_), kEmptySlot);
  gc_threshold_ = kMinGcThreshold;
}

ManagerStats Manager::stats() const noexcept {
  ManagerStats s;
  s.live_nodes = live_nodes_;
  s.peak_live_nodes = peak_live_;
  s.arena_nodes = node_var_.size();
  s.unique_lookups = unique_lookups_;
  s.unique_hits = unique_hits_;
  s.cache_lookups = cache_lookups_;
  s.cache_hits = cache_hits_;
  s.gc_runs = gc_runs_;
  s.memory_bytes = node_var_.size() * (sizeof(std::int32_t) + 2 * sizeof(NodeId) +
                                       sizeof(std::uint32_t) + sizeof(std::uint8_t)) +
                   table_.size() * sizeof(std::uint32_t) + cache_.size() * sizeof(CacheEntry);
  return s;
}

void Manager::table_insert(std::uint32_t index) noexcept {
  std::size_t slot = triple_hash(node_var_[index], node_lo_[index], node_hi_[index]) &
                     table_mask_;
  while (table_[slot] != kEmptySlot) slot = (slot + 1) & table_mask_;
  table_[slot] = index;
  ++table_used_;
}

void Manager::grow_table(std::size_t min_capacity) {
  std::size_t cap = table_.size();
  while (cap < min_capacity) cap <<= 1;
  table_.assign(cap, kEmptySlot);
  table_mask_ = cap - 1;
  table_used_ = 0;
  // Re-insert every allocated (non-freed) node — dead-but-uncollected nodes
  // stay findable so make() can resurrect them until the next sweep.
  for (std::uint32_t i = 1; i < node_var_.size(); ++i) {
    if (node_var_[i] >= 0) table_insert(i);
  }
}

NodeId Manager::make(int var, NodeId lo, NodeId hi) {
  if (lo == hi) return lo;  // reduction rule
  // Canonical form: the then-arc is always regular; a complemented then-arc
  // flips both children and returns a complemented edge.
  NodeId out_complement = 0;
  if (is_complement(hi)) {
    out_complement = 1;
    lo = negate(lo);
    hi = negate(hi);
  }

  ++unique_lookups_;
  std::size_t slot = triple_hash(var, lo, hi) & table_mask_;
  while (table_[slot] != kEmptySlot) {
    const std::uint32_t idx = table_[slot];
    if (node_var_[idx] == var && node_lo_[idx] == lo && node_hi_[idx] == hi) {
      ++unique_hits_;
      return (idx << 1) | out_complement;
    }
    slot = (slot + 1) & table_mask_;
  }

  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
    node_var_[idx] = var;
    node_lo_[idx] = lo;
    node_hi_[idx] = hi;
    extref_[idx] = 0;
  } else {
    idx = static_cast<std::uint32_t>(node_var_.size());
    TT_REQUIRE(idx < (1u << 31), "BDD arena limit exceeded");
    node_var_.push_back(var);
    node_lo_.push_back(lo);
    node_hi_.push_back(hi);
    extref_.push_back(0);
  }
  ++live_nodes_;
  peak_live_ = std::max(peak_live_, live_nodes_);

  if ((table_used_ + 1) * 4 > table_.size() * 3) {
    grow_table(table_.size() * 2);
    // Growth rehashed everything; find a fresh slot for the new node.
    slot = triple_hash(var, lo, hi) & table_mask_;
    while (table_[slot] != kEmptySlot) slot = (slot + 1) & table_mask_;
  }
  table_[slot] = idx;
  ++table_used_;
  return (idx << 1) | out_complement;
}

NodeId Manager::var(int v) {
  TT_ASSERT(v >= 0 && v < num_vars_);
  NodeId& p = proj_[static_cast<std::size_t>(v)];
  if (p == kEmptySlot) p = make(v, kFalse, kTrue);  // pinned: GC marks proj_
  return p;
}

bool Manager::cache_probe(std::uint32_t op, NodeId f, NodeId g, NodeId h,
                          NodeId& out) noexcept {
  ++cache_lookups_;
  const CacheEntry& e = cache_[cache_hash(op, f, g, h) & cache_mask_];
  if (e.op == op && e.f == f && e.g == g && e.h == h) {
    ++cache_hits_;
    out = e.result;
    return true;
  }
  return false;
}

void Manager::cache_store(std::uint32_t op, NodeId f, NodeId g, NodeId h,
                          NodeId result) noexcept {
  CacheEntry& e = cache_[cache_hash(op, f, g, h) & cache_mask_];
  e.op = op;
  e.f = f;
  e.g = g;
  e.h = h;
  e.result = result;
}

NodeId Manager::ite(NodeId f, NodeId g, NodeId h) {
  maybe_gc({f, g, h});
  return ite_rec(f, g, h);
}

NodeId Manager::ite_rec(NodeId f, NodeId g, NodeId h) {
  // Terminal and identity rules.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (f == g) g = kTrue;
  else if (f == negate(g)) g = kFalse;
  if (f == h) h = kFalse;
  else if (f == negate(h)) h = kTrue;
  if (g == kTrue && h == kFalse) return f;
  if (g == kFalse && h == kTrue) return negate(f);
  if (g == h) return g;

  // Standard-triple canonicalization (Brace/Rudell/Bryant): commutative
  // forms pick the (var, index)-smallest function as the condition, which
  // multiplies op-cache hit rates on AND/OR/XOR-heavy workloads.
  const auto before = [this](NodeId a, NodeId b) noexcept {
    const int va = var_of(a);
    const int vb = var_of(b);
    return va < vb || (va == vb && index_of(a) < index_of(b));
  };
  if (g == kTrue) {
    if (before(h, f)) std::swap(f, h);  // f | h
  } else if (h == kFalse) {
    if (before(g, f)) std::swap(f, g);  // f & g
  } else if (h == kTrue) {
    if (before(g, f)) {  // !f | g  ==  !g ? !f : 1
      const NodeId nf = negate(f);
      f = negate(g);
      g = nf;
    }
  } else if (g == kFalse) {
    if (before(h, f)) {  // !f & h  ==  !h ? 0 : !f
      const NodeId nf = negate(f);
      f = negate(h);
      h = nf;
    }
  } else if (g == negate(h)) {
    if (before(g, f)) {  // f <-> g commutes
      const NodeId t = f;
      f = g;
      g = t;
      h = negate(t);
    }
  }
  // Complement canonicalization: condition regular, then-arc regular.
  if (is_complement(f)) {
    f = negate(f);
    std::swap(g, h);
  }
  NodeId out_xor = 0;
  if (is_complement(g)) {
    out_xor = 1;
    g = negate(g);
    h = negate(h);
  }
  if (g == kTrue && h == kFalse) return f ^ out_xor;

  NodeId out;
  if (cache_probe(kOpIte, f, g, h, out)) return out ^ out_xor;

  const int v = std::min({var_of(f), var_of(g), var_of(h)});
  const NodeId lo =
      ite_rec(cofactor(f, v, false), cofactor(g, v, false), cofactor(h, v, false));
  const NodeId hi =
      ite_rec(cofactor(f, v, true), cofactor(g, v, true), cofactor(h, v, true));
  out = make(v, lo, hi);
  cache_store(kOpIte, f, g, h, out);
  return out ^ out_xor;
}

NodeId Manager::cube(const std::vector<int>& vars) {
  maybe_gc({});
  std::vector<int> sorted = vars;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  NodeId acc = kTrue;
  for (const int v : sorted) {
    TT_ASSERT(v >= 0 && v < num_vars_);
    acc = make(v, kFalse, acc);
  }
  return acc;
}

NodeId Manager::exists(NodeId f, NodeId cube) {
  maybe_gc({f, cube});
  return exists_rec(f, cube);
}

NodeId Manager::exists(NodeId f, const std::vector<std::uint8_t>& quantify) {
  TT_ASSERT(quantify.size() == static_cast<std::size_t>(num_vars_));
  std::vector<int> vars;
  for (int v = 0; v < num_vars_; ++v) {
    if (quantify[static_cast<std::size_t>(v)] != 0) vars.push_back(v);
  }
  maybe_gc({f});
  return exists_rec(f, cube(vars));
}

NodeId Manager::exists_rec(NodeId f, NodeId cube) {
  if (f == kTrue || f == kFalse) return f;
  const int v = var_of(f);
  // Skip quantified variables above f's support (var_of(kTrue) is the
  // num_vars sentinel, so the loop also terminates the cube).
  while (var_of(cube) < v) cube = node_hi_[index_of(cube)];
  if (cube == kTrue) return f;

  NodeId out;
  if (cache_probe(kOpExists, f, cube, 0, out)) return out;

  const NodeId f0 = cofactor(f, v, false);
  const NodeId f1 = cofactor(f, v, true);
  if (var_of(cube) == v) {
    const NodeId rest = node_hi_[index_of(cube)];
    const NodeId r0 = exists_rec(f0, rest);
    out = r0 == kTrue ? kTrue : ite_rec(r0, kTrue, exists_rec(f1, rest));
  } else {
    out = make(v, exists_rec(f0, cube), exists_rec(f1, cube));
  }
  cache_store(kOpExists, f, cube, 0, out);
  return out;
}

NodeId Manager::and_exists(NodeId f, NodeId g, NodeId cube) {
  obs::Span span("bdd.and_exists");
  maybe_gc({f, g, cube});
  return and_exists_rec(f, g, cube);
}

NodeId Manager::and_exists(NodeId f, NodeId g,
                           const std::vector<std::uint8_t>& quantify) {
  obs::Span span("bdd.and_exists");
  TT_ASSERT(quantify.size() == static_cast<std::size_t>(num_vars_));
  std::vector<int> vars;
  for (int v = 0; v < num_vars_; ++v) {
    if (quantify[static_cast<std::size_t>(v)] != 0) vars.push_back(v);
  }
  maybe_gc({f, g});
  return and_exists_rec(f, g, cube(vars));
}

NodeId Manager::and_exists_rec(NodeId f, NodeId g, NodeId cube) {
  // Terminal rules of the conjunction.
  if (f == kFalse || g == kFalse) return kFalse;
  if (f == g) g = kTrue;
  else if (f == negate(g)) return kFalse;
  if (f == kTrue) std::swap(f, g);
  if (g == kTrue && f == kTrue) return kTrue;

  // Advance the quantification schedule past variables above the support.
  const int top = g == kTrue ? var_of(f) : std::min(var_of(f), var_of(g));
  while (var_of(cube) < top) cube = node_hi_[index_of(cube)];

  if (g == kTrue) return exists_rec(f, cube);
  if (cube == kTrue) return ite_rec(f, g, kFalse);  // nothing left to quantify
  if (index_of(g) < index_of(f)) std::swap(f, g);   // AND commutes

  NodeId out;
  if (cache_probe(kOpAndExists, f, g, cube, out)) return out;

  const int v = std::min(var_of(f), var_of(g));
  const NodeId f0 = cofactor(f, v, false);
  const NodeId f1 = cofactor(f, v, true);
  const NodeId g0 = cofactor(g, v, false);
  const NodeId g1 = cofactor(g, v, true);
  if (var_of(cube) == v) {
    const NodeId rest = node_hi_[index_of(cube)];
    // exists v. (f & g) = (f0 & g0) | (f1 & g1) — with the early exit that
    // makes the relational product cheaper than AND-then-quantify.
    const NodeId r0 = and_exists_rec(f0, g0, rest);
    out = r0 == kTrue ? kTrue : ite_rec(r0, kTrue, and_exists_rec(f1, g1, rest));
  } else {
    out = make(v, and_exists_rec(f0, g0, cube), and_exists_rec(f1, g1, cube));
  }
  cache_store(kOpAndExists, f, g, cube, out);
  return out;
}

int Manager::register_rename(const std::vector<int>& map) {
  TT_ASSERT(map.size() == static_cast<std::size_t>(num_vars_));
  for (std::size_t i = 0; i < rename_maps_.size(); ++i) {
    if (rename_maps_[i] == map) return static_cast<int>(i);
  }
  TT_REQUIRE(rename_maps_.size() < (kOpRenameBase << 4), "too many rename maps");
  rename_maps_.push_back(map);
  return static_cast<int>(rename_maps_.size() - 1);
}

NodeId Manager::rename(NodeId f, int map_id) {
  TT_ASSERT(map_id >= 0 && static_cast<std::size_t>(map_id) < rename_maps_.size());
  maybe_gc({f});
  return rename_rec(f, rename_maps_[static_cast<std::size_t>(map_id)],
                    kOpRenameBase + static_cast<std::uint32_t>(map_id));
}

NodeId Manager::rename(NodeId f, const std::vector<int>& map) {
  return rename(f, register_rename(map));
}

NodeId Manager::rename_rec(NodeId f, const std::vector<int>& map, std::uint32_t op) {
  if (f == kTrue || f == kFalse) return f;
  // Renaming commutes with negation: recurse on the regular edge so a
  // function and its complement share one cache entry.
  const NodeId complement = f & 1u;
  const NodeId reg = f ^ complement;
  NodeId out;
  if (!cache_probe(op, reg, 0, 0, out)) {
    const std::uint32_t i = index_of(reg);
    const NodeId lo = rename_rec(node_lo_[i], map, op);
    const NodeId hi = rename_rec(node_hi_[i], map, op);
    out = make(map[static_cast<std::size_t>(node_var_[i])], lo, hi);
    cache_store(op, reg, 0, 0, out);
  }
  return out ^ complement;
}

BigUint Manager::sat_count_exact(NodeId f) {
  // Cold path: a per-call memo keyed by regular node index. R(i) counts the
  // satisfying assignments of node i's function over [var(i), num_vars).
  std::unordered_map<std::uint32_t, BigUint> memo;
  const auto count = [&](auto&& self, NodeId e, int from_level) -> BigUint {
    const std::uint32_t i = index_of(e);
    const int ve = node_var_[i];
    BigUint base;
    if (ve == num_vars_) {  // terminal
      base = is_complement(e) ? BigUint(0) : BigUint(1);
    } else {
      BigUint r;
      if (const auto it = memo.find(i); it != memo.end()) {
        r = it->second;
      } else {
        r = self(self, node_lo_[i], ve + 1) + self(self, node_hi_[i], ve + 1);
        memo.emplace(i, r);
      }
      base = is_complement(e)
                 ? BigUint::pow2(static_cast<unsigned>(num_vars_ - ve)) - r
                 : r;
    }
    if (ve > from_level) base *= BigUint::pow2(static_cast<unsigned>(ve - from_level));
    return base;
  };
  return count(count, f, 0);
}

bool Manager::eval(NodeId f, const std::vector<bool>& assignment) const {
  TT_ASSERT(assignment.size() == static_cast<std::size_t>(num_vars_));
  while (f != kTrue && f != kFalse) {
    const std::uint32_t i = index_of(f);
    const NodeId next = assignment[static_cast<std::size_t>(node_var_[i])]
                            ? node_hi_[i]
                            : node_lo_[i];
    f = next ^ (f & 1u);
  }
  return f == kTrue;
}

bool Manager::eval_bits(NodeId f, const std::uint64_t* words) const {
  while (f != kTrue && f != kFalse) {
    const std::uint32_t i = index_of(f);
    const int v = node_var_[i];
    const bool bit = ((words[v >> 6] >> (v & 63)) & 1u) != 0;
    f = (bit ? node_hi_[i] : node_lo_[i]) ^ (f & 1u);
  }
  return f == kTrue;
}

NodeId Manager::minterm_bits(const std::uint64_t* words, int bits) {
  TT_ASSERT(bits >= 1 && bits <= num_vars_);
  maybe_gc({});
  NodeId acc = kTrue;
  for (int v = bits - 1; v >= 0; --v) {
    const bool bit = ((words[v >> 6] >> (v & 63)) & 1u) != 0;
    acc = bit ? make(v, kFalse, acc) : make(v, acc, kFalse);
  }
  return acc;
}

NodeId Manager::minterm_even_bits(const std::uint64_t* words, int bits) {
  TT_ASSERT(bits >= 1 && 2 * bits <= num_vars_);
  maybe_gc({});
  NodeId acc = kTrue;
  for (int b = bits - 1; b >= 0; --b) {
    const bool bit = ((words[b >> 6] >> (b & 63)) & 1u) != 0;
    acc = bit ? make(2 * b, kFalse, acc) : make(2 * b, acc, kFalse);
  }
  return acc;
}

NodeId Manager::minterm_pair_bits(const std::uint64_t* cur, const std::uint64_t* next,
                                  int bits) {
  TT_ASSERT(bits >= 1 && 2 * bits <= num_vars_);
  maybe_gc({});
  NodeId acc = kTrue;
  for (int b = bits - 1; b >= 0; --b) {
    const bool nbit = ((next[b >> 6] >> (b & 63)) & 1u) != 0;
    acc = nbit ? make(2 * b + 1, kFalse, acc) : make(2 * b + 1, acc, kFalse);
    const bool cbit = ((cur[b >> 6] >> (b & 63)) & 1u) != 0;
    acc = cbit ? make(2 * b, kFalse, acc) : make(2 * b, acc, kFalse);
  }
  return acc;
}

std::vector<bool> Manager::any_sat(NodeId f) const {
  TT_REQUIRE(f != kFalse, "any_sat of the false BDD");
  std::vector<bool> out(static_cast<std::size_t>(num_vars_), false);
  while (f != kTrue) {
    const std::uint32_t i = index_of(f);
    const NodeId hi = node_hi_[i] ^ (f & 1u);
    if (hi != kFalse) {
      out[static_cast<std::size_t>(node_var_[i])] = true;
      f = hi;
    } else {
      f = node_lo_[i] ^ (f & 1u);
    }
  }
  return out;
}

std::vector<std::uint8_t> Manager::support(NodeId f) const {
  std::vector<std::uint8_t> out(static_cast<std::size_t>(num_vars_), 0);
  std::vector<std::uint8_t> seen(node_var_.size(), 0);
  std::vector<std::uint32_t> stack;
  stack.push_back(index_of(f));
  seen[index_of(f)] = 1;
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    if (node_var_[i] == num_vars_) continue;  // terminal
    out[static_cast<std::size_t>(node_var_[i])] = 1;
    for (const NodeId child : {node_lo_[i], node_hi_[i]}) {
      const std::uint32_t c = index_of(child);
      if (seen[c] == 0) {
        seen[c] = 1;
        stack.push_back(c);
      }
    }
  }
  return out;
}

void Manager::ref(NodeId f) { ++extref_[index_of(f)]; }

void Manager::deref(NodeId f) {
  TT_ASSERT(extref_[index_of(f)] > 0);
  --extref_[index_of(f)];
}

void Manager::mark_from(NodeId f) noexcept {
  std::uint32_t i = index_of(f);
  if (mark_[i] != 0) return;
  // Iterative DFS; depth is bounded by live nodes, not variable count.
  std::vector<std::uint32_t> stack;
  stack.push_back(i);
  mark_[i] = 1;
  while (!stack.empty()) {
    i = stack.back();
    stack.pop_back();
    if (node_var_[i] == num_vars_) continue;  // terminal
    const std::uint32_t lo = index_of(node_lo_[i]);
    const std::uint32_t hi = index_of(node_hi_[i]);
    if (mark_[lo] == 0) {
      mark_[lo] = 1;
      stack.push_back(lo);
    }
    if (mark_[hi] == 0) {
      mark_[hi] = 1;
      stack.push_back(hi);
    }
  }
}

std::size_t Manager::gc() {
  ++gc_runs_;
  obs::Span span("bdd.gc");
  span.set_arg("live_before", static_cast<std::int64_t>(live_nodes_));
  mark_.assign(node_var_.size(), 0);
  mark_[0] = 1;  // terminal
  for (const NodeId p : proj_) {
    if (p != kEmptySlot) mark_from(p);
  }
  for (std::uint32_t i = 1; i < extref_.size(); ++i) {
    if (extref_[i] > 0 && node_var_[i] >= 0) mark_from(i << 1);
  }

  // Sweep: free-list every allocated-but-unmarked slot (ids stay stable).
  std::size_t freed = 0;
  for (std::uint32_t i = 1; i < node_var_.size(); ++i) {
    if (mark_[i] == 0 && node_var_[i] >= 0) {
      node_var_[i] = -1;
      free_.push_back(i);
      ++freed;
    }
  }
  live_nodes_ -= freed;

  // Rebuild the unique table over survivors and drop the op cache — cached
  // results may reference swept nodes.
  std::size_t cap = std::size_t{1} << 10;
  while (live_nodes_ * 2 > cap) cap <<= 1;
  table_.assign(cap, kEmptySlot);
  table_mask_ = cap - 1;
  table_used_ = 0;
  for (std::uint32_t i = 1; i < node_var_.size(); ++i) {
    if (node_var_[i] >= 0) table_insert(i);
  }
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
  return freed;
}

void Manager::maybe_gc(std::initializer_list<NodeId> roots) {
  if (live_nodes_ < gc_threshold_) return;
  for (const NodeId r : roots) ref(r);
  const std::size_t freed = gc();
  for (const NodeId r : roots) deref(r);
  // Adaptive threshold: back off when the arena is mostly live (a collection
  // that frees little is pure overhead), otherwise track 2x the live set.
  if (freed * 4 < live_nodes_) {
    gc_threshold_ *= 2;
  } else {
    gc_threshold_ = std::max(kMinGcThreshold, live_nodes_ * 2);
  }
}

}  // namespace tt::bdd
