// A production-grade reduced ordered binary decision diagram (ROBDD)
// package — the substrate behind the symbolic model checker (the paper's
// workhorse: "the symbolic model checker of SAL is able to examine these in
// a few tens of minutes").
//
// Design (DESIGN.md §3.3):
//  * Node arena in struct-of-arrays form (per-node var/lo/hi columns) with
//    an open-addressing hashed unique table — no std::unordered_map on the
//    hot path, no per-node heap allocation.
//  * Complement edges on the low arc (Brace/Rudell/Bryant): a NodeId is
//    (arena index << 1) | complement bit. Negation is a single XOR, the
//    then-arc is always regular, and a function and its negation share one
//    node — roughly halving the arena.
//  * One persistent bounded operation cache keyed by (op, f, g, h) that
//    survives across public calls; it is direct-mapped, never grows, and is
//    invalidated only by garbage collection.
//  * Mark-and-sweep garbage collection over external references
//    (ref/deref), triggered automatically when the arena outgrows an
//    adaptive threshold at public-call boundaries. Node ids are stable
//    across collections (sweeping free-lists dead slots, no compaction).
//  * A genuinely recursive and_exists relational product (conjoin and
//    quantify in one pass, with the early-exit-on-true disjunction) — image
//    computation never materializes the monolithic f & g intermediate.
//  * Exact model counting via support::BigUint (double convenience
//    accessor kept); Fig. 5-scale reachable sets exceed 2^53.
//
// GC contract: any NodeId that must survive the next public call must be
// protected with ref() (or never cross a call boundary). Automatic
// collection only runs at public-call entry, and the call's own arguments
// are always treated as roots, so `m.lor(a, m.land(b, c))` is safe without
// protecting the inner result.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"
#include "support/biguint.hpp"

namespace tt::bdd {

/// An edge: arena index << 1 | complement bit.
using NodeId = std::uint32_t;

/// The single terminal node lives at arena index 0; FALSE is its complement.
constexpr NodeId kTrue = 0;
constexpr NodeId kFalse = 1;

/// Aggregate counters for the RunStats-style engine reports.
struct ManagerStats {
  std::size_t live_nodes = 0;       ///< currently reachable from roots
  std::size_t peak_live_nodes = 0;  ///< high-water mark of live_nodes
  std::size_t arena_nodes = 0;      ///< allocated slots (live + free-listed)
  std::size_t unique_lookups = 0;
  std::size_t unique_hits = 0;
  std::size_t cache_lookups = 0;
  std::size_t cache_hits = 0;
  std::size_t gc_runs = 0;
  std::size_t memory_bytes = 0;

  [[nodiscard]] double unique_hit_rate() const noexcept {
    return unique_lookups > 0
               ? static_cast<double>(unique_hits) / static_cast<double>(unique_lookups)
               : 0.0;
  }
  [[nodiscard]] double cache_hit_rate() const noexcept {
    return cache_lookups > 0
               ? static_cast<double>(cache_hits) / static_cast<double>(cache_lookups)
               : 0.0;
  }
};

class Manager {
 public:
  /// `num_vars` is the total variable count; variable 0 is the topmost.
  /// `op_cache_log2` sizes the persistent operation cache (2^k entries).
  explicit Manager(int num_vars, int op_cache_log2 = 16);

  [[nodiscard]] int num_vars() const noexcept { return num_vars_; }
  /// Live (externally reachable) node count, including the terminal.
  [[nodiscard]] std::size_t node_count() const noexcept { return live_nodes_; }
  [[nodiscard]] ManagerStats stats() const noexcept;

  /// The BDD of a single variable / its negation. O(1) after first use:
  /// projection functions are interned once and pinned as GC roots.
  [[nodiscard]] NodeId var(int v);
  [[nodiscard]] NodeId nvar(int v) { return negate(var(v)); }

  /// Negation is complement-edge flipping — no traversal, no allocation.
  [[nodiscard]] static constexpr NodeId negate(NodeId f) noexcept { return f ^ 1u; }

  [[nodiscard]] NodeId ite(NodeId f, NodeId g, NodeId h);
  [[nodiscard]] NodeId land(NodeId f, NodeId g) { return ite(f, g, kFalse); }
  [[nodiscard]] NodeId lor(NodeId f, NodeId g) { return ite(f, kTrue, g); }
  [[nodiscard]] NodeId lnot(NodeId f) { return negate(f); }
  [[nodiscard]] NodeId lxor(NodeId f, NodeId g) { return ite(f, negate(g), g); }

  /// The positive cube over `vars` (conjunction of the variables), used as
  /// the quantification schedule of exists/and_exists.
  [[nodiscard]] NodeId cube(const std::vector<int>& vars);

  /// Existential quantification of every variable in `cube`.
  [[nodiscard]] NodeId exists(NodeId f, NodeId cube);
  /// Mask form: quantifies every variable v with quantify[v] != 0.
  [[nodiscard]] NodeId exists(NodeId f, const std::vector<std::uint8_t>& quantify);

  /// Relational product exists(cube, f & g), computed in one recursive pass
  /// with quantification interleaved into the conjunction (never builds the
  /// monolithic f & g).
  [[nodiscard]] NodeId and_exists(NodeId f, NodeId g, NodeId cube);
  [[nodiscard]] NodeId and_exists(NodeId f, NodeId g,
                                  const std::vector<std::uint8_t>& quantify);

  /// Interns a variable renaming for use by rename(). The mapping must be
  /// strictly monotone on the variables occurring in renamed functions (it
  /// preserves the order), which holds for the next->current renaming used
  /// by symbolic reachability (2i+1 -> 2i). Registering the same map twice
  /// returns the same id, so rename results stay op-cache-coherent.
  [[nodiscard]] int register_rename(const std::vector<int>& map);
  [[nodiscard]] NodeId rename(NodeId f, int map_id);
  /// Convenience form: registers (or finds) the map, then renames.
  [[nodiscard]] NodeId rename(NodeId f, const std::vector<int>& map);

  /// Exact number of satisfying assignments over all `num_vars` variables.
  [[nodiscard]] BigUint sat_count_exact(NodeId f);
  /// Double convenience accessor (loses exactness above 2^53).
  [[nodiscard]] double sat_count(NodeId f) { return sat_count_exact(f).to_double(); }

  /// Evaluates f under a full assignment (one bool per variable).
  [[nodiscard]] bool eval(NodeId f, const std::vector<bool>& assignment) const;
  /// Packed-word form: bit v of the assignment is (words[v>>6] >> (v&63)) & 1
  /// (the support::BitWriter layout used by the explicit engines' states).
  [[nodiscard]] bool eval_bits(NodeId f, const std::uint64_t* words) const;

  /// The minterm of a packed assignment restricted to `bits` variables —
  /// built bottom-up with raw make() calls (no op-cache traffic), the
  /// insert path of the BDD-set reachability engine.
  [[nodiscard]] NodeId minterm_bits(const std::uint64_t* words, int bits);

  /// Interleaved-order variants for the liveness engine's current/next
  /// variable pairing (current bit i = var 2i, next bit i = var 2i+1).
  /// minterm_even_bits constrains only the even (current) variables — the
  /// odd ones stay free, so the result is a *set* over current vars;
  /// minterm_pair_bits constrains both, yielding one transition minterm of
  /// the relation. Both are raw bottom-up make() chains like minterm_bits.
  [[nodiscard]] NodeId minterm_even_bits(const std::uint64_t* words, int bits);
  [[nodiscard]] NodeId minterm_pair_bits(const std::uint64_t* cur, const std::uint64_t* next,
                                         int bits);

  /// Extracts one satisfying assignment (f must not be kFalse); unassigned
  /// variables default to false.
  [[nodiscard]] std::vector<bool> any_sat(NodeId f) const;

  /// Support mask: out[v] != 0 iff variable v occurs in f. Used to compute
  /// the early-quantification schedule of the partitioned image.
  [[nodiscard]] std::vector<std::uint8_t> support(NodeId f) const;

  /// External-reference protocol: a node passed to ref() (and every node
  /// reachable from it) survives garbage collection until deref()ed the
  /// same number of times. Terminals and projection vars need no refs.
  void ref(NodeId f);
  void deref(NodeId f);

  /// Explicit mark-and-sweep collection (also clears the op cache). Returns
  /// the number of freed nodes. Called automatically when the arena exceeds
  /// the adaptive threshold at a public-call boundary.
  std::size_t gc();
  void set_gc_threshold(std::size_t nodes) noexcept { gc_threshold_ = nodes; }

 private:
  // --- arena (struct of arrays) ---
  std::vector<std::int32_t> node_var_;
  std::vector<NodeId> node_lo_;
  std::vector<NodeId> node_hi_;
  std::vector<std::uint32_t> extref_;   ///< external reference counts
  std::vector<std::uint8_t> mark_;      ///< GC mark bits
  std::vector<std::uint32_t> free_;     ///< free-listed arena indices

  // --- unique table: open addressing, power-of-two, linear probing ---
  std::vector<std::uint32_t> table_;    ///< arena index or kEmptySlot
  std::size_t table_mask_ = 0;
  std::size_t table_used_ = 0;

  // --- persistent operation cache (direct-mapped) ---
  struct CacheEntry {
    NodeId f = 0xffffffffu;
    NodeId g = 0;
    NodeId h = 0;
    std::uint32_t op = 0;
    NodeId result = 0;
  };
  std::vector<CacheEntry> cache_;
  std::uint32_t cache_mask_ = 0;

  // --- pinned projection functions and interned rename maps ---
  std::vector<NodeId> proj_;                  ///< var(v) nodes, pinned
  std::vector<std::vector<int>> rename_maps_;

  int num_vars_ = 0;
  std::size_t live_nodes_ = 0;
  std::size_t peak_live_ = 0;
  std::size_t gc_threshold_ = 0;
  // counters
  std::size_t unique_lookups_ = 0;
  std::size_t unique_hits_ = 0;
  std::size_t cache_lookups_ = 0;
  std::size_t cache_hits_ = 0;
  std::size_t gc_runs_ = 0;

  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

  [[nodiscard]] static constexpr std::uint32_t index_of(NodeId f) noexcept { return f >> 1; }
  [[nodiscard]] static constexpr bool is_complement(NodeId f) noexcept { return (f & 1u) != 0; }
  [[nodiscard]] int var_of(NodeId f) const noexcept { return node_var_[index_of(f)]; }
  /// Cofactor with complement propagation; `f` must be a non-terminal whose
  /// top variable is exactly `v` or deeper.
  [[nodiscard]] NodeId cofactor(NodeId f, int v, bool positive) const noexcept {
    const std::uint32_t i = index_of(f);
    if (node_var_[i] != v) return f;
    return (positive ? node_hi_[i] : node_lo_[i]) ^ (f & 1u);
  }

  [[nodiscard]] NodeId make(int var, NodeId lo, NodeId hi);
  [[nodiscard]] NodeId ite_rec(NodeId f, NodeId g, NodeId h);
  [[nodiscard]] NodeId and_exists_rec(NodeId f, NodeId g, NodeId cube);
  [[nodiscard]] NodeId exists_rec(NodeId f, NodeId cube);
  [[nodiscard]] NodeId rename_rec(NodeId f, const std::vector<int>& map, std::uint32_t op);

  [[nodiscard]] bool cache_probe(std::uint32_t op, NodeId f, NodeId g, NodeId h,
                                 NodeId& out) noexcept;
  void cache_store(std::uint32_t op, NodeId f, NodeId g, NodeId h, NodeId result) noexcept;

  void grow_table(std::size_t min_capacity);
  void table_insert(std::uint32_t index) noexcept;
  /// GC trigger at public-call boundaries; `roots` are the call's operands.
  void maybe_gc(std::initializer_list<NodeId> roots);
  void mark_from(NodeId f) noexcept;
};

}  // namespace tt::bdd
