// A reduced ordered binary decision diagram (ROBDD) package — the substrate
// behind the symbolic model checker (the paper's workhorse: "the symbolic
// model checker of SAL is able to examine these in a few tens of minutes").
//
// Classic Bryant construction: a unique table interning (var, lo, hi)
// triples, an ITE-based apply with a computed cache, existential
// quantification over a variable mask, and model counting. No complement
// edges and no dynamic reordering — the mini-SAL models are small enough
// that clarity wins.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/assert.hpp"

namespace tt::bdd {

using NodeId = std::uint32_t;

constexpr NodeId kFalse = 0;
constexpr NodeId kTrue = 1;

class Manager {
 public:
  /// `num_vars` is the total variable count; variable 0 is the topmost.
  explicit Manager(int num_vars);

  [[nodiscard]] int num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// The BDD of a single variable / its negation.
  [[nodiscard]] NodeId var(int v);
  [[nodiscard]] NodeId nvar(int v);

  [[nodiscard]] NodeId ite(NodeId f, NodeId g, NodeId h);
  [[nodiscard]] NodeId land(NodeId f, NodeId g) { return ite(f, g, kFalse); }
  [[nodiscard]] NodeId lor(NodeId f, NodeId g) { return ite(f, kTrue, g); }
  [[nodiscard]] NodeId lnot(NodeId f) { return ite(f, kFalse, kTrue); }
  [[nodiscard]] NodeId lxor(NodeId f, NodeId g) { return ite(f, lnot(g), g); }

  /// Existentially quantifies every variable v with quantify[v] != 0.
  [[nodiscard]] NodeId exists(NodeId f, const std::vector<std::uint8_t>& quantify);

  /// Relational product: exists(quantify, f & g). (Computed as AND followed
  /// by quantification; adequate at mini-SAL scale.)
  [[nodiscard]] NodeId and_exists(NodeId f, NodeId g,
                                  const std::vector<std::uint8_t>& quantify) {
    return exists(land(f, g), quantify);
  }

  /// Rebuilds `f` with every variable v replaced by map[v]. The mapping must
  /// be strictly monotone on the variables occurring in f (it preserves the
  /// order), which holds for the next->current renaming used by symbolic
  /// reachability (2i+1 -> 2i).
  [[nodiscard]] NodeId rename(NodeId f, const std::vector<int>& map);

  /// Number of satisfying assignments over all `num_vars` variables.
  [[nodiscard]] double sat_count(NodeId f);

  /// Evaluates f under a full assignment (one bool per variable).
  [[nodiscard]] bool eval(NodeId f, const std::vector<bool>& assignment) const;

  /// Extracts one satisfying assignment (f must not be kFalse); unassigned
  /// variables default to false.
  [[nodiscard]] std::vector<bool> any_sat(NodeId f) const;

 private:
  struct Node {
    int var;
    NodeId lo;
    NodeId hi;
  };
  struct TripleHash {
    std::size_t operator()(const std::uint64_t& k) const noexcept {
      std::uint64_t x = k;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<std::size_t>(x ^ (x >> 31));
    }
  };

  [[nodiscard]] NodeId make(int var, NodeId lo, NodeId hi);
  [[nodiscard]] int top_var(NodeId f, NodeId g, NodeId h) const;
  [[nodiscard]] NodeId cofactor(NodeId f, int var, bool positive) const;

  int num_vars_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, NodeId, TripleHash> unique_;
  std::unordered_map<std::uint64_t, NodeId, TripleHash> ite_cache_;
  // Per-operation scratch caches (cleared at each public call).
  std::unordered_map<std::uint64_t, NodeId, TripleHash> op_cache_;
  std::unordered_map<NodeId, double> count_cache_;
};

}  // namespace tt::bdd
