#include "bdd/symbolic.hpp"

#include <algorithm>
#include <limits>

#include "support/bitpack.hpp"
#include "support/timer.hpp"

namespace tt::bdd {

namespace {

int compute_total_bits(const kernel::System& system) {
  int bits = 0;
  for (const auto& d : system.vars()) bits += tt::bits_for(static_cast<std::uint64_t>(d.domain));
  return bits;
}

}  // namespace

SymbolicEngine::SymbolicEngine(const kernel::System& system)
    : system_(system), manager_(2 * compute_total_bits(system)) {
  int base = 0;
  for (const auto& d : system_.vars()) {
    const int w = tt::bits_for(static_cast<std::uint64_t>(d.domain));
    width_.push_back(w);
    bit_base_.push_back(base);
    base += w;
  }
  total_bits_ = base;
}

NodeId SymbolicEngine::var_equals(kernel::VarId v, int val, bool next_frame) {
  const int base = bit_base_[static_cast<std::size_t>(v)];
  const int w = width_[static_cast<std::size_t>(v)];
  NodeId acc = kTrue;
  // Build bottom-up (highest BDD level first) to keep intermediate BDDs tiny.
  for (int b = w - 1; b >= 0; --b) {
    const int level = 2 * (base + b) + (next_frame ? 1 : 0);
    const bool bit = ((val >> b) & 1) != 0;
    acc = manager_.land(bit ? manager_.var(level) : manager_.nvar(level), acc);
  }
  return acc;
}

NodeId SymbolicEngine::var_unchanged(kernel::VarId v) {
  const int base = bit_base_[static_cast<std::size_t>(v)];
  const int w = width_[static_cast<std::size_t>(v)];
  NodeId acc = kTrue;
  for (int b = w - 1; b >= 0; --b) {
    const int cur = 2 * (base + b);
    const NodeId eq = manager_.lnot(manager_.lxor(manager_.var(cur), manager_.var(cur + 1)));
    acc = manager_.land(eq, acc);
  }
  return acc;
}

int SymbolicEngine::expr_domain(kernel::ExprId e) const {
  const auto& n = system_.exprs().node(e);
  switch (n.op) {
    case kernel::Op::kConst: return n.k + 1;
    case kernel::Op::kVar: return system_.vars()[static_cast<std::size_t>(n.var)].domain;
    case kernel::Op::kAddMod: return n.m;
    case kernel::Op::kIte: return std::max(expr_domain(n.a), expr_domain(n.b));
    default: return 2;
  }
}

NodeId SymbolicEngine::encode_int_eq(kernel::ExprId e, int val, bool next_frame) {
  const auto& n = system_.exprs().node(e);
  switch (n.op) {
    case kernel::Op::kConst: return n.k == val ? kTrue : kFalse;
    case kernel::Op::kVar: {
      const int dom = system_.vars()[static_cast<std::size_t>(n.var)].domain;
      if (val < 0 || val >= dom) return kFalse;
      return var_equals(n.var, val, next_frame);
    }
    case kernel::Op::kAddMod: {
      if (val < 0 || val >= n.m) return kFalse;
      NodeId acc = kFalse;
      const int dom = expr_domain(n.a);
      for (int w = 0; w < dom; ++w) {
        if ((((w + n.k) % n.m) + n.m) % n.m == val) {
          acc = manager_.lor(acc, encode_int_eq(n.a, w, next_frame));
        }
      }
      return acc;
    }
    case kernel::Op::kIte: {
      const NodeId c = encode_bool(n.c, next_frame);
      return manager_.lor(manager_.land(c, encode_int_eq(n.a, val, next_frame)),
                          manager_.land(manager_.lnot(c), encode_int_eq(n.b, val, next_frame)));
    }
    default: {
      const NodeId b = encode_bool(e, next_frame);
      if (val == 1) return b;
      if (val == 0) return manager_.lnot(b);
      return kFalse;
    }
  }
}

NodeId SymbolicEngine::encode_bool(kernel::ExprId e, bool next_frame) {
  const auto& n = system_.exprs().node(e);
  switch (n.op) {
    case kernel::Op::kEqC: return encode_int_eq(n.a, n.k, next_frame);
    case kernel::Op::kLtC:
    case kernel::Op::kGeC: {
      NodeId acc = kFalse;
      const int dom = expr_domain(n.a);
      for (int val = 0; val < dom; ++val) {
        const bool in = n.op == kernel::Op::kLtC ? (val < n.k) : (val >= n.k);
        if (in) acc = manager_.lor(acc, encode_int_eq(n.a, val, next_frame));
      }
      return acc;
    }
    case kernel::Op::kEqV: {
      NodeId acc = kFalse;
      const int dom = std::min(expr_domain(n.a), expr_domain(n.b));
      for (int val = 0; val < dom; ++val) {
        acc = manager_.lor(acc, manager_.land(encode_int_eq(n.a, val, next_frame),
                                              encode_int_eq(n.b, val, next_frame)));
      }
      return acc;
    }
    case kernel::Op::kAnd:
      return manager_.land(encode_bool(n.a, next_frame), encode_bool(n.b, next_frame));
    case kernel::Op::kOr:
      return manager_.lor(encode_bool(n.a, next_frame), encode_bool(n.b, next_frame));
    case kernel::Op::kNot: return manager_.lnot(encode_bool(n.a, next_frame));
    case kernel::Op::kIte: {
      const NodeId c = encode_bool(n.c, next_frame);
      return manager_.ite(c, encode_bool(n.a, next_frame), encode_bool(n.b, next_frame));
    }
    default:
      TT_REQUIRE(false, "integer expression used as boolean in symbolic encoding");
  }
  return kFalse;
}

NodeId SymbolicEngine::build_initial() {
  NodeId acc = kTrue;
  for (std::size_t v = 0; v < system_.vars().size(); ++v) {
    const auto& d = system_.vars()[v];
    if (d.init_any) {
      // Any value inside the domain (excludes unused encodings).
      NodeId any = kFalse;
      for (int val = 0; val < d.domain; ++val) {
        any = manager_.lor(any, var_equals(static_cast<kernel::VarId>(v), val, false));
      }
      acc = manager_.land(acc, any);
    } else {
      acc = manager_.land(acc, var_equals(static_cast<kernel::VarId>(v), d.init, false));
    }
  }
  return acc;
}

void SymbolicEngine::build_partitions() {
  // One relation conjunct per choice group, never conjoined with the others:
  // the image threads the frontier through them with and_exists instead.
  for (std::size_t g = 0; g < system_.groups().size(); ++g) {
    const auto& grp = system_.groups()[g];
    std::vector<kernel::VarId> owned;
    for (std::size_t v = 0; v < system_.vars().size(); ++v) {
      if (system_.vars()[v].group == static_cast<int>(g)) {
        owned.push_back(static_cast<kernel::VarId>(v));
      }
    }
    NodeId group_rel = kFalse;
    NodeId no_guard = kTrue;
    for (const auto& cmd : grp.commands) {
      const NodeId guard = encode_bool(cmd.guard, false);
      no_guard = manager_.land(no_guard, manager_.lnot(guard));
      NodeId effect = kTrue;
      for (const kernel::VarId v : owned) {
        kernel::ExprId assigned = -1;
        for (const auto& a : cmd.assigns) {
          if (a.var == v) {
            assigned = a.value;
            break;
          }
        }
        if (assigned < 0) {
          effect = manager_.land(effect, var_unchanged(v));
        } else {
          NodeId keeps = kFalse;
          const int dom = system_.vars()[static_cast<std::size_t>(v)].domain;
          for (int val = 0; val < dom; ++val) {
            keeps = manager_.lor(keeps, manager_.land(encode_int_eq(assigned, val, false),
                                                      var_equals(v, val, true)));
          }
          effect = manager_.land(effect, keeps);
        }
      }
      group_rel = manager_.lor(group_rel, manager_.land(guard, effect));
    }
    if (grp.else_stutter) {
      NodeId stay = no_guard;
      for (const kernel::VarId v : owned) stay = manager_.land(stay, var_unchanged(v));
      group_rel = manager_.lor(group_rel, stay);
    }
    parts_.push_back({group_rel, kTrue});
  }
  // Variables never assigned by any group are frozen — one extra partition.
  NodeId frozen = kTrue;
  for (std::size_t v = 0; v < system_.vars().size(); ++v) {
    if (system_.vars()[v].group == -1) {
      frozen = manager_.land(frozen, var_unchanged(static_cast<kernel::VarId>(v)));
    }
  }
  if (frozen != kTrue || parts_.empty()) parts_.push_back({frozen, kTrue});

  // Early-quantification schedule: each current-state bit is quantified at
  // the last partition whose support mentions it (bits no partition reads
  // can leave at the first conjunction).
  std::vector<int> quantify_at(static_cast<std::size_t>(total_bits_), 0);
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    const auto sup = manager_.support(parts_[p].relation);
    for (int b = 0; b < total_bits_; ++b) {
      if (sup[static_cast<std::size_t>(2 * b)] != 0) {
        quantify_at[static_cast<std::size_t>(b)] = static_cast<int>(p);
      }
    }
  }
  std::vector<std::vector<int>> cube_vars(parts_.size());
  for (int b = 0; b < total_bits_; ++b) {
    cube_vars[static_cast<std::size_t>(quantify_at[static_cast<std::size_t>(b)])]
        .push_back(2 * b);
  }
  for (std::size_t p = 0; p < parts_.size(); ++p) {
    parts_[p].cube = manager_.cube(cube_vars[p]);
    manager_.ref(parts_[p].relation);
    manager_.ref(parts_[p].cube);
  }

  std::vector<int> rename_map(static_cast<std::size_t>(2 * total_bits_), 0);
  for (int b = 0; b < total_bits_; ++b) {
    rename_map[static_cast<std::size_t>(2 * b)] = 2 * b;
    rename_map[static_cast<std::size_t>(2 * b + 1)] = 2 * b;  // next -> current
  }
  rename_next_to_cur_ = manager_.register_rename(rename_map);
  built_ = true;
}

NodeId SymbolicEngine::image(NodeId frontier) {
  // Relational product: conjoin-and-quantify per partition. Intermediate
  // results are GC-safe because every public call roots its own operands.
  NodeId img = frontier;
  for (const Partition& p : parts_) {
    img = manager_.and_exists(img, p.relation, p.cube);
  }
  return manager_.rename(img, rename_next_to_cur_);
}

std::vector<int> SymbolicEngine::decode(const std::vector<bool>& bits) const {
  std::vector<int> v(system_.vars().size(), 0);
  for (std::size_t i = 0; i < v.size(); ++i) {
    int val = 0;
    for (int b = 0; b < width_[i]; ++b) {
      if (bits[static_cast<std::size_t>(2 * (bit_base_[i] + b))]) val |= 1 << b;
    }
    v[i] = val;
  }
  return v;
}

SymbolicResult SymbolicEngine::check_invariant(kernel::ExprId property) {
  Timer timer;
  SymbolicResult out;
  out.bdd_vars = 2 * total_bits_;

  // Construction holds intermediates in locals the collector cannot see, so
  // GC stays off until everything long-lived is built and ref()ed.
  manager_.set_gc_threshold(std::numeric_limits<std::size_t>::max());
  if (!built_) build_partitions();
  const NodeId init = build_initial();
  manager_.ref(init);
  const NodeId prop = property >= 0 ? encode_bool(property, false) : kTrue;
  manager_.ref(prop);
  manager_.set_gc_threshold(std::size_t{1} << 16);
  (void)manager_.gc();  // drop construction garbage before the fixpoint

  NodeId reached = init;
  manager_.ref(reached);
  NodeId frontier = init;
  manager_.ref(frontier);
  while (frontier != kFalse) {
    ++out.iterations;
    const NodeId img = image(frontier);
    const NodeId new_frontier = manager_.land(img, manager_.lnot(reached));
    manager_.ref(new_frontier);
    manager_.deref(frontier);
    frontier = new_frontier;
    const NodeId new_reached = manager_.lor(reached, frontier);
    manager_.ref(new_reached);
    manager_.deref(reached);
    reached = new_reached;
  }

  // `reached` mentions current-frame bits only: divide out the free next bits.
  out.reachable_exact =
      manager_.sat_count_exact(reached) >> static_cast<unsigned>(total_bits_);
  out.reachable_states = out.reachable_exact.to_double();

  if (property < 0) {
    out.holds = true;  // counting run: no property to check
  } else {
    const NodeId bad = manager_.land(reached, manager_.lnot(prop));
    out.holds = bad == kFalse;
    if (!out.holds) {
      out.violating_state = decode(manager_.any_sat(bad));
    }
  }

  const ManagerStats ms = manager_.stats();
  out.peak_nodes = ms.peak_live_nodes;
  out.gc_collections = ms.gc_runs;
  out.unique_hit_rate = ms.unique_hit_rate();
  out.op_cache_hit_rate = ms.cache_hit_rate();

  manager_.deref(frontier);
  manager_.deref(reached);
  manager_.deref(prop);
  manager_.deref(init);
  out.seconds = timer.seconds();
  return out;
}

SymbolicResult SymbolicEngine::count_reachable() { return check_invariant(-1); }

}  // namespace tt::bdd
