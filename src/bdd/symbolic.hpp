// BDD-based symbolic model checking over kernel::System — the rebuild of
// the paper's primary engine (SAL's `sal-smc`).
//
// Variables are binary-encoded; current-state bit i sits at BDD level 2i and
// its next-state partner at 2i+1 (interleaving keeps the transition
// relation's equality ladders small). The transition relation is the
// conjunction over choice groups of the disjunction over commands of
// (guard & assignments & frame), exactly the guarded-command semantics of
// kernel::System. Reachability is the standard image-computation fixpoint;
// invariants are checked by intersecting with the negated property, and the
// reachable-state count (paper Fig. 5's "reachable states") comes from BDD
// model counting.
#pragma once

#include <vector>

#include "bdd/bdd.hpp"
#include "kernel/system.hpp"

namespace tt::bdd {

struct SymbolicResult {
  bool holds = false;
  double reachable_states = 0.0;
  int iterations = 0;           ///< image steps to the fixpoint
  std::size_t peak_nodes = 0;   ///< BDD nodes allocated
  int bdd_vars = 0;             ///< state bits x 2 (the paper's Fig. 6 column)
  double seconds = 0.0;
  /// A violating state valuation (empty when the invariant holds).
  std::vector<int> violating_state;
};

class SymbolicEngine {
 public:
  explicit SymbolicEngine(const kernel::System& system);

  /// Computes the reachable set and checks G(property). Pass property = -1
  /// to skip the property check (pure reachability / counting run).
  [[nodiscard]] SymbolicResult check_invariant(kernel::ExprId property);

  /// Reachable-state count only (property = true).
  [[nodiscard]] SymbolicResult count_reachable();

 private:
  [[nodiscard]] NodeId encode_bool(kernel::ExprId e, bool next_frame);
  [[nodiscard]] NodeId encode_int_eq(kernel::ExprId e, int val, bool next_frame);
  [[nodiscard]] NodeId var_equals(kernel::VarId v, int val, bool next_frame);
  [[nodiscard]] NodeId var_unchanged(kernel::VarId v);
  [[nodiscard]] int expr_domain(kernel::ExprId e) const;
  [[nodiscard]] NodeId build_initial();
  [[nodiscard]] NodeId build_transition();
  [[nodiscard]] std::vector<int> decode(const std::vector<bool>& bits) const;

  const kernel::System& system_;
  Manager manager_;
  std::vector<int> width_;      ///< bits per system variable
  std::vector<int> bit_base_;   ///< first bit index per system variable
  int total_bits_ = 0;
};

}  // namespace tt::bdd
