// BDD-based symbolic model checking over kernel::System — the rebuild of
// the paper's primary engine (SAL's `sal-smc`).
//
// Variables are binary-encoded; current-state bit i sits at BDD level 2i and
// its next-state partner at 2i+1 (interleaving keeps the transition
// relation's equality ladders small).
//
// The transition relation is kept *partitioned*: one conjunct per choice
// group (the disjunction over that group's commands of guard & assignments
// & frame) plus one conjunct freezing unassigned variables. The image step
// never builds the monolithic relation — it threads the frontier through
// the partitions with Manager::and_exists, quantifying each current-state
// bit at the earliest partition after which it no longer occurs (early
// quantification, the classic conjunctive-partitioning schedule). Reachability
// is the standard image fixpoint; invariants are checked by intersecting
// with the negated property, and reachable-state counts (paper Fig. 5's
// "reachable states") come from exact BDD model counting.
#pragma once

#include <vector>

#include "bdd/bdd.hpp"
#include "kernel/system.hpp"
#include "support/biguint.hpp"

namespace tt::bdd {

struct SymbolicResult {
  bool holds = false;
  /// Exact reachable-state count (Fig. 5-scale sets exceed 2^53).
  BigUint reachable_exact;
  /// Double rendering of reachable_exact (kept for report plumbing).
  double reachable_states = 0.0;
  int iterations = 0;             ///< image steps to the fixpoint
  std::size_t peak_nodes = 0;     ///< peak live BDD nodes (GC keeps this honest)
  std::size_t gc_collections = 0; ///< mark-and-sweep runs during the fixpoint
  double unique_hit_rate = 0.0;   ///< unique-table hit fraction
  double op_cache_hit_rate = 0.0; ///< persistent op-cache hit fraction
  int bdd_vars = 0;               ///< state bits x 2 (the paper's Fig. 6 column)
  double seconds = 0.0;
  /// A violating state valuation (empty when the invariant holds).
  std::vector<int> violating_state;
};

class SymbolicEngine {
 public:
  explicit SymbolicEngine(const kernel::System& system);

  /// Computes the reachable set and checks G(property). Pass property = -1
  /// to skip the property check (pure reachability / counting run).
  [[nodiscard]] SymbolicResult check_invariant(kernel::ExprId property);

  /// Reachable-state count only (property = true).
  [[nodiscard]] SymbolicResult count_reachable();

 private:
  /// One conjunct of the partitioned transition relation, with the positive
  /// cube of current-state bits to quantify right after conjoining it.
  struct Partition {
    NodeId relation = kTrue;
    NodeId cube = kTrue;
  };

  [[nodiscard]] NodeId encode_bool(kernel::ExprId e, bool next_frame);
  [[nodiscard]] NodeId encode_int_eq(kernel::ExprId e, int val, bool next_frame);
  [[nodiscard]] NodeId var_equals(kernel::VarId v, int val, bool next_frame);
  [[nodiscard]] NodeId var_unchanged(kernel::VarId v);
  [[nodiscard]] int expr_domain(kernel::ExprId e) const;
  [[nodiscard]] NodeId build_initial();
  void build_partitions();
  [[nodiscard]] NodeId image(NodeId frontier);
  [[nodiscard]] std::vector<int> decode(const std::vector<bool>& bits) const;

  const kernel::System& system_;
  Manager manager_;
  std::vector<int> width_;       ///< bits per system variable
  std::vector<int> bit_base_;    ///< first bit index per system variable
  int total_bits_ = 0;
  std::vector<Partition> parts_; ///< pinned via ref() for GC safety
  int rename_next_to_cur_ = -1;  ///< interned 2i+1 -> 2i map
  bool built_ = false;
};

}  // namespace tt::bdd
