// An incremental CDCL SAT solver — the substrate behind the bounded model
// checker and the unbounded proof engines (paper §5.2: "Bounded model
// checkers, which are based on propositional satisfiability (SAT) solvers,
// are specialized for detecting bugs"; DESIGN.md §3.10 for the incremental
// interface).
//
// Feature set: two-watched-literal propagation, first-UIP conflict analysis
// with recursive clause minimization, EVSIDS branching over an indexed binary
// heap, phase saving, Luby restarts, lazy clause-database reduction, and
// incremental solving under assumptions: `solve(assumptions)` may be called
// any number of times, clauses may be added between calls, learned clauses
// are retained across calls, and an UNSAT answer under assumptions yields a
// conflict core (the subset of assumptions the refutation used). Per-call
// constraints are expressed through activation literals: add `C ∨ ¬a`, pass
// `a` in the assumptions to activate `C`, and add the unit `¬a` to retire it.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace tt::sat {

/// A literal: variable index v with sign. Encoded as 2v (positive) or 2v+1
/// (negated), the classic MiniSat representation.
class Lit {
 public:
  Lit() = default;
  static Lit make(int var, bool negated) { return Lit((var << 1) | (negated ? 1 : 0)); }

  [[nodiscard]] int var() const noexcept { return code_ >> 1; }
  [[nodiscard]] bool negated() const noexcept { return (code_ & 1) != 0; }
  [[nodiscard]] Lit operator~() const noexcept { return Lit(code_ ^ 1); }
  [[nodiscard]] int code() const noexcept { return code_; }
  [[nodiscard]] bool operator==(const Lit&) const = default;

 private:
  explicit Lit(int code) : code_(code) {}
  int code_ = -2;
};

enum class Result { kSat, kUnsat };

class Solver {
 public:
  /// Creates a fresh variable; returns its index.
  int new_var();
  [[nodiscard]] int num_vars() const noexcept { return static_cast<int>(assign_.size()); }

  /// Adds a clause (empty clause makes the instance trivially unsat).
  /// Clauses may be added at any point between `solve` calls.
  void add_clause(std::vector<Lit> lits);

  /// Solves the current formula (no assumptions).
  [[nodiscard]] Result solve() { return solve({}); }

  /// Solves the current formula under the given assumption literals. The
  /// assumptions act as pseudo-decisions: a kSat answer satisfies all of
  /// them, a kUnsat answer means the formula together with the assumptions
  /// is unsatisfiable, and `conflict_core()` names the culpable subset.
  /// Learned clauses (which derive from the formula alone, never from the
  /// assumptions) are retained for later calls.
  [[nodiscard]] Result solve(const std::vector<Lit>& assumptions);

  /// Value of `var` in the most recent satisfying assignment (only after a
  /// kSat answer; stable until the next `solve` call).
  [[nodiscard]] bool value(int var) const {
    TT_ASSERT(model_[static_cast<std::size_t>(var)] != 0);
    return model_[static_cast<std::size_t>(var)] > 0;
  }

  /// After a kUnsat answer from `solve(assumptions)`: a subset of the
  /// assumptions that the refutation actually used (empty when the formula
  /// is unsatisfiable on its own). The proof engines use this as an
  /// unsatisfiable core for IC3 cube generalization.
  [[nodiscard]] const std::vector<Lit>& conflict_core() const noexcept { return core_; }

  struct Stats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learned = 0;
    std::uint64_t solve_calls = 0;    ///< number of `solve` invocations
    std::uint64_t clauses_reused = 0; ///< learned clauses carried into later calls (cumulative)
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Clause-database size (problem + currently retained learned clauses).
  /// Units: clause count. Used by BMC telemetry to report formula growth
  /// per unrolling depth.
  [[nodiscard]] std::size_t num_clauses() const noexcept { return clauses_.size(); }

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool learned = false;
    double activity = 0.0;
  };
  using ClauseRef = int;
  static constexpr ClauseRef kNoReason = -1;

  [[nodiscard]] std::int8_t lit_value(Lit l) const {
    const std::int8_t v = assign_[static_cast<std::size_t>(l.var())];
    return l.negated() ? static_cast<std::int8_t>(-v) : v;
  }

  void enqueue(Lit l, ClauseRef reason);
  [[nodiscard]] ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& backtrack_level);
  void analyze_final(Lit failed);
  [[nodiscard]] bool lit_redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack(int level);
  [[nodiscard]] int pick_branch_var();
  void bump_var(int var);
  void bump_clause(Clause& c);
  void decay_activities();
  void attach(ClauseRef cr);
  void reduce_learned();
  [[nodiscard]] static int luby(int i);

  // Indexed binary max-heap over activity_ (the MiniSat order heap): O(log n)
  // decisions instead of an O(n) scan, which matters once one incremental
  // solver carries a deep unrolling across many solve calls.
  void heap_insert(int var);
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  [[nodiscard]] bool heap_less(int a, int b) const {
    return activity_[static_cast<std::size_t>(a)] < activity_[static_cast<std::size_t>(b)];
  }

  std::vector<Clause> clauses_;
  std::vector<std::vector<ClauseRef>> watches_;  // indexed by literal code
  std::vector<std::int8_t> assign_;              // 0 unassigned, +1 true, -1 false
  std::vector<std::int8_t> phase_;               // saved phases
  std::vector<std::int8_t> model_;               // snapshot of the last kSat assignment
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<int> heap_;       // binary max-heap of candidate decision vars
  std::vector<int> heap_pos_;   // var -> index in heap_, -1 if absent
  std::vector<std::uint8_t> seen_;
  std::vector<int> to_clear_;  ///< vars whose seen_ mark analyze() must reset
  std::vector<Lit> minimize_stack_;
  std::vector<Lit> core_;  ///< failed-assumption core of the last kUnsat

  std::uint64_t live_learned_ = 0;  ///< learned clauses currently retained
  std::uint64_t reduce_at_ = 4000;
  bool unsat_ = false;
  Stats stats_;
};

}  // namespace tt::sat
