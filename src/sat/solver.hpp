// A CDCL SAT solver — the substrate behind the bounded model checker
// (paper §5.2: "Bounded model checkers, which are based on propositional
// satisfiability (SAT) solvers, are specialized for detecting bugs").
//
// Feature set: two-watched-literal propagation, first-UIP conflict analysis
// with recursive clause minimization, EVSIDS branching, phase saving, Luby
// restarts, and lazy clause-database reduction. Deliberately no
// preprocessing: BMC formulas are generated, solved once, and discarded.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace tt::sat {

/// A literal: variable index v with sign. Encoded as 2v (positive) or 2v+1
/// (negated), the classic MiniSat representation.
class Lit {
 public:
  Lit() = default;
  static Lit make(int var, bool negated) { return Lit((var << 1) | (negated ? 1 : 0)); }

  [[nodiscard]] int var() const noexcept { return code_ >> 1; }
  [[nodiscard]] bool negated() const noexcept { return (code_ & 1) != 0; }
  [[nodiscard]] Lit operator~() const noexcept { return Lit(code_ ^ 1); }
  [[nodiscard]] int code() const noexcept { return code_; }
  [[nodiscard]] bool operator==(const Lit&) const = default;

 private:
  explicit Lit(int code) : code_(code) {}
  int code_ = -2;
};

enum class Result { kSat, kUnsat };

class Solver {
 public:
  /// Creates a fresh variable; returns its index.
  int new_var();
  [[nodiscard]] int num_vars() const noexcept { return static_cast<int>(assign_.size()); }

  /// Adds a clause (empty clause makes the instance trivially unsat).
  void add_clause(std::vector<Lit> lits);

  /// Solves the current formula. May be called once per instance.
  [[nodiscard]] Result solve();

  /// Value of `var` in the satisfying assignment (only after kSat).
  [[nodiscard]] bool value(int var) const {
    TT_ASSERT(assign_[static_cast<std::size_t>(var)] != 0);
    return assign_[static_cast<std::size_t>(var)] > 0;
  }

  struct Stats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learned = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Clause-database size (problem + currently retained learned clauses).
  /// Units: clause count. Used by BMC telemetry to report formula growth
  /// per unrolling depth.
  [[nodiscard]] std::size_t num_clauses() const noexcept { return clauses_.size(); }

 private:
  struct Clause {
    std::vector<Lit> lits;
    bool learned = false;
    double activity = 0.0;
  };
  using ClauseRef = int;
  static constexpr ClauseRef kNoReason = -1;

  [[nodiscard]] std::int8_t lit_value(Lit l) const {
    const std::int8_t v = assign_[static_cast<std::size_t>(l.var())];
    return l.negated() ? static_cast<std::int8_t>(-v) : v;
  }

  void enqueue(Lit l, ClauseRef reason);
  [[nodiscard]] ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& backtrack_level);
  [[nodiscard]] bool lit_redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack(int level);
  [[nodiscard]] int pick_branch_var();
  void bump_var(int var);
  void bump_clause(Clause& c);
  void decay_activities();
  void attach(ClauseRef cr);
  void reduce_learned();
  [[nodiscard]] static int luby(int i);

  std::vector<Clause> clauses_;
  std::vector<std::vector<ClauseRef>> watches_;  // indexed by literal code
  std::vector<std::int8_t> assign_;              // 0 unassigned, +1 true, -1 false
  std::vector<std::int8_t> phase_;               // saved phases
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<int> heap_;  // lazy: simple max-scan; fine for BMC-scale problems
  std::vector<std::uint8_t> seen_;
  std::vector<int> to_clear_;  ///< vars whose seen_ mark analyze() must reset
  std::vector<Lit> minimize_stack_;

  bool unsat_ = false;
  Stats stats_;
};

}  // namespace tt::sat
