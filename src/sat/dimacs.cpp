#include "sat/dimacs.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace tt::sat {

Cnf parse_dimacs(const std::string& text) {
  Cnf cnf;
  std::istringstream in(text);
  std::string token;
  bool header_seen = false;
  int declared_clauses = 0;
  std::vector<int> current;
  while (in >> token) {
    if (token == "c") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (token == "p") {
      std::string fmt;
      TT_REQUIRE(static_cast<bool>(in >> fmt >> cnf.num_vars >> declared_clauses),
                 "malformed DIMACS header");
      TT_REQUIRE(fmt == "cnf", "unsupported DIMACS format: " + fmt);
      header_seen = true;
      continue;
    }
    TT_REQUIRE(header_seen, "DIMACS literal before header");
    int lit = 0;
    try {
      lit = std::stoi(token);
    } catch (const std::exception&) {
      throw std::invalid_argument("ttstart: bad DIMACS token: " + token);
    }
    if (lit == 0) {
      cnf.clauses.push_back(current);
      current.clear();
    } else {
      TT_REQUIRE(std::abs(lit) <= cnf.num_vars, "literal exceeds declared variables");
      current.push_back(lit);
    }
  }
  TT_REQUIRE(current.empty(), "unterminated DIMACS clause");
  return cnf;
}

std::string to_dimacs(const Cnf& cnf) {
  std::ostringstream out;
  out << "p cnf " << cnf.num_vars << " " << cnf.clauses.size() << "\n";
  for (const auto& clause : cnf.clauses) {
    for (int lit : clause) out << lit << " ";
    out << "0\n";
  }
  return out.str();
}

void load(const Cnf& cnf, Solver& solver) {
  while (solver.num_vars() < cnf.num_vars) (void)solver.new_var();
  for (const auto& clause : cnf.clauses) {
    std::vector<Lit> lits;
    lits.reserve(clause.size());
    for (int lit : clause) {
      lits.push_back(Lit::make(std::abs(lit) - 1, lit < 0));
    }
    solver.add_clause(std::move(lits));
  }
}

}  // namespace tt::sat
