// Minimal DIMACS CNF reader/writer for tests and tooling interop.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/solver.hpp"

namespace tt::sat {

struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;  ///< DIMACS literals (1-based, sign = polarity)
};

/// Parses DIMACS CNF text. Throws std::invalid_argument on malformed input.
[[nodiscard]] Cnf parse_dimacs(const std::string& text);

/// Renders a CNF in DIMACS format.
[[nodiscard]] std::string to_dimacs(const Cnf& cnf);

/// Loads a CNF into a solver (creating variables 0..num_vars-1).
void load(const Cnf& cnf, Solver& solver);

}  // namespace tt::sat
