#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

namespace tt::sat {

int Solver::new_var() {
  const int v = num_vars();
  assign_.push_back(0);
  phase_.push_back(-1);  // default polarity: false (BMC formulas like sparse models)
  model_.push_back(0);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  seen_.push_back(0);
  heap_pos_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

void Solver::add_clause(std::vector<Lit> lits) {
  TT_ASSERT(trail_lim_.empty());  // clauses may only be added at level 0
  // Normalize: remove duplicates and satisfied/false literals at level 0.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code() < b.code(); });
  std::vector<Lit> out;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    const Lit l = lits[i];
    if (i > 0 && l == lits[i - 1]) continue;
    if (i > 0 && l == ~lits[i - 1]) return;  // tautology
    const auto v = lit_value(l);
    if (v > 0) return;  // already satisfied at level 0
    if (v < 0) continue;
    out.push_back(l);
  }
  if (out.empty()) {
    unsat_ = true;
    return;
  }
  if (out.size() == 1) {
    if (lit_value(out[0]) == 0) {
      enqueue(out[0], kNoReason);
      if (propagate() != kNoReason) unsat_ = true;
    }
    return;
  }
  Clause c;
  c.lits = std::move(out);
  clauses_.push_back(std::move(c));
  attach(static_cast<ClauseRef>(clauses_.size() - 1));
}

void Solver::attach(ClauseRef cr) {
  const Clause& c = clauses_[static_cast<std::size_t>(cr)];
  watches_[static_cast<std::size_t>((~c.lits[0]).code())].push_back(cr);
  watches_[static_cast<std::size_t>((~c.lits[1]).code())].push_back(cr);
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  TT_ASSERT(lit_value(l) == 0);
  assign_[static_cast<std::size_t>(l.var())] = l.negated() ? -1 : 1;
  level_[static_cast<std::size_t>(l.var())] = static_cast<int>(trail_lim_.size());
  reason_[static_cast<std::size_t>(l.var())] = reason;
  trail_.push_back(l);
}

Solver::ClauseRef Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    auto& watch_list = watches_[static_cast<std::size_t>(p.code())];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const ClauseRef cr = watch_list[i];
      Clause& c = clauses_[static_cast<std::size_t>(cr)];
      // Ensure the falsified literal is lits[1].
      if (c.lits[0] == ~p) std::swap(c.lits[0], c.lits[1]);
      TT_ASSERT(c.lits[1] == ~p);
      if (lit_value(c.lits[0]) > 0) {
        watch_list[keep++] = cr;  // satisfied; keep watching
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (lit_value(c.lits[k]) >= 0) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[static_cast<std::size_t>((~c.lits[1]).code())].push_back(cr);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflicting.
      watch_list[keep++] = cr;
      if (lit_value(c.lits[0]) < 0) {
        // Conflict: restore the remaining watches and report.
        for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return cr;
      }
      enqueue(c.lits[0], cr);
    }
    watch_list.resize(keep);
  }
  return kNoReason;
}

void Solver::heap_insert(int var) {
  if (heap_pos_[static_cast<std::size_t>(var)] >= 0) return;
  heap_pos_[static_cast<std::size_t>(var)] = static_cast<int>(heap_.size());
  heap_.push_back(var);
  heap_sift_up(heap_.size() - 1);
}

void Solver::heap_sift_up(std::size_t i) {
  const int v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_less(heap_[parent], v)) break;
    heap_[i] = heap_[parent];
    heap_pos_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<int>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const int v = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_less(heap_[child], heap_[child + 1])) ++child;
    if (!heap_less(v, heap_[child])) break;
    heap_[i] = heap_[child];
    heap_pos_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<int>(i);
}

void Solver::bump_var(int var) {
  activity_[static_cast<std::size_t>(var)] += var_inc_;
  if (activity_[static_cast<std::size_t>(var)] > 1e100) {
    // Uniform rescale preserves the heap order.
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  const int pos = heap_pos_[static_cast<std::size_t>(var)];
  if (pos >= 0) heap_sift_up(static_cast<std::size_t>(pos));
}

void Solver::bump_clause(Clause& c) {
  c.activity += clause_inc_;
  if (c.activity > 1e20) {
    for (Clause& cl : clauses_) {
      if (cl.learned) cl.activity *= 1e-20;
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::decay_activities() {
  var_inc_ /= 0.95;
  clause_inc_ /= 0.999;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& backtrack_level) {
  learnt.clear();
  learnt.push_back(Lit::make(0, false));  // placeholder for the asserting literal
  to_clear_.clear();
  int counter = 0;
  Lit p;
  bool have_p = false;
  std::size_t trail_index = trail_.size();
  const int current_level = static_cast<int>(trail_lim_.size());

  ClauseRef cr = conflict;
  do {
    TT_ASSERT(cr != kNoReason);
    Clause& c = clauses_[static_cast<std::size_t>(cr)];
    if (c.learned) bump_clause(c);
    for (const Lit q : c.lits) {
      if (have_p && q == p) continue;
      const int v = q.var();
      if (seen_[static_cast<std::size_t>(v)] != 0 || level_[static_cast<std::size_t>(v)] == 0) {
        continue;
      }
      seen_[static_cast<std::size_t>(v)] = 1;
      to_clear_.push_back(v);
      bump_var(v);
      if (level_[static_cast<std::size_t>(v)] == current_level) {
        ++counter;
      } else {
        learnt.push_back(q);
      }
    }
    // Walk the trail backwards to the next marked literal. Marks stay set
    // for the whole analysis (they double as the "already visited" set) and
    // are cleared together at the end via to_clear_.
    while (seen_[static_cast<std::size_t>(trail_[trail_index - 1].var())] == 0) {
      --trail_index;
    }
    --trail_index;
    p = trail_[trail_index];
    have_p = true;
    cr = reason_[static_cast<std::size_t>(p.var())];
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // Recursive clause minimization (remove literals implied by the rest).
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    abstract_levels |= 1u << (level_[static_cast<std::size_t>(learnt[i].var())] & 31);
  }
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const int v = learnt[i].var();
    if (reason_[static_cast<std::size_t>(v)] == kNoReason ||
        !lit_redundant(learnt[i], abstract_levels)) {
      learnt[keep++] = learnt[i];
    }
  }
  learnt.resize(keep);

  // Compute the backtrack level (second-highest level in the clause).
  backtrack_level = 0;
  if (learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[static_cast<std::size_t>(learnt[i].var())] >
          level_[static_cast<std::size_t>(learnt[max_i].var())]) {
        max_i = i;
      }
    }
    std::swap(learnt[1], learnt[max_i]);
    backtrack_level = level_[static_cast<std::size_t>(learnt[1].var())];
  }
  for (const int v : to_clear_) seen_[static_cast<std::size_t>(v)] = 0;
}

void Solver::analyze_final(Lit failed) {
  // The assumption `failed` is falsified by the current (assumption-only)
  // trail. Collect the subset of assumption decisions whose implication
  // chain reaches ~failed; together with `failed` itself they form an
  // unsatisfiable core over the assumptions.
  core_.clear();
  core_.push_back(failed);
  if (trail_lim_.empty()) return;  // falsified at level 0: formula units suffice
  std::vector<int> marked;
  seen_[static_cast<std::size_t>(failed.var())] = 1;
  marked.push_back(failed.var());
  const std::size_t bottom = static_cast<std::size_t>(trail_lim_[0]);
  for (std::size_t i = trail_.size(); i-- > bottom;) {
    const Lit x = trail_[i];
    const int v = x.var();
    if (seen_[static_cast<std::size_t>(v)] == 0) continue;
    const ClauseRef cr = reason_[static_cast<std::size_t>(v)];
    if (cr == kNoReason) {
      // A decision above level 0 is necessarily an assumption.
      if (!(x == failed)) core_.push_back(x);
    } else {
      for (const Lit q : clauses_[static_cast<std::size_t>(cr)].lits) {
        const int qv = q.var();
        if (qv == v || level_[static_cast<std::size_t>(qv)] == 0) continue;
        if (seen_[static_cast<std::size_t>(qv)] == 0) {
          seen_[static_cast<std::size_t>(qv)] = 1;
          marked.push_back(qv);
        }
      }
    }
  }
  for (const int v : marked) seen_[static_cast<std::size_t>(v)] = 0;
}

bool Solver::lit_redundant(Lit l, std::uint32_t abstract_levels) {
  minimize_stack_.clear();
  minimize_stack_.push_back(l);
  std::vector<int> newly_marked;
  while (!minimize_stack_.empty()) {
    const Lit q = minimize_stack_.back();
    minimize_stack_.pop_back();
    const ClauseRef cr = reason_[static_cast<std::size_t>(q.var())];
    if (cr == kNoReason) {
      for (int v : newly_marked) seen_[static_cast<std::size_t>(v)] = 0;
      return false;
    }
    const Clause& c = clauses_[static_cast<std::size_t>(cr)];
    for (const Lit r : c.lits) {
      const int v = r.var();
      if (v == q.var() || seen_[static_cast<std::size_t>(v)] != 0 ||
          level_[static_cast<std::size_t>(v)] == 0) {
        continue;
      }
      if ((1u << (level_[static_cast<std::size_t>(v)] & 31) & abstract_levels) == 0) {
        for (int vv : newly_marked) seen_[static_cast<std::size_t>(vv)] = 0;
        return false;
      }
      seen_[static_cast<std::size_t>(v)] = 1;
      newly_marked.push_back(v);
      minimize_stack_.push_back(r);
    }
  }
  // Success: keep the marks (they memoize redundancy for the remaining
  // literals) but register them for the end-of-analysis cleanup.
  for (int v : newly_marked) to_clear_.push_back(v);
  return true;
}

void Solver::backtrack(int target_level) {
  while (static_cast<int>(trail_lim_.size()) > target_level) {
    const int boundary = trail_lim_.back();
    trail_lim_.pop_back();
    while (static_cast<int>(trail_.size()) > boundary) {
      const Lit l = trail_.back();
      trail_.pop_back();
      phase_[static_cast<std::size_t>(l.var())] = l.negated() ? -1 : 1;
      assign_[static_cast<std::size_t>(l.var())] = 0;
      reason_[static_cast<std::size_t>(l.var())] = kNoReason;
      heap_insert(l.var());
    }
  }
  propagate_head_ = trail_.size();
}

int Solver::pick_branch_var() {
  while (!heap_.empty()) {
    const int v = heap_[0];
    const int last = heap_.back();
    heap_.pop_back();
    heap_pos_[static_cast<std::size_t>(v)] = -1;
    if (!heap_.empty()) {
      heap_[0] = last;
      heap_pos_[static_cast<std::size_t>(last)] = 0;
      heap_sift_down(0);
    }
    if (assign_[static_cast<std::size_t>(v)] == 0) return v;
  }
  return -1;
}

int Solver::luby(int i) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  int k = 1;
  while ((1 << (k + 1)) <= i + 1) ++k;
  while ((1 << k) - 1 != i + 1) {
    i = i - (1 << k) + 1;
    k = 1;
    while ((1 << (k + 1)) <= i + 1) ++k;
  }
  return 1 << (k - 1);
}

void Solver::reduce_learned() {
  // Remove the least active half of the learned clauses (keeping binary
  // clauses), then rebuild the watch lists.
  std::vector<ClauseRef> learned;
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    if (clauses_[i].learned && clauses_[i].lits.size() > 2) {
      learned.push_back(static_cast<ClauseRef>(i));
    }
  }
  if (learned.size() < 100) return;
  std::sort(learned.begin(), learned.end(), [&](ClauseRef a, ClauseRef b) {
    return clauses_[static_cast<std::size_t>(a)].activity <
           clauses_[static_cast<std::size_t>(b)].activity;
  });
  std::vector<std::uint8_t> drop(clauses_.size(), 0);
  for (std::size_t i = 0; i < learned.size() / 2; ++i) {
    const ClauseRef cr = learned[i];
    const Clause& c = clauses_[static_cast<std::size_t>(cr)];
    // Never drop a clause that is currently a reason on the trail.
    bool is_reason = false;
    for (const Lit l : c.lits) {
      if (assign_[static_cast<std::size_t>(l.var())] != 0 &&
          reason_[static_cast<std::size_t>(l.var())] == cr) {
        is_reason = true;
        break;
      }
    }
    if (!is_reason) drop[static_cast<std::size_t>(cr)] = 1;
  }
  // Rebuild: compacting clause storage would invalidate ClauseRefs held in
  // reason_, so we only empty the dropped clauses and detach their watches.
  for (auto& wl : watches_) {
    std::size_t keep = 0;
    for (const ClauseRef cr : wl) {
      if (drop[static_cast<std::size_t>(cr)] == 0) wl[keep++] = cr;
    }
    wl.resize(keep);
  }
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    if (drop[i] != 0) {
      clauses_[i].lits.clear();
      clauses_[i].lits.shrink_to_fit();
      --live_learned_;
    }
  }
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  ++stats_.solve_calls;
  if (stats_.solve_calls > 1) stats_.clauses_reused += live_learned_;
  core_.clear();
  if (unsat_) return Result::kUnsat;
  TT_ASSERT(trail_lim_.empty());
  if (propagate() != kNoReason) {
    unsat_ = true;
    return Result::kUnsat;
  }

  std::vector<Lit> learnt;
  int restart_count = 0;
  std::uint64_t conflicts_until_restart =
      100 * static_cast<std::uint64_t>(luby(restart_count));
  std::uint64_t conflicts_this_restart = 0;

  while (true) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoReason) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (trail_lim_.empty()) {
        unsat_ = true;
        return Result::kUnsat;
      }
      int backtrack_level = 0;
      analyze(conflict, learnt, backtrack_level);
      backtrack(backtrack_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoReason);
      } else {
        Clause c;
        c.lits = learnt;
        c.learned = true;
        clauses_.push_back(std::move(c));
        const auto cr = static_cast<ClauseRef>(clauses_.size() - 1);
        bump_clause(clauses_[static_cast<std::size_t>(cr)]);
        attach(cr);
        enqueue(learnt[0], cr);
        ++stats_.learned;
        ++live_learned_;
      }
      decay_activities();
      if (stats_.learned >= reduce_at_) {
        reduce_learned();
        reduce_at_ += 2000;
      }
      continue;
    }

    if (conflicts_this_restart >= conflicts_until_restart) {
      ++stats_.restarts;
      ++restart_count;
      conflicts_this_restart = 0;
      conflicts_until_restart = 100 * static_cast<std::uint64_t>(luby(restart_count));
      backtrack(0);
      continue;
    }

    // Place pending assumptions as pseudo-decisions (one level each, so
    // analyze() treats them exactly like decisions and never resolves
    // past them — learned clauses stay assumption-free).
    Lit decision;
    bool have_decision = false;
    while (trail_lim_.size() < assumptions.size()) {
      const Lit a = assumptions[trail_lim_.size()];
      const std::int8_t v = lit_value(a);
      if (v > 0) {
        trail_lim_.push_back(static_cast<int>(trail_.size()));  // already satisfied
      } else if (v < 0) {
        analyze_final(a);
        backtrack(0);
        return Result::kUnsat;
      } else {
        decision = a;
        have_decision = true;
        break;
      }
    }
    if (!have_decision) {
      const int v = pick_branch_var();
      if (v < 0) {
        model_ = assign_;  // full assignment, no conflict
        backtrack(0);
        return Result::kSat;
      }
      decision = Lit::make(v, phase_[static_cast<std::size_t>(v)] < 0);
    }
    ++stats_.decisions;
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    enqueue(decision, kNoReason);
  }
}

}  // namespace tt::sat
