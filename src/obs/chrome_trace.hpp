// Chrome trace-event JSON export: drained Tracer events rendered in the
// format chrome://tracing and https://ui.perfetto.dev load directly
// (the "JSON Array Format" with an object wrapper — see
// scripts/validate_trace.py for the exact schema we guarantee).
#pragma once

#include <string>

#include "obs/trace.hpp"

namespace tt::obs {

/// Serializes every drained event of `tracer` to `path` as Chrome
/// trace-event JSON: spans as "X" (complete) events, counters as "C",
/// instants as "i", plus one "M" thread_name metadata record per thread.
/// Timestamps convert ns -> fractional µs (the format's unit). Call after
/// the instrumented run finished (emitting threads quiesced). Returns
/// false (and reports to stderr) when the file cannot be written.
bool write_chrome_trace(const Tracer& tracer, const std::string& path);

}  // namespace tt::obs
