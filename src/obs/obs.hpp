// Umbrella header + CLI plumbing for the observability layer: one include
// gives instrumented binaries the tracer, the Chrome exporter, the progress
// heartbeat and the memory sampler, plus the shared `--trace-out` /
// `--progress` / `--quiet` flag handling used by the CLI and the fig4/
// fig5/fig6 benches.
#pragma once

#include <string>

#include "obs/chrome_trace.hpp"
#include "obs/memory.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"

namespace tt::obs {

/// Observability knobs shared by every instrumented binary.
struct ObsOptions {
  /// Chrome trace-event JSON output path; empty = tracing stays disabled.
  std::string trace_out;
  /// Heartbeat interval in seconds; <= 0 = no progress lines.
  double progress_sec = 0.0;
  /// Suppresses heartbeat lines even when progress_sec > 0 (trace counters
  /// are unaffected).
  bool quiet = false;
};

/// Extracts `--trace-out <file>`, `--progress <seconds>` and `--quiet` from
/// argv, compacting the array so other parsers (GoogleBenchmark, the CLI's
/// own loop) never see them. Returns false on a malformed value (missing
/// file name, non-numeric interval) after reporting to stderr.
[[nodiscard]] bool parse_obs_args(int& argc, char** argv, ObsOptions& out);

/// RAII session: installs a Tracer when `trace_out` is set, configures the
/// progress heartbeat, and on destruction writes the Chrome trace file and
/// (unless quiet) reports where it landed plus the peak RSS. Create exactly
/// one per process, on the main thread, before any instrumented run.
class ScopedObservability {
 public:
  explicit ScopedObservability(ObsOptions options);
  ScopedObservability(const ScopedObservability&) = delete;
  ScopedObservability& operator=(const ScopedObservability&) = delete;
  ~ScopedObservability();

 private:
  ObsOptions options_;
  Tracer tracer_;
};

}  // namespace tt::obs
