#include "obs/progress.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdio>

#include "obs/memory.hpp"
#include "obs/trace.hpp"

namespace tt::obs {

namespace {

std::atomic<long long> g_interval_ns{0};  // <= 0: printing disabled
std::atomic<bool> g_quiet{false};
std::atomic<std::uint64_t> g_last_print_ns{0};  // monotonic_ns of last line

/// Renders a count with a k/M suffix into buf; returns buf.
const char* human(double v, char* buf, std::size_t cap) {
  if (v >= 1e6) {
    std::snprintf(buf, cap, "%.1fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, cap, "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, cap, "%.0f", v);
  }
  return buf;
}

}  // namespace

void configure_progress(double interval_sec, bool quiet) {
  g_interval_ns.store(interval_sec > 0 ? static_cast<long long>(interval_sec * 1e9) : 0,
                      std::memory_order_relaxed);
  g_quiet.store(quiet, std::memory_order_relaxed);
  g_last_print_ns.store(0, std::memory_order_relaxed);
}

bool progress_printing() noexcept {
  return g_interval_ns.load(std::memory_order_relaxed) > 0 &&
         !g_quiet.load(std::memory_order_relaxed);
}

void progress_tick(const Heartbeat& hb) {
  if (enabled()) {
    emit_counter("states", static_cast<double>(hb.states));
    if (hb.frontier > 0) emit_counter("frontier", static_cast<double>(hb.frontier));
    if (hb.live_bdd_nodes > 0) {
      emit_counter("bdd_live_nodes", static_cast<double>(hb.live_bdd_nodes));
    }
    emit_counter("rss_mb", static_cast<double>(rss_bytes()) / 1e6);
  }
  if (!progress_printing()) return;

  const long long interval = g_interval_ns.load(std::memory_order_relaxed);
  const std::uint64_t now = detail::monotonic_ns();
  std::uint64_t last = g_last_print_ns.load(std::memory_order_relaxed);
  if (last != 0 && now - last < static_cast<std::uint64_t>(interval)) return;
  // One printer per slot: the first due caller claims it, racers skip.
  if (!g_last_print_ns.compare_exchange_strong(last, now, std::memory_order_relaxed)) {
    return;
  }

  const double rate = hb.seconds > 0 ? static_cast<double>(hb.states) / hb.seconds : 0;
  char states_buf[32], rate_buf[32], frontier_buf[32];
  std::fprintf(stderr, "[ttstart %7.1fs] %-5s states=%s", hb.seconds, hb.phase,
               human(static_cast<double>(hb.states), states_buf, sizeof states_buf));
  if (hb.depth >= 0) std::fprintf(stderr, " depth=%lld", hb.depth);
  if (hb.round >= 0) std::fprintf(stderr, " round=%lld", hb.round);
  if (hb.frontier > 0) {
    std::fprintf(stderr, " frontier=%s",
                 human(static_cast<double>(hb.frontier), frontier_buf, sizeof frontier_buf));
  }
  std::fprintf(stderr, " %s st/s", human(rate, rate_buf, sizeof rate_buf));
  if (hb.live_bdd_nodes > 0) {
    char bdd_buf[32];
    std::fprintf(stderr, " bdd=%s",
                 human(static_cast<double>(hb.live_bdd_nodes), bdd_buf, sizeof bdd_buf));
  }
  if (const std::size_t rss = rss_bytes(); rss > 0) {
    std::fprintf(stderr, " rss=%zuMB", rss / (1024 * 1024));
  }
  if (hb.total_hint > hb.states && rate > 0) {
    std::fprintf(stderr, " eta=%.0fs",
                 static_cast<double>(hb.total_hint - hb.states) / rate);
  }
  std::fprintf(stderr, "\n");
}

}  // namespace tt::obs
