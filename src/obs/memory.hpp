// Process-memory sampling for progress heartbeats and trace counters.
#pragma once

#include <cstddef>

namespace tt::obs {

/// Current resident set size of this process in bytes; 0 when the platform
/// offers no cheap way to read it (non-Linux). Thread-safe (stateless read
/// of /proc/self/status); costs one small file read, so sample it at
/// heartbeat granularity, not per state.
[[nodiscard]] std::size_t rss_bytes();

/// Peak resident set size (VmHWM) in bytes; 0 when unavailable. Same cost
/// and thread-safety as rss_bytes().
[[nodiscard]] std::size_t peak_rss_bytes();

}  // namespace tt::obs
