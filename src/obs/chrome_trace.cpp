#include "obs/chrome_trace.hpp"

#include <cstdio>
#include <fstream>

namespace tt::obs {

namespace {

/// Escapes a string for a JSON literal. Event names are static strings
/// under our control, but keep the exporter safe for arbitrary content.
std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// ns -> fractional µs, the trace-event format's time unit.
double us(std::uint64_t ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace

bool write_chrome_trace(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "ttstart: cannot write trace file %s\n", path.c_str());
    return false;
  }

  out.precision(3);
  out << std::fixed;
  out << "{\"displayTimeUnit\": \"ms\",\n \"traceEvents\": [\n";
  bool first = true;
  auto sep = [&]() -> std::ofstream& {
    out << (first ? "  " : ",\n  ");
    first = false;
    return out;
  };

  for (const ThreadEvents& th : tracer.drain()) {
    // tid 0 is the thread that installed the tracer: Tracer::install()
    // registers the calling thread before publishing the tracer, so the
    // coordinator deterministically owns the first slot.
    sep() << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": " << th.tid
          << ", \"args\": {\"name\": \""
          << (th.tid == 0 ? "coordinator" : "worker-" + std::to_string(th.tid))
          << "\"}}";
    for (const TraceEvent& e : th.events) {
      switch (e.kind) {
        case EventKind::kSpan:
          sep() << "{\"ph\": \"X\", \"name\": \"" << json_escape(e.name)
                << "\", \"cat\": \"ttstart\", \"pid\": 1, \"tid\": " << th.tid
                << ", \"ts\": " << us(e.ts_ns) << ", \"dur\": " << us(e.dur_ns);
          if (e.arg != kNoArg || e.detail != nullptr) {
            out << ", \"args\": {";
            bool arg_first = true;
            if (e.arg != kNoArg) {
              out << "\"" << json_escape(e.arg_name != nullptr ? e.arg_name : "arg")
                  << "\": " << e.arg;
              arg_first = false;
            }
            if (e.detail != nullptr) {
              out << (arg_first ? "" : ", ") << "\"detail\": \""
                  << json_escape(e.detail) << "\"";
            }
            out << "}";
          }
          out << "}";
          break;
        case EventKind::kCounter:
          sep() << "{\"ph\": \"C\", \"name\": \"" << json_escape(e.name)
                << "\", \"pid\": 1, \"tid\": " << th.tid << ", \"ts\": " << us(e.ts_ns)
                << ", \"args\": {\"value\": " << e.value << "}}";
          break;
        case EventKind::kInstant:
          sep() << "{\"ph\": \"i\", \"name\": \"" << json_escape(e.name)
                << "\", \"pid\": 1, \"tid\": " << th.tid << ", \"ts\": " << us(e.ts_ns)
                << ", \"s\": \"t\"";
          if (e.detail != nullptr) {
            out << ", \"args\": {\"detail\": \"" << json_escape(e.detail) << "\"}";
          }
          out << "}";
          break;
      }
    }
  }
  out << "\n ]\n}\n";
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace tt::obs
