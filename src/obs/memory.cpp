#include "obs/memory.hpp"

#include <cstdio>
#include <cstring>

namespace tt::obs {

namespace {

/// Reads a "<key>:   <n> kB" line from /proc/self/status; 0 if absent.
std::size_t proc_status_kb(const char* key) {
#ifdef __linux__
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long v = 0;
      if (std::sscanf(line + key_len + 1, "%llu", &v) == 1) {
        kb = static_cast<std::size_t>(v);
      }
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  (void)key;
  return 0;
#endif
}

}  // namespace

std::size_t rss_bytes() { return proc_status_kb("VmRSS") * 1024; }

std::size_t peak_rss_bytes() { return proc_status_kb("VmHWM") * 1024; }

}  // namespace tt::obs
