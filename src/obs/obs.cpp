#include "obs/obs.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace tt::obs {

bool parse_obs_args(int& argc, char** argv, ObsOptions& out) {
  int w = 1;
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--trace-out") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--trace-out needs a file path\n");
        ok = false;
        break;
      }
      out.trace_out = argv[++i];
    } else if (std::strcmp(arg, "--progress") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--progress needs an interval in seconds\n");
        ok = false;
        break;
      }
      char* end = nullptr;
      out.progress_sec = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || out.progress_sec < 0) {
        std::fprintf(stderr, "--progress: bad interval '%s'\n", argv[i]);
        ok = false;
        break;
      }
    } else if (std::strcmp(arg, "--quiet") == 0) {
      out.quiet = true;
    } else {
      argv[w++] = argv[i];
    }
  }
  argc = w;
  argv[argc] = nullptr;
  return ok;
}

ScopedObservability::ScopedObservability(ObsOptions options)
    : options_(std::move(options)) {
  configure_progress(options_.progress_sec, options_.quiet);
  if (!options_.trace_out.empty()) tracer_.install();
}

ScopedObservability::~ScopedObservability() {
  if (!options_.trace_out.empty()) {
    tracer_.uninstall();
    if (write_chrome_trace(tracer_, options_.trace_out) && !options_.quiet) {
      std::printf("[trace: %zu event(s) -> %s]\n", tracer_.event_count(),
                  options_.trace_out.c_str());
    }
  }
  if (progress_printing()) {
    if (const std::size_t peak = peak_rss_bytes(); peak > 0) {
      std::fprintf(stderr, "[ttstart] peak rss: %zuMB\n", peak / (1024 * 1024));
    }
  }
  configure_progress(0.0, false);
}

}  // namespace tt::obs
