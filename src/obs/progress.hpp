// Periodic progress heartbeat for long verification runs (DESIGN.md §3.5).
//
// Engines call progress_tick() at their natural publish points (a completed
// BFS level, an OWCTY trim round, an EG fixpoint step, a BMC depth). The
// reporter rate-limits output to the configured interval, prints one status
// line per heartbeat to stderr, and mirrors the sampled values into trace
// counters when a Tracer is installed — so `--progress` and `--trace-out`
// observe the same numbers.
#pragma once

#include <cstddef>

namespace tt::obs {

/// One progress sample. `phase` must be a static-storage string. Fields
/// that do not apply to the reporting engine stay 0 and are omitted from
/// the printed line. Units: `seconds` is elapsed wall-clock for the run;
/// counts are absolute totals, not deltas.
struct Heartbeat {
  const char* phase = "";           ///< e.g. "bfs", "owcty", "sym", "bmc"
  std::size_t states = 0;           ///< states interned / BDD states so far
  std::size_t transitions = 0;      ///< transitions enumerated so far
  std::size_t frontier = 0;         ///< next frontier size (0 = n/a)
  long long depth = -1;             ///< BFS level / BMC depth (-1 = n/a)
  long long round = -1;             ///< OWCTY trim round / EG step (-1 = n/a)
  double seconds = 0.0;             ///< elapsed wall-clock of the run
  std::size_t live_bdd_nodes = 0;   ///< live BDD nodes (0 = n/a)
  std::size_t total_hint = 0;       ///< expected total states, for ETA (0 = unknown)
};

/// Configures the global heartbeat. `interval_sec <= 0` disables printing
/// (ticks still feed trace counters when a tracer is installed). `quiet`
/// suppresses printing regardless of interval. Call from one thread while
/// engines are quiescent, like Tracer::install().
void configure_progress(double interval_sec, bool quiet);

/// True when heartbeat printing is active (interval > 0 and not quiet).
[[nodiscard]] bool progress_printing() noexcept;

/// Publishes a sample: prints one status line when the interval elapsed
/// since the last print (thread-safe; first due caller wins the slot) and
/// emits `states` / `frontier` / `rss` / `bdd_live_nodes` trace counters
/// when tracing is enabled. Cost when idle: two relaxed atomic loads.
void progress_tick(const Heartbeat& hb);

}  // namespace tt::obs
