// Structured tracing for the verification engines (DESIGN.md §3.5).
//
// Every engine run can emit *spans* (named, nested time intervals: a BFS
// level, an OWCTY trim round, a BDD garbage collection, a BMC depth) and
// *counters* (sampled values: frontier size, live BDD nodes, RSS). Events
// land in thread-local lock-free buffers owned by the emitting thread and
// are drained only after that thread has quiesced (the engines' barrier /
// join points), so instrumenting the parallel engines costs no shared-state
// synchronization on the hot path.
//
// Cost model: tracing is compiled in unconditionally but *disabled* by
// default. The disabled path is a single relaxed atomic load per
// instrumentation point (Span construction, counter emission); an
// interleaved A/B comparison against the rebuilt pre-instrumentation
// commit put the overhead on the fig6/safety/n5 exhaustive run below the
// measurement noise floor (EXPERIMENTS.md "observability overhead").
// When enabled, an append is a clock read plus a bump of the owning
// thread's chunk cursor — no locks, no allocation except a new 64KiB
// chunk every 1024 events.
//
// Thread-safety contract (the "drain at barriers" design):
//  * install()/uninstall() must run while no instrumented code executes on
//    other threads (engines are quiescent between runs).
//  * Span/counter emission may happen concurrently from any number of
//    threads; each thread appends only to its own buffer.
//  * drain() may run concurrently with emission (chunk cursors are
//    published with release/acquire), but a coherent *complete* snapshot is
//    only guaranteed after the emitting threads joined — which is when the
//    exporters run.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tt::obs {

/// Sentinel for "span carries no integer argument".
inline constexpr std::int64_t kNoArg = INT64_MIN;

/// What a TraceEvent records. kSpan is a closed interval [ts, ts+dur];
/// kCounter samples a value at ts; kInstant marks a point in time.
enum class EventKind : std::uint8_t {
  kSpan,
  kCounter,
  kInstant,
};

/// One trace event. `name`, `arg_name` and `detail` must point to
/// static-storage strings (string literals or constexpr to_string results):
/// the buffers store the pointers, not copies, so emission never allocates.
/// Times are nanoseconds since the owning Tracer's epoch (its install()).
struct TraceEvent {
  const char* name = nullptr;     ///< event name (static storage)
  const char* detail = nullptr;   ///< optional free-form label (static storage)
  const char* arg_name = nullptr; ///< name of `arg` when != kNoArg
  std::uint64_t ts_ns = 0;        ///< start time, ns since tracer epoch
  std::uint64_t dur_ns = 0;       ///< span duration in ns (0 otherwise)
  std::int64_t arg = kNoArg;      ///< optional integer argument
  double value = 0.0;             ///< counter value (kCounter only)
  EventKind kind = EventKind::kInstant;
};

namespace detail {

/// A single thread's event buffer: a linked list of fixed-size chunks.
/// Appends (owner thread only) write the slot then publish it by bumping
/// `count` with release order; readers acquire `count` and may touch only
/// slots below it — the SPMC publication that keeps drain() TSan-clean.
class ThreadBuffer {
 public:
  static constexpr std::size_t kChunkCap = 1024;

  explicit ThreadBuffer(std::uint32_t tid) : tid_(tid) {
    head_ = tail_ = new Chunk();
  }
  ThreadBuffer(const ThreadBuffer&) = delete;
  ThreadBuffer& operator=(const ThreadBuffer&) = delete;
  ~ThreadBuffer() {
    for (Chunk* c = head_; c != nullptr;) {
      Chunk* next = c->next.load(std::memory_order_relaxed);
      delete c;
      c = next;
    }
  }

  /// Owner-thread-only append.
  void push(const TraceEvent& e) {
    Chunk* t = tail_;
    const std::uint32_t n = t->count.load(std::memory_order_relaxed);
    if (n == kChunkCap) {
      Chunk* fresh = new Chunk();
      fresh->events[0] = e;
      fresh->count.store(1, std::memory_order_release);
      t->next.store(fresh, std::memory_order_release);
      tail_ = fresh;
      return;
    }
    t->events[n] = e;
    t->count.store(n + 1, std::memory_order_release);
  }

  /// Copies every published event, in append order, into `out`.
  void snapshot(std::vector<TraceEvent>& out) const {
    for (const Chunk* c = head_; c != nullptr;
         c = c->next.load(std::memory_order_acquire)) {
      const std::uint32_t n = c->count.load(std::memory_order_acquire);
      for (std::uint32_t i = 0; i < n; ++i) out.push_back(c->events[i]);
    }
  }

  [[nodiscard]] std::uint32_t tid() const noexcept { return tid_; }

 private:
  struct Chunk {
    TraceEvent events[kChunkCap];
    std::atomic<std::uint32_t> count{0};
    std::atomic<Chunk*> next{nullptr};
  };
  Chunk* head_;
  Chunk* tail_;  // owner thread only
  std::uint32_t tid_;
};

/// Monotonic clock read in nanoseconds (steady_clock).
[[nodiscard]] std::uint64_t monotonic_ns() noexcept;

}  // namespace detail

/// Per-thread slice of a drained trace.
struct ThreadEvents {
  std::uint32_t tid = 0;               ///< dense tracer-assigned thread id
  std::vector<TraceEvent> events;      ///< append order (= per-thread time order)
};

/// Collects events from every thread that emitted while this tracer was
/// installed. One Tracer per capture session; create a fresh one per run
/// (installation is cheap). All methods are safe to call from the thread
/// that owns the tracer; see the header comment for the concurrency rules.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;
  /// Uninstalls automatically if still installed (quiescence required).
  ~Tracer();

  /// Makes this the process-wide active tracer and enables event emission.
  /// The tracer epoch (ts_ns == 0) is the moment of installation. The
  /// installing thread is registered first, so it always owns tid 0 (the
  /// "coordinator" lane in the Chrome export).
  void install();
  /// Stops emission. Events already buffered remain drainable.
  void uninstall();

  /// True while this tracer is installed.
  [[nodiscard]] bool installed() const noexcept;

  /// Nanoseconds since this tracer's epoch (0 when never installed).
  [[nodiscard]] std::uint64_t now_ns() const noexcept;

  /// Snapshots every thread's published events. Complete only after the
  /// emitting threads joined/quiesced; cheap enough to call repeatedly.
  [[nodiscard]] std::vector<ThreadEvents> drain() const;

  /// Total events drained across threads (convenience for tests).
  [[nodiscard]] std::size_t event_count() const;

 private:
  friend detail::ThreadBuffer* registered_buffer();

  detail::ThreadBuffer* register_thread();

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<detail::ThreadBuffer>> buffers_;
  std::uint64_t epoch_ns_ = 0;
  // Installation generation, assigned in install() *before* this tracer is
  // published. Threads compare it against their thread-local copy to decide
  // whether their cached buffer pointer belongs to this capture session;
  // keeping it inside the Tracer means buffer and generation are always
  // read from the same object (no torn pairing across sessions).
  std::uint64_t generation_ = 0;
};

/// True when a tracer is installed and emitting. One relaxed atomic load —
/// this is the whole cost of every instrumentation point while disabled.
[[nodiscard]] bool enabled() noexcept;

/// Nanoseconds since the active tracer's epoch; 0 when tracing is disabled.
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Emits a closed span [start_ns, end_ns] on the calling thread's buffer.
/// No-op when disabled. Strings must have static storage (see TraceEvent).
void emit_span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
               std::int64_t arg = kNoArg, const char* arg_name = nullptr,
               const char* detail = nullptr);

/// Samples a counter value at the current time. No-op when disabled.
void emit_counter(const char* name, double value);

/// Marks an instantaneous event. No-op when disabled.
void emit_instant(const char* name, const char* detail = nullptr);

/// RAII span: times its own scope. Construction checks enabled() once; a
/// disabled Span costs one relaxed load and nothing at destruction.
/// Not thread-safe (stack object, used by one thread), like a Timer.
class Span {
 public:
  explicit Span(const char* name) : name_(name) {
    if (enabled()) start_ns_ = now_ns() + 1;  // +1: reserve 0 as "disarmed"
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() {
    if (start_ns_ != 0) {
      emit_span(name_, start_ns_ - 1, now_ns(), arg_, arg_name_, detail_);
    }
  }

  /// Attaches an integer argument (e.g. a depth or round number) rendered
  /// into the Chrome trace "args" object. Call any time before destruction.
  void set_arg(const char* arg_name, std::int64_t value) noexcept {
    arg_name_ = arg_name;
    arg_ = value;
  }
  /// Attaches a static-storage free-form label.
  void set_detail(const char* detail) noexcept { detail_ = detail; }

 private:
  const char* name_;
  const char* detail_ = nullptr;
  const char* arg_name_ = nullptr;
  std::int64_t arg_ = kNoArg;
  std::uint64_t start_ns_ = 0;  // 0 = disarmed (tracing was off at entry)
};

/// Manually opened/closed span for phases whose boundaries do not nest with
/// C++ scopes (e.g. "the BFS level ends where the next one begins").
/// begin() on an already-open span first closes the open one.
class ManualSpan {
 public:
  ManualSpan() = default;
  ManualSpan(const ManualSpan&) = delete;
  ManualSpan& operator=(const ManualSpan&) = delete;
  ~ManualSpan() { end(); }

  void begin(const char* name, std::int64_t arg = kNoArg,
             const char* arg_name = nullptr) {
    end();
    if (enabled()) {
      name_ = name;
      arg_ = arg;
      arg_name_ = arg_name;
      start_ns_ = now_ns() + 1;
    }
  }
  void end() {
    if (start_ns_ != 0) {
      emit_span(name_, start_ns_ - 1, now_ns(), arg_, arg_name_);
      start_ns_ = 0;
    }
  }

 private:
  const char* name_ = nullptr;
  const char* arg_name_ = nullptr;
  std::int64_t arg_ = kNoArg;
  std::uint64_t start_ns_ = 0;
};

}  // namespace tt::obs
