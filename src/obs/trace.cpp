#include "obs/trace.hpp"

#include <chrono>

#include "support/assert.hpp"

namespace tt::obs {

namespace detail {

std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace detail

namespace {

// The fast-path gate: every instrumentation point reads this and nothing
// else while tracing is disabled.
std::atomic<bool> g_enabled{false};
// The active tracer. Its installation generation lives *inside* the Tracer
// (written before the release-store that publishes it here), so a single
// acquire load yields a consistent (buffer source, generation) pair — a
// thread can never pair an old tracer's buffer with a newer generation,
// even if the quiescence contract around install()/uninstall() is violated.
std::atomic<Tracer*> g_active{nullptr};
// Monotone source for Tracer::generation_; bumped once per install().
std::atomic<std::uint64_t> g_generation_counter{0};

thread_local detail::ThreadBuffer* tl_buffer = nullptr;
thread_local std::uint64_t tl_generation = 0;

}  // namespace

/// Returns the calling thread's buffer for the active tracer, registering
/// on first use in a session; nullptr when tracing is disabled.
detail::ThreadBuffer* registered_buffer() {
  Tracer* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) return nullptr;
  // The generation comes from the same object the buffer will, so the two
  // cannot tear across install() sessions (generations strictly increase).
  if (tl_generation != t->generation_) {
    tl_buffer = t->register_thread();
    tl_generation = t->generation_;
  }
  return tl_buffer;
}

Tracer::~Tracer() {
  if (installed()) uninstall();
}

void Tracer::install() {
  TT_REQUIRE(g_active.load(std::memory_order_acquire) == nullptr,
             "a Tracer is already installed");
  epoch_ns_ = detail::monotonic_ns();
  generation_ = g_generation_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  g_active.store(this, std::memory_order_release);
  g_enabled.store(true, std::memory_order_release);
  // Register the installing thread before anyone else can emit: it
  // deterministically owns tid 0, which the Chrome exporter labels
  // "coordinator" (workers otherwise race for the first slot).
  (void)registered_buffer();
}

void Tracer::uninstall() {
  if (g_active.load(std::memory_order_acquire) != this) return;
  g_enabled.store(false, std::memory_order_release);
  g_active.store(nullptr, std::memory_order_release);
}

bool Tracer::installed() const noexcept {
  return g_active.load(std::memory_order_acquire) == this;
}

std::uint64_t Tracer::now_ns() const noexcept {
  return epoch_ns_ == 0 ? 0 : detail::monotonic_ns() - epoch_ns_;
}

detail::ThreadBuffer* Tracer::register_thread() {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::make_unique<detail::ThreadBuffer>(
      static_cast<std::uint32_t>(buffers_.size())));
  return buffers_.back().get();
}

std::vector<ThreadEvents> Tracer::drain() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ThreadEvents> out;
  out.reserve(buffers_.size());
  for (const auto& b : buffers_) {
    ThreadEvents te;
    te.tid = b->tid();
    b->snapshot(te.events);
    out.push_back(std::move(te));
  }
  return out;
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  for (const auto& t : drain()) n += t.events.size();
  return n;
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

std::uint64_t now_ns() noexcept {
  const Tracer* t = g_active.load(std::memory_order_acquire);
  return t == nullptr ? 0 : t->now_ns();
}

void emit_span(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
               std::int64_t arg, const char* arg_name, const char* detail_str) {
  detail::ThreadBuffer* buf = registered_buffer();
  if (buf == nullptr) return;
  TraceEvent e;
  e.kind = EventKind::kSpan;
  e.name = name;
  e.detail = detail_str;
  e.ts_ns = start_ns;
  e.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  e.arg = arg;
  e.arg_name = arg_name;
  buf->push(e);
}

void emit_counter(const char* name, double value) {
  detail::ThreadBuffer* buf = registered_buffer();
  if (buf == nullptr) return;
  TraceEvent e;
  e.kind = EventKind::kCounter;
  e.name = name;
  e.ts_ns = now_ns();
  e.value = value;
  buf->push(e);
}

void emit_instant(const char* name, const char* detail_str) {
  detail::ThreadBuffer* buf = registered_buffer();
  if (buf == nullptr) return;
  TraceEvent e;
  e.kind = EventKind::kInstant;
  e.name = name;
  e.detail = detail_str;
  e.ts_ns = now_ns();
  buf->push(e);
}

}  // namespace tt::obs
