#include "core/scenario_math.hpp"

#include "support/assert.hpp"

namespace tt::core {

ScenarioCounts count_scenarios(int n, int delta_init, int delta_failure, int wcsup) {
  TT_REQUIRE(n >= 1 && delta_init >= 1 && delta_failure >= 1 && wcsup >= 1,
             "scenario parameters must be positive");
  ScenarioCounts out;
  out.n = n;
  out.delta_init = delta_init;
  out.delta_failure = delta_failure;
  out.wcsup = wcsup;
  out.startup_scenarios =
      BigUint::pow(BigUint(static_cast<std::uint64_t>(delta_init)),
                   static_cast<unsigned>(n + 1));
  const BigUint per_slot =
      BigUint(static_cast<std::uint64_t>(delta_failure)) *
      BigUint(static_cast<std::uint64_t>(delta_failure));
  out.fault_scenarios = BigUint::pow(per_slot, static_cast<unsigned>(wcsup));
  return out;
}

ScenarioCounts paper_scenarios(int n) {
  return count_scenarios(n, paper_delta_init(n), 6, paper_wcsup_slots(n));
}

}  // namespace tt::core
