// Worst-case startup time search (paper §5.3).
//
// The paper explored w_sup "by model checking the timeliness property for
// different values of @par startuptime ... increasing it by small steps until
// counterexamples were no longer produced". This module automates exactly
// that loop: it sweeps the bound upward and returns the minimal bound for
// which the invariant holds, together with the last counterexample (the
// worst-case startup scenario itself).
#pragma once

#include <vector>

#include "core/verifier.hpp"
#include "mc/run_stats.hpp"
#include "tta/config.hpp"

namespace tt::core {

struct WcsupResult {
  int minimal_bound = -1;  ///< least passing bound; -1 when max_bound hit
  std::vector<int> failing_bounds;  ///< every swept bound that produced a counterexample
  std::vector<tta::Cluster::State> worst_trace;  ///< counterexample at minimal_bound-1
  mc::RunStats last_stats;
  double total_seconds = 0.0;
};

/// Sweeps the timeliness bound in [start_bound, max_bound]; `lemma` selects
/// the counter semantics (kTimeliness for §5.3, kSafety2 for §5.2-style hub
/// deadlines). Each probe is one verify() run, so `opts` selects the engine
/// and thread count for the whole sweep (both lemmas are invariants — the
/// parallel frontier engine is the default).
[[nodiscard]] WcsupResult find_worst_case_startup(tta::ClusterConfig cfg, Lemma lemma,
                                                  int start_bound, int max_bound,
                                                  const VerifyOptions& opts = {});

}  // namespace tt::core
