#include "core/verifier.hpp"

#include "mc/liveness.hpp"
#include "mc/parallel_liveness.hpp"
#include "mc/parallel_reachability.hpp"
#include "mc/reachability.hpp"
#include "mc/symbolic_liveness.hpp"
#include "mc/symbolic_reachability.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "tta/properties.hpp"

namespace tt::core {

tta::ClusterConfig prepare_config(tta::ClusterConfig cfg, Lemma lemma) {
  switch (lemma) {
    case Lemma::kSafety:
    case Lemma::kLiveness:
    case Lemma::kHubAgreement:
    case Lemma::kReintegration:
      // No startup_time tracking: a smaller state vector, as in the paper's
      // corresponding runs.
      cfg.timeliness_bound = 0;
      break;
    case Lemma::kTimeliness:
      TT_REQUIRE(cfg.timeliness_bound > 0, "timeliness needs a positive bound");
      cfg.timeliness_target = tta::TimelinessTarget::kFirstCorrectActive;
      break;
    case Lemma::kSafety2:
      TT_REQUIRE(cfg.timeliness_bound > 0, "safety_2 needs a positive bound");
      TT_REQUIRE(cfg.faulty_hub != tta::ClusterConfig::kNone,
                 "safety_2 is the faulty-hub lemma");
      cfg.timeliness_target = tta::TimelinessTarget::kCorrectHubSynced;
      break;
  }
  return cfg;
}

VerificationResult verify(const tta::ClusterConfig& raw_cfg, Lemma lemma,
                          const VerifyOptions& opts) {
  const tta::ClusterConfig cfg = prepare_config(raw_cfg, lemma);
  const tta::Cluster cluster(cfg);
  VerificationResult out;
  // Top-level span: one per verify() call, detail = lemma (static storage
  // from to_string), so engine-level spans nest under it in the trace.
  obs::Span verify_span("verify");
  verify_span.set_detail(to_string(lemma));
  verify_span.set_arg("n", cfg.n);

  if (!is_invariant_lemma(lemma)) {
    // Liveness engines (DESIGN.md §3.4): auto resolves to the parallel
    // OWCTY trimmer, seq forces the colored-DFS lasso search, sym runs the
    // backward EG(¬goal) fixpoint — no silent fallback anymore.
    const mc::EngineKind kind = opts.engine == mc::EngineKind::kAuto
                                    ? mc::EngineKind::kParallel
                                    : opts.engine;
    out.engine_used = kind;
    auto goal = [&](const tta::Cluster::State& s) {
      return tta::all_correct_active(cfg, cluster.unpack(s));
    };
    const bool recurrent = lemma == Lemma::kReintegration;  // AG AF vs F
    auto r = [&] {
      if (kind == mc::EngineKind::kSymbolic) {
        return recurrent
                   ? mc::check_always_eventually_symbolic(cluster, goal, opts.limits)
                   : mc::check_eventually_symbolic(cluster, goal, opts.limits);
      }
      mc::EngineOptions eopts(opts.limits);
      eopts.threads = opts.threads;
      return recurrent ? mc::check_always_eventually_with(kind, cluster, goal, eopts)
                       : mc::check_eventually_with(kind, cluster, goal, eopts);
    }();
    out.holds = r.verdict == mc::LivenessVerdict::kHolds;
    out.exhausted = r.verdict != mc::LivenessVerdict::kLimit;
    out.stats = std::move(r.stats);
    out.trace = std::move(r.trace);
    out.loop_start = r.loop_start;
    out.verdict_text = to_string(r.verdict);
    return out;
  }

  auto invariant = [&](const tta::Cluster::State& s) {
    const tta::ClusterState c = cluster.unpack(s);
    switch (lemma) {
      case Lemma::kSafety: return tta::holds_safety(cfg, c);
      case Lemma::kTimeliness:
      case Lemma::kSafety2: return tta::holds_timeliness(cfg, c);
      case Lemma::kHubAgreement: return tta::holds_hub_agreement(cfg, c);
      case Lemma::kLiveness:
      case Lemma::kReintegration: break;
    }
    TT_ASSERT(false && "unreachable");
    return true;
  };

  const mc::EngineKind kind = opts.engine == mc::EngineKind::kAuto
                                  ? mc::EngineKind::kParallel
                                  : opts.engine;
  out.engine_used = kind;
  auto r = kind == mc::EngineKind::kSymbolic
               ? mc::check_invariant_symbolic(cluster, invariant, opts.limits)
               : [&] {
                   mc::EngineOptions eopts(opts.limits);
                   eopts.threads = opts.threads;
                   return mc::check_invariant_with(kind, cluster, invariant, eopts);
                 }();
  out.holds = r.verdict == mc::Verdict::kHolds;
  out.exhausted = r.verdict != mc::Verdict::kLimit;
  out.stats = std::move(r.stats);
  out.trace = std::move(r.trace);
  out.verdict_text = to_string(r.verdict);
  return out;
}

}  // namespace tt::core
