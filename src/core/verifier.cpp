#include "core/verifier.hpp"

#include "bmc/ic3.hpp"
#include "bmc/kinduction.hpp"
#include "mc/liveness.hpp"
#include "mc/parallel_liveness.hpp"
#include "mc/parallel_reachability.hpp"
#include "mc/reachability.hpp"
#include "mc/symbolic_liveness.hpp"
#include "mc/symbolic_reachability.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "tta/properties.hpp"
#include "tta/star_ir.hpp"
#include "tta/symmetry.hpp"

namespace tt::core {

namespace {

/// The model-layer reduction a ReductionKind selects (same four names).
tta::Reduction to_tta_reduction(mc::ReductionKind k) {
  switch (k) {
    case mc::ReductionKind::kNone: return tta::Reduction::kNone;
    case mc::ReductionKind::kSymmetry: return tta::Reduction::kSymmetry;
    case mc::ReductionKind::kPartialOrder: return tta::Reduction::kPartialOrder;
    case mc::ReductionKind::kSymPor: return tta::Reduction::kSymPor;
  }
  TT_ASSERT(false && "unreachable");
  return tta::Reduction::kNone;
}

/// Copies the reduction-layer counters off the cluster into a run's stats
/// (the EngineOptions::finalize_stats hook for explicit engines; called
/// directly after symbolic runs, which take bare limits).
void annotate_reduction_stats(const tta::Cluster& cluster, mc::RunStats& stats) {
  stats.canon_ops = cluster.canon_ops();
  stats.canon_swaps = cluster.canon_swaps();
  stats.ample_sets = cluster.ample_sets();
  stats.pruned_combos = cluster.pruned_combos();
  stats.proviso_fallbacks = cluster.proviso_fallbacks();
}

/// Post-run bookkeeping for a reduced run: when a counterexample over the
/// quotient is attached, replays it into a concrete trace of the raw model
/// (tta::concretize_trace) — under a "canon" span so the work shows up in
/// traces next to the engine spans.
void finish_reduced_run(const tta::Cluster& cluster, const tta::ClusterConfig& cfg,
                        bool has_loop, bool initial_root, VerificationResult& out) {
  obs::Span span("canon");
  span.set_arg("canon_ops", static_cast<std::int64_t>(out.stats.canon_ops));
  span.set_arg("canon_swaps", static_cast<std::int64_t>(out.stats.canon_swaps));
  if (out.stats.pruned_combos > 0) {
    span.set_arg("pruned_combos", static_cast<std::int64_t>(out.stats.pruned_combos));
  }
  if (out.trace.empty()) return;
  span.set_detail("concretize");
  const tta::Cluster raw(cfg);
  tta::ConcreteTrace conc = tta::concretize_trace(raw, cluster.reduction(), out.trace,
                                                  out.loop_start, has_loop, initial_root);
  out.trace = std::move(conc.trace);
  out.loop_start = conc.loop_start;
}

/// The SAT-based proof-engine path (DESIGN.md §3.10): re-expresses the
/// configuration as the star-cluster guarded-command IR and runs k-induction
/// or IC3/PDR on the phase-gated property expression. Unlike the exploratory
/// engines these can return PROVED — an unbounded guarantee — and on a
/// violation the even (phase-0) frames of the IR counterexample decode to an
/// exact cluster trace at half the IR depth.
VerificationResult verify_with_proof_engine(const tta::ClusterConfig& cfg, Lemma lemma,
                                            const VerifyOptions& opts) {
  TT_REQUIRE(is_invariant_lemma(lemma),
             "proof engines (kind/ic3) handle invariant lemmas only");
  TT_REQUIRE(opts.reduction == mc::ReductionKind::kNone,
             "proof engines run on the raw star IR; combine them with --reduction none");
  VerificationResult out;
  out.engine_used = opts.engine;

  const tta::StarIr ir(cfg);
  kernel::ExprId property = -1;
  switch (lemma) {
    case Lemma::kSafety: property = ir.safety_expr(); break;
    case Lemma::kTimeliness:
    case Lemma::kSafety2: property = ir.timeliness_expr(); break;
    case Lemma::kHubAgreement: property = ir.hub_agreement_expr(); break;
    case Lemma::kLiveness:
    case Lemma::kReintegration: TT_ASSERT(false && "unreachable"); break;
  }

  bmc::ProofResult r;
  if (opts.engine == mc::EngineKind::kKInduction) {
    bmc::KindOptions kopt;
    if (opts.limits.max_depth != std::numeric_limits<int>::max() &&
        opts.limits.max_depth < kopt.max_k / 2) {
      kopt.max_k = 2 * opts.limits.max_depth;  // cluster depth d = IR depth 2d
    }
    r = bmc::check_invariant_kind(ir.system(), property, kopt);
  } else {
    r = bmc::check_invariant_ic3(ir.system(), property, {});
  }

  out.holds = r.verdict == bmc::ProofVerdict::kProved;
  out.exhausted = r.verdict != bmc::ProofVerdict::kUnknown;
  out.stats.seconds = r.seconds;
  out.stats.threads = 1;
  out.stats.solver_calls = static_cast<std::size_t>(r.solver_calls);
  out.stats.clauses_reused = static_cast<std::size_t>(r.clauses_reused);
  out.stats.frames = static_cast<std::size_t>(r.frames);
  out.stats.proof_obligations = static_cast<std::size_t>(r.proof_obligations);
  switch (r.verdict) {
    case bmc::ProofVerdict::kProved:
      out.stats.depth = r.depth;
      out.verdict_text = "PROVED@" + std::to_string(r.depth) +
                         (r.via_diameter ? " (reachability diameter)" : "");
      break;
    case bmc::ProofVerdict::kViolated: {
      out.stats.depth = r.depth / 2;
      out.verdict_text = to_string(r.verdict);
      const tta::Cluster raw(cfg);
      for (const std::vector<int>& frame : r.trace) {
        if (ir.is_cluster_frame(frame)) out.trace.push_back(raw.pack(ir.decode(frame)));
      }
      break;
    }
    case bmc::ProofVerdict::kUnknown:
      out.verdict_text = to_string(r.verdict);
      break;
  }
  return out;
}

}  // namespace

tta::ClusterConfig prepare_config(tta::ClusterConfig cfg, Lemma lemma) {
  switch (lemma) {
    case Lemma::kSafety:
    case Lemma::kLiveness:
    case Lemma::kHubAgreement:
    case Lemma::kReintegration:
      // No startup_time tracking: a smaller state vector, as in the paper's
      // corresponding runs.
      cfg.timeliness_bound = 0;
      break;
    case Lemma::kTimeliness:
      TT_REQUIRE(cfg.timeliness_bound > 0, "timeliness needs a positive bound");
      cfg.timeliness_target = tta::TimelinessTarget::kFirstCorrectActive;
      break;
    case Lemma::kSafety2:
      TT_REQUIRE(cfg.timeliness_bound > 0, "safety_2 needs a positive bound");
      TT_REQUIRE(cfg.faulty_hub != tta::ClusterConfig::kNone,
                 "safety_2 is the faulty-hub lemma");
      cfg.timeliness_target = tta::TimelinessTarget::kCorrectHubSynced;
      break;
  }
  return cfg;
}

VerificationResult verify(const tta::ClusterConfig& raw_cfg, Lemma lemma,
                          const VerifyOptions& opts) {
  const tta::ClusterConfig cfg = prepare_config(raw_cfg, lemma);
  const bool reduced = opts.reduction != mc::ReductionKind::kNone;
  // Top-level span: one per verify() call, detail = lemma (static storage
  // from to_string), so engine-level spans nest under it in the trace.
  obs::Span verify_span("verify");
  verify_span.set_detail(to_string(lemma));
  verify_span.set_arg("n", cfg.n);
  if (reduced) verify_span.set_arg("reduction", static_cast<int>(opts.reduction));

  if (mc::is_proof_engine(opts.engine)) {
    verify_span.set_arg("engine", static_cast<int>(opts.engine));
    return verify_with_proof_engine(cfg, lemma, opts);
  }

  const tta::Cluster cluster(cfg, to_tta_reduction(opts.reduction));
  VerificationResult out;

  if (!is_invariant_lemma(lemma)) {
    // Liveness engines (DESIGN.md §3.4): auto resolves to the parallel
    // OWCTY trimmer, seq forces the colored-DFS lasso search, sym runs the
    // backward EG(¬goal) fixpoint — no silent fallback anymore.
    const mc::EngineKind kind = opts.engine == mc::EngineKind::kAuto
                                    ? mc::EngineKind::kParallel
                                    : opts.engine;
    out.engine_used = kind;
    auto goal = [&](const tta::Cluster::State& s) {
      return tta::all_correct_active(cfg, cluster.unpack(s));
    };
    const bool recurrent = lemma == Lemma::kReintegration;  // AG AF vs F
    auto r = [&] {
      if (kind == mc::EngineKind::kSymbolic) {
        return recurrent
                   ? mc::check_always_eventually_symbolic(cluster, goal, opts.limits)
                   : mc::check_eventually_symbolic(cluster, goal, opts.limits);
      }
      mc::EngineOptions eopts(opts.limits);
      eopts.threads = opts.threads;
      eopts.store = opts.store;
      if (reduced) {
        eopts.finalize_stats = [&](mc::RunStats& st) { annotate_reduction_stats(cluster, st); };
      }
      return recurrent ? mc::check_always_eventually_with(kind, cluster, goal, eopts)
                       : mc::check_eventually_with(kind, cluster, goal, eopts);
    }();
    out.holds = r.verdict == mc::LivenessVerdict::kHolds;
    out.exhausted = r.verdict != mc::LivenessVerdict::kLimit;
    out.stats = std::move(r.stats);
    if (reduced && kind == mc::EngineKind::kSymbolic) {
      annotate_reduction_stats(cluster, out.stats);
    }
    out.trace = std::move(r.trace);
    out.loop_start = r.loop_start;
    out.verdict_text = to_string(r.verdict);
    if (reduced) {
      // The sequential AG AF engine roots its lasso anywhere in the
      // reachable set; every other liveness counterexample starts at an
      // initial state.
      const bool initial_root =
          !(kind == mc::EngineKind::kSequential && lemma == Lemma::kReintegration);
      finish_reduced_run(cluster, cfg, r.verdict == mc::LivenessVerdict::kCycle,
                         initial_root, out);
    }
    return out;
  }

  auto invariant = [&](const tta::Cluster::State& s) {
    const tta::ClusterState c = cluster.unpack(s);
    switch (lemma) {
      case Lemma::kSafety: return tta::holds_safety(cfg, c);
      case Lemma::kTimeliness:
      case Lemma::kSafety2: return tta::holds_timeliness(cfg, c);
      case Lemma::kHubAgreement: return tta::holds_hub_agreement(cfg, c);
      case Lemma::kLiveness:
      case Lemma::kReintegration: break;
    }
    TT_ASSERT(false && "unreachable");
    return true;
  };

  const mc::EngineKind kind = opts.engine == mc::EngineKind::kAuto
                                  ? mc::EngineKind::kParallel
                                  : opts.engine;
  out.engine_used = kind;
  auto r = kind == mc::EngineKind::kSymbolic
               ? mc::check_invariant_symbolic(cluster, invariant, opts.limits)
               : [&] {
                   mc::EngineOptions eopts(opts.limits);
                   eopts.threads = opts.threads;
                   eopts.store = opts.store;
                   if (reduced) {
                     eopts.finalize_stats = [&](mc::RunStats& st) {
                       annotate_reduction_stats(cluster, st);
                     };
                   }
                   return mc::check_invariant_with(kind, cluster, invariant, eopts);
                 }();
  out.holds = r.verdict == mc::Verdict::kHolds;
  out.exhausted = r.verdict != mc::Verdict::kLimit;
  out.stats = std::move(r.stats);
  if (reduced && kind == mc::EngineKind::kSymbolic) {
    annotate_reduction_stats(cluster, out.stats);
  }
  out.trace = std::move(r.trace);
  out.verdict_text = to_string(r.verdict);
  if (reduced) {
    finish_reduced_run(cluster, cfg, /*has_loop=*/false, /*initial_root=*/true, out);
  }
  return out;
}

}  // namespace tt::core
