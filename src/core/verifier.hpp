// The exhaustive-fault-simulation facade: one call = one model-checking run
// of one lemma against one cluster configuration, mirroring how the paper's
// experiments are organized (a lemma x configuration grid, Figs. 4 and 6).
//
// Engine selection: every lemma runs on the parallel engine by default —
// frontier BFS for invariants (mc/parallel_reachability.hpp), OWCTY
// goal-free-cycle trimming for the liveness lemmas
// (mc/parallel_liveness.hpp). EngineKind kSymbolic routes invariants to the
// BDD-set engine (mc/symbolic_reachability.hpp) and liveness to the
// backward EG(¬goal) fixpoint (mc/symbolic_liveness.hpp); kSequential
// forces the single-threaded BFS / colored-DFS engines. kKInduction and
// kIc3 route invariant lemmas to the SAT-based proof engines over the
// star-cluster IR (tta/star_ir.hpp, DESIGN.md §3.10) — the only engines
// that can return PROVED (verdict_text "PROVED@k") rather than merely
// exhausting a finite search. VerifyOptions overrides the engine and thread
// count; the TTSTART_THREADS environment variable sets the default thread
// count (see mc::resolve_threads).
#pragma once

#include <string>
#include <vector>

#include "mc/engine.hpp"
#include "mc/run_stats.hpp"
#include "tta/cluster.hpp"
#include "tta/config.hpp"

namespace tt::core {

enum class Lemma {
  kSafety,      ///< Lemma 1: agreement among active correct nodes (invariant)
  kLiveness,    ///< Lemma 2: all correct nodes eventually active (F-property)
  kTimeliness,  ///< Lemma 3: active within cfg.timeliness_bound slots (invariant)
  kSafety2,     ///< Lemma 4: correct guardian synced within bound (invariant)
  kHubAgreement,   ///< extension: active nodes agree with active guardians
  kReintegration,  ///< extension (§2.1 restart problem): AG AF all-correct-active
};

[[nodiscard]] constexpr const char* to_string(Lemma l) noexcept {
  switch (l) {
    case Lemma::kSafety: return "safety";
    case Lemma::kLiveness: return "liveness";
    case Lemma::kTimeliness: return "timeliness";
    case Lemma::kSafety2: return "safety_2";
    case Lemma::kHubAgreement: return "hub_agreement";
    case Lemma::kReintegration: return "reintegration";
  }
  return "?";
}

/// True for the lemmas checked by reachability (BFS engines); false for the
/// lasso-based liveness lemmas.
[[nodiscard]] constexpr bool is_invariant_lemma(Lemma l) noexcept {
  return l != Lemma::kLiveness && l != Lemma::kReintegration;
}

/// How to run a verification. Implicitly constructible from SearchLimits so
/// limit-only call sites stay terse.
struct VerifyOptions {
  VerifyOptions() = default;
  VerifyOptions(const mc::SearchLimits& l) : limits(l) {}  // NOLINT: deliberate implicit lift

  mc::SearchLimits limits;
  /// kAuto = the parallel engine for every lemma class.
  mc::EngineKind engine = mc::EngineKind::kAuto;
  int threads = 0;  ///< 0 = TTSTART_THREADS env, then hardware concurrency
  /// kSymmetry explores the orbit quotient (tta/symmetry.hpp): the cluster
  /// canonicalizes every emitted state below the engines. kPartialOrder
  /// explores the ample-set clamp quotient (tta/independence.hpp, DESIGN.md
  /// §3.8): independent pre-startup LISTEN timer ticks are saturated to the
  /// guaranteed-broadcast horizon. kSymPor composes both (clamp over the
  /// orbit quotient — the fig. 6 workhorse). In every reduced mode verify()
  /// re-concretizes any counterexample against the raw model before
  /// returning it, so traces replay edge-by-edge either way.
  mc::ReductionKind reduction = mc::ReductionKind::kNone;
  /// Explicit-state storage backend (DESIGN.md §3.7). kShardedLocked is the
  /// per-shard-mutex store; kLockFree is the CAS-based store that also
  /// compresses sealed BFS levels and, with store.mem_budget_bytes set,
  /// spills them to disk so beyond-RAM runs complete with exact counts.
  /// Ignored by the symbolic engine. Verdicts, counts and traces are
  /// bit-identical across backends.
  mc::StoreOptions store;
};

struct VerificationResult {
  bool holds = false;
  bool exhausted = true;  ///< false when a search limit stopped exploration
  mc::RunStats stats;
  std::vector<tta::Cluster::State> trace;  ///< counterexample when !holds
  std::size_t loop_start = 0;              ///< lasso entry for liveness cycles
  std::string verdict_text;
  /// Engine that actually ran (kAuto resolved per VerifyOptions::engine).
  mc::EngineKind engine_used = mc::EngineKind::kSequential;
};

/// Runs one lemma against one configuration. For kTimeliness/kSafety2 the
/// configuration must carry a positive timeliness_bound (and the matching
/// TimelinessTarget); `prepare_config` sets these up.
[[nodiscard]] VerificationResult verify(const tta::ClusterConfig& cfg, Lemma lemma,
                                        const VerifyOptions& opts = {});

/// Normalizes a configuration for a lemma: picks the timeliness target and
/// asserts bound preconditions. Returns the adjusted copy.
[[nodiscard]] tta::ClusterConfig prepare_config(tta::ClusterConfig cfg, Lemma lemma);

}  // namespace tt::core
