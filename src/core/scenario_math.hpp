// Exact evaluation of the paper's scenario-count formulas (§5.4, Fig. 5).
//
//   |S_sup|  = (δ_init)^(n+1)        startup-delay scenarios: n nodes plus
//                                    one delayed guardian, each free to wake
//                                    at any of δ_init instants
//   |S_f.n.| = ((δ_failure)^2)^wcsup  fault scenarios of one faulty node over
//                                    a worst-case startup window: per slot,
//                                    δ_failure choices on each of 2 channels
//
// δ_failure in the formula is the *number of output kinds* at the configured
// fault degree (the paper uses 6 at degree 6). wcsup is the worst-case
// startup time in slots (paper: 7n - 5).
#pragma once

#include "support/biguint.hpp"

namespace tt::core {

struct ScenarioCounts {
  int n = 0;
  int delta_init = 0;    ///< δ_init in slots
  int delta_failure = 0; ///< per-channel fault choices
  int wcsup = 0;         ///< worst-case startup time in slots
  BigUint startup_scenarios;  ///< |S_sup|
  BigUint fault_scenarios;    ///< |S_f.n.|
};

/// Paper's closed-form worst-case startup time: w_sup = 7*round - 5*slot,
/// in unit slots = 7n - 5 (Fig. 5 lists 16 / 23 / 30 for n = 3 / 4 / 5).
[[nodiscard]] constexpr int paper_wcsup_slots(int n) noexcept { return 7 * n - 5; }

/// Paper's δ_init: 8 TDMA rounds (Fig. 5 lists 24 / 32 / 40 slots).
[[nodiscard]] constexpr int paper_delta_init(int n) noexcept { return 8 * n; }

/// Evaluates both formulas exactly.
[[nodiscard]] ScenarioCounts count_scenarios(int n, int delta_init, int delta_failure,
                                             int wcsup);

/// Convenience: the paper's own parameter choices for cluster size n.
[[nodiscard]] ScenarioCounts paper_scenarios(int n);

}  // namespace tt::core
