#include "core/wcsup.hpp"

#include "support/assert.hpp"
#include "support/timer.hpp"

namespace tt::core {

WcsupResult find_worst_case_startup(tta::ClusterConfig cfg, Lemma lemma, int start_bound,
                                    int max_bound, const VerifyOptions& opts) {
  TT_REQUIRE(lemma == Lemma::kTimeliness || lemma == Lemma::kSafety2,
             "wcsup sweeps only deadline lemmas");
  TT_REQUIRE(start_bound >= 1 && start_bound <= max_bound, "bad sweep range");
  Timer timer;
  WcsupResult out;
  // The set of runs violating "startup_time <= B" shrinks monotonically in B,
  // so a linear upward sweep mirrors the paper's procedure and the first
  // passing bound is the minimum.
  for (int bound = start_bound; bound <= max_bound; ++bound) {
    cfg.timeliness_bound = bound;
    VerificationResult r = verify(cfg, lemma, opts);
    out.last_stats = r.stats;
    if (r.holds && r.exhausted) {
      out.minimal_bound = bound;
      break;
    }
    TT_REQUIRE(r.exhausted, "wcsup sweep hit a search limit; raise limits");
    out.failing_bounds.push_back(bound);
    out.worst_trace = std::move(r.trace);
  }
  out.total_seconds = timer.seconds();
  return out;
}

}  // namespace tt::core
