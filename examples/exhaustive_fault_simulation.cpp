// Exhaustive fault simulation from the command line: pick a cluster size, a
// faulty component, the fault degree, and a lemma; the tool explores every
// admitted behaviour and reports the verdict (with a counterexample trace
// when the lemma fails).
//
//   ./exhaustive_fault_simulation [options]
//     --n <3..6>            cluster size              (default 3)
//     --lemma <name>        safety|liveness|timeliness|safety_2|
//                           hub_agreement|reintegration
//     --faulty-node <id>    inject a Byzantine node
//     --faulty-hub <0|1>    inject a faulty guardian
//     --degree <1..6>       fault-degree dial         (default 6)
//     --bound <slots>       deadline for timeliness/safety_2
//     --window <slots>      wake-up window delta_init (default 4)
//     --restarts <k>        transient-restart budget (§2.1)
//     --no-feedback         disable the feedback optimization
//     --no-bigbang          disable the big-bang mechanism (§5.2)
//     --engine <kind>       auto|seq|par|sym|kind|ic3 (default auto). kind =
//                           k-induction and ic3 = IC3/PDR are the SAT-based
//                           proof engines (DESIGN.md §3.10): they run on the
//                           star-cluster IR instead of enumerating states
//                           and can PROVE an invariant lemma outright
//                           (verdict PROVED@k), not merely exhaust a finite
//                           search; invariant lemmas only, --reduction none
//     --reduction <kind>    none|sym|por|sym+por state-space reduction: sym
//                           explores the symmetry quotient (orbit
//                           representatives, DESIGN.md §3.6), por the
//                           ample-set clamp quotient (DESIGN.md §3.8),
//                           sym+por composes both; counterexamples are
//                           re-concretized against the raw model
//     --threads <k>         worker threads for the parallel engine
//                           (default: TTSTART_THREADS env, else all cores)
//     --store <kind>        locked|lockfree|lockfree-fp explicit-state store
//                           backend (default locked); lockfree is the
//                           CAS-based store with closed-set compression and
//                           write-behind spill; lockfree-fp additionally
//                           drops sealed page bodies and keeps 64-bit
//                           fingerprints, re-expanding predecessor paths on
//                           collision (exact verdicts, DESIGN.md §3.9)
//     --mem-budget-mb <mb>  in-RAM budget for the lockfree store: sealed
//                           compressed pages past the budget spill to disk
//                           asynchronously; counts and verdicts stay exact
//     --spill-dir <path>    directory for the per-shard spill files
//                           (default: TTSTART_SPILL_DIR, else TMPDIR, else
//                           /tmp); an unwritable directory is a hard error,
//                           never a silent /tmp fallback
//     --trace-out <file>    write a Chrome trace-event JSON (chrome://tracing,
//                           Perfetto) of the run
//     --progress <sec>      print a heartbeat line every <sec> seconds
//     --quiet               suppress heartbeat lines (tracing unaffected)
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "core/verifier.hpp"
#include "obs/obs.hpp"
#include "tta/trace_printer.hpp"

namespace {

int usage() {
  std::fprintf(stderr, "see header comment of exhaustive_fault_simulation.cpp\n");
  return 2;
}

bool spill_dir_writable(const std::string& dir) {
#if defined(__unix__) || defined(__APPLE__)
  struct stat st{};
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) return false;
  return ::access(dir.c_str(), W_OK | X_OK) == 0;
#else
  (void)dir;
  return true;  // defer to the spill writer's own error path
#endif
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tt;

  obs::ObsOptions obs_opts;
  if (!obs::parse_obs_args(argc, argv, obs_opts)) return usage();
  obs::ScopedObservability obs_session(obs_opts);

  tta::ClusterConfig cfg;
  cfg.n = 3;
  cfg.init_window = 4;
  cfg.hub_init_window = 4;
  core::Lemma lemma = core::Lemma::kSafety;
  core::VerifyOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int& out) {
      if (i + 1 >= argc) return false;
      out = std::atoi(argv[++i]);
      return true;
    };
    if (arg == "--n") {
      if (!next_int(cfg.n)) return usage();
    } else if (arg == "--faulty-node") {
      if (!next_int(cfg.faulty_node)) return usage();
    } else if (arg == "--faulty-hub") {
      if (!next_int(cfg.faulty_hub)) return usage();
    } else if (arg == "--degree") {
      if (!next_int(cfg.fault_degree)) return usage();
    } else if (arg == "--bound") {
      if (!next_int(cfg.timeliness_bound)) return usage();
    } else if (arg == "--window") {
      if (!next_int(cfg.init_window)) return usage();
      cfg.hub_init_window = cfg.init_window;
    } else if (arg == "--restarts") {
      if (!next_int(cfg.transient_restarts)) return usage();
    } else if (arg == "--no-feedback") {
      cfg.feedback = false;
    } else if (arg == "--no-bigbang") {
      cfg.big_bang = false;
    } else if (arg == "--threads") {
      if (!next_int(opts.threads)) return usage();
    } else if (arg == "--engine") {
      if (i + 1 >= argc) return usage();
      if (!mc::parse_engine(argv[++i], opts.engine)) return usage();
    } else if (arg == "--reduction") {
      if (i + 1 >= argc) return usage();
      if (!mc::parse_reduction(argv[++i], opts.reduction)) return usage();
    } else if (arg == "--store") {
      if (i + 1 >= argc) return usage();
      if (!mc::parse_store(argv[++i], opts.store.kind)) return usage();
    } else if (arg == "--mem-budget-mb") {
      int mb = 0;
      if (!next_int(mb) || mb < 0) return usage();
      opts.store.mem_budget_bytes = static_cast<std::size_t>(mb) * 1024 * 1024;
    } else if (arg == "--spill-dir") {
      if (i + 1 >= argc) return usage();
      opts.store.spill_dir = argv[++i];
      // Fail fast, before hours of exploration: the spill writer would also
      // hard-error, but only once the budget forces the first spill.
      if (!spill_dir_writable(opts.store.spill_dir)) {
        std::fprintf(stderr, "error: spill directory '%s' is not a writable directory\n",
                     opts.store.spill_dir.c_str());
        return 2;
      }
    } else if (arg == "--lemma") {
      if (i + 1 >= argc) return usage();
      const std::string name = argv[++i];
      if (name == "safety") {
        lemma = core::Lemma::kSafety;
      } else if (name == "liveness") {
        lemma = core::Lemma::kLiveness;
      } else if (name == "timeliness") {
        lemma = core::Lemma::kTimeliness;
      } else if (name == "safety_2") {
        lemma = core::Lemma::kSafety2;
      } else if (name == "hub_agreement") {
        lemma = core::Lemma::kHubAgreement;
      } else if (name == "reintegration") {
        lemma = core::Lemma::kReintegration;
      } else {
        return usage();
      }
    } else {
      return usage();
    }
  }

  std::printf("configuration: %s\n", cfg.summary().c_str());
  std::printf("lemma: %s\n", core::to_string(lemma));

  core::VerificationResult result;
  try {
    result = core::verify(cfg, lemma, opts);
  } catch (const std::invalid_argument& e) {
    // Unsupported flag combination (e.g. a proof engine asked for a liveness
    // lemma or a reduced run) — a usage error, not a crash.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("verdict: %s  (states=%zu transitions=%zu depth=%d time=%.2fs mem=%.1fMB)\n",
              result.verdict_text.c_str(), result.stats.states, result.stats.transitions,
              result.stats.depth, result.stats.seconds,
              static_cast<double>(result.stats.memory_bytes) / 1e6);
  std::printf("engine: %s  threads=%d  states/sec=%.0f%s\n",
              mc::to_string(result.engine_used), result.stats.threads,
              result.stats.states_per_sec(),
              result.stats.exhausted ? "" : "  [search truncated by limits]");
  if (mc::is_proof_engine(result.engine_used)) {
    // Machine-greppable proof line; the CI proof-smoke step asserts on the
    // solver_calls / clauses_reused columns (one incremental solver per run,
    // learned clauses carried across depth probes).
    std::printf("proof: solver_calls=%zu clauses_reused=%zu frames=%zu "
                "proof_obligations=%zu\n",
                result.stats.solver_calls, result.stats.clauses_reused,
                result.stats.frames, result.stats.proof_obligations);
  }
  if (result.engine_used == mc::EngineKind::kSymbolic) {
    std::printf("bdd: peak_live=%zu gc_runs=%zu unique_hit=%.1f%% op_cache_hit=%.1f%%",
                result.stats.bdd_peak_live_nodes, result.stats.bdd_gc_collections,
                100.0 * result.stats.bdd_unique_hit_rate,
                100.0 * result.stats.bdd_op_cache_hit_rate);
    if (result.stats.bdd_iterations > 0) {
      std::printf(" eg_iterations=%d", result.stats.bdd_iterations);
    }
    std::printf("\n");
  }
  if (opts.store.kind != mc::StoreKind::kShardedLocked &&
      result.engine_used != mc::EngineKind::kSymbolic) {
    // Machine-greppable store line; the CI store-smoke step asserts on the
    // spill_bytes / spill_async_pages columns to prove an out-of-core run
    // actually went through the write-behind pipeline.
    std::printf("store: %s  cas_retries=%zu pages_compressed=%zu spill_bytes=%zu "
                "bloom_negatives=%zu spill_async_pages=%zu spill_sync_waits=%zu "
                "fp_collisions=%zu reexpansions=%zu\n",
                mc::to_string(opts.store.kind), result.stats.cas_retries,
                result.stats.pages_compressed, result.stats.spill_bytes,
                result.stats.bloom_negatives, result.stats.spill_async_pages,
                result.stats.spill_sync_waits, result.stats.fp_collisions,
                result.stats.reexpansions);
  }
  if (result.engine_used == mc::EngineKind::kParallel && !core::is_invariant_lemma(lemma)) {
    std::printf("owcty: trim_rounds=%zu residue_states=%zu\n", result.stats.trim_rounds,
                result.stats.residue_states);
  }
  if (opts.reduction != mc::ReductionKind::kNone) {
    std::printf("reduction: %s  canon_ops=%zu canon_swaps=%zu (quotient states above)\n",
                mc::to_string(opts.reduction), result.stats.canon_ops,
                result.stats.canon_swaps);
    if (opts.reduction != mc::ReductionKind::kSymmetry) {
      std::printf("por: ample_sets=%zu pruned_combos=%zu proviso_fallbacks=%zu\n",
                  result.stats.ample_sets, result.stats.pruned_combos,
                  result.stats.proviso_fallbacks);
    }
  }

  if (!result.holds && !result.trace.empty()) {
    const tta::Cluster cluster(core::prepare_config(cfg, lemma));
    std::printf("\ncounterexample (%zu steps):\n%s", result.trace.size() - 1,
                tta::describe_trace(cluster, result.trace).c_str());
    if (result.loop_start > 0) {
      std::printf("(loops back to t=%zu)\n", result.loop_start);
    }
  }
  return result.holds ? 0 : 1;
}
