// Extension scenario (paper §2.1): the *restart* problem. A transient fault
// resets one node after the cluster reached synchronous operation; the node
// must reintegrate through the running TDMA traffic. We verify the AG AF
// reintegration lemma exhaustively and print one simulated recovery.
//
//   ./restart_recovery [n]
#include <cstdio>
#include <cstdlib>

#include "core/verifier.hpp"
#include "mc/simulate.hpp"
#include "support/rng.hpp"
#include "tta/properties.hpp"
#include "tta/trace_printer.hpp"

int main(int argc, char** argv) {
  using namespace tt;

  tta::ClusterConfig cfg;
  cfg.n = argc > 1 ? std::atoi(argv[1]) : 3;
  cfg.init_window = 2;
  cfg.hub_init_window = 2;
  cfg.transient_restarts = 1;

  std::printf("verifying reintegration (AG AF all-correct-active) for %s\n",
              cfg.summary().c_str());
  auto r = core::verify(cfg, core::Lemma::kReintegration);
  std::printf("verdict: %s (%zu states, %.2fs)\n\n", r.verdict_text.c_str(), r.stats.states,
              r.stats.seconds);

  // Show one recovery: simulate until synchronous, then keep walking until
  // the (random) transient restart fires and the node reintegrates.
  const tta::Cluster cluster(core::prepare_config(cfg, core::Lemma::kReintegration));
  for (std::uint64_t seed = 1; seed < 200; ++seed) {
    Rng rng(seed);
    auto run = mc::simulate(cluster, 120, rng);
    bool was_synced = false;
    bool restarted = false;
    std::size_t resync = 0;
    for (std::size_t t = 0; t < run.trace.size(); ++t) {
      const auto c = cluster.unpack(run.trace[t]);
      const bool synced = tta::all_correct_active(cfg, c);
      if (synced && !restarted) was_synced = true;
      if (was_synced && c.restarts_used > 0 && !restarted) restarted = true;
      if (restarted && synced) {
        resync = t;
        break;
      }
    }
    if (restarted && resync > 0) {
      std::printf("seed %llu: restart after sync, reintegrated by t=%zu\n",
                  static_cast<unsigned long long>(seed), resync);
      const std::size_t from = resync > 14 ? resync - 14 : 0;
      std::printf("%s",
                  tta::describe_trace(cluster, std::span(run.trace).subspan(
                                                   from, resync - from + 1))
                      .c_str());
      break;
    }
  }
  return r.holds ? 0 : 1;
}
