// Reproduces the paper's §5.3 procedure for estimating the worst-case
// startup time w_sup: model-check the timeliness lemma for increasing
// deadlines until counterexamples disappear; the first passing deadline is
// the worst case, and the last counterexample *is* a worst-case scenario.
//
//   ./worst_case_startup [n] [degree]
#include <cstdio>
#include <cstdlib>

#include "core/scenario_math.hpp"
#include "core/wcsup.hpp"
#include "tta/trace_printer.hpp"

int main(int argc, char** argv) {
  using namespace tt;

  tta::ClusterConfig cfg;
  cfg.n = argc > 1 ? std::atoi(argv[1]) : 3;
  cfg.fault_degree = argc > 2 ? std::atoi(argv[2]) : 3;
  cfg.faulty_node = 0;  // the paper's worst case "occurs when there is a faulty node"
  cfg.init_window = 3;
  cfg.hub_init_window = 3;

  std::printf("sweeping the timeliness deadline for %s\n", cfg.summary().c_str());
  auto r = core::find_worst_case_startup(cfg, core::Lemma::kTimeliness, 1, 20 * cfg.n);
  if (r.minimal_bound < 0) {
    std::printf("no passing bound found in range\n");
    return 1;
  }
  std::printf("measured w_sup = %d slots (paper formula 7*round - 5*slot = %d slots;\n"
              "offsets differ with the wake-up window, the growth in n is the point)\n",
              r.minimal_bound, core::paper_wcsup_slots(cfg.n));
  std::printf("sweep took %.2fs over %zu failing bounds\n\n", r.total_seconds,
              r.failing_bounds.size());

  if (!r.worst_trace.empty()) {
    cfg.timeliness_bound = r.minimal_bound - 1;  // layout of the failing run
    const tta::Cluster cluster(
        core::prepare_config(cfg, core::Lemma::kTimeliness));
    std::printf("a worst-case startup scenario (deadline %d just missed):\n%s",
                r.minimal_bound - 1,
                tta::describe_trace(cluster, r.worst_trace).c_str());
  }
  return 0;
}
