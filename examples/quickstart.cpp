// Quickstart: build a 4-node TTA cluster, watch one random startup run, and
// then verify the safety lemma exhaustively.
//
//   ./quickstart [seed]
//
// This is the "hello world" of the library: ~30 lines from configuration to
// a verified lemma.
#include <cstdio>
#include <cstdlib>

#include "core/verifier.hpp"
#include "mc/simulate.hpp"
#include "support/rng.hpp"
#include "tta/properties.hpp"
#include "tta/trace_printer.hpp"

int main(int argc, char** argv) {
  using namespace tt;

  // 1. Configure a cluster: 4 nodes, no faults, modest wake-up windows.
  tta::ClusterConfig cfg;
  cfg.n = 4;
  cfg.init_window = 4;
  cfg.hub_init_window = 4;
  const tta::Cluster cluster(cfg);

  // 2. Simulate one startup: a seeded random scheduler resolves all
  //    nondeterminism; we print the timeline until synchronous operation.
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2026;
  Rng rng(seed);
  auto run = mc::simulate_until(
      cluster,
      [&](const tta::Cluster::State& s) {
        return tta::all_correct_active(cfg, cluster.unpack(s));
      },
      400, rng);
  std::printf("--- one random startup run (seed %llu) ---\n",
              static_cast<unsigned long long>(seed));
  std::printf("%s", tta::describe_trace(cluster, run.trace).c_str());
  std::printf("synchronous operation after %zu slots\n\n", run.trace.size() - 1);

  // 3. Verify Lemma 1 (safety) over *every* behaviour of this configuration.
  const auto result = core::verify(cfg, core::Lemma::kSafety);
  std::printf("--- exhaustive verification ---\n");
  std::printf("lemma safety: %s (%zu states, %zu transitions, %.2fs)\n",
              result.verdict_text.c_str(), result.stats.states, result.stats.transitions,
              result.stats.seconds);
  return result.holds ? 0 : 1;
}
