// Reproduces the paper's §5.2 design-exploration result: the big-bang
// mechanism is *necessary*. Under a faulty guardian, nodes can synchronize
// on one half of a cold-start collision that the guardian relayed
// selectively and leave the correct guardian behind — the classical clique.
// Without the big-bang this happens strictly earlier (the very first
// collision suffices); the mechanism eliminates that immediate clique, and
// what remains is the deeper class the paper excludes by its power-on
// assumption (§5.2, last paragraph).
//
// Like the paper, we find the violations with bounded (shortest-
// counterexample) search and print the clique trace.
//
//   ./bigbang_counterexample [n]
#include <cstdio>
#include <cstdlib>

#include "core/verifier.hpp"
#include "tta/trace_printer.hpp"

int main(int argc, char** argv) {
  using namespace tt;

  tta::ClusterConfig cfg;
  cfg.n = argc > 1 ? std::atoi(argv[1]) : 3;
  cfg.faulty_hub = 0;  // guardian of channel 0 is the adversary
  cfg.init_window = 3;
  cfg.hub_init_window = 1;  // guardians power up before the nodes (§5.2)

  std::printf("lemma: agreement among correct ACTIVE nodes, one faulty guardian\n\n");

  cfg.big_bang = false;
  auto without_bb = core::verify(cfg, core::Lemma::kSafety);
  const int depth_off =
      without_bb.holds ? -1 : static_cast<int>(without_bb.trace.size()) - 1;

  cfg.big_bang = true;
  auto with_bb = core::verify(cfg, core::Lemma::kSafety);
  const int depth_on = with_bb.holds ? -1 : static_cast<int>(with_bb.trace.size()) - 1;

  std::printf("big-bang OFF: earliest clique at depth %d (%zu states, %.2fs)\n", depth_off,
              without_bb.stats.states, without_bb.stats.seconds);
  std::printf("big-bang ON : earliest clique at depth %d (%zu states, %.2fs)\n\n", depth_on,
              with_bb.stats.states, with_bb.stats.seconds);

  if (!without_bb.trace.empty()) {
    cfg.big_bang = false;
    const tta::Cluster cluster(core::prepare_config(cfg, core::Lemma::kSafety));
    std::printf("clique counterexample without the big-bang (%d steps):\n%s", depth_off,
                tta::describe_trace(cluster, without_bb.trace).c_str());
    std::printf(
        "\nreading guide: nodes synchronize on one half of a cs collision that\n"
        "the faulty guardian relayed selectively; the correct guardian saw the\n"
        "collision, went to SILENCE, and is left behind — the §5.2 clique.\n");
  }
  // Success of the experiment = the mechanism matters: the clique without
  // the big-bang appears strictly earlier than any residual one with it.
  const bool reproduced = depth_off >= 0 && (depth_on < 0 || depth_on > depth_off);
  std::printf("\nbig-bang pushes the earliest clique deeper: %s\n",
              reproduced ? "yes (necessity reproduced)" : "NO");
  return reproduced ? 0 : 1;
}
