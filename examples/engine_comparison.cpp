// Drives all three checker substrates (explicit BFS / BDD symbolic /
// SAT-based BMC) on the same mini-SAL model — the TTA-lite bus-startup
// algorithm of [12] — and cross-checks their answers, like the paper's §3
// preliminary study did with SAL's engines.
//
//   ./engine_comparison [n] [fault_degree]
#include <cstdio>
#include <cstdlib>

#include "bdd/symbolic.hpp"
#include "bmc/encoder.hpp"
#include "kernel/packed_system.hpp"
#include "kernel/ttalite.hpp"
#include "mc/reachability.hpp"

int main(int argc, char** argv) {
  using namespace tt;

  kernel::TtaLiteConfig cfg;
  cfg.n = argc > 1 ? std::atoi(argv[1]) : 4;
  cfg.fault_degree = argc > 2 ? std::atoi(argv[2]) : 2;
  cfg.faulty_node = 0;
  cfg.init_window = 4;
  kernel::TtaLite model(cfg);
  std::printf("TTA-lite (bus topology, node-only startup of [12]): n=%d degree=%d\n",
              cfg.n, cfg.fault_degree);
  std::printf("state bits: %d\n\n", model.system().state_bits());

  // 1. Explicit-state: full reachability count plus the safety verdict (the
  //    verdict run stops at the first violation, so the count is separate).
  const kernel::PackedSystem ps(model.system());
  auto exp_count = mc::count_reachable(ps);
  auto exp = mc::check_invariant(ps, [&](const kernel::PackedSystem::State& s) {
    return model.safety(ps.unpack(s));
  });
  std::printf("explicit BFS : %-9s %8zu states  %.3fs\n", mc::to_string(exp.verdict),
              exp_count.states, exp_count.seconds + exp.stats.seconds);

  // 2. Symbolic (BDD) reachability + safety.
  bdd::SymbolicEngine engine(model.system());
  auto sym = engine.check_invariant(model.safety_expr());
  std::printf("symbolic BDD : %-9s %8.0f states  %.3fs  (%d bdd vars, %zu nodes)\n",
              sym.holds ? "holds" : "VIOLATED", sym.reachable_states, sym.seconds,
              sym.bdd_vars, sym.peak_nodes);

  // 3. SAT-based bounded model checking.
  auto bmc = bmc::check_invariant_bounded(model.system(), model.safety_expr(), 40);
  if (bmc.violation_found) {
    std::printf("SAT BMC      : VIOLATED at depth %d  %.3fs (%llu conflicts)\n", bmc.depth,
                bmc.seconds, static_cast<unsigned long long>(bmc.total_conflicts));
  } else {
    std::printf("SAT BMC      : no counterexample within 40 frames  %.3fs\n", bmc.seconds);
  }

  // Cross-checks.
  const bool counts_agree =
      static_cast<double>(exp_count.states) == sym.reachable_states;
  const bool verdicts_agree = (exp.verdict == mc::Verdict::kHolds) == sym.holds;
  const bool bmc_agrees = bmc.violation_found == (exp.verdict == mc::Verdict::kViolated);
  std::printf("\ncross-check: counts %s, verdicts %s, bmc %s\n",
              counts_agree ? "AGREE" : "DISAGREE", verdicts_agree ? "AGREE" : "DISAGREE",
              bmc_agrees ? "AGREE" : "DISAGREE");
  return (counts_agree && verdicts_agree && bmc_agrees) ? 0 : 1;
}
