// EXP-F6: reproduces paper Figure 6 — "Performance Results for Model
// Checking the Lemmas" — exhaustive fault simulation (fault degree 6) of
// Lemmas 1-3 with a faulty node, and of Lemma safety_2 with a faulty hub,
// for cluster sizes 3, 4 and 5 (feedback on).
//
// Paper columns: eval / cpu time / #BDD variables. Our explicit-state
// analogue of the BDD-variable column is the packed state width in bits;
// we additionally report reachable states and transitions. Shape to
// reproduce: every lemma evaluates to true, cost grows steeply with n,
// liveness is the most expensive lemma.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/scenario_math.hpp"
#include "core/verifier.hpp"
#include "obs/obs.hpp"
#include "support/bench_report.hpp"
#include "support/one_core_probe.hpp"
#include "support/table.hpp"
#include "tta/cluster.hpp"

namespace {

// TTSTART_BENCH_QUICK=1 trims the sweep to the sizes CI can afford (the
// bench-smoke job): n <= 4 and no n = 5 hub run, keeping every experiment
// slug exercised so the JSON schema check still covers the full shape.
bool quick_mode() {
  const char* env = std::getenv("TTSTART_BENCH_QUICK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

tt::tta::ClusterConfig fig6_node_config(int n) {
  tt::tta::ClusterConfig cfg;
  cfg.n = n;
  cfg.faulty_node = 0;
  cfg.fault_degree = 6;
  cfg.feedback = true;
  // Scaled wake-up window (paper: 8 rounds; see DESIGN.md §6). One round
  // keeps the n = 5 exhaustive runs within bench time.
  cfg.init_window = n;
  cfg.hub_init_window = n;
  return cfg;
}

tt::tta::ClusterConfig fig6_hub_config(int n) {
  auto cfg = fig6_node_config(n);
  cfg.faulty_node = tt::tta::ClusterConfig::kNone;
  cfg.faulty_hub = 0;
  cfg.hub_init_window = 1;  // guardians power up first (§5.2 / §5.4)
  cfg.timeliness_bound = 8 * n;
  return cfg;
}

void BM_Fig6Lemma(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int lemma_id = static_cast<int>(state.range(1));
  tt::tta::ClusterConfig cfg;
  tt::core::Lemma lemma;
  switch (lemma_id) {
    case 0:
      cfg = fig6_node_config(n);
      lemma = tt::core::Lemma::kSafety;
      break;
    case 1:
      cfg = fig6_node_config(n);
      lemma = tt::core::Lemma::kLiveness;
      break;
    case 2:
      cfg = fig6_node_config(n);
      cfg.timeliness_bound = 8 * n;
      lemma = tt::core::Lemma::kTimeliness;
      break;
    default:
      cfg = fig6_hub_config(n);
      lemma = tt::core::Lemma::kSafety2;
      break;
  }
  for (auto _ : state) {
    auto r = tt::core::verify(cfg, lemma);
    if (!r.holds) state.SkipWithError("lemma unexpectedly violated");
    state.counters["states"] = static_cast<double>(r.stats.states);
  }
}
BENCHMARK(BM_Fig6Lemma)
    ->ArgsProduct({{3, 4}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.01);

struct PaperRow {
  double cpu;
  int bdd_vars;
};

const char* lemma_slug(tt::core::Lemma lemma) {
  switch (lemma) {
    case tt::core::Lemma::kSafety: return "safety";
    case tt::core::Lemma::kLiveness: return "liveness";
    case tt::core::Lemma::kTimeliness: return "timeliness";
    default: return "safety2";
  }
}

tt::BenchRecord record_of(const std::string& experiment,
                          const tt::core::VerificationResult& r,
                          tt::core::Lemma lemma) {
  tt::BenchRecord rec;
  rec.experiment = experiment;
  rec.engine = tt::mc::to_string(r.engine_used);
  rec.threads = r.stats.threads;
  rec.states = r.stats.states;
  rec.transitions = r.stats.transitions;
  rec.seconds = r.stats.seconds;
  rec.exhausted = r.stats.exhausted;
  rec.verdict = r.holds ? "holds" : "VIOLATED";
  if (r.engine_used == tt::mc::EngineKind::kSymbolic) {
    rec.iterations = r.stats.bdd_iterations;
    rec.peak_live_nodes = static_cast<long long>(r.stats.bdd_peak_live_nodes);
  }
  // OWCTY columns (schema v3): only the parallel liveness engine runs the
  // trimming fixpoint, so only those records carry the fields.
  if (r.engine_used == tt::mc::EngineKind::kParallel &&
      !tt::core::is_invariant_lemma(lemma)) {
    rec.trim_rounds = static_cast<long long>(r.stats.trim_rounds);
    rec.residue_states = static_cast<long long>(r.stats.residue_states);
  }
  return rec;
}

// Reduction columns (schema v4, por columns v6) for a quotient run, paired
// with its unreduced baseline when one ran (`raw_states` > 0). The ratio is
// on *stored states* — the honest headline number; the far larger
// transition/time reduction is visible from the paired rows themselves.
void mark_reduced(tt::BenchRecord& rec, const tt::core::VerificationResult& r,
                  tt::mc::ReductionKind kind, std::size_t raw_states) {
  rec.reduction = tt::mc::to_string(kind);
  rec.canon_ops = static_cast<long long>(r.stats.canon_ops);
  rec.orbit_states = static_cast<long long>(r.stats.states);
  if (raw_states > 0 && r.stats.states > 0) {
    rec.reduction_ratio =
        static_cast<double>(raw_states) / static_cast<double>(r.stats.states);
  }
  if (kind == tt::mc::ReductionKind::kPartialOrder ||
      kind == tt::mc::ReductionKind::kSymPor) {
    rec.ample_sets = static_cast<long long>(r.stats.ample_sets);
    rec.pruned_combos = static_cast<long long>(r.stats.pruned_combos);
    rec.proviso_fallbacks = static_cast<long long>(r.stats.proviso_fallbacks);
  }
}

// PR-4 caveat, machine-readable (schema v4): a `threads = hw` row measured
// on a runner that may effectively have one CPU cannot show a parallel
// speedup, so its seconds column must not be read as one. The decision is
// the shared runtime probe (affinity mask + cgroup quota, not just
// hardware_concurrency) so every bench binary flags the same way.
int possibly_one_core_flag() { return tt::probe_possibly_one_core(); }

// The engine-comparison experiment: the exhaustive degree-6 safety run
// (feedback on) with the sequential BFS engine, the symbolic BDD-set
// engine, and the parallel frontier engine at 1, 2, 4 and
// hardware-concurrency threads (deduplicated — on a 4-core machine the hw
// point coincides with 4). Verdict and state count must be identical; the
// JSON records carry states/sec for the perf trajectory, with `threads`
// taken from the engine's resolved count, and the symbolic row adds the
// v2 iterations/peak_live_nodes columns.
void engine_comparison(tt::BenchReport& report, int n) {
  std::printf("\n=== engine comparison: safety, n = %d, degree 6, feedback on ===\n", n);
  tt::TextTable t({"engine", "threads", "eval", "states", "transitions", "seconds",
                   "states/sec"});
  auto cfg = fig6_node_config(n);
  const std::string slug = tt::strfmt("fig6/engine_compare/safety_n%d", n);

  tt::core::VerifyOptions seq_opts;
  seq_opts.engine = tt::mc::EngineKind::kSequential;
  const auto seq = tt::core::verify(cfg, tt::core::Lemma::kSafety, seq_opts);
  report.add(record_of(slug, seq, tt::core::Lemma::kSafety));
  t.add_row({"seq", "1", seq.holds ? "true" : "FALSE", std::to_string(seq.stats.states),
             std::to_string(seq.stats.transitions), tt::strfmt("%.2f", seq.stats.seconds),
             tt::strfmt("%.0f", seq.stats.states_per_sec())});

  tt::core::VerifyOptions sym_opts;
  sym_opts.engine = tt::mc::EngineKind::kSymbolic;
  const auto sym = tt::core::verify(cfg, tt::core::Lemma::kSafety, sym_opts);
  report.add(record_of(slug, sym, tt::core::Lemma::kSafety));
  t.add_row({"sym", "1", sym.holds ? "true" : "FALSE", std::to_string(sym.stats.states),
             std::to_string(sym.stats.transitions), tt::strfmt("%.2f", sym.stats.seconds),
             tt::strfmt("%.0f", sym.stats.states_per_sec())});
  if (sym.holds != seq.holds || sym.stats.states != seq.stats.states) {
    std::printf("!! symbolic/sequential engine disagreement\n");
  }

  std::vector<int> thread_counts = {1, 2, 4};
  const int hw = tt::mc::resolve_threads(0);
  if (std::find(thread_counts.begin(), thread_counts.end(), hw) == thread_counts.end()) {
    thread_counts.push_back(hw);
  }
  for (int threads : thread_counts) {
    tt::core::VerifyOptions par_opts;
    par_opts.engine = tt::mc::EngineKind::kParallel;
    par_opts.threads = threads;
    const auto par = tt::core::verify(cfg, tt::core::Lemma::kSafety, par_opts);
    auto rec = record_of(slug, par, tt::core::Lemma::kSafety);
    if (threads == hw) rec.possibly_one_core = possibly_one_core_flag();
    report.add(std::move(rec));
    const bool agrees = par.holds == seq.holds && par.stats.states == seq.stats.states;
    t.add_row({"par", std::to_string(par.stats.threads), par.holds ? "true" : "FALSE",
               std::to_string(par.stats.states), std::to_string(par.stats.transitions),
               tt::strfmt("%.2f", par.stats.seconds),
               tt::strfmt("%.0f", par.stats.states_per_sec())});
    if (!agrees) std::printf("!! engine disagreement at %d threads\n", threads);
  }
  std::printf("%s", t.render().c_str());
  std::printf("(identical verdict and state count required at every thread count;\n"
              " speedup scales with available cores.)\n");
}

// The liveness engine-comparison experiment: the exhaustive degree-6
// liveness run (goal-free cycle detection) with the sequential nested-DFS
// lasso search, the symbolic EG(!goal) fixpoint, and the parallel OWCTY
// engine at 1, 2, 4 and hardware-concurrency threads. All engines must
// agree on the verdict; seq and par additionally agree exactly on the
// goal-free state/transition counts, and the par rows carry the v3
// trim_rounds/residue_states columns (residue 0 on these HOLDS cells —
// every goal-free state trims away). The symbolic row is restricted to
// n <= 4: its partitioned transition relation scales with goal-free
// *edges*, and the n = 5 cell has ~8M of them.
void engine_comparison_liveness(tt::BenchReport& report, int n) {
  std::printf("\n=== engine comparison: liveness, n = %d, degree 6, feedback on ===\n", n);
  tt::TextTable t({"engine", "threads", "eval", "states", "transitions", "seconds",
                   "states/sec", "trim rounds", "residue"});
  auto cfg = fig6_node_config(n);
  const std::string slug = tt::strfmt("fig6/engine_compare/liveness_n%d", n);
  const auto lemma = tt::core::Lemma::kLiveness;

  tt::core::VerifyOptions seq_opts;
  seq_opts.engine = tt::mc::EngineKind::kSequential;
  const auto seq = tt::core::verify(cfg, lemma, seq_opts);
  report.add(record_of(slug, seq, lemma));
  t.add_row({"seq", "1", seq.holds ? "true" : "FALSE", std::to_string(seq.stats.states),
             std::to_string(seq.stats.transitions), tt::strfmt("%.2f", seq.stats.seconds),
             tt::strfmt("%.0f", seq.stats.states_per_sec()), "-", "-"});

  if (n <= 4) {
    tt::core::VerifyOptions sym_opts;
    sym_opts.engine = tt::mc::EngineKind::kSymbolic;
    const auto sym = tt::core::verify(cfg, lemma, sym_opts);
    report.add(record_of(slug, sym, lemma));
    t.add_row({"sym", "1", sym.holds ? "true" : "FALSE", std::to_string(sym.stats.states),
               std::to_string(sym.stats.transitions), tt::strfmt("%.2f", sym.stats.seconds),
               tt::strfmt("%.0f", sym.stats.states_per_sec()), "-", "-"});
    if (sym.holds != seq.holds) std::printf("!! symbolic/sequential engine disagreement\n");
  }

  std::vector<int> thread_counts = {1, 2, 4};
  const int hw = tt::mc::resolve_threads(0);
  if (std::find(thread_counts.begin(), thread_counts.end(), hw) == thread_counts.end()) {
    thread_counts.push_back(hw);
  }
  for (int threads : thread_counts) {
    tt::core::VerifyOptions par_opts;
    par_opts.engine = tt::mc::EngineKind::kParallel;
    par_opts.threads = threads;
    const auto par = tt::core::verify(cfg, lemma, par_opts);
    auto rec = record_of(slug, par, lemma);
    if (threads == hw) rec.possibly_one_core = possibly_one_core_flag();
    report.add(std::move(rec));
    const bool agrees = par.holds == seq.holds && par.stats.states == seq.stats.states &&
                        par.stats.transitions == seq.stats.transitions;
    t.add_row({"par", std::to_string(par.stats.threads), par.holds ? "true" : "FALSE",
               std::to_string(par.stats.states), std::to_string(par.stats.transitions),
               tt::strfmt("%.2f", par.stats.seconds),
               tt::strfmt("%.0f", par.stats.states_per_sec()),
               std::to_string(par.stats.trim_rounds),
               std::to_string(par.stats.residue_states)});
    if (!agrees) std::printf("!! engine disagreement at %d threads\n", threads);
  }
  std::printf("%s", t.render().c_str());
  std::printf("(identical verdict required on every engine; seq and par agree exactly\n"
              " on goal-free state/transition counts; speedup scales with cores.)\n");
}

// EXP-OBS: the observability layer's overhead budgets (DESIGN.md §3.5).
//
// The <2% disabled-tracing budget itself was established by an interleaved
// A/B measurement — the pre-observability commit rebuilt on this machine
// and alternated with the instrumented binary, 45 reps per side; the
// minima (EXPERIMENTS.md "observability overhead") put the instrumented
// binary *faster* than the baseline, i.e. the overhead is indistinguishable
// from zero. The stored `baseline_pre_pr` rows are the minima of that
// protocol. A single bench session cannot resolve 2% on a shared container
// (observed min-of-3 spread on the n = 5 cell is >20%), so the gates here
// are regression tripwires with noise-aware bounds, not the budget itself:
//
// Full mode: min-of-9 untraced run of fig6/safety/n5 vs the stored
// baseline, tripwire at +25% (outside the measured noise envelope — a real
// per-transition instrumentation point would cost far more than that).
//
// Quick mode (CI): no stored anchor is meaningful on an arbitrary runner,
// so the comparison is relative and in-process — untraced vs. traced runs
// of the n = 4 cell in this binary, tripwire at +50%. Enabled tracing is
// allowed headroom (it really does record events); the bound still catches
// a span accidentally moved into the per-transition path. CI therefore
// does NOT verify the <2% disabled-tracing budget — the warning below says
// so on every quick run.
bool tracing_overhead(tt::BenchReport& report) {
  const int n = quick_mode() ? 4 : 5;
  std::printf("\n=== tracing-disabled overhead: safety, n = %d, degree 6 ===\n", n);
  const auto cfg = fig6_node_config(n);
  tt::core::VerifyOptions opts;
  opts.engine = tt::mc::EngineKind::kSequential;
  auto min_of = [&](int reps, tt::core::VerificationResult& out) {
    double best = -1.0;
    for (int rep = 0; rep < reps; ++rep) {
      out = tt::core::verify(cfg, tt::core::Lemma::kSafety, opts);
      if (best < 0 || out.stats.seconds < best) best = out.stats.seconds;
    }
    return best;
  };
  tt::core::VerificationResult r;
  const int reps = quick_mode() ? 3 : 9;
  const double best = min_of(reps, r);
  auto rec = record_of(tt::strfmt("fig6/tracing_overhead/n%d", n), r,
                       tt::core::Lemma::kSafety);
  rec.seconds = best;
  report.add(rec);
  std::printf("seq, tracing compiled in but disabled: %.3fs (min of %d)\n", best, reps);

  if (quick_mode()) {
    std::printf("!! quick mode: the <2%% disabled-tracing budget is NOT verified here\n"
                "   (it needs the same-machine interleaved A/B protocol; see\n"
                "   EXPERIMENTS.md). Running the relative traced-vs-untraced\n"
                "   tripwire instead:\n");
    tt::core::VerificationResult traced;
    tt::obs::Tracer tracer;
    tracer.install();
    const double traced_best = min_of(reps, traced);
    tracer.uninstall();
    std::printf("seq, tracer installed: %.3fs (min of %d), %zu event(s) recorded\n",
                traced_best, reps, tracer.event_count());
    if (traced.holds != r.holds || traced.stats.states != r.stats.states) {
      std::printf("!! tracing changed the verdict or state count\n");
      return false;
    }
    const double ratio = traced_best / best;
    std::printf("enabled-tracing overhead: %+.1f%% (tripwire at +50%%)\n",
                (ratio - 1.0) * 100.0);
    if (ratio > 1.5) {
      std::printf("!! enabled-tracing overhead exceeds the tripwire — an\n"
                  "   instrumentation point likely moved into a hot loop\n");
      return false;
    }
    return true;
  }

  const double baseline =
      tt::read_report_seconds("baseline_pre_pr", "fig6/safety/n5", "seq");
  if (baseline <= 0) {
    std::printf("!! no baseline_pre_pr fig6/safety/n5 seq row in the report file —\n"
                "   the disabled-tracing tripwire was NOT checked by this run\n");
    return true;
  }
  const double ratio = best / baseline;
  std::printf("baseline_pre_pr: %.3fs  ->  delta %+.1f%% (tripwire at +25%%;\n"
              " the <2%% budget itself comes from the interleaved A/B protocol,\n"
              " see EXPERIMENTS.md — single-session deltas include machine noise)\n",
              baseline, (ratio - 1.0) * 100.0);
  if (ratio > 1.25) {
    std::printf("!! untraced runtime regressed past the noise envelope vs the\n"
                "   pre-observability baseline\n");
    return false;
  }
  return true;
}

void print_table(tt::BenchReport& report) {
  // Paper Fig. 6 (a)-(d): cpu seconds and BDD variables for n = 3, 4, 5.
  const PaperRow paper_safety[3] = {{62.45, 248}, {259.53, 316}, {920.74, 422}};
  const PaperRow paper_liveness[3] = {{228.03, 250}, {1242.73, 318}, {41264.08, 424}};
  const PaperRow paper_timeliness[3] = {{47.81, 268}, {907.61, 336}, {4480.90, 442}};
  const PaperRow paper_safety2[3] = {{56.65, 272}, {82.95, 348}, {4289.77, 462}};

  std::printf("\n=== Figure 6: exhaustive fault simulation (degree 6, feedback on) ===\n");
  tt::TextTable t({"lemma", "n", "eval", "measured s", "states", "transitions", "state bits",
                   "orbit states", "sym s", "s+p states", "s+p s", "trans ratio", "paper s",
                   "paper BDD vars"});
  struct Entry {
    tt::core::Lemma lemma;
    const PaperRow* paper;
    bool hub;
  };
  const Entry entries[] = {
      {tt::core::Lemma::kSafety, paper_safety, false},
      {tt::core::Lemma::kLiveness, paper_liveness, false},
      {tt::core::Lemma::kTimeliness, paper_timeliness, false},
      {tt::core::Lemma::kSafety2, paper_safety2, true},
  };
  const int max_n = quick_mode() ? 4 : 5;
  for (const Entry& e : entries) {
    for (int n = 3; n <= max_n; ++n) {
      auto cfg = e.hub ? fig6_hub_config(n) : fig6_node_config(n);
      if (e.lemma == tt::core::Lemma::kTimeliness) cfg.timeliness_bound = 8 * n;
      const std::string slug = tt::strfmt("fig6/%s/n%d", lemma_slug(e.lemma), n);
      auto r = tt::core::verify(cfg, e.lemma);
      auto raw_rec = record_of(slug, r, e.lemma);
      raw_rec.reduction = "none";
      report.add(std::move(raw_rec));
      // The paired symmetry-quotient run of the same cell: same lemma, same
      // default engine, the reduced state graph underneath. Verdicts must
      // agree (the quotient is verdict-preserving; tested in
      // tests/core/reduction_equivalence_test.cpp).
      tt::core::VerifyOptions red_opts;
      red_opts.reduction = tt::mc::ReductionKind::kSymmetry;
      auto q = tt::core::verify(cfg, e.lemma, red_opts);
      auto red_rec = record_of(slug, q, e.lemma);
      mark_reduced(red_rec, q, tt::mc::ReductionKind::kSymmetry, r.stats.states);
      report.add(std::move(red_rec));
      if (q.holds != r.holds) std::printf("!! reduced/unreduced verdict disagreement\n");
      // And the sym+por run: the ample-set clamp over the orbit quotient
      // (DESIGN.md §3.8), the mode the frontier cells below depend on.
      tt::core::VerifyOptions sp_opts;
      sp_opts.reduction = tt::mc::ReductionKind::kSymPor;
      auto sp = tt::core::verify(cfg, e.lemma, sp_opts);
      auto sp_rec = record_of(slug, sp, e.lemma);
      mark_reduced(sp_rec, sp, tt::mc::ReductionKind::kSymPor, r.stats.states);
      report.add(std::move(sp_rec));
      if (sp.holds != r.holds) std::printf("!! sym+por/unreduced verdict disagreement\n");
      // One clamp-only row (--reduction por) on the cheapest cell, so the
      // JSON separates what the clamp buys alone from what the composition
      // buys, and CI's --require-reduction sym,por,sym+por stays honest.
      if (e.lemma == tt::core::Lemma::kSafety && n == 3) {
        tt::core::VerifyOptions por_opts;
        por_opts.reduction = tt::mc::ReductionKind::kPartialOrder;
        auto p = tt::core::verify(cfg, e.lemma, por_opts);
        auto por_rec = record_of(slug, p, e.lemma);
        mark_reduced(por_rec, p, tt::mc::ReductionKind::kPartialOrder, r.stats.states);
        report.add(std::move(por_rec));
        if (p.holds != r.holds) std::printf("!! por/unreduced verdict disagreement\n");
      }
      const tt::tta::Cluster cluster(tt::core::prepare_config(cfg, e.lemma));
      const double trans_ratio =
          q.stats.transitions > 0
              ? static_cast<double>(r.stats.transitions) /
                    static_cast<double>(q.stats.transitions)
              : 0.0;
      t.add_row({tt::core::to_string(e.lemma), std::to_string(n),
                 r.holds ? "true" : "FALSE", tt::strfmt("%.2f", r.stats.seconds),
                 std::to_string(r.stats.states), std::to_string(r.stats.transitions),
                 std::to_string(cluster.state_bits()),
                 std::to_string(q.stats.states), tt::strfmt("%.2f", q.stats.seconds),
                 std::to_string(sp.stats.states), tt::strfmt("%.2f", sp.stats.seconds),
                 tt::strfmt("%.1fx", trans_ratio),
                 tt::strfmt("%.2f", e.paper[n - 3].cpu),
                 std::to_string(e.paper[n - 3].bdd_vars)});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf("(shape: every lemma true; cost grows steeply with n; liveness most\n"
              " expensive — matching the paper. Absolute times differ: explicit-state\n"
              " engine, scaled wake-up window, 2026 hardware. The orbit-states/sym\n"
              " columns are the --reduction sym quotient of the same cell: identical\n"
              " verdict, ~1.5x fewer stored states, >=10x fewer transitions at n = 5;\n"
              " see DESIGN.md §3.6 for why the state ratio is the smaller number. The\n"
              " s+p columns add the ample-set clamp on top — DESIGN.md §3.8; on the\n"
              " faulty-hub safety_2 cells the clamp certificate is inadmissible, so\n"
              " s+p degrades to sym there by design.)\n\n");
}

// The n = 6 frontier cell: out of reach for the unreduced engine in earlier
// PRs' budgets, first completed by the symmetry quotient (2.9 s vs 34.5 s
// unreduced, 15.7x fewer transitions). The ample-set clamp shrinks the
// quotient a further ~7x in stored states (DESIGN.md §3.8). Full mode runs
// all three directions so the JSON carries the honest triple; quick mode
// (CI) skips the cell entirely.
void fig6_n6(tt::BenchReport& report) {
  std::printf("\n=== Figure 6 frontier: safety, n = 6, degree 6, feedback on ===\n");
  auto cfg = fig6_node_config(6);
  const std::string slug = "fig6/safety/n6";

  tt::core::VerifyOptions sp_opts;
  sp_opts.reduction = tt::mc::ReductionKind::kSymPor;
  const auto sp = tt::core::verify(cfg, tt::core::Lemma::kSafety, sp_opts);
  std::printf("sym+por:      eval=%s states=%zu transitions=%zu seconds=%.2f\n",
              sp.holds ? "true" : "FALSE", sp.stats.states, sp.stats.transitions,
              sp.stats.seconds);

  tt::core::VerifyOptions red_opts;
  red_opts.reduction = tt::mc::ReductionKind::kSymmetry;
  const auto q = tt::core::verify(cfg, tt::core::Lemma::kSafety, red_opts);
  std::printf("sym quotient: eval=%s states=%zu transitions=%zu seconds=%.2f\n",
              q.holds ? "true" : "FALSE", q.stats.states, q.stats.transitions,
              q.stats.seconds);

  const auto r = tt::core::verify(cfg, tt::core::Lemma::kSafety);
  std::printf("unreduced:    eval=%s states=%zu transitions=%zu seconds=%.2f\n",
              r.holds ? "true" : "FALSE", r.stats.states, r.stats.transitions,
              r.stats.seconds);
  if (q.holds != r.holds || sp.holds != r.holds) {
    std::printf("!! reduced/unreduced verdict disagreement\n");
  }
  if (q.stats.states > 0 && sp.stats.states > 0) {
    std::printf("clamp over sym: %.2fx fewer stored states\n",
                static_cast<double>(q.stats.states) / static_cast<double>(sp.stats.states));
  }

  auto raw_rec = record_of(slug, r, tt::core::Lemma::kSafety);
  raw_rec.reduction = "none";
  report.add(std::move(raw_rec));
  auto red_rec = record_of(slug, q, tt::core::Lemma::kSafety);
  mark_reduced(red_rec, q, tt::mc::ReductionKind::kSymmetry, r.stats.states);
  report.add(std::move(red_rec));
  auto sp_rec = record_of(slug, sp, tt::core::Lemma::kSafety);
  mark_reduced(sp_rec, sp, tt::mc::ReductionKind::kSymPor, r.stats.states);
  report.add(std::move(sp_rec));
}

// The n = 7 frontier cell: first completed here, by the composed sym+por
// reduction only — no unreduced or sym-only baseline fits a bench session at
// this size (the sym-only n = 6 quotient already stores 7x the states the
// clamped one does, and each +1 in n is ~15x in transitions), so the record
// intentionally carries no reduction_ratio. The n = 6 liveness cell rides
// along: the first lasso-engine completion beyond n = 5.
void fig6_frontier_sympor(tt::BenchReport& report) {
  std::printf("\n=== Figure 6 frontier (sym+por only) ===\n");
  {
    auto cfg = fig6_node_config(7);
    tt::core::VerifyOptions opts;
    opts.reduction = tt::mc::ReductionKind::kSymPor;
    const auto r = tt::core::verify(cfg, tt::core::Lemma::kSafety, opts);
    std::printf("safety n=7:   eval=%s states=%zu transitions=%zu seconds=%.2f\n",
                r.holds ? "true" : "FALSE", r.stats.states, r.stats.transitions,
                r.stats.seconds);
    auto rec = record_of("fig6/safety/n7", r, tt::core::Lemma::kSafety);
    mark_reduced(rec, r, tt::mc::ReductionKind::kSymPor, /*raw_states=*/0);
    report.add(std::move(rec));
  }
  {
    auto cfg = fig6_node_config(6);
    tt::core::VerifyOptions opts;
    opts.reduction = tt::mc::ReductionKind::kSymPor;
    const auto r = tt::core::verify(cfg, tt::core::Lemma::kLiveness, opts);
    std::printf("liveness n=6: eval=%s states=%zu transitions=%zu seconds=%.2f\n",
                r.holds ? "true" : "FALSE", r.stats.states, r.stats.transitions,
                r.stats.seconds);
    auto rec = record_of("fig6/liveness/n6", r, tt::core::Lemma::kLiveness);
    mark_reduced(rec, r, tt::mc::ReductionKind::kSymPor, /*raw_states=*/0);
    report.add(std::move(rec));
  }
  {
    auto cfg = fig6_node_config(6);
    cfg.timeliness_bound = 8 * 6;
    tt::core::VerifyOptions opts;
    opts.reduction = tt::mc::ReductionKind::kSymPor;
    const auto r = tt::core::verify(cfg, tt::core::Lemma::kTimeliness, opts);
    std::printf("timeliness n=6: eval=%s states=%zu transitions=%zu seconds=%.2f\n",
                r.holds ? "true" : "FALSE", r.stats.states, r.stats.transitions,
                r.stats.seconds);
    auto rec = record_of("fig6/timeliness/n6", r, tt::core::Lemma::kTimeliness);
    mark_reduced(rec, r, tt::mc::ReductionKind::kSymPor, /*raw_states=*/0);
    report.add(std::move(rec));
  }
  // The fourth lemma, safety_2, is the faulty-*hub* scenario: the clamp's
  // admissibility gate is closed from slot 0 there (sym+por == sym by
  // design, see print_table), and the sym-only n = 6 hub cell extrapolates
  // past 10 M stored states — outside a bench session. Not silently capped:
  // stated here.
  std::printf("(safety_2 n=6 not attempted: sym+por degrades to sym on "
              "faulty-hub cells\n and the sym-only cell is out of bench "
              "budget; see EXPERIMENTS.md.)\n");
}

}  // namespace

int main(int argc, char** argv) {
  // Obs flags come out of argv before GoogleBenchmark sees the rest.
  tt::obs::ObsOptions obs_opts;
  if (!tt::obs::parse_obs_args(argc, argv, obs_opts)) return 2;
  tt::obs::ScopedObservability obs_session(obs_opts);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  tt::BenchReport report("bench_fig6_exhaustive");
  print_table(report);
  engine_comparison(report, 4);
  engine_comparison_liveness(report, 4);
  if (!quick_mode()) {
    engine_comparison(report, 5);
    engine_comparison_liveness(report, 5);
    fig6_n6(report);
    fig6_frontier_sympor(report);
  }
  // The overhead gate must measure an untraced run: it only applies when no
  // tracer is installed for this process.
  bool overhead_ok = true;
  if (obs_opts.trace_out.empty()) overhead_ok = tracing_overhead(report);
  const std::string path = report.write();
  if (!path.empty()) std::printf("machine-readable results: %s\n", path.c_str());
  return overhead_ok ? 0 : 1;
}
