// EXP-F4: reproduces paper Figure 4 — "Effect of Increasing Fault Degree on
// Model-Checking Performance" — verification time of the safety, liveness
// and timeliness lemmas on a 4-node cluster with one faulty node at fault
// degrees 1, 3 and 5 (feedback on).
//
// Paper (SAL symbolic, 2.8 GHz Xeon):        degree 1 / 3 / 5
//   safety      44.11 / 166.34 /  251.12 s
//   liveness   196.05 / 892.15 / 1324.54 s
//   timeliness  77.14 / 615.03 /  921.92 s
// The absolute numbers are not comparable (different machine, different
// exploration technology, scaled wake-up window); the reproduced *shape* is:
// verification time grows with the fault degree for every lemma, and
// liveness is the most expensive property.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/verifier.hpp"
#include "obs/obs.hpp"
#include "support/bench_report.hpp"
#include "support/table.hpp"

namespace {

tt::tta::ClusterConfig fig4_config(int degree) {
  tt::tta::ClusterConfig cfg;
  cfg.n = 4;
  cfg.faulty_node = 0;
  cfg.fault_degree = degree;
  cfg.feedback = true;
  cfg.init_window = 8;  // scaled from the paper's 8 rounds (see DESIGN.md §6)
  cfg.hub_init_window = 8;
  return cfg;
}

tt::core::Lemma lemma_of(int id) {
  switch (id) {
    case 0: return tt::core::Lemma::kSafety;
    case 1: return tt::core::Lemma::kLiveness;
    default: return tt::core::Lemma::kTimeliness;
  }
}

void BM_Fig4(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  const auto lemma = lemma_of(static_cast<int>(state.range(1)));
  auto cfg = fig4_config(degree);
  if (lemma == tt::core::Lemma::kTimeliness) cfg.timeliness_bound = 6 * cfg.n;
  for (auto _ : state) {
    auto r = tt::core::verify(cfg, lemma);
    if (!r.holds) state.SkipWithError("lemma unexpectedly violated");
    state.counters["states"] = static_cast<double>(r.stats.states);
  }
}
BENCHMARK(BM_Fig4)
    ->ArgsProduct({{1, 3, 5}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.01);

tt::BenchRecord record_of(const std::string& experiment,
                          const tt::core::VerificationResult& r,
                          tt::core::Lemma lemma) {
  tt::BenchRecord rec;
  rec.experiment = experiment;
  rec.engine = tt::mc::to_string(r.engine_used);
  rec.threads = r.stats.threads;
  rec.states = r.stats.states;
  rec.transitions = r.stats.transitions;
  rec.seconds = r.stats.seconds;
  rec.exhausted = r.stats.exhausted;
  rec.verdict = r.holds ? "holds" : "VIOLATED";
  if (r.engine_used == tt::mc::EngineKind::kParallel &&
      !tt::core::is_invariant_lemma(lemma)) {
    rec.trim_rounds = static_cast<long long>(r.stats.trim_rounds);
    rec.residue_states = static_cast<long long>(r.stats.residue_states);
  }
  return rec;
}

void print_table(tt::BenchReport& report) {
  const double paper[3][3] = {{44.11, 196.05, 77.14},
                              {166.34, 892.15, 615.03},
                              {251.12, 1324.54, 921.92}};
  const int degrees[3] = {1, 3, 5};
  const char* slugs[3] = {"safety", "liveness", "timeliness"};

  std::printf("\n=== Figure 4: fault-degree dial, n = 4, faulty node (feedback on) ===\n");
  tt::TextTable t({"degree", "lemma", "eval", "measured s", "states", "orbit states",
                   "sym s", "s+p states", "s+p s", "paper s (SAL 2004)"});
  for (int d = 0; d < 3; ++d) {
    for (int l = 0; l < 3; ++l) {
      const auto lemma = lemma_of(l);
      auto cfg = fig4_config(degrees[d]);
      if (lemma == tt::core::Lemma::kTimeliness) cfg.timeliness_bound = 6 * cfg.n;
      const std::string slug = tt::strfmt("fig4/%s/deg%d", slugs[l], degrees[d]);
      auto r = tt::core::verify(cfg, lemma);
      auto rec = record_of(slug, r, lemma);
      rec.reduction = "none";
      report.add(rec);
      // Same cell over the symmetry quotient (--reduction sym): identical
      // verdict on the reduced state graph; the orbit-states/sym-s columns
      // show what the reduction buys at each fault degree.
      tt::core::VerifyOptions red_opts;
      red_opts.reduction = tt::mc::ReductionKind::kSymmetry;
      auto q = tt::core::verify(cfg, lemma, red_opts);
      auto red_rec = record_of(slug, q, lemma);
      red_rec.reduction = "sym";
      red_rec.canon_ops = static_cast<long long>(q.stats.canon_ops);
      red_rec.orbit_states = static_cast<long long>(q.stats.states);
      if (q.stats.states > 0) {
        red_rec.reduction_ratio = static_cast<double>(r.stats.states) /
                                  static_cast<double>(q.stats.states);
      }
      report.add(red_rec);
      if (q.holds != r.holds) std::printf("!! reduced/unreduced verdict disagreement\n");
      // And with the ample-set clamp on top (--reduction sym+por, DESIGN.md
      // §3.8): the s+p columns show the por component's extra shrink at
      // each fault degree.
      tt::core::VerifyOptions sp_opts;
      sp_opts.reduction = tt::mc::ReductionKind::kSymPor;
      auto sp = tt::core::verify(cfg, lemma, sp_opts);
      auto sp_rec = record_of(slug, sp, lemma);
      sp_rec.reduction = "sym+por";
      sp_rec.canon_ops = static_cast<long long>(sp.stats.canon_ops);
      sp_rec.orbit_states = static_cast<long long>(sp.stats.states);
      sp_rec.ample_sets = static_cast<long long>(sp.stats.ample_sets);
      sp_rec.pruned_combos = static_cast<long long>(sp.stats.pruned_combos);
      sp_rec.proviso_fallbacks = static_cast<long long>(sp.stats.proviso_fallbacks);
      if (sp.stats.states > 0) {
        sp_rec.reduction_ratio = static_cast<double>(r.stats.states) /
                                 static_cast<double>(sp.stats.states);
      }
      report.add(sp_rec);
      if (sp.holds != r.holds) std::printf("!! sym+por/unreduced verdict disagreement\n");
      t.add_row({std::to_string(degrees[d]), tt::core::to_string(lemma),
                 r.holds ? "true" : "FALSE", tt::strfmt("%.2f", r.stats.seconds),
                 std::to_string(r.stats.states), std::to_string(q.stats.states),
                 tt::strfmt("%.2f", q.stats.seconds), std::to_string(sp.stats.states),
                 tt::strfmt("%.2f", sp.stats.seconds), tt::strfmt("%.2f", paper[d][l])});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf("(shape to check: time grows with degree for every lemma; liveness is the\n"
              " most expensive lemma at every degree — as in the paper. The quotient\n"
              " columns shrink fastest at high degree, where the faulty node's output\n"
              " alphabet dominates; see DESIGN.md §3.6)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  // Obs flags come out of argv before GoogleBenchmark sees the rest.
  tt::obs::ObsOptions obs_opts;
  if (!tt::obs::parse_obs_args(argc, argv, obs_opts)) return 2;
  tt::obs::ScopedObservability obs_session(obs_opts);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  tt::BenchReport report("bench_fig4_fault_degree_dial");
  print_table(report);
  const std::string path = report.write();
  if (!path.empty()) std::printf("machine-readable results: %s\n", path.c_str());
  return 0;
}
