// EXP-S52: reproduces the paper's §5.2 design exploration — the necessity of
// the big-bang mechanism — by the paper's own method: bounded model checking
// for the earliest clique scenario under a faulty guardian.
//
// Property: Lemma-1 agreement (no two correct ACTIVE nodes with different
// slot positions) with one faulty hub. Without the big-bang, nodes can
// synchronize directly on one half of a cold-start collision that the
// faulty guardian relayed selectively — the classical clique — at a shallow
// depth. With the big-bang armed, the immediate collision-half clique is
// eliminated and the earliest residual clique (the class the paper excludes
// by its power-on assumption, §5.2 last paragraph) sits strictly deeper.
//
// We report the earliest violation depth found by bounded search (paper:
// the SAL bounded model checker found the 5-node violation at depth 13 in
// 93 s vs 127 s for the symbolic checker), plus the time to find it with
// bounded vs unbounded search.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/verifier.hpp"
#include "support/table.hpp"

namespace {

tt::tta::ClusterConfig clique_config(int n, bool big_bang) {
  tt::tta::ClusterConfig cfg;
  cfg.n = n;
  cfg.faulty_hub = 0;
  cfg.big_bang = big_bang;
  cfg.init_window = 3;
  cfg.hub_init_window = 1;  // guardians before nodes
  return cfg;
}

/// Depth of the shortest agreement violation (BFS gives minimal traces).
int earliest_clique_depth(int n, bool big_bang, double* seconds = nullptr) {
  auto r = tt::core::verify(clique_config(n, big_bang), tt::core::Lemma::kSafety);
  if (seconds != nullptr) *seconds = r.stats.seconds;
  if (r.holds) return -1;
  return static_cast<int>(r.trace.size()) - 1;
}

void BM_EarliestClique(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool big_bang = state.range(1) != 0;
  for (auto _ : state) {
    const int depth = earliest_clique_depth(n, big_bang);
    state.counters["depth"] = depth;
    benchmark::DoNotOptimize(depth);
  }
}
BENCHMARK(BM_EarliestClique)
    ->ArgsProduct({{3, 4}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.01);

void BM_BoundedVsFull(benchmark::State& state) {
  // The paper's §5.2 tooling comparison: a depth-bounded search that stops
  // at the known violation depth vs the full (unbounded) search.
  const int n = static_cast<int>(state.range(0));
  const bool bounded = state.range(1) != 0;
  const auto cfg = clique_config(n, /*big_bang=*/false);
  tt::mc::SearchLimits limits;
  if (bounded) limits.max_depth = earliest_clique_depth(n, false) + 1;
  for (auto _ : state) {
    auto r = tt::core::verify(cfg, tt::core::Lemma::kSafety, limits);
    if (r.holds) state.SkipWithError("expected a clique counterexample");
    benchmark::DoNotOptimize(r.trace.size());
  }
}
BENCHMARK(BM_BoundedVsFull)
    ->ArgsProduct({{3, 4}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.01);

void print_table() {
  std::printf("\n=== §5.2: big-bang necessity (faulty guardian, guardians-first) ===\n");
  tt::TextTable t({"n", "big-bang", "earliest clique depth", "search s"});
  for (int n = 3; n <= 5; ++n) {
    for (bool bb : {false, true}) {
      double secs = 0;
      const int depth = earliest_clique_depth(n, bb, &secs);
      t.add_row({std::to_string(n), bb ? "on" : "off",
                 depth < 0 ? "none" : std::to_string(depth), tt::strfmt("%.2f", secs)});
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "(shape: without the big-bang the clique appears strictly earlier — nodes\n"
      " synchronize directly on a selectively-relayed collision half. The paper\n"
      " found its 5-node violation at depth 13 with the SAT-based bounded model\n"
      " checker. The residual deep cliques with big-bang ON are the class the\n"
      " paper excludes by the guardians-first power-on assumption, §5.2.)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
