// EXP-S53: reproduces the paper's §5.3 worst-case startup time study: sweep
// the timeliness deadline upward until counterexamples disappear; the first
// passing deadline is w_sup. Paper formula: w_sup = 7*round - 5*slot, i.e.
// 16 / 23 / 30 slots for n = 3 / 4 / 5 (with a faulty node, degree 6,
// delta_init = 8 rounds).
//
// Our discrete step semantics and scaled wake-up window shift the constant
// offset by a slot or two; the reproduced shape is the linear growth in n
// with slope ~7 slots per node and the fact that the worst case needs the
// faulty node.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/scenario_math.hpp"
#include "core/wcsup.hpp"
#include "support/bench_report.hpp"
#include "support/table.hpp"

namespace {

tt::tta::ClusterConfig wcsup_config(int n, int degree, bool faulty) {
  tt::tta::ClusterConfig cfg;
  cfg.n = n;
  cfg.faulty_node = faulty ? 0 : tt::tta::ClusterConfig::kNone;
  cfg.fault_degree = degree;
  cfg.init_window = 3;
  cfg.hub_init_window = 3;
  return cfg;
}

int measure_wcsup(int n, int degree, bool faulty, double* seconds = nullptr) {
  auto r = tt::core::find_worst_case_startup(wcsup_config(n, degree, faulty),
                                             tt::core::Lemma::kTimeliness, 1, 25 * n);
  if (seconds != nullptr) *seconds = r.total_seconds;
  return r.minimal_bound;
}

void BM_WcsupSweep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int degree = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const int bound = measure_wcsup(n, degree, true);
    state.counters["wcsup"] = bound;
    benchmark::DoNotOptimize(bound);
  }
}
BENCHMARK(BM_WcsupSweep)
    ->ArgsProduct({{3, 4}, {3, 6}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.01);

void print_table(tt::BenchReport& report) {
  std::printf("\n=== §5.3: worst-case startup time w_sup (slots) ===\n");
  tt::TextTable t({"n", "faulty node", "degree", "measured w_sup", "paper 7n-5", "sweep s"});
  for (int n = 3; n <= 5; ++n) {
    for (bool faulty : {false, true}) {
      const int degree = 6;
      if (!faulty && n == 5) continue;  // keep total bench time modest
      double secs = 0;
      const int bound = measure_wcsup(n, degree, faulty, &secs);
      t.add_row({std::to_string(n), faulty ? "yes" : "no", std::to_string(degree),
                 std::to_string(bound), std::to_string(tt::core::paper_wcsup_slots(n)),
                 tt::strfmt("%.2f", secs)});
      tt::BenchRecord rec;
      rec.experiment = tt::strfmt("wcsup/n%d/%s", n, faulty ? "faulty" : "fault_free");
      rec.engine = "sweep";
      rec.seconds = secs;
      rec.verdict = tt::strfmt("w_sup=%d", bound);
      report.add(rec);
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf("(paper: the worst case occurs with a faulty node; w_sup grows ~7 slots\n"
              " per additional node. Our absolute values sit within +-2 slots of the\n"
              " paper's closed form at the scaled wake-up window.)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  tt::BenchReport report("bench_wcsup_search");
  print_table(report);
  const std::string path = report.write();
  if (!path.empty()) std::printf("machine-readable results: %s\n", path.c_str());
  return 0;
}
