// EXP-HOT: microbenchmarks for the successor hot path (DESIGN.md §3.2) —
// the two costs every exhaustive fault-simulation run is made of:
//
//   * raw successor-enumeration throughput: Cluster::successors over the
//     full reachable set of the fig6 safety model (packed emission, no
//     interning) — the generation side of the pipeline;
//   * intern-only throughput: pushing a pre-materialized candidate stream
//     (the real BFS candidate mix: ~99% duplicates at fault degree 6)
//     through StateIndexMap and ShardedStateIndexMap, with and without the
//     hash-once + recently-seen-cache front end — the consumption side.
//
// Together they bound what any engine schedule can achieve and make hash /
// cache regressions visible in isolation, without BFS noise on top.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "mc/explore.hpp"
#include "support/bench_report.hpp"
#include "support/hash.hpp"
#include "support/lockfree_state_index_map.hpp"
#include "support/one_core_probe.hpp"
#include "support/recent_cache.hpp"
#include "support/sharded_state_index_map.hpp"
#include "support/state_index_map.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "tta/cluster.hpp"

namespace {

constexpr std::size_t kW = tt::tta::Cluster::kWords;
using State = tt::tta::Cluster::State;

bool quick_mode() {
  const char* env = std::getenv("TTSTART_BENCH_QUICK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

tt::tta::ClusterConfig hotpath_config(int n) {
  tt::tta::ClusterConfig cfg;
  cfg.n = n;
  cfg.faulty_node = 0;
  cfg.fault_degree = 6;
  cfg.feedback = true;
  cfg.init_window = n;
  cfg.hub_init_window = n;
  return cfg;
}

/// The reachable set of the fig6 safety model, BFS order.
std::vector<State> reachable_states(const tt::tta::Cluster& cluster) {
  tt::mc::detail::BfsCore<kW> bfs(/*track_parents=*/false);
  auto visit = [&](const State& s) {
    bfs.visit(s, tt::mc::detail::BfsCore<kW>::kNoParent, tt::hash_words(s));
  };
  cluster.initial_states(visit);
  for (std::size_t head = 0; head < bfs.queue.size(); ++head) {
    cluster.successors(bfs.seen.at(bfs.queue[head]), visit);
  }
  std::vector<State> all;
  all.reserve(bfs.seen.size());
  for (std::uint32_t i = 0; i < bfs.seen.size(); ++i) all.push_back(bfs.seen.at(i));
  return all;
}

/// The full BFS candidate stream (every enumerated transition's target, in
/// frontier order) — the realistic duplicate-heavy mix the interning maps
/// see in production, materialized once so the intern benchmarks measure
/// map cost only.
std::vector<State> candidate_stream(const tt::tta::Cluster& cluster,
                                    const std::vector<State>& all, std::size_t cap) {
  std::vector<State> stream;
  stream.reserve(cap);
  for (const State& s : all) {
    if (stream.size() >= cap) break;
    cluster.successors(s, [&](const State& t) {
      if (stream.size() < cap) stream.push_back(t);
    });
  }
  return stream;
}

void BM_SuccessorEnumeration(benchmark::State& state) {
  const tt::tta::Cluster cluster(hotpath_config(static_cast<int>(state.range(0))));
  const auto all = reachable_states(cluster);
  std::size_t transitions = 0;
  for (auto _ : state) {
    std::size_t n = 0;
    std::uint64_t acc = 0;
    for (const State& s : all) {
      cluster.successors(s, [&](const State& t) {
        ++n;
        acc += t[0];
      });
    }
    benchmark::DoNotOptimize(acc);
    transitions = n;
  }
  state.counters["transitions"] =
      benchmark::Counter(static_cast<double>(transitions) * state.iterations(),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SuccessorEnumeration)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_InternFlat(benchmark::State& state) {
  const tt::tta::Cluster cluster(hotpath_config(4));
  const auto stream = candidate_stream(cluster, reachable_states(cluster), 500000);
  const bool cached = state.range(0) != 0;
  for (auto _ : state) {
    tt::StateIndexMap<kW> map;
    tt::RecentSeenCache cache;
    std::uint64_t acc = 0;
    for (const State& s : stream) {
      const std::uint64_t h = tt::hash_words(s);
      if (cached) {
        const std::uint32_t hint = cache.lookup(h);
        if (hint != tt::RecentSeenCache::kMiss && map.at(hint) == s) {
          acc += hint;
          continue;
        }
      }
      auto [idx, fresh] = map.insert(s, h);
      if (cached) cache.remember(h, idx);
      acc += idx;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.counters["candidates"] =
      benchmark::Counter(static_cast<double>(stream.size()) * state.iterations(),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InternFlat)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_InternSharded(benchmark::State& state) {
  const tt::tta::Cluster cluster(hotpath_config(4));
  const auto stream = candidate_stream(cluster, reachable_states(cluster), 500000);
  const bool locked = state.range(0) != 0;
  for (auto _ : state) {
    tt::ShardedStateIndexMap<kW> map;
    std::uint64_t acc = 0;
    for (const State& s : stream) {
      const std::uint64_t h = tt::hash_words(s);
      auto [idx, fresh] = locked ? map.insert(s, h) : map.insert_serial(s, h);
      acc += idx;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.counters["candidates"] =
      benchmark::Counter(static_cast<double>(stream.size()) * state.iterations(),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InternSharded)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_InternLockFree(benchmark::State& state) {
  const tt::tta::Cluster cluster(hotpath_config(4));
  const auto stream = candidate_stream(cluster, reachable_states(cluster), 500000);
  const bool concurrent = state.range(0) != 0;
  for (auto _ : state) {
    tt::LockFreeStateIndexMap<kW> map;
    // The concurrent insert path never grows the probe table (growth happens
    // only at quiescent points); a pure-insert loop has none, so pre-size.
    if (concurrent) map.reserve(stream.size());
    std::uint64_t acc = 0;
    for (const State& s : stream) {
      const std::uint64_t h = tt::hash_words(s);
      auto [idx, fresh] = concurrent ? map.insert(s, h) : map.insert_serial(s, h);
      acc += idx;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.counters["candidates"] =
      benchmark::Counter(static_cast<double>(stream.size()) * state.iterations(),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InternLockFree)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// EXP-HOT contended stage: k threads hammer one shared store with the fig6
/// candidate stream split into contiguous disjoint slices — the duplicates
/// recur across slices, so threads collide on the same probe sequences
/// exactly where production drain phases do. Pure insert throughput, no
/// barriers, no maintenance: the worst case for mutex acquisition
/// (sharded_locked) vs CAS claims (lockfree).
void contended_stage(tt::BenchReport& report, const std::vector<State>& stream) {
  std::printf("=== contended insert: sharded_locked vs lockfree ===\n");
  tt::TextTable t({"store", "threads", "items", "seconds", "items/sec", "cas_retries"});
  const unsigned hw = std::thread::hardware_concurrency();
  // One probed source for the one-core caveat (ROADMAP item 2): on a runner
  // that may effectively have a single CPU, multi-thread contended rows are
  // serialized spin measurements, not contention measurements — skip them
  // instead of emitting numbers that read as (anti-)speedups.
  const bool one_core = tt::probe_possibly_one_core() != 0;
  std::vector<unsigned> counts{1, 2, 4, std::max(1u, hw)};
  if (one_core) counts = {1};
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());

  // Hash once up front: this stage measures store cost, not hashing.
  std::vector<std::uint64_t> hashes(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) hashes[i] = tt::hash_words(stream[i]);

  auto run = [&](unsigned k, auto& map) {
    const std::size_t slice = (stream.size() + k - 1) / k;
    tt::Timer timer;
    auto work = [&](std::size_t begin, std::size_t end) {
      std::uint64_t acc = 0;
      for (std::size_t i = begin; i < end; ++i) acc += map.insert(stream[i], hashes[i]).first;
      benchmark::DoNotOptimize(acc);
    };
    std::vector<std::thread> pool;
    pool.reserve(k - 1);
    for (unsigned w = 1; w < k; ++w) {
      const std::size_t b = w * slice;
      pool.emplace_back(work, b, std::min(b + slice, stream.size()));
    }
    work(0, std::min(slice, stream.size()));
    for (auto& th : pool) th.join();
    return timer.seconds();
  };

  for (const unsigned k : counts) {
    for (const bool lockfree : {false, true}) {
      long long retries = -1;
      double seconds = 0.0;
      // Both stores run the production shard count and an identical pre-size
      // (concurrent lockfree inserts never grow; see BM_InternLockFree).
      if (lockfree) {
        tt::LockFreeStateIndexMap<kW> map(16);
        map.reserve(stream.size());
        seconds = run(k, map);
        retries = static_cast<long long>(map.store_stats().cas_retries);
      } else {
        tt::ShardedStateIndexMap<kW> map(16);
        map.reserve(stream.size());
        seconds = run(k, map);
      }
      tt::BenchRecord rec;
      rec.experiment = tt::strfmt("hotpath/contended/t%u", k);
      rec.engine = "par";
      rec.threads = static_cast<int>(k);
      rec.transitions = stream.size();
      rec.seconds = seconds;
      rec.verdict = "ok";
      rec.store = lockfree ? "lockfree" : "locked";
      rec.cas_retries = retries;
      if (k > 1) rec.possibly_one_core = tt::probe_possibly_one_core();
      report.add(rec);
      t.add_row({rec.store, std::to_string(k), std::to_string(stream.size()),
                 tt::strfmt("%.4f", seconds),
                 tt::strfmt("%.0f",
                            seconds > 0 ? static_cast<double>(stream.size()) / seconds : 0),
                 retries >= 0 ? std::to_string(retries) : "-"});
    }
  }
  std::printf("%s", t.render().c_str());
  if (one_core) {
    std::printf("(possibly-one-core runner detected by the runtime probe: the\n"
                " misleading multi-thread contended rows were skipped.)\n");
  }
  std::printf("\n");
}

/// EXP-OOC maintain-pause stage (DESIGN.md §3.9): how long the exploration
/// loop stalls inside quiescent_maintain when sealed pages must leave RAM.
/// `sync` reproduces the pre-write-behind protocol (every enqueue batch is
/// followed by a wait_idle barrier inside the maintain, so the pause covers
/// the disk write); `async` is the default pipeline (enqueue and return,
/// bodies freed once their writes are harvested durable). Identical insert
/// schedule, identical 1 MiB budget, identical unique-state stream — the
/// pause delta is purely the barrier.
void maintain_pause_stage(tt::BenchReport& report, const std::vector<State>& uniq) {
#if TT_LFSIM_HAS_SPILL
  std::printf("=== maintain pause: sync spill barrier vs write-behind ===\n");
  tt::TextTable t({"mode", "states", "maintains", "total_pause_s", "max_pause_s",
                   "sync_waits", "async_pages"});
  // The async win needs a core for the I/O thread to run on while the
  // mutator continues; flag the rows on a possibly-one-core runner where
  // the overlap cannot happen and the two modes converge.
  const int one_core = tt::probe_possibly_one_core();
  // Small enough that the quick-mode n=4 set still crosses several
  // quiescent points (sealing lags one maintain behind the insert wave).
  constexpr std::size_t kChunk = 2048;
  for (const bool sync : {true, false}) {
    tt::LockFreeStateIndexMap<kW> map(1);
    map.set_mem_budget(std::size_t{1} << 20);
    map.set_spill_synchronous(sync);
    double total = 0.0;
    double max_pause = 0.0;
    std::size_t maintains = 0;
    std::size_t i = 0;
    while (i < uniq.size()) {
      const std::size_t end = std::min(i + kChunk, uniq.size());
      for (; i < end; ++i) map.insert_serial(uniq[i], tt::hash_words(uniq[i]));
      tt::Timer timer;
      (void)map.quiescent_maintain();
      const double s = timer.seconds();
      total += s;
      max_pause = std::max(max_pause, s);
      ++maintains;
    }
    const auto stats = map.store_stats();
    const char* mode = sync ? "sync" : "async";
    for (const bool is_max : {false, true}) {
      tt::BenchRecord rec;
      rec.experiment = tt::strfmt("hotpath/maintain_pause%s/%s", is_max ? "_max" : "", mode);
      rec.engine = "seq";
      rec.states = uniq.size();
      rec.seconds = is_max ? max_pause : total;
      rec.verdict = "ok";
      rec.store = "lockfree";
      rec.spill_bytes = static_cast<long long>(stats.spill_bytes);
      rec.spill_sync_waits = static_cast<long long>(stats.spill_sync_waits);
      rec.spill_async_pages = static_cast<long long>(stats.spill_async_pages);
      rec.possibly_one_core = one_core;
      report.add(rec);
    }
    t.add_row({mode, std::to_string(uniq.size()), std::to_string(maintains),
               tt::strfmt("%.5f", total), tt::strfmt("%.5f", max_pause),
               std::to_string(stats.spill_sync_waits), std::to_string(stats.spill_async_pages)});
  }
  std::printf("%s", t.render().c_str());
  if (one_core != 0) {
    std::printf("(possibly-one-core runner: the I/O thread has no spare core to\n"
                " overlap on, so the sync/async pause delta is not meaningful here.)\n");
  }
  std::printf("\n");
#else
  (void)report;
  (void)uniq;
  std::printf("(spill tier unsupported on this platform: maintain-pause stage skipped)\n\n");
#endif
}

/// EXP-OOC resident-footprint stage: intern the same unique set into the
/// locked store (raw bodies), the plain lock-free store (sealed bodies stay
/// resident, delta-compressed) and the fingerprint-only store (sealed
/// bodies dropped, 8 bytes/state of fingerprints kept), then record
/// memory_bytes() as the v7 resident_bytes column — the acceptance rows for
/// `--store lockfree-fp` footprint claims.
void resident_bytes_stage(tt::BenchReport& report, const std::vector<State>& uniq) {
  std::printf("=== resident footprint: locked vs lockfree vs lockfree-fp ===\n");
  tt::TextTable t({"store", "states", "resident_bytes", "bytes/state"});
  auto emit = [&](const char* store, std::size_t bytes, long long collisions,
                  long long reexp) {
    tt::BenchRecord rec;
    rec.experiment = "hotpath/resident/unique_set";
    rec.engine = "seq";
    rec.states = uniq.size();
    rec.verdict = "ok";
    rec.store = store;
    rec.resident_bytes = static_cast<long long>(bytes);
    rec.fp_collisions = collisions;
    rec.reexpansions = reexp;
    report.add(rec);
    t.add_row({store, std::to_string(uniq.size()), std::to_string(bytes),
               tt::strfmt("%.2f", uniq.size() ? static_cast<double>(bytes) / uniq.size() : 0)});
  };
  {
    tt::ShardedStateIndexMap<kW> map(1);
    for (const State& s : uniq) map.insert_serial(s, tt::hash_words(s));
    emit("locked", map.memory_bytes(), -1, -1);
  }
  for (const bool fp : {false, true}) {
    tt::LockFreeStateIndexMap<kW> map(1);
    if (fp) map.set_fingerprint_only(true);
    for (const State& s : uniq) map.insert_serial(s, tt::hash_words(s));
    // First maintain publishes the quiescent watermark; the second seals
    // (and in fp mode drops) every full page below it.
    (void)map.quiescent_maintain();
    (void)map.quiescent_maintain();
    const auto stats = map.store_stats();
    emit(fp ? "lockfree-fp" : "lockfree", map.memory_bytes(),
         fp ? static_cast<long long>(stats.fp_collisions) : -1,
         fp ? static_cast<long long>(stats.reexpansions) : -1);
  }
  std::printf("%s", t.render().c_str());
  std::printf("(all three stores hold the same interned set; lockfree seals pages\n"
              " into delta-compressed bodies, lockfree-fp drops sealed bodies and\n"
              " keeps 8-byte fingerprints, so the deltas are the body tiers.)\n\n");
}

/// The JSON rows: one timed pass per variant over the same stream, so the
/// perf trajectory tracks generation and interning separately.
void emit_report(tt::BenchReport& report) {
  std::printf("\n=== successor-pipeline hot path (fig6 safety model) ===\n");
  tt::TextTable t({"experiment", "engine", "items", "seconds", "items/sec"});
  auto add = [&](const std::string& experiment, const std::string& engine, std::size_t items,
                 double seconds, const std::string& store = {}) {
    tt::BenchRecord rec;
    rec.experiment = experiment;
    rec.engine = engine;
    rec.transitions = items;
    rec.seconds = seconds;
    rec.verdict = "ok";
    rec.store = store;
    report.add(rec);
    t.add_row({experiment, engine, std::to_string(items), tt::strfmt("%.4f", seconds),
               tt::strfmt("%.0f", seconds > 0 ? static_cast<double>(items) / seconds : 0)});
  };

  const int n = quick_mode() ? 4 : 5;
  {
    const tt::tta::Cluster cluster(hotpath_config(n));
    const auto all = reachable_states(cluster);
    tt::Timer timer;
    std::size_t count = 0;
    std::uint64_t acc = 0;
    for (const State& s : all) {
      cluster.successors(s, [&](const State& u) {
        ++count;
        acc += u[0];
      });
    }
    benchmark::DoNotOptimize(acc);
    add(tt::strfmt("hotpath/successors/n%d", n), "enum", count, timer.seconds());
  }

  const tt::tta::Cluster cluster(hotpath_config(4));
  const auto stream = candidate_stream(cluster, reachable_states(cluster), 2000000);
  auto timed = [&](auto&& body) {
    tt::Timer timer;
    std::uint64_t acc = body();
    benchmark::DoNotOptimize(acc);
    return timer.seconds();
  };

  add("hotpath/intern/flat", "seq", stream.size(), timed([&] {
        tt::StateIndexMap<kW> map;
        std::uint64_t acc = 0;
        for (const State& s : stream) acc += map.insert(s, tt::hash_words(s)).first;
        return acc;
      }));
  add("hotpath/intern/flat_cached", "seq", stream.size(), timed([&] {
        tt::StateIndexMap<kW> map;
        tt::RecentSeenCache cache;
        std::uint64_t acc = 0;
        for (const State& s : stream) {
          const std::uint64_t h = tt::hash_words(s);
          const std::uint32_t hint = cache.lookup(h);
          if (hint != tt::RecentSeenCache::kMiss && map.at(hint) == s) {
            acc += hint;
            continue;
          }
          auto [idx, fresh] = map.insert(s, h);
          cache.remember(h, idx);
          acc += idx;
        }
        return acc;
      }));
  add("hotpath/intern/sharded_serial", "seq", stream.size(), timed([&] {
        tt::ShardedStateIndexMap<kW> map;
        std::uint64_t acc = 0;
        for (const State& s : stream) acc += map.insert_serial(s, tt::hash_words(s)).first;
        return acc;
      }));
  add("hotpath/intern/sharded_locked", "par", stream.size(), timed([&] {
        tt::ShardedStateIndexMap<kW> map;
        std::uint64_t acc = 0;
        for (const State& s : stream) acc += map.insert(s, tt::hash_words(s)).first;
        return acc;
      }));
  add("hotpath/intern/lockfree_serial", "seq", stream.size(), timed([&] {
        tt::LockFreeStateIndexMap<kW> map;
        std::uint64_t acc = 0;
        for (const State& s : stream) acc += map.insert_serial(s, tt::hash_words(s)).first;
        return acc;
      }),
      "lockfree");
  add("hotpath/intern/lockfree", "par", stream.size(), timed([&] {
        tt::LockFreeStateIndexMap<kW> map;
        map.reserve(stream.size());  // concurrent inserts never grow the table
        std::uint64_t acc = 0;
        for (const State& s : stream) acc += map.insert(s, tt::hash_words(s)).first;
        return acc;
      }),
      "lockfree");
  std::printf("%s", t.render().c_str());
  std::printf("(generation bounds every engine; the cached intern row shows the\n"
              " recently-seen cache absorbing the ~99%% duplicate candidate mix\n"
              " before it reaches the open-addressed probe sequence.)\n\n");

  contended_stage(report, stream);

  // The out-of-core stages work on unique states (pages seal per interned
  // id, so the duplicate-heavy candidate stream would measure nothing): the
  // full reachable set of the fig6 safety model at n=5 (n=4 in quick mode).
  const tt::tta::Cluster big(hotpath_config(n));
  const auto uniq = reachable_states(big);
  maintain_pause_stage(report, uniq);
  resident_bytes_stage(report, uniq);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  tt::BenchReport report("bench_hotpath");
  emit_report(report);
  const std::string path = report.write();
  if (!path.empty()) std::printf("machine-readable results: %s\n", path.c_str());
  return 0;
}
