// EXP-F5: reproduces paper Figure 5 — "Number of Scenarios for Different
// Fault Degrees" — exactly, via the closed-form formulas, and augments it
// with the *measured* reachable-state counts of our model at the scaled
// wake-up window (the explicit-state analogue of `sal-smc --count`).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/scenario_math.hpp"
#include "mc/reachability.hpp"
#include "obs/obs.hpp"
#include "support/bench_report.hpp"
#include "support/table.hpp"
#include "tta/cluster.hpp"

namespace {

void BM_ScenarioFormulas(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto s = tt::core::paper_scenarios(n);
    benchmark::DoNotOptimize(s.fault_scenarios);
  }
}
BENCHMARK(BM_ScenarioFormulas)->Arg(3)->Arg(4)->Arg(5);

void BM_CountReachable(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  tt::tta::ClusterConfig cfg;
  cfg.n = n;
  cfg.init_window = 2;
  cfg.hub_init_window = 2;
  for (auto _ : state) {
    const tt::tta::Cluster cluster(cfg);
    auto stats = tt::mc::count_reachable(cluster);
    state.counters["states"] = static_cast<double>(stats.states);
    benchmark::DoNotOptimize(stats.states);
  }
}
BENCHMARK(BM_CountReachable)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void print_table(tt::BenchReport& report) {
  std::printf("\n=== Figure 5: number of scenarios (paper parameters, exact) ===\n");
  tt::TextTable t({"nodes", "d_init", "|S_sup|", "paper", "d_fail", "wcsup", "|S_f.n.|",
                   "paper"});
  const char* paper_sup[] = {"3.3e5", "3.3e7", "4.1e9"};
  const char* paper_fn[] = {"8e24", "6e35", "4.9e46"};
  for (int n = 3; n <= 5; ++n) {
    auto s = tt::core::paper_scenarios(n);
    t.add_row({std::to_string(n), std::to_string(s.delta_init),
               s.startup_scenarios.to_scientific(2), paper_sup[n - 3], "6",
               std::to_string(s.wcsup), s.fault_scenarios.to_scientific(2),
               paper_fn[n - 3]});
  }
  std::printf("%s", t.render().c_str());

  std::printf("\n=== measured reachable states (fault-free, window = 2 slots) ===\n");
  tt::TextTable m({"nodes", "reachable states", "transitions", "orbit states",
                   "orbit transitions", "state bits"});
  for (int n = 3; n <= 4; ++n) {
    tt::tta::ClusterConfig cfg;
    cfg.n = n;
    cfg.init_window = 2;
    cfg.hub_init_window = 2;
    const tt::tta::Cluster cluster(cfg);
    auto stats = tt::mc::count_reachable(cluster);
    // The same count over the symmetry quotient (tta/symmetry.hpp): in the
    // fault-free model the channel swap and the frame-pair collapse both
    // apply, so this is the orbit-count analogue of `sal-smc --count`.
    const tt::tta::Cluster quotient(cfg, tt::tta::Reduction::kSymmetry);
    auto orbit = tt::mc::count_reachable(quotient);
    // A limit-stopped count would silently understate the state space; the
    // exhausted flag makes that impossible to miss.
    m.add_row({std::to_string(n),
               std::to_string(stats.states) + (stats.exhausted ? "" : " (truncated!)"),
               std::to_string(stats.transitions),
               std::to_string(orbit.states) + (orbit.exhausted ? "" : " (truncated!)"),
               std::to_string(orbit.transitions), std::to_string(cluster.state_bits())});
    tt::BenchRecord rec;
    rec.experiment = tt::strfmt("fig5/count_reachable/n%d", n);
    rec.engine = "seq";
    rec.states = stats.states;
    rec.transitions = stats.transitions;
    rec.seconds = stats.seconds;
    rec.exhausted = stats.exhausted;
    rec.verdict = stats.exhausted ? "count" : "count(truncated)";
    rec.reduction = "none";
    report.add(rec);
    tt::BenchRecord orbit_rec = rec;
    orbit_rec.states = orbit.states;
    orbit_rec.transitions = orbit.transitions;
    orbit_rec.seconds = orbit.seconds;
    orbit_rec.exhausted = orbit.exhausted;
    orbit_rec.verdict = orbit.exhausted ? "count" : "count(truncated)";
    orbit_rec.reduction = "sym";
    orbit_rec.canon_ops = static_cast<long long>(quotient.canon_ops());
    orbit_rec.orbit_states = static_cast<long long>(orbit.states);
    if (orbit.states > 0) {
      orbit_rec.reduction_ratio =
          static_cast<double>(stats.states) / static_cast<double>(orbit.states);
    }
    report.add(orbit_rec);
  }
  std::printf("%s\n", m.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Obs flags come out of argv before GoogleBenchmark sees the rest.
  tt::obs::ObsOptions obs_opts;
  if (!tt::obs::parse_obs_args(argc, argv, obs_opts)) return 2;
  tt::obs::ScopedObservability obs_session(obs_opts);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  tt::BenchReport report("bench_fig5_scenario_counts");
  print_table(report);
  const std::string path = report.write();
  if (!path.empty()) std::printf("machine-readable results: %s\n", path.c_str());
  return 0;
}
