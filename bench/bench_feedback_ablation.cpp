// EXP-S51: reproduces the paper's §5.1 feedback observation — the "feedback"
// optimization (collapsing a locked-out faulty node's state) is ineffective
// or even counterproductive on small models, but pays off as the model
// grows. (Paper: a 6-node property took 8.5 h with feedback on and had not
// terminated after 51 h with it off.)
//
// We measure safety verification with feedback on/off across cluster sizes
// and report the state-count and time ratios.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/verifier.hpp"
#include "support/table.hpp"

namespace {

tt::tta::ClusterConfig ablation_config(int n, bool feedback) {
  tt::tta::ClusterConfig cfg;
  cfg.n = n;
  cfg.faulty_node = 0;
  cfg.fault_degree = 6;
  cfg.feedback = feedback;
  cfg.init_window = n;
  cfg.hub_init_window = n;
  return cfg;
}

void BM_Feedback(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool feedback = state.range(1) != 0;
  const auto cfg = ablation_config(n, feedback);
  for (auto _ : state) {
    auto r = tt::core::verify(cfg, tt::core::Lemma::kSafety);
    if (!r.holds) state.SkipWithError("safety unexpectedly violated");
    state.counters["states"] = static_cast<double>(r.stats.states);
  }
}
BENCHMARK(BM_Feedback)
    ->ArgsProduct({{3, 4}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.01);

void print_table() {
  std::printf("\n=== §5.1: feedback ablation (safety, degree 6, faulty node) ===\n");
  tt::TextTable t({"n", "feedback", "states", "transitions", "time s"});
  for (int n = 3; n <= 5; ++n) {
    double time_on = 0;
    double time_off = 0;
    for (bool feedback : {true, false}) {
      auto r = tt::core::verify(ablation_config(n, feedback), tt::core::Lemma::kSafety);
      (feedback ? time_on : time_off) = r.stats.seconds;
      t.add_row({std::to_string(n), feedback ? "on" : "off",
                 std::to_string(r.stats.states), std::to_string(r.stats.transitions),
                 tt::strfmt("%.2f", r.stats.seconds)});
    }
    std::printf("n=%d: feedback speedup %.2fx\n", n, time_off / (time_on > 0 ? time_on : 1e-9));
  }
  std::printf("%s", t.render().c_str());
  std::printf("(paper shape: negligible or negative gain on small models, essential on\n"
              " large ones — the ratio should grow with n)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  print_table();
  return 0;
}
