// EXP-PRE: reproduces the paper's §3 preliminary study — the original
// node-only bus-topology startup algorithm ([12]) model-checked with the
// explicit-state engine versus the symbolic (BDD) engine, plus our
// SAT-based bounded model checker on a violated variant.
//
// Paper narrative:
//   * explicit-state: 30 s for 4 nodes, >13 min for 5 nodes
//   * SAL 2.0 symbolic: 0.38 s / 0.62 s on the same models —
//     "two or three orders of magnitude improvement"
//   * largest preliminary model: 41,322 reachable states
//
// Our engines run on one and the same kernel::System; the cross-checked
// reachable-state counts demonstrate they explore the same model. The
// "shape" to reproduce is that both engines agree exactly and the symbolic
// engine's advantage grows with model size (it reports the set, not the
// enumeration), while BMC shines on shallow violations.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "bdd/symbolic.hpp"
#include "bmc/encoder.hpp"
#include "kernel/packed_system.hpp"
#include "kernel/ttalite.hpp"
#include "mc/liveness.hpp"
#include "mc/reachability.hpp"
#include "mc/symbolic_liveness.hpp"
#include "support/bench_report.hpp"
#include "support/table.hpp"

namespace {

bool quick_mode() {
  const char* env = std::getenv("TTSTART_BENCH_QUICK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

tt::kernel::TtaLiteConfig prelim_cfg(int n, int degree) {
  tt::kernel::TtaLiteConfig cfg;
  cfg.n = n;
  cfg.init_window = 8;  // wide wake-up window: tens of thousands of states
  cfg.faulty_node = 0;
  cfg.fault_degree = degree;
  return cfg;
}

void BM_ExplicitReachability(benchmark::State& state) {
  tt::kernel::TtaLite model(prelim_cfg(static_cast<int>(state.range(0)), 1));
  const tt::kernel::PackedSystem ps(model.system());
  for (auto _ : state) {
    auto stats = tt::mc::count_reachable(ps);
    state.counters["states"] = static_cast<double>(stats.states);
  }
}
BENCHMARK(BM_ExplicitReachability)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SymbolicReachability(benchmark::State& state) {
  tt::kernel::TtaLite model(prelim_cfg(static_cast<int>(state.range(0)), 1));
  for (auto _ : state) {
    tt::bdd::SymbolicEngine engine(model.system());
    auto r = engine.count_reachable();
    state.counters["states"] = r.reachable_states;
  }
}
BENCHMARK(BM_SymbolicReachability)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_SatBmcCounterexample(benchmark::State& state) {
  // Degree 2 (babbling node) violates safety on the guardian-less bus; BMC
  // digs out the minimal counterexample.
  tt::kernel::TtaLite model(prelim_cfg(static_cast<int>(state.range(0)), 2));
  const auto property = model.safety_expr();
  for (auto _ : state) {
    auto r = tt::bmc::check_invariant_bounded(model.system(), property, 30);
    if (!r.violation_found) state.SkipWithError("expected a violation");
    state.counters["depth"] = r.depth;
  }
}
BENCHMARK(BM_SatBmcCounterexample)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

void print_table(tt::BenchReport& report) {
  std::printf("\n=== §3 preliminary study: engines on the TTA-lite ([12]) model ===\n");
  tt::TextTable t({"n", "degree", "engine", "verdict", "states", "time s"});
  const int max_n = quick_mode() ? 4 : 5;
  for (int n = 3; n <= max_n; ++n) {
    // Fail-silent runs carry the safety lemma; degree-3 runs show the model
    // at the paper's preliminary scale (tens of thousands of states).
    tt::kernel::TtaLite model(prelim_cfg(n, 3));

    const tt::kernel::PackedSystem ps(model.system());
    auto explicit_r = tt::mc::count_reachable(ps);
    t.add_row({std::to_string(n), "3", "explicit BFS", "count",
               std::to_string(explicit_r.states), tt::strfmt("%.3f", explicit_r.seconds)});
    {
      tt::BenchRecord rec;
      rec.experiment = tt::strfmt("prelim/deg3/n%d", n);
      rec.engine = "seq";
      rec.states = explicit_r.states;
      rec.transitions = explicit_r.transitions;
      rec.seconds = explicit_r.seconds;
      rec.verdict = "count";
      report.add(rec);
    }

    tt::kernel::TtaLite model2(prelim_cfg(n, 3));
    tt::bdd::SymbolicEngine engine(model2.system());
    auto sym = engine.count_reachable();
    t.add_row({std::to_string(n), "3", "symbolic BDD", "count",
               sym.reachable_exact.to_decimal(), tt::strfmt("%.3f", sym.seconds)});
    {
      tt::BenchRecord rec;
      rec.experiment = tt::strfmt("prelim/deg3/n%d", n);
      rec.engine = "sym";
      rec.states = sym.reachable_exact.fits_u64()
                       ? static_cast<std::size_t>(sym.reachable_exact.to_u64())
                       : static_cast<std::size_t>(sym.reachable_states);
      rec.seconds = sym.seconds;
      rec.verdict = "count";
      rec.iterations = sym.iterations;
      rec.peak_live_nodes = static_cast<long long>(sym.peak_nodes);
      report.add(rec);
    }

    // Liveness on the same degree-3 model, sequential lasso search versus
    // the symbolic EG(!goal) fixpoint — the engine pair the tentpole adds.
    // The goal is Lemma 2's "all correct nodes active"; the engines must
    // agree on the verdict (no seq fallback for sym liveness any more).
    auto goal = [&](const tt::kernel::PackedSystem::State& s) {
      return model.all_correct_active(ps.unpack(s));
    };
    const auto live_seq = tt::mc::check_eventually(ps, goal);
    t.add_row({std::to_string(n), "3", "seq lasso",
               tt::mc::to_string(live_seq.verdict), std::to_string(live_seq.stats.states),
               tt::strfmt("%.3f", live_seq.stats.seconds)});
    {
      tt::BenchRecord rec;
      rec.experiment = tt::strfmt("prelim/liveness_deg3/n%d", n);
      rec.engine = "seq";
      rec.states = live_seq.stats.states;
      rec.transitions = live_seq.stats.transitions;
      rec.seconds = live_seq.stats.seconds;
      rec.exhausted = live_seq.stats.exhausted;
      rec.verdict = tt::mc::to_string(live_seq.verdict);
      report.add(rec);
    }
    const auto live_sym = tt::mc::check_eventually_symbolic(ps, goal);
    t.add_row({std::to_string(n), "3", "sym EG",
               tt::mc::to_string(live_sym.verdict), std::to_string(live_sym.stats.states),
               tt::strfmt("%.3f", live_sym.stats.seconds)});
    {
      tt::BenchRecord rec;
      rec.experiment = tt::strfmt("prelim/liveness_deg3/n%d", n);
      rec.engine = "sym";
      rec.states = live_sym.stats.states;
      rec.transitions = live_sym.stats.transitions;
      rec.seconds = live_sym.stats.seconds;
      rec.exhausted = live_sym.stats.exhausted;
      rec.verdict = tt::mc::to_string(live_sym.verdict);
      rec.iterations = static_cast<long long>(live_sym.stats.bdd_iterations);
      rec.peak_live_nodes = static_cast<long long>(live_sym.stats.bdd_peak_live_nodes);
      report.add(rec);
    }
    if (live_sym.verdict != live_seq.verdict) {
      std::printf("!! symbolic/sequential liveness disagreement at n = %d\n", n);
    }

    tt::kernel::TtaLite model_safe(prelim_cfg(n, 1));
    const tt::kernel::PackedSystem ps_safe(model_safe.system());
    auto safety_r =
        tt::mc::check_invariant(ps_safe, [&](const tt::kernel::PackedSystem::State& s) {
          return model_safe.safety(ps_safe.unpack(s));
        });
    t.add_row({std::to_string(n), "1", "explicit BFS",
               safety_r.verdict == tt::mc::Verdict::kHolds ? "holds" : "VIOLATED",
               std::to_string(safety_r.stats.states),
               tt::strfmt("%.3f", safety_r.stats.seconds)});
    {
      tt::BenchRecord rec;
      rec.experiment = tt::strfmt("prelim/safety_deg1/n%d", n);
      rec.engine = "seq";
      rec.states = safety_r.stats.states;
      rec.transitions = safety_r.stats.transitions;
      rec.seconds = safety_r.stats.seconds;
      rec.exhausted = safety_r.stats.exhausted;
      rec.verdict = safety_r.verdict == tt::mc::Verdict::kHolds ? "holds" : "VIOLATED";
      report.add(rec);
    }

    tt::kernel::TtaLite model3(prelim_cfg(n, 2));
    auto bmc = tt::bmc::check_invariant_bounded(model3.system(), model3.safety_expr(), 30);
    t.add_row({std::to_string(n), "2", "SAT BMC",
               bmc.violation_found ? tt::strfmt("VIOLATED@%d", bmc.depth) : "no cex",
               "-", tt::strfmt("%.3f", bmc.seconds)});
    {
      tt::BenchRecord rec;
      rec.experiment = tt::strfmt("prelim/bmc_deg2/n%d", n);
      rec.engine = "sat";
      rec.seconds = bmc.seconds;
      rec.verdict =
          bmc.violation_found ? tt::strfmt("VIOLATED@%d", bmc.depth) : std::string("no cex");
      report.add(rec);
    }
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "(paper: explicit 30 s vs symbolic 0.38 s on 4 nodes, 41,322 reachable\n"
      " states in the largest preliminary model. Shape: both engines agree\n"
      " exactly on the reachable count; the babbling-node violation that\n"
      " motivates the guardians is found by BMC at a shallow depth.)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  tt::BenchReport report("bench_prelim_engines");
  print_table(report);
  const std::string path = report.write();
  if (!path.empty()) std::printf("machine-readable results: %s\n", path.c_str());
  return 0;
}
