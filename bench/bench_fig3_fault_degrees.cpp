// EXP-F3: reproduces paper Figure 3 — the fault-degree matrix — by printing
// the admitted per-channel output-pair counts of the dial at every degree and
// benchmarking the per-step fault-injection enumeration cost.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "support/bench_report.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "tta/faulty_node.hpp"

namespace {

void BM_FaultPairEnumeration(benchmark::State& state) {
  const int degree = static_cast<int>(state.range(0));
  tt::tta::ClusterConfig cfg;
  cfg.n = 4;
  cfg.faulty_node = 1;
  cfg.fault_degree = degree;
  const tt::tta::FaultyNodeOutputs outputs(cfg);
  for (auto _ : state) {
    std::size_t total = 0;
    for (const auto& p : outputs.pairs(0)) {
      total += static_cast<std::size_t>(p.first.kind) + static_cast<std::size_t>(p.second.kind);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_FaultPairEnumeration)->DenseRange(1, 6);

void print_table(tt::BenchReport& report) {
  std::printf("\n=== Figure 3: fault-degree dial (n = 4, faulty node 1) ===\n");
  std::printf("matrix rule: pair (a, b) admitted iff max(rank a, rank b) <= degree\n");
  tt::TextTable t({"degree", "per-channel kinds", "channel options", "output pairs"});
  const char* kinds[] = {"quiet",
                         "+ cs(good)",
                         "+ i(good)",
                         "+ noise",
                         "+ cs(bad)",
                         "+ i(bad)"};
  for (int d = 1; d <= 6; ++d) {
    tt::tta::ClusterConfig cfg;
    cfg.n = 4;
    cfg.faulty_node = 1;
    cfg.fault_degree = d;
    tt::Timer timer;
    const tt::tta::FaultyNodeOutputs outputs(cfg);
    const double build_seconds = timer.seconds();
    const auto opts = tt::tta::FaultyNodeOutputs::channel_options(cfg.n, 1, d);
    t.add_row({std::to_string(d), kinds[d - 1], std::to_string(opts.size()),
               std::to_string(outputs.pairs(0).size())});
    // The "transitions" column carries the admitted output-pair count — the
    // per-step fault-injection branching factor the dial controls.
    tt::BenchRecord rec;
    rec.experiment = "fig3/degree" + std::to_string(d);
    rec.engine = "dial";
    rec.transitions = outputs.pairs(0).size();
    rec.seconds = build_seconds;
    rec.verdict = "pairs=" + std::to_string(outputs.pairs(0).size());
    report.add(rec);
  }
  std::printf("%s", t.render().c_str());
  std::printf("(paper counts kinds, 6x6 = 36 combinations; ours also enumerates the\n"
              " concrete lied-about time values, hence (2n+3)^2 pairs at degree 6)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  tt::BenchReport report("bench_fig3_fault_degrees");
  print_table(report);
  const std::string path = report.write();
  if (!path.empty()) std::printf("machine-readable results: %s\n", path.c_str());
  return 0;
}
