// EXP-PROOF: the unbounded proof engines on the paper's claim grid. The
// paper's §5 results are bounded or exhaustive-by-enumeration: fig. 4/fig. 6
// cells are verified by exhausting the reachable set, and the §5.2 clique is
// refuted by bounded search at a known depth. This bench upgrades both
// directions to SAT-based engines over the star-cluster IR (DESIGN.md
// §3.10):
//
//   * k-induction ("kind") returns PROVED@k — an unbounded guarantee — on
//     the fig. 4/fig. 6 invariant cells, with the per-row solver_calls /
//     clauses_reused columns showing a single incremental solver carrying
//     learned clauses across every query of the run.
//   * IC3/PDR ("ic3") proves a reduced-init-window cell through frame
//     convergence and refutes a tightened timeliness bound through its
//     obligation queue (full-window cells exceed its obligation budget —
//     kind carries the full grid).
//   * incremental BMC re-finds the §5.2 clique: one solver instance probes
//     every depth up to the violation (solver_calls == depths probed), at
//     exactly twice the cluster depth of the explicit-search counterexample
//     (two IR steps per cluster step).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bmc/encoder.hpp"
#include "core/verifier.hpp"
#include "support/bench_report.hpp"
#include "support/table.hpp"
#include "tta/star_ir.hpp"

namespace {

bool quick_mode() {
  const char* env = std::getenv("TTSTART_BENCH_QUICK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

tt::tta::ClusterConfig fig6_config(int n) {
  tt::tta::ClusterConfig cfg;
  cfg.n = n;
  cfg.faulty_node = 0;
  cfg.fault_degree = 6;
  cfg.init_window = n;
  cfg.hub_init_window = n;
  return cfg;
}

tt::tta::ClusterConfig fig4_config(int degree, tt::core::Lemma lemma) {
  tt::tta::ClusterConfig cfg;
  cfg.n = 4;
  cfg.faulty_node = 0;
  cfg.fault_degree = degree;
  cfg.init_window = 8;
  cfg.hub_init_window = 8;
  if (lemma == tt::core::Lemma::kTimeliness) cfg.timeliness_bound = 6 * cfg.n;
  return cfg;
}

/// §5.2 faulty-guardian configuration (bench_bigbang_necessity.cpp).
tt::tta::ClusterConfig clique_config(int n) {
  tt::tta::ClusterConfig cfg;
  cfg.n = n;
  cfg.faulty_hub = 0;
  cfg.big_bang = false;
  cfg.init_window = 3;
  cfg.hub_init_window = 1;
  return cfg;
}

tt::core::VerificationResult run_proof(const tt::tta::ClusterConfig& cfg,
                                       tt::core::Lemma lemma, tt::mc::EngineKind engine) {
  tt::core::VerifyOptions opts;
  opts.engine = engine;
  return tt::core::verify(cfg, lemma, opts);
}

void add_proof_record(tt::BenchReport& report, const std::string& experiment,
                      const char* engine, const tt::core::VerificationResult& r) {
  tt::BenchRecord rec;
  rec.experiment = experiment;
  rec.engine = engine;
  rec.seconds = r.stats.seconds;
  rec.exhausted = r.exhausted;
  rec.verdict = r.verdict_text;
  rec.solver_calls = static_cast<long long>(r.stats.solver_calls);
  rec.clauses_reused = static_cast<long long>(r.stats.clauses_reused);
  rec.frames = static_cast<long long>(r.stats.frames);
  rec.proof_obligations = static_cast<long long>(r.stats.proof_obligations);
  report.add(rec);
}

void BM_KindProvesFig6(benchmark::State& state) {
  const auto cfg = fig6_config(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto r = run_proof(cfg, tt::core::Lemma::kSafety, tt::mc::EngineKind::kKInduction);
    if (!r.holds) state.SkipWithError("expected PROVED");
    state.counters["solver_calls"] = static_cast<double>(r.stats.solver_calls);
  }
}
BENCHMARK(BM_KindProvesFig6)->Arg(3)->Unit(benchmark::kMillisecond)->MinTime(0.01);

void BM_IncrementalBmcClique(benchmark::State& state) {
  const auto cfg = tt::core::prepare_config(clique_config(static_cast<int>(state.range(0))),
                                            tt::core::Lemma::kSafety);
  const tt::tta::StarIr ir(cfg);
  for (auto _ : state) {
    const auto r = tt::bmc::check_invariant_bounded(ir.system(), ir.safety_expr(), 64);
    if (!r.violation_found) state.SkipWithError("expected the clique violation");
    state.counters["ir_depth"] = r.depth;
  }
}
BENCHMARK(BM_IncrementalBmcClique)->Arg(3)->Unit(benchmark::kMillisecond)->MinTime(0.01);

void kind_row(tt::TextTable& t, tt::BenchReport& report, const std::string& experiment,
              const tt::tta::ClusterConfig& cfg, tt::core::Lemma lemma) {
  const auto r = run_proof(cfg, lemma, tt::mc::EngineKind::kKInduction);
  t.add_row({experiment, "kind", r.verdict_text, std::to_string(r.stats.solver_calls),
             std::to_string(r.stats.clauses_reused), tt::strfmt("%.2f", r.stats.seconds)});
  add_proof_record(report, experiment, "kind", r);
  if (!r.holds) std::printf("!! expected PROVED on %s\n", experiment.c_str());
}

void print_table(tt::BenchReport& report) {
  std::printf("\n=== unbounded proofs: kind / ic3 / incremental BMC on the claim grid ===\n");
  tt::TextTable t({"experiment", "engine", "verdict", "solver calls", "clauses reused",
                   "time s"});

  // k-induction across the fig. 6 / fig. 4 invariant cells (the cells the
  // explicit engines verify by exhaustion in the golden-count grid).
  kind_row(t, report, "fig6/safety/n3", fig6_config(3), tt::core::Lemma::kSafety);
  if (!quick_mode()) {
    kind_row(t, report, "fig6/safety/n4", fig6_config(4), tt::core::Lemma::kSafety);
    kind_row(t, report, "fig4/safety/deg1", fig4_config(1, tt::core::Lemma::kSafety),
             tt::core::Lemma::kSafety);
    kind_row(t, report, "fig4/safety/deg3", fig4_config(3, tt::core::Lemma::kSafety),
             tt::core::Lemma::kSafety);
    kind_row(t, report, "fig4/timeliness/deg1", fig4_config(1, tt::core::Lemma::kTimeliness),
             tt::core::Lemma::kTimeliness);
  }

  // IC3: refutation through the obligation queue on a tightened timeliness
  // bound (quick), frame-convergence proof on a reduced init window (full —
  // the proof costs minutes, the refutation seconds).
  {
    tt::tta::ClusterConfig cfg;
    cfg.n = 3;
    cfg.faulty_node = 0;
    cfg.fault_degree = 1;
    cfg.init_window = 3;
    cfg.hub_init_window = 3;
    cfg.timeliness_bound = 2;  // tightened until the lemma breaks shallow
    const auto r = run_proof(cfg, tt::core::Lemma::kTimeliness, tt::mc::EngineKind::kIc3);
    t.add_row({"ic3/refute/tight_bound", "ic3", r.verdict_text,
               std::to_string(r.stats.solver_calls), std::to_string(r.stats.clauses_reused),
               tt::strfmt("%.2f", r.stats.seconds)});
    add_proof_record(report, "ic3/refute/tight_bound", "ic3", r);
    if (r.holds) std::printf("!! expected VIOLATED on ic3/refute/tight_bound\n");
  }
  if (!quick_mode()) {
    tt::tta::ClusterConfig cfg;
    cfg.n = 3;
    cfg.faulty_node = 0;
    cfg.fault_degree = 1;
    cfg.init_window = 2;
    cfg.hub_init_window = 2;
    const auto r = run_proof(cfg, tt::core::Lemma::kSafety, tt::mc::EngineKind::kIc3);
    t.add_row({"ic3/prove/reduced_window", "ic3", r.verdict_text,
               std::to_string(r.stats.solver_calls), std::to_string(r.stats.clauses_reused),
               tt::strfmt("%.2f", r.stats.seconds)});
    add_proof_record(report, "ic3/prove/reduced_window", "ic3", r);
    if (!r.holds) std::printf("!! expected PROVED on ic3/prove/reduced_window\n");
  }

  // §5.2 incremental BMC: the explicit sequential search pins the minimal
  // clique depth d; one incremental solver instance then re-finds it at IR
  // depth exactly 2d, with one solve() per depth probed and learned clauses
  // carried across all of them.
  {
    const int n = 3;
    const auto cfg = tt::core::prepare_config(clique_config(n), tt::core::Lemma::kSafety);
    const auto seq = tt::core::verify(cfg, tt::core::Lemma::kSafety);
    const int cluster_depth = static_cast<int>(seq.trace.size()) - 1;
    const tt::tta::StarIr ir(cfg);
    const auto r =
        tt::bmc::check_invariant_bounded(ir.system(), ir.safety_expr(), 2 * cluster_depth);
    const bool depth_matches = r.violation_found && r.depth == 2 * cluster_depth;
    if (!depth_matches) {
      std::printf("!! incremental BMC missed the §5.2 clique depth (ir depth %d, want %d)\n",
                  r.depth, 2 * cluster_depth);
    }
    if (r.solver_calls != static_cast<std::uint64_t>(r.depth) + 1) {
      std::printf("!! expected one solve() per probed depth, got %llu for %d depths\n",
                  static_cast<unsigned long long>(r.solver_calls), r.depth + 1);
    }
    t.add_row({tt::strfmt("s52/clique/n%d", n), "sat",
               r.violation_found ? tt::strfmt("VIOLATED@%d (ir %d)", r.depth / 2, r.depth)
                                 : std::string("no cex"),
               std::to_string(r.solver_calls), std::to_string(r.clauses_reused),
               tt::strfmt("%.2f", r.seconds)});
    tt::BenchRecord rec;
    rec.experiment = tt::strfmt("s52/clique/n%d", n);
    rec.engine = "sat";
    rec.seconds = r.seconds;
    rec.exhausted = r.violation_found;
    rec.verdict = r.violation_found ? tt::strfmt("VIOLATED@%d", r.depth / 2)
                                    : std::string("no cex");
    rec.solver_calls = static_cast<long long>(r.solver_calls);
    rec.clauses_reused = static_cast<long long>(r.clauses_reused);
    rec.frames = static_cast<long long>(r.depth) + 1;
    report.add(rec);
  }

  std::printf("%s", t.render().c_str());
  std::printf(
      "(shape: the cells the paper verifies by exhausting the reachable set\n"
      " come back PROVED@k from k-induction — an unbounded guarantee — and\n"
      " the §5.2 clique the paper refutes by bounded search is re-found by\n"
      " one incremental solver at twice the cluster depth, reusing learned\n"
      " clauses across every depth probed.)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  tt::BenchReport report("bench_unbounded_proofs");
  print_table(report);
  const std::string path = report.write();
  if (!path.empty()) std::printf("machine-readable results: %s\n", path.c_str());
  return 0;
}
