# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_mc[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_sat[1]_include.cmake")
include("/root/repo/build/tests/test_bmc[1]_include.cmake")
include("/root/repo/build/tests/test_bdd[1]_include.cmake")
include("/root/repo/build/tests/test_tta[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
