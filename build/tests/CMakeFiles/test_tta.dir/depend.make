# Empty dependencies file for test_tta.
# This may be replaced when dependencies are built.
