
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tta/cluster_test.cpp" "tests/CMakeFiles/test_tta.dir/tta/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/test_tta.dir/tta/cluster_test.cpp.o.d"
  "/root/repo/tests/tta/config_test.cpp" "tests/CMakeFiles/test_tta.dir/tta/config_test.cpp.o" "gcc" "tests/CMakeFiles/test_tta.dir/tta/config_test.cpp.o.d"
  "/root/repo/tests/tta/faulty_node_test.cpp" "tests/CMakeFiles/test_tta.dir/tta/faulty_node_test.cpp.o" "gcc" "tests/CMakeFiles/test_tta.dir/tta/faulty_node_test.cpp.o.d"
  "/root/repo/tests/tta/hub_test.cpp" "tests/CMakeFiles/test_tta.dir/tta/hub_test.cpp.o" "gcc" "tests/CMakeFiles/test_tta.dir/tta/hub_test.cpp.o.d"
  "/root/repo/tests/tta/node_test.cpp" "tests/CMakeFiles/test_tta.dir/tta/node_test.cpp.o" "gcc" "tests/CMakeFiles/test_tta.dir/tta/node_test.cpp.o.d"
  "/root/repo/tests/tta/properties_test.cpp" "tests/CMakeFiles/test_tta.dir/tta/properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_tta.dir/tta/properties_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tta/CMakeFiles/tt_tta.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
