file(REMOVE_RECURSE
  "CMakeFiles/test_tta.dir/tta/cluster_test.cpp.o"
  "CMakeFiles/test_tta.dir/tta/cluster_test.cpp.o.d"
  "CMakeFiles/test_tta.dir/tta/config_test.cpp.o"
  "CMakeFiles/test_tta.dir/tta/config_test.cpp.o.d"
  "CMakeFiles/test_tta.dir/tta/faulty_node_test.cpp.o"
  "CMakeFiles/test_tta.dir/tta/faulty_node_test.cpp.o.d"
  "CMakeFiles/test_tta.dir/tta/hub_test.cpp.o"
  "CMakeFiles/test_tta.dir/tta/hub_test.cpp.o.d"
  "CMakeFiles/test_tta.dir/tta/node_test.cpp.o"
  "CMakeFiles/test_tta.dir/tta/node_test.cpp.o.d"
  "CMakeFiles/test_tta.dir/tta/properties_test.cpp.o"
  "CMakeFiles/test_tta.dir/tta/properties_test.cpp.o.d"
  "test_tta"
  "test_tta.pdb"
  "test_tta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
