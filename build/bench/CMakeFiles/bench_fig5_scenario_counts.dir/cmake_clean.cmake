file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_scenario_counts.dir/bench_fig5_scenario_counts.cpp.o"
  "CMakeFiles/bench_fig5_scenario_counts.dir/bench_fig5_scenario_counts.cpp.o.d"
  "bench_fig5_scenario_counts"
  "bench_fig5_scenario_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_scenario_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
