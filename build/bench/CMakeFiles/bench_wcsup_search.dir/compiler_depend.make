# Empty compiler generated dependencies file for bench_wcsup_search.
# This may be replaced when dependencies are built.
