file(REMOVE_RECURSE
  "CMakeFiles/bench_wcsup_search.dir/bench_wcsup_search.cpp.o"
  "CMakeFiles/bench_wcsup_search.dir/bench_wcsup_search.cpp.o.d"
  "bench_wcsup_search"
  "bench_wcsup_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wcsup_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
