
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_prelim_engines.cpp" "bench/CMakeFiles/bench_prelim_engines.dir/bench_prelim_engines.cpp.o" "gcc" "bench/CMakeFiles/bench_prelim_engines.dir/bench_prelim_engines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tta/CMakeFiles/tt_tta.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tt_support.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/tt_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/tt_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/bmc/CMakeFiles/tt_bmc.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/tt_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
