# Empty compiler generated dependencies file for bench_prelim_engines.
# This may be replaced when dependencies are built.
