file(REMOVE_RECURSE
  "CMakeFiles/bench_prelim_engines.dir/bench_prelim_engines.cpp.o"
  "CMakeFiles/bench_prelim_engines.dir/bench_prelim_engines.cpp.o.d"
  "bench_prelim_engines"
  "bench_prelim_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prelim_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
