file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_exhaustive.dir/bench_fig6_exhaustive.cpp.o"
  "CMakeFiles/bench_fig6_exhaustive.dir/bench_fig6_exhaustive.cpp.o.d"
  "bench_fig6_exhaustive"
  "bench_fig6_exhaustive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
