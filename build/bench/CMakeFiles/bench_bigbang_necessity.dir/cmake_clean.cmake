file(REMOVE_RECURSE
  "CMakeFiles/bench_bigbang_necessity.dir/bench_bigbang_necessity.cpp.o"
  "CMakeFiles/bench_bigbang_necessity.dir/bench_bigbang_necessity.cpp.o.d"
  "bench_bigbang_necessity"
  "bench_bigbang_necessity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bigbang_necessity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
