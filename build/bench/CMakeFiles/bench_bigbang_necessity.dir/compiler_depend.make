# Empty compiler generated dependencies file for bench_bigbang_necessity.
# This may be replaced when dependencies are built.
