file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_fault_degree_dial.dir/bench_fig4_fault_degree_dial.cpp.o"
  "CMakeFiles/bench_fig4_fault_degree_dial.dir/bench_fig4_fault_degree_dial.cpp.o.d"
  "bench_fig4_fault_degree_dial"
  "bench_fig4_fault_degree_dial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_fault_degree_dial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
