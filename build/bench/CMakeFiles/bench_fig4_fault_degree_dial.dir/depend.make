# Empty dependencies file for bench_fig4_fault_degree_dial.
# This may be replaced when dependencies are built.
