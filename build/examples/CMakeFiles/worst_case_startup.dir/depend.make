# Empty dependencies file for worst_case_startup.
# This may be replaced when dependencies are built.
