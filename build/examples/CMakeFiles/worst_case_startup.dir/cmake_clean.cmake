file(REMOVE_RECURSE
  "CMakeFiles/worst_case_startup.dir/worst_case_startup.cpp.o"
  "CMakeFiles/worst_case_startup.dir/worst_case_startup.cpp.o.d"
  "worst_case_startup"
  "worst_case_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worst_case_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
