file(REMOVE_RECURSE
  "CMakeFiles/restart_recovery.dir/restart_recovery.cpp.o"
  "CMakeFiles/restart_recovery.dir/restart_recovery.cpp.o.d"
  "restart_recovery"
  "restart_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restart_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
