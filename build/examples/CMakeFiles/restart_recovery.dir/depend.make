# Empty dependencies file for restart_recovery.
# This may be replaced when dependencies are built.
