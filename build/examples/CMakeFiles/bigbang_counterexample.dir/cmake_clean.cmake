file(REMOVE_RECURSE
  "CMakeFiles/bigbang_counterexample.dir/bigbang_counterexample.cpp.o"
  "CMakeFiles/bigbang_counterexample.dir/bigbang_counterexample.cpp.o.d"
  "bigbang_counterexample"
  "bigbang_counterexample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigbang_counterexample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
