# Empty compiler generated dependencies file for bigbang_counterexample.
# This may be replaced when dependencies are built.
