# Empty compiler generated dependencies file for exhaustive_fault_simulation.
# This may be replaced when dependencies are built.
