file(REMOVE_RECURSE
  "CMakeFiles/exhaustive_fault_simulation.dir/exhaustive_fault_simulation.cpp.o"
  "CMakeFiles/exhaustive_fault_simulation.dir/exhaustive_fault_simulation.cpp.o.d"
  "exhaustive_fault_simulation"
  "exhaustive_fault_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exhaustive_fault_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
