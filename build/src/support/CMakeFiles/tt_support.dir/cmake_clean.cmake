file(REMOVE_RECURSE
  "CMakeFiles/tt_support.dir/biguint.cpp.o"
  "CMakeFiles/tt_support.dir/biguint.cpp.o.d"
  "CMakeFiles/tt_support.dir/table.cpp.o"
  "CMakeFiles/tt_support.dir/table.cpp.o.d"
  "libtt_support.a"
  "libtt_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
