# Empty dependencies file for tt_support.
# This may be replaced when dependencies are built.
