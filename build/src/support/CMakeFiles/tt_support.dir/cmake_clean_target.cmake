file(REMOVE_RECURSE
  "libtt_support.a"
)
