file(REMOVE_RECURSE
  "libtt_sat.a"
)
