# Empty dependencies file for tt_sat.
# This may be replaced when dependencies are built.
