file(REMOVE_RECURSE
  "CMakeFiles/tt_sat.dir/dimacs.cpp.o"
  "CMakeFiles/tt_sat.dir/dimacs.cpp.o.d"
  "CMakeFiles/tt_sat.dir/solver.cpp.o"
  "CMakeFiles/tt_sat.dir/solver.cpp.o.d"
  "libtt_sat.a"
  "libtt_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
