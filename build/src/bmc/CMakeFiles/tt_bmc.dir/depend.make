# Empty dependencies file for tt_bmc.
# This may be replaced when dependencies are built.
