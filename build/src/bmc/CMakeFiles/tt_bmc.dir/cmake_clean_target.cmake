file(REMOVE_RECURSE
  "libtt_bmc.a"
)
