file(REMOVE_RECURSE
  "CMakeFiles/tt_bmc.dir/encoder.cpp.o"
  "CMakeFiles/tt_bmc.dir/encoder.cpp.o.d"
  "libtt_bmc.a"
  "libtt_bmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_bmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
