file(REMOVE_RECURSE
  "CMakeFiles/tt_core.dir/scenario_math.cpp.o"
  "CMakeFiles/tt_core.dir/scenario_math.cpp.o.d"
  "CMakeFiles/tt_core.dir/verifier.cpp.o"
  "CMakeFiles/tt_core.dir/verifier.cpp.o.d"
  "CMakeFiles/tt_core.dir/wcsup.cpp.o"
  "CMakeFiles/tt_core.dir/wcsup.cpp.o.d"
  "libtt_core.a"
  "libtt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
