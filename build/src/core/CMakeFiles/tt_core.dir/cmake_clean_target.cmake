file(REMOVE_RECURSE
  "libtt_core.a"
)
