# Empty compiler generated dependencies file for tt_tta.
# This may be replaced when dependencies are built.
