file(REMOVE_RECURSE
  "libtt_tta.a"
)
