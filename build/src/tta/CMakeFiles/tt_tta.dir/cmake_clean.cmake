file(REMOVE_RECURSE
  "CMakeFiles/tt_tta.dir/cluster.cpp.o"
  "CMakeFiles/tt_tta.dir/cluster.cpp.o.d"
  "CMakeFiles/tt_tta.dir/config.cpp.o"
  "CMakeFiles/tt_tta.dir/config.cpp.o.d"
  "CMakeFiles/tt_tta.dir/faulty_node.cpp.o"
  "CMakeFiles/tt_tta.dir/faulty_node.cpp.o.d"
  "CMakeFiles/tt_tta.dir/hub.cpp.o"
  "CMakeFiles/tt_tta.dir/hub.cpp.o.d"
  "CMakeFiles/tt_tta.dir/node.cpp.o"
  "CMakeFiles/tt_tta.dir/node.cpp.o.d"
  "CMakeFiles/tt_tta.dir/properties.cpp.o"
  "CMakeFiles/tt_tta.dir/properties.cpp.o.d"
  "CMakeFiles/tt_tta.dir/trace_printer.cpp.o"
  "CMakeFiles/tt_tta.dir/trace_printer.cpp.o.d"
  "libtt_tta.a"
  "libtt_tta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_tta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
