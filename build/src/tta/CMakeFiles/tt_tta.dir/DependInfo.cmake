
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tta/cluster.cpp" "src/tta/CMakeFiles/tt_tta.dir/cluster.cpp.o" "gcc" "src/tta/CMakeFiles/tt_tta.dir/cluster.cpp.o.d"
  "/root/repo/src/tta/config.cpp" "src/tta/CMakeFiles/tt_tta.dir/config.cpp.o" "gcc" "src/tta/CMakeFiles/tt_tta.dir/config.cpp.o.d"
  "/root/repo/src/tta/faulty_node.cpp" "src/tta/CMakeFiles/tt_tta.dir/faulty_node.cpp.o" "gcc" "src/tta/CMakeFiles/tt_tta.dir/faulty_node.cpp.o.d"
  "/root/repo/src/tta/hub.cpp" "src/tta/CMakeFiles/tt_tta.dir/hub.cpp.o" "gcc" "src/tta/CMakeFiles/tt_tta.dir/hub.cpp.o.d"
  "/root/repo/src/tta/node.cpp" "src/tta/CMakeFiles/tt_tta.dir/node.cpp.o" "gcc" "src/tta/CMakeFiles/tt_tta.dir/node.cpp.o.d"
  "/root/repo/src/tta/properties.cpp" "src/tta/CMakeFiles/tt_tta.dir/properties.cpp.o" "gcc" "src/tta/CMakeFiles/tt_tta.dir/properties.cpp.o.d"
  "/root/repo/src/tta/trace_printer.cpp" "src/tta/CMakeFiles/tt_tta.dir/trace_printer.cpp.o" "gcc" "src/tta/CMakeFiles/tt_tta.dir/trace_printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
