file(REMOVE_RECURSE
  "CMakeFiles/tt_bdd.dir/bdd.cpp.o"
  "CMakeFiles/tt_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/tt_bdd.dir/symbolic.cpp.o"
  "CMakeFiles/tt_bdd.dir/symbolic.cpp.o.d"
  "libtt_bdd.a"
  "libtt_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
