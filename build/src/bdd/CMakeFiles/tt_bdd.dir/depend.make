# Empty dependencies file for tt_bdd.
# This may be replaced when dependencies are built.
