file(REMOVE_RECURSE
  "libtt_bdd.a"
)
