file(REMOVE_RECURSE
  "libtt_kernel.a"
)
