# Empty compiler generated dependencies file for tt_kernel.
# This may be replaced when dependencies are built.
