file(REMOVE_RECURSE
  "CMakeFiles/tt_kernel.dir/expr.cpp.o"
  "CMakeFiles/tt_kernel.dir/expr.cpp.o.d"
  "CMakeFiles/tt_kernel.dir/packed_system.cpp.o"
  "CMakeFiles/tt_kernel.dir/packed_system.cpp.o.d"
  "CMakeFiles/tt_kernel.dir/system.cpp.o"
  "CMakeFiles/tt_kernel.dir/system.cpp.o.d"
  "CMakeFiles/tt_kernel.dir/ttalite.cpp.o"
  "CMakeFiles/tt_kernel.dir/ttalite.cpp.o.d"
  "libtt_kernel.a"
  "libtt_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tt_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
