
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/expr.cpp" "src/kernel/CMakeFiles/tt_kernel.dir/expr.cpp.o" "gcc" "src/kernel/CMakeFiles/tt_kernel.dir/expr.cpp.o.d"
  "/root/repo/src/kernel/packed_system.cpp" "src/kernel/CMakeFiles/tt_kernel.dir/packed_system.cpp.o" "gcc" "src/kernel/CMakeFiles/tt_kernel.dir/packed_system.cpp.o.d"
  "/root/repo/src/kernel/system.cpp" "src/kernel/CMakeFiles/tt_kernel.dir/system.cpp.o" "gcc" "src/kernel/CMakeFiles/tt_kernel.dir/system.cpp.o.d"
  "/root/repo/src/kernel/ttalite.cpp" "src/kernel/CMakeFiles/tt_kernel.dir/ttalite.cpp.o" "gcc" "src/kernel/CMakeFiles/tt_kernel.dir/ttalite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/tt_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
