#!/usr/bin/env python3
"""Validate a ttstart Chrome trace-event JSON file (--trace-out output).

Schema checked (the subset of the Trace Event Format the obs layer emits,
DESIGN.md §3.5):

  envelope   an object with "displayTimeUnit" and a "traceEvents" array
  every event has "ph", "pid", "tid", "ts"; "ts" is a non-negative number
             (fractional microseconds since tracer install)
  "X" events (complete spans) additionally carry "name", "cat" == "ttstart"
             and a non-negative "dur"
  "C" events (counters) carry "name" and args == {"value": <number>}
  "i" events (instants) carry "name" and scope "s"
  "M" events are thread_name metadata: one per tid, emitted before any of
             that thread's spans

Structural checks beyond field shape:
  - per tid, span end times (ts + dur) are monotone non-decreasing in file
    order (the per-thread buffers record spans at destruction, so a
    violation means buffer corruption or clock trouble);
  - per tid, spans form a proper nesting: sorting that thread's spans by
    (start, -dur) yields a stack discipline — a span that starts inside
    another must end inside it (Perfetto renders overlap-but-not-nested
    spans wrongly, so we reject them at the source);
  - every tid referenced by an event has a thread_name metadata record.

Usage: validate_trace.py TRACE.json [TRACE2.json ...]
Exit code 0 when every file passes, 1 otherwise (all violations listed).
"""

import json
import sys


def err(errors, path, msg):
    errors.append(f"{path}: {msg}")


def validate_file(path, errors):
    start_errors = len(errors)
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        err(errors, path, f"unreadable or invalid JSON: {e}")
        return False

    if not isinstance(doc, dict):
        err(errors, path, "top level must be an object")
        return False
    if "traceEvents" not in doc or not isinstance(doc["traceEvents"], list):
        err(errors, path, 'missing or non-array "traceEvents"')
        return False
    if not isinstance(doc.get("displayTimeUnit"), str):
        err(errors, path, 'missing "displayTimeUnit"')

    events = doc["traceEvents"]
    named_tids = set()
    spans_by_tid = {}  # tid -> list of (start, end) in file order

    for i, ev in enumerate(events):
        where = f"{path}: event {i}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "C", "i", "M"):
            errors.append(f"{where}: unexpected ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                errors.append(f"{where}: missing integer {key!r}")
        if ph == "M":
            if ev.get("name") != "thread_name":
                errors.append(f"{where}: metadata event must be thread_name")
            named_tids.add(ev.get("tid"))
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: missing non-negative ts")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing name")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X event needs non-negative dur")
                continue
            if ev.get("cat") != "ttstart":
                errors.append(f"{where}: X event cat must be 'ttstart'")
            spans_by_tid.setdefault(ev["tid"], []).append((ts, ts + dur))
        elif ph == "C":
            args = ev.get("args")
            if (not isinstance(args, dict) or set(args) != {"value"}
                    or not isinstance(args["value"], (int, float))):
                errors.append(f"{where}: C event needs args == {{'value': num}}")
        elif ph == "i":
            if ev.get("s") not in ("t", "p", "g"):
                errors.append(f"{where}: i event needs scope 's'")

    # Spans are recorded at destruction: end times must be monotone per tid.
    for tid, spans in spans_by_tid.items():
        prev_end = -1.0
        for start, end in spans:
            if end < prev_end:
                errors.append(
                    f"{path}: tid {tid}: span end {end} before previous end "
                    f"{prev_end} (buffer order broken)")
                break
            prev_end = end
        if tid not in named_tids:
            errors.append(f"{path}: tid {tid} has spans but no thread_name metadata")

        # Nesting: replay sorted spans against a stack.
        stack = []
        for start, end in sorted(spans, key=lambda s: (s[0], -(s[1] - s[0]))):
            while stack and start >= stack[-1]:
                stack.pop()
            if stack and end > stack[-1] + 1e-9:
                errors.append(
                    f"{path}: tid {tid}: span [{start}, {end}] overlaps but does "
                    f"not nest inside [.., {stack[-1]}]")
                break
            stack.append(end)

    return len(errors) == start_errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    total = 0
    for path in argv[1:]:
        if validate_file(path, errors):
            with open(path, "r", encoding="utf-8") as f:
                n = len(json.load(f)["traceEvents"])
            print(f"OK — {path}: {n} event(s)")
            total += n
    if errors:
        for e in errors:
            print(f"FAIL — {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
