#!/usr/bin/env python3
"""Docs-consistency checks, run in CI (docs job).

Four classes of drift this catches:

  1. Engine-name drift — the engine set documented in README.md must match
     what `parse_engine` / `to_string` in src/mc/engine.hpp actually accept.
     `parse_engine` and `to_string` must round-trip the same EngineKind set,
     every engine name from the header must appear backticked in README.md,
     and every `--engine a|b|c` alternation in README.md and the CLI header
     comment must list exactly the header's engine set.

  2. Reduction-name drift — same contract for the state-space reductions:
     every reduction name `parse_reduction` / `to_string(ReductionKind)`
     accepts must appear backticked in README.md, and every
     `--reduction a|b` alternation in README.md and the CLI header comment
     must list exactly the header's reduction set.

  2b. Store-name drift — same contract again for the explicit-state store
     backends: every store name `parse_store` / `to_string(StoreKind)`
     accepts must appear backticked in README.md, and every `--store a|b`
     alternation in README.md and the CLI header comment must list exactly
     the header's store set.

  3. Dangling section references — every "DESIGN.md §X.Y" referenced from
     CHANGES.md (the per-PR changelog) must exist as a heading in DESIGN.md.

  4. Broken intra-repo links — every relative markdown link target in the
     repo's *.md files must resolve to an existing file (anchors and
     external http/mailto links are skipped).

Usage: check_docs.py [REPO_ROOT]      (default: parent of this script)
Exit code 0 when everything is consistent, 1 otherwise (all failures listed).
"""

import os
import re
import sys


def fail(failures, msg):
    failures.append(msg)


def read(root, rel):
    with open(os.path.join(root, rel), "r", encoding="utf-8") as f:
        return f.read()


def check_engine_names(root, failures):
    header = read(root, "src/mc/engine.hpp")
    engines = [m for m in re.findall(
        r'case EngineKind::k\w+:\s*return "(\w+)";', header)]
    if not engines:
        fail(failures, "src/mc/engine.hpp: found no EngineKind names (regex drift?)")
        return
    # parse_engine and to_string must round-trip the same name set; an
    # engine added to one but not the other is exactly the drift this
    # catches (e.g. a new proof engine that to_string can print but the CLI
    # cannot select).
    parse_block = re.search(r"parse_engine\(.*?\n}", header, re.S)
    if not parse_block:
        fail(failures, "src/mc/engine.hpp: found no parse_engine body "
                       "(regex drift?)")
    else:
        parsed = re.findall(r"EngineKind::k\w+", parse_block.group(0))
        cased = re.findall(r"case (EngineKind::k\w+):", header)
        if sorted(set(parsed)) != sorted(set(cased)):
            fail(failures, f"src/mc/engine.hpp: parse_engine accepts "
                           f"{sorted(set(parsed))} but to_string names "
                           f"{sorted(set(cased))}")
    readme = read(root, "README.md")
    for name in engines:
        if f"`{name}`" not in readme and f"`--engine {name}" not in readme \
                and not re.search(r"`[^`]*\b" + re.escape(name) + r"\b[^`]*`", readme):
            fail(failures, f"README.md: engine '{name}' (src/mc/engine.hpp) "
                           f"never mentioned in backticks")
    # Every `--engine a|b|c` alternation in the docs must equal the real set.
    for rel in ("README.md", "examples/exhaustive_fault_simulation.cpp"):
        text = read(root, rel)
        for alt in re.findall(r"--engine[ <]+((?:\w+\\?\|)+\w+)", text):
            listed = alt.replace("\\", "").split("|")
            if sorted(listed) != sorted(engines):
                fail(failures, f"{rel}: '--engine {alt}' lists {listed}, but "
                               f"src/mc/engine.hpp accepts {engines}")


def check_reduction_names(root, failures):
    # Reduction names may contain '+' ("sym+por"), so the name class is
    # [\w+] rather than \w both here and in the alternation scan below.
    header = read(root, "src/mc/engine.hpp")
    reductions = [m for m in re.findall(
        r'case ReductionKind::k\w+:\s*return "([\w+]+)";', header)]
    if not reductions:
        fail(failures, "src/mc/engine.hpp: found no ReductionKind names "
                       "(regex drift?)")
        return
    # parse_reduction and to_string must round-trip the same name set; a
    # name added to one but not the other is exactly the drift this catches.
    parse_block = re.search(
        r"parse_reduction\(.*?\n}", header, re.S)
    if not parse_block:
        fail(failures, "src/mc/engine.hpp: found no parse_reduction body "
                       "(regex drift?)")
    else:
        parsed = re.findall(r"ReductionKind::k\w+", parse_block.group(0))
        cased = re.findall(r"case (ReductionKind::k\w+):", header)
        if sorted(set(parsed)) != sorted(set(cased)):
            fail(failures, f"src/mc/engine.hpp: parse_reduction accepts "
                           f"{sorted(set(parsed))} but to_string names "
                           f"{sorted(set(cased))}")
    readme = read(root, "README.md")
    for name in reductions:
        if f"`{name}`" not in readme \
                and not re.search(r"`[^`]*" + re.escape(name) + r"[^`]*`", readme):
            fail(failures, f"README.md: reduction '{name}' (src/mc/engine.hpp) "
                           f"never mentioned in backticks")
    # Every `--reduction a|b` alternation in the docs must equal the real set.
    for rel in ("README.md", "examples/exhaustive_fault_simulation.cpp"):
        text = read(root, rel)
        for alt in re.findall(r"--reduction[ <]+((?:[\w+]+\\?\|)+[\w+]+)", text):
            listed = alt.replace("\\", "").split("|")
            if sorted(listed) != sorted(reductions):
                fail(failures, f"{rel}: '--reduction {alt}' lists {listed}, but "
                               f"src/mc/engine.hpp accepts {reductions}")


def check_store_names(root, failures):
    # Store names may contain '-' ("lockfree-fp"), so the name class is
    # [\w-] rather than \w both here and in the alternation scan below.
    header = read(root, "src/mc/engine.hpp")
    stores = [m for m in re.findall(
        r'case StoreKind::k\w+:\s*return "([\w-]+)";', header)]
    if not stores:
        fail(failures, "src/mc/engine.hpp: found no StoreKind names "
                       "(regex drift?)")
        return
    readme = read(root, "README.md")
    for name in stores:
        if f"`{name}`" not in readme \
                and not re.search(r"`[^`]*\b" + re.escape(name) + r"\b[^`]*`", readme):
            fail(failures, f"README.md: store '{name}' (src/mc/engine.hpp) "
                           f"never mentioned in backticks")
    # Every `--store a|b` alternation in the docs must equal the real set.
    for rel in ("README.md", "examples/exhaustive_fault_simulation.cpp"):
        text = read(root, rel)
        for alt in re.findall(r"--store[ <]+((?:[\w-]+\\?\|)+[\w-]+)", text):
            listed = alt.replace("\\", "").split("|")
            if sorted(listed) != sorted(stores):
                fail(failures, f"{rel}: '--store {alt}' lists {listed}, but "
                               f"src/mc/engine.hpp accepts {stores}")


def check_design_sections(root, failures):
    changes = read(root, "CHANGES.md")
    design = read(root, "DESIGN.md")
    headings = set(re.findall(r"^#{1,6}\s+(\d+(?:\.\d+)*)[. ]", design, re.M))
    for sec in re.findall(r"DESIGN\.md\s+§(\d+(?:\.\d+)*)", changes):
        if sec not in headings:
            fail(failures, f"CHANGES.md: references DESIGN.md §{sec}, but "
                           f"DESIGN.md has no such heading")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in (".git", "build") and not d.startswith("build")]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.relpath(os.path.join(dirpath, name), root)


def check_markdown_links(root, failures):
    link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
    for rel in markdown_files(root):
        text = read(root, rel)
        # Strip fenced code blocks: their bracket/paren sequences are code.
        text = re.sub(r"```.*?```", "", text, flags=re.S)
        for target in link_re.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(os.path.join(root, os.path.dirname(rel), path))
            if not os.path.exists(resolved):
                fail(failures, f"{rel}: link target '{target}' does not exist")


def main(argv):
    root = os.path.abspath(argv[1]) if len(argv) > 1 else \
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    failures = []
    check_engine_names(root, failures)
    check_reduction_names(root, failures)
    check_store_names(root, failures)
    check_design_sections(root, failures)
    check_markdown_links(root, failures)
    if failures:
        for f in failures:
            print(f"FAIL — {f}", file=sys.stderr)
        return 1
    print(f"OK — docs consistent under {root}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
