#!/usr/bin/env python3
"""Validate a ttstart-bench report file (BENCH_results.json).

Accepts schema v1 through v7. v2 adds two optional per-record fields emitted
by symbolic-engine runs: `iterations` (image/BFS steps to the fixpoint) and
`peak_live_nodes` (peak live BDD nodes). v3 adds two more, emitted by
parallel OWCTY liveness runs: `trim_rounds` (trimming sweeps to the fixpoint)
and `residue_states` (goal-free states left alive afterwards). v4 adds the
symmetry-reduction columns: `reduction` ("none"/"sym"), `canon_ops`
(canonicalization operations on the emission path), `orbit_states` (orbit
representatives stored by a reduced run), `reduction_ratio`
(states(unreduced)/states(reduced) when the paired baseline ran), and the
caveat flag `possibly_one_core` (true when a multi-threaded row may have run
on a single hardware core, so its speedup is not meaningful). v5 adds the
explicit-store columns: `store` ("locked"/"lockfree"), `cas_retries`
(failed slot claims on the lock-free insert path), and `spill_bytes`
(compressed bytes evicted out of core). v6 extends the `reduction` names
with "por" and "sym+por" and adds the partial-order-reduction columns
(DESIGN.md 3.8): `ample_sets` (emissions whose independence gate was open),
`pruned_combos` (emissions redirected to the clamped-horizon
representative), and `proviso_fallbacks` (emissions declined into full
expansion). v7 extends the `store` names with "lockfree-fp" and adds the
out-of-core pipeline columns (DESIGN.md 3.9): `spill_sync_waits`
(synchronous barriers the write-behind pipeline had to take),
`spill_async_pages` (sealed pages handed to the I/O thread without
blocking), `fp_collisions` (genuine fingerprint collisions under
fingerprint-only mode), `reexpansions` (predecessor-path replays that
disambiguated a dropped-body match), and `resident_bytes` (store-resident
footprint at run end). v8 adds the SAT proof-engine columns (DESIGN.md
3.10): `solver_calls` (solve() invocations on the run's single incremental
solver — for bounded BMC exactly one per depth probed), `clauses_reused`
(learned clauses carried across those calls), `frames` (IC3 frame count /
k-induction unrolling depth), and `proof_obligations` (IC3 obligation-queue
pops). Optional numeric fields must be non-negative when present; all
optional fields are rejected under schemas older than the one that
introduced them.

Checks the envelope, the per-record field set and types, and basic value
sanity (non-negative counts/times, verdict non-empty, threads >= 1). With
--require, additionally fails unless every named bench contributed at least
one record — the CI bench-smoke job uses this to catch a bench binary that
silently stopped reporting. With --require-engine (a single name or a comma
list, repeatable), fails unless every named engine has at least one record —
CI uses `--require-engine sym` so the symbolic leg cannot silently drop out
of the comparison, and `--require-engine kind,ic3` so the proof engines
cannot silently drop out of the unbounded-proofs bench. With
--require-engine-for SUBSTR:ENGINE, fails unless at least one record whose
experiment name contains SUBSTR ran on ENGINE — CI uses
`--require-engine-for liveness:par` so liveness checking cannot silently
fall back off the parallel engine. With --require-reduction LIST (a comma
list of reduction names, e.g. `sym,por,sym+por`), fails unless every named
reduction has at least one record carrying its `canon_ops` and
`orbit_states` columns (por/sym+por rows must additionally carry the v6
`ample_sets`/`pruned_combos`/`proviso_fallbacks` columns) — CI uses this so
neither the symmetry-quotient nor the partial-order-reduced rows can
silently drop out of the sweep. With --require-store, fails unless at least
one record carries the named `store` — CI uses `--require-store lockfree`
so the lock-free store rows cannot silently drop out of the hot-path bench.

Exit code 0 on success, 1 on any violation (all violations are listed).
"""

import argparse
import json
import sys

REQUIRED_FIELDS = {
    "bench": str,
    "experiment": str,
    "engine": str,
    "threads": int,
    "states": int,
    "transitions": int,
    "seconds": (int, float),
    "states_per_sec": (int, float),
    "exhausted": bool,
    "verdict": str,
}

# Optional per-record fields by the schema version that introduced them;
# typed when present, rejected under older schemas.
OPTIONAL_FIELDS_V2 = {
    "iterations": int,
    "peak_live_nodes": int,
}
OPTIONAL_FIELDS_V3 = {
    **OPTIONAL_FIELDS_V2,
    "trim_rounds": int,
    "residue_states": int,
}
OPTIONAL_FIELDS_V4 = {
    **OPTIONAL_FIELDS_V3,
    "reduction": str,
    "canon_ops": int,
    "orbit_states": int,
    "reduction_ratio": (int, float),
    "possibly_one_core": bool,
}
OPTIONAL_FIELDS_V5 = {
    **OPTIONAL_FIELDS_V4,
    "store": str,
    "cas_retries": int,
    "spill_bytes": int,
}
OPTIONAL_FIELDS_V6 = {
    **OPTIONAL_FIELDS_V5,
    "ample_sets": int,
    "pruned_combos": int,
    "proviso_fallbacks": int,
}
OPTIONAL_FIELDS_V7 = {
    **OPTIONAL_FIELDS_V6,
    "spill_sync_waits": int,
    "spill_async_pages": int,
    "fp_collisions": int,
    "reexpansions": int,
    "resident_bytes": int,
}
OPTIONAL_FIELDS_V8 = {
    **OPTIONAL_FIELDS_V7,
    "solver_calls": int,
    "clauses_reused": int,
    "frames": int,
    "proof_obligations": int,
}

REDUCTION_NAMES_V4 = ("none", "sym")
REDUCTION_NAMES_V6 = ("none", "sym", "por", "sym+por")
POR_REDUCTIONS = ("por", "sym+por")
STORE_NAMES_V5 = ("locked", "lockfree")
STORE_NAMES_V7 = ("locked", "lockfree", "lockfree-fp")

SCHEMAS = (
    "ttstart-bench-v1",
    "ttstart-bench-v2",
    "ttstart-bench-v3",
    "ttstart-bench-v4",
    "ttstart-bench-v5",
    "ttstart-bench-v6",
    "ttstart-bench-v7",
    "ttstart-bench-v8",
)


def validate(doc, require, require_engines, require_engine_for, require_reduction,
             require_stores):
    errors = []
    if not isinstance(doc, dict):
        return ["top level is not a JSON object"]
    schema = doc.get("schema")
    if schema not in SCHEMAS:
        errors.append(f"schema is {schema!r}, expected one of {SCHEMAS!r}")
    if schema == "ttstart-bench-v8":
        allowed_optional = OPTIONAL_FIELDS_V8
    elif schema == "ttstart-bench-v7":
        allowed_optional = OPTIONAL_FIELDS_V7
    elif schema == "ttstart-bench-v6":
        allowed_optional = OPTIONAL_FIELDS_V6
    elif schema == "ttstart-bench-v5":
        allowed_optional = OPTIONAL_FIELDS_V5
    elif schema == "ttstart-bench-v4":
        allowed_optional = OPTIONAL_FIELDS_V4
    elif schema == "ttstart-bench-v3":
        allowed_optional = OPTIONAL_FIELDS_V3
    elif schema == "ttstart-bench-v2":
        allowed_optional = OPTIONAL_FIELDS_V2
    else:
        allowed_optional = {}
    reduction_names = (
        REDUCTION_NAMES_V6
        if schema in ("ttstart-bench-v6", "ttstart-bench-v7", "ttstart-bench-v8")
        else REDUCTION_NAMES_V4
    )
    store_names = (
        STORE_NAMES_V7
        if schema in ("ttstart-bench-v7", "ttstart-bench-v8")
        else STORE_NAMES_V5
    )
    results = doc.get("results")
    if not isinstance(results, list):
        return errors + ["'results' is missing or not an array"]
    if not results:
        errors.append("'results' is empty")

    seen_benches = set()
    seen_engines = set()
    seen_experiment_engines = set()
    seen_reductions = set()
    seen_stores = set()
    for i, rec in enumerate(results):
        where = f"results[{i}]"
        if not isinstance(rec, dict):
            errors.append(f"{where}: not an object")
            continue
        for field, ftype in REQUIRED_FIELDS.items():
            if field not in rec:
                errors.append(f"{where}: missing field '{field}'")
            elif not isinstance(rec[field], ftype) or (
                ftype is int and isinstance(rec[field], bool)
            ):
                errors.append(
                    f"{where}: field '{field}' has type "
                    f"{type(rec[field]).__name__}, expected {ftype}"
                )
        for field, ftype in allowed_optional.items():
            if field not in rec:
                continue
            v = rec[field]
            if not isinstance(v, ftype) or (
                ftype is not bool and isinstance(v, bool)
            ):
                errors.append(
                    f"{where}: optional field '{field}' has type "
                    f"{type(v).__name__}, expected {ftype}"
                )
            elif field == "reduction" and v not in reduction_names:
                errors.append(
                    f"{where}: reduction is {v!r}, "
                    f"expected one of {reduction_names!r}"
                )
            elif field == "store" and v not in store_names:
                errors.append(
                    f"{where}: store is {v!r}, "
                    f"expected one of {store_names!r}"
                )
            elif isinstance(v, (int, float)) and not isinstance(v, bool) and v < 0:
                errors.append(f"{where}: optional field '{field}' < 0")
        unknown = set(rec) - set(REQUIRED_FIELDS) - set(allowed_optional)
        if unknown:
            errors.append(f"{where}: unknown field(s) {sorted(unknown)}")
        if isinstance(rec.get("engine"), str):
            seen_engines.add(rec["engine"])
            if isinstance(rec.get("experiment"), str):
                seen_experiment_engines.add((rec["experiment"], rec["engine"]))
        if isinstance(rec.get("bench"), str):
            seen_benches.add(rec["bench"])
            exp = rec.get("experiment")
            if isinstance(rec.get("threads"), int) and rec["threads"] < 1:
                errors.append(f"{where} ({exp}): threads < 1")
            for field in ("states", "transitions", "seconds", "states_per_sec"):
                v = rec.get(field)
                if isinstance(v, (int, float)) and v < 0:
                    errors.append(f"{where} ({exp}): {field} < 0")
            if rec.get("experiment") == "" or rec.get("verdict") == "":
                errors.append(f"{where}: empty experiment or verdict")
        reduction = rec.get("reduction")
        if (
            isinstance(reduction, str)
            and reduction != "none"
            and isinstance(rec.get("canon_ops"), int)
            and isinstance(rec.get("orbit_states"), int)
        ):
            # por/sym+por rows only count as present when they carry the v6
            # partial-order columns too — a row that lost them would hide a
            # stats-plumbing regression.
            if reduction not in POR_REDUCTIONS or all(
                isinstance(rec.get(f), int)
                for f in ("ample_sets", "pruned_combos", "proviso_fallbacks")
            ):
                seen_reductions.add(reduction)
        if isinstance(rec.get("store"), str):
            seen_stores.add(rec["store"])

    for bench in require:
        if bench not in seen_benches:
            errors.append(f"required bench '{bench}' contributed no records")
    for engine in require_engines:
        if engine not in seen_engines:
            errors.append(f"required engine '{engine}' contributed no records")
    for spec in require_engine_for:
        substr, _, engine = spec.partition(":")
        if not substr or not engine:
            errors.append(f"--require-engine-for {spec!r}: expected SUBSTR:ENGINE")
            continue
        if not any(
            substr in exp and eng == engine for exp, eng in seen_experiment_engines
        ):
            errors.append(
                f"no record with {substr!r} in its experiment ran on engine "
                f"'{engine}'"
            )
    for name in require_reduction:
        if name not in REDUCTION_NAMES_V6 or name == "none":
            errors.append(
                f"--require-reduction: unknown reduction {name!r}, expected "
                f"one of {[n for n in REDUCTION_NAMES_V6 if n != 'none']!r}"
            )
        elif name not in seen_reductions:
            errors.append(
                f"no record with reduction {name!r} carrying its reduction "
                "columns (--require-reduction)"
            )
    for store in require_stores:
        if store not in seen_stores:
            errors.append(f"required store '{store}' contributed no records")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="path to BENCH_results.json")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="BENCH",
        help="bench name that must have >= 1 record (repeatable)",
    )
    parser.add_argument(
        "--require-engine",
        action="append",
        default=[],
        metavar="ENGINE[,ENGINE...]",
        help="engine name(s) that must each have >= 1 record "
        "(repeatable; commas separate names within one flag)",
    )
    parser.add_argument(
        "--require-engine-for",
        action="append",
        default=[],
        metavar="SUBSTR:ENGINE",
        help="require >= 1 record whose experiment contains SUBSTR to have "
        "run on ENGINE (repeatable)",
    )
    parser.add_argument(
        "--require-reduction",
        default="",
        metavar="LIST",
        help="comma list of reduction names (e.g. 'sym,por,sym+por'); each "
        "must have >= 1 record carrying its reduction columns",
    )
    parser.add_argument(
        "--require-store",
        action="append",
        default=[],
        metavar="STORE",
        help="store name ('locked'/'lockfree'/'lockfree-fp') that must have "
        ">= 1 record (repeatable)",
    )
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{args.report}: {e}", file=sys.stderr)
        return 1

    errors = validate(
        doc,
        args.require,
        [e for spec in args.require_engine for e in spec.split(",") if e],
        args.require_engine_for,
        [n for n in args.require_reduction.split(",") if n],
        args.require_store,
    )
    if errors:
        for e in errors:
            print(f"{args.report}: {e}", file=sys.stderr)
        print(f"{len(errors)} violation(s)", file=sys.stderr)
        return 1

    n = len(doc["results"])
    benches = len({r["bench"] for r in doc["results"]})
    print(f"{args.report}: OK — {n} record(s) from {benches} bench(es)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
