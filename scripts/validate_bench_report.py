#!/usr/bin/env python3
"""Validate a ttstart-bench-v1 report file (BENCH_results.json).

Checks the envelope, the per-record field set and types, and basic value
sanity (non-negative counts/times, verdict non-empty, threads >= 1). With
--require, additionally fails unless every named bench contributed at least
one record — the CI bench-smoke job uses this to catch a bench binary that
silently stopped reporting.

Exit code 0 on success, 1 on any violation (all violations are listed).
"""

import argparse
import json
import sys

REQUIRED_FIELDS = {
    "bench": str,
    "experiment": str,
    "engine": str,
    "threads": int,
    "states": int,
    "transitions": int,
    "seconds": (int, float),
    "states_per_sec": (int, float),
    "exhausted": bool,
    "verdict": str,
}

SCHEMA = "ttstart-bench-v1"


def validate(doc, require):
    errors = []
    if not isinstance(doc, dict):
        return ["top level is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    results = doc.get("results")
    if not isinstance(results, list):
        return errors + ["'results' is missing or not an array"]
    if not results:
        errors.append("'results' is empty")

    seen_benches = set()
    for i, rec in enumerate(results):
        where = f"results[{i}]"
        if not isinstance(rec, dict):
            errors.append(f"{where}: not an object")
            continue
        for field, ftype in REQUIRED_FIELDS.items():
            if field not in rec:
                errors.append(f"{where}: missing field '{field}'")
            elif not isinstance(rec[field], ftype) or (
                ftype is int and isinstance(rec[field], bool)
            ):
                errors.append(
                    f"{where}: field '{field}' has type "
                    f"{type(rec[field]).__name__}, expected {ftype}"
                )
        unknown = set(rec) - set(REQUIRED_FIELDS)
        if unknown:
            errors.append(f"{where}: unknown field(s) {sorted(unknown)}")
        if isinstance(rec.get("bench"), str):
            seen_benches.add(rec["bench"])
            exp = rec.get("experiment")
            if isinstance(rec.get("threads"), int) and rec["threads"] < 1:
                errors.append(f"{where} ({exp}): threads < 1")
            for field in ("states", "transitions", "seconds", "states_per_sec"):
                v = rec.get(field)
                if isinstance(v, (int, float)) and v < 0:
                    errors.append(f"{where} ({exp}): {field} < 0")
            if rec.get("experiment") == "" or rec.get("verdict") == "":
                errors.append(f"{where}: empty experiment or verdict")

    for bench in require:
        if bench not in seen_benches:
            errors.append(f"required bench '{bench}' contributed no records")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", help="path to BENCH_results.json")
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="BENCH",
        help="bench name that must have >= 1 record (repeatable)",
    )
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{args.report}: {e}", file=sys.stderr)
        return 1

    errors = validate(doc, args.require)
    if errors:
        for e in errors:
            print(f"{args.report}: {e}", file=sys.stderr)
        print(f"{len(errors)} violation(s)", file=sys.stderr)
        return 1

    n = len(doc["results"])
    benches = len({r["bench"] for r in doc["results"]})
    print(f"{args.report}: OK — {n} record(s) from {benches} bench(es)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
