// Unit tests for the unbounded proof engines (k-induction and IC3/PDR,
// DESIGN.md §3.10): PROVED verdicts on invariants plain BMC can only fail
// to refute, exact-depth counterexamples, trace validity against the
// interpreter semantics, frame convergence, and the incremental-solver
// statistics the bench schema exposes.
#include <gtest/gtest.h>

#include "bmc/encoder.hpp"
#include "bmc/ic3.hpp"
#include "bmc/kinduction.hpp"
#include "kernel/packed_system.hpp"
#include "kernel/ttalite.hpp"
#include "mc/reachability.hpp"

namespace tt::bmc {
namespace {

kernel::System make_counter(int m, bool can_pause) {
  kernel::System s;
  auto& e = s.exprs();
  const kernel::VarId c = s.add_var("c", m, 0);
  const int g = s.add_group("counter", false);
  const kernel::ExprId always = e.ge_const(e.var(c), 0);
  s.add_command(g, always, {{c, e.add_mod(e.var(c), 1, m)}});
  if (can_pause) s.add_command(g, always, {{c, e.var(c)}});
  return s;
}

/// Counter that saturates at 2 (then stutters): "a != 3" is a true
/// invariant that bounded checking can never certify.
kernel::System make_saturating_counter() {
  kernel::System s;
  auto& e = s.exprs();
  const kernel::VarId a = s.add_var("a", 4, 0);
  const int g = s.add_group("g", /*else_stutter=*/true);
  s.add_command(g, e.lt_const(e.var(a), 2), {{a, e.add_mod(e.var(a), 1, 4)}});
  return s;
}

/// Reachable states {0..3}; the unreachable tail 4..m-1 forms a long chain
/// (c >= 4 keeps incrementing) so pure induction needs many frames while
/// the true reachability diameter stays 3.
kernel::System make_chain_with_unreachable_tail(int m) {
  kernel::System s;
  auto& e = s.exprs();
  const kernel::VarId c = s.add_var("c", m, 0);
  const int g = s.add_group("g", /*else_stutter=*/true);
  s.add_command(g, e.lt_const(e.var(c), 3), {{c, e.add_mod(e.var(c), 1, m)}});
  s.add_command(g, e.ge_const(e.var(c), 4), {{c, e.add_mod(e.var(c), 1, m)}});
  return s;
}

void expect_trace_is_real(const kernel::System& system,
                          const std::vector<std::vector<int>>& trace) {
  for (std::size_t t = 0; t + 1 < trace.size(); ++t) {
    bool found = false;
    system.successor_valuations(trace[t], [&](const std::vector<int>& next) {
      if (next == trace[t + 1]) found = true;
    });
    EXPECT_TRUE(found) << "trace step " << t << " is not a model transition";
  }
}

TEST(KInduction, ProvesSaturatingInvariantByPureInduction) {
  kernel::System s = make_saturating_counter();
  auto& e = s.exprs();
  const kernel::ExprId never3 = e.lnot(e.eq_const(e.var(0), 3));
  KindOptions opt;
  opt.diameter_state_budget = 0;  // no fallback: force the inductive step
  auto r = check_invariant_kind(s, never3, opt);
  EXPECT_EQ(r.verdict, ProofVerdict::kProved);
  EXPECT_FALSE(r.via_diameter);
  EXPECT_LE(r.depth, 2);
  EXPECT_GT(r.solver_calls, 0u);
}

TEST(KInduction, RefutesAtExactMinimalDepth) {
  kernel::System s = make_counter(10, false);
  auto& e = s.exprs();
  const kernel::ExprId never7 = e.lnot(e.eq_const(e.var(0), 7));
  auto r = check_invariant_kind(s, never7);
  ASSERT_EQ(r.verdict, ProofVerdict::kViolated);
  EXPECT_EQ(r.depth, 7);
  ASSERT_EQ(r.trace.size(), 8u);
  for (int t = 0; t <= 7; ++t) EXPECT_EQ(r.trace[static_cast<std::size_t>(t)][0], t);
  expect_trace_is_real(s, r.trace);
}

TEST(KInduction, DiameterFallbackClosesNonInductiveInvariant) {
  // "c != 6" holds (6 is in the unreachable tail) but is not inductive at
  // small k: the tail chain 4 -> 5 -> 6 provides spurious CTI paths. The
  // completeness threshold (BFS diameter = 3) closes the proof.
  kernel::System s = make_chain_with_unreachable_tail(32);
  auto& e = s.exprs();
  const kernel::ExprId never6 = e.lnot(e.eq_const(e.var(0), 6));
  KindOptions opt;
  opt.diameter_after_k = 0;  // compute the threshold immediately
  auto r = check_invariant_kind(s, never6, opt);
  EXPECT_EQ(r.verdict, ProofVerdict::kProved);
  EXPECT_TRUE(r.via_diameter);
  EXPECT_EQ(r.depth, 3);  // == the reachability diameter

  // The same proof closes by pure induction too (the tail chain has a dead
  // end), just without the via_diameter shortcut.
  KindOptions no_fallback;
  no_fallback.diameter_state_budget = 0;
  auto r2 = check_invariant_kind(s, never6, no_fallback);
  EXPECT_EQ(r2.verdict, ProofVerdict::kProved);
  EXPECT_FALSE(r2.via_diameter);
}

TEST(Ic3, ProvesSaturatingInvariantWithConvergedFrames) {
  kernel::System s = make_saturating_counter();
  auto& e = s.exprs();
  const kernel::ExprId never3 = e.lnot(e.eq_const(e.var(0), 3));
  auto r = check_invariant_ic3(s, never3);
  EXPECT_EQ(r.verdict, ProofVerdict::kProved);
  EXPECT_GE(r.frames, 2u);  // convergence needs at least F_0, F_1
  EXPECT_GT(r.solver_calls, 0u);
}

TEST(Ic3, RefutesCounterWithConcreteTrace) {
  kernel::System s = make_counter(10, false);
  auto& e = s.exprs();
  const kernel::ExprId never7 = e.lnot(e.eq_const(e.var(0), 7));
  auto r = check_invariant_ic3(s, never7);
  ASSERT_EQ(r.verdict, ProofVerdict::kViolated);
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.depth, static_cast<int>(r.trace.size()) - 1);
  // The counter is deterministic, so the obligation chain is the real run.
  EXPECT_EQ(r.trace.front()[0], 0);
  EXPECT_EQ(r.trace.back()[0], 7);
  expect_trace_is_real(s, r.trace);
}

TEST(Ic3, ViolationInInitialState) {
  kernel::System s = make_counter(4, false);
  auto& e = s.exprs();
  const kernel::ExprId not_zero = e.lnot(e.eq_const(e.var(0), 0));
  auto r = check_invariant_ic3(s, not_zero);
  ASSERT_EQ(r.verdict, ProofVerdict::kViolated);
  EXPECT_EQ(r.depth, 0);
}

TEST(Ic3, ProvesChainInvariantWithoutDiameterCrutch) {
  // The same non-inductive invariant the k-induction fallback needed:
  // IC3's relative induction handles it natively.
  kernel::System s = make_chain_with_unreachable_tail(32);
  auto& e = s.exprs();
  const kernel::ExprId never6 = e.lnot(e.eq_const(e.var(0), 6));
  auto r = check_invariant_ic3(s, never6);
  EXPECT_EQ(r.verdict, ProofVerdict::kProved);
  EXPECT_GT(r.proof_obligations, 0u);
}

TEST(ProofEngines, AgreeWithExplicitSearchOnTtaLite) {
  // Violating configuration (babbling fault): both engines must refute;
  // k-induction's base instance gives the minimal depth, IC3's trace must
  // still be a real run ending in a bad state.
  kernel::TtaLiteConfig bad;
  bad.n = 3;
  bad.init_window = 2;
  bad.faulty_node = 0;
  bad.fault_degree = 3;
  kernel::TtaLite model(bad);

  const kernel::PackedSystem ps(model.system());
  auto explicit_result = mc::check_invariant(ps, [&](const kernel::PackedSystem::State& s) {
    return model.safety(ps.unpack(s));
  });
  ASSERT_EQ(explicit_result.verdict, mc::Verdict::kViolated);
  const int explicit_depth = static_cast<int>(explicit_result.trace.size()) - 1;

  auto kind = check_invariant_kind(model.system(), model.safety_expr());
  ASSERT_EQ(kind.verdict, ProofVerdict::kViolated);
  EXPECT_EQ(kind.depth, explicit_depth);
  expect_trace_is_real(model.system(), kind.trace);

  auto ic3 = check_invariant_ic3(model.system(), model.safety_expr());
  ASSERT_EQ(ic3.verdict, ProofVerdict::kViolated);
  EXPECT_GE(ic3.depth, explicit_depth);  // IC3 traces need not be minimal
  ASSERT_FALSE(ic3.trace.empty());
  EXPECT_FALSE(model.safety(ic3.trace.back()));
  expect_trace_is_real(model.system(), ic3.trace);
}

TEST(ProofEngines, ProveFailSilentTtaLiteSafety) {
  // Fail-silent configuration: safety genuinely holds (ttalite tests verify
  // this by exhaustive search); the proof engines must return PROVED, which
  // no bounded run can.
  kernel::TtaLiteConfig safe;
  safe.n = 3;
  safe.init_window = 2;
  safe.faulty_node = 0;
  safe.fault_degree = 1;
  kernel::TtaLite model(safe);

  auto kind = check_invariant_kind(model.system(), model.safety_expr());
  EXPECT_EQ(kind.verdict, ProofVerdict::kProved);

  auto ic3 = check_invariant_ic3(model.system(), model.safety_expr());
  EXPECT_EQ(ic3.verdict, ProofVerdict::kProved);
}

TEST(IncrementalBmc, OneSolverInstanceAcrossDepths) {
  // §5.2 bench contract: the bounded engine probes every depth with a
  // single incremental solver — one solve call per depth, learned clauses
  // carried between them.
  kernel::TtaLiteConfig cfg;
  cfg.n = 3;
  cfg.init_window = 2;
  cfg.faulty_node = 0;
  cfg.fault_degree = 3;
  kernel::TtaLite model(cfg);
  auto r = check_invariant_bounded(model.system(), model.safety_expr(), 25);
  ASSERT_TRUE(r.violation_found);
  EXPECT_EQ(r.solver_calls, static_cast<std::uint64_t>(r.depth) + 1);
  EXPECT_GT(r.clauses_reused, 0u);
}

}  // namespace
}  // namespace tt::bmc
