#include "bmc/encoder.hpp"

#include <gtest/gtest.h>

#include "kernel/packed_system.hpp"
#include "kernel/ttalite.hpp"
#include "mc/reachability.hpp"

namespace tt::bmc {
namespace {

kernel::System make_counter(int m, bool can_pause) {
  kernel::System s;
  auto& e = s.exprs();
  const kernel::VarId c = s.add_var("c", m, 0);
  const int g = s.add_group("counter", false);
  const kernel::ExprId always = e.ge_const(e.var(c), 0);
  s.add_command(g, always, {{c, e.add_mod(e.var(c), 1, m)}});
  if (can_pause) s.add_command(g, always, {{c, e.var(c)}});
  return s;
}

TEST(Bmc, FindsShallowViolationAtExactDepth) {
  kernel::System s = make_counter(10, false);
  auto& e = s.exprs();
  const kernel::ExprId never7 = e.lnot(e.eq_const(e.var(0), 7));
  auto r = check_invariant_bounded(s, never7, 20);
  ASSERT_TRUE(r.violation_found);
  EXPECT_EQ(r.depth, 7);  // counter reaches 7 after exactly 7 steps
  ASSERT_EQ(r.trace.size(), 8u);
  for (int t = 0; t <= 7; ++t) EXPECT_EQ(r.trace[static_cast<std::size_t>(t)][0], t);
}

TEST(Bmc, ReportsNoViolationWithinBound) {
  kernel::System s = make_counter(10, false);
  auto& e = s.exprs();
  const kernel::ExprId never7 = e.lnot(e.eq_const(e.var(0), 7));
  auto r = check_invariant_bounded(s, never7, 5);  // too shallow
  EXPECT_FALSE(r.violation_found);
  EXPECT_EQ(r.depth, -1);
}

TEST(Bmc, ViolationInInitialState) {
  kernel::System s = make_counter(4, false);
  auto& e = s.exprs();
  const kernel::ExprId not_zero = e.lnot(e.eq_const(e.var(0), 0));
  auto r = check_invariant_bounded(s, not_zero, 3);
  ASSERT_TRUE(r.violation_found);
  EXPECT_EQ(r.depth, 0);
}

TEST(Bmc, NondeterministicChoicesExplored) {
  // With the pause command the counter can dawdle; the shortest route to 3
  // is still 3 steps, and BMC must find exactly that.
  kernel::System s = make_counter(6, true);
  auto& e = s.exprs();
  const kernel::ExprId never3 = e.lnot(e.eq_const(e.var(0), 3));
  auto r = check_invariant_bounded(s, never3, 10);
  ASSERT_TRUE(r.violation_found);
  EXPECT_EQ(r.depth, 3);
}

TEST(Bmc, TraceStepsAreRealTransitions) {
  kernel::TtaLiteConfig cfg;
  cfg.n = 3;
  cfg.init_window = 2;
  cfg.faulty_node = 0;
  cfg.fault_degree = 2;  // babbling node: safety is violated (see ttalite tests)
  kernel::TtaLite model(cfg);
  auto r = check_invariant_bounded(model.system(), model.safety_expr(), 25);
  ASSERT_TRUE(r.violation_found);
  EXPECT_FALSE(model.safety(r.trace.back()));
  // Validate every step against the interpreter semantics.
  for (std::size_t t = 0; t + 1 < r.trace.size(); ++t) {
    bool found = false;
    model.system().successor_valuations(r.trace[t], [&](const std::vector<int>& next) {
      if (next == r.trace[t + 1]) found = true;
    });
    EXPECT_TRUE(found) << "BMC trace step " << t << " is not a model transition";
  }
}

TEST(Bmc, DepthAgreesWithExplicitBfs) {
  // The explicit BFS produces minimal counterexamples; BMC's first SAT depth
  // must coincide (paper §5.2 compares exactly these two engines).
  kernel::TtaLiteConfig cfg;
  cfg.n = 3;
  cfg.init_window = 2;
  cfg.faulty_node = 0;
  cfg.fault_degree = 3;
  kernel::TtaLite model(cfg);

  const kernel::PackedSystem ps(model.system());
  auto explicit_result = mc::check_invariant(ps, [&](const kernel::PackedSystem::State& s) {
    return model.safety(ps.unpack(s));
  });
  ASSERT_EQ(explicit_result.verdict, mc::Verdict::kViolated);
  const int explicit_depth = static_cast<int>(explicit_result.trace.size()) - 1;

  auto r = check_invariant_bounded(model.system(), model.safety_expr(), explicit_depth + 3);
  ASSERT_TRUE(r.violation_found);
  EXPECT_EQ(r.depth, explicit_depth);
}

TEST(Bmc, StutterSemantics) {
  // A group whose guard dies must stutter (else_stutter) and keep its
  // variable; BMC must model that frame rule.
  kernel::System s;
  auto& e = s.exprs();
  const kernel::VarId a = s.add_var("a", 4, 0);
  const int g = s.add_group("g", /*else_stutter=*/true);
  s.add_command(g, e.lt_const(e.var(a), 2), {{a, e.add_mod(e.var(a), 1, 4)}});
  // a climbs to 2 then freezes; "a != 3" holds at every depth.
  const kernel::ExprId never3 = e.lnot(e.eq_const(e.var(a), 3));
  auto r = check_invariant_bounded(s, never3, 8);
  EXPECT_FALSE(r.violation_found);
  // But "a != 2" is violated at depth 2.
  const kernel::ExprId never2 = e.lnot(e.eq_const(e.var(a), 2));
  auto r2 = check_invariant_bounded(s, never2, 8);
  ASSERT_TRUE(r2.violation_found);
  EXPECT_EQ(r2.depth, 2);
}

}  // namespace
}  // namespace tt::bmc
