// Concurrency tests for the tracing layer, run under ThreadSanitizer in CI
// (tsan job): many threads appending spans/counters to their own buffers
// while the owner thread drains concurrently, plus the real parallel
// engines emitting worker spans at 4 threads. The SPMC publication contract
// (release on the chunk count, acquire in snapshot) is exactly what TSan
// would flag if it regressed.
#include <gtest/gtest.h>

#include <atomic>
#include <string_view>
#include <thread>
#include <vector>

#include "core/verifier.hpp"
#include "obs/trace.hpp"

namespace {

using tt::obs::Span;
using tt::obs::Tracer;

TEST(ObsConcurrencyTest, ManyThreadsEmitWhileDraining) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 2000;

  Tracer tracer;
  tracer.install();

  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    // Concurrent drain is allowed (it may observe a prefix per thread).
    while (!stop.load(std::memory_order_relaxed)) {
      (void)tracer.event_count();
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span s("work");
        s.set_arg("i", i);
        if ((i & 63) == 0) tt::obs::emit_counter("progress", i);
      }
      (void)t;
      (void)tracer;
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  drainer.join();
  tracer.uninstall();

  // After the join every event is published: exact totals, per thread.
  constexpr std::size_t kCountersPerThread = (kSpansPerThread + 63) / 64;
  std::size_t span_events = 0, counter_events = 0, emitting_threads = 0;
  for (const auto& te : tracer.drain()) {
    std::size_t thread_spans = 0;
    for (const auto& e : te.events) {
      if (e.kind == tt::obs::EventKind::kSpan) ++thread_spans, ++span_events;
      if (e.kind == tt::obs::EventKind::kCounter) ++counter_events;
    }
    if (!te.events.empty()) {
      ++emitting_threads;
      EXPECT_EQ(thread_spans, static_cast<std::size_t>(kSpansPerThread));
    }
  }
  EXPECT_EQ(emitting_threads, static_cast<std::size_t>(kThreads));
  EXPECT_EQ(span_events, static_cast<std::size_t>(kThreads) * kSpansPerThread);
  EXPECT_EQ(counter_events, static_cast<std::size_t>(kThreads) * kCountersPerThread);
}

TEST(ObsConcurrencyTest, SequentialTracerSessionsDoNotLeakThreads) {
  // A second tracer after the first must start from an empty buffer set:
  // thread registrations are per-tracer (generation-keyed), not global.
  for (int round = 0; round < 3; ++round) {
    Tracer tracer;
    tracer.install();
    std::thread t([] { Span s("round"); });
    t.join();
    tracer.uninstall();
    std::size_t spans = 0;
    for (const auto& te : tracer.drain()) spans += te.events.size();
    EXPECT_EQ(spans, 1u) << "round " << round;
  }
}

// The real workload TSan needs to see: the parallel BFS engine's workers
// emitting bfs.expand/bfs.drain spans into their thread buffers while the
// coordinator runs bfs.level ManualSpans, then the OWCTY engine doing the
// same with its trim rounds.
TEST(ObsConcurrencyTest, ParallelEnginesEmitUnderTracing) {
  // n = 4 at the fig6 window: frontiers grow past the parallel engine's
  // serial-fallback threshold (128 states/worker), so the workers really
  // run and emit into their own buffers.
  tt::tta::ClusterConfig cfg;
  cfg.n = 4;
  cfg.faulty_node = 0;
  cfg.fault_degree = 6;
  cfg.init_window = 4;
  cfg.hub_init_window = 4;

  tt::core::VerifyOptions opts;
  opts.engine = tt::mc::EngineKind::kParallel;
  opts.threads = 4;

  Tracer tracer;
  tracer.install();
  const auto safety = tt::core::verify(cfg, tt::core::Lemma::kSafety, opts);
  const auto liveness = tt::core::verify(cfg, tt::core::Lemma::kLiveness, opts);
  tracer.uninstall();

  EXPECT_TRUE(safety.holds);
  EXPECT_TRUE(liveness.holds);

  bool saw_expand = false, saw_trim = false;
  std::size_t emitting_threads = 0;
  for (const auto& te : tracer.drain()) {
    if (!te.events.empty()) ++emitting_threads;
    for (const auto& e : te.events) {
      if (e.kind != tt::obs::EventKind::kSpan) continue;
      if (std::string_view(e.name) == "bfs.expand") saw_expand = true;
      if (std::string_view(e.name) == "owcty.trim_round") saw_trim = true;
    }
  }
  EXPECT_TRUE(saw_expand);
  EXPECT_TRUE(saw_trim);
  EXPECT_GE(emitting_threads, 2u);  // coordinator + at least one worker
}

}  // namespace
