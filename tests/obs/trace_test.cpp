// Round-trip tests for the tracing layer (DESIGN.md §3.5): spans land in
// the tracer in per-thread order with monotone end times and proper
// nesting, the Chrome trace-event exporter writes the schema
// scripts/validate_trace.py checks, and installing a tracer changes no
// verdict or count of a real verification run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/verifier.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"

namespace {

using tt::obs::ManualSpan;
using tt::obs::Span;
using tt::obs::ThreadEvents;
using tt::obs::TraceEvent;
using tt::obs::Tracer;

std::vector<TraceEvent> own_thread_events(const Tracer& tracer) {
  std::vector<ThreadEvents> all = tracer.drain();
  for (auto& te : all) {
    if (!te.events.empty()) return te.events;
  }
  return {};
}

TEST(TraceTest, DisabledByDefault) {
  EXPECT_FALSE(tt::obs::enabled());
  // All emission paths must be safe no-ops without a tracer.
  {
    Span s("noop");
    s.set_arg("x", 1);
  }
  tt::obs::emit_counter("noop", 1.0);
  tt::obs::emit_instant("noop");
  EXPECT_EQ(tt::obs::now_ns(), 0u);
}

TEST(TraceTest, SpansNestAndTimestampsAreMonotone) {
  Tracer tracer;
  tracer.install();
  {
    Span outer("outer");
    outer.set_arg("depth", 3);
    {
      Span inner("inner");
      inner.set_detail("first");
    }
    { Span inner2("inner2"); }
  }
  tt::obs::emit_counter("frontier", 42.0);
  tracer.uninstall();

  const auto events = own_thread_events(tracer);
  ASSERT_EQ(events.size(), 4u);

  // Spans are recorded at destruction: inner, inner2, outer.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[0].detail, "first");
  EXPECT_STREQ(events[1].name, "inner2");
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[2].arg, 3);
  EXPECT_STREQ(events[2].arg_name, "depth");
  EXPECT_EQ(events[3].kind, tt::obs::EventKind::kCounter);
  EXPECT_DOUBLE_EQ(events[3].value, 42.0);

  // End times monotone in buffer order (what validate_trace.py re-checks).
  std::uint64_t prev_end = 0;
  for (const auto& e : events) {
    if (e.kind != tt::obs::EventKind::kSpan) continue;
    const std::uint64_t end = e.ts_ns + e.dur_ns;
    EXPECT_GE(end, prev_end);
    prev_end = end;
  }

  // Proper nesting: both inner spans start and end inside outer.
  const TraceEvent& outer_ev = events[2];
  for (int i = 0; i < 2; ++i) {
    EXPECT_GE(events[i].ts_ns, outer_ev.ts_ns);
    EXPECT_LE(events[i].ts_ns + events[i].dur_ns, outer_ev.ts_ns + outer_ev.dur_ns);
  }
  // inner2 begins after inner ended (sibling spans do not overlap).
  EXPECT_GE(events[1].ts_ns, events[0].ts_ns + events[0].dur_ns);
}

TEST(TraceTest, ManualSpanChainsLevels) {
  Tracer tracer;
  tracer.install();
  {
    ManualSpan level;
    level.begin("level", 0, "depth");
    level.begin("level", 1, "depth");  // closes depth-0 span first
    level.end();
    level.end();  // double end is a no-op
  }
  tracer.uninstall();

  const auto events = own_thread_events(tracer);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].arg, 0);
  EXPECT_EQ(events[1].arg, 1);
  // Back-to-back levels: depth 1 starts no earlier than depth 0 ended.
  EXPECT_GE(events[1].ts_ns, events[0].ts_ns + events[0].dur_ns);
}

TEST(TraceTest, FreshTracerDrainsEmpty) {
  Tracer tracer;
  EXPECT_EQ(tracer.event_count(), 0u);
  EXPECT_FALSE(tracer.installed());
}

TEST(TraceTest, InstallingThreadOwnsTidZero) {
  Tracer tracer;
  tracer.install();
  // A worker emits before the installing thread emits anything: the worker
  // must still land on tid 1, because install() registered the installing
  // thread first (the Chrome exporter labels tid 0 "coordinator").
  std::thread worker([] { tt::obs::emit_instant("from-worker"); });
  worker.join();
  tt::obs::emit_instant("from-coordinator");
  tracer.uninstall();

  const auto all = tracer.drain();
  ASSERT_EQ(all.size(), 2u);
  ASSERT_EQ(all[0].tid, 0u);
  ASSERT_EQ(all[0].events.size(), 1u);
  EXPECT_STREQ(all[0].events[0].name, "from-coordinator");
  ASSERT_EQ(all[1].tid, 1u);
  ASSERT_EQ(all[1].events.size(), 1u);
  EXPECT_STREQ(all[1].events[0].name, "from-worker");
}

TEST(TraceTest, ReinstallSeparatesSessions) {
  // A thread that emitted under one tracer must re-register with the next
  // one instead of writing into the old session's buffer: buffer and
  // generation are read from the same Tracer object, so they cannot pair
  // across sessions.
  Tracer first;
  first.install();
  tt::obs::emit_instant("one");
  first.uninstall();

  Tracer second;
  second.install();
  tt::obs::emit_instant("two");
  second.uninstall();

  ASSERT_EQ(first.event_count(), 1u);
  EXPECT_STREQ(own_thread_events(first)[0].name, "one");
  ASSERT_EQ(second.event_count(), 1u);
  EXPECT_STREQ(own_thread_events(second)[0].name, "two");
}

TEST(TraceTest, BufferSpillsAcrossChunks) {
  Tracer tracer;
  tracer.install();
  constexpr int kEvents = 3000;  // > 2 chunks of 1024
  for (int i = 0; i < kEvents; ++i) tt::obs::emit_counter("c", i);
  tracer.uninstall();
  const auto events = own_thread_events(tracer);
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) {
    EXPECT_DOUBLE_EQ(events[i].value, static_cast<double>(i));
  }
}

TEST(ChromeTraceTest, ExportedJsonHasSchemaShape) {
  Tracer tracer;
  tracer.install();
  {
    Span run("run");
    run.set_arg("n", 4);
    { Span level("level"); }
  }
  tt::obs::emit_counter("states", 17.0);
  tt::obs::emit_instant("verdict", "holds");
  tracer.uninstall();

  const std::string path = ::testing::TempDir() + "trace_roundtrip.json";
  ASSERT_TRUE(tt::obs::write_chrome_trace(tracer, path));

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  std::remove(path.c_str());

  // Envelope + one record per emitted event + thread metadata.
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"ttstart\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"run\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"level\""), std::string::npos);
  EXPECT_NE(json.find("\"n\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"states\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // Valid JSON object end, no trailing comma before the array close.
  EXPECT_EQ(json.find(",]"), std::string::npos);
  EXPECT_EQ(json.find(",}"), std::string::npos);
}

// Installing a tracer must not perturb the verification itself: same
// verdict, same exact state/transition counts as an uninstrumented run.
TEST(ObsIntegrationTest, VerdictAndCountsUnchangedUnderTracing) {
  tt::tta::ClusterConfig cfg;
  cfg.n = 3;
  cfg.faulty_node = 0;
  cfg.fault_degree = 6;
  cfg.init_window = 2;
  cfg.hub_init_window = 2;

  const auto plain = tt::core::verify(cfg, tt::core::Lemma::kSafety);

  Tracer tracer;
  tracer.install();
  const auto traced = tt::core::verify(cfg, tt::core::Lemma::kSafety);
  tracer.uninstall();

  EXPECT_EQ(traced.holds, plain.holds);
  EXPECT_EQ(traced.stats.states, plain.stats.states);
  EXPECT_EQ(traced.stats.transitions, plain.stats.transitions);
  EXPECT_GT(tracer.event_count(), 0u);

  // The run emitted the documented vocabulary: a verify span wrapping the
  // engine's run span and its per-level spans.
  bool saw_verify = false, saw_level = false;
  for (const auto& te : tracer.drain()) {
    for (const auto& e : te.events) {
      if (e.kind != tt::obs::EventKind::kSpan) continue;
      if (std::string_view(e.name) == "verify") saw_verify = true;
      if (std::string_view(e.name) == "bfs.level") saw_level = true;
    }
  }
  EXPECT_TRUE(saw_verify);
  EXPECT_TRUE(saw_level);
}

}  // namespace
