#include "support/rng.hpp"

#include <gtest/gtest.h>

namespace tt {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRangeAndCoversIt) {
  Rng rng(55);
  bool seen[10] = {};
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen[v] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(77);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

}  // namespace
}  // namespace tt
