#include "support/table.hpp"

#include <gtest/gtest.h>

namespace tt {
namespace {

TEST(TextTable, RendersAlignedMarkdown) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
  EXPECT_NE(out.find("|-------|"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(strfmt("empty"), "empty");
}

}  // namespace
}  // namespace tt
