#include "support/state_index_map.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "support/rng.hpp"

namespace tt {
namespace {

using Map2 = StateIndexMap<2>;

Map2::State make_state(std::uint64_t a, std::uint64_t b) { return {a, b}; }

TEST(StateIndexMap, InsertAssignsDenseIndicesInOrder) {
  Map2 map;
  auto [i0, fresh0] = map.insert(make_state(1, 2));
  auto [i1, fresh1] = map.insert(make_state(3, 4));
  auto [i2, fresh2] = map.insert(make_state(1, 2));
  EXPECT_TRUE(fresh0);
  EXPECT_TRUE(fresh1);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(i0, 0u);
  EXPECT_EQ(i1, 1u);
  EXPECT_EQ(i2, 0u);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.at(1), make_state(3, 4));
}

TEST(StateIndexMap, FindAbsentReturnsEmpty) {
  Map2 map;
  EXPECT_EQ(map.find(make_state(9, 9)), Map2::kEmpty);
  map.insert(make_state(9, 9));
  EXPECT_EQ(map.find(make_state(9, 9)), 0u);
  EXPECT_EQ(map.find(make_state(9, 8)), Map2::kEmpty);
}

TEST(StateIndexMap, GrowthPreservesContentsAgainstReference) {
  Map2 map(64);  // force several growth cycles
  std::unordered_set<std::uint64_t> reference;
  Rng rng(99);
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t key = rng.next() % 50000;  // plenty of duplicates
    const auto s = make_state(key, key ^ 0xabcdef);
    const bool fresh_ref = reference.insert(key).second;
    const auto [idx, fresh] = map.insert(s);
    EXPECT_EQ(fresh, fresh_ref);
    EXPECT_EQ(map.at(idx), s);
  }
  EXPECT_EQ(map.size(), reference.size());
  for (std::uint64_t key : reference) {
    EXPECT_NE(map.find(make_state(key, key ^ 0xabcdef)), Map2::kEmpty);
  }
}

TEST(StateIndexMap, MemoryAccounting) {
  Map2 map;
  const std::size_t before = map.memory_bytes();
  for (std::uint64_t i = 0; i < 10000; ++i) map.insert(make_state(i, i));
  EXPECT_GT(map.memory_bytes(), before);
  EXPECT_GE(map.memory_bytes(), 10000 * sizeof(Map2::State));
}

}  // namespace
}  // namespace tt
