#include "support/state_index_map.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "support/rng.hpp"

namespace tt {
namespace {

using Map2 = StateIndexMap<2>;

Map2::State make_state(std::uint64_t a, std::uint64_t b) { return {a, b}; }

TEST(StateIndexMap, InsertAssignsDenseIndicesInOrder) {
  Map2 map;
  auto [i0, fresh0] = map.insert(make_state(1, 2));
  auto [i1, fresh1] = map.insert(make_state(3, 4));
  auto [i2, fresh2] = map.insert(make_state(1, 2));
  EXPECT_TRUE(fresh0);
  EXPECT_TRUE(fresh1);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(i0, 0u);
  EXPECT_EQ(i1, 1u);
  EXPECT_EQ(i2, 0u);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.at(1), make_state(3, 4));
}

TEST(StateIndexMap, FindAbsentReturnsEmpty) {
  Map2 map;
  EXPECT_EQ(map.find(make_state(9, 9)), Map2::kEmpty);
  map.insert(make_state(9, 9));
  EXPECT_EQ(map.find(make_state(9, 9)), 0u);
  EXPECT_EQ(map.find(make_state(9, 8)), Map2::kEmpty);
}

TEST(StateIndexMap, GrowthPreservesContentsAgainstReference) {
  Map2 map(64);  // force several growth cycles
  std::unordered_set<std::uint64_t> reference;
  Rng rng(99);
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t key = rng.next() % 50000;  // plenty of duplicates
    const auto s = make_state(key, key ^ 0xabcdef);
    const bool fresh_ref = reference.insert(key).second;
    const auto [idx, fresh] = map.insert(s);
    EXPECT_EQ(fresh, fresh_ref);
    EXPECT_EQ(map.at(idx), s);
  }
  EXPECT_EQ(map.size(), reference.size());
  for (std::uint64_t key : reference) {
    EXPECT_NE(map.find(make_state(key, key ^ 0xabcdef)), Map2::kEmpty);
  }
}

TEST(StateIndexMap, ReservePresizesForBoundedRuns) {
  Map2 map(64);
  map.reserve(50000);
  const std::size_t table_bytes_before = map.memory_bytes();
  for (std::uint64_t i = 0; i < 50000; ++i) {
    const auto [idx, fresh] = map.insert(make_state(i, i * 3));
    ASSERT_TRUE(fresh);
    ASSERT_EQ(idx, i);
  }
  // The probe table was pre-sized: no rehash means the footprint only grew
  // by (possible) arena reallocation, and all lookups still resolve.
  EXPECT_GE(map.memory_bytes(), table_bytes_before);
  EXPECT_EQ(map.find(make_state(49999, 49999 * 3)), 49999u);
}

TEST(StateIndexMap, InsertBeyondCapThrowsStateCapacityError) {
  // The dense-id overflow path at 2^32-1 states is unreachable in a unit
  // test; the configurable cap exercises the same checked branch.
  Map2 map(64, /*max_states=*/4);
  for (std::uint64_t i = 0; i < 4; ++i) map.insert(make_state(i, i));
  EXPECT_EQ(map.size(), 4u);
  // Duplicates of interned states are still fine at the cap.
  EXPECT_FALSE(map.insert(make_state(0, 0)).second);
  EXPECT_THROW(map.insert(make_state(99, 99)), StateCapacityError);
  // The failed insert must not have corrupted the table.
  EXPECT_EQ(map.size(), 4u);
  EXPECT_EQ(map.find(make_state(2, 2)), 2u);
  EXPECT_EQ(map.find(make_state(99, 99)), Map2::kEmpty);
}

TEST(StateIndexMap, ReserveRespectsCap) {
  Map2 map(64, /*max_states=*/100);
  map.reserve(1 << 20);  // silently clamped to the cap
  EXPECT_EQ(map.max_states(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) map.insert(make_state(i, i));
  EXPECT_THROW(map.insert(make_state(1000, 1000)), StateCapacityError);
}

TEST(StateIndexMap, MemoryAccounting) {
  Map2 map;
  const std::size_t before = map.memory_bytes();
  for (std::uint64_t i = 0; i < 10000; ++i) map.insert(make_state(i, i));
  EXPECT_GT(map.memory_bytes(), before);
  EXPECT_GE(map.memory_bytes(), 10000 * sizeof(Map2::State));
}

}  // namespace
}  // namespace tt
