#include "support/bitpack.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "support/rng.hpp"

namespace tt {
namespace {

TEST(BitsFor, KnownValues) {
  EXPECT_EQ(bits_for(1), 1);  // domain {0}
  EXPECT_EQ(bits_for(2), 1);
  EXPECT_EQ(bits_for(3), 2);
  EXPECT_EQ(bits_for(4), 2);
  EXPECT_EQ(bits_for(5), 3);
  EXPECT_EQ(bits_for(256), 8);
  EXPECT_EQ(bits_for(257), 9);
}

TEST(BitPack, RoundTripAcrossWordBoundaries) {
  Rng rng(1);
  for (int iter = 0; iter < 500; ++iter) {
    // Random field widths summing to <= 192 bits.
    std::vector<int> widths;
    std::vector<std::uint64_t> values;
    int total = 0;
    while (true) {
      const int w = 1 + static_cast<int>(rng.below(37));
      if (total + w > 192) break;
      total += w;
      widths.push_back(w);
      values.push_back(w == 64 ? rng.next() : (rng.next() & ((1ULL << w) - 1)));
    }
    std::array<std::uint64_t, 3> words{};
    BitWriter writer(words.data(), 3);
    for (std::size_t i = 0; i < widths.size(); ++i) writer.put(values[i], widths[i]);
    ASSERT_EQ(writer.bits_written(), total);

    BitReader reader(words.data(), 3);
    for (std::size_t i = 0; i < widths.size(); ++i) {
      EXPECT_EQ(reader.get(widths[i]), values[i]) << "field " << i << " width " << widths[i];
    }
    ASSERT_EQ(reader.bits_read(), total);
  }
}

TEST(BitPack, FullWidth64) {
  std::array<std::uint64_t, 3> words{};
  BitWriter w(words.data(), 3);
  w.put(0x123456789abcdef0ULL, 64);
  w.put(0xfedcba9876543210ULL, 64);
  w.put(0x5aa5, 16);
  BitReader r(words.data(), 3);
  EXPECT_EQ(r.get(64), 0x123456789abcdef0ULL);
  EXPECT_EQ(r.get(64), 0xfedcba9876543210ULL);
  EXPECT_EQ(r.get(16), 0x5aa5u);
}

TEST(BitPack, MisalignedSpill) {
  // A 60-bit field then a 40-bit field spills across the first boundary.
  std::array<std::uint64_t, 2> words{};
  BitWriter w(words.data(), 2);
  w.put((1ULL << 60) - 3, 60);
  w.put((1ULL << 40) - 7, 40);
  BitReader r(words.data(), 2);
  EXPECT_EQ(r.get(60), (1ULL << 60) - 3);
  EXPECT_EQ(r.get(40), (1ULL << 40) - 7);
}

}  // namespace
}  // namespace tt
