// Unit and stress suite for the lock-free state store (DESIGN.md §3.7):
// id-encoding parity with ShardedStateIndexMap, sequential-oracle agreement,
// the concurrent insert/find torture targets the TSan CI job runs under
// -fsanitize=thread, the seal/compress/spill lifecycle, and the capacity
// backstops (probe-full, max_states).
#include "support/lockfree_state_index_map.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "support/rng.hpp"
#include "support/sharded_state_index_map.hpp"
#include "support/state_index_map.hpp"

namespace tt {
namespace {

using Map2 = LockFreeStateIndexMap<2>;

Map2::State make_state(std::uint64_t a, std::uint64_t b) { return {a, b}; }

TEST(LockFreeStateIndexMap, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(LockFreeStateIndexMap<1>(1).shard_count(), 1u);
  EXPECT_EQ(LockFreeStateIndexMap<1>(3).shard_count(), 4u);
  EXPECT_EQ(LockFreeStateIndexMap<1>(16).shard_count(), 16u);
}

TEST(LockFreeStateIndexMap, SingleShardAssignsDenseIdsLikeStateIndexMap) {
  Map2 lockfree;  // 1 shard: the sequential engines' configuration
  StateIndexMap<2> flat;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const auto s = make_state(i % 7000, (i % 7000) * 31);
    const auto [id, fresh] = lockfree.insert_serial(s);
    const auto [ref_id, ref_fresh] = flat.insert(s);
    ASSERT_EQ(id, ref_id) << "i=" << i;
    ASSERT_EQ(fresh, ref_fresh) << "i=" << i;
  }
  EXPECT_EQ(lockfree.size(), flat.size());
}

// Bit-identity at the store level: with the same shard count, both stores
// route by the same hash window and allocate locals in the same order, so
// every id — and hence every engine trace built on them — matches.
TEST(LockFreeStateIndexMap, IdsMatchShardedStoreExactly) {
  Map2 lockfree(16);
  ShardedStateIndexMap<2> sharded(16);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const auto s = make_state(i % 6000, i % 6000);
    ASSERT_EQ(lockfree.insert_serial(s).first, sharded.insert_serial(s).first) << "i=" << i;
  }
  EXPECT_EQ(lockfree.size(), sharded.size());
  for (std::uint64_t i = 0; i < 6000; i += 13) {
    const auto s = make_state(i, i);
    EXPECT_EQ(lockfree.find(s), sharded.find(s));
  }
}

TEST(LockFreeStateIndexMap, IdEncodesShardAndLocal) {
  Map2 map(16);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto s = make_state(i, i * 31);
    const auto [id, fresh] = map.insert_serial(s);
    ASSERT_TRUE(fresh);
    EXPECT_EQ(map.shard_of_id(id), map.shard_of(s));
    EXPECT_LT(map.local_of_id(id), map.shard_size(map.shard_of_id(id)));
    EXPECT_EQ(map.at(id), s);
    EXPECT_EQ(map.find(s), id);
  }
  EXPECT_EQ(map.size(), 1000u);
}

TEST(LockFreeStateIndexMap, MatchesReferenceAcrossSerialGrowth) {
  Map2 map(8, 64);  // tiny initial capacity forces inline growth cycles
  std::unordered_set<std::uint64_t> reference;
  Rng rng(1234);
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t key = rng.next() % 50000;
    const auto s = make_state(key, key ^ 0xabcdef);
    const bool fresh_ref = reference.insert(key).second;
    const auto [id, fresh] = map.insert_serial(s);
    ASSERT_EQ(fresh, fresh_ref);
    ASSERT_EQ(map.at(id), s);
  }
  EXPECT_EQ(map.size(), reference.size());
  for (std::uint64_t key : reference) {
    EXPECT_NE(map.find(make_state(key, key ^ 0xabcdef)), Map2::kEmpty);
  }
}

TEST(LockFreeStateIndexMap, DeterministicIdsAcrossRuns) {
  std::vector<std::uint32_t> ids[2];
  for (auto& run : ids) {
    Map2 map(16);
    for (std::uint64_t i = 0; i < 3000; ++i) {
      run.push_back(map.insert_serial(make_state(i, ~i)).first);
    }
  }
  EXPECT_EQ(ids[0], ids[1]);
}

// The TSan target: 8 threads hammer the CAS insert path with heavily
// overlapping state sets, so the same slot (and the same fingerprint) is
// contended from many threads at once. The concurrent path never grows the
// probe table, so the map is pre-sized like an engine drain phase would be.
TEST(LockFreeStateIndexMap, ConcurrentInsertStress) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kUniverse = 20000;  // every thread inserts all of it
  Map2 map(16);
  map.reserve(kUniverse);

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&map, t] {
      Rng rng(7 * t + 1);
      for (int i = 0; i < 60000; ++i) {
        const std::uint64_t key = rng.next() % kUniverse;
        const auto s = make_state(key, key * 1315423911ull);
        const auto [id, fresh] = map.insert(s);
        // The returned id must be stable and point at the inserted state,
        // whichever thread won the CAS race to claim the slot.
        if (map.at(id) != s) {
          ADD_FAILURE() << "id " << id << " does not round-trip";
          return;
        }
        (void)fresh;
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(map.size(), kUniverse);
  std::unordered_set<std::uint32_t> ids;
  for (std::uint64_t key = 0; key < kUniverse; ++key) {
    const auto s = make_state(key, key * 1315423911ull);
    const std::uint32_t id = map.find(s);
    ASSERT_NE(id, Map2::kEmpty);
    EXPECT_EQ(map.at(id), s);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
  }
}

// Mixed readers and writers: half the threads insert, half run find() over
// the same universe while inserts are in flight (the expand-phase pattern,
// except expand runs on a frozen store — this is strictly harsher). A found
// id must always round-trip through at(); a miss is legal only while the
// state genuinely hasn't been published yet, which the post-join oracle
// sweep cannot distinguish, so readers only validate positive results.
TEST(LockFreeStateIndexMap, ConcurrentInsertFindTorture) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr std::uint64_t kUniverse = 15000;
  Map2 map(16);
  map.reserve(kUniverse);

  std::vector<std::thread> workers;
  workers.reserve(kWriters + kReaders);
  for (int t = 0; t < kWriters; ++t) {
    workers.emplace_back([&map, t] {
      Rng rng(13 * t + 5);
      for (int i = 0; i < 40000; ++i) {
        const std::uint64_t key = rng.next() % kUniverse;
        map.insert(make_state(key, key ^ 0x5a5a5a5a));
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    workers.emplace_back([&map, t] {
      Rng rng(17 * t + 3);
      for (int i = 0; i < 40000; ++i) {
        const std::uint64_t key = rng.next() % (2 * kUniverse);  // half are absent
        const auto s = make_state(key, key ^ 0x5a5a5a5a);
        const std::uint32_t id = map.find(s);
        if (id != Map2::kEmpty && map.at(id) != s) {
          ADD_FAILURE() << "find returned id " << id << " that does not round-trip";
          return;
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  // Sequential oracle: replay the writers' exact streams; every key they
  // inserted must now be found, nothing else interned.
  std::unordered_set<std::uint64_t> oracle;
  for (int t = 0; t < kWriters; ++t) {
    Rng rng(13 * t + 5);
    for (int i = 0; i < 40000; ++i) oracle.insert(rng.next() % kUniverse);
  }
  EXPECT_EQ(map.size(), oracle.size());
  for (const std::uint64_t key : oracle) {
    const auto s = make_state(key, key ^ 0x5a5a5a5a);
    const std::uint32_t id = map.find(s);
    ASSERT_NE(id, Map2::kEmpty) << "key " << key;
    EXPECT_EQ(map.at(id), s);
  }
}

// Seal/compress roundtrip: the first maintain records the quiescent count,
// the second seals every full page below it. All reads must keep working on
// the delta-compressed tier, and find() must keep probing correctly.
TEST(LockFreeStateIndexMap, SealedPagesRoundTripThroughDecoding) {
  constexpr std::uint64_t kStates = 5000;  // ~4.9 pages in one shard
  Map2 map;                                // 1 shard: dense ids 0..n-1
  std::vector<std::uint32_t> ids;
  for (std::uint64_t i = 0; i < kStates; ++i) {
    ids.push_back(map.insert_serial(make_state(i, i * 2654435761ull)).first);
  }
  auto m1 = map.quiescent_maintain();
  EXPECT_EQ(m1.pages_sealed, 0u);  // nothing predates the previous quiescent point
  auto m2 = map.quiescent_maintain();
  EXPECT_EQ(m2.pages_sealed, 4u);  // 4 full pages of 1024; the tail stays raw
  EXPECT_EQ(map.store_stats().pages_compressed, 4u);

  const std::size_t resident = map.memory_bytes();
  for (std::uint64_t i = 0; i < kStates; ++i) {
    const auto s = make_state(i, i * 2654435761ull);
    ASSERT_EQ(map.at(ids[i]), s) << "i=" << i;
    ASSERT_EQ(map.find(s), ids[i]) << "i=" << i;
  }
  // Inserting after sealing keeps working (fresh pages are raw).
  const auto [id, fresh] = map.insert_serial(make_state(999999, 1));
  EXPECT_TRUE(fresh);
  EXPECT_EQ(map.at(id), make_state(999999, 1));
  EXPECT_GE(resident, map.store_stats().spill_bytes);  // nothing spilled yet
}

#if TT_LFSIM_HAS_SPILL
// Out-of-core exactness: a byte budget far below the resident set forces
// sealed pages onto disk; every state must still read back exactly and the
// spill counters must say so. TTSTART_SPILL_DIR is honored by the backing
// file (exercised here via TMPDIR fallback — no assertion on the path).
TEST(LockFreeStateIndexMap, SpilledPagesReadBackExactly) {
  constexpr std::uint64_t kStates = 9000;
  Map2 map;
  map.set_mem_budget(1);  // evict every sealed page
  std::vector<std::uint32_t> ids;
  for (std::uint64_t i = 0; i < kStates; ++i) {
    ids.push_back(map.insert_serial(make_state(i * 7, i ^ 0xdeadbeef)).first);
  }
  (void)map.quiescent_maintain();
  const auto m = map.quiescent_maintain();
  EXPECT_EQ(m.pages_sealed, 8u);
  EXPECT_EQ(m.pages_spilled, 8u);
  EXPECT_GT(m.bytes_spilled, 0u);
  const auto st = map.store_stats();
  EXPECT_EQ(st.pages_spilled, 8u);
  EXPECT_EQ(st.spill_bytes, m.bytes_spilled);

  for (std::uint64_t i = 0; i < kStates; ++i) {
    const auto s = make_state(i * 7, i ^ 0xdeadbeef);
    ASSERT_EQ(map.at(ids[i]), s) << "i=" << i;
    ASSERT_EQ(map.find(s), ids[i]) << "i=" << i;
  }
  EXPECT_EQ(map.size(), kStates);
}

// Spill across several maintain cycles: pages sealed later append to the
// same backing file and earlier offsets stay valid after every remap.
TEST(LockFreeStateIndexMap, IncrementalSpillKeepsEarlierPagesValid) {
  Map2 map;
  map.set_mem_budget(1);
  std::vector<std::uint32_t> ids;
  std::uint64_t next = 0;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 3000; ++i, ++next) {
      ids.push_back(map.insert_serial(make_state(next, next * 31)).first);
    }
    (void)map.quiescent_maintain();
  }
  (void)map.quiescent_maintain();
  EXPECT_GT(map.store_stats().pages_spilled, 0u);
  for (std::uint64_t i = 0; i < next; ++i) {
    ASSERT_EQ(map.at(ids[i]), make_state(i, i * 31)) << "i=" << i;
  }
}
#endif  // TT_LFSIM_HAS_SPILL

#if TT_LFSIM_HAS_SPILL
// Write-behind semantics: with a budget that is set but not exceeded, sealed
// pages are handed to the I/O thread asynchronously and their bodies stay
// resident (no eviction, no synchronous barrier). Tightening the budget
// later evicts the already-durable pages; every state keeps reading back.
TEST(LockFreeStateIndexMap, WriteBehindEnqueuesWithoutEvictingUnderGenerousBudget) {
  constexpr std::uint64_t kStates = 5000;
  Map2 map;
  map.set_mem_budget(64u << 20);  // generous: never exceeded by this test
  std::vector<std::uint32_t> ids;
  for (std::uint64_t i = 0; i < kStates; ++i) {
    ids.push_back(map.insert_serial(make_state(i * 3, i ^ 0xf00d)).first);
  }
  (void)map.quiescent_maintain();
  const auto m = map.quiescent_maintain();
  EXPECT_EQ(m.pages_sealed, 4u);
  EXPECT_EQ(m.pages_enqueued, 4u);
  auto st = map.store_stats();
  EXPECT_EQ(st.spill_async_pages, 4u);
  EXPECT_EQ(st.spill_sync_waits, 0u);  // under budget: nothing ever blocks
  EXPECT_EQ(st.pages_spilled, 0u);     // bodies stay resident until needed
  for (std::uint64_t i = 0; i < kStates; ++i) {
    ASSERT_EQ(map.at(ids[i]), make_state(i * 3, i ^ 0xf00d)) << "i=" << i;
  }

  map.set_mem_budget(1);  // now critically exceeded: evict durable pages
  (void)map.quiescent_maintain();
  st = map.store_stats();
  EXPECT_EQ(st.pages_spilled, 4u);
  for (std::uint64_t i = 0; i < kStates; ++i) {
    const auto s = make_state(i * 3, i ^ 0xf00d);
    ASSERT_EQ(map.at(ids[i]), s) << "i=" << i;
    ASSERT_EQ(map.find(s), ids[i]) << "i=" << i;
  }
}

// An I/O-thread write failure (injected device-full) must surface as
// StateCapacityError from the next quiescent maintain, not hang the barrier
// or silently drop pages.
TEST(LockFreeStateIndexMap, WriterFailureSurfacesAsStateCapacityErrorAtMaintain) {
  ::setenv("TTSTART_SPILL_FAIL_AFTER", "1", 1);
  Map2 map;
  map.set_mem_budget(1);
  for (std::uint64_t i = 0; i < 5000; ++i) map.insert_serial(make_state(i, i * 17));
  (void)map.quiescent_maintain();  // records the quiescent count, no spill yet
  EXPECT_THROW((void)map.quiescent_maintain(), StateCapacityError);
  ::unsetenv("TTSTART_SPILL_FAIL_AFTER");
}

// The TSan target for the write-behind pipeline: seal + enqueue pages, then
// immediately hammer the store with concurrent find()/at() readers and
// insert() writers while the I/O thread is (potentially) still writing the
// sealed bodies it was handed. Bodies stay resident until a quiescent
// harvest, so readers never observe a tier change mid-flight.
TEST(LockFreeStateIndexMap, ConcurrentFindsRaceInFlightAsyncSpillWrites) {
  constexpr std::uint64_t kOld = 8192;
  constexpr std::uint64_t kNewUniverse = 8000;
  constexpr int kReaders = 4;
  constexpr int kWriters = 2;
  Map2 map(4);
  map.set_mem_budget(64u << 20);
  map.reserve(kOld + kNewUniverse);
  std::vector<std::uint32_t> old_ids;
  for (std::uint64_t i = 0; i < kOld; ++i) {
    old_ids.push_back(map.insert_serial(make_state(i, i * 2654435761ull)).first);
  }
  (void)map.quiescent_maintain();
  const auto m = map.quiescent_maintain();  // seals + enqueues, returns async
  ASSERT_GT(m.pages_enqueued, 0u);

  std::vector<std::thread> workers;
  for (int t = 0; t < kReaders; ++t) {
    workers.emplace_back([&map, &old_ids, t] {
      Rng rng(31 * t + 7);
      for (int i = 0; i < 30000; ++i) {
        const std::uint64_t key = rng.next() % kOld;
        const auto s = make_state(key, key * 2654435761ull);
        if (map.at(old_ids[key]) != s) {
          ADD_FAILURE() << "sealed state " << key << " read back wrong";
          return;
        }
        if (map.find(s) != old_ids[key]) {
          ADD_FAILURE() << "sealed state " << key << " not found";
          return;
        }
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) {
    workers.emplace_back([&map, t] {
      Rng rng(41 * t + 11);
      for (int i = 0; i < 30000; ++i) {
        const std::uint64_t key = 1000000 + rng.next() % kNewUniverse;
        map.insert(make_state(key, key ^ 0xabcdef));
      }
    });
  }
  for (auto& w : workers) w.join();

  (void)map.quiescent_maintain();  // harvest the completions
  for (std::uint64_t i = 0; i < kOld; ++i) {
    ASSERT_EQ(map.at(old_ids[i]), make_state(i, i * 2654435761ull)) << "i=" << i;
  }
}
#endif  // TT_LFSIM_HAS_SPILL

// Accounting regression: memory_bytes() must be exactly the sum of the
// breakdown components (the budget enforcement compares memory_bytes()
// against the budget, so a component silently dropping out of the sum would
// under-enforce it).
TEST(LockFreeStateIndexMap, MemoryBytesIsExactlyTheBreakdownSum) {
  Map2 map(4);
  for (std::uint64_t i = 0; i < 6000; ++i) map.insert_serial(make_state(i, i * 31));
  (void)map.quiescent_maintain();
  (void)map.quiescent_maintain();
  const auto b = map.memory_breakdown();
  EXPECT_EQ(map.memory_bytes(), b.slots + b.raw_pages + b.sealed_pages + b.fingerprints +
                                    b.pinned + b.bloom + b.spill_writer);
  EXPECT_EQ(map.memory_bytes(), b.total());
  EXPECT_GT(b.slots, 0u);
  EXPECT_GT(b.raw_pages, 0u);
  EXPECT_GT(b.sealed_pages, 0u);
  EXPECT_EQ(b.fingerprints, 0u);  // not in fp mode
#if TT_LFSIM_HAS_SPILL
  // With a budget, the write-behind machinery itself must be counted.
  Map2 budgeted;
  budgeted.set_mem_budget(1);
  for (std::uint64_t i = 0; i < 3000; ++i) budgeted.insert_serial(make_state(i, i));
  (void)budgeted.quiescent_maintain();
  (void)budgeted.quiescent_maintain();
  const auto bb = budgeted.memory_breakdown();
  EXPECT_GT(bb.spill_writer, 0u);
  EXPECT_EQ(budgeted.memory_bytes(), bb.total());
#endif
}

// The fingerprint-collision oracle: a 12-bit fingerprint over 9000 states
// forces masses of genuine collisions (distinct states, equal masked
// fingerprint). With a shadow resolver standing in for the engines'
// predecessor-path replay, membership and ids must stay exact — collisions
// get pinned, ambiguous matches get re-expanded, and nothing is ever
// conflated (the difference between this store and classical hash
// compaction).
TEST(LockFreeStateIndexMap, FingerprintOnlyNarrowMaskStaysExact) {
  constexpr std::uint64_t kStates = 9000;
  Map2 map;  // one shard: dense ids index the shadow directly
  map.set_fingerprint_only(true);
  map.set_fingerprint_bits(12);
  std::vector<Map2::State> shadow;
  map.set_resolver([&shadow](std::uint32_t id, Map2::State& out) {
    if (id >= shadow.size()) return false;
    out = shadow[id];
    return true;
  });

  for (std::uint64_t i = 0; i < kStates; ++i) {
    const auto s = make_state(i * 11, i ^ 0x1234);
    const auto [id, fresh] = map.insert_serial(s);
    ASSERT_TRUE(fresh) << "i=" << i;
    ASSERT_EQ(id, shadow.size()) << "i=" << i;
    shadow.push_back(s);
  }
  (void)map.quiescent_maintain();
  (void)map.quiescent_maintain();  // drops every full page body
  auto st = map.store_stats();
  EXPECT_GT(st.pages_dropped, 0u);
  EXPECT_GT(st.fp_collisions, 0u) << "12-bit fps over 9000 states must collide";
  EXPECT_EQ(st.pages_compressed, 0u);  // fp mode drops instead of sealing

  // Exact membership for everything inserted, against dropped bodies.
  for (std::uint64_t i = 0; i < kStates; ++i) {
    const auto s = make_state(i * 11, i ^ 0x1234);
    ASSERT_EQ(map.find(s), static_cast<std::uint32_t>(i)) << "i=" << i;
    ASSERT_EQ(map.at(static_cast<std::uint32_t>(i)), s) << "i=" << i;
  }
  EXPECT_GT(map.store_stats().reexpansions, 0u);

  // Duplicates are still duplicates; aliasing-but-distinct states are fresh.
  for (std::uint64_t i = 0; i < kStates; i += 57) {
    EXPECT_FALSE(map.insert_serial(make_state(i * 11, i ^ 0x1234)).second);
  }
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const auto s = make_state(500000 + i, ~i);
    const auto [id, fresh] = map.insert_serial(s);
    ASSERT_TRUE(fresh) << "i=" << i;
    ASSERT_EQ(id, shadow.size());
    shadow.push_back(s);
  }
  EXPECT_EQ(map.size(), kStates + 2000);

  // The fp arrays and pins show up in the accounting.
  const auto b = map.memory_breakdown();
  EXPECT_GT(b.fingerprints, 0u);
  EXPECT_GT(b.pinned, 0u);
  EXPECT_EQ(map.memory_bytes(), b.total());
}

TEST(LockFreeStateIndexMap, MaxStatesCapThrowsOnBothInsertPaths) {
  Map2 serial;
  serial.set_max_states(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(serial.insert_serial(make_state(i, i)).second);
  }
  // Duplicates stay fine at the cap; the next fresh state throws.
  EXPECT_FALSE(serial.insert_serial(make_state(0, 0)).second);
  EXPECT_THROW(serial.insert_serial(make_state(99, 99)), StateCapacityError);

  Map2 concurrent(4);
  concurrent.reserve(64);
  concurrent.set_max_states(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(concurrent.insert(make_state(i, i)).second);
  }
  EXPECT_FALSE(concurrent.insert(make_state(0, 0)).second);
  EXPECT_THROW(concurrent.insert(make_state(99, 99)), StateCapacityError);
  // The rolled-back claim leaves the table consistent: existing states are
  // still found, the over-cap state is not.
  EXPECT_NE(concurrent.find(make_state(0, 0)), Map2::kEmpty);
  EXPECT_EQ(concurrent.find(make_state(99, 99)), Map2::kEmpty);
  EXPECT_EQ(concurrent.size(), 4u);
}

TEST(LockFreeStateIndexMap, ConcurrentInsertThrowsWhenProbeTableFills) {
  Map2 map(1, 16);  // one shard, tiny table, never grown (no maintain call)
  bool threw = false;
  try {
    // Far more fresh states than the initial table can hold: the concurrent
    // path must fail loudly once every slot is occupied.
    for (std::uint64_t i = 0; i < 100000; ++i) map.insert(make_state(i, i));
  } catch (const StateCapacityError&) {
    threw = true;
  }
  EXPECT_TRUE(threw) << "a full probe table must throw, not spin";
}

TEST(LockFreeStateIndexMap, BloomFrontShortCircuitsAbsentProbes) {
  Map2 map;
  for (std::uint64_t i = 0; i < 4000; ++i) map.insert_serial(make_state(i, i));
  (void)map.quiescent_maintain();  // builds/rebuilds the Bloom front
  const std::size_t before = map.store_stats().bloom_negatives;
  std::size_t misses = 0;
  for (std::uint64_t i = 100000; i < 104000; ++i) {
    if (map.find(make_state(i, i)) == Map2::kEmpty) ++misses;
  }
  EXPECT_EQ(misses, 4000u);
  // Most absent probes never reach the slot table (2 Bloom bits/key, sized
  // toward 16 bits per state => low single-digit % false positives).
  EXPECT_GT(map.store_stats().bloom_negatives - before, 3500u);
  // And presence is unaffected.
  for (std::uint64_t i = 0; i < 4000; i += 97) {
    EXPECT_NE(map.find(make_state(i, i)), Map2::kEmpty);
  }
}

TEST(LockFreeStateIndexMap, MemoryAccountingCoversSlotsArenaAndBloom) {
  Map2 map(16);
  const std::size_t before = map.memory_bytes();
  for (std::uint64_t i = 0; i < 10000; ++i) map.insert_serial(make_state(i, i));
  EXPECT_GT(map.memory_bytes(), before);
  EXPECT_GE(map.memory_bytes(), 10000 * sizeof(Map2::State));
}

TEST(LockFreeStateIndexMap, MaintainGrowsForExpectedHeadroom) {
  Map2 map(4, 64);
  for (std::uint64_t i = 0; i < 50; ++i) map.insert_serial(make_state(i, i));
  const auto m = map.quiescent_maintain(/*expected_new_states=*/100000);
  EXPECT_GT(m.shards_grown, 0u);
  // A full level of concurrent inserts now fits without growth or throw.
  for (std::uint64_t i = 1000; i < 60000; ++i) {
    map.insert(make_state(i, i * 3));
  }
  EXPECT_EQ(map.size(), 50u + 59000u);
}

}  // namespace
}  // namespace tt
