#include "support/biguint.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "support/rng.hpp"

namespace tt {
namespace {

TEST(BigUint, ZeroBasics) {
  BigUint z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.to_decimal(), "0");
  EXPECT_EQ(z.to_double(), 0.0);
  EXPECT_EQ(z + z, BigUint(0));
  EXPECT_EQ(z * BigUint(12345), BigUint(0));
}

TEST(BigUint, SmallArithmeticMatchesU64) {
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.next() >> 33;  // keep products within u64
    const std::uint64_t b = rng.next() >> 33;
    EXPECT_EQ((BigUint(a) + BigUint(b)).to_decimal(), std::to_string(a + b));
    EXPECT_EQ((BigUint(a) * BigUint(b)).to_decimal(), std::to_string(a * b));
  }
}

TEST(BigUint, CarryPropagation) {
  const BigUint max32(0xffffffffULL);
  EXPECT_EQ((max32 + BigUint(1)).to_decimal(), "4294967296");
  const BigUint max64(0xffffffffffffffffULL);
  EXPECT_EQ((max64 + BigUint(1)).to_decimal(), "18446744073709551616");
}

TEST(BigUint, PowMatchesKnownValues) {
  EXPECT_EQ(BigUint::pow(BigUint(2), 10).to_decimal(), "1024");
  EXPECT_EQ(BigUint::pow(BigUint(10), 20).to_decimal(), "100000000000000000000");
  EXPECT_EQ(BigUint::pow(BigUint(7), 0).to_decimal(), "1");
  EXPECT_EQ(BigUint::pow(BigUint(0), 5).to_decimal(), "0");
  EXPECT_EQ(BigUint::pow(BigUint(0), 0).to_decimal(), "1");  // convention
}

TEST(BigUint, PaperFigure5Values) {
  // |S_sup| = delta_init^(n+1): 24^4, 32^5, 40^6 — paper prints "3.3e5,
  // 3.3e7, 4.1e9" (truncating 3.3554e7; we round half-up, hence 3.4e7).
  EXPECT_EQ(BigUint::pow(BigUint(24), 4).to_scientific(2), "3.3e5");
  EXPECT_EQ(BigUint::pow(BigUint(32), 5).to_scientific(2), "3.4e7");
  EXPECT_EQ(BigUint::pow(BigUint(40), 6).to_scientific(2), "4.1e9");
  // |S_f.n.| = (6^2)^wcsup: 36^16 ~ 8e24, 36^23 ~ 6e35, 36^30 ~ 4.9e46.
  EXPECT_EQ(BigUint::pow(BigUint(36), 16).to_scientific(1), "8e24");
  EXPECT_EQ(BigUint::pow(BigUint(36), 30).to_scientific(2), "4.9e46");
}

TEST(BigUint, FromDecimalRoundTrip) {
  const std::string digits = "123456789012345678901234567890123456789";
  EXPECT_EQ(BigUint::from_decimal(digits).to_decimal(), digits);
  EXPECT_THROW(BigUint::from_decimal("12a3"), std::invalid_argument);
  EXPECT_THROW(BigUint::from_decimal(""), std::invalid_argument);
}

TEST(BigUint, Ordering) {
  EXPECT_LT(BigUint(5), BigUint(7));
  EXPECT_GT(BigUint::pow(BigUint(2), 100), BigUint::pow(BigUint(2), 99));
  EXPECT_EQ(BigUint(123), BigUint::from_decimal("123"));
}

TEST(BigUint, DecimalDigits) {
  EXPECT_EQ(BigUint(0).decimal_digits(), 1);
  EXPECT_EQ(BigUint(9).decimal_digits(), 1);
  EXPECT_EQ(BigUint(10).decimal_digits(), 2);
  EXPECT_EQ(BigUint::pow(BigUint(10), 40).decimal_digits(), 41);
}

TEST(BigUint, ToDoubleApproximation) {
  const double d = BigUint::pow(BigUint(36), 30).to_double();
  EXPECT_NEAR(d, 4.87e46, 0.05e46);
}

TEST(BigUint, SubtractionInvertsAddition) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const BigUint a(rng.next());
    const BigUint b(rng.next());
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ(a - a, BigUint(0));
  }
  // Borrow chains across limbs: 2^96 - 1.
  EXPECT_EQ(BigUint::pow2(96) - BigUint(1),
            BigUint::from_decimal("79228162514264337593543950335"));
}

TEST(BigUint, RightShiftDropsLowBits) {
  EXPECT_EQ(BigUint(0x12345678u) >> 8, BigUint(0x123456u));
  EXPECT_EQ(BigUint(1) >> 1, BigUint(0));
  EXPECT_EQ(BigUint::pow2(200) >> 137, BigUint::pow2(63));
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t v = rng.next();
    const unsigned s = static_cast<unsigned>(rng.below(64));
    EXPECT_EQ(BigUint(v) >> s, BigUint(v >> s));
    // Shifting a left-weighted value back down is exact.
    EXPECT_EQ((BigUint(v) * BigUint::pow2(77)) >> 77, BigUint(v));
  }
}

TEST(BigUint, U64Conversion) {
  EXPECT_TRUE(BigUint(0).fits_u64());
  EXPECT_EQ(BigUint(0).to_u64(), 0u);
  const std::uint64_t max64 = ~std::uint64_t{0};
  EXPECT_TRUE(BigUint(max64).fits_u64());
  EXPECT_EQ(BigUint(max64).to_u64(), max64);
  EXPECT_FALSE((BigUint(max64) + BigUint(1)).fits_u64());
  EXPECT_FALSE(BigUint::pow2(64).fits_u64());
  EXPECT_TRUE((BigUint::pow2(64) - BigUint(1)).fits_u64());
}

TEST(BigUint, Pow2MatchesPow) {
  for (unsigned e : {0u, 1u, 31u, 32u, 33u, 64u, 100u}) {
    EXPECT_EQ(BigUint::pow2(e), BigUint::pow(BigUint(2), e)) << e;
  }
}

TEST(BigUint, MulCommutesAndAssociates) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const BigUint a(rng.next());
    const BigUint b(rng.next());
    const BigUint c(rng.next());
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

}  // namespace
}  // namespace tt
