// StableVector unit suite: chunked growth without relocation, index
// round-trips across chunk boundaries, and the concurrent-reader contract
// the parallel engines' parent-link arrays rely on in fingerprint-only mode
// (a TSan target: reader threads walk entries published before a
// synchronization point while the writer keeps appending).
#include "support/stable_vector.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace tt {
namespace {

TEST(StableVector, RoundTripsAcrossChunkBoundaries) {
  StableVector<std::uint32_t> v;
  constexpr std::size_t kN = 3 * StableVector<std::uint32_t>::kChunkSize + 117;
  for (std::size_t i = 0; i < kN; ++i) v.push_back(static_cast<std::uint32_t>(i * 7));
  ASSERT_EQ(v.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(v[i], static_cast<std::uint32_t>(i * 7)) << "i=" << i;
  }
}

TEST(StableVector, AddressesNeverRelocate) {
  StableVector<std::uint32_t> v;
  v.push_back(42);
  const std::uint32_t* first = &v[0];
  for (std::size_t i = 1; i < 5 * StableVector<std::uint32_t>::kChunkSize; ++i) {
    v.push_back(static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(&v[0], first) << "growth must not move published elements";
  EXPECT_EQ(v[0], 42u);
}

TEST(StableVector, MemoryBytesGrowsWithChunks) {
  StableVector<std::uint64_t> v;
  const std::size_t empty = v.memory_bytes();  // directory only
  v.push_back(1);
  const std::size_t one_chunk = v.memory_bytes();
  EXPECT_GT(one_chunk, empty);
  for (std::size_t i = 0; i <= StableVector<std::uint64_t>::kChunkSize; ++i) v.push_back(i);
  EXPECT_GT(v.memory_bytes(), one_chunk);
}

// The TSan target: one writer appends while readers dereference every index
// below the writer's published watermark — exactly the parallel drain
// phase's parent[] access pattern when the fp-only resolver walks a chain
// owned by another shard. The watermark release/acquire pairs with the
// chunk-pointer publication inside push_back.
TEST(StableVector, ConcurrentReadersBelowPublishedWatermark) {
  StableVector<std::uint32_t> v;
  std::atomic<std::size_t> published{0};
  constexpr std::size_t kN = 4 * StableVector<std::uint32_t>::kChunkSize;

  std::thread writer([&] {
    for (std::size_t i = 0; i < kN; ++i) {
      v.push_back(static_cast<std::uint32_t>(i ^ 0x5a5a));
      published.store(i + 1, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      std::size_t seen = 0;
      while (seen < kN) {
        const std::size_t limit = published.load(std::memory_order_acquire);
        for (std::size_t i = seen; i < limit; ++i) {
          if (v[i] != static_cast<std::uint32_t>(i ^ 0x5a5a)) {
            ADD_FAILURE() << "index " << i << " read back wrong";
            return;
          }
        }
        seen = limit;
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(v.size(), kN);
}

}  // namespace
}  // namespace tt
