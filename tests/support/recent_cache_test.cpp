#include "support/recent_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace tt {
namespace {

TEST(RecentSeenCache, MissesWhenEmpty) {
  RecentSeenCache cache;
  EXPECT_EQ(cache.lookup(0), RecentSeenCache::kMiss);
  EXPECT_EQ(cache.lookup(0x1234567890abcdefULL), RecentSeenCache::kMiss);
}

TEST(RecentSeenCache, RemembersAndRecalls) {
  RecentSeenCache cache;
  cache.remember(42, 7);
  EXPECT_EQ(cache.lookup(42), 7u);
}

TEST(RecentSeenCache, DistinguishesFullHashWithinOneSlot) {
  // Two hashes landing in the same slot (equal low bits) must not be
  // confused: the stored full hash disambiguates, and the loser of the slot
  // is simply evicted.
  RecentSeenCache cache(16);
  const std::uint64_t a = 0x5;
  const std::uint64_t b = 0x5 + (std::uint64_t{1} << 32);  // same slot, different hash
  cache.remember(a, 1);
  EXPECT_EQ(cache.lookup(a), 1u);
  EXPECT_EQ(cache.lookup(b), RecentSeenCache::kMiss);
  cache.remember(b, 2);
  EXPECT_EQ(cache.lookup(b), 2u);
  EXPECT_EQ(cache.lookup(a), RecentSeenCache::kMiss);  // evicted
}

TEST(RecentSeenCache, RoundsCapacityToPowerOfTwo) {
  RecentSeenCache cache(100);
  EXPECT_EQ(cache.entries(), 128u);
  EXPECT_EQ(cache.memory_bytes(), 128u * 16u);
}

TEST(RecentSeenCache, ClearForgetsEverything) {
  RecentSeenCache cache(8);
  for (std::uint64_t h = 0; h < 64; ++h) cache.remember(h, static_cast<std::uint32_t>(h));
  cache.clear();
  for (std::uint64_t h = 0; h < 64; ++h) {
    EXPECT_EQ(cache.lookup(h), RecentSeenCache::kMiss) << h;
  }
}

TEST(RecentSeenCache, ZeroHashIsStorable) {
  // The empty slot sentinel is id == kMiss, not hash == 0: a genuine zero
  // hash must round-trip.
  RecentSeenCache cache(8);
  cache.remember(0, 3);
  EXPECT_EQ(cache.lookup(0), 3u);
}

}  // namespace
}  // namespace tt
