#include "support/sharded_state_index_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <unordered_set>
#include <vector>

#include "support/rng.hpp"

namespace tt {
namespace {

using Map2 = ShardedStateIndexMap<2>;

Map2::State make_state(std::uint64_t a, std::uint64_t b) { return {a, b}; }

TEST(ShardedStateIndexMap, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardedStateIndexMap<1>(1).shard_count(), 1u);
  EXPECT_EQ(ShardedStateIndexMap<1>(3).shard_count(), 4u);
  EXPECT_EQ(ShardedStateIndexMap<1>(16).shard_count(), 16u);
}

TEST(ShardedStateIndexMap, IdEncodesShardAndLocal) {
  Map2 map(16);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto s = make_state(i, i * 31);
    const auto [id, fresh] = map.insert_serial(s);
    ASSERT_TRUE(fresh);
    EXPECT_EQ(map.shard_of_id(id), map.shard_of(s));
    EXPECT_LT(map.local_of_id(id), map.shard_size(map.shard_of_id(id)));
    EXPECT_EQ(map.at(id), s);
    EXPECT_EQ(map.find(s), id);
  }
  EXPECT_EQ(map.size(), 1000u);
}

TEST(ShardedStateIndexMap, MatchesReferenceAcrossGrowth) {
  Map2 map(8, 64);  // tiny initial capacity forces per-shard growth cycles
  std::unordered_set<std::uint64_t> reference;
  Rng rng(1234);
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t key = rng.next() % 50000;
    const auto s = make_state(key, key ^ 0xabcdef);
    const bool fresh_ref = reference.insert(key).second;
    const auto [id, fresh] = map.insert(s);
    ASSERT_EQ(fresh, fresh_ref);
    ASSERT_EQ(map.at(id), s);
  }
  EXPECT_EQ(map.size(), reference.size());
  for (std::uint64_t key : reference) {
    EXPECT_NE(map.find(make_state(key, key ^ 0xabcdef)), Map2::kEmpty);
  }
}

TEST(ShardedStateIndexMap, SerialAndLockedInsertAgree) {
  Map2 locked(16);
  Map2 serial(16);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const auto s = make_state(i * 7, i);
    EXPECT_EQ(locked.insert(s).first, serial.insert_serial(s).first);
  }
  EXPECT_EQ(locked.size(), serial.size());
}

TEST(ShardedStateIndexMap, DeterministicIdsAcrossRuns) {
  std::vector<std::uint32_t> ids[2];
  for (auto& run : ids) {
    Map2 map(16);
    for (std::uint64_t i = 0; i < 3000; ++i) {
      run.push_back(map.insert_serial(make_state(i, ~i)).first);
    }
  }
  EXPECT_EQ(ids[0], ids[1]);
}

TEST(ShardedStateIndexMap, ReservePreventsMidRunRehashEffects) {
  Map2 map(8);
  map.reserve(100000);
  const std::size_t before = map.memory_bytes();
  for (std::uint64_t i = 0; i < 100000; ++i) map.insert_serial(make_state(i, i + 1));
  EXPECT_EQ(map.size(), 100000u);
  // Arena growth may still reallocate, but the probe tables were pre-sized.
  EXPECT_GE(map.memory_bytes(), before);
  for (std::uint64_t i = 0; i < 100000; i += 997) {
    EXPECT_NE(map.find(make_state(i, i + 1)), Map2::kEmpty);
  }
}

// The TSan target: 8 threads hammer insert() with heavily overlapping state
// sets, so the same shard (and the same state) is contended from many
// threads at once. Run under -fsanitize=thread in CI.
TEST(ShardedStateIndexMap, ConcurrentInsertStress) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kUniverse = 20000;  // every thread inserts all of it
  Map2 map(16);

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&map, t] {
      Rng rng(7 * t + 1);
      for (int i = 0; i < 60000; ++i) {
        const std::uint64_t key = rng.next() % kUniverse;
        const auto s = make_state(key, key * 1315423911ull);
        const auto [id, fresh] = map.insert(s);
        // The returned id must be stable and point at the inserted state,
        // whichever thread won the race to intern it.
        if (map.at(id) != s) {
          ADD_FAILURE() << "id " << id << " does not round-trip";
          return;
        }
        (void)fresh;
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(map.size(), kUniverse);
  std::unordered_set<std::uint32_t> ids;
  for (std::uint64_t key = 0; key < kUniverse; ++key) {
    const auto s = make_state(key, key * 1315423911ull);
    const std::uint32_t id = map.find(s);
    ASSERT_NE(id, Map2::kEmpty);
    EXPECT_EQ(map.at(id), s);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
  }
}

TEST(ShardedStateIndexMap, MemoryAccountingCoversAllShards) {
  Map2 map(16);
  const std::size_t before = map.memory_bytes();
  for (std::uint64_t i = 0; i < 10000; ++i) map.insert_serial(make_state(i, i));
  EXPECT_GT(map.memory_bytes(), before);
  EXPECT_GE(map.memory_bytes(), 10000 * sizeof(Map2::State));
}

}  // namespace
}  // namespace tt
