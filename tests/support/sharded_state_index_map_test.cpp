#include "support/sharded_state_index_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <unordered_set>
#include <vector>

#include "support/rng.hpp"

namespace tt {
namespace {

using Map2 = ShardedStateIndexMap<2>;

Map2::State make_state(std::uint64_t a, std::uint64_t b) { return {a, b}; }

TEST(ShardedStateIndexMap, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardedStateIndexMap<1>(1).shard_count(), 1u);
  EXPECT_EQ(ShardedStateIndexMap<1>(3).shard_count(), 4u);
  EXPECT_EQ(ShardedStateIndexMap<1>(16).shard_count(), 16u);
}

TEST(ShardedStateIndexMap, IdEncodesShardAndLocal) {
  Map2 map(16);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const auto s = make_state(i, i * 31);
    const auto [id, fresh] = map.insert_serial(s);
    ASSERT_TRUE(fresh);
    EXPECT_EQ(map.shard_of_id(id), map.shard_of(s));
    EXPECT_LT(map.local_of_id(id), map.shard_size(map.shard_of_id(id)));
    EXPECT_EQ(map.at(id), s);
    EXPECT_EQ(map.find(s), id);
  }
  EXPECT_EQ(map.size(), 1000u);
}

TEST(ShardedStateIndexMap, MatchesReferenceAcrossGrowth) {
  Map2 map(8, 64);  // tiny initial capacity forces per-shard growth cycles
  std::unordered_set<std::uint64_t> reference;
  Rng rng(1234);
  for (int i = 0; i < 200000; ++i) {
    const std::uint64_t key = rng.next() % 50000;
    const auto s = make_state(key, key ^ 0xabcdef);
    const bool fresh_ref = reference.insert(key).second;
    const auto [id, fresh] = map.insert(s);
    ASSERT_EQ(fresh, fresh_ref);
    ASSERT_EQ(map.at(id), s);
  }
  EXPECT_EQ(map.size(), reference.size());
  for (std::uint64_t key : reference) {
    EXPECT_NE(map.find(make_state(key, key ^ 0xabcdef)), Map2::kEmpty);
  }
}

TEST(ShardedStateIndexMap, SerialAndLockedInsertAgree) {
  Map2 locked(16);
  Map2 serial(16);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const auto s = make_state(i * 7, i);
    EXPECT_EQ(locked.insert(s).first, serial.insert_serial(s).first);
  }
  EXPECT_EQ(locked.size(), serial.size());
}

TEST(ShardedStateIndexMap, DeterministicIdsAcrossRuns) {
  std::vector<std::uint32_t> ids[2];
  for (auto& run : ids) {
    Map2 map(16);
    for (std::uint64_t i = 0; i < 3000; ++i) {
      run.push_back(map.insert_serial(make_state(i, ~i)).first);
    }
  }
  EXPECT_EQ(ids[0], ids[1]);
}

TEST(ShardedStateIndexMap, ReservePreventsMidRunRehashEffects) {
  Map2 map(8);
  map.reserve(100000);
  const std::size_t before = map.memory_bytes();
  for (std::uint64_t i = 0; i < 100000; ++i) map.insert_serial(make_state(i, i + 1));
  EXPECT_EQ(map.size(), 100000u);
  // Arena growth may still reallocate, but the probe tables were pre-sized.
  EXPECT_GE(map.memory_bytes(), before);
  for (std::uint64_t i = 0; i < 100000; i += 997) {
    EXPECT_NE(map.find(make_state(i, i + 1)), Map2::kEmpty);
  }
}

// The TSan target: 8 threads hammer insert() with heavily overlapping state
// sets, so the same shard (and the same state) is contended from many
// threads at once. Run under -fsanitize=thread in CI. Per the header's
// thread-safety contract, at()/find() require quiescence w.r.t. same-shard
// inserts (the level-synchronous engines read only between write phases),
// so each worker records the ids it saw and every check runs after join —
// the lock-free store's torture test is the one that exercises truly
// concurrent read/write.
TEST(ShardedStateIndexMap, ConcurrentInsertStress) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kUniverse = 20000;  // every thread inserts all of it
  Map2 map(16);

  std::vector<std::vector<std::uint32_t>> seen_ids(kThreads,
                                                   std::vector<std::uint32_t>(kUniverse, Map2::kEmpty));
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&map, &ids = seen_ids[t], t] {
      Rng rng(7 * t + 1);
      for (int i = 0; i < 60000; ++i) {
        const std::uint64_t key = rng.next() % kUniverse;
        const auto s = make_state(key, key * 1315423911ull);
        const auto [id, fresh] = map.insert(s);
        // The id must be stable whichever thread won the race to intern the
        // state: remember it, cross-check against every other thread below.
        if (ids[key] != Map2::kEmpty && ids[key] != id) {
          ADD_FAILURE() << "key " << key << " changed id " << ids[key] << " -> " << id;
          return;
        }
        ids[key] = id;
        (void)fresh;
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(map.size(), kUniverse);
  std::unordered_set<std::uint32_t> ids;
  for (std::uint64_t key = 0; key < kUniverse; ++key) {
    const auto s = make_state(key, key * 1315423911ull);
    const std::uint32_t id = map.find(s);
    ASSERT_NE(id, Map2::kEmpty);
    EXPECT_EQ(map.at(id), s);
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_TRUE(seen_ids[t][key] == Map2::kEmpty || seen_ids[t][key] == id)
          << "thread " << t << " saw a different id for key " << key;
    }
  }
}

// Regression for the shard-window overlap bug: shard routing used to read
// bits 40..47 of the hash (`h >> 40`), which collide with the probe-slot
// index once a shard's table passes 2^24 slots — correlated routing and
// probing degrade the load balance exactly on the biggest runs. The window
// now sits in the top kShardWindowBits of the hash, derived from kMaxShards,
// so it can never overlap the probe bits however large a table grows.
TEST(ShardedStateIndexMap, ShardRoutingUsesOnlyTopHashBits) {
  ShardedStateIndexMap<1> map(256);  // full window: every top-bit pattern maps
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t h = rng.next();
    const unsigned expect = static_cast<unsigned>(h >> kShardHashShift) & 255u;
    ASSERT_EQ(map.shard_of(h), expect);
    // Perturbing the old window (bits 40..47) and every probe-relevant low
    // bit must not move the state to another shard.
    ASSERT_EQ(map.shard_of(h ^ (0xffull << 40)), expect)
        << "routing read the pre-fix bit window";
    ASSERT_EQ(map.shard_of(h ^ 0xffffffffull), expect);
  }
}

TEST(ShardedStateIndexMap, ShardRoutingIsBalancedPastOldWindowBoundary) {
  // Hashes engineered so the OLD window (bits 40..47) is constant: under the
  // pre-fix routing all of them land in shard 0; under top-bit routing they
  // spread. Honest about scale — we cannot afford a >2^24-slot table in a
  // unit test, so this asserts the window choice, which is what the overlap
  // depended on.
  ShardedStateIndexMap<1> map(16);
  std::array<std::size_t, 16> histogram{};
  Rng rng(7);
  for (int i = 0; i < 4096; ++i) {
    const std::uint64_t h = rng.next() & ~(0xffull << 40);  // old window zeroed
    ++histogram[map.shard_of(h)];
  }
  for (unsigned s = 0; s < 16; ++s) {
    EXPECT_GT(histogram[s], 0u) << "shard " << s << " starved: routing ignored top bits";
  }
}

TEST(ShardedStateIndexMap, PerShardCapThrowsStateCapacityError) {
  // One shard makes max_states_per_shard an exact total cap.
  ShardedStateIndexMap<2> map(1, 64, /*max_states_per_shard=*/4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(map.insert(make_state(i, i)).second);
  }
  EXPECT_FALSE(map.insert(make_state(0, 0)).second);  // duplicates stay fine
  EXPECT_THROW(map.insert(make_state(99, 99)), StateCapacityError);
  EXPECT_THROW(map.insert_serial(make_state(77, 77)), StateCapacityError);
  EXPECT_EQ(map.size(), 4u);
}

TEST(ShardedStateIndexMap, MemoryAccountingCoversAllShards) {
  Map2 map(16);
  const std::size_t before = map.memory_bytes();
  for (std::uint64_t i = 0; i < 10000; ++i) map.insert_serial(make_state(i, i));
  EXPECT_GT(map.memory_bytes(), before);
  EXPECT_GE(map.memory_bytes(), 10000 * sizeof(Map2::State));
}

}  // namespace
}  // namespace tt
