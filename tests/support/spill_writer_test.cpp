// SpillWriter unit suite (DESIGN.md §3.9): per-file append offsets assigned
// at enqueue time, completion harvesting, the wait_idle barrier, read-back
// through the remapped files, the injected-ENOSPC failure path, and the
// hard error on an explicitly requested unwritable directory.
#include "support/spill_writer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>
#include <vector>

namespace tt {
namespace {

#if defined(__unix__) || defined(__APPLE__)

std::vector<std::uint8_t> make_page(std::size_t len, std::uint8_t seed) {
  std::vector<std::uint8_t> page(len);
  for (std::size_t i = 0; i < len; ++i) {
    page[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return page;
}

TEST(SpillWriter, PlatformSupportedOnPosix) { EXPECT_TRUE(SpillWriter::platform_supported()); }

TEST(SpillWriter, OffsetsAreAssignedPerFileAtEnqueueTime) {
  SpillWriter w(3);
  const auto a = make_page(100, 1);
  const auto b = make_page(200, 2);
  const auto c = make_page(50, 3);
  // Interleave files: each file's offsets bump independently, and the
  // returned offset is decided before the I/O thread touches anything.
  EXPECT_EQ(w.enqueue(0, a.data(), 100, 10), 0u);
  EXPECT_EQ(w.enqueue(1, b.data(), 200, 11), 0u);
  EXPECT_EQ(w.enqueue(0, c.data(), 50, 12), 100u);
  EXPECT_EQ(w.enqueue(1, c.data(), 50, 13), 200u);
  EXPECT_EQ(w.enqueue(2, a.data(), 100, 14), 0u);
  w.wait_idle();
  EXPECT_FALSE(w.failed()) << w.error();
  EXPECT_EQ(w.stats().bytes_written, 500u);
}

TEST(SpillWriter, HarvestReportsEveryCompletionExactlyOnce) {
  SpillWriter w(2);
  constexpr int kJobs = 40;
  std::vector<std::vector<std::uint8_t>> pages;
  pages.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    pages.push_back(make_page(64 + i, static_cast<std::uint8_t>(i)));
    w.enqueue(static_cast<unsigned>(i % 2), pages.back().data(),
              static_cast<std::uint32_t>(pages.back().size()),
              /*cookie=*/static_cast<std::uint64_t>(1000 + i));
  }
  w.wait_idle();
  std::vector<SpillWriter::Completion> done;
  w.harvest(done);
  ASSERT_EQ(done.size(), static_cast<std::size_t>(kJobs));
  std::set<std::uint64_t> cookies;
  for (const auto& c : done) {
    EXPECT_TRUE(cookies.insert(c.cookie).second) << "duplicate cookie " << c.cookie;
    const int i = static_cast<int>(c.cookie - 1000);
    ASSERT_GE(i, 0);
    ASSERT_LT(i, kJobs);
    EXPECT_EQ(c.file, static_cast<unsigned>(i % 2));
    EXPECT_EQ(c.length, 64u + static_cast<std::uint32_t>(i));
  }
  // A second harvest finds nothing: completions are consumed, not replayed.
  std::vector<SpillWriter::Completion> again;
  EXPECT_EQ(w.harvest(again), 0u);
}

TEST(SpillWriter, DataReadsBackExactlyAfterRemap) {
  SpillWriter w(2);
  const auto a = make_page(4096, 7);
  const auto b = make_page(1024, 42);
  const std::uint64_t off_a = w.enqueue(0, a.data(), 4096, 1);
  const std::uint64_t off_b = w.enqueue(1, b.data(), 1024, 2);
  const auto c = make_page(512, 99);
  const std::uint64_t off_c = w.enqueue(0, c.data(), 512, 3);
  w.wait_idle();
  ASSERT_FALSE(w.failed()) << w.error();
  ASSERT_TRUE(w.remap_all());
  EXPECT_EQ(std::vector<std::uint8_t>(w.data(0, off_a, 4096), w.data(0, off_a, 4096) + 4096), a);
  EXPECT_EQ(std::vector<std::uint8_t>(w.data(1, off_b, 1024), w.data(1, off_b, 1024) + 1024), b);
  EXPECT_EQ(std::vector<std::uint8_t>(w.data(0, off_c, 512), w.data(0, off_c, 512) + 512), c);
}

TEST(SpillWriter, EarlierOffsetsSurviveLaterRemaps) {
  SpillWriter w(1);
  std::vector<std::vector<std::uint8_t>> pages;
  std::vector<std::uint64_t> offsets;
  for (int round = 0; round < 5; ++round) {
    pages.push_back(make_page(2000, static_cast<std::uint8_t>(round * 17)));
    offsets.push_back(w.enqueue(0, pages.back().data(), 2000, static_cast<std::uint64_t>(round)));
    w.wait_idle();
    ASSERT_TRUE(w.remap_all());
    for (std::size_t i = 0; i < pages.size(); ++i) {
      const std::uint8_t* p = w.data(0, offsets[i], 2000);
      ASSERT_EQ(std::vector<std::uint8_t>(p, p + 2000), pages[i]) << "round " << round;
    }
  }
}

TEST(SpillWriter, InjectedDeviceFullSurfacesAsFailure) {
  ::setenv("TTSTART_SPILL_FAIL_AFTER", "1024", 1);
  SpillWriter w(1);
  ::unsetenv("TTSTART_SPILL_FAIL_AFTER");
  const auto a = make_page(1024, 5);
  const auto b = make_page(1024, 6);
  w.enqueue(0, a.data(), 1024, 1);  // fills the injected cap exactly
  w.enqueue(0, b.data(), 1024, 2);  // must fail as if the device were full
  w.wait_idle();
  EXPECT_TRUE(w.failed());
  EXPECT_NE(w.error().find("No space left on device"), std::string::npos) << w.error();
  // After a failure the writer refuses further work instead of wedging.
  EXPECT_EQ(w.enqueue(0, a.data(), 1024, 3), 0u);
}

TEST(SpillWriter, ExplicitUnwritableDirectoryIsAHardError) {
  SpillWriter w(1, "/nonexistent-spill-dir-for-test");
  const auto a = make_page(64, 1);
  w.enqueue(0, a.data(), 64, 1);
  w.wait_idle();
  EXPECT_TRUE(w.failed());
  EXPECT_NE(w.error().find("unwritable"), std::string::npos) << w.error();
}

TEST(SpillWriter, EnvRequestedUnwritableDirectoryIsAHardErrorToo) {
  // TTSTART_SPILL_DIR is a user request just like --spill-dir: falling
  // through to /tmp silently would hide a misconfiguration.
  ::setenv("TTSTART_SPILL_DIR", "/nonexistent-spill-dir-for-test", 1);
  SpillWriter w(1);
  const auto a = make_page(64, 1);
  w.enqueue(0, a.data(), 64, 1);
  w.wait_idle();
  ::unsetenv("TTSTART_SPILL_DIR");
  EXPECT_TRUE(w.failed());
  EXPECT_NE(w.error().find("unwritable"), std::string::npos) << w.error();
}

TEST(SpillWriter, MemoryBytesCoversRingAndFileMetadata) {
  SpillWriter w(8);
  EXPECT_GE(w.memory_bytes(), SpillWriter::kRingCapacity * sizeof(std::uint64_t));
  const std::size_t before = w.memory_bytes();
  const auto a = make_page(256, 1);
  w.enqueue(3, a.data(), 256, 1);
  w.wait_idle();
  EXPECT_GE(w.memory_bytes(), before);  // metadata never shrinks mid-run
}

TEST(SpillWriter, StatsCountAsyncPages) {
  SpillWriter w(1);
  const auto a = make_page(128, 9);
  for (int i = 0; i < 10; ++i) w.enqueue(0, a.data(), 128, static_cast<std::uint64_t>(i));
  w.wait_idle();
  EXPECT_EQ(w.stats().async_pages, 10u);
  EXPECT_EQ(w.stats().bytes_written, 1280u);
}

#else  // !POSIX

TEST(SpillWriter, PlatformUnsupportedFailsLoudly) {
  EXPECT_FALSE(SpillWriter::platform_supported());
  SpillWriter w(1);
  EXPECT_TRUE(w.failed());
}

#endif

}  // namespace
}  // namespace tt
