#include "tta/node.hpp"

#include <gtest/gtest.h>

namespace tt::tta {
namespace {

ClusterConfig cfg4() {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.init_window = 3;
  return cfg;
}

const Frame kQuietIn[kNumChannels] = {Frame::quiet(), Frame::quiet()};

TEST(ClassifyReception, SingleChannelFrames) {
  auto r = classify_reception(Frame::cs(2), Frame::quiet());
  EXPECT_TRUE(r.cs_frame);
  EXPECT_FALSE(r.i_frame);
  EXPECT_FALSE(r.collision);
  EXPECT_EQ(r.time, 2);

  r = classify_reception(Frame::quiet(), Frame::i(3));
  EXPECT_TRUE(r.i_frame);
  EXPECT_EQ(r.time, 3);
}

TEST(ClassifyReception, AgreeingChannels) {
  auto r = classify_reception(Frame::cs(1), Frame::cs(1));
  EXPECT_TRUE(r.cs_frame);
  EXPECT_FALSE(r.collision);
}

TEST(ClassifyReception, LogicalCollision) {
  // Different cs-frames on the two channels: the §2.3 "logical collision".
  auto r = classify_reception(Frame::cs(1), Frame::cs(2));
  EXPECT_TRUE(r.collision);
  // Conflicting i-frames are equally ambiguous.
  r = classify_reception(Frame::i(1), Frame::i(3));
  EXPECT_TRUE(r.collision);
}

TEST(ClassifyReception, IFrameBeatsCsFrame) {
  // An i-frame provably comes from a synchronous node; a conflicting cs on
  // the other channel does not make it ambiguous (see classify_reception).
  auto r = classify_reception(Frame::cs(1), Frame::i(2));
  EXPECT_TRUE(r.i_frame);
  EXPECT_FALSE(r.collision);
  EXPECT_EQ(r.time, 2);
  r = classify_reception(Frame::i(0), Frame::cs(0));
  EXPECT_TRUE(r.i_frame);
  EXPECT_EQ(r.time, 0);
}

TEST(ClassifyReception, NoiseAndIllFormedIgnored) {
  auto r = classify_reception(Frame::noise(), Frame::quiet());
  EXPECT_FALSE(r.cs_frame);
  EXPECT_FALSE(r.i_frame);
  EXPECT_FALSE(r.collision);
  // An ill-formed i-frame neither integrates nor collides.
  r = classify_reception(Frame::i_bad(), Frame::cs(2));
  EXPECT_TRUE(r.cs_frame);
  EXPECT_FALSE(r.collision);
  EXPECT_EQ(r.time, 2);
}

TEST(NodeInit, StayOrWakeUntilWindow) {
  const auto cfg = cfg4();
  NodeVars v;  // INIT, counter 1
  EXPECT_EQ(node_option_count(cfg, v), 2);
  // Option 1: stay.
  auto stay = node_step(cfg, 0, v, kQuietIn, 1);
  EXPECT_EQ(stay.next.state, NodeState::kInit);
  EXPECT_EQ(stay.next.counter, 2);
  // Option 0: wake -> LISTEN with counter 1 and the big bang armed.
  auto wake = node_step(cfg, 0, v, kQuietIn, 0);
  EXPECT_EQ(wake.next.state, NodeState::kListen);
  EXPECT_EQ(wake.next.counter, 1);
  EXPECT_TRUE(wake.next.big_bang);
  EXPECT_TRUE(wake.out.is_quiet());
}

TEST(NodeInit, MustWakeAtWindowEnd) {
  const auto cfg = cfg4();
  NodeVars v;
  v.counter = 3;  // == init_window
  EXPECT_EQ(node_option_count(cfg, v), 1);
  auto st = node_step(cfg, 0, v, kQuietIn, 0);
  EXPECT_EQ(st.next.state, NodeState::kListen);
}

TEST(NodeListen, TimeoutSendsColdstartFrame) {
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kListen;
  v.counter = static_cast<std::uint8_t>(cfg.listen_timeout(2));  // node 2: 2n+2 = 10
  auto st = node_step(cfg, 2, v, kQuietIn, 0);
  EXPECT_EQ(st.next.state, NodeState::kColdstart);
  EXPECT_EQ(st.next.counter, 1);
  EXPECT_EQ(st.out.kind, MsgKind::kCs);
  EXPECT_EQ(st.out.time, 2);
  // No frame was ever received, so the big bang stays armed into COLDSTART.
  EXPECT_TRUE(st.next.big_bang);
}

TEST(NodeListen, CountsWhileSilent) {
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kListen;
  v.counter = 4;
  auto st = node_step(cfg, 2, v, kQuietIn, 0);
  EXPECT_EQ(st.next.state, NodeState::kListen);
  EXPECT_EQ(st.next.counter, 5);
  EXPECT_TRUE(st.out.is_quiet());
}

TEST(NodeListen, BigBangConsumesFirstCsFrame) {
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kListen;
  v.counter = 5;
  v.big_bang = true;
  const Frame in[kNumChannels] = {Frame::cs(1), Frame::quiet()};
  auto st = node_step(cfg, 2, v, in, 0);
  // Big-bang: enter COLDSTART at clock 2 WITHOUT adopting the contents.
  EXPECT_EQ(st.next.state, NodeState::kColdstart);
  EXPECT_EQ(st.next.counter, 2);
  EXPECT_FALSE(st.next.big_bang);
  EXPECT_TRUE(st.out.is_quiet());
}

TEST(NodeListen, WithoutBigBangSyncsOnFirstCs) {
  auto cfg = cfg4();
  cfg.big_bang = false;  // §5.2 design-exploration variant
  NodeVars v;
  v.state = NodeState::kListen;
  v.counter = 5;
  const Frame in[kNumChannels] = {Frame::cs(1), Frame::quiet()};
  auto st = node_step(cfg, 2, v, in, 0);
  EXPECT_EQ(st.next.state, NodeState::kActive);
  EXPECT_EQ(st.next.pos, 2);  // cs named slot 1, so the current slot is 2
  EXPECT_EQ(st.out.kind, MsgKind::kI);  // pos == id: transmit immediately
}

TEST(NodeListen, CollisionActsLikeBigBang) {
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kListen;
  v.counter = 5;
  const Frame in[kNumChannels] = {Frame::cs(1), Frame::cs(3)};
  auto st = node_step(cfg, 0, v, in, 0);
  EXPECT_EQ(st.next.state, NodeState::kColdstart);
  EXPECT_EQ(st.next.counter, 2);
}

TEST(NodeListen, IntegratesOnIFrame) {
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kListen;
  v.counter = 3;
  const Frame in[kNumChannels] = {Frame::i(2), Frame::i(2)};
  auto st = node_step(cfg, 0, v, in, 0);
  EXPECT_EQ(st.next.state, NodeState::kActive);
  EXPECT_EQ(st.next.pos, 3);
  EXPECT_TRUE(st.out.is_quiet());  // slot 3 belongs to node 3
}

TEST(NodeColdstart, FirstCsIsBigBangEvenHere) {
  // A node that reached COLDSTART through its listen timeout has not
  // consumed the big bang yet: the first cs-frame it receives resets the
  // clock but is not adopted (it may be half of a collision).
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kColdstart;
  v.counter = 3;
  v.big_bang = true;
  const Frame in[kNumChannels] = {Frame::cs(1), Frame::quiet()};
  auto st = node_step(cfg, 2, v, in, 0);
  EXPECT_EQ(st.next.state, NodeState::kColdstart);
  EXPECT_EQ(st.next.counter, 2);
  EXPECT_FALSE(st.next.big_bang);
}

TEST(NodeColdstart, SyncsOnForeignCs) {
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kColdstart;
  v.counter = 3;
  v.big_bang = false;  // big bang already consumed
  const Frame in[kNumChannels] = {Frame::cs(1), Frame::quiet()};
  auto st = node_step(cfg, 2, v, in, 0);
  EXPECT_EQ(st.next.state, NodeState::kActive);
  EXPECT_EQ(st.next.pos, 2);  // slot after the sender's
  EXPECT_EQ(st.out.kind, MsgKind::kI);
}

TEST(NodeColdstart, IgnoresOwnEcho) {
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kColdstart;
  v.counter = 3;
  v.big_bang = false;
  // A cs carrying our own id: our echo (or a masquerade) — not "another"
  // cs-frame, so we keep waiting.
  const Frame in[kNumChannels] = {Frame::cs(2), Frame::cs(2)};
  auto st = node_step(cfg, 2, v, in, 0);
  EXPECT_EQ(st.next.state, NodeState::kColdstart);
  EXPECT_EQ(st.next.counter, 4);
}

TEST(NodeColdstart, OwnEchoDoesNotConsumeBigBang) {
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kColdstart;
  v.counter = 3;
  v.big_bang = true;
  const Frame in[kNumChannels] = {Frame::cs(2), Frame::cs(2)};
  auto st = node_step(cfg, 2, v, in, 0);
  EXPECT_EQ(st.next.state, NodeState::kColdstart);
  EXPECT_EQ(st.next.counter, 4);
  EXPECT_TRUE(st.next.big_bang);
}

TEST(NodeColdstart, TimeoutRetransmits) {
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kColdstart;
  v.counter = static_cast<std::uint8_t>(cfg.coldstart_timeout(1));  // 5
  auto st = node_step(cfg, 1, v, kQuietIn, 0);
  EXPECT_EQ(st.next.state, NodeState::kColdstart);
  EXPECT_EQ(st.next.counter, 1);
  EXPECT_EQ(st.out.kind, MsgKind::kCs);
  EXPECT_EQ(st.out.time, 1);
}

TEST(NodeColdstart, CollisionDoesNotSync) {
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kColdstart;
  v.counter = 2;
  v.big_bang = false;
  const Frame in[kNumChannels] = {Frame::cs(0), Frame::cs(3)};
  auto st = node_step(cfg, 1, v, in, 0);
  EXPECT_EQ(st.next.state, NodeState::kColdstart);
  EXPECT_EQ(st.next.counter, 3);
}

TEST(NodeColdstart, CollisionConsumesArmedBigBang) {
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kColdstart;
  v.counter = 5;
  v.big_bang = true;
  const Frame in[kNumChannels] = {Frame::cs(0), Frame::cs(3)};
  auto st = node_step(cfg, 1, v, in, 0);
  EXPECT_EQ(st.next.state, NodeState::kColdstart);
  EXPECT_EQ(st.next.counter, 2);  // clock re-phased to the observed event
  EXPECT_FALSE(st.next.big_bang);
}

TEST(NodeActive, RunsTdmaSchedule) {
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kActive;
  v.pos = 1;
  // Step: position advances to 2; node 2 owns that slot.
  auto st = node_step(cfg, 2, v, kQuietIn, 0);
  EXPECT_EQ(st.next.pos, 2);
  EXPECT_EQ(st.out.kind, MsgKind::kI);
  EXPECT_EQ(st.out.time, 2);
  // Next step: position 3, quiet for node 2.
  st = node_step(cfg, 2, st.next, kQuietIn, 0);
  EXPECT_EQ(st.next.pos, 3);
  EXPECT_TRUE(st.out.is_quiet());
  // Wraps around modulo n.
  st = node_step(cfg, 2, st.next, kQuietIn, 0);
  EXPECT_EQ(st.next.pos, 0);
}

TEST(NodeListen, NoiseDoesNotResetOrConsumeAnything) {
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kListen;
  v.counter = 4;
  const Frame in[kNumChannels] = {Frame::noise(), Frame::noise()};
  auto st = node_step(cfg, 1, v, in, 0);
  EXPECT_EQ(st.next.state, NodeState::kListen);
  EXPECT_EQ(st.next.counter, 5);
  EXPECT_TRUE(st.next.big_bang);
}

TEST(NodeListen, IllFormedFrameTreatedAsNoise) {
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kListen;
  v.counter = 4;
  const Frame in[kNumChannels] = {Frame::i_bad(), Frame::quiet()};
  auto st = node_step(cfg, 1, v, in, 0);
  EXPECT_EQ(st.next.state, NodeState::kListen);
  EXPECT_TRUE(st.next.big_bang);
}

TEST(NodeActive, IgnoresAllInputs) {
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kActive;
  v.pos = 0;
  // Even a cs-frame cannot dislodge an active node from its schedule.
  const Frame in[kNumChannels] = {Frame::cs(3), Frame::i(2)};
  auto st = node_step(cfg, 1, v, in, 0);
  EXPECT_EQ(st.next.state, NodeState::kActive);
  EXPECT_EQ(st.next.pos, 1);
  EXPECT_EQ(st.out.kind, MsgKind::kI);  // slot 1 is its own
}

TEST(NodeListen, IntegrationAdoptsScheduleWrap) {
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kListen;
  v.counter = 2;
  // i-frame naming the last slot: the current slot wraps to 0.
  const Frame in[kNumChannels] = {Frame::i(3), Frame::quiet()};
  auto st = node_step(cfg, 0, v, in, 0);
  EXPECT_EQ(st.next.state, NodeState::kActive);
  EXPECT_EQ(st.next.pos, 0);
  EXPECT_EQ(st.out.kind, MsgKind::kI);  // slot 0 belongs to node 0
}

TEST(NodeColdstart, IFrameSyncsEvenWithOwnId) {
  // An i-frame naming our own slot means the set is running and our slot is
  // current: integrate and take position (time+1).
  const auto cfg = cfg4();
  NodeVars v;
  v.state = NodeState::kColdstart;
  v.counter = 2;
  const Frame in[kNumChannels] = {Frame::i(2), Frame::quiet()};
  auto st = node_step(cfg, 2, v, in, 0);
  EXPECT_EQ(st.next.state, NodeState::kActive);
  EXPECT_EQ(st.next.pos, 3);
}

}  // namespace
}  // namespace tt::tta
