// Partial-order reduction suite (tta/independence.hpp, DESIGN.md §3.8).
//
// The strongest check mirrors Symmetry.SampledBisimulation but is exhaustive
// rather than sampled: the clamp map must be a strong bisimulation on the
// union of the raw reachable graph and the clamp quotient, refined against
// every lemma label. Partition refinement computes the coarsest
// label-respecting bisimulation of the union graph; every raw state must
// then land in the same block as its image. The same oracle run against two
// deliberately broken relations — per-transmission masking
// (dedupe_slots = false) and an off-by-one horizon (margin = -1) — must
// report inequivalent pairs, demonstrating the oracle has the power to catch
// an unsound certificate, not just bless the shipped one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "tta/cluster.hpp"
#include "tta/config.hpp"
#include "tta/independence.hpp"
#include "tta/properties.hpp"

namespace tt::tta {
namespace {

struct NamedConfig {
  const char* name;
  ClusterConfig cfg;
};

ClusterConfig fig6_config(int n) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.faulty_node = 0;
  cfg.fault_degree = 6;
  cfg.init_window = n;
  cfg.hub_init_window = n;
  cfg.feedback = true;
  return cfg;
}

std::vector<NamedConfig> oracle_configs() {
  std::vector<NamedConfig> out;
  out.push_back({"fig6_n3", fig6_config(3)});
  {
    ClusterConfig cfg = fig6_config(3);  // §2.1 restart dimension
    cfg.transient_restarts = 1;
    out.push_back({"fig6_n3_restart", cfg});
  }
  {
    ClusterConfig cfg = fig6_config(3);  // startup_time tracked in the state
    cfg.timeliness_bound = 18;
    cfg.timeliness_target = TimelinessTarget::kFirstCorrectActive;
    out.push_back({"fig6_n3_timely", cfg});
  }
  out.push_back({"fig6_n4", fig6_config(4)});
  return out;
}

/// The reduction map under oracle test: raw packed state -> representative.
using ReduceFn = std::function<Cluster::State(const Cluster::State&)>;

/// Explicit graph over interned packed states with a pluggable successor
/// image (identity for the raw layer, the clamp for the quotient layer).
struct Graph {
  std::vector<Cluster::State> states;
  std::vector<std::vector<int>> succ;
  std::map<Cluster::State, int> ids;

  int intern(const Cluster::State& s) {
    auto [it, fresh] = ids.emplace(s, static_cast<int>(states.size()));
    if (fresh) {
      states.push_back(s);
      succ.emplace_back();
    }
    return it->second;
  }
};

/// BFS closure of `graph` from its already-interned roots, stepping with the
/// raw successor relation mapped through `image`.
void close_graph(const Cluster& raw, Graph& graph, const ReduceFn& image) {
  for (std::size_t head = 0; head < graph.states.size(); ++head) {
    const Cluster::State s = graph.states[head];
    std::vector<int> out;
    raw.successors(s, [&](const Cluster::State& t) {
      out.push_back(graph.intern(image ? image(t) : t));
    });
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    graph.succ[head] = std::move(out);
    ASSERT_LT(graph.states.size(), std::size_t{400000}) << "oracle graph blew up";
  }
}

/// Coarsest bisimulation of the disjoint union of `a` and `b` that respects
/// the lemma labels: standard signature-refinement to a fixpoint. Returns
/// the block id of every node (a's nodes first, then b's).
std::vector<int> bisimulation_blocks(const Cluster& raw, const ClusterConfig& cfg,
                                     const Graph& a, const Graph& b) {
  const int na = static_cast<int>(a.states.size());
  const int nb = static_cast<int>(b.states.size());
  auto label = [&](const Cluster::State& s) {
    const ClusterState c = raw.unpack(s);
    int key = holds_safety(cfg, c) ? 1 : 0;
    key |= all_correct_active(cfg, c) ? 2 : 0;
    key |= holds_hub_agreement(cfg, c) ? 4 : 0;
    if (cfg.timeliness_bound > 0) key |= holds_timeliness(cfg, c) ? 8 : 0;
    return key;
  };
  std::vector<int> block(na + nb);
  {
    std::map<int, int> first;
    for (int i = 0; i < na + nb; ++i) {
      const int key = label(i < na ? a.states[i] : b.states[i - na]);
      block[i] = first.emplace(key, static_cast<int>(first.size())).first->second;
    }
  }
  auto successors = [&](int i) -> const std::vector<int>& {
    return i < na ? a.succ[i] : b.succ[i - na];
  };
  // Each signature embeds the current block, so a round only ever splits
  // blocks — an unchanged block count IS the fixpoint.
  int nblocks = *std::max_element(block.begin(), block.end()) + 1;
  for (;;) {
    std::map<std::vector<int>, int> sigs;
    std::vector<int> next(na + nb);
    for (int i = 0; i < na + nb; ++i) {
      std::vector<int> sig;
      sig.push_back(block[i]);
      for (const int t : successors(i)) sig.push_back(block[i < na ? t : t + na]);
      std::sort(sig.begin() + 1, sig.end());
      sig.erase(std::unique(sig.begin() + 1, sig.end()), sig.end());
      next[i] = sigs.emplace(std::move(sig), static_cast<int>(sigs.size())).first->second;
    }
    if (static_cast<int>(sigs.size()) == nblocks) return next;
    nblocks = static_cast<int>(sigs.size());
    block = std::move(next);
  }
}

/// Counts raw states whose image is NOT bisimilar to them (0 = the map is a
/// strong bisimulation wrt every lemma label).
int oracle_failures(const ClusterConfig& cfg, const ReduceFn& image) {
  const Cluster raw(cfg);
  Graph raw_graph;
  raw.initial_states([&](const Cluster::State& s) { raw_graph.intern(s); });
  close_graph(raw, raw_graph, nullptr);

  Graph quot;
  for (const auto& s : raw_graph.states) quot.intern(image(s));
  close_graph(raw, quot, image);

  const std::vector<int> block = bisimulation_blocks(raw, cfg, raw_graph, quot);
  const int na = static_cast<int>(raw_graph.states.size());
  int failures = 0;
  for (int i = 0; i < na; ++i) {
    const int qi = quot.ids.at(image(raw_graph.states[i]));
    if (block[i] != block[na + qi]) ++failures;
  }
  return failures;
}

ReduceFn clamp_image(const Cluster& raw, const PartialOrderReducer& por) {
  return [&raw, &por](const Cluster::State& s) {
    ClusterState c = raw.unpack(s);
    por.saturate(c);
    return raw.pack(c);
  };
}

TEST(Independence, ClampIsABisimulationOnTheReachableGraph) {
  for (const auto& nc : oracle_configs()) {
    const Cluster raw(nc.cfg);
    const PartialOrderReducer por(nc.cfg);
    ASSERT_TRUE(por.enabled()) << nc.name;
    EXPECT_EQ(oracle_failures(nc.cfg, clamp_image(raw, por)), 0) << nc.name;
  }
}

TEST(Independence, SymPorComposedMapIsABisimulation) {
  // The production fig. 6 mode: clamp over the orbit quotient. The composed
  // map is exactly Cluster::reduce(kSymPor).
  const ClusterConfig cfg = fig6_config(3);
  const Cluster raw(cfg);
  const Cluster composed(cfg, Reduction::kSymPor);
  EXPECT_EQ(oracle_failures(
                cfg, [&](const Cluster::State& s) { return composed.reduce(s); }),
            0);
}

TEST(Independence, BrokenMaskingRelationIsCaughtByTheOracle) {
  // dedupe_slots = false counts each transmission as maskable individually.
  // That is unsound — one hub arbitration pick masks every simultaneous
  // correct transmission — and the oracle must expose it (the clamp then
  // skips slack that IS observable along some adversary path).
  const ClusterConfig cfg = fig6_config(4);
  const Cluster raw(cfg);
  const PartialOrderReducer broken(cfg, PorTuning{.margin = 0, .dedupe_slots = false});
  EXPECT_GT(oracle_failures(cfg, clamp_image(raw, broken)), 0);
}

TEST(Independence, OffByOneHorizonIsCaughtByTheOracle) {
  // margin = -1 clamps a LISTEN slack whose timeout fires before the
  // guaranteed reception: reception is classified before the timeout check
  // in node_step, so slack == cap is dead but slack == cap - 1 is not.
  const ClusterConfig cfg = fig6_config(4);
  const Cluster raw(cfg);
  const PartialOrderReducer broken(cfg, PorTuning{.margin = -1, .dedupe_slots = true});
  EXPECT_GT(oracle_failures(cfg, clamp_image(raw, broken)), 0);
}

TEST(Independence, ClosedFormScheduleMatchesStepSimulation) {
  // prepare()'s merged worst-case transmission schedule against the
  // quiet-input automaton simulated step by step, across every gate-state
  // counter value of every correct node.
  for (int n : {3, 4, 5}) {
    const ClusterConfig cfg = fig6_config(n);
    const PartialOrderReducer por(cfg);
    const Cluster raw(cfg);
    const ClusterState base = raw.base_initial_state();
    for (int init_c = 0; init_c <= cfg.init_window; ++init_c) {
      for (int phase = 0; phase < 2; ++phase) {
        ClusterState c = base;
        for (int j = 0; j < n; ++j) {
          if (cfg.node_is_faulty(j)) continue;
          if (phase == 0) {
            c.node[j].state = NodeState::kInit;
            c.node[j].counter = static_cast<std::uint8_t>(init_c);
          } else {
            c.node[j].state = NodeState::kListen;
            c.node[j].counter = static_cast<std::uint8_t>(
                1 + (init_c * 7 + j) % cfg.listen_timeout(j));
          }
        }
        PartialOrderReducer::ComboPlan plan;
        por.prepare(c.node, plan);
        ASSERT_TRUE(plan.gate);
        std::vector<int> expected;
        for (int j = 0; j < n; ++j) {
          if (cfg.node_is_faulty(j)) continue;
          int ref[2 * kMaxNodes];
          por.worst_tx_reference(j, c.node[j], por.instants(), ref);
          expected.insert(expected.end(), ref, ref + por.instants());
        }
        std::sort(expected.begin(), expected.end());
        expected.erase(std::unique(expected.begin(), expected.end()), expected.end());
        ASSERT_EQ(plan.ntx, static_cast<int>(expected.size()));
        for (int k = 0; k < plan.ntx; ++k) EXPECT_EQ(plan.tx[k], expected[k]);
      }
    }
  }
}

TEST(Independence, ReducedEmissionsAreFixedPointsOfReduce) {
  // Everything a por / sym+por cluster emits is already a fixed point of its
  // own reduction map — the hash-once pipeline only ever sees
  // representatives (the invariant concretization and the equivalence suite
  // rely on).
  for (const Reduction mode : {Reduction::kPartialOrder, Reduction::kSymPor}) {
    const ClusterConfig cfg = fig6_config(3);
    const Cluster reduced(cfg, mode);
    std::vector<Cluster::State> frontier;
    reduced.initial_states([&](const Cluster::State& s) {
      EXPECT_EQ(reduced.reduce(s), s) << to_string(mode) << " (initial)";
      frontier.push_back(s);
    });
    int checked = 0;
    for (std::size_t i = 0; i < frontier.size() && checked < 2000; ++i) {
      reduced.successors(frontier[i], [&](const Cluster::State& t) {
        if (checked++ < 2000) {
          EXPECT_EQ(reduced.reduce(t), t) << to_string(mode);
        }
      });
    }
  }
}

TEST(Independence, GateDeclinesUnderAFaultyHub) {
  // A faulty guardian may refuse to relay forever, so the
  // guaranteed-delivery certificate does not exist: the reducer disables
  // itself and every emission falls back to full expansion.
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.faulty_hub = 0;
  cfg.init_window = 3;
  cfg.hub_init_window = 1;
  const PartialOrderReducer por(cfg);
  EXPECT_FALSE(por.enabled());

  const Cluster raw(cfg);
  ClusterState c = raw.base_initial_state();
  EXPECT_EQ(por.saturate(c), PartialOrderReducer::Outcome::kDeclined);

  // And the por cluster therefore explores the raw graph: reduce is the
  // identity map.
  const Cluster reduced(cfg, Reduction::kPartialOrder);
  const Cluster::State s = raw.pack(raw.base_initial_state());
  EXPECT_EQ(reduced.reduce(s), s);
}

}  // namespace
}  // namespace tt::tta
