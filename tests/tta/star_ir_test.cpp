// Bisimulation oracle for the star-cluster IR (DESIGN.md §3.10): the set of
// phase-0 IR states reachable in tta::StarIr must equal tta::Cluster's
// reachable set exactly (decode is a bijection on them), every phase-gated
// property expression must agree with tta::properties on each decoded
// cluster frame (and hold vacuously on every phase-1 frame), and when a
// property is violated, k-induction on the IR must refute it at exactly
// twice the minimal cluster BFS depth.
#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <vector>

#include "bmc/encoder.hpp"
#include "tta/cluster.hpp"
#include "tta/properties.hpp"
#include "tta/star_ir.hpp"

namespace tt::tta {
namespace {

struct ClusterBfs {
  std::set<Cluster::State> states;
  // Minimal BFS depth of the first violation per property, or -1.
  int safety_depth = -1;
  int timeliness_depth = -1;
  int hub_agreement_depth = -1;
};

ClusterBfs explore_cluster(const ClusterConfig& cfg) {
  ClusterBfs r;
  const Cluster cluster(cfg, Reduction::kNone);
  std::deque<std::pair<Cluster::State, int>> frontier;
  auto visit = [&](const Cluster::State& s, int depth) {
    if (!r.states.insert(s).second) return;
    frontier.emplace_back(s, depth);
    const ClusterState c = cluster.unpack(s);
    if (r.safety_depth < 0 && !holds_safety(cfg, c)) r.safety_depth = depth;
    if (cfg.timeliness_bound > 0 && r.timeliness_depth < 0 && !holds_timeliness(cfg, c)) {
      r.timeliness_depth = depth;
    }
    if (r.hub_agreement_depth < 0 && !holds_hub_agreement(cfg, c)) {
      r.hub_agreement_depth = depth;
    }
  };
  cluster.initial_states([&](const Cluster::State& s) { visit(s, 0); });
  while (!frontier.empty()) {
    auto [s, depth] = frontier.front();
    frontier.pop_front();
    cluster.successors(s, [&](const Cluster::State& t) { visit(t, depth + 1); });
  }
  return r;
}

void check_bisimulation(const ClusterConfig& cfg) {
  const ClusterBfs oracle = explore_cluster(cfg);
  ASSERT_FALSE(oracle.states.empty());

  StarIr ir(cfg);
  const Cluster cluster(cfg, Reduction::kNone);
  const kernel::System& sys = ir.system();
  const kernel::ExprPool& exprs = sys.exprs();

  std::set<std::vector<int>> seen;
  std::deque<std::vector<int>> frontier;
  std::set<Cluster::State> decoded;
  auto visit = [&](const std::vector<int>& v) {
    if (!seen.insert(v).second) return;
    frontier.push_back(v);
  };
  sys.initial_valuations(visit);
  while (!frontier.empty()) {
    const std::vector<int> v = frontier.front();
    frontier.pop_front();
    sys.successor_valuations(v, visit);
  }

  for (const std::vector<int>& v : seen) {
    const bool ir_safe = exprs.eval(ir.safety_expr(), v) != 0;
    const bool ir_agree = exprs.eval(ir.hub_agreement_expr(), v) != 0;
    const bool ir_timely =
        cfg.timeliness_bound > 0 ? exprs.eval(ir.timeliness_expr(), v) != 0 : true;
    if (!ir.is_cluster_frame(v)) {
      // Intermediate frames are exempt by the phase gate.
      EXPECT_TRUE(ir_safe && ir_agree && ir_timely);
      continue;
    }
    const ClusterState c = ir.decode(v);
    decoded.insert(cluster.pack(c));
    EXPECT_EQ(ir_safe, holds_safety(cfg, c));
    EXPECT_EQ(ir_agree, holds_hub_agreement(cfg, c));
    if (cfg.timeliness_bound > 0) EXPECT_EQ(ir_timely, holds_timeliness(cfg, c));
  }

  // Reachable phase-0 frames decode exactly onto the cluster's state space.
  EXPECT_EQ(decoded, oracle.states);

  // A violated property must be refuted by bounded model checking on the IR
  // at exactly twice the minimal cluster depth (two IR steps per cluster
  // step); a satisfied one must never be refuted within the same horizon.
  struct Check {
    kernel::ExprId expr;
    int cluster_depth;
  };
  std::vector<Check> checks{{ir.safety_expr(), oracle.safety_depth},
                            {ir.hub_agreement_expr(), oracle.hub_agreement_depth}};
  if (cfg.timeliness_bound > 0) {
    checks.push_back({ir.timeliness_expr(), oracle.timeliness_depth});
  }
  for (const Check& chk : checks) {
    const int horizon = chk.cluster_depth >= 0 ? 2 * chk.cluster_depth + 2 : 16;
    auto r = bmc::check_invariant_bounded(sys, chk.expr, horizon);
    if (chk.cluster_depth >= 0) {
      ASSERT_TRUE(r.violation_found);
      EXPECT_EQ(r.depth, 2 * chk.cluster_depth);
      ASSERT_FALSE(r.trace.empty());
      EXPECT_TRUE(ir.is_cluster_frame(r.trace.back()));
    } else {
      EXPECT_FALSE(r.violation_found);
    }
  }
}

ClusterConfig small_base() {
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.init_window = 2;
  cfg.hub_init_window = 1;
  cfg.timeliness_bound = 0;
  return cfg;
}

TEST(StarIr, BisimulatesFaultFreeCluster) {
  ClusterConfig cfg = small_base();
  cfg.fault_degree = 1;
  check_bisimulation(cfg);
}

TEST(StarIr, BisimulatesFailSilentFaultyNode) {
  ClusterConfig cfg = small_base();
  cfg.faulty_node = 0;
  cfg.fault_degree = 1;
  check_bisimulation(cfg);
}

TEST(StarIr, BisimulatesFaultyNodeDegree2WithFeedback) {
  ClusterConfig cfg = small_base();
  cfg.faulty_node = 0;
  cfg.fault_degree = 2;
  cfg.feedback = true;
  check_bisimulation(cfg);
}

TEST(StarIr, BisimulatesFaultyNodeDegree3NoFeedback) {
  ClusterConfig cfg = small_base();
  cfg.faulty_node = 0;
  cfg.fault_degree = 3;
  cfg.feedback = false;
  check_bisimulation(cfg);
}

TEST(StarIr, BisimulatesNoBigBangVariant) {
  // §5.2 design-exploration variant: nodes synchronize on the first
  // cs-frame; a faulty node at degree >= 2 breaks safety at a small depth
  // the equivalence check pins to 2x in the IR.
  ClusterConfig cfg = small_base();
  cfg.big_bang = false;
  cfg.faulty_node = 0;
  cfg.fault_degree = 2;
  check_bisimulation(cfg);
}

TEST(StarIr, BisimulatesFaultyHubCluster) {
  ClusterConfig cfg = small_base();
  cfg.faulty_hub = 0;
  cfg.hub_init_window = 2;
  check_bisimulation(cfg);
}

TEST(StarIr, BisimulatesTimelinessCounter) {
  ClusterConfig cfg = small_base();
  cfg.fault_degree = 1;
  cfg.init_window = 1;
  cfg.timeliness_bound = 6;  // tight: the IR must reproduce the violation
  check_bisimulation(cfg);
}

TEST(StarIr, BisimulatesHubSyncTimelinessTarget) {
  ClusterConfig cfg = small_base();
  cfg.faulty_hub = 0;
  cfg.hub_init_window = 2;
  cfg.init_window = 1;
  cfg.timeliness_bound = 8;
  cfg.timeliness_target = TimelinessTarget::kCorrectHubSynced;
  check_bisimulation(cfg);
}

TEST(StarIr, RejectsTransientRestarts) {
  ClusterConfig cfg = small_base();
  cfg.transient_restarts = 1;
  EXPECT_THROW({ StarIr ir(cfg); }, std::exception);
}

}  // namespace
}  // namespace tt::tta
