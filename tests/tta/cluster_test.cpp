#include "tta/cluster.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "mc/simulate.hpp"
#include "support/rng.hpp"
#include "tta/properties.hpp"

namespace tt::tta {
namespace {

ClusterConfig small_cfg() {
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.init_window = 2;
  cfg.hub_init_window = 2;
  return cfg;
}

TEST(Cluster, PackUnpackRoundTripOnRandomReachableStates) {
  const Cluster cluster(small_cfg());
  Rng rng(3);
  auto r = mc::simulate(cluster, 200, rng);
  ASSERT_FALSE(r.trace.empty());
  for (const auto& packed : r.trace) {
    const ClusterState c = cluster.unpack(packed);
    EXPECT_EQ(cluster.pack(c), packed);
  }
}

TEST(Cluster, StateBitsWithinCapacity) {
  for (int n : {3, 4, 5, 6}) {
    ClusterConfig cfg;
    cfg.n = n;
    cfg.faulty_node = 0;
    cfg.timeliness_bound = 40;
    const Cluster cluster(cfg);
    EXPECT_LE(cluster.state_bits(), 192);
    EXPECT_GT(cluster.state_bits(), 0);
  }
}

TEST(Cluster, SingleInitialStateWithoutFaultyHub) {
  const Cluster cluster(small_cfg());
  int count = 0;
  cluster.initial_states([&](const Cluster::State&) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(Cluster, OneInitialStatePerFaultyHubPattern) {
  auto cfg = small_cfg();
  cfg.faulty_hub = 0;
  const Cluster cluster(cfg);
  std::vector<Cluster::State> inits;
  cluster.initial_states([&](const Cluster::State& s) { inits.push_back(s); });
  EXPECT_EQ(inits.size(), 27u);  // 3^n patterns
  // All distinct.
  for (std::size_t i = 0; i < inits.size(); ++i) {
    for (std::size_t j = i + 1; j < inits.size(); ++j) EXPECT_NE(inits[i], inits[j]);
  }
}

TEST(Cluster, EveryStateHasASuccessor) {
  // Deadlock-freedom: guarded commands are total by construction. Spot-check
  // along random walks.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Cluster cluster(small_cfg());
    Rng rng(seed);
    auto r = mc::simulate(cluster, 150, rng);
    EXPECT_FALSE(r.deadlocked);
  }
}

TEST(Cluster, FaultFreeRunReachesSynchronousOperation) {
  // Every maximal run of a fault-free cluster must reach "all nodes active";
  // random walks are all maximal prefixes, so they must get there within a
  // few rounds.
  const Cluster cluster(small_cfg());
  const auto& cfg = cluster.config();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    auto r = mc::simulate_until(
        cluster,
        [&](const Cluster::State& s) { return all_correct_active(cfg, cluster.unpack(s)); },
        300, rng);
    EXPECT_FALSE(r.deadlocked);
    EXPECT_TRUE(all_correct_active(cfg, cluster.unpack(r.trace.back())))
        << "seed " << seed << " did not converge in 300 slots";
  }
}

TEST(Cluster, ActiveNodesStayAgreedOnceSynchronous) {
  // After convergence, run on and check Lemma-1 agreement at every step.
  const Cluster cluster(small_cfg());
  const auto& cfg = cluster.config();
  Rng rng(17);
  auto r = mc::simulate(cluster, 400, rng);
  bool synced = false;
  for (const auto& packed : r.trace) {
    const ClusterState c = cluster.unpack(packed);
    if (all_correct_active(cfg, c)) synced = true;
    if (synced) {
      EXPECT_TRUE(all_correct_active(cfg, c));  // no fall-out
      EXPECT_TRUE(holds_safety(cfg, c));
    }
  }
  EXPECT_TRUE(synced);
}

TEST(Cluster, StartupTimeCounterLifecycle) {
  ClusterConfig cfg = small_cfg();
  cfg.timeliness_bound = 10;
  const Cluster cluster(cfg);

  ClusterState c = cluster.base_initial_state();
  // Nobody listening yet: stays 0.
  EXPECT_EQ(cluster.next_startup_time(c, 0), 0);
  // Two nodes in LISTEN: starts at 1.
  c.node[0].state = NodeState::kListen;
  c.node[1].state = NodeState::kListen;
  EXPECT_EQ(cluster.next_startup_time(c, 0), 1);
  // Counting up.
  EXPECT_EQ(cluster.next_startup_time(c, 5), 6);
  // Saturates at bound+1 (the violation value).
  EXPECT_EQ(cluster.next_startup_time(c, 11), 11);
  // Target reached: frozen at bound+2.
  c.node[2].state = NodeState::kActive;
  EXPECT_EQ(cluster.next_startup_time(c, 5), 12);
  EXPECT_EQ(cluster.next_startup_time(c, 12), 12);
}

TEST(Cluster, StartupTimeHubTarget) {
  ClusterConfig cfg = small_cfg();
  cfg.faulty_hub = 0;
  cfg.timeliness_bound = 10;
  cfg.timeliness_target = TimelinessTarget::kCorrectHubSynced;
  const Cluster cluster(cfg);

  ClusterState c = cluster.base_initial_state();
  c.node[0].state = NodeState::kListen;
  c.node[1].state = NodeState::kListen;
  EXPECT_EQ(cluster.next_startup_time(c, 0), 1);
  // A node going active does NOT freeze the hub-target counter.
  c.node[2].state = NodeState::kActive;
  EXPECT_EQ(cluster.next_startup_time(c, 3), 4);
  // The correct hub (hub 1) reaching TENTATIVE freezes it.
  c.hub[1].state = HubState::kTentative;
  EXPECT_EQ(cluster.next_startup_time(c, 3), 12);
}

TEST(Cluster, SuccessorCountMatchesChoiceStructureAtInit) {
  // From the initial state: each of the 3 nodes has 2 options (stay/wake),
  // the delayed hub has 2, the other 1; relays are all blocked (INIT), so
  // the successor multiset has 2^3 * 2 = 16 entries.
  const Cluster cluster(small_cfg());
  Cluster::State init{};
  cluster.initial_states([&](const Cluster::State& s) { init = s; });
  int count = 0;
  cluster.successors(init, [&](const Cluster::State&) { ++count; });
  EXPECT_EQ(count, 16);
}

TEST(Cluster, PackUnpackRoundTripWithFaultyHub) {
  auto cfg = small_cfg();
  cfg.faulty_hub = 0;
  cfg.timeliness_bound = 12;
  cfg.timeliness_target = TimelinessTarget::kCorrectHubSynced;
  const Cluster cluster(cfg);
  Rng rng(8);
  auto r = mc::simulate(cluster, 150, rng);
  ASSERT_FALSE(r.trace.empty());
  for (const auto& packed : r.trace) {
    EXPECT_EQ(cluster.pack(cluster.unpack(packed)), packed);
  }
}

TEST(Cluster, PackUnpackRoundTripWithFaultyNodeAndRestarts) {
  auto cfg = small_cfg();
  cfg.faulty_node = 1;
  cfg.fault_degree = 6;
  cfg.transient_restarts = 1;
  const Cluster cluster(cfg);
  Rng rng(9);
  auto r = mc::simulate(cluster, 150, rng);
  for (const auto& packed : r.trace) {
    EXPECT_EQ(cluster.pack(cluster.unpack(packed)), packed);
  }
}

TEST(Cluster, DelayedHubIsNeverTheFaultyOne) {
  // Exactly one guardian is powered late and it must be a correct one
  // (paper §5.4: n nodes plus ONE guardian share the wake-up window).
  for (int fh : {0, 1}) {
    ClusterConfig cfg = small_cfg();
    cfg.faulty_hub = fh;
    EXPECT_EQ(hub_init_window_for(cfg, fh == 0 ? 1 : 0), cfg.hub_init_window);
    EXPECT_EQ(hub_init_window_for(cfg, fh), 1);
  }
  ClusterConfig cfg = small_cfg();  // no faulty hub: hub 0 is the delayed one
  EXPECT_EQ(hub_init_window_for(cfg, 0), cfg.hub_init_window);
  EXPECT_EQ(hub_init_window_for(cfg, 1), 1);
}

TEST(Cluster, RejectsOversizedConfiguration) {
  ClusterConfig cfg;
  cfg.n = 8;
  cfg.faulty_hub = 0;
  cfg.timeliness_bound = 200;
  cfg.init_window = 64;
  // 8 nodes with a faulty hub and a wide counter may exceed 192 bits; if it
  // does, the constructor must refuse rather than truncate.
  try {
    const Cluster cluster(cfg);
    EXPECT_LE(cluster.state_bits(), 192);
  } catch (const std::invalid_argument&) {
    SUCCEED();
  }
}

}  // namespace
}  // namespace tt::tta
