#include "tta/properties.hpp"

#include <gtest/gtest.h>

#include "tta/trace_printer.hpp"

namespace tt::tta {
namespace {

ClusterConfig cfg4() {
  ClusterConfig cfg;
  cfg.n = 4;
  return cfg;
}

ClusterState all_active(const ClusterConfig& cfg, std::uint8_t pos) {
  ClusterState c;
  for (int i = 0; i < cfg.n; ++i) {
    c.node[i].state = NodeState::kActive;
    c.node[i].pos = pos;
    c.node[i].counter = 0;
    c.node[i].big_bang = false;
  }
  return c;
}

TEST(Properties, SafetyHoldsOnAgreement) {
  const auto cfg = cfg4();
  EXPECT_TRUE(holds_safety(cfg, all_active(cfg, 2)));
}

TEST(Properties, SafetyViolatedOnDisagreement) {
  const auto cfg = cfg4();
  ClusterState c = all_active(cfg, 2);
  c.node[3].pos = 3;
  EXPECT_FALSE(holds_safety(cfg, c));
}

TEST(Properties, SafetyIgnoresFaultyNode) {
  auto cfg = cfg4();
  cfg.faulty_node = 3;
  ClusterState c = all_active(cfg, 2);
  c.node[3].pos = 3;  // the faulty node's position is irrelevant
  EXPECT_TRUE(holds_safety(cfg, c));
}

TEST(Properties, SafetyVacuousWithOneActiveNode) {
  const auto cfg = cfg4();
  ClusterState c;
  c.node[1].state = NodeState::kActive;
  c.node[1].pos = 0;
  EXPECT_TRUE(holds_safety(cfg, c));
}

TEST(Properties, AllCorrectActive) {
  auto cfg = cfg4();
  EXPECT_TRUE(all_correct_active(cfg, all_active(cfg, 1)));
  ClusterState c = all_active(cfg, 1);
  c.node[2].state = NodeState::kColdstart;
  EXPECT_FALSE(all_correct_active(cfg, c));
  cfg.faulty_node = 2;
  EXPECT_TRUE(all_correct_active(cfg, c));  // faulty node exempt
}

TEST(Properties, TimelinessChecksSaturationValue) {
  auto cfg = cfg4();
  cfg.timeliness_bound = 9;
  ClusterState c;
  c.startup_time = 9;
  EXPECT_TRUE(holds_timeliness(cfg, c));
  c.startup_time = 10;  // bound+1: the violation value
  EXPECT_FALSE(holds_timeliness(cfg, c));
  c.startup_time = 11;  // bound+2: frozen success
  EXPECT_TRUE(holds_timeliness(cfg, c));
  cfg.timeliness_bound = 0;  // tracking disabled
  c.startup_time = 10;
  EXPECT_TRUE(holds_timeliness(cfg, c));
}

TEST(Properties, HubAgreement) {
  const auto cfg = cfg4();
  ClusterState c = all_active(cfg, 2);
  c.hub[0].state = HubState::kActive;
  c.hub[0].slot_pos = 2;
  EXPECT_TRUE(holds_hub_agreement(cfg, c));
  c.hub[0].slot_pos = 3;
  EXPECT_FALSE(holds_hub_agreement(cfg, c));
  // Non-active hubs don't participate.
  c.hub[0].state = HubState::kProtected;
  EXPECT_TRUE(holds_hub_agreement(cfg, c));
}

TEST(Properties, CountCorrectActive) {
  auto cfg = cfg4();
  cfg.faulty_node = 0;
  ClusterState c = all_active(cfg, 1);
  EXPECT_EQ(count_correct_active(cfg, c), 3);
  c.node[1].state = NodeState::kListen;
  EXPECT_EQ(count_correct_active(cfg, c), 2);
}

TEST(TracePrinter, DescribesFrames) {
  EXPECT_EQ(describe(Frame::quiet()), "-");
  EXPECT_EQ(describe(Frame::noise()), "noise");
  EXPECT_EQ(describe(Frame::cs(2)), "cs(2)");
  EXPECT_EQ(describe(Frame::i(0)), "i(0)");
  EXPECT_EQ(describe(Frame::i_bad()), "i(0)!");
}

TEST(TracePrinter, DescribesClusterState) {
  const auto cfg = cfg4();
  ClusterState c = all_active(cfg, 2);
  c.hub[0].state = HubState::kTentative;
  c.hub[0].slot_pos = 2;
  c.hub[0].counter = 3;
  c.hub[1].locks = 0b0101;
  const std::string s = describe(cfg, c);
  EXPECT_NE(s.find("n0:ACTIVE@2"), std::string::npos);
  EXPECT_NE(s.find("G0:hub_tentative/3@2"), std::string::npos);
  EXPECT_NE(s.find("lock{02}"), std::string::npos);
}

TEST(TracePrinter, DescribesTrace) {
  ClusterConfig cfg;
  cfg.n = 3;
  const Cluster cluster(cfg);
  Cluster::State init{};
  cluster.initial_states([&](const Cluster::State& s) { init = s; });
  const Cluster::State trace[] = {init, init};
  const std::string s = describe_trace(cluster, trace);
  EXPECT_NE(s.find("t=  0"), std::string::npos);
  EXPECT_NE(s.find("t=  1"), std::string::npos);
  EXPECT_NE(s.find("n0:INIT"), std::string::npos);
}

}  // namespace
}  // namespace tt::tta
