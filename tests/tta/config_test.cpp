#include "tta/config.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tt::tta {
namespace {

TEST(ClusterConfig, PaperTimeoutFormulas) {
  ClusterConfig cfg;
  cfg.n = 4;
  // LT_TO[j] = 2n + j, CS_TO[j] = n + j (paper SAL source).
  EXPECT_EQ(cfg.listen_timeout(0), 8);
  EXPECT_EQ(cfg.listen_timeout(3), 11);
  EXPECT_EQ(cfg.coldstart_timeout(0), 4);
  EXPECT_EQ(cfg.coldstart_timeout(3), 7);
}

TEST(ClusterConfig, TimeoutUniquenessAndOrder) {
  // The collision-resolution argument (§2.3.1) needs:
  //  (1) all cold-start timeouts distinct,
  //  (2) every listen timeout strictly greater than every cold-start timeout.
  for (int n = 2; n <= 8; ++n) {
    ClusterConfig cfg;
    cfg.n = n;
    std::set<int> cs;
    for (int i = 0; i < n; ++i) cs.insert(cfg.coldstart_timeout(i));
    EXPECT_EQ(static_cast<int>(cs.size()), n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        EXPECT_GT(cfg.listen_timeout(i), cfg.coldstart_timeout(j))
            << "n=" << n << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(ClusterConfig, ValidateRejectsBadParameters) {
  ClusterConfig cfg;
  cfg.n = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.n = 4;
  cfg.faulty_node = 4;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.faulty_node = 0;
  cfg.fault_degree = 7;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.fault_degree = 6;
  cfg.faulty_hub = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);  // single-failure hypothesis
  cfg.faulty_node = ClusterConfig::kNone;
  EXPECT_NO_THROW(cfg.validate());
  cfg.init_window = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(ClusterConfig, MaxCountCoversEveryWait) {
  ClusterConfig cfg;
  cfg.n = 6;
  cfg.init_window = 48;
  cfg.timeliness_bound = 37;
  const int mc = cfg.max_count();
  EXPECT_GE(mc, cfg.listen_timeout(5));
  EXPECT_GE(mc, cfg.init_window);
  EXPECT_GE(mc, cfg.timeliness_bound + 1);
  EXPECT_GE(mc, 2 * cfg.n);  // hub listen phase
}

TEST(ClusterConfig, SummaryMentionsKeyDials) {
  ClusterConfig cfg;
  cfg.faulty_node = 2;
  cfg.big_bang = false;
  const std::string s = cfg.summary();
  EXPECT_NE(s.find("faulty_node=2"), std::string::npos);
  EXPECT_NE(s.find("bigbang=off"), std::string::npos);
}

TEST(ClusterConfig, CorrectNodeCount) {
  ClusterConfig cfg;
  cfg.n = 5;
  EXPECT_EQ(cfg.correct_node_count(), 5);
  cfg.faulty_node = 3;
  EXPECT_EQ(cfg.correct_node_count(), 4);
}

}  // namespace
}  // namespace tt::tta
