#include "tta/hub.hpp"

#include <gtest/gtest.h>

namespace tt::tta {
namespace {

ClusterConfig cfg4() {
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.hub_init_window = 2;
  return cfg;
}

struct Outs {
  Frame f[kMaxNodes];
  Outs() = default;
  Outs& set(int i, Frame fr) {
    f[i] = fr;
    return *this;
  }
};

HubVars hub_in(HubState s, std::uint8_t counter = 1, std::uint8_t slot = 0) {
  HubVars v;
  v.state = s;
  v.counter = counter;
  v.slot_pos = slot;
  return v;
}

TEST(HubRelay, BlockedStatesDeliverQuiet) {
  const auto cfg = cfg4();
  Outs o;
  o.set(0, Frame::cs(0));
  for (HubState s : {HubState::kInit, HubState::kListen, HubState::kSilence}) {
    const HubVars v = hub_in(s);
    EXPECT_EQ(hub_relay_option_count(cfg, 0, v, o.f), 1);
    const RelayDecision d = hub_relay(cfg, 0, v, o.f, 0);
    EXPECT_TRUE(d.to_ports.is_quiet());
    EXPECT_TRUE(d.interlink.is_quiet());
    EXPECT_EQ(d.new_locks, 0);
  }
}

TEST(HubRelayStartup, RelaysValidCsAndMirrorsInterlink) {
  const auto cfg = cfg4();
  const HubVars v = hub_in(HubState::kStartup, 0);
  Outs o;
  o.set(2, Frame::cs(2));
  EXPECT_EQ(hub_relay_option_count(cfg, 0, v, o.f), 1);
  const RelayDecision d = hub_relay(cfg, 0, v, o.f, 0);
  EXPECT_EQ(d.to_ports, Frame::cs(2));
  EXPECT_EQ(d.interlink, Frame::cs(2));
  EXPECT_EQ(d.selected_port, 2);
  EXPECT_EQ(d.new_locks, 0);
}

TEST(HubRelayStartup, ValidIFrameIsRelayedAsScheduleAnnouncement) {
  const auto cfg = cfg4();
  const HubVars v = hub_in(HubState::kStartup, 0);
  // An i-frame carrying the sender's own slot is "a valid frame on one of
  // its ports": it announces a running schedule this guardian missed.
  Outs o;
  o.set(1, Frame::i(1));
  RelayDecision d = hub_relay(cfg, 0, v, o.f, 0);
  EXPECT_EQ(d.to_ports, Frame::i(1));
  EXPECT_EQ(d.new_locks, 0);
}

TEST(HubRelayStartup, ForeignSlotIFrameLocks) {
  const auto cfg = cfg4();
  const HubVars v = hub_in(HubState::kStartup, 0);
  // Nodes transmit i-frames only in their own slot; a foreign time field is
  // as provably faulty as a masquerading cs-frame.
  Outs o;
  o.set(1, Frame::i(3));
  RelayDecision d = hub_relay(cfg, 0, v, o.f, 0);
  EXPECT_EQ(d.to_ports, Frame::noise());
  EXPECT_EQ(d.new_locks, 1u << 1);
}

TEST(HubState, StartupFollowsValidIFrameIntoTentative) {
  const auto cfg = cfg4();
  const HubVars v = hub_in(HubState::kStartup, 0);
  RelayDecision d;
  d.to_ports = Frame::i(2);
  d.selected_port = 2;
  d.interlink = Frame::i(2);
  HubVars nv = hub_state_step(cfg, 0, v, d, Frame::quiet(), 0);
  EXPECT_EQ(nv.state, HubState::kTentative);
  EXPECT_EQ(nv.slot_pos, 2);
  EXPECT_EQ(nv.counter, 1);
}

TEST(HubRelayStartup, MasqueradingCsLocksPort) {
  const auto cfg = cfg4();
  const HubVars v = hub_in(HubState::kStartup, 0);
  Outs o;
  o.set(1, Frame::cs(3));  // node 1 claims to be node 3
  const RelayDecision d = hub_relay(cfg, 0, v, o.f, 0);
  EXPECT_EQ(d.to_ports, Frame::noise());
  EXPECT_EQ(d.new_locks, 1u << 1);
}

TEST(HubRelayStartup, NoiseAndIllFormedLock) {
  const auto cfg = cfg4();
  const HubVars v = hub_in(HubState::kStartup, 0);
  Outs o;
  o.set(0, Frame::noise()).set(2, Frame::i_bad());
  const RelayDecision d = hub_relay(cfg, 0, v, o.f, 0);
  EXPECT_EQ(d.new_locks, (1u << 0) | (1u << 2));
}

TEST(HubRelayStartup, ArbitratesAmongSimultaneousSenders) {
  const auto cfg = cfg4();
  const HubVars v = hub_in(HubState::kStartup, 0);
  Outs o;
  o.set(1, Frame::cs(1)).set(3, Frame::cs(3));
  EXPECT_EQ(hub_relay_option_count(cfg, 0, v, o.f), 2);
  const RelayDecision d0 = hub_relay(cfg, 0, v, o.f, 0);
  const RelayDecision d1 = hub_relay(cfg, 0, v, o.f, 1);
  EXPECT_EQ(d0.to_ports, Frame::cs(1));
  EXPECT_EQ(d1.to_ports, Frame::cs(3));
}

TEST(HubRelayStartup, LockedPortIsIgnored) {
  const auto cfg = cfg4();
  HubVars v = hub_in(HubState::kStartup, 0);
  v.locks = 1u << 2;
  Outs o;
  o.set(2, Frame::cs(2));
  EXPECT_EQ(hub_relay_option_count(cfg, 0, v, o.f), 1);
  const RelayDecision d = hub_relay(cfg, 0, v, o.f, 0);
  EXPECT_TRUE(d.to_ports.is_quiet());
  EXPECT_EQ(d.selected_port, -1);
}

TEST(HubRelayProtected, PortsGatedByColdstartPattern) {
  const auto cfg = cfg4();
  // Only port i with counter - 1 == i is open (the CS_TO[i] = n+i pattern;
  // see eligible_ports in hub.cpp for the alignment argument).
  Outs o;
  o.set(1, Frame::cs(1)).set(2, Frame::cs(2));
  HubVars v = hub_in(HubState::kProtected, /*counter=*/2);  // offset 1: port 1 open
  EXPECT_EQ(hub_relay_option_count(cfg, 0, v, o.f), 1);
  RelayDecision d = hub_relay(cfg, 0, v, o.f, 0);
  EXPECT_EQ(d.to_ports, Frame::cs(1));
  v.counter = 3;  // offset 2: port 2 open, port 1 blocked
  d = hub_relay(cfg, 0, v, o.f, 0);
  EXPECT_EQ(d.to_ports, Frame::cs(2));
  v.counter = 4;  // offset 3: nobody transmitting is open
  d = hub_relay(cfg, 0, v, o.f, 0);
  EXPECT_TRUE(d.to_ports.is_quiet());
  v.counter = 1;  // offset 0: port 0's slot
  o = Outs{};
  o.set(0, Frame::cs(0));
  d = hub_relay(cfg, 0, v, o.f, 0);
  EXPECT_EQ(d.to_ports, Frame::cs(0));
}

TEST(HubRelayTentativeActive, EnforcesSchedule) {
  const auto cfg = cfg4();
  // slot_pos = 1, so the expected sender this step is node 2.
  HubVars v = hub_in(HubState::kTentative, 1, /*slot=*/1);
  Outs o;
  o.set(2, Frame::i(2));
  RelayDecision d = hub_relay(cfg, 0, v, o.f, 0);
  EXPECT_EQ(d.to_ports, Frame::i(2));
  EXPECT_EQ(d.interlink, Frame::i(2));

  // Wrong claimed position: blocked.
  o = Outs{};
  o.set(2, Frame::i(3));
  d = hub_relay(cfg, 0, v, o.f, 0);
  EXPECT_TRUE(d.to_ports.is_quiet());

  // Out-of-slot sender: blocked (but not locked — an i-frame alone is not
  // proof of fault).
  o = Outs{};
  o.set(3, Frame::i(3));
  d = hub_relay(cfg, 0, v, o.f, 0);
  EXPECT_TRUE(d.to_ports.is_quiet());
  EXPECT_EQ(d.new_locks, 0);
}

TEST(HubState, InitWakeupNondeterminism) {
  const auto cfg = cfg4();  // hub_init_window = 2; hub 0 is the delayed one
  HubVars v = hub_in(HubState::kInit, 1);
  EXPECT_EQ(hub_state_option_count(cfg, 0, v), 2);
  EXPECT_EQ(hub_state_option_count(cfg, 1, v), 1);  // non-delayed hub
  const RelayDecision d{};
  HubVars stay = hub_state_step(cfg, 0, v, d, Frame::quiet(), 1);
  EXPECT_EQ(stay.state, HubState::kInit);
  EXPECT_EQ(stay.counter, 2);
  HubVars wake = hub_state_step(cfg, 0, v, d, Frame::quiet(), 0);
  EXPECT_EQ(wake.state, HubState::kListen);
  EXPECT_EQ(wake.counter, 1);
  // At the window boundary, both options wake.
  v.counter = 2;
  EXPECT_EQ(hub_state_option_count(cfg, 0, v), 1);
  wake = hub_state_step(cfg, 0, v, d, Frame::quiet(), 0);
  EXPECT_EQ(wake.state, HubState::kListen);
}

TEST(HubState, ListenIntegratesViaInterlinkOnly) {
  const auto cfg = cfg4();
  HubVars v = hub_in(HubState::kListen, 3);
  const RelayDecision d{};
  // i-frame on the interlink: straight to ACTIVE (transition 2.3).
  HubVars nv = hub_state_step(cfg, 0, v, d, Frame::i(2), 0);
  EXPECT_EQ(nv.state, HubState::kActive);
  EXPECT_EQ(nv.slot_pos, 2);
  // cs-frame on the interlink: tentative round (transition 2.2).
  nv = hub_state_step(cfg, 0, v, d, Frame::cs(1), 0);
  EXPECT_EQ(nv.state, HubState::kTentative);
  EXPECT_EQ(nv.slot_pos, 1);
  EXPECT_EQ(nv.counter, 1);
}

TEST(HubState, ListenTimesOutAfterTwoRounds) {
  const auto cfg = cfg4();
  HubVars v = hub_in(HubState::kListen, static_cast<std::uint8_t>(2 * cfg.n));
  const RelayDecision d{};
  HubVars nv = hub_state_step(cfg, 0, v, d, Frame::quiet(), 0);
  EXPECT_EQ(nv.state, HubState::kStartup);  // transition 2.1
}

TEST(HubState, StartupCsStartsTentativeRound) {
  const auto cfg = cfg4();
  const HubVars v = hub_in(HubState::kStartup, 0);
  RelayDecision d;
  d.to_ports = Frame::cs(2);
  d.interlink = Frame::cs(2);
  d.selected_port = 2;
  // Interlink agrees: transition 3.1.
  HubVars nv = hub_state_step(cfg, 0, v, d, Frame::cs(2), 0);
  EXPECT_EQ(nv.state, HubState::kTentative);
  EXPECT_EQ(nv.slot_pos, 2);
  // Interlink silent: also 3.1.
  nv = hub_state_step(cfg, 0, v, d, Frame::quiet(), 0);
  EXPECT_EQ(nv.state, HubState::kTentative);
  // Interlink disagrees: logical collision, transition 3.2 to SILENCE.
  nv = hub_state_step(cfg, 0, v, d, Frame::cs(3), 0);
  EXPECT_EQ(nv.state, HubState::kSilence);
  EXPECT_EQ(nv.counter, 1);
}

TEST(HubState, StartupFollowsInterlinkCs) {
  const auto cfg = cfg4();
  const HubVars v = hub_in(HubState::kStartup, 0);
  const RelayDecision d{};  // own channel quiet
  HubVars nv = hub_state_step(cfg, 0, v, d, Frame::cs(3), 0);
  EXPECT_EQ(nv.state, HubState::kTentative);
  EXPECT_EQ(nv.slot_pos, 3);
}

TEST(HubState, StartupIgnoresInterlinkIFrames) {
  // Integration on i-frames happens in LISTEN only; a guardian that reached
  // STARTUP must go through a cold-start sequence (this is what makes the
  // §5.2 clique counterexample reproducible — see DESIGN.md).
  const auto cfg = cfg4();
  const HubVars v = hub_in(HubState::kStartup, 0);
  const RelayDecision d{};
  HubVars nv = hub_state_step(cfg, 0, v, d, Frame::i(2), 0);
  EXPECT_EQ(nv.state, HubState::kStartup);
}

TEST(HubState, TentativeConfirmedByIFrame) {
  const auto cfg = cfg4();
  HubVars v = hub_in(HubState::kTentative, 1, /*slot=*/2);
  RelayDecision d;
  d.to_ports = Frame::i(3);
  d.selected_port = 3;
  HubVars nv = hub_state_step(cfg, 0, v, d, Frame::quiet(), 0);
  EXPECT_EQ(nv.state, HubState::kActive);  // transition 5.2
  EXPECT_EQ(nv.slot_pos, 3);
}

TEST(HubState, TentativeExpiresToProtectedAfterRemainingRound) {
  const auto cfg = cfg4();
  // The cs slot counts as the round's first frame, so tentative covers the
  // remaining n-1 slots (counters 1..n-1), then PROTECTED.
  HubVars v = hub_in(HubState::kTentative, static_cast<std::uint8_t>(cfg.n - 1), 2);
  const RelayDecision d{};
  HubVars nv = hub_state_step(cfg, 0, v, d, Frame::quiet(), 0);
  EXPECT_EQ(nv.state, HubState::kProtected);  // transition 5.1
  EXPECT_EQ(nv.counter, 1);
}

TEST(HubState, SilenceBlocksRemainingRoundThenProtected) {
  const auto cfg = cfg4();
  HubVars v = hub_in(HubState::kSilence, 1);
  const RelayDecision d{};
  for (int i = 1; i < cfg.n - 1; ++i) {
    v = hub_state_step(cfg, 0, v, d, Frame::quiet(), 0);
    EXPECT_EQ(v.state, HubState::kSilence);
  }
  v = hub_state_step(cfg, 0, v, d, Frame::quiet(), 0);
  EXPECT_EQ(v.state, HubState::kProtected);  // transition 4.1
}

TEST(HubState, SilenceStillWatchesInterlinkForColdStarts) {
  // The silence round blocks the own channel but not the guardian's ears: a
  // cold start arbitrated by the other channel pulls it into the tentative
  // round (otherwise a faulty hub could synchronize the nodes inside this
  // blind window and leave the correct guardian behind).
  const auto cfg = cfg4();
  HubVars v = hub_in(HubState::kSilence, 1);
  const RelayDecision d{};
  HubVars nv = hub_state_step(cfg, 0, v, d, Frame::cs(2), 0);
  EXPECT_EQ(nv.state, HubState::kTentative);
  EXPECT_EQ(nv.slot_pos, 2);
  // i-frames on the interlink do NOT integrate here (that is LISTEN's job).
  nv = hub_state_step(cfg, 0, v, d, Frame::i(2), 0);
  EXPECT_EQ(nv.state, HubState::kSilence);
}

TEST(HubState, ProtectedExpiresBackToStartup) {
  const auto cfg = cfg4();
  HubVars v = hub_in(HubState::kProtected, static_cast<std::uint8_t>(cfg.n));
  const RelayDecision d{};
  HubVars nv = hub_state_step(cfg, 0, v, d, Frame::quiet(), 0);
  EXPECT_EQ(nv.state, HubState::kStartup);  // transition 6.3
}

TEST(HubState, ActiveAdvancesSchedule) {
  const auto cfg = cfg4();
  HubVars v = hub_in(HubState::kActive, 0, 3);
  const RelayDecision d{};
  HubVars nv = hub_state_step(cfg, 0, v, d, Frame::quiet(), 0);
  EXPECT_EQ(nv.state, HubState::kActive);
  EXPECT_EQ(nv.slot_pos, 0);  // wrapped
}

TEST(HubState, LocksAccumulate) {
  const auto cfg = cfg4();
  HubVars v = hub_in(HubState::kStartup, 0);
  v.locks = 1u << 0;
  RelayDecision d;
  d.new_locks = 1u << 2;
  HubVars nv = hub_state_step(cfg, 0, v, d, Frame::quiet(), 0);
  EXPECT_EQ(nv.locks, (1u << 0) | (1u << 2));
}

TEST(HubState, ListenPrefersIFrameOverCs) {
  // If the interlink carries an i-frame, the system is running: integrate
  // directly (2.3) — checked before the cs path (2.2).
  const auto cfg = cfg4();
  const HubVars v = hub_in(HubState::kListen, 2);
  const RelayDecision d{};
  HubVars nv = hub_state_step(cfg, 0, v, d, Frame::i(3), 0);
  EXPECT_EQ(nv.state, HubState::kActive);
  EXPECT_EQ(nv.slot_pos, 3);
}

TEST(HubState, TentativeInterlinkConfirmMustNameExpectedSlot) {
  const auto cfg = cfg4();
  // slot_pos 1: the expected slot this step is 2.
  HubVars v = hub_in(HubState::kTentative, 1, /*slot=*/1);
  const RelayDecision d{};
  // Interlink i-frame for a DIFFERENT slot: no confirmation (it may belong
  // to an offset ghost schedule on the other channel).
  HubVars nv = hub_state_step(cfg, 0, v, d, Frame::i(0), 0);
  EXPECT_EQ(nv.state, HubState::kTentative);
  // Matching slot confirms.
  nv = hub_state_step(cfg, 0, v, d, Frame::i(2), 0);
  EXPECT_EQ(nv.state, HubState::kActive);
  EXPECT_EQ(nv.slot_pos, 2);
}

TEST(HubRelayProtected, IFramesAreNotAdmitted) {
  // The protected pattern slots arbitrate cold-start retransmissions only;
  // an i-frame there is filtered to noise (see hub_relay).
  const auto cfg = cfg4();
  HubVars v = hub_in(HubState::kProtected, /*counter=*/2);  // port 1 open
  Outs o;
  o.set(1, Frame::i(1));
  const RelayDecision d = hub_relay(cfg, 0, v, o.f, 0);
  EXPECT_EQ(d.to_ports, Frame::noise());
  EXPECT_EQ(d.new_locks, 0);  // own-slot i-frame is not provably faulty
}

TEST(HubRelayActive, RelaysOnlyTheScheduledSender) {
  const auto cfg = cfg4();
  HubVars v = hub_in(HubState::kActive, 0, /*slot=*/0);  // expects slot 1
  Outs o;
  o.set(1, Frame::i(1)).set(3, Frame::cs(3));
  const RelayDecision d = hub_relay(cfg, 0, v, o.f, 0);
  EXPECT_EQ(d.to_ports, Frame::i(1));
  // The out-of-slot cs carries the sender's own id: blocked but not locked.
  EXPECT_EQ(d.new_locks, 0);
}

TEST(FaultyHubRelay, PatternControlsDeliveries) {
  auto cfg = cfg4();
  cfg.faulty_hub = 0;
  HubVars v;
  v.state = HubState::kFaulty;
  v.set_port_mode(0, HubPortMode::kRelay);
  v.set_port_mode(1, HubPortMode::kNoise);
  v.set_port_mode(2, HubPortMode::kQuiet);
  v.set_port_mode(3, HubPortMode::kRelay);
  Outs o;
  o.set(2, Frame::cs(2));
  // Options: none, interlink, one active port.
  EXPECT_EQ(hub_relay_option_count(cfg, 0, v, o.f), 3);
  const RelayDecision d = faulty_hub_relay(cfg, v, o.f, Frame::quiet(), 2);
  EXPECT_EQ(d.per_port[0], Frame::cs(2));
  EXPECT_EQ(d.per_port[1], Frame::noise());
  EXPECT_TRUE(d.per_port[2].is_quiet());
  EXPECT_EQ(d.per_port[3], Frame::cs(2));
  EXPECT_EQ(d.interlink, Frame::cs(2));  // always mirrored
}

TEST(FaultyHubRelay, CanReplayInterlinkButNotFabricate) {
  auto cfg = cfg4();
  cfg.faulty_hub = 1;
  HubVars v;
  v.state = HubState::kFaulty;
  for (int i = 0; i < cfg.n; ++i) v.set_port_mode(i, HubPortMode::kRelay);
  Outs o;  // all ports quiet
  const RelayDecision none = faulty_hub_relay(cfg, v, o.f, Frame::i(1), 0);
  for (int i = 0; i < cfg.n; ++i) EXPECT_TRUE(none.per_port[i].is_quiet());
  const RelayDecision replay = faulty_hub_relay(cfg, v, o.f, Frame::i(1), 1);
  for (int i = 0; i < cfg.n; ++i) EXPECT_EQ(replay.per_port[i], Frame::i(1));
}

TEST(FaultyHubState, StoresDeliveriesOnly) {
  auto cfg = cfg4();
  cfg.faulty_hub = 0;
  HubVars v;
  v.state = HubState::kFaulty;
  v.set_port_mode(1, HubPortMode::kNoise);
  RelayDecision d;
  d.per_port[0] = Frame::cs(2);
  d.per_port[1] = Frame::noise();
  const HubVars nv = faulty_hub_state_step(cfg, v, d);
  EXPECT_EQ(nv.state, HubState::kFaulty);
  EXPECT_EQ(nv.out_per_port[0], Frame::cs(2));
  EXPECT_EQ(nv.out_per_port[1], Frame::noise());
  EXPECT_EQ(nv.pattern, v.pattern);  // frozen
  EXPECT_EQ(nv.locks, 0);
}

}  // namespace
}  // namespace tt::tta
