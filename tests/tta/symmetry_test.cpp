// Orbit-canonicalization suite (tta/symmetry.hpp, DESIGN.md §3.6).
//
// The ISSUE's premise — "good nodes are identical up to id" — is FALSE for
// this model: per-node timeouts (LT_TO[i] = 2n+i), cs-frames carrying sender
// ids and the pos==id transmit rule stagger nodes by identity, so
// node-permutation is NOT a symmetry, and one test below demonstrates the
// non-commutation on a concrete state. The group that IS exact is
// {identity, channel-swap}, plus the variable-level collapses C0-C5; this
// suite checks the canonicalizer against a brute-force orbit minimum,
// invariance under the group, idempotence, fixed-point emission, and — the
// strongest check — sampled bisimulation: a state, its swap image and its
// canonical representative must have identical canonical successor sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "tta/cluster.hpp"
#include "tta/properties.hpp"
#include "tta/symmetry.hpp"

namespace tt::tta {
namespace {

struct NamedConfig {
  const char* name;
  ClusterConfig cfg;
};

std::vector<NamedConfig> fuzz_configs() {
  std::vector<NamedConfig> out;
  {
    ClusterConfig cfg;  // fig4 column: n=4, Byzantine node, degree 3
    cfg.n = 4;
    cfg.faulty_node = 0;
    cfg.fault_degree = 3;
    cfg.init_window = 8;
    cfg.hub_init_window = 8;
    out.push_back({"fig4_deg3", cfg});
  }
  {
    ClusterConfig cfg;  // fig6 cell: full fault degree
    cfg.n = 3;
    cfg.faulty_node = 0;
    cfg.fault_degree = 6;
    cfg.init_window = 3;
    cfg.hub_init_window = 3;
    out.push_back({"fig6_n3", cfg});
  }
  {
    ClusterConfig cfg;  // faulty-hub column (channel swap inadmissible)
    cfg.n = 3;
    cfg.faulty_hub = 0;
    cfg.init_window = 3;
    cfg.hub_init_window = 1;
    out.push_back({"faulty_hub", cfg});
  }
  {
    ClusterConfig cfg;  // fault-free fig5 cell
    cfg.n = 3;
    cfg.init_window = 2;
    cfg.hub_init_window = 2;
    out.push_back({"fault_free", cfg});
  }
  {
    ClusterConfig cfg;  // timeliness run: startup_time tracked in the state
    cfg.n = 3;
    cfg.faulty_node = 0;
    cfg.fault_degree = 2;
    cfg.init_window = 3;
    cfg.hub_init_window = 3;
    cfg.timeliness_bound = 18;
    cfg.timeliness_target = TimelinessTarget::kFirstCorrectActive;
    out.push_back({"timeliness", cfg});
  }
  return out;
}

/// Brute-force orbit minimum: canonicalize the variables of every group
/// element's image of `raw` from scratch and take the packed minimum — an
/// independent reference for the hot path's swap-image shortcut (which
/// reuses the already-canonical frame pair instead of re-canonicalizing).
Cluster::State oracle_minimum(const Cluster& cl, const Canonicalizer& canon,
                              const ClusterState& raw) {
  ClusterState id_image = raw;
  canon.canonicalize_vars(id_image);
  Cluster::State best = cl.pack(id_image);
  if (canon.swap_allowed() && Canonicalizer::swap_eligible(raw.hub[0], raw.hub[1])) {
    ClusterState sw_image = raw;
    canon.swap_channels(sw_image);
    canon.canonicalize_vars(sw_image);
    best = std::min(best, cl.pack(sw_image));
  }
  return best;
}

/// Canonical successor set — the quotient-level footprint a state leaves.
std::vector<Cluster::State> canonical_successors(const Cluster& cl, const Cluster::State& s) {
  std::vector<Cluster::State> out;
  cl.successors(s, [&](const Cluster::State& t) { out.push_back(cl.canonicalize(t)); });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// Deterministic random walk over the raw model, sampling `samples` states.
std::vector<Cluster::State> sample_states(const Cluster& cl, int samples, unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<Cluster::State> inits;
  cl.initial_states([&](const Cluster::State& s) { inits.push_back(s); });
  std::vector<Cluster::State> out;
  Cluster::State cur = inits[rng() % inits.size()];
  out.push_back(cur);
  while (static_cast<int>(out.size()) < samples) {
    std::vector<Cluster::State> succ;
    cl.successors(cur, [&](const Cluster::State& t) { succ.push_back(t); });
    if (succ.empty()) {
      cur = inits[rng() % inits.size()];
      continue;
    }
    cur = succ[rng() % succ.size()];
    out.push_back(cur);
  }
  return out;
}

TEST(Symmetry, CanonicalizeMatchesBruteForceOrbitMinimum) {
  for (const auto& nc : fuzz_configs()) {
    const Cluster raw(nc.cfg);
    const Canonicalizer canon(nc.cfg);
    for (const auto& s : sample_states(raw, 300, 0xC0FFEE)) {
      const ClusterState c = raw.unpack(s);
      EXPECT_EQ(raw.canonicalize(s), oracle_minimum(raw, canon, c)) << nc.name;
    }
  }
}

TEST(Symmetry, CanonicalIsInvariantUnderChannelSwap) {
  for (const auto& nc : fuzz_configs()) {
    const Cluster raw(nc.cfg);
    const Canonicalizer canon(nc.cfg);
    if (!canon.swap_allowed()) continue;
    for (const auto& s : sample_states(raw, 300, 0xBEEF)) {
      ClusterState c = raw.unpack(s);
      if (!Canonicalizer::swap_eligible(c.hub[0], c.hub[1])) continue;
      ClusterState swapped = c;
      canon.swap_channels(swapped);
      EXPECT_EQ(raw.canonicalize(raw.pack(swapped)), raw.canonicalize(s)) << nc.name;
    }
  }
}

TEST(Symmetry, CanonicalizeIsIdempotent) {
  for (const auto& nc : fuzz_configs()) {
    const Cluster raw(nc.cfg);
    for (const auto& s : sample_states(raw, 200, 0xFEED)) {
      const Cluster::State rep = raw.canonicalize(s);
      EXPECT_EQ(raw.canonicalize(rep), rep) << nc.name;
    }
  }
}

TEST(Symmetry, SampledBisimulation) {
  // The orbit map is a strong bisimulation: a state, its channel-swapped
  // image and its canonical representative all step to the same canonical
  // successor set, and satisfy the same properties. This exercises every
  // collapse (C0-C5) at once, because the representative differs from the
  // sampled state exactly in the collapsed variables.
  for (const auto& nc : fuzz_configs()) {
    const Cluster raw(nc.cfg);
    const Canonicalizer canon(nc.cfg);
    for (const auto& s : sample_states(raw, 60, 0xDECADE)) {
      const auto expected = canonical_successors(raw, s);
      const Cluster::State rep = raw.canonicalize(s);
      EXPECT_EQ(canonical_successors(raw, rep), expected) << nc.name;

      const ClusterState c = raw.unpack(s);
      const ClusterState rc = raw.unpack(rep);
      EXPECT_EQ(holds_safety(nc.cfg, rc), holds_safety(nc.cfg, c)) << nc.name;
      EXPECT_EQ(all_correct_active(nc.cfg, rc), all_correct_active(nc.cfg, c)) << nc.name;
      EXPECT_EQ(holds_hub_agreement(nc.cfg, rc), holds_hub_agreement(nc.cfg, c)) << nc.name;
      EXPECT_EQ(holds_timeliness(nc.cfg, rc), holds_timeliness(nc.cfg, c)) << nc.name;

      if (canon.swap_allowed() && Canonicalizer::swap_eligible(c.hub[0], c.hub[1])) {
        ClusterState swapped = c;
        canon.swap_channels(swapped);
        EXPECT_EQ(canonical_successors(raw, raw.pack(swapped)), expected) << nc.name;
      }
    }
  }
}

TEST(Symmetry, ReducedEmissionsAreFixedPoints) {
  // Everything a Reduction::kSymmetry cluster emits — initial states and
  // successors — is already canonical, so the downstream hash-once pipeline
  // only ever sees orbit representatives.
  for (const auto& nc : fuzz_configs()) {
    const Cluster reduced(nc.cfg, Reduction::kSymmetry);
    std::vector<Cluster::State> frontier;
    reduced.initial_states([&](const Cluster::State& s) {
      EXPECT_EQ(reduced.canonicalize(s), s) << nc.name << " (initial)";
      frontier.push_back(s);
    });
    int checked = 0;
    for (std::size_t i = 0; i < frontier.size() && checked < 2000; ++i) {
      reduced.successors(frontier[i], [&](const Cluster::State& t) {
        if (checked++ < 2000) {
          EXPECT_EQ(reduced.canonicalize(t), t) << nc.name;
        }
      });
    }
  }
}

TEST(Symmetry, NodePermutationIsNotASymmetry) {
  // The honest adaptation note, as a test: exchanging the records of two
  // correct nodes does NOT commute with the successor relation, because the
  // listen timeout is per-identity (LT_TO[i] = 2n+i). Witness: node 1 at its
  // own timeout (counter == 2n+1) fires now; handing that counter to node 2
  // (whose timeout is 2n+2) does not. So a sorted-node-representative
  // reduction would be unsound for this model, which is why the group is
  // {identity, channel-swap} only.
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.init_window = 2;
  cfg.hub_init_window = 2;
  const Cluster raw(cfg);

  ClusterState s = raw.base_initial_state();
  for (int i = 0; i < cfg.n; ++i) {
    s.node[i].state = NodeState::kListen;
    s.node[i].counter = 1;
    s.node[i].big_bang = true;
  }
  s.node[1].counter = static_cast<std::uint8_t>(cfg.listen_timeout(1));  // fires now
  s.hub[0].state = HubState::kListen;
  s.hub[1].state = HubState::kListen;
  s.hub[0].counter = s.hub[1].counter = 1;

  ClusterState p = s;  // the node-permuted image (swap records of nodes 1, 2)
  std::swap(p.node[1], p.node[2]);

  auto image = [&](const ClusterState& from, bool permute_back) {
    std::vector<Cluster::State> out;
    raw.step_unpacked(from, [&](const ClusterState& t) {
      ClusterState u = t;
      if (permute_back) std::swap(u.node[1], u.node[2]);
      out.push_back(raw.pack(u));
    });
    std::sort(out.begin(), out.end());
    return out;
  };

  // If permutation were a symmetry, succ(perm(s)) == perm(succ(s)).
  EXPECT_NE(image(p, false), image(s, true));

  // And the channel swap — the group element the reduction does use — DOES
  // commute on the very same state.
  const Canonicalizer canon(cfg);
  ASSERT_TRUE(canon.swap_allowed());
  ClusterState sw = s;
  canon.swap_channels(sw);
  EXPECT_EQ(canonical_successors(raw, raw.pack(sw)), canonical_successors(raw, raw.pack(s)));
}

TEST(Symmetry, FaultyHubInitialPatternsCollapse) {
  // 3^n frozen port patterns collapse to 2^n canonical ones ({relay, quiet}
  // per port; the faulty node's port, when present, is pinned to quiet).
  ClusterConfig cfg;
  cfg.n = 3;
  cfg.faulty_hub = 0;
  cfg.init_window = 3;
  cfg.hub_init_window = 1;

  std::size_t raw_count = 0;
  Cluster(cfg).initial_states([&](const Cluster::State&) { ++raw_count; });
  EXPECT_EQ(raw_count, 27u);  // 3^3

  std::vector<Cluster::State> reduced_inits;
  Cluster(cfg, Reduction::kSymmetry).initial_states([&](const Cluster::State& s) {
    reduced_inits.push_back(s);
  });
  EXPECT_EQ(reduced_inits.size(), 8u);  // 2^3
  std::sort(reduced_inits.begin(), reduced_inits.end());
  EXPECT_EQ(std::unique(reduced_inits.begin(), reduced_inits.end()), reduced_inits.end());
}

TEST(Symmetry, FaultyNodeAlphabetCollapsesThroughCorrectHubs) {
  // The transition-only collapse: through correct guardians every provably
  // faulty emission (noise, masquerading cs, foreign/ill-formed i) locks and
  // relays identically, so the collapsed per-channel alphabet has at most 4
  // classes — quiet, cs(id), i(id), one provably-faulty representative.
  ClusterConfig cfg;
  cfg.n = 4;
  cfg.faulty_node = 0;
  cfg.fault_degree = 6;
  cfg.init_window = 4;
  cfg.hub_init_window = 4;

  const FaultyNodeOutputs full(cfg, /*collapse_classes=*/false);
  const FaultyNodeOutputs collapsed(cfg, /*collapse_classes=*/true);
  EXPECT_EQ(full.pairs(0).size(), std::size_t{(2 * 4 + 3) * (2 * 4 + 3)});
  EXPECT_LE(collapsed.pairs(0).size(), std::size_t{16});
  EXPECT_GT(full.pairs(0).size(), collapsed.pairs(0).size());
}

}  // namespace
}  // namespace tt::tta
