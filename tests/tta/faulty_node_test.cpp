#include "tta/faulty_node.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace tt::tta {
namespace {

ClusterConfig faulty_cfg(int n, int degree, bool feedback = true) {
  ClusterConfig cfg;
  cfg.n = n;
  cfg.faulty_node = 1;
  cfg.fault_degree = degree;
  cfg.feedback = feedback;
  return cfg;
}

TEST(FaultyNodeOutputs, ChannelOptionCountsPerDegree) {
  // Per-channel option counts: 1, 2, 2+n, 3+n, 2n+2, 2n+3 for degrees 1..6.
  const int n = 4;
  EXPECT_EQ(FaultyNodeOutputs::channel_options(n, 1, 1).size(), 1u);
  EXPECT_EQ(FaultyNodeOutputs::channel_options(n, 1, 2).size(), 2u);
  EXPECT_EQ(FaultyNodeOutputs::channel_options(n, 1, 3).size(), 6u);
  EXPECT_EQ(FaultyNodeOutputs::channel_options(n, 1, 4).size(), 7u);
  EXPECT_EQ(FaultyNodeOutputs::channel_options(n, 1, 5).size(), 10u);
  EXPECT_EQ(FaultyNodeOutputs::channel_options(n, 1, 6).size(), 11u);
}

TEST(FaultyNodeOutputs, RankMatchesFigure3) {
  EXPECT_EQ(FaultyNodeOutputs::rank_of(Frame::quiet(), 1), FaultRank::kQuiet);
  EXPECT_EQ(FaultyNodeOutputs::rank_of(Frame::cs(1), 1), FaultRank::kCsGood);
  EXPECT_EQ(FaultyNodeOutputs::rank_of(Frame::cs(2), 1), FaultRank::kCsBad);
  EXPECT_EQ(FaultyNodeOutputs::rank_of(Frame::i(0), 1), FaultRank::kIGood);
  EXPECT_EQ(FaultyNodeOutputs::rank_of(Frame::noise(), 1), FaultRank::kNoise);
  EXPECT_EQ(FaultyNodeOutputs::rank_of(Frame::i_bad(), 1), FaultRank::kIBad);
}

class FaultDegreeMatrix : public ::testing::TestWithParam<int> {};

TEST_P(FaultDegreeMatrix, PairsRespectMaxRankRule) {
  // Fig. 3: a pair is admitted iff max(rank_a, rank_b) <= degree, and every
  // such pair is present exactly once (exhaustiveness of the dial).
  const int degree = GetParam();
  const auto cfg = faulty_cfg(4, degree);
  const FaultyNodeOutputs outputs(cfg);
  const auto& pairs = outputs.pairs(0);

  const auto all6 = FaultyNodeOutputs::channel_options(cfg.n, cfg.faulty_node, 6);
  std::size_t expected = 0;
  for (const Frame& a : all6) {
    for (const Frame& b : all6) {
      const int ra = static_cast<int>(FaultyNodeOutputs::rank_of(a, cfg.faulty_node));
      const int rb = static_cast<int>(FaultyNodeOutputs::rank_of(b, cfg.faulty_node));
      if (std::max(ra, rb) <= degree) ++expected;
    }
  }
  EXPECT_EQ(pairs.size(), expected);
  for (const auto& [a, b] : pairs) {
    const int ra = static_cast<int>(FaultyNodeOutputs::rank_of(a, cfg.faulty_node));
    const int rb = static_cast<int>(FaultyNodeOutputs::rank_of(b, cfg.faulty_node));
    EXPECT_LE(std::max(ra, rb), degree);
  }
  // No duplicates.
  auto sorted = pairs;
  std::sort(sorted.begin(), sorted.end(), [](const auto& x, const auto& y) {
    auto key = [](const Frame& f) {
      return (static_cast<int>(f.kind) << 8) | (f.time << 1) | (f.ok ? 1 : 0);
    };
    return std::pair(key(x.first), key(x.second)) < std::pair(key(y.first), key(y.second));
  });
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

INSTANTIATE_TEST_SUITE_P(AllDegrees, FaultDegreeMatrix, ::testing::Range(1, 7));

TEST(FaultyNodeOutputs, Degree6CountIsExhaustive) {
  // (2n+3)^2 pairs at degree 6: the paper's "36 combinations" generalized to
  // concrete time values.
  const auto cfg = faulty_cfg(4, 6);
  const FaultyNodeOutputs outputs(cfg);
  EXPECT_EQ(outputs.pairs(0).size(), 11u * 11u);
}

TEST(FaultyNodeOutputs, FeedbackForcesLockedChannelsQuiet) {
  const auto cfg = faulty_cfg(4, 6, /*feedback=*/true);
  const FaultyNodeOutputs outputs(cfg);
  for (const auto& [a, b] : outputs.pairs(1)) EXPECT_TRUE(a.is_quiet());
  for (const auto& [a, b] : outputs.pairs(2)) EXPECT_TRUE(b.is_quiet());
  for (const auto& [a, b] : outputs.pairs(3)) {
    EXPECT_TRUE(a.is_quiet());
    EXPECT_TRUE(b.is_quiet());
  }
  EXPECT_EQ(outputs.pairs(3).size(), 1u);
  EXPECT_EQ(outputs.pairs(1).size(), 11u);
}

TEST(FaultyNodeOutputs, WithoutFeedbackLocksAreIgnored) {
  const auto cfg = faulty_cfg(4, 6, /*feedback=*/false);
  const FaultyNodeOutputs outputs(cfg);
  EXPECT_EQ(outputs.pairs(3).size(), outputs.pairs(0).size());
}

TEST(FaultyNodeVars, FeedbackTracksLockStatus) {
  const auto cfg = faulty_cfg(4, 6, /*feedback=*/true);
  EXPECT_EQ(faulty_node_vars(cfg, 0).state, NodeState::kFaulty);
  EXPECT_EQ(faulty_node_vars(cfg, 1).state, NodeState::kFaultyLock0);
  EXPECT_EQ(faulty_node_vars(cfg, 2).state, NodeState::kFaultyLock1);
  EXPECT_EQ(faulty_node_vars(cfg, 3).state, NodeState::kFaultyLock01);
}

TEST(FaultyNodeVars, WithoutFeedbackStateIsFrozen) {
  const auto cfg = faulty_cfg(4, 6, /*feedback=*/false);
  for (std::uint8_t locks = 0; locks < 4; ++locks) {
    EXPECT_EQ(faulty_node_vars(cfg, locks).state, NodeState::kFaulty);
  }
}

TEST(FaultyNodeOutputs, MasqueradeNeverUsesOwnId) {
  const auto opts = FaultyNodeOutputs::channel_options(5, 2, 5);
  for (const Frame& f : opts) {
    if (f.kind == MsgKind::kCs && f.ok) {
      // cs frames are either the node's own id (rank 2) or a foreign id
      // (rank 5); verify the rank-5 entries exclude id 2 exactly once each.
    }
  }
  int own = 0;
  int foreign = 0;
  for (const Frame& f : opts) {
    if (f.kind != MsgKind::kCs) continue;
    if (f.time == 2) {
      ++own;
    } else {
      ++foreign;
    }
  }
  EXPECT_EQ(own, 1);
  EXPECT_EQ(foreign, 4);
}

}  // namespace
}  // namespace tt::tta
