// Parameterized sweeps over the experiment grid (cluster size x fault degree
// x feedback x big-bang), asserting the paper's verdicts on every cell the
// CI budget allows. This is the regression net for the whole reproduction:
// any semantic change to the node/guardian automata that breaks a lemma
// anywhere in the grid fails here.
#include <gtest/gtest.h>

#include <tuple>

#include "core/verifier.hpp"

namespace tt::core {
namespace {

struct Cell {
  int n;
  int degree;
  bool feedback;
};

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  return "n" + std::to_string(info.param.n) + "_deg" + std::to_string(info.param.degree) +
         (info.param.feedback ? "_fb" : "_nofb");
}

tta::ClusterConfig grid_config(const Cell& cell) {
  tta::ClusterConfig cfg;
  cfg.n = cell.n;
  cfg.faulty_node = 0;
  cfg.fault_degree = cell.degree;
  cfg.feedback = cell.feedback;
  cfg.init_window = 3;
  cfg.hub_init_window = 3;
  return cfg;
}

class FaultyNodeGrid : public ::testing::TestWithParam<Cell> {};

TEST_P(FaultyNodeGrid, SafetyHolds) {
  auto r = verify(grid_config(GetParam()), Lemma::kSafety);
  EXPECT_TRUE(r.holds) << r.verdict_text;
  EXPECT_TRUE(r.exhausted);
}

TEST_P(FaultyNodeGrid, LivenessHolds) {
  auto r = verify(grid_config(GetParam()), Lemma::kLiveness);
  EXPECT_TRUE(r.holds) << r.verdict_text;
  EXPECT_TRUE(r.exhausted);
}

TEST_P(FaultyNodeGrid, TimelinessHoldsAtGenerousBound) {
  auto cfg = grid_config(GetParam());
  cfg.timeliness_bound = 10 * cfg.n;
  auto r = verify(cfg, Lemma::kTimeliness);
  EXPECT_TRUE(r.holds) << r.verdict_text;
}

TEST_P(FaultyNodeGrid, HubAgreementBoundary) {
  // Extension finding (EXPERIMENTS.md): node/guardian schedule agreement is
  // guaranteed only up to fault degree 2. From degree 3 on, the faulty node
  // can fabricate a plausible i-frame during STARTUP and later confirm the
  // resulting ghost tentative round from its own slot, dragging a guardian
  // onto a schedule offset from the nodes'. The paper's lemmas (which do not
  // cover guardian agreement) still hold there — this is an observation our
  // exhaustive fault simulation surfaced beyond the paper's claims.
  auto r = verify(grid_config(GetParam()), Lemma::kHubAgreement);
  EXPECT_TRUE(r.exhausted);
  if (GetParam().degree <= 2) {
    EXPECT_TRUE(r.holds) << r.verdict_text;
  } else {
    EXPECT_FALSE(r.holds) << "ghost-schedule scenario unexpectedly vanished";
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, FaultyNodeGrid,
                         ::testing::Values(Cell{3, 1, true}, Cell{3, 2, true},
                                           Cell{3, 3, true}, Cell{3, 4, true},
                                           Cell{3, 5, true}, Cell{3, 6, true},
                                           Cell{3, 6, false}, Cell{4, 6, true},
                                           Cell{4, 3, false}),
                         cell_name);

class FaultyHubGrid : public ::testing::TestWithParam<int> {};

TEST_P(FaultyHubGrid, Safety2HoldsWithGuardiansFirst) {
  tta::ClusterConfig cfg;
  cfg.n = GetParam();
  cfg.faulty_hub = 0;
  cfg.init_window = 3;
  cfg.hub_init_window = 1;  // guardians power up before nodes (§5.2/§5.4)
  cfg.timeliness_bound = 8 * cfg.n;
  auto r = verify(cfg, Lemma::kSafety2);
  EXPECT_TRUE(r.holds) << r.verdict_text;
  EXPECT_TRUE(r.exhausted);
}

TEST_P(FaultyHubGrid, LivenessBoundaryUnderFaultyHub) {
  // Documented boundary (EXPERIMENTS.md): full liveness under a faulty
  // guardian fails through the residual clique class of §5.2 (the paper
  // excludes those scenarios by the power-on arrangement and accordingly
  // only claims safety_2 for the faulty-hub configuration — Fig. 6(d)).
  // A faulty hub can split the cold-starting nodes onto offset schedules
  // and then keep one node "colliding" between the two ghosts forever.
  tta::ClusterConfig cfg;
  cfg.n = GetParam();
  cfg.faulty_hub = 0;
  cfg.init_window = 3;
  cfg.hub_init_window = 1;
  auto r = verify(cfg, Lemma::kLiveness);
  EXPECT_TRUE(r.exhausted);
  EXPECT_FALSE(r.holds) << "residual §5.2 clique scenario unexpectedly vanished";
}

INSTANTIATE_TEST_SUITE_P(Sizes, FaultyHubGrid, ::testing::Values(3, 4));

TEST(BigBangGrid, CliqueDepthStrictlyLaterWithBigBang) {
  // The §5.2 result in regression form: under a faulty guardian the earliest
  // agreement violation (clique) sits strictly deeper with the big-bang
  // than without it, for every cluster size we can afford here.
  for (int n : {3, 4}) {
    int depth[2] = {0, 0};
    for (bool bb : {false, true}) {
      tta::ClusterConfig cfg;
      cfg.n = n;
      cfg.faulty_hub = 0;
      cfg.big_bang = bb;
      cfg.init_window = 3;
      cfg.hub_init_window = 1;
      auto r = verify(cfg, Lemma::kSafety);
      ASSERT_FALSE(r.holds) << "expected a residual clique scenario, n=" << n;
      depth[bb ? 1 : 0] = static_cast<int>(r.trace.size()) - 1;
    }
    EXPECT_GT(depth[1], depth[0]) << "n=" << n;
  }
}

}  // namespace
}  // namespace tt::core
